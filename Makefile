GO ?= go

.PHONY: build test bench bench-paper race vet docs-lint fuzz-smoke check daemon-smoke drift-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the numeric-kernel and model micro-benchmarks (mlkit +
# linalg; see internal/mlkit/perf_bench_test.go) with a fixed -benchtime
# and records machine-readable results in BENCH_PR3.json under the
# "current" label via cmd/benchjson (best of -count runs per benchmark,
# which filters noisy-neighbour interference on shared machines).
# Re-run on a baseline checkout with BENCH_LABEL=baseline to fill in the
# before/after speedup table.
# It then runs the batch-vs-streaming engine benchmarks (see
# internal/core/stream_bench_test.go), whose peak-B custom metric — the
# live-heap high-water mark of a test-mode run — lands in BENCH_PR4.json.
# Finally it runs the sequential-vs-pipelined streaming benchmarks
# (BenchmarkPipeline*: CPU-bound and IO-bound source, 1 and N workers;
# peak-B heap high-water mark plus inflight-B pump buffering) into
# BENCH_PR5.json, and the flow-sharded sink scaling set
# (BenchmarkShardSink*: the same sink-bound pass at 1/2/4/8 flow-hash
# lanes) into BENCH_PR6.json. Shard throughput scales with cores; on a
# single-core host the expected ratio is ~1x (see DESIGN.md).
# The decode fast-path set (BenchmarkDecode*: eager full-stack vs lazy
# views per depth; BenchmarkSourceStage*: the chunked source stage
# across {eager,lazy}×{buffered,mmap}) lands in BENCH_PR8.json.
# The watch-ingest fast-path set (BenchmarkDirSource*: the daemon's
# rotated-capture source stage, buffered vs mmap+lazy — the acceptance
# bar is mmap ≥ 2× buffered — plus BenchmarkShardSinkLazy*: lazy view
# chunks flowing through the flow-sharded sink) lands in BENCH_PR10.json.
BENCH_LABEL ?= current
bench:
	$(GO) test -bench=. -benchtime=300ms -count=3 -run='^$$' ./internal/mlkit/... \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR3.json
	$(GO) test -bench=BenchmarkStream -benchtime=1x -count=3 -run='^$$' ./internal/core/ \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR4.json
	$(GO) test -bench=BenchmarkPipeline -benchtime=5x -count=3 -run='^$$' ./internal/core/ \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR5.json
	$(GO) test -bench=BenchmarkShard -benchtime=5x -count=3 -run='^$$' ./internal/core/ \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR6.json
	$(GO) test -bench='BenchmarkDecode|BenchmarkSourceStage' -benchtime=300ms -count=3 -run='^$$' ./internal/dataset/ \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR8.json
	( $(GO) test -bench=BenchmarkDirSource -benchtime=5x -count=3 -run='^$$' ./internal/daemon/ && \
	  $(GO) test -bench=BenchmarkShardSinkLazy -benchtime=5x -count=3 -run='^$$' ./internal/core/ ) \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_PR10.json

# bench-paper runs the paper table/figure reproduction benchmarks once each.
bench-paper:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (engine/cache singleflight,
# streaming engine + staged pipeline + flow-sharded sink lanes — the
# core suite sweeps every dataset × chunk size × execution shape
# including multi-shard, and the fast-path equivalence sweep runs lazy
# view chunks through those shard lanes, so this is the shard
# equivalence gate — chunk pump and decoder buffer pool, refcounted
# pcap mappings under concurrent chunk release, flow assemblers, span
# tracer, benchsuite worker pool, the mlkit/linalg row-parallel
# kernels, and the resident daemon: pipeline lifecycle, hot swap under
# live ingest, live sources including mmap+lazy watch ingest with
# rotation under load, the HTTP control surface, and the lumend binary
# end to end) under the race detector. The online-learning paths ride along: the core suite's
# prequential equivalence tests sweep test-then-train streams across
# chunk sizes and execution shapes, the daemon suite exercises the
# drift-triggered background retrain racing live scoring, and the
# benchsuite suite runs the three-arm drifting prequential benchmark.
race:
	$(GO) test -race ./internal/core/... ./internal/dataset/... ./internal/pcap/... ./internal/netpkt/... ./internal/features/... ./internal/flow/... ./internal/benchsuite/... ./internal/obs/... ./internal/mlkit/... ./internal/daemon/... ./cmd/lumend/...

# docs-lint enforces the documentation floor (see doclint_test.go):
# package comments everywhere under internal/ and cmd/, doc comments on
# every exported symbol of internal/obs and internal/core.
docs-lint:
	$(GO) test -run TestDocLint .

# daemon-smoke boots lumend on a small replayed capture, then asserts
# that at least one JSONL alert line was written and that every pipeline
# reported a clean stop. This is the cheap end-to-end gate for the
# resident daemon path (see OPERATIONS.md).
daemon-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/lumend -pipeline examples/daemon-hot-swap/pipeline.json \
		-train F1 -train-scale 0.05 -replay-dataset F1 -replay-scale 0.05 \
		-chunk-rows 64 -listen "" \
		-alerts $$tmp/alerts.jsonl -connlog $$tmp/conn.log >$$tmp/out.txt 2>&1 \
		|| { echo "daemon-smoke: lumend failed"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	head -1 $$tmp/alerts.jsonl | grep -q '"pipeline"' \
		|| { echo "daemon-smoke: no alert line"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	grep -q ' stopped: ' $$tmp/out.txt \
		|| { echo "daemon-smoke: no clean shutdown"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	echo "daemon-smoke: OK ($$(wc -l < $$tmp/alerts.jsonl) alerts, conn-log $$(wc -l < $$tmp/conn.log) lines)"; \
	rm -rf $$tmp

# drift-smoke is the end-to-end gate for the online-learning loop: it
# trains the drift-retrain example pipeline on Mirai traffic (P1), then
# replays a P1-then-P4 drifting stream — mid-replay the traffic turns
# into ARP MitM, a distribution the model has never seen — with
# drift-triggered retraining enabled. The two-sided Page-Hinkley monitor
# fires on the score collapse, the daemon refits on fresh post-drift
# rows in the background, and the candidate must pass the shadow gate
# into an auto-promoted generation before drain.
drift-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/lumend -pipeline examples/drift-retrain/pipeline.json \
		-train P1 -train-scale 0.5 -replay-dataset P1,P4 -replay-scale 1.0 \
		-chunk-rows 64 -replay-delay 15ms -listen "" \
		-retrain -retrain-fresh -retrain-min-rows 128 -retrain-cooldown 4 \
		-shadow-chunks 2 -max-disagree 1 \
		-alerts $$tmp/alerts.jsonl -metrics-out $$tmp/metrics.prom >$$tmp/out.txt 2>&1 \
		|| { echo "drift-smoke: lumend failed"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	grep -q ' stopped: ' $$tmp/out.txt \
		|| { echo "drift-smoke: no clean shutdown"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	grep -q 'swap promoted by auto' $$tmp/out.txt \
		|| { echo "drift-smoke: retrained model was not promoted"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	grep -q 'lumen_retrain_total' $$tmp/metrics.prom \
		|| { echo "drift-smoke: no retrain counted"; cat $$tmp/out.txt; rm -rf $$tmp; exit 1; }; \
	echo "drift-smoke: OK ($$(grep -c . $$tmp/alerts.jsonl) alerts, $$(grep 'lumen_drift_events_total{' $$tmp/metrics.prom | head -1))"; \
	rm -rf $$tmp

# fuzz-smoke gives each differential decoder fuzz target (lazy
# PacketView vs eager Decode; see internal/netpkt/view_fuzz_test.go) a
# short budget on top of its checked-in corpus. Go runs one -fuzz
# pattern per invocation, so each target gets its own line.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -fuzz=FuzzViewEthernet -fuzztime=$(FUZZTIME) -run='^$$' ./internal/netpkt/
	$(GO) test -fuzz=FuzzViewDot11 -fuzztime=$(FUZZTIME) -run='^$$' ./internal/netpkt/

# check is the CI gate: static analysis, race-clean concurrency paths,
# the documentation lint, and a short differential-fuzz pass over the
# decoder fast path.
check: vet race docs-lint fuzz-smoke
	$(GO) build ./...
