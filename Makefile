GO ?= go

.PHONY: build test bench race vet docs-lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (engine/cache singleflight,
# span tracer, benchsuite worker pool) under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/benchsuite/... ./internal/obs/...

# docs-lint enforces the documentation floor (see doclint_test.go):
# package comments everywhere under internal/ and cmd/, doc comments on
# every exported symbol of internal/obs and internal/core.
docs-lint:
	$(GO) test -run TestDocLint .

# check is the CI gate: static analysis, race-clean concurrency paths,
# and the documentation lint.
check: vet race docs-lint
	$(GO) build ./...
