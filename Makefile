GO ?= go

.PHONY: build test bench race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages (engine/cache singleflight,
# benchsuite worker pool) under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/benchsuite/...

# check is the CI gate: static analysis plus race-clean concurrency paths.
check: vet race
	$(GO) build ./...
