package lumen

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDocLint enforces the repo's documentation floor with go/ast:
//
//  1. every package under internal/ and cmd/ must carry a package
//     comment (on any non-test file) explaining what it is; and
//  2. in the packages whose API other layers program against —
//     internal/obs, internal/core, and internal/daemon (the operator
//     surface behind cmd/lumend) — every exported type, function, and
//     method on an exported type must have a doc comment.
//
// `make docs-lint` runs exactly this test; `make check` includes it.
func TestDocLint(t *testing.T) {
	pkgs := findPackageDirs(t, "internal", "cmd")
	for _, dir := range pkgs {
		checkPackageComment(t, dir)
	}
	for _, dir := range []string{"internal/obs", "internal/core", "internal/daemon"} {
		checkExportedDocs(t, dir)
	}
}

// findPackageDirs walks roots and returns every directory containing at
// least one non-test .go file.
func findPackageDirs(t *testing.T, roots ...string) []string {
	t.Helper()
	var dirs []string
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	return dirs
}

// parseDir parses every non-test .go file in dir.
func parseDir(t *testing.T, dir string) (*token.FileSet, map[string]*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files[path] = f
	}
	return fset, files
}

// checkPackageComment fails unless some non-test file in dir carries a
// package doc comment.
func checkPackageComment(t *testing.T, dir string) {
	t.Helper()
	_, files := parseDir(t, dir)
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	t.Errorf("package %s has no package comment on any file", dir)
}

// checkExportedDocs fails for every exported declaration in dir that
// lacks a doc comment: types, functions, and methods whose receiver type
// is exported. Grouped const/var blocks count as documented when the
// block has a comment.
func checkExportedDocs(t *testing.T, dir string) {
	t.Helper()
	fset, files := parseDir(t, dir)
	for path, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !receiverExported(d) {
					continue
				}
				if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
					t.Errorf("%s: exported %s %s has no doc comment",
						fset.Position(d.Pos()), funcKind(d), funcName(d))
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if (d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "") &&
						(ts.Doc == nil || strings.TrimSpace(ts.Doc.Text()) == "") {
						t.Errorf("%s: exported type %s has no doc comment",
							fset.Position(ts.Pos()), ts.Name.Name)
					}
				}
			}
		}
		_ = path
	}
}

// receiverExported reports whether d is a plain function or a method on
// an exported receiver type — methods on unexported types are internal
// API and exempt.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(d))
}

// receiverTypeName extracts the receiver's base type name ("Engine" from
// *Engine, "Span" from Span).
func receiverTypeName(d *ast.FuncDecl) string {
	expr := d.Recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return receiverTypeName(d) + "." + d.Name.Name
	}
	return d.Name.Name
}
