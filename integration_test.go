package lumen

import (
	"os"
	"path/filepath"
	"testing"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/pcap"
)

// TestEndToEndPcapRoundTrip exercises the full stack the way a real
// deployment would: synthesize a dataset, write it to a pcap on disk,
// read it back, reattach ground truth, and train/evaluate an algorithm on
// the re-decoded packets. Scores on the round-tripped capture must match
// scores on the in-memory dataset exactly — the wire format is lossless
// for everything the feature pipelines consume.
func TestEndToEndPcapRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and writes files")
	}
	spec, ok := dataset.Get("F1")
	if !ok {
		t.Fatal("no F1")
	}
	ds := spec.Generate(0.3)

	// Write to disk.
	dir := t.TempDir()
	path := filepath.Join(dir, "f1.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Read back and reattach labels positionally.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := pcap.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(ds.Packets) {
		t.Fatalf("round trip lost packets: %d vs %d", len(pkts), len(ds.Packets))
	}
	loaded := &dataset.Labeled{
		Name:        "f1-from-pcap",
		Granularity: ds.Granularity,
		Link:        r.LinkType(),
		Packets:     pkts,
		Labels:      ds.Labels,
		Attacks:     ds.Attacks,
	}

	alg, _ := algorithms.Get("A14")
	score := func(d *dataset.Labeled) (float64, float64) {
		tr, te := benchsuite.InterleaveSplit(d)
		eng := core.NewEngine(alg.Pipeline)
		eng.Seed = 99
		if err := eng.Train(tr); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Test(te)
		if err != nil {
			t.Fatal(err)
		}
		return mlkit.Precision(res.Truth, res.Pred), mlkit.Recall(res.Truth, res.Pred)
	}
	pMem, rMem := score(ds)
	pDisk, rDisk := score(loaded)
	if pMem != pDisk || rMem != rDisk {
		t.Errorf("scores differ across the wire: mem %.4f/%.4f vs disk %.4f/%.4f",
			pMem, rMem, pDisk, rDisk)
	}
	if pMem < 0.8 {
		t.Errorf("precision %.3f unexpectedly low", pMem)
	}
}

// TestFaithfulnessMatrix verifies the suite's faithful-run rules across
// every algorithm × dataset pair without training anything: connection
// algorithms never see packet-labelled data, and only Kitsune touches the
// 802.11 corpus (paper §2.1 and Obs. 4).
func TestFaithfulnessMatrix(t *testing.T) {
	s, err := benchsuite.New(benchsuite.Config{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RunSameDataset()
	seen := map[string]map[string]bool{}
	for _, r := range s.Store.Results {
		if seen[r.Alg] == nil {
			seen[r.Alg] = map[string]bool{}
		}
		seen[r.Alg][r.TrainDS] = true
	}
	for _, alg := range s.Algorithms() {
		got := seen[alg.ID]
		switch alg.Granularity() {
		case dataset.ConnectionG, dataset.UniflowG:
			for _, p := range dataset.PacketIDs() {
				if got[p] {
					t.Errorf("%s (flow-level) ran on packet-labelled %s", alg.ID, p)
				}
			}
			for _, f := range dataset.ConnectionIDs() {
				if !got[f] {
					t.Errorf("%s should run on %s", alg.ID, f)
				}
			}
		case dataset.Packet:
			if alg.ID == "A06" {
				if !got["P2"] {
					t.Error("Kitsune must run on AWID3")
				}
			} else if got["P2"] {
				t.Errorf("%s must not run on AWID3 (no IP layer)", alg.ID)
			}
			// Packet algorithms can propagate connection labels down.
			if !got["F1"] {
				t.Errorf("%s should run on connection-labelled F1", alg.ID)
			}
		}
	}
}
