// Command lumen runs one anomaly-detection pipeline — a built-in
// algorithm or a user-written JSON template (paper Fig. 4) — on a
// benchmark dataset or a labelled pcap, and reports its scores and
// per-operation profile.
//
// Usage:
//
//	lumen -list-ops                         # the operation catalogue
//	lumen -list-algs                        # the ported algorithms
//	lumen -alg A14 -train F1 -test F4       # built-in algorithm, registry datasets
//	lumen -pipeline my.json -train F1       # template file; same-dataset split
//	lumen -alg A06 -train-pcap a.pcap -train-labels a.csv -test-pcap b.pcap -test-labels b.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
	"lumen/internal/report"
)

func main() {
	var (
		listOps     = flag.Bool("list-ops", false, "list framework operations and exit")
		listAlgs    = flag.Bool("list-algs", false, "list ported algorithms and exit")
		algID       = flag.String("alg", "", "built-in algorithm ID (A00-A15, AM01-AM03)")
		pipelineF   = flag.String("pipeline", "", "pipeline template JSON file")
		trainID     = flag.String("train", "", "training dataset ID (F0-F9, P0-P4)")
		testID      = flag.String("test", "", "test dataset ID (defaults to -train with a split)")
		trainPcap   = flag.String("train-pcap", "", "training pcap file (with -train-labels)")
		trainLabels = flag.String("train-labels", "", "training label CSV (index,label,attack)")
		testPcap    = flag.String("test-pcap", "", "test pcap file (with -test-labels)")
		testLabels  = flag.String("test-labels", "", "test label CSV")
		scale       = flag.Float64("scale", 1.0, "dataset scale for registry datasets")
		seed        = flag.Int64("seed", 7, "random seed")
		profile     = flag.Bool("profile", false, "print per-operation time/alloc profile")
		saveModel   = flag.String("save-model", "", "write the fitted model as JSON (tree-family and naive Bayes)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run to this file (open at ui.perfetto.dev); also prints per-model loss sparklines")
		metricsOut  = flag.String("metrics-out", "", "write Prometheus text-format metrics to this file after the run")
	)
	flag.Parse()

	if *listOps {
		for _, name := range core.Ops() {
			fmt.Printf("%-22s %s\n", name, core.OpDoc(name))
		}
		return
	}
	if *listAlgs {
		t := &report.Table{Header: []string{"ID", "Granularity", "Ref", "Description"}}
		for _, a := range append(algorithms.All(), algorithms.Modified()...) {
			t.Add(a.ID, a.Granularity().String(), a.Ref, a.Desc)
		}
		fmt.Print(t)
		return
	}

	if err := run(*algID, *pipelineF, *trainID, *testID, *trainPcap, *trainLabels, *testPcap, *testLabels, *scale, *seed, *profile, *saveModel, *traceOut, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "lumen:", err)
		os.Exit(1)
	}
}

func run(algID, pipelineF, trainID, testID, trainPcap, trainLabels, testPcap, testLabels string, scale float64, seed int64, profile bool, saveModel, traceOut, metricsOut string) error {
	var p *core.Pipeline
	switch {
	case algID != "":
		alg, ok := algorithms.Get(algID)
		if !ok {
			return fmt.Errorf("unknown algorithm %q (try -list-algs)", algID)
		}
		p = alg.Pipeline
	case pipelineF != "":
		var err error
		p, err = core.LoadPipeline(pipelineF)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -alg or -pipeline (or -list-ops / -list-algs)")
	}

	trainDS, testDS, err := resolveData(trainID, testID, trainPcap, trainLabels, testPcap, testLabels, scale)
	if err != nil {
		return err
	}

	eng := core.NewEngine(p)
	eng.Seed = seed
	// Allocation sampling is opt-in; wall timing is always recorded.
	eng.Profiling = profile
	var tracer *obs.Tracer
	var root *obs.Span
	if traceOut != "" {
		tracer = obs.NewTracer()
		root = tracer.Start("run:"+p.Name, 0)
		eng.Span = root
	}
	if metricsOut != "" {
		eng.Metrics = obs.NewMetrics()
	}
	fmt.Printf("pipeline %q (%s granularity)\n", p.Name, p.Granularity)
	if g, err := p.Granular(); err == nil {
		if !dataset.CanFaithfullyRun(g, trainDS.Granularity) || !dataset.CanFaithfullyRun(g, testDS.Granularity) {
			fmt.Println("warning: the dataset's label granularity is finer than the pipeline's classification granularity;")
			fmt.Println("         this run is not faithful in the paper's sense unless labels are constant per flow (§2.1)")
		}
	}
	fmt.Printf("training on %s (%d packets)...\n", trainDS.Name, len(trainDS.Packets))
	if err := eng.Train(trainDS); err != nil {
		return err
	}
	res, err := eng.Test(testDS)
	if err != nil {
		return err
	}
	fmt.Printf("tested on %s: %d units\n\n", testDS.Name, len(res.Truth))
	c := mlkit.NewConfusion(res.Truth, res.Pred)
	fmt.Printf("precision: %.1f%%\n", c.Precision()*100)
	fmt.Printf("recall:    %.1f%%\n", c.Recall()*100)
	fmt.Printf("accuracy:  %.1f%%\n", c.Accuracy()*100)
	fmt.Printf("f1:        %.1f%%\n", c.F1()*100)
	if res.Scores != nil {
		fmt.Printf("auc:       %.1f%%\n", mlkit.AUC(res.Truth, res.Scores)*100)
	}
	if saveModel != "" {
		clf, ok := eng.TrainedModel()
		if !ok {
			return fmt.Errorf("no fitted model to save")
		}
		if err := mlkit.SaveModel(saveModel, clf); err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		fmt.Println("saved model to", saveModel)
	}
	if profile {
		fmt.Println("\nper-operation profile (test run):")
		t := &report.Table{Header: []string{"op", "output", "wall", "allocs", "rows"}}
		for _, st := range eng.Profile {
			t.Add(st.Func, st.Output, st.Wall.String(), fmt.Sprintf("%dB", st.Allocs), fmt.Sprintf("%d", st.OutRows))
		}
		fmt.Print(t)
	}
	if tracer != nil {
		root.End()
		printLossCurves(tracer)
		if err := tracer.WriteChromeTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Println("wrote Chrome trace to", traceOut, "(open at ui.perfetto.dev)")
	}
	if metricsOut != "" {
		if err := eng.Metrics.WritePrometheusFile(metricsOut); err != nil {
			return err
		}
		fmt.Println("wrote Prometheus metrics to", metricsOut)
	}
	return nil
}

// printLossCurves renders each trained model's per-epoch loss curve as a
// sparkline, reconstructed from the trace's "epoch:<model>" spans.
func printLossCurves(tracer *obs.Tracer) {
	losses := map[string][]float64{}
	var order []string
	for _, sp := range tracer.Spans() {
		model, ok := strings.CutPrefix(sp.Name, "epoch:")
		if !ok {
			continue
		}
		loss, ok := sp.Attrs["loss"].(float64)
		if !ok {
			continue
		}
		if _, seen := losses[model]; !seen {
			order = append(order, model)
		}
		losses[model] = append(losses[model], loss)
	}
	if len(order) == 0 {
		return
	}
	fmt.Println("\ntraining loss curves:")
	for _, model := range order {
		l := losses[model]
		fmt.Printf("  %-12s %s  (%d epochs, %.4g -> %.4g)\n",
			model, report.Sparkline(l), len(l), l[0], l[len(l)-1])
	}
}

// resolveData loads train/test datasets from the registry or from pcap
// files with label CSVs. When only -train is given, the dataset is split
// into interleaved train/test halves.
func resolveData(trainID, testID, trainPcap, trainLabels, testPcap, testLabels string, scale float64) (*dataset.Labeled, *dataset.Labeled, error) {
	if trainPcap != "" {
		tr, err := LoadLabeledPcap(trainPcap, trainLabels)
		if err != nil {
			return nil, nil, fmt.Errorf("train pcap: %w", err)
		}
		if testPcap == "" {
			a, b := benchsuite.InterleaveSplit(tr)
			return a, b, nil
		}
		te, err := LoadLabeledPcap(testPcap, testLabels)
		if err != nil {
			return nil, nil, fmt.Errorf("test pcap: %w", err)
		}
		return tr, te, nil
	}
	if trainID == "" {
		return nil, nil, fmt.Errorf("need -train (dataset ID) or -train-pcap")
	}
	spec, ok := dataset.Get(trainID)
	if !ok {
		return nil, nil, fmt.Errorf("unknown dataset %q", trainID)
	}
	full := spec.Generate(scale)
	if testID == "" || testID == trainID {
		a, b := benchsuite.InterleaveSplit(full)
		return a, b, nil
	}
	teSpec, ok := dataset.Get(testID)
	if !ok {
		return nil, nil, fmt.Errorf("unknown dataset %q", testID)
	}
	teFull := teSpec.Generate(scale)
	_, te := benchsuite.InterleaveSplit(teFull)
	tr, _ := benchsuite.InterleaveSplit(full)
	return tr, te, nil
}
