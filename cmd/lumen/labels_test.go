package main

import (
	"os"
	"path/filepath"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/pcap"
)

// writeFixture generates a small dataset and writes the pcap + label CSV
// through the same code paths pcapgen uses.
func writeFixture(t *testing.T) (pcapPath, labelPath string, ds *dataset.Labeled) {
	t.Helper()
	spec, _ := dataset.Get("P0")
	ds = spec.Generate(0.15)
	dir := t.TempDir()
	pcapPath = filepath.Join(dir, "x.pcap")
	labelPath = filepath.Join(dir, "x.csv")

	f, err := os.Create(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	csv := "index,label,attack\n"
	for i := range ds.Packets {
		lab := "0"
		if ds.Labels[i] != 0 {
			lab = "1"
		}
		csv += itoa(i) + "," + lab + "," + ds.Attacks[i] + "\n"
	}
	if err := os.WriteFile(labelPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return pcapPath, labelPath, ds
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestLoadLabeledPcapRoundTrip(t *testing.T) {
	pcapPath, labelPath, want := writeFixture(t)
	got, err := LoadLabeledPcap(pcapPath, labelPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != len(want.Packets) {
		t.Fatalf("packets %d, want %d", len(got.Packets), len(want.Packets))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
		if got.Attacks[i] != want.Attacks[i] {
			t.Fatalf("attack %d = %q, want %q", i, got.Attacks[i], want.Attacks[i])
		}
	}
	if got.MaliciousFraction() == 0 {
		t.Error("labels all benign after load")
	}
}

func TestLoadLabeledPcapWithoutLabels(t *testing.T) {
	pcapPath, _, _ := writeFixture(t)
	got, err := LoadLabeledPcap(pcapPath, "")
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range got.Labels {
		if l != 0 {
			t.Fatalf("packet %d labelled %d without a label file", i, l)
		}
	}
}

func TestLoadLabeledPcapBadRows(t *testing.T) {
	pcapPath, _, _ := writeFixture(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("index,label,attack\n999999,1,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLabeledPcap(pcapPath, bad); err == nil {
		t.Error("out-of-range index should error")
	}
	bad2 := filepath.Join(dir, "bad2.csv")
	if err := os.WriteFile(bad2, []byte("0,notanumber,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLabeledPcap(pcapPath, bad2); err == nil {
		t.Error("non-numeric label should error")
	}
}
