package main

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"lumen/internal/dataset"
	"lumen/internal/pcap"
)

// LoadLabeledPcap reads a capture plus its label CSV (columns:
// index,label,attack — as written by pcapgen) into a dataset. When
// labelPath is empty every packet is labelled benign (useful for running
// a fitted detector over an unlabelled capture).
func LoadLabeledPcap(pcapPath, labelPath string) (*dataset.Labeled, error) {
	f, err := os.Open(pcapPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return nil, err
	}
	pkts, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	ds := &dataset.Labeled{
		Name:        pcapPath,
		Granularity: dataset.Packet,
		Link:        r.LinkType(),
		Packets:     pkts,
		Labels:      make([]int, len(pkts)),
		Attacks:     make([]string, len(pkts)),
	}
	if labelPath == "" {
		return ds, nil
	}
	lf, err := os.Open(labelPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	cr := csv.NewReader(lf)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if first && rec[0] == "index" { // header row
			first = false
			continue
		}
		first = false
		if len(rec) < 2 {
			continue
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil || idx < 0 || idx >= len(pkts) {
			return nil, fmt.Errorf("label row references packet %q out of range", rec[0])
		}
		lab, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("bad label %q for packet %d", rec[1], idx)
		}
		ds.Labels[idx] = lab
		if len(rec) > 2 {
			ds.Attacks[idx] = rec[2]
		}
	}
	return ds, nil
}
