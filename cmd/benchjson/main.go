// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so kernel speedups can be tracked across
// PRs (BENCH_PR3.json is the first datapoint). It reads benchmark
// output on stdin and merges one labelled run into the output file:
//
//	go test -bench . -benchtime=300ms ./internal/mlkit/ | benchjson -label current -out BENCH_PR3.json
//
// Runs are keyed by label ("baseline", "current", ...), so the file can
// hold a before/after pair; when both a baseline and a current run are
// present, a speedup table (baseline ns/op ÷ current ns/op per shared
// benchmark) is recomputed on every merge.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Metrics holds any extra
// `<value> <unit>` pairs the benchmark reported after ns/op (B/op,
// allocs/op, custom b.ReportMetric units like peak-B), keyed by unit.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled `go test -bench` invocation.
type Run struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// File is the merged on-disk document.
type File struct {
	Runs     map[string]*Run    `json:"runs"`
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func parse(r *bufio.Scanner) (*Run, error) {
	run := &Run{}
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			// Multiple packages can share one pipe (BENCH_PR10.json spans
			// daemon + core); record each pkg line once, comma-joined.
			p := strings.TrimPrefix(line, "pkg: ")
			if run.Pkg == "" {
				run.Pkg = p
			} else if !strings.Contains(","+run.Pkg+",", ","+p+",") {
				run.Pkg += "," + p
			}
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[3] != "ns/op" {
				continue
			}
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			ns, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				continue
			}
			// Any further `<value> <unit>` pairs (B/op, allocs/op,
			// b.ReportMetric extras) become Metrics entries.
			var metrics map[string]float64
			for i := 4; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					break
				}
				if metrics == nil {
					metrics = map[string]float64{}
				}
				metrics[fields[i+1]] = v
			}
			// Strip the -N GOMAXPROCS suffix so labels are stable
			// across machines (BenchmarkMLPFit-8 -> BenchmarkMLPFit).
			name := fields[0]
			if i := strings.LastIndex(name, "-"); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			// With -count=N the same benchmark appears N times; keep the
			// fastest run (best-of-N is the standard noise filter on
			// shared machines).
			merged := false
			for i := range run.Benchmarks {
				if run.Benchmarks[i].Name == name {
					if ns < run.Benchmarks[i].NsPerOp {
						run.Benchmarks[i].NsPerOp = ns
						run.Benchmarks[i].Iterations = iters
						run.Benchmarks[i].Metrics = metrics
					}
					merged = true
					break
				}
			}
			if !merged {
				run.Benchmarks = append(run.Benchmarks, Bench{Name: name, Iterations: iters, NsPerOp: ns, Metrics: metrics})
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return run, nil
}

func main() {
	label := flag.String("label", "current", "label for this run (e.g. baseline, current)")
	out := flag.String("out", "BENCH_PR3.json", "output JSON file; existing runs with other labels are kept")
	flag.Parse()

	run, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	doc := &File{Runs: map[string]*Run{}}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
		if doc.Runs == nil {
			doc.Runs = map[string]*Run{}
		}
	}
	doc.Runs[*label] = run

	doc.Speedups = nil
	if base, cur := doc.Runs["baseline"], doc.Runs["current"]; base != nil && cur != nil {
		ns := map[string]float64{}
		for _, b := range base.Benchmarks {
			ns[b.Name] = b.NsPerOp
		}
		for _, c := range cur.Benchmarks {
			if b, ok := ns[c.Name]; ok && c.NsPerOp > 0 {
				if doc.Speedups == nil {
					doc.Speedups = map[string]float64{}
				}
				doc.Speedups[c.Name] = b / c.NsPerOp
			}
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks as %q to %s\n", len(run.Benchmarks), *label, *out)
}
