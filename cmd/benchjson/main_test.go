package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: lumen/internal/core
cpu: test
BenchmarkStreamBatch-8        1   5000000 ns/op   123456 peak-B   2048 B/op   17 allocs/op
BenchmarkStreamChunk64-8      1   7000000 ns/op    45678 peak-B
BenchmarkStreamChunk64-8      1   6000000 ns/op    44000 peak-B
PASS
ok  	lumen/internal/core	1.0s
`

func TestParseMetrics(t *testing.T) {
	run, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if run.Pkg != "lumen/internal/core" {
		t.Errorf("pkg = %q", run.Pkg)
	}
	if len(run.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (best-of-N merge)", len(run.Benchmarks))
	}
	b := run.Benchmarks[0]
	if b.Name != "BenchmarkStreamBatch" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Metrics["peak-B"] != 123456 || b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 17 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Best-of-N keeps the faster run's metrics alongside its ns/op.
	c := run.Benchmarks[1]
	if c.NsPerOp != 6000000 {
		t.Errorf("ns/op = %v, want best-of-N 6000000", c.NsPerOp)
	}
	if c.Metrics["peak-B"] != 44000 {
		t.Errorf("metrics not taken from the fastest run: %v", c.Metrics)
	}
}

func TestParseNoMetrics(t *testing.T) {
	run, err := parse(bufio.NewScanner(strings.NewReader(
		"BenchmarkX-4   10   100 ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if run.Benchmarks[0].Metrics != nil {
		t.Errorf("plain ns/op line should have nil metrics: %v", run.Benchmarks[0].Metrics)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n"))); err == nil {
		t.Error("no benchmark lines should be an error")
	}
}
