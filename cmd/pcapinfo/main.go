// Command pcapinfo summarizes a pcap file: link type, packet count, time
// span, protocol mix and top talkers. With -connlog it instead emits a
// Zeek-style conn.log of the capture's bidirectional flows.
//
// Both passes run on the zero-copy decode fast path: the capture is
// memory-mapped when it is a regular file, chunks arrive as lazy
// netpkt.PacketView records whose layers decode on first touch, and the
// pipelined source stage (dataset.StartPump) reads ahead through a
// bounded channel and recycles chunk buffers once the aggregation loop
// releases them. Decode overlaps with counting and memory stays a few
// chunks deep however large the file is.
//
// Usage:
//
//	pcapinfo capture.pcap
//	pcapinfo -connlog capture.pcap > conn.log
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/netpkt"
)

// chunkRows bounds each decoded chunk; with the pump's default depth the
// process holds only a handful of these at any moment.
const chunkRows = 1024

func main() {
	connlog := flag.Bool("connlog", false, "emit a Zeek-style conn.log instead of a summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcapinfo [-connlog] <file.pcap>")
		os.Exit(2)
	}
	var err error
	if *connlog {
		err = runConnlog(flag.Arg(0))
	} else {
		err = run(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcapinfo:", err)
		os.Exit(1)
	}
}

// pump opens path and starts the pipelined source stage over it, with
// the source emitting lazy view chunks predecoded to hint's depth. The
// caller must range over pump.C, call Done per chunk, then check Err;
// the returned closer releases the mapping and the file.
func pump(path string, hint netpkt.DecodeHint) (*dataset.Pump, *dataset.PcapSource, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	src, err := dataset.NewPcapSource(path, f, dataset.Packet)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	src.ConfigureViews(true, hint)
	p := dataset.StartPump(src, dataset.PumpConfig{
		MaxRows: chunkRows,
		Depth:   2,
		Recycle: true,
	})
	return p, src, func() { src.Close(); f.Close() }, nil
}

// runConnlog streams the capture through an incremental connection
// assembler — holding per-connection state but never the packet list —
// and prints the result as conn.log TSV. Connections carry only indices
// and counters, so chunk buffers are recycled as soon as each chunk has
// been fed to the assembler.
func runConnlog(path string) error {
	p, _, closef, err := pump(path, netpkt.DecodeHint{Headers: true})
	if err != nil {
		return err
	}
	defer closef()
	asm := flow.NewConnAssembler(flow.Options{})
	var conns []*flow.Connection
	for nc := range p.C {
		for j := range nc.Views {
			conns = append(conns, asm.AddSummary(nc.Base+j, nc.Views[j].Summary())...)
		}
		p.Done(nc)
	}
	if err := p.Err(); err != nil {
		return err
	}
	conns = append(conns, asm.Flush()...)
	flow.SortConnections(conns)
	return flow.WriteConnLog(os.Stdout, conns)
}

// run makes a single pipelined pass over the capture, accumulating only
// counters — memory stays constant however large the file is, and the
// summary reports how much the pump actually buffered.
func run(path string) error {
	// The summary touches headers everywhere and DNS on port-53 packets;
	// deeper app parsing never runs.
	p, src, closef, err := pump(path, netpkt.DecodeHint{Headers: true, Apps: netpkt.AppDNS})
	if err != nil {
		return err
	}
	defer closef()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var first, last time.Time
	var packets, bytes int
	protos := map[string]int{}
	talkers := map[string]int{}
	for nc := range p.C {
		for i := range nc.Views {
			vw := &nc.Views[i]
			if packets == 0 {
				first = vw.Ts
			}
			last = vw.Ts
			packets++
			bytes += vw.WireLen()
			protos[protoNameView(vw)]++
			if ip := vw.SrcIP(); ip.IsValid() {
				talkers[ip.String()]++
			} else if d, ok := vw.Dot11(); ok {
				talkers[d.Addr2.String()]++
			}
		}
		p.Done(nc)
	}
	if err := p.Err(); err != nil {
		return err
	}
	runtime.ReadMemStats(&ms1)
	st := p.Stats()
	fmt.Printf("file:      %s\n", path)
	fmt.Printf("link type: %d\n", src.Meta().Link)
	fmt.Printf("decode:    %s", src.DecodeMode())
	if packets > 0 {
		fmt.Printf(" (%.1f allocs/pkt)", float64(ms1.Mallocs-ms0.Mallocs)/float64(packets))
	}
	fmt.Println()
	fmt.Printf("packets:   %d\n", packets)
	if packets == 0 {
		return nil
	}
	dur := last.Sub(first)
	fmt.Printf("span:      %s (%s .. %s)\n", dur, first.Format(time.RFC3339), last.Format(time.RFC3339))
	fmt.Printf("bytes:     %d", bytes)
	if dur > 0 {
		fmt.Printf(" (%.1f kbit/s)", float64(bytes)*8/dur.Seconds()/1000)
	}
	fmt.Println()
	fmt.Printf("buffered:  %d chunks of ≤%d packets, peak %d bytes in flight\n",
		st.Chunks, chunkRows, st.PeakInFlightBytes)
	fmt.Println("protocols:")
	for _, kv := range sorted(protos) {
		fmt.Printf("  %-8s %d\n", kv.k, kv.v)
	}
	fmt.Println("top talkers:")
	top := sorted(talkers)
	if len(top) > 10 {
		top = top[:10]
	}
	for _, kv := range top {
		fmt.Printf("  %-22s %d\n", kv.k, kv.v)
	}
	return nil
}

// protoNameView classifies a lazy view exactly as protoName classifies
// the eagerly decoded packet (the DNS check forces the app parse only on
// port-53 packets, which the pump's hint already predecodes).
func protoNameView(v *netpkt.PacketView) string {
	if d, ok := v.Dot11(); ok {
		if d.Subtype.IsManagement() {
			return "802.11m"
		}
		return "802.11d"
	}
	if _, ok := v.DNS(); ok {
		return "dns"
	}
	if _, ok := v.TCP(); ok {
		return "tcp"
	}
	if _, ok := v.UDP(); ok {
		return "udp"
	}
	if _, ok := v.ICMP(); ok {
		return "icmp"
	}
	if _, ok := v.ARP(); ok {
		return "arp"
	}
	return "other"
}

func protoName(p *netpkt.Packet) string {
	switch {
	case p.Dot11 != nil:
		if p.Dot11.Subtype.IsManagement() {
			return "802.11m"
		}
		return "802.11d"
	case p.DNS != nil:
		return "dns"
	case p.TCP != nil:
		return "tcp"
	case p.UDP != nil:
		return "udp"
	case p.ICMP != nil:
		return "icmp"
	case p.ARP != nil:
		return "arp"
	default:
		return "other"
	}
}

type kv struct {
	k string
	v int
}

func sorted(m map[string]int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].v != out[b].v {
			return out[a].v > out[b].v
		}
		return out[a].k < out[b].k
	})
	return out
}
