// Command pcapinfo summarizes a pcap file: link type, packet count, time
// span, protocol mix and top talkers. With -connlog it instead emits a
// Zeek-style conn.log of the capture's bidirectional flows.
//
// Usage:
//
//	pcapinfo capture.pcap
//	pcapinfo -connlog capture.pcap > conn.log
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lumen/internal/flow"
	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

func main() {
	connlog := flag.Bool("connlog", false, "emit a Zeek-style conn.log instead of a summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcapinfo [-connlog] <file.pcap>")
		os.Exit(2)
	}
	var err error
	if *connlog {
		err = runConnlog(flag.Arg(0))
	} else {
		err = run(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcapinfo:", err)
		os.Exit(1)
	}
}

// runConnlog streams the capture through an incremental connection
// assembler — holding per-connection state but never the packet list —
// and prints the result as conn.log TSV.
func runConnlog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	asm := flow.NewConnAssembler(flow.Options{})
	var conns []*flow.Connection
	i := 0
	for {
		p, err := r.NextPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		conns = append(conns, asm.Add(i, p)...)
		i++
	}
	conns = append(conns, asm.Flush()...)
	flow.SortConnections(conns)
	return flow.WriteConnLog(os.Stdout, conns)
}

// run makes a single streaming pass over the capture, accumulating only
// counters — memory stays constant however large the file is.
func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	var first, last time.Time
	var packets, bytes int
	protos := map[string]int{}
	talkers := map[string]int{}
	for {
		p, err := r.NextPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if packets == 0 {
			first = p.Ts
		}
		last = p.Ts
		packets++
		bytes += p.WireLen()
		protos[protoName(p)]++
		if ip := p.SrcIP(); ip.IsValid() {
			talkers[ip.String()]++
		} else if p.Dot11 != nil {
			talkers[p.Dot11.Addr2.String()]++
		}
	}
	fmt.Printf("file:      %s\n", path)
	fmt.Printf("link type: %d\n", r.LinkType())
	fmt.Printf("packets:   %d\n", packets)
	if packets == 0 {
		return nil
	}
	dur := last.Sub(first)
	fmt.Printf("span:      %s (%s .. %s)\n", dur, first.Format(time.RFC3339), last.Format(time.RFC3339))
	fmt.Printf("bytes:     %d", bytes)
	if dur > 0 {
		fmt.Printf(" (%.1f kbit/s)", float64(bytes)*8/dur.Seconds()/1000)
	}
	fmt.Println()
	fmt.Println("protocols:")
	for _, kv := range sorted(protos) {
		fmt.Printf("  %-8s %d\n", kv.k, kv.v)
	}
	fmt.Println("top talkers:")
	top := sorted(talkers)
	if len(top) > 10 {
		top = top[:10]
	}
	for _, kv := range top {
		fmt.Printf("  %-22s %d\n", kv.k, kv.v)
	}
	return nil
}

func protoName(p *netpkt.Packet) string {
	switch {
	case p.Dot11 != nil:
		if p.Dot11.Subtype.IsManagement() {
			return "802.11m"
		}
		return "802.11d"
	case p.DNS != nil:
		return "dns"
	case p.TCP != nil:
		return "tcp"
	case p.UDP != nil:
		return "udp"
	case p.ICMP != nil:
		return "icmp"
	case p.ARP != nil:
		return "arp"
	default:
		return "other"
	}
}

type kv struct {
	k string
	v int
}

func sorted(m map[string]int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].v != out[b].v {
			return out[a].v > out[b].v
		}
		return out[a].k < out[b].k
	})
	return out
}
