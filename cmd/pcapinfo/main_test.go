package main

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

func TestRunOnGeneratedCapture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := &netpkt.Packet{
			Ts:  time.Unix(int64(i), 0),
			Eth: &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			IPv4: &netpkt.IPv4{
				TTL: 64, Protocol: netpkt.ProtoUDP,
				Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
				Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			},
			UDP: &netpkt.UDP{SrcPort: 1000, DstPort: 53},
		}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.pcap"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestProtoNameClassification(t *testing.T) {
	cases := []struct {
		p    *netpkt.Packet
		want string
	}{
		{&netpkt.Packet{TCP: &netpkt.TCP{}}, "tcp"},
		{&netpkt.Packet{UDP: &netpkt.UDP{}}, "udp"},
		{&netpkt.Packet{ICMP: &netpkt.ICMP{}}, "icmp"},
		{&netpkt.Packet{ARP: &netpkt.ARP{}}, "arp"},
		{&netpkt.Packet{DNS: &netpkt.DNS{}, UDP: &netpkt.UDP{}}, "dns"},
		{&netpkt.Packet{Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Beacon}}, "802.11m"},
		{&netpkt.Packet{Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Data}}, "802.11d"},
		{&netpkt.Packet{}, "other"},
	}
	for _, c := range cases {
		if got := protoName(c.p); got != c.want {
			t.Errorf("protoName = %q, want %q", got, c.want)
		}
	}
}
