package main

import (
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lumen/internal/flow"
	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

func TestRunOnGeneratedCapture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := &netpkt.Packet{
			Ts:  time.Unix(int64(i), 0),
			Eth: &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			IPv4: &netpkt.IPv4{
				TTL: 64, Protocol: netpkt.ProtoUDP,
				Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
				Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			},
			UDP: &netpkt.UDP{SrcPort: 1000, DstPort: 53},
		}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestConnlogMatchesBatchAssembly: the streamed conn.log must be byte-
// identical to assembling the whole capture at once.
func TestConnlogMatchesBatchAssembly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sec int64, sport, dport uint16, flags uint8) *netpkt.Packet {
		return &netpkt.Packet{
			Ts:  time.Unix(sec, 0),
			Eth: &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
			IPv4: &netpkt.IPv4{
				TTL: 64, Protocol: netpkt.ProtoTCP,
				Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
				Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			},
			TCP: &netpkt.TCP{SrcPort: sport, DstPort: dport, Flags: flags},
		}
	}
	// Two sessions on the same port pair separated by an idle gap, so the
	// streamed path evicts the first one mid-capture.
	pkts := []*netpkt.Packet{
		mk(0, 1234, 80, netpkt.FlagSYN),
		mk(1, 1234, 80, netpkt.FlagACK),
		mk(500, 1234, 80, netpkt.FlagSYN),
		mk(501, 1234, 80, netpkt.FlagACK),
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var batch strings.Builder
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.ReadAll()
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := flow.WriteConnLog(&batch, flow.Connections(all, flow.Options{})); err != nil {
		t.Fatal(err)
	}

	// Capture runConnlog's stdout.
	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	errRun := runConnlog(path)
	pw.Close()
	os.Stdout = old
	streamed, _ := io.ReadAll(pr)
	if errRun != nil {
		t.Fatal(errRun)
	}
	if string(streamed) != batch.String() {
		t.Fatalf("streamed conn.log differs from batch:\n--- streamed ---\n%s--- batch ---\n%s", streamed, batch.String())
	}
	if !strings.Contains(batch.String(), "\n") || len(strings.Split(strings.TrimSpace(batch.String()), "\n")) < 3 {
		t.Fatalf("expected 2 connections plus header in conn.log:\n%s", batch.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.pcap"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestProtoNameClassification(t *testing.T) {
	cases := []struct {
		p    *netpkt.Packet
		want string
	}{
		{&netpkt.Packet{TCP: &netpkt.TCP{}}, "tcp"},
		{&netpkt.Packet{UDP: &netpkt.UDP{}}, "udp"},
		{&netpkt.Packet{ICMP: &netpkt.ICMP{}}, "icmp"},
		{&netpkt.Packet{ARP: &netpkt.ARP{}}, "arp"},
		{&netpkt.Packet{DNS: &netpkt.DNS{}, UDP: &netpkt.UDP{}}, "dns"},
		{&netpkt.Packet{Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Beacon}}, "802.11m"},
		{&netpkt.Packet{Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Data}}, "802.11d"},
		{&netpkt.Packet{}, "other"},
	}
	for _, c := range cases {
		if got := protoName(c.p); got != c.want {
			t.Errorf("protoName = %q, want %q", got, c.want)
		}
	}
}
