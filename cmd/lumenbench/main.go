// Command lumenbench runs Lumen's benchmarking suite and regenerates the
// paper's tables and figures: Table 1, Fig. 1a–c, Fig. 5–10, the §5.2
// validation and the §5.4 improvement results (Obs. 5).
//
// Usage:
//
//	lumenbench                         # everything, default scale
//	lumenbench -fig 5                  # only Fig. 5
//	lumenbench -algs A13,A14 -datasets F1,F4
//	lumenbench -out results/           # also write results.json + CSVs
//	lumenbench -trace-out trace.json   # Chrome trace of the run (Perfetto)
//	lumenbench -metrics-out m.prom     # Prometheus metrics snapshot
//	lumenbench -prequential drift.json # drifting-traffic prequential benchmark
//
// See OBSERVABILITY.md for the span hierarchy and metric names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lumen/internal/benchsuite"
	"lumen/internal/obs"
	"lumen/internal/report"
)

// options bundles the output-shaping flags that run consumes alongside
// the suite Config.
type options struct {
	fig         string // which figure/table to produce
	out         string // directory for results.json + CSVs
	profile     bool   // print the aggregated per-op profile
	profileOut  string // write the per-op profile JSON here
	traceOut    string // write a Chrome trace_event JSON here
	traceJSONL  string // write flat per-span JSONL records here
	metricsOut  string // write Prometheus text metrics here at exit
	metricsAddr string // serve Prometheus metrics on this address
}

func main() {
	var (
		scale       = flag.Float64("scale", 0.6, "dataset scale factor (1.0 = full synthetic size)")
		seed        = flag.Int64("seed", 7, "random seed")
		fig         = flag.String("fig", "all", "which output: "+strings.Join(validFigs, ", "))
		algs        = flag.String("algs", "", "comma-separated algorithm IDs (default: all 16)")
		datasets    = flag.String("datasets", "", "comma-separated dataset IDs (default: all 15)")
		out         = flag.String("out", "", "directory to write results.json and CSV figures")
		workers     = flag.Int("workers", 0, "worker-pool size for suite runs (0 = GOMAXPROCS)")
		noCache     = flag.Bool("nocache", false, "disable the shared intermediate-result cache")
		cacheEnt    = flag.Int("cache-entries", 0, "bound the shared cache to N entries with LRU eviction (0 = unbounded)")
		stream      = flag.Bool("stream", false, "execute pipelines with the chunked streaming engine instead of batch runs")
		chunkRows   = flag.Int("chunk-rows", 0, "packets per streamed chunk with -stream (0 = whole trace in one chunk)")
		chunkBytes  = flag.Int("chunk-bytes", 0, "wire bytes per streamed chunk with -stream (0 = no byte bound; combines with -chunk-rows, first bound wins)")
		pipeDepth   = flag.Int("pipeline-depth", 0, "decoded chunks in flight with -stream (>0 runs the staged source/ops/sink pipeline; 0 = sequential chunk loop)")
		streamWrk   = flag.Int("stream-workers", 0, "goroutines for order-free row-local ops with -stream (>1 implies the staged pipeline; 0 or 1 = single worker)")
		streamShard = flag.Int("shards", 0, "flow-hash lanes for the stateful sink stage with -stream (>1 implies the staged pipeline; 0 or 1 = unsharded sink)")
		profile     = flag.Bool("profile", false, "sample per-op allocations and print the aggregated per-op profile")
		profileOut  = flag.String("profile-out", "", "write the aggregated per-op profile as JSON to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run to this file (open at ui.perfetto.dev)")
		traceJSONL  = flag.String("trace-jsonl", "", "write the trace as flat per-span JSONL records to this file")
		metricsOut  = flag.String("metrics-out", "", "write Prometheus text-format metrics to this file when the run finishes")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics at http://ADDR/metrics while the suite runs (e.g. localhost:9090)")
		preqOut     = flag.String("prequential", "", "run the drifting-traffic prequential benchmark (static vs online vs drift-triggered retrain) and write the report JSON to this file instead of the figure suite")
		preqPhases  = flag.String("preq-phases", "", "comma-separated phase dataset IDs for -prequential (default P1,P4)")
		preqModel   = flag.String("preq-model", "", "model_type for -prequential; must partial-fit natively (default mlp)")
		preqWindow  = flag.Int("preq-window", 0, "F1 window and chunk size in rows for -prequential (default 64)")
	)
	flag.Parse()

	if *preqOut != "" {
		// -scale defaults differ between modes: the figure suite trims to
		// 0.6, the drift scenario needs the full synthetic size unless the
		// user explicitly asked otherwise.
		pc := benchsuite.PrequentialConfig{
			Seed:       *seed,
			Model:      *preqModel,
			WindowRows: *preqWindow,
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				pc.Scale = *scale
			}
		})
		if ids := splitIDs(*preqPhases); len(ids) == 2 {
			pc.PhaseA, pc.PhaseB = ids[0], ids[1]
		} else if len(ids) != 0 {
			fmt.Fprintln(os.Stderr, "lumenbench: -preq-phases wants exactly two dataset IDs")
			os.Exit(1)
		}
		if err := runPrequential(pc, *preqOut); err != nil {
			fmt.Fprintln(os.Stderr, "lumenbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := benchsuite.Config{
		Scale:         *scale,
		Seed:          *seed,
		Workers:       *workers,
		NoCache:       *noCache,
		CacheEntries:  *cacheEnt,
		Profile:       *profile,
		Stream:        *stream,
		ChunkRows:     *chunkRows,
		ChunkBytes:    *chunkBytes,
		PipelineDepth: *pipeDepth,
		StreamWorkers: *streamWrk,
		StreamShards:  *streamShard,
		AlgIDs:        splitIDs(*algs),
		DatasetIDs:    splitIDs(*datasets),
	}
	opts := options{
		fig:         *fig,
		out:         *out,
		profile:     *profile,
		profileOut:  *profileOut,
		traceOut:    *traceOut,
		traceJSONL:  *traceJSONL,
		metricsOut:  *metricsOut,
		metricsAddr: *metricsAddr,
	}
	if err := run(cfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "lumenbench:", err)
		os.Exit(1)
	}
}

// validFigs lists every -fig value run accepts.
var validFigs = []string{"all", "table1", "1a", "1b", "1c", "5", "6", "7", "8", "9", "10", "validate", "obs2", "features"}

// splitIDs splits a comma-separated scope flag, trimming whitespace
// around each token and dropping empty ones, so "A13, A14," selects two
// algorithms instead of passing " A14" and "" through to the suite.
func splitIDs(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func run(cfg benchsuite.Config, opts options) error {
	fig, out := opts.fig, opts.out
	known := false
	for _, id := range validFigs {
		if fig == id {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown -fig %q (valid: %s)", fig, strings.Join(validFigs, ", "))
	}
	want := func(ids ...string) bool {
		if fig == "all" {
			return true
		}
		for _, id := range ids {
			if fig == id {
				return true
			}
		}
		return false
	}

	if opts.traceOut != "" || opts.traceJSONL != "" {
		cfg.Tracer = obs.NewTracer()
	}
	if opts.metricsOut != "" || opts.metricsAddr != "" {
		cfg.Metrics = obs.NewMetrics()
	}
	if opts.metricsAddr != "" {
		// Listen eagerly so a bad address fails the run instead of dying
		// silently in the serving goroutine.
		ln, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("serving metrics at http://%s/metrics\n", ln.Addr())
	}

	if want("table1") {
		fmt.Println("== Table 1: surveyed algorithms ==")
		fmt.Println(benchsuite.Table1())
	}
	if want("1a") {
		fmt.Println("== Fig 1a: possible direct comparisons in the literature ==")
		fmt.Println(benchsuite.Fig1a())
		fmt.Printf("fraction with zero possible comparisons: %.0f%%\n\n", benchsuite.Fig1aZeroFraction()*100)
	}

	needRuns := want("1b", "1c", "5", "6", "7", "8", "9", "10", "obs2")
	needValidate := want("validate")
	needFeatures := want("features")
	if !needRuns && !needValidate && !needFeatures {
		return nil
	}

	s, err := benchsuite.New(cfg)
	if err != nil {
		return err
	}
	if needFeatures {
		rows, err := s.AttackFeatureImportance(5)
		if err != nil {
			return err
		}
		fmt.Println("== §6 extension: relevant features per attack (permutation importance) ==")
		fmt.Println(benchsuite.FeatureImportanceTable(rows))
	}
	var files []namedCSV

	if needRuns {
		fmt.Printf("running suite: %d algorithms x %d datasets (scale %.2f)\n",
			len(s.Algorithms()), len(s.DatasetIDs()), cfg.Scale)
		s.RunAll()
		m := s.Store.Meta
		fmt.Printf("completed %d runs in %v (%d workers, %.0f%% utilization)\n",
			len(s.Store.Results), m.Wall.Round(time.Millisecond), m.Workers, m.Utilization*100)
		if !cfg.NoCache {
			cs := s.CacheStats()
			fmt.Printf("shared cache: %d hits, %d computations, %d dedup-waits, %d evictions, %d entries (~%s)\n",
				cs.Hits, cs.Misses, cs.DedupWaits, cs.Evictions, cs.Entries, report.HumanBytes(cs.Bytes))
		}
		fmt.Println()

		if want("5") {
			h := s.Fig5()
			fmt.Println("== Fig 5 ==")
			fmt.Println(h)
			files = append(files, namedCSV{"fig5.csv", h.CSV()})
		}
		if want("7") {
			rows := s.Fig7()
			var pd, rd []report.Dist
			for _, r := range rows {
				pd = append(pd, r.PrecDiff)
				rd = append(rd, r.RecDiff)
			}
			fmt.Println("== Fig 7a: precision distance from best (0 = optimal) ==")
			fmt.Println(report.DistTable("alg", pd))
			fmt.Println("== Fig 7b: recall distance from best ==")
			fmt.Println(report.DistTable("alg", rd))
		}
		if want("8", "1b") {
			p, r := s.Fig8()
			fmt.Println("== Fig 8a / Fig 1b: same-dataset precision ==")
			fmt.Println(report.DistTable("alg", p))
			fmt.Println("== Fig 8b: same-dataset recall ==")
			fmt.Println(report.DistTable("alg", r))
		}
		if want("9", "1c") {
			p, r := s.Fig9()
			fmt.Println("== Fig 9a / Fig 1c: cross-dataset precision ==")
			fmt.Println(report.DistTable("alg", p))
			fmt.Println("== Fig 9b: cross-dataset recall ==")
			fmt.Println(report.DistTable("alg", r))
		}
		if want("10") {
			hp, hr := s.Fig10()
			fmt.Println("== Fig 10 ==")
			fmt.Println(hp)
			fmt.Println(hr)
			files = append(files, namedCSV{"fig10a.csv", hp.CSV()}, namedCSV{"fig10b.csv", hr.CSV()})
		}
		if want("obs2") {
			sp, sr, cp, cr := s.Obs2(0.2)
			n := len(s.Algorithms())
			fmt.Println("== Observation 2 (score < 20% on at least one dataset) ==")
			fmt.Printf("same-dataset:  precision %d/%d algorithms, recall %d/%d\n", sp, n, sr, n)
			fmt.Printf("cross-dataset: precision %d/%d algorithms, recall %d/%d\n\n", cp, n, cr, n)
		}
		if want("6") {
			res, err := s.Fig6(0.10)
			if err != nil {
				return err
			}
			fmt.Println("== Fig 6 ==")
			fmt.Println(res.Heatmap)
			files = append(files, namedCSV{"fig6.csv", res.Heatmap.CSV()})
			fmt.Println("== Observation 5: merged-training / synthesis improvement over same-dataset mean ==")
			ids := make([]string, 0, len(res.MeanPrecision))
			for id := range res.MeanPrecision {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			imp := s.Obs5(res)
			for _, id := range ids {
				line := fmt.Sprintf("%s: merged precision %.1f%%", id, res.MeanPrecision[id]*100)
				if d, ok := imp[id]; ok {
					line += fmt.Sprintf(" (%+.1f%% vs its same-dataset mean)", d*100)
				}
				fmt.Println(line)
			}
			fmt.Println()
		}
	}
	if needValidate {
		rows, err := s.Validate()
		if err != nil {
			return err
		}
		fmt.Println("== §5.2 validation: Lumen vs originally reported scores ==")
		fmt.Println(benchsuite.ValidationTable(rows))
	}

	if profs := s.OpProfiles(); len(profs) > 0 {
		if opts.profile {
			fmt.Println("== per-operation profile (aggregated across runs) ==")
			t := &report.Table{Header: []string{"op", "runs", "cached", "total wall", "allocs"}}
			for _, p := range profs {
				t.Add(p.Func, fmt.Sprintf("%d", p.Count), fmt.Sprintf("%d", p.Cached),
					p.Wall.Round(time.Microsecond).String(), report.HumanBytes(int64(p.Allocs)))
			}
			fmt.Print(t)
			fmt.Println()
		}
		if opts.profileOut != "" {
			data, err := json.MarshalIndent(profs, "", " ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(opts.profileOut, data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote per-op profile to", opts.profileOut)
		}
	}

	// Close the suite's root span, then export whatever observability
	// sinks were requested.
	s.Finish()
	if opts.traceOut != "" {
		if err := cfg.Tracer.WriteChromeTraceFile(opts.traceOut); err != nil {
			return err
		}
		fmt.Println("wrote Chrome trace to", opts.traceOut, "(open at ui.perfetto.dev)")
	}
	if opts.traceJSONL != "" {
		if err := cfg.Tracer.WriteJSONLFile(opts.traceJSONL); err != nil {
			return err
		}
		fmt.Println("wrote span JSONL to", opts.traceJSONL)
	}
	if opts.metricsOut != "" {
		if err := cfg.Metrics.WritePrometheusFile(opts.metricsOut); err != nil {
			return err
		}
		fmt.Println("wrote Prometheus metrics to", opts.metricsOut)
	}

	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		if needRuns {
			if err := s.Store.Save(filepath.Join(out, "results.json")); err != nil {
				return err
			}
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(out, f.name), []byte(f.data), 0o644); err != nil {
				return err
			}
		}
		fmt.Println("wrote", out)
	}
	return nil
}

type namedCSV struct {
	name string
	data string
}

// runPrequential executes the drifting-traffic prequential benchmark,
// prints the per-arm summary, and writes the full report (curves
// included) as JSON.
func runPrequential(pc benchsuite.PrequentialConfig, out string) error {
	rep, err := benchsuite.RunPrequential(pc)
	if err != nil {
		return err
	}
	fmt.Printf("prequential drift benchmark: %s -> %s, model %s, %d stream rows (drift at row %d), window %d\n",
		rep.PhaseA, rep.PhaseB, rep.Model, rep.StreamRows, rep.DriftRow, rep.WindowRows)
	t := &report.Table{Header: []string{"arm", "overall F1", "pre-drift F1", "post-drift F1", "drift events", "retrains", "generation", "swap"}}
	for _, a := range rep.Arms {
		swap := "-"
		if a.SwapOutcome != "" {
			swap = fmt.Sprintf("%s (disagree %.3f)", a.SwapOutcome, a.ShadowDisagree)
		}
		gen := "-"
		if a.Generation > 0 {
			gen = fmt.Sprintf("%d", a.Generation)
		}
		t.Add(a.Name, fmt.Sprintf("%.3f", a.OverallF1), fmt.Sprintf("%.3f", a.PreDriftF1),
			fmt.Sprintf("%.3f", a.PostDriftF1), fmt.Sprintf("%d", a.DriftEvents),
			fmt.Sprintf("%d", a.Retrains), gen, swap)
	}
	fmt.Print(t)
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote prequential report to", out)
	return nil
}
