package main

import (
	"testing"

	"lumen/internal/benchsuite"
)

func TestRunStaticFigures(t *testing.T) {
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, "table1", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, "1a", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunScopedFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A14", "A15"},
		DatasetIDs: []string{"F1", "F4"},
	}
	if err := run(cfg, "8", t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidateScoped(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A07", "A10", "A14"},
		DatasetIDs: []string{"F0", "F1", "F2", "F4"},
	}
	if err := run(cfg, "validate", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadScope(t *testing.T) {
	if err := run(benchsuite.Config{AlgIDs: []string{"A99"}}, "8", ""); err == nil {
		t.Fatal("unknown algorithm scope should fail")
	}
}
