package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lumen/internal/benchsuite"
)

func TestRunStaticFigures(t *testing.T) {
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, "table1", "", false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, "1a", "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunScopedFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A14", "A15"},
		DatasetIDs: []string{"F1", "F4"},
	}
	if err := run(cfg, "8", t.TempDir(), false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidateScoped(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A07", "A10", "A14"},
		DatasetIDs: []string{"F0", "F1", "F2", "F4"},
	}
	if err := run(cfg, "validate", "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadScope(t *testing.T) {
	if err := run(benchsuite.Config{AlgIDs: []string{"A99"}}, "8", "", false, ""); err == nil {
		t.Fatal("unknown algorithm scope should fail")
	}
}

func TestSplitIDsTrimsTokens(t *testing.T) {
	got := splitIDs(" A13, A14 ,,A15, ")
	want := []string{"A13", "A14", "A15"}
	if len(got) != len(want) {
		t.Fatalf("splitIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitIDs = %v, want %v", got, want)
		}
	}
	if splitIDs("") != nil {
		t.Fatal("empty scope must stay nil (= all)")
	}
}

func TestRunRejectsUnknownFig(t *testing.T) {
	err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, "42", "", false, "")
	if err == nil {
		t.Fatal("unknown -fig value should fail, not silently print nothing")
	}
	if !strings.Contains(err.Error(), "42") || !strings.Contains(err.Error(), "1b") {
		t.Fatalf("error should name the bad value and list valid ones: %v", err)
	}
}

func TestRunAcceptsFig1bAnd1c(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A14"},
		DatasetIDs: []string{"F1", "F4"},
	}
	for _, fig := range []string{"1b", "1c"} {
		if err := run(cfg, fig, "", false, ""); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunWritesProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		Profile:    true,
		AlgIDs:     []string{"A14"},
		DatasetIDs: []string{"F1"},
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := run(cfg, "8", "", true, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var profs []benchsuite.OpProfile
	if err := json.Unmarshal(data, &profs); err != nil {
		t.Fatal(err)
	}
	if len(profs) == 0 {
		t.Fatal("profile JSON is empty")
	}
	var sawAllocs bool
	for _, p := range profs {
		if p.Count <= 0 {
			t.Errorf("op %s has count %d", p.Func, p.Count)
		}
		if p.Allocs > 0 {
			sawAllocs = true
		}
	}
	if !sawAllocs {
		t.Error("profiling on but no op recorded allocations")
	}
}
