package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lumen/internal/benchsuite"
)

func TestRunStaticFigures(t *testing.T) {
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, options{fig: "table1"}); err != nil {
		t.Fatal(err)
	}
	if err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, options{fig: "1a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScopedFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A14", "A15"},
		DatasetIDs: []string{"F1", "F4"},
	}
	if err := run(cfg, options{fig: "8", out: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidateScoped(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A07", "A10", "A14"},
		DatasetIDs: []string{"F0", "F1", "F2", "F4"},
	}
	if err := run(cfg, options{fig: "validate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadScope(t *testing.T) {
	if err := run(benchsuite.Config{AlgIDs: []string{"A99"}}, options{fig: "8"}); err == nil {
		t.Fatal("unknown algorithm scope should fail")
	}
}

func TestSplitIDsTrimsTokens(t *testing.T) {
	got := splitIDs(" A13, A14 ,,A15, ")
	want := []string{"A13", "A14", "A15"}
	if len(got) != len(want) {
		t.Fatalf("splitIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitIDs = %v, want %v", got, want)
		}
	}
	if splitIDs("") != nil {
		t.Fatal("empty scope must stay nil (= all)")
	}
}

func TestRunRejectsUnknownFig(t *testing.T) {
	err := run(benchsuite.Config{Scale: 0.2, Seed: 1}, options{fig: "42"})
	if err == nil {
		t.Fatal("unknown -fig value should fail, not silently print nothing")
	}
	if !strings.Contains(err.Error(), "42") || !strings.Contains(err.Error(), "1b") {
		t.Fatalf("error should name the bad value and list valid ones: %v", err)
	}
}

func TestRunAcceptsFig1bAnd1c(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A14"},
		DatasetIDs: []string{"F1", "F4"},
	}
	for _, fig := range []string{"1b", "1c"} {
		if err := run(cfg, options{fig: fig}); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunWritesProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		Profile:    true,
		AlgIDs:     []string{"A14"},
		DatasetIDs: []string{"F1"},
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := run(cfg, options{fig: "8", profile: true, profileOut: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var profs []benchsuite.OpProfile
	if err := json.Unmarshal(data, &profs); err != nil {
		t.Fatal(err)
	}
	if len(profs) == 0 {
		t.Fatal("profile JSON is empty")
	}
	var sawAllocs bool
	for _, p := range profs {
		if p.Count <= 0 {
			t.Errorf("op %s has count %d", p.Func, p.Count)
		}
		if p.Allocs > 0 {
			sawAllocs = true
		}
	}
	if !sawAllocs {
		t.Error("profiling on but no op recorded allocations")
	}
}

func TestRunWritesTraceAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := benchsuite.Config{
		Scale:      0.2,
		Seed:       1,
		AlgIDs:     []string{"A07"},
		DatasetIDs: []string{"F1"},
	}
	dir := t.TempDir()
	opts := options{
		fig:        "8",
		traceOut:   filepath.Join(dir, "trace.json"),
		traceJSONL: filepath.Join(dir, "trace.jsonl"),
		metricsOut: filepath.Join(dir, "metrics.prom"),
	}
	if err := run(cfg, opts); err != nil {
		t.Fatal(err)
	}

	// The Chrome trace must be valid JSON with the expected span names.
	data, err := os.ReadFile(opts.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{"suite", "batch:same-dataset", "run:A07 F1→F1", "op:train"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %d events)", want, len(trace.TraceEvents))
		}
	}

	// The JSONL export must be one JSON object per line.
	jl, err := os.ReadFile(opts.traceJSONL)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(jl)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", i+1, err)
		}
	}

	// The Prometheus snapshot must include suite, op and cache metrics.
	prom, err := os.ReadFile(opts.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lumen_runs_total 1",
		"lumen_suite_workers",
		"lumen_worker_utilization",
		"lumen_cache_misses_total",
		`lumen_ops_total{op="train"}`,
		"lumen_op_wall_seconds_bucket",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
