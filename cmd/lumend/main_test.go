package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// testPipelineJSON writes the fixture pipeline template to a temp file:
// packet granularity, every op streaming, a decision tree so the fitted
// model round-trips through mlkit.SaveModel.
func testPipelineJSON(t *testing.T) string {
	t.Helper()
	tpl := map[string]any{
		"name":        "lumend-test",
		"granularity": "packet",
		"ops": []map[string]any{
			{"func": "field_extract", "input": []string{core.InputName}, "output": "X",
				"params": map[string]any{"fields": []string{"ts", "len", "ttl", "dst_port", "tcp_syn", "iat"}}},
			{"func": "log_scale", "input": []string{"X"}, "output": "Xl"},
			{"func": "model", "output": "m", "params": map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{"func": "train", "input": []string{"m", "Xl"}, "output": "fit"},
		},
	}
	data, err := json.Marshal(tpl)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pipeline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testDS generates the shared fixture trace.
func testDS(t *testing.T) *dataset.Labeled {
	t.Helper()
	spec, ok := dataset.Get("F1")
	if !ok {
		t.Fatal("dataset F1 not registered")
	}
	return spec.Generate(0.05)
}

// trainModelFile fits the fixture pipeline on ds and persists the model.
func trainModelFile(t *testing.T, plPath string, ds *dataset.Labeled) string {
	t.Helper()
	pl, err := core.LoadPipeline(plPath)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(pl)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	clf, ok := eng.TrainedModel()
	if !ok {
		t.Fatal("no trained model")
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := mlkit.SaveModel(path, clf); err != nil {
		t.Fatal(err)
	}
	return path
}

// defaults parses an empty command line, yielding the flag defaults.
func defaults() options { return parseFlags(nil, flag.ContinueOnError) }

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"no pipeline", func(o *options) {}, "-pipeline is required"},
		{"no ingest", func(o *options) { o.pipeline = "p.json" }, "exactly one ingest"},
		{"two ingests", func(o *options) {
			o.pipeline, o.replay, o.watch = "p.json", "a.pcap", "dir"
		}, "exactly one ingest"},
		{"no model", func(o *options) { o.pipeline, o.replay = "p.json", "a.pcap" }, "exactly one model source"},
		{"model and train", func(o *options) {
			o.pipeline, o.replay, o.model, o.train = "p.json", "a.pcap", "m.json", "F1"
		}, "exactly one model source"},
		{"zero pipes", func(o *options) {
			o.pipeline, o.replay, o.train, o.pipes = "p.json", "a.pcap", "F1", 0
		}, "-pipes"},
		{"replicated feed", func(o *options) {
			o.pipeline, o.listenFeed, o.train, o.pipes = "p.json", ":0", "F1", 2
		}, "replay ingest"},
		{"bad link", func(o *options) {
			o.pipeline, o.replay, o.train, o.link = "p.json", "a.pcap", "F1", "token-ring"
		}, "unknown -link"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaults()
			tc.mut(&o)
			err := o.validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRunReplayDataset drives the full binary path on a finite replay:
// train on a registry dataset, replay it, write every sink and exit dump,
// and exit cleanly without a signal.
func TestRunReplayDataset(t *testing.T) {
	dir := t.TempDir()
	alerts := filepath.Join(dir, "alerts.jsonl")
	connlog := filepath.Join(dir, "conn.log")
	metrics := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.json")
	o := parseFlags([]string{
		"-pipeline", testPipelineJSON(t),
		"-train", "F1", "-train-scale", "0.05",
		"-replay-dataset", "F1", "-replay-scale", "0.05",
		"-chunk-rows", "32",
		"-alerts", alerts, "-connlog", connlog,
		"-metrics-out", metrics, "-trace-out", trace,
		"-listen", "",
	}, flag.ContinueOnError)
	var out bytes.Buffer
	if err := run(o, &out, make(chan os.Signal)); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `pipeline "lumend-test" stopped`) {
		t.Fatalf("no clean shutdown line in output:\n%s", out.String())
	}

	data, err := os.ReadFile(alerts)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	want := len(testDS(t).Packets)
	if len(lines) != want {
		t.Fatalf("alert lines = %d, want %d (one per replayed packet)", len(lines), want)
	}
	var a struct {
		Pipeline string `json:"pipeline"`
		ModelGen int    `json:"model_gen"`
	}
	if err := json.Unmarshal(lines[0], &a); err != nil {
		t.Fatalf("first alert line is not JSON: %v", err)
	}
	if a.Pipeline != "lumend-test" || a.ModelGen != 1 {
		t.Fatalf("first alert = %+v", a)
	}

	for name, path := range map[string]string{"connlog": connlog, "metrics": metrics, "trace": trace} {
		st, err := os.Stat(path)
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s sink empty or missing (err %v)", name, err)
		}
	}
	prom, _ := os.ReadFile(metrics)
	if !bytes.Contains(prom, []byte("lumen_daemon_verdicts_total")) {
		t.Fatalf("metrics dump missing daemon counters:\n%.300s", prom)
	}
}

// TestRunReplicas runs two replicated pipelines over one replay and
// checks the per-replica naming and sink suffixing.
func TestRunReplicas(t *testing.T) {
	dir := t.TempDir()
	alerts := filepath.Join(dir, "alerts.jsonl")
	o := parseFlags([]string{
		"-pipeline", testPipelineJSON(t),
		"-train", "F1", "-train-scale", "0.05",
		"-replay-dataset", "F1", "-replay-scale", "0.05",
		"-chunk-rows", "64", "-pipes", "2",
		"-alerts", alerts, "-listen", "",
	}, flag.ContinueOnError)
	var out bytes.Buffer
	if err := run(o, &out, make(chan os.Signal)); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, name := range []string{"lumend-test-0", "lumend-test-1"} {
		if !strings.Contains(out.String(), `pipeline "`+name+`" stopped`) {
			t.Fatalf("replica %s did not stop cleanly:\n%s", name, out.String())
		}
	}
	for _, suffix := range []string{".0", ".1"} {
		st, err := os.Stat(alerts + suffix)
		if err != nil || st.Size() == 0 {
			t.Fatalf("replica alert sink %s empty or missing (err %v)", alerts+suffix, err)
		}
	}
}

// syncBuf is a bytes.Buffer safe for the writer (run) and reader (test)
// to use concurrently.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writePcapInto atomically drops pkts as a pcap file into a watched dir.
func writePcapInto(t *testing.T, dir, name string, link netpkt.LinkType, pkts []*netpkt.Packet) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), name)
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcap.NewWriter(f, link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

// TestRunScriptedSwapOnWatch exercises the long-running path end to end:
// a watched capture directory feeds the pipeline, the scripted hot swap
// promotes the (identical) candidate under live ingest, and a SIGTERM
// drains cleanly.
func TestRunScriptedSwapOnWatch(t *testing.T) {
	ds := testDS(t)
	plPath := testPipelineJSON(t)
	model := trainModelFile(t, plPath, ds)
	watchDir := t.TempDir()
	writePcapInto(t, watchDir, "trace-000.pcap", ds.Link, ds.Packets[:100])

	alerts := filepath.Join(t.TempDir(), "alerts.jsonl")
	o := parseFlags([]string{
		"-pipeline", plPath,
		"-model", model,
		"-watch", watchDir, "-watch-poll", "10ms",
		"-chunk-rows", "8",
		"-swap-model", model, "-swap-after-chunks", "2",
		"-shadow-chunks", "2", "-max-disagree", "0",
		"-alerts", alerts, "-listen", "",
	}, flag.ContinueOnError)
	out := &syncBuf{}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, out, sigs) }()

	// Keep rotating fresh captures in until a post-promotion verdict
	// (model generation 2) lands in the alert stream.
	deadline := time.Now().Add(20 * time.Second)
	promoted := false
	for i := 1; !promoted; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no generation-2 alert before deadline\noutput:\n%s", out.String())
		}
		base := (i * 20) % (len(ds.Packets) - 20)
		writePcapInto(t, watchDir, fmt.Sprintf("trace-%03d.pcap", i), ds.Link, ds.Packets[base:base+20])
		time.Sleep(50 * time.Millisecond)
		if data, err := os.ReadFile(alerts); err == nil {
			promoted = bytes.Contains(data, []byte(`"model_gen":2`))
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("lumend did not drain on SIGTERM\noutput:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "swap promoted by auto") {
		t.Fatalf("no promotion summary in output:\n%s", got)
	}
	if !strings.Contains(got, `pipeline "lumend-test" stopped`) {
		t.Fatalf("no clean shutdown line in output:\n%s", got)
	}
}

// TestLoadPcapErrors covers the replay loader's failure modes.
func TestLoadPcapErrors(t *testing.T) {
	if _, err := loadPcap(filepath.Join(t.TempDir(), "missing.pcap")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.pcap")
	if err := os.WriteFile(bad, []byte("not a pcap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadPcap(bad); err == nil {
		t.Fatal("bad magic must error")
	}
}
