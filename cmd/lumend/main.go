// Command lumend is the resident detection daemon: it keeps one or more
// trained streaming pipelines (internal/daemon) scoring live packet
// sources, writes JSONL alerts and Zeek-style conn-logs, serves the
// operational HTTP surface (/metrics, /trace, /pipelines with
// drain/reload/swap control verbs), and supports atomic hot swap of a
// newly trained model with shadow-scored divergence reporting.
//
// Usage:
//
//	lumend -pipeline p.json -train F1 -replay capture.pcap           # replay a capture at full speed
//	lumend -pipeline p.json -model m.json -replay c.pcap -speed 1    # wire-speed pacing
//	lumend -pipeline p.json -model m.json -listen-feed :9999         # framed live feed
//	lumend -pipeline p.json -model m.json -watch /var/spool/pcaps    # rotated-capture directory
//	lumend ... -swap-model candidate.json -swap-after-chunks 8       # scripted hot swap
//	lumend ... -retrain -retrain-fresh -replay-delay 10ms            # drift-triggered retrain loop
//
// The daemon drains gracefully on SIGINT/SIGTERM: sources stop
// producing, ingested packets are scored to completion, conn-logs and
// alert sinks are flushed, and a per-pipeline summary is printed.
// OPERATIONS.md is the operator guide for this binary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"lumen/internal/core"
	"lumen/internal/daemon"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
	"lumen/internal/obs"
	"lumen/internal/pcap"
)

func main() {
	opts := parseFlags(os.Args[1:], flag.ExitOnError)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(opts, os.Stdout, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "lumend:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set. Keeping it a plain struct lets tests
// drive run directly.
type options struct {
	pipeline string
	pipes    int
	seed     int64

	replay        string
	replayDataset string
	replayScale   float64
	speed         float64
	replayDelay   time.Duration
	listenFeed    string
	watch         string
	watchGlob     string
	watchPoll     time.Duration
	link          string

	model      string
	train      string
	trainScale float64

	chunkRows  int
	chunkBytes int
	depth      int
	workers    int

	alerts        string
	anomaliesOnly bool
	connlog       string

	listen string

	swapModel    string
	swapAfter    int
	shadowChunks int
	maxDisagree  float64
	swapAuto     bool

	retrain          bool
	retrainReservoir int
	retrainMinRows   int
	retrainCooldown  int
	retrainFresh     bool

	traceOut   string
	metricsOut string
}

// parseFlags builds the lumend flag set. The help strings double as the
// flag reference in README.md — keep them in sync.
func parseFlags(args []string, onErr flag.ErrorHandling) options {
	var o options
	fs := flag.NewFlagSet("lumend", onErr)
	fs.StringVar(&o.pipeline, "pipeline", "", "pipeline template JSON file (required)")
	fs.IntVar(&o.pipes, "pipes", 1, "concurrent pipeline replicas (replay ingest only)")
	fs.Int64Var(&o.seed, "seed", 7, "random seed")
	fs.StringVar(&o.replay, "replay", "", "pcap file to replay")
	fs.StringVar(&o.replayDataset, "replay-dataset", "", "registry dataset ID to replay (F0-F9, P0-P4); a comma-separated list replays the datasets back to back on a continued timeline (a drifting stream)")
	fs.Float64Var(&o.replayScale, "replay-scale", 1.0, "dataset scale for -replay-dataset")
	fs.Float64Var(&o.speed, "speed", 0, "replay pacing as a multiple of capture speed (0 = unpaced)")
	fs.DurationVar(&o.replayDelay, "replay-delay", 0, "fixed per-chunk replay delay, ignoring capture timestamps (0 = unpaced; alternative to -speed)")
	fs.StringVar(&o.listenFeed, "listen-feed", "", "listen for framed packets on host:port or unix:/path")
	fs.StringVar(&o.watch, "watch", "", "directory to watch for rotated pcap captures")
	fs.StringVar(&o.watchGlob, "watch-glob", "*.pcap", "filename glob for -watch")
	fs.DurationVar(&o.watchPoll, "watch-poll", 500*time.Millisecond, "poll interval for -watch")
	fs.StringVar(&o.link, "link", "ethernet", "link type of -listen-feed frames (ethernet, dot11)")
	fs.StringVar(&o.model, "model", "", "persisted model JSON to install (instead of -train)")
	fs.StringVar(&o.train, "train", "", "registry dataset ID to train on (F0-F9, P0-P4)")
	fs.Float64Var(&o.trainScale, "train-scale", 1.0, "dataset scale for -train")
	fs.IntVar(&o.chunkRows, "chunk-rows", 512, "max packets per stream chunk")
	fs.IntVar(&o.chunkBytes, "chunk-bytes", 0, "max bytes per stream chunk (0 = unbounded)")
	fs.IntVar(&o.depth, "depth", 0, "stream pipeline prefetch depth (0 = sequential)")
	fs.IntVar(&o.workers, "workers", 0, "stream feature-stage workers (0 = GOMAXPROCS)")
	fs.StringVar(&o.alerts, "alerts", "-", "JSONL alert sink: file path, - for stdout, empty to disable")
	fs.BoolVar(&o.anomaliesOnly, "anomalies-only", false, "only write alert lines for units predicted anomalous")
	fs.StringVar(&o.connlog, "connlog", "", "write a Zeek-style conn-log TSV to this file at drain")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:8787", "HTTP address for /metrics, /trace, /pipelines (empty = disabled)")
	fs.StringVar(&o.swapModel, "swap-model", "", "hot-swap this persisted model in once scoring is underway")
	fs.IntVar(&o.swapAfter, "swap-after-chunks", 4, "chunks to score before starting the scripted swap")
	fs.IntVar(&o.shadowChunks, "shadow-chunks", 8, "chunks to shadow-score before the swap decision")
	fs.Float64Var(&o.maxDisagree, "max-disagree", 0, "max disagreement fraction for an automatic promote")
	fs.BoolVar(&o.swapAuto, "swap-auto", true, "decide the swap automatically after the shadow window")
	fs.BoolVar(&o.retrain, "retrain", false, "retrain in the background when the pipeline's drift_detect op fires and hot-swap the result through the shadow gate")
	fs.IntVar(&o.retrainReservoir, "retrain-reservoir", 4096, "labelled-row reservoir capacity for -retrain")
	fs.IntVar(&o.retrainMinRows, "retrain-min-rows", 256, "smallest reservoir fill that permits a -retrain refit")
	fs.IntVar(&o.retrainCooldown, "retrain-cooldown", 32, "minimum chunks between -retrain triggers")
	fs.BoolVar(&o.retrainFresh, "retrain-fresh", false, "flush the reservoir on each drift trigger so the refit sees only post-drift rows")
	fs.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace_event JSON to this file on exit")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write Prometheus text-format metrics to this file on exit")
	fs.Parse(args)
	return o
}

// validate rejects inconsistent flag combinations before anything runs.
func (o *options) validate() error {
	if o.pipeline == "" {
		return errors.New("-pipeline is required")
	}
	ingests := 0
	for _, v := range []string{o.replay, o.replayDataset, o.listenFeed, o.watch} {
		if v != "" {
			ingests++
		}
	}
	if ingests != 1 {
		return errors.New("need exactly one ingest: -replay, -replay-dataset, -listen-feed, or -watch")
	}
	if (o.model != "") == (o.train != "") {
		return errors.New("need exactly one model source: -model or -train")
	}
	if o.pipes < 1 {
		return errors.New("-pipes must be at least 1")
	}
	if o.pipes > 1 && o.replay == "" && o.replayDataset == "" {
		return errors.New("-pipes > 1 requires replay ingest (-replay or -replay-dataset)")
	}
	if o.speed > 0 && o.replayDelay > 0 {
		return errors.New("-speed and -replay-delay are mutually exclusive")
	}
	if _, err := linkType(o.link); err != nil {
		return err
	}
	return nil
}

// linkType maps the -link flag to a netpkt link type.
func linkType(name string) (netpkt.LinkType, error) {
	switch name {
	case "ethernet":
		return netpkt.LinkEthernet, nil
	case "dot11":
		return netpkt.LinkDot11, nil
	default:
		return 0, fmt.Errorf("unknown -link %q (want ethernet or dot11)", name)
	}
}

// run boots the daemon described by opts, waits for the pipelines to
// finish or for a signal, drains, and writes the exit dumps. out
// receives all operator-facing prints.
func run(o options, out io.Writer, sigs <-chan os.Signal) error {
	if err := o.validate(); err != nil {
		return err
	}
	pl, err := core.LoadPipeline(o.pipeline)
	if err != nil {
		return err
	}
	if o.swapModel != "" {
		// Fail fast on an unreadable swap candidate instead of surprising
		// the operator minutes into the run.
		if _, err := mlkit.LoadModel(o.swapModel); err != nil {
			return fmt.Errorf("-swap-model: %w", err)
		}
	}

	d := daemon.New(daemon.Config{Metrics: obs.NewMetrics(), Tracer: obs.NewTracer()})
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()

	var trainDS *dataset.Labeled
	if o.train != "" {
		spec, ok := dataset.Get(o.train)
		if !ok {
			return fmt.Errorf("unknown dataset %q", o.train)
		}
		trainDS = spec.Generate(o.trainScale)
		fmt.Fprintf(out, "lumend: training pipeline %q on %s (%d packets)\n", pl.Name, trainDS.Name, len(trainDS.Packets))
	}

	var replayDS *dataset.Labeled
	switch {
	case o.replay != "":
		if replayDS, err = loadPcap(o.replay); err != nil {
			return err
		}
	case o.replayDataset != "":
		var parts []*dataset.Labeled
		for _, id := range strings.Split(o.replayDataset, ",") {
			id = strings.TrimSpace(id)
			spec, ok := dataset.Get(id)
			if !ok {
				return fmt.Errorf("unknown dataset %q", id)
			}
			parts = append(parts, spec.Generate(o.replayScale))
		}
		if replayDS, err = dataset.Concat(parts...); err != nil {
			return err
		}
	}

	stream := core.StreamConfig{
		ChunkRows:     o.chunkRows,
		ChunkBytes:    o.chunkBytes,
		PipelineDepth: o.depth,
		Workers:       o.workers,
	}
	stdout := &syncWriter{w: out}
	pipes := make([]*daemon.Pipe, 0, o.pipes)
	for i := 0; i < o.pipes; i++ {
		name := pl.Name
		if name == "" {
			name = "pipeline"
		}
		if o.pipes > 1 {
			name = fmt.Sprintf("%s-%d", name, i)
		}

		eng := core.NewEngine(pl)
		eng.Seed = o.seed
		eng.Metrics = d.Metrics()
		switch {
		case o.model != "":
			clf, err := mlkit.LoadModel(o.model)
			if err != nil {
				return err
			}
			if err := eng.InstallModel(clf); err != nil {
				return err
			}
		default:
			if err := eng.Train(trainDS); err != nil {
				return fmt.Errorf("training: %w", err)
			}
		}

		src, err := o.buildSource(replayDS, i)
		if err != nil {
			return err
		}
		cfg := daemon.PipeConfig{
			Name:          name,
			Engine:        eng,
			Source:        src,
			Stream:        stream,
			AnomaliesOnly: o.anomaliesOnly,
		}
		if o.retrain {
			cfg.Retrain = daemon.RetrainConfig{
				Enabled:        true,
				ReservoirCap:   o.retrainReservoir,
				MinRows:        o.retrainMinRows,
				CooldownChunks: o.retrainCooldown,
				Seed:           o.seed,
				FreshData:      o.retrainFresh,
				Swap: daemon.SwapOptions{
					ShadowChunks: o.shadowChunks,
					AutoDecide:   o.swapAuto,
					MaxDisagree:  o.maxDisagree,
				},
			}
		}
		if w, c, err := openSink(o.alerts, i, o.pipes, stdout); err != nil {
			return err
		} else {
			cfg.Alerts = w
			if c != nil {
				closers = append(closers, c)
			}
		}
		if w, c, err := openSink(o.connlog, i, o.pipes, nil); err != nil {
			return err
		} else {
			cfg.ConnLog = w
			if c != nil {
				closers = append(closers, c)
			}
		}
		p, err := d.Start(cfg)
		if err != nil {
			return err
		}
		pipes = append(pipes, p)
		fmt.Fprintf(out, "lumend: pipeline %q running (%s ingest)\n", name, o.ingestKind())
	}

	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: d.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "lumend: http on http://%s (/metrics /trace /pipelines)\n", ln.Addr())
	}

	if o.swapModel != "" {
		for _, p := range pipes {
			go o.scriptedSwap(p, stdout)
		}
	}

	allDone := make(chan struct{})
	go func() {
		for _, p := range pipes {
			<-p.Done()
		}
		close(allDone)
	}()
	select {
	case <-allDone:
	case s := <-sigs:
		fmt.Fprintf(out, "lumend: %v — draining\n", s)
	}
	drainErr := d.DrainAll()

	var failed []error
	if drainErr != nil {
		failed = append(failed, drainErr)
	}
	for _, st := range d.Status() {
		fmt.Fprintf(out, "lumend: pipeline %q %s: passes=%d chunks=%d packets=%d verdicts=%d alerts=%d gen=%d\n",
			st.Name, st.State, st.Passes, st.Chunks, st.Packets, st.Verdicts, st.Alerts, st.ModelGeneration)
		if st.LastSwap != nil {
			fmt.Fprintf(out, "lumend: pipeline %q swap %s by %s: chunks=%d rows=%d disagree=%.4f score_mad=%.4f\n",
				st.Name, st.LastSwap.Outcome, st.LastSwap.By, st.LastSwap.Chunks, st.LastSwap.Rows,
				st.LastSwap.DisagreeFrac, st.LastSwap.ScoreMAD)
		}
	}
	if o.traceOut != "" {
		if err := d.Tracer().WriteChromeTraceFile(o.traceOut); err != nil {
			return err
		}
		fmt.Fprintln(out, "lumend: wrote Chrome trace to", o.traceOut)
	}
	if o.metricsOut != "" {
		if err := d.Metrics().WritePrometheusFile(o.metricsOut); err != nil {
			return err
		}
		fmt.Fprintln(out, "lumend: wrote Prometheus metrics to", o.metricsOut)
	}
	return errors.Join(failed...)
}

// ingestKind names the configured ingest for the boot banner.
func (o *options) ingestKind() string {
	switch {
	case o.replay != "":
		return "replay " + o.replay
	case o.replayDataset != "":
		return "replay dataset " + o.replayDataset
	case o.listenFeed != "":
		return "feed " + o.listenFeed
	default:
		return "watch " + o.watch
	}
}

// buildSource constructs the ingest source for replica i.
func (o *options) buildSource(replayDS *dataset.Labeled, i int) (dataset.Source, error) {
	switch {
	case replayDS != nil:
		if o.replayDelay > 0 {
			return daemon.NewPacedSource(dataset.NewSliceSource(replayDS), o.replayDelay), nil
		}
		return daemon.NewReplaySource(dataset.NewSliceSource(replayDS), o.speed), nil
	case o.listenFeed != "":
		network, addr := "tcp", o.listenFeed
		if rest, ok := strings.CutPrefix(o.listenFeed, "unix:"); ok {
			network, addr = "unix", rest
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		link, _ := linkType(o.link)
		return daemon.NewFeedSource("feed:"+ln.Addr().String(), ln, link, 1024), nil
	default:
		link, _ := linkType(o.link)
		return daemon.NewDirSource("watch:"+o.watch, o.watch, o.watchGlob, dataset.Packet, link, o.watchPoll), nil
	}
}

// openSink resolves one sink path for replica i: "" disables, "-" is the
// shared stdout writer, anything else is a file (suffixed .<i> when
// running replicas). The returned closer is nil for stdout.
func openSink(path string, i, pipes int, stdout io.Writer) (io.Writer, io.Closer, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		if stdout == nil {
			return nil, nil, errors.New("this sink cannot write to stdout")
		}
		return stdout, nil, nil
	}
	if pipes > 1 {
		path = fmt.Sprintf("%s.%d", path, i)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f, nil
}

// scriptedSwap implements -swap-model: wait until the pipeline has
// scored -swap-after-chunks chunks, then start the hot swap and report
// its outcome. Runs on its own goroutine per pipeline.
func (o *options) scriptedSwap(p *daemon.Pipe, out io.Writer) {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for p.Status().Chunks < int64(o.swapAfter) {
		select {
		case <-p.Done():
			return
		case <-tick.C:
		}
	}
	opts := daemon.SwapOptions{
		ShadowChunks: o.shadowChunks,
		AutoDecide:   o.swapAuto,
		MaxDisagree:  o.maxDisagree,
	}
	if err := p.SwapFromFile(o.swapModel, opts); err != nil {
		fmt.Fprintf(out, "lumend: pipeline %q scripted swap: %v\n", p.Name(), err)
		return
	}
	fmt.Fprintf(out, "lumend: pipeline %q shadow-scoring %s\n", p.Name(), o.swapModel)
}

// loadPcap reads a capture into an unlabeled dataset for replay.
func loadPcap(path string) (*dataset.Labeled, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return nil, err
	}
	pkts, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return &dataset.Labeled{
		Name:        path,
		Granularity: dataset.Packet,
		Link:        r.LinkType(),
		Packets:     pkts,
		Labels:      make([]int, len(pkts)),
		Attacks:     make([]string, len(pkts)),
	}, nil
}

// syncWriter serializes writes from concurrent pipeline goroutines onto
// one shared stream (stdout).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}
