// Command pcapgen synthesizes one of the benchmark datasets to a pcap
// file plus a ground-truth label CSV (index,label,attack), so the traces
// can be inspected with standard tooling or replayed through cmd/lumen.
//
// Usage:
//
//	pcapgen -dataset F1 -scale 1.0 -out f1.pcap -labels f1.labels.csv
//	pcapgen -list
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"lumen/internal/dataset"
	"lumen/internal/pcap"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available datasets and exit")
		dsID   = flag.String("dataset", "", "dataset ID (F0-F9, P0-P4)")
		scale  = flag.Float64("scale", 1.0, "scale factor")
		out    = flag.String("out", "", "output pcap path")
		labels = flag.String("labels", "", "output label CSV path (optional)")
	)
	flag.Parse()

	if *list {
		for _, s := range dataset.Registry() {
			fmt.Printf("%-3s %-11s %-8v %s (attacks: %v)\n", s.ID, s.Granularity, s.Link, s.Desc, s.Attacks)
		}
		return
	}
	if err := run(*dsID, *scale, *out, *labels); err != nil {
		fmt.Fprintln(os.Stderr, "pcapgen:", err)
		os.Exit(1)
	}
}

func run(dsID string, scale float64, out, labels string) error {
	spec, ok := dataset.Get(dsID)
	if !ok {
		return fmt.Errorf("unknown dataset %q (try -list)", dsID)
	}
	if out == "" {
		return fmt.Errorf("need -out")
	}
	ds := spec.Generate(scale)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, ds.Link)
	if err != nil {
		return err
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d packets, %.1f%% malicious, attacks %v\n",
		out, len(ds.Packets), ds.MaliciousFraction()*100, ds.AttackSet())

	if labels == "" {
		return nil
	}
	lf, err := os.Create(labels)
	if err != nil {
		return err
	}
	defer lf.Close()
	cw := csv.NewWriter(lf)
	if err := cw.Write([]string{"index", "label", "attack"}); err != nil {
		return err
	}
	for i := range ds.Packets {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(ds.Labels[i]), ds.Attacks[i]}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", labels)
	return nil
}
