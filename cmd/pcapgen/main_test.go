package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lumen/internal/pcap"
)

func TestRunWritesPcapAndLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "f1.pcap")
	labels := filepath.Join(dir, "f1.csv")
	if err := run("F1", 0.2, out, labels); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 100 {
		t.Fatalf("pcap has %d packets, want >= 100", len(pkts))
	}
	data, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(pkts)+1 { // header + one row per packet
		t.Fatalf("label rows %d, want %d", len(lines), len(pkts)+1)
	}
	if lines[0] != "index,label,attack" {
		t.Errorf("header = %q", lines[0])
	}
	sawMalicious := false
	for _, l := range lines[1:] {
		if strings.Contains(l, ",1,") {
			sawMalicious = true
			break
		}
	}
	if !sawMalicious {
		t.Error("no malicious labels written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("ZZ", 1, "x.pcap", ""); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("F1", 1, "", ""); err == nil {
		t.Error("missing -out should fail")
	}
}
