// Package lumen is a Go reproduction of "Lumen: A Framework for
// Developing and Evaluating ML-Based IoT Network Anomaly Detection"
// (Sharma et al., CoNEXT 2022).
//
// The implementation lives under internal/: the pipeline framework
// (internal/core), the ML library (internal/mlkit), packet and flow
// substrates (internal/netpkt, internal/pcap, internal/flow,
// internal/features), the synthetic benchmark corpora (internal/dataset),
// the 16 ported algorithms (internal/algorithms) and the benchmarking
// suite (internal/benchsuite). Executables are under cmd/ and runnable
// examples under examples/. The root-level bench_test.go regenerates
// every table and figure of the paper's evaluation as Go benchmarks.
package lumen
