module lumen

go 1.22
