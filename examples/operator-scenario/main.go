// Operator scenario: the paper's §2.2 motivating example. A small-business
// operator wants to detect brute-force and DoS attacks on IoT devices and
// must pick an algorithm. Lumen answers with a scoped comparison: run the
// candidate algorithms on the datasets containing those attacks and read
// the per-attack precision heatmap.
//
//	go run ./examples/operator-scenario
package main

import (
	"fmt"
	"log"

	"lumen/internal/benchsuite"
)

func main() {
	// Scope: connection-level algorithms the operator could deploy at
	// the gateway, on the datasets containing brute-force (F0) and DoS
	// (F1) attacks plus one botnet set (F4) as a robustness probe.
	suite, err := benchsuite.New(benchsuite.Config{
		Scale:      0.8,
		Seed:       7,
		AlgIDs:     []string{"A07", "A10", "A13", "A14", "A15"},
		DatasetIDs: []string{"F0", "F1", "F4"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running scoped comparison (5 algorithms x 3 datasets)...")
	suite.RunSameDataset()
	suite.RunCrossDataset()

	// The per-attack heatmap answers "which algorithm for MY attacks?".
	fmt.Println()
	fmt.Println(suite.Fig5())

	// And the cross-dataset check answers "will it survive contact with
	// traffic that differs from the training capture?".
	fmt.Println("cross-dataset spot check (training and deployment differ):")
	for _, r := range suite.Store.Results {
		if !r.Same() && r.OK() {
			fmt.Printf("  %s trained on %s, tested on %s: precision %5.1f%%  recall %5.1f%%\n",
				r.Alg, r.TrainDS, r.TestDS, r.Precision*100, r.Recall*100)
		}
	}
}
