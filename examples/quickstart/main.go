// Quickstart: train a ported algorithm on a benchmark dataset and score
// it — the five-minute tour of Lumen's public surface.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

func main() {
	// 1. Pick a dataset from the benchmarking suite. F1 stands in for
	//    CICIDS 2017 Wednesday: IoT background traffic with SYN- and
	//    HTTP-flood DoS attacks, labelled per connection.
	spec, ok := dataset.Get("F1")
	if !ok {
		log.Fatal("dataset F1 not registered")
	}
	ds := spec.Generate(1.0)
	fmt.Printf("dataset %s: %d packets, %.1f%% malicious, attacks %v\n",
		ds.Name, len(ds.Packets), ds.MaliciousFraction()*100, ds.AttackSet())

	// 2. Split into train/test halves.
	train, test := benchsuite.InterleaveSplit(ds)

	// 3. Pick a ported algorithm. A14 is the Zeek-features + random
	//    forest design; like every algorithm it is just a Lumen pipeline.
	alg, _ := algorithms.Get("A14")
	fmt.Printf("algorithm %s (%s): %s\n", alg.ID, alg.Granularity(), alg.Desc)
	for _, op := range alg.Pipeline.Ops {
		fmt.Printf("  %-16s -> %s\n", op.Func, op.Output)
	}

	// 4. Train and evaluate through the execution engine.
	eng := core.NewEngine(alg.Pipeline)
	eng.Seed = 42
	if err := eng.Train(train); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Test(test)
	if err != nil {
		log.Fatal(err)
	}

	c := mlkit.NewConfusion(res.Truth, res.Pred)
	fmt.Printf("\nevaluated %d connections\n", len(res.Truth))
	fmt.Printf("precision %.1f%%  recall %.1f%%  f1 %.1f%%\n",
		c.Precision()*100, c.Recall()*100, c.F1()*100)
}
