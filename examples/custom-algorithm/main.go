// Custom algorithm: define a brand-new anomaly detector by filling in a
// pipeline template (the paper's Fig. 4 workflow) — no new code, just a
// JSON description of operations — then benchmark it against a ported
// state-of-the-art algorithm on the same data.
//
//	go run ./examples/custom-algorithm
package main

import (
	"fmt"
	"log"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

// template is what a Lumen user writes: extract packet fields, group by
// source IP, slice into 10-second windows, aggregate, classify with a
// random forest. Compare with the paper's Fig. 4 — same structure.
const template = `{
  "name": "my-detector",
  "granularity": "packet",
  "ops": [
    {"func": "field_extract", "input": ["$packets"], "output": "Packets",
     "params": {"fields": ["ts", "iat", "len", "src_ip", "dst_ip",
                           "dst_port", "tcp_flags", "proto"]}},
    {"func": "group_by", "input": ["Packets"], "output": "Grouped_packets",
     "params": {"flowid": ["src_ip"]}},
    {"func": "time_slice", "input": ["Grouped_packets"], "output": "Sliced_packets",
     "params": {"window": 10}},
    {"func": "broadcast_aggregates", "input": ["Sliced_packets"], "output": "Features",
     "params": {"list": [
       {"col": "len",      "fn": "mean"},
       {"col": "len",      "fn": "bandwidth"},
       {"col": "iat",      "fn": "std"},
       {"col": "dst_port", "fn": "entropy"},
       {"col": "dst_ip",   "fn": "distinct"}
     ]}},
    {"func": "select", "input": ["Features"], "output": "X",
     "params": {"cols": ["len", "dst_port", "tcp_flags", "proto",
                         "grp_len_mean", "grp_len_bandwidth", "grp_iat_std",
                         "grp_dst_port_entropy", "grp_dst_ip_distinct"]}},
    {"func": "model", "input": [], "output": "clf",
     "params": {"model_type": "random_forest", "n_trees": 40}},
    {"func": "train", "input": ["clf", "X"], "output": "trained"}
  ]
}`

func main() {
	// The template is parsed AND type-checked before anything runs;
	// mis-wired pipelines fail here with a pointed error.
	mine, err := core.ParsePipeline([]byte(template))
	if err != nil {
		log.Fatal(err)
	}

	// Benchmark it against Kitsune (A06) on the P0 packet-level dataset.
	spec, _ := dataset.Get("P0")
	train, test := benchsuite.InterleaveSplit(spec.Generate(1.0))

	kitsune, _ := algorithms.Get("A06")
	for _, p := range []*core.Pipeline{mine, kitsune.Pipeline} {
		eng := core.NewEngine(p)
		eng.Seed = 7
		if err := eng.Train(train); err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		res, err := eng.Test(test)
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		fmt.Printf("%-22s precision %5.1f%%  recall %5.1f%%\n",
			p.Name,
			mlkit.Precision(res.Truth, res.Pred)*100,
			mlkit.Recall(res.Truth, res.Pred)*100)
	}
}
