// Synthesis: the paper's §5.4 experiment. Lumen's modularity lets it
// construct new algorithms automatically — a greedy brute-force search
// over the feature modules and models contributed by prior work, scored
// by the benchmarking suite. The found pipeline is printed as a template
// a user could save and rerun.
//
//	go run ./examples/synthesis
package main

import (
	"fmt"
	"log"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
)

func main() {
	suite, err := benchsuite.New(benchsuite.Config{
		Scale:      0.5,
		Seed:       7,
		AlgIDs:     []string{"A13", "A14", "A15"}, // prior work to beat
		DatasetIDs: []string{"F1", "F4", "F6", "F9"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: mean same-dataset precision of the prior algorithms.
	suite.RunSameDataset()
	var bestPrior float64
	var bestPriorID string
	for id, runs := range suite.Store.ByAlg() {
		var sum float64
		for _, r := range runs {
			sum += r.Precision
		}
		mean := sum / float64(len(runs))
		fmt.Printf("prior %s: mean precision %.1f%%\n", id, mean*100)
		if mean > bestPrior {
			bestPrior, bestPriorID = mean, id
		}
	}

	// Search: combine feature modules (zeek, smartdet, iiot, firstn) with
	// candidate models and preprocessing, scored on the same suite.
	eval := suite.SynthesisEval()
	found, score, err := algorithms.Synthesize(eval, algorithms.SynthOptions{MaxRounds: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsynthesized %q: mean precision %.1f%% (best prior: %s at %.1f%%)\n",
		found.Name, score*100, bestPriorID, bestPrior*100)

	tmpl, err := core.MarshalPipeline(found)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsynthesized pipeline template:")
	fmt.Println(string(tmpl))
}
