// Daemon hot swap: replace a detection model under live ingest without
// dropping or double-scoring a single chunk. A resident pipeline
// (internal/daemon) replays a capture while an offline retrain produces
// a candidate model; the daemon shadow-scores the candidate next to the
// active model, publishes the divergence as lumen_swap_divergence
// metrics, and promotes it only when the two agree closely enough.
//
//	go run ./examples/daemon-hot-swap
//
// The same flow is available from the command line — see OPERATIONS.md
// for the lumend walkthrough:
//
//	lumend -pipeline examples/daemon-hot-swap/pipeline.json -train F1 \
//	       -replay-dataset F1 -swap-model candidate.json
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lumen/internal/core"
	"lumen/internal/daemon"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

func main() {
	pl, err := core.LoadPipeline(pipelinePath())
	if err != nil {
		log.Fatal(err)
	}
	spec, ok := dataset.Get("F1")
	if !ok {
		log.Fatal("dataset F1 not registered")
	}
	live := spec.Generate(0.3) // the "production" traffic the daemon scores

	// The active model: trained on a small early capture, the way a
	// deployment usually starts.
	active := core.NewEngine(pl)
	active.Seed = 7
	if err := active.Train(spec.Generate(0.1)); err != nil {
		log.Fatal(err)
	}

	// The candidate: an offline retrain on more data, persisted the way
	// `lumen -save-model` would. In production this file arrives from a
	// training job; here we produce it inline.
	retrained := core.NewEngine(pl)
	retrained.Seed = 7
	if err := retrained.Train(spec.Generate(0.2)); err != nil {
		log.Fatal(err)
	}
	clf, _ := retrained.TrainedModel()
	dir, err := os.MkdirTemp("", "hot-swap-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	candidate := filepath.Join(dir, "candidate.json")
	if err := mlkit.SaveModel(candidate, clf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidate model persisted to", candidate)

	// Boot the daemon: one pipeline replaying the live trace in small
	// chunks, alerts to a JSONL file, conn-log written at drain. The
	// replay is paced so the whole capture takes about two seconds of
	// wall clock — long enough for a swap to land mid-stream, the way it
	// would on a real wire.
	span := live.Packets[len(live.Packets)-1].Ts.Sub(live.Packets[0].Ts)
	speed := span.Seconds() / 2.0
	d := daemon.New(daemon.Config{Metrics: obs.NewMetrics(), Tracer: obs.NewTracer()})
	alerts, err := os.Create(filepath.Join(dir, "alerts.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer alerts.Close()
	connlog, err := os.Create(filepath.Join(dir, "conn.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer connlog.Close()
	p, err := d.Start(daemon.PipeConfig{
		Name:    "edge",
		Engine:  active,
		Source:  daemon.NewReplaySource(dataset.NewSliceSource(live), speed),
		Stream:  core.StreamConfig{ChunkRows: 16},
		Alerts:  alerts,
		ConnLog: connlog,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline %q scoring %d packets (model generation %d)\n",
		p.Name(), len(live.Packets), p.Status().ModelGeneration)

	// Let a few chunks flow, then start the swap: the candidate shadows
	// the active model for 4 chunks and is promoted automatically if
	// their verdicts disagree on at most 20% of rows.
	for p.Status().Chunks < 5 {
		time.Sleep(time.Millisecond)
	}
	err = p.SwapFromFile(candidate, daemon.SwapOptions{
		ShadowChunks: 4,
		AutoDecide:   true,
		MaxDisagree:  0.20,
	})
	if err != nil {
		log.Fatal("swap: ", err)
	}
	fmt.Println("candidate attached, shadow-scoring under live ingest...")

	// Wait for the automatic decision, then drain gracefully.
	for {
		if st := p.Status(); st.LastSwap != nil {
			fmt.Printf("swap %s by %s: shadowed %d chunks / %d rows, disagree=%.4f, score_mad=%.4f\n",
				st.LastSwap.Outcome, st.LastSwap.By, st.LastSwap.Chunks,
				st.LastSwap.Rows, st.LastSwap.DisagreeFrac, st.LastSwap.ScoreMAD)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Drain(); err != nil {
		log.Fatal(err)
	}
	st := p.Status()
	fmt.Printf("drained: %d packets, %d verdicts, %d alert lines, model generation %d\n",
		st.Packets, st.Verdicts, st.Alerts, st.ModelGeneration)

	// The divergence numbers the operator would scrape from /metrics.
	fmt.Println("\nswap metrics:")
	var prom strings.Builder
	d.Metrics().WritePrometheus(&prom)
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "lumen_swap_divergence") ||
			strings.HasPrefix(line, "lumen_daemon_swaps_total") ||
			strings.HasPrefix(line, "lumen_daemon_model_generation") {
			fmt.Println("  " + line)
		}
	}
}

// pipelinePath resolves the template whether the example runs from the
// repo root (go run ./examples/daemon-hot-swap) or from this directory.
func pipelinePath() string {
	for _, p := range []string{
		"examples/daemon-hot-swap/pipeline.json",
		"pipeline.json",
	} {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "examples/daemon-hot-swap/pipeline.json"
}
