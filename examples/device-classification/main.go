// Device classification: the paper's §6 extension beyond anomaly
// detection. "Our framework can be used to develop and evaluate any ML
// algorithm on network data ... we would only need to add a new dataset
// ... and the rest of the functions/modules would be used directly."
// Here the same flow-feature module feeds a multiclass random forest
// that identifies WHICH KIND of device produced each connection.
//
//	go run ./examples/device-classification
package main

import (
	"fmt"
	"log"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

func main() {
	spec, _ := dataset.Get("F1") // cameras, plugs, hubs, sensors
	ds := spec.Generate(1.0)

	// Relabel: class = source device kind (0 = external endpoint).
	classes, yPkt := dataset.DeviceClassTask(ds)
	fmt.Printf("classes: %v\n", classes)

	// Reuse the standard packet-field module unchanged; only the labels
	// differ from the anomaly-detection task.
	ps, err := core.ExtractPacketFields(ds, []string{
		"len", "payload_len", "proto", "src_port", "dst_port",
		"is_tcp", "is_udp", "iat", "is_mqtt", "is_http", "dns_qd",
	})
	if err != nil {
		log.Fatal(err)
	}

	Xtr, ytr, Xte, yte := mlkit.StratifiedSplit(ps.X, yPkt, 0.3, 7)
	rf := &mlkit.RandomForest{NTrees: 30, Seed: 7}
	if err := rf.Fit(Xtr, ytr); err != nil {
		log.Fatal(err)
	}
	pred := rf.Predict(Xte)

	correct := 0
	perClass := make([]int, len(classes))
	perClassHit := make([]int, len(classes))
	for i := range yte {
		perClass[yte[i]]++
		if pred[i] == yte[i] {
			correct++
			perClassHit[yte[i]]++
		}
	}
	fmt.Printf("\npacket-level device classification over %d test packets\n", len(yte))
	fmt.Printf("overall accuracy: %.1f%%\n\n", 100*float64(correct)/float64(len(yte)))
	for c, name := range classes {
		if perClass[c] == 0 {
			continue
		}
		fmt.Printf("  %-10s %5d packets, %5.1f%% correct\n",
			name, perClass[c], 100*float64(perClassHit[c])/float64(perClass[c]))
	}
}
