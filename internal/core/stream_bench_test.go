package core

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lumen/internal/dataset"
)

// streamBenchFix holds the shared benchmark fixtures: the P0 capture at
// two sizes and an engine trained once per size, so each benchmark
// iteration measures test-mode execution only. The acceptance claim is
// that streamed test-mode peak live heap tracks the chunk size, not the
// dataset size — hence the 1x/2x pair.
var streamBenchFix struct {
	once       sync.Once
	ds1, ds2   *dataset.Labeled
	eng1, eng2 *Engine
}

func streamBenchSetup(b *testing.B) {
	b.Helper()
	streamBenchFix.once.Do(func() {
		spec, ok := dataset.Get("P0")
		if !ok {
			panic("dataset P0 not registered")
		}
		streamBenchFix.ds1 = spec.Generate(1.0)
		streamBenchFix.ds2 = spec.Generate(2.0)
		// nprint produces a wide per-packet bitmap frame, so batch test
		// mode holds an n-packets × hundreds-of-columns matrix while the
		// streamed path only ever materializes one chunk of it.
		for _, f := range []struct {
			ds  *dataset.Labeled
			dst **Engine
		}{{streamBenchFix.ds1, &streamBenchFix.eng1}, {streamBenchFix.ds2, &streamBenchFix.eng2}} {
			eng := NewEngine(nprintPipeline())
			eng.Seed = 7
			if err := eng.Train(f.ds); err != nil {
				panic(err)
			}
			*f.dst = eng
		}
	})
	if streamBenchFix.eng1 == nil || streamBenchFix.eng2 == nil {
		b.Fatal("stream benchmark fixtures failed to initialize")
	}
}

// measurePeak runs fn b.N times and reports the live-heap high-water
// mark above the post-GC baseline as the custom metric peak-B (picked up
// by cmd/benchjson into BENCH_PR4.json). GC is forced aggressive for the
// duration so dead chunk frames are collected promptly — otherwise the
// heap never shrinks mid-run at these sizes and streamed and batch peaks
// would be indistinguishable. The mark is taken both by a background
// sampler (catches transients inside a run) and synchronously after each
// run returns, while that run's final frames are still uncollected.
func measurePeak(b *testing.B, fn func() error) {
	b.Helper()
	oldGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(oldGC)
	runtime.GC()
	base := heapLiveBytes()
	var peak atomic.Uint64
	sample := func() {
		for {
			v := heapLiveBytes()
			cur := peak.Load()
			if v <= cur || peak.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sample()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := fn()
		sample()
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
	}
	b.StopTimer()
	close(stop)
	<-done
	p := peak.Load()
	if p > base {
		p -= base
	} else {
		p = 0
	}
	b.ReportMetric(float64(p), "peak-B")
}

func BenchmarkStreamTestBatch(b *testing.B) {
	streamBenchSetup(b)
	measurePeak(b, func() error {
		_, err := streamBenchFix.eng1.Test(streamBenchFix.ds1)
		return err
	})
}

func BenchmarkStreamTestChunk64(b *testing.B) {
	streamBenchSetup(b)
	measurePeak(b, func() error {
		_, err := streamBenchFix.eng1.TestStream(streamBenchFix.ds1, StreamConfig{ChunkRows: 64})
		return err
	})
}

func BenchmarkStreamTestChunk1024(b *testing.B) {
	streamBenchSetup(b)
	measurePeak(b, func() error {
		_, err := streamBenchFix.eng1.TestStream(streamBenchFix.ds1, StreamConfig{ChunkRows: 1024})
		return err
	})
}

func BenchmarkStreamTestBatch2x(b *testing.B) {
	streamBenchSetup(b)
	measurePeak(b, func() error {
		_, err := streamBenchFix.eng2.Test(streamBenchFix.ds2)
		return err
	})
}

func BenchmarkStreamTestChunk64_2x(b *testing.B) {
	streamBenchSetup(b)
	measurePeak(b, func() error {
		_, err := streamBenchFix.eng2.TestStream(streamBenchFix.ds2, StreamConfig{ChunkRows: 64})
		return err
	})
}

// heapObjectsBytes is the bytes occupied by heap objects (live plus
// not-yet-swept) — the process's actual heap footprint, cheap enough to
// sample from a background goroutine without stopping the world.
func heapObjectsBytes() uint64 {
	s := [1]metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// benchPipeline runs one RunStream shape b.N times under the DEFAULT GC
// and reports wall time plus two memory metrics: peak-B, the sampled
// high-water mark of heap object bytes above the pre-run baseline, and
// inflight-B, the pump's peak of decoded-but-unreleased wire bytes (zero
// for the sequential loop, which holds exactly one chunk by
// construction). measurePeak's aggressive-GC harness is deliberately not
// used here: forcing a collection every few hundred kilobytes serializes
// the stages and masks the pipeline's latency-hiding win.
func benchPipeline(b *testing.B, cfg StreamConfig, delay time.Duration) {
	streamBenchSetup(b)
	runtime.GC()
	base := heapObjectsBytes()
	var peak atomic.Uint64
	sample := func() {
		for {
			v := heapObjectsBytes()
			cur := peak.Load()
			if v <= cur || peak.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sample()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var src dataset.Source = dataset.NewSliceSource(streamBenchFix.ds2)
		if delay > 0 {
			src = &slowSource{inner: src, delay: delay}
		}
		if _, err := streamBenchFix.eng2.RunStream(src, ModeTest, cfg); err != nil {
			b.Fatal(err)
		}
		sample()
	}
	b.StopTimer()
	close(stop)
	<-done
	p := peak.Load()
	if p > base {
		p -= base
	} else {
		p = 0
	}
	b.ReportMetric(float64(p), "peak-B")
	b.ReportMetric(float64(streamBenchFix.eng2.LastStream.PeakInFlightBytes), "inflight-B")
}

// BenchmarkPipeline* compares the sequential streaming loop against the
// staged pipeline on the same trace, chunk size, and pipeline — the
// PR's headline numbers (BENCH_PR5.json). nprint is the worker-heavy
// shape: the wide per-packet bitmap extract fans out across op workers
// while scoring stays ordered in the sink. Worker fan-out only pays on
// multi-core hosts (GOMAXPROCS > 1); on one core the CPU-bound variants
// pin "no slower than sequential" while the IO-bound pair below shows
// the latency-hiding win.
func BenchmarkPipelineSequential(b *testing.B) {
	benchPipeline(b, StreamConfig{ChunkRows: 256}, 0)
}

func BenchmarkPipelineDepth4(b *testing.B) {
	benchPipeline(b, StreamConfig{ChunkRows: 256, PipelineDepth: 4}, 0)
}

func BenchmarkPipelineDepth4Workers4(b *testing.B) {
	benchPipeline(b, StreamConfig{ChunkRows: 256, PipelineDepth: 4, Workers: 4}, 0)
}

// benchSourceLatency simulates an I/O-bound packet source — a capture
// decoded from disk or a capped NIC ring — where each chunk pull blocks.
// This is where the staged pipeline wins even on a single core: the
// source goroutine waits on I/O while the op and sink stages compute, so
// per-chunk latency is hidden instead of added to the critical path.
const benchSourceLatency = 500 * time.Microsecond

func BenchmarkPipelineIOSequential(b *testing.B) {
	benchPipeline(b, StreamConfig{ChunkRows: 256}, benchSourceLatency)
}

func BenchmarkPipelineIODepth4(b *testing.B) {
	benchPipeline(b, StreamConfig{ChunkRows: 256, PipelineDepth: 4}, benchSourceLatency)
}

// shardBenchFix is the sink-bound fixture for the BenchmarkShard* set: a
// pipeline whose per-chunk cost is almost entirely sink-stage work —
// incremental flow assembly plus autoencoder scoring of every packet row
// — trained once on the 2x P0 trace. The decode and op-worker stages are
// trivial by comparison, so shard lanes are what the wall clock measures.
var shardBenchFix struct {
	once sync.Once
	eng  *Engine
}

func shardBenchSetup(b *testing.B) {
	b.Helper()
	streamBenchSetup(b)
	shardBenchFix.once.Do(func() {
		p := &Pipeline{
			Name:        "bench-shard-sink",
			Granularity: "packet",
			Ops: []OpSpec{
				{Func: "flow_assemble", Input: []string{InputName}, Output: "flows",
					Params: map[string]any{"granularity": "connection"}},
				{Func: "field_extract", Input: []string{InputName}, Output: "X",
					Params: map[string]any{"fields": []any{"len", "ttl", "dst_port", "tcp_syn"}}},
				{Func: "normalize", Input: []string{"X"}, Output: "Xn", Params: map[string]any{"kind": "minmax"}},
				{Func: "model", Output: "m", Params: map[string]any{"model_type": "autoencoder", "epochs": 3}},
				{Func: "train", Input: []string{"m", "Xn"}, Output: "fit"},
			},
		}
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.Train(streamBenchFix.ds2); err != nil {
			panic(err)
		}
		shardBenchFix.eng = eng
	})
	if shardBenchFix.eng == nil {
		b.Fatal("shard benchmark fixture failed to initialize")
	}
}

// benchShard times one flow-sharded test pass; shards-effective reports
// the lane count the run actually used (after demotion), pinning that
// the benchmark exercised what its name claims.
func benchShard(b *testing.B, shards int) {
	shardBenchSetup(b)
	cfg := StreamConfig{ChunkRows: 1024, PipelineDepth: 4, Workers: 2, Shards: shards}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := dataset.NewSliceSource(streamBenchFix.ds2)
		if _, err := shardBenchFix.eng.RunStream(src, ModeTest, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(shardBenchFix.eng.LastStream.Shards), "shards-effective")
}

// BenchmarkShard* is the flow-sharded sink scaling set (BENCH_PR6.json):
// the same sink-bound pass at 1, 2, 4 and 8 lanes. Lane scoring and flow
// assembly run concurrently across shards, so throughput scales with
// cores up to the flow-hash balance; on a single-core host (GOMAXPROCS=1)
// the lanes time-slice one CPU, so the numbers pin the partition
// overhead (per-lane op calls on row subsets plus job hand-off), not a
// speedup — see DESIGN.md "Flow-sharded sink".
func BenchmarkShardSink1(b *testing.B) { benchShard(b, 1) }

func BenchmarkShardSink2(b *testing.B) { benchShard(b, 2) }

func BenchmarkShardSink4(b *testing.B) { benchShard(b, 4) }

func BenchmarkShardSink8(b *testing.B) { benchShard(b, 8) }

// benchShardLazy times the same sink-bound pass over an mmap-backed
// pcap source in view mode: lazy chunks partition across the lanes on
// PacketView.Tuple() and flow assembly consumes value-copied packet
// summaries. lazy-views pins that the fast path actually engaged (1)
// and shards-effective that no lane demotion happened.
func benchShardLazy(b *testing.B, shards int) {
	shardBenchSetup(b)
	raw := captureBytes(b, streamBenchFix.ds2)
	path := filepath.Join(b.TempDir(), "bench.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		b.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	src, err := dataset.NewPcapSource("bench.pcap", f, dataset.Packet)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	cfg := StreamConfig{ChunkRows: 1024, PipelineDepth: 4, Workers: 2, Shards: shards}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shardBenchFix.eng.RunStream(src, ModeTest, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := src.Reset(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	ls := shardBenchFix.eng.LastStream
	b.ReportMetric(float64(ls.Shards), "shards-effective")
	lazy := 0.0
	if ls.LazyViews {
		lazy = 1
	}
	b.ReportMetric(lazy, "lazy-views")
}

// BenchmarkShardSinkLazy* pair with BenchmarkShardSink*: the same lane
// counts with lazy view chunks flowing through the sharded sink
// (BENCH_PR10.json).
func BenchmarkShardSinkLazy4(b *testing.B) { benchShardLazy(b, 4) }

func BenchmarkShardSinkLazy8(b *testing.B) { benchShardLazy(b, 8) }
