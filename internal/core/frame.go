package core

import (
	"fmt"
	"strconv"

	"lumen/internal/mlkit"
	"lumen/internal/mlkit/linalg"
)

// UnitKind declares what one frame row represents, so predictions can be
// attributed back to packets or flows for evaluation.
type UnitKind int

// Row units.
const (
	UnitPacket UnitKind = iota
	UnitFlow
	UnitGroup
)

// String names the unit kind ("packet", "flow", "group").
func (k UnitKind) String() string {
	switch k {
	case UnitPacket:
		return "packet"
	case UnitFlow:
		return "flow"
	case UnitGroup:
		return "group"
	default:
		return fmt.Sprintf("unit(%d)", int(k))
	}
}

// Column is one named column: numeric (F) or categorical (S), never both.
type Column struct {
	Name string
	F    []float64
	S    []string
}

// IsNumeric reports whether the column holds float data.
func (c *Column) IsNumeric() bool { return c.F != nil }

// Frame is the columnar table flowing between operations. Columnar layout
// makes aggregate computation a cache-friendly scan — one of the design
// choices the ablation benches measure.
type Frame struct {
	N      int
	Cols   []Column
	byName map[string]int

	// Unit declares the row unit; UnitIdx maps each row to its source
	// index (packet index or flow index). Both optional for derived
	// frames.
	Unit    UnitKind
	UnitIdx []int

	// Labels is the per-row ground truth when known (training frames).
	Labels []int
	// Attacks is the per-row attack attribution ("" = benign).
	Attacks []string
}

// Kind implements Value.
func (*Frame) Kind() Kind { return KindFrame }

// NewFrame returns an empty frame of n rows.
func NewFrame(n int) *Frame {
	return &Frame{N: n, byName: make(map[string]int)}
}

// AddF appends a numeric column. It panics on length mismatch — columns
// are built by ops, so a mismatch is a programming error.
func (f *Frame) AddF(name string, vals []float64) {
	if len(vals) != f.N {
		panic(fmt.Sprintf("core: column %q has %d values, frame has %d rows", name, len(vals), f.N))
	}
	f.byName[name] = len(f.Cols)
	f.Cols = append(f.Cols, Column{Name: name, F: vals})
}

// AddS appends a categorical column.
func (f *Frame) AddS(name string, vals []string) {
	if len(vals) != f.N {
		panic(fmt.Sprintf("core: column %q has %d values, frame has %d rows", name, len(vals), f.N))
	}
	f.byName[name] = len(f.Cols)
	f.Cols = append(f.Cols, Column{Name: name, S: vals})
}

// Col returns the named column, or nil when absent.
func (f *Frame) Col(name string) *Column {
	i, ok := f.byName[name]
	if !ok {
		return nil
	}
	return &f.Cols[i]
}

// Names returns column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.Cols))
	for i := range f.Cols {
		out[i] = f.Cols[i].Name
	}
	return out
}

// FlatMatrix renders the numeric columns as one flat row-major matrix —
// a single backing allocation regardless of row count, in the form the
// linalg kernels consume directly. Categorical columns are skipped.
func (f *Frame) FlatMatrix() *linalg.Dense {
	var numeric []*Column
	for i := range f.Cols {
		if f.Cols[i].IsNumeric() {
			numeric = append(numeric, &f.Cols[i])
		}
	}
	m := linalg.NewDense(f.N, len(numeric))
	for j, c := range numeric {
		src := c.F
		for r, v := range src {
			m.Data[r*m.Cols+j] = v
		}
	}
	return m
}

// Matrix renders the numeric columns as row-major feature vectors, the
// form mlkit models consume. It is a compatibility view over FlatMatrix:
// the returned rows share one flat backing array.
func (f *Frame) Matrix() [][]float64 {
	return f.FlatMatrix().RowViews()
}

// Select returns a new frame with only the named columns (sharing column
// data), preserving unit and label metadata.
func (f *Frame) Select(names []string) (*Frame, error) {
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for _, n := range names {
		c := f.Col(n)
		if c == nil {
			return nil, fmt.Errorf("core: select: no column %q (have %v)", n, f.Names())
		}
		if c.IsNumeric() {
			out.AddF(n, c.F)
		} else {
			out.AddS(n, c.S)
		}
	}
	return out, nil
}

// FilterRows returns a new frame containing only rows where keep is true.
func (f *Frame) FilterRows(keep []bool) *Frame {
	idx := make([]int, 0, f.N)
	for i, k := range keep {
		if k {
			idx = append(idx, i)
		}
	}
	return f.TakeRows(idx)
}

// TakeRows returns a new frame with the given rows, in order. An
// identity permutation (all rows, original order) is detected in O(n)
// and returns a view sharing the column data, like Select.
func (f *Frame) TakeRows(idx []int) *Frame {
	if len(idx) == f.N {
		identity := true
		for i, r := range idx {
			if r != i {
				identity = false
				break
			}
		}
		if identity {
			out := NewFrame(f.N)
			out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
			for _, c := range f.Cols {
				if c.IsNumeric() {
					out.AddF(c.Name, c.F)
				} else {
					out.AddS(c.Name, c.S)
				}
			}
			return out
		}
	}
	out := NewFrame(len(idx))
	out.Unit = f.Unit
	if f.UnitIdx != nil {
		out.UnitIdx = make([]int, len(idx))
		for i, r := range idx {
			out.UnitIdx[i] = f.UnitIdx[r]
		}
	}
	if f.Labels != nil {
		out.Labels = make([]int, len(idx))
		for i, r := range idx {
			out.Labels[i] = f.Labels[r]
		}
	}
	if f.Attacks != nil {
		out.Attacks = make([]string, len(idx))
		for i, r := range idx {
			out.Attacks[i] = f.Attacks[r]
		}
	}
	for _, c := range f.Cols {
		if c.IsNumeric() {
			vals := make([]float64, len(idx))
			for i, r := range idx {
				vals[i] = c.F[r]
			}
			out.AddF(c.Name, vals)
		} else {
			vals := make([]string, len(idx))
			for i, r := range idx {
				vals[i] = c.S[r]
			}
			out.AddS(c.Name, vals)
		}
	}
	return out
}

// Grouped is a frame partitioned into row groups by key.
type Grouped struct {
	F      *Frame
	Keys   []string // group key per group
	Groups [][]int  // row indices per group
	// GroupOf maps each frame row to its group, -1 when ungrouped.
	GroupOf []int
}

// Kind implements Value.
func (*Grouped) Kind() Kind { return KindGrouped }

// groupRows partitions rows of f by the concatenated string value of the
// key columns, deterministically ordered by first appearance.
func groupRows(f *Frame, keyCols []string) (*Grouped, error) {
	cols := make([]*Column, len(keyCols))
	for i, n := range keyCols {
		c := f.Col(n)
		if c == nil {
			return nil, fmt.Errorf("core: group_by: no column %q", n)
		}
		cols[i] = c
	}
	g := &Grouped{F: f, GroupOf: make([]int, f.N)}
	index := map[string]int{}
	// Keys are built into one reused byte buffer: strconv.AppendFloat with
	// 'g'/-1 emits exactly what fmt.Sprintf("%g") did, without the fmt
	// machinery or the per-column string concatenations.
	var buf []byte
	for r := 0; r < f.N; r++ {
		buf = buf[:0]
		for i, c := range cols {
			if i > 0 {
				buf = append(buf, '|')
			}
			if c.IsNumeric() {
				buf = appendG(buf, c.F[r])
			} else {
				buf = append(buf, c.S[r]...)
			}
		}
		gi, ok := index[string(buf)]
		if !ok {
			gi = len(g.Groups)
			key := string(buf)
			index[key] = gi
			g.Keys = append(g.Keys, key)
			g.Groups = append(g.Groups, nil)
		}
		g.Groups[gi] = append(g.Groups[gi], r)
		g.GroupOf[r] = gi
	}
	return g, nil
}

// appendG appends v formatted exactly as fmt.Sprintf("%g", v): shortest
// round-trip representation, including fmt's "+Inf"/"-Inf"/"NaN" forms.
func appendG(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// sortedCopy returns a sorted copy of xs (shared sort helper in mlkit).
func sortedCopy(xs []float64) []float64 {
	return mlkit.SortedCopy(xs, nil)
}
