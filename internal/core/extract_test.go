package core

import (
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

func TestExtractFlowFeatures(t *testing.T) {
	ds := smallDS(t, "F1")
	fs, err := ExtractFlowFeatures(ds, dataset.ConnectionG, []string{"duration", "pkt_count", "dst_port"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Names) != 3 {
		t.Fatalf("names = %v, want 3", fs.Names)
	}
	if len(fs.X) == 0 || len(fs.X[0]) != 3 {
		t.Fatalf("X shape %dx%d", len(fs.X), len(fs.X[0]))
	}
	if len(fs.Y) != len(fs.X) || len(fs.Attacks) != len(fs.X) {
		t.Fatal("labels/attacks misaligned")
	}
	if fs.Unit != UnitFlow {
		t.Errorf("unit = %v, want flow", fs.Unit)
	}
	// Must contain both classes for a labelled attack dataset.
	pos := 0
	for _, v := range fs.Y {
		pos += v
	}
	if pos == 0 || pos == len(fs.Y) {
		t.Errorf("degenerate labels: %d/%d positive", pos, len(fs.Y))
	}
}

func TestExtractFlowFeaturesRejectsPacketGranularity(t *testing.T) {
	ds := smallDS(t, "F1")
	if _, err := ExtractFlowFeatures(ds, dataset.Packet, nil); err == nil {
		t.Fatal("packet granularity should be rejected")
	}
}

func TestExtractPacketFields(t *testing.T) {
	ds := smallDS(t, "P0")
	fs, err := ExtractPacketFields(ds, []string{"len", "src_ip", "dst_port"})
	if err != nil {
		t.Fatal(err)
	}
	// src_ip is a string column and must be skipped from X/Names.
	if len(fs.Names) != 2 {
		t.Fatalf("names = %v, want [len dst_port]", fs.Names)
	}
	if len(fs.X) != len(ds.Packets) {
		t.Fatalf("rows %d != packets %d", len(fs.X), len(ds.Packets))
	}
	if fs.Unit != UnitPacket {
		t.Errorf("unit = %v, want packet", fs.Unit)
	}
}

func TestModelOpTuneGridSearch(t *testing.T) {
	p := &Pipeline{
		Name:        "tuned",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{
				"model_type": "decision_tree",
				"tune":       map[string]any{"max_depth": []any{2.0, 10.0}},
			}},
			{Func: "train", Input: []string{"m", "X"}, Output: "t"},
		},
	}
	eng := NewEngine(p)
	eng.Seed = 5
	ds := smallDS(t, "F1")
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if prec := mlkit.Precision(res.Truth, res.Pred); prec < 0.8 {
		t.Errorf("tuned precision %.3f too low", prec)
	}
}

func TestModelOpTuneRejectsBadSpecs(t *testing.T) {
	if _, err := opModel(nil, nil, params{
		"model_type": "gaussian_nb",
		"tune":       map[string]any{"x": []any{1.0}},
	}); err == nil {
		t.Error("tune on unsupported model should fail at Check time")
	}
	if _, err := opModel(nil, nil, params{
		"model_type": "decision_tree",
		"tune":       map[string]any{"max_depth": "nope"},
	}); err == nil {
		t.Error("non-list tune value should fail")
	}
	if _, err := opModel(nil, nil, params{
		"model_type": "decision_tree",
		"tune":       map[string]any{"max_depth": []any{"x"}},
	}); err == nil {
		t.Error("non-numeric tune entry should fail")
	}
}
