package core

import (
	"fmt"
	"reflect"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/obs"
)

// onlinePipeline is the canonical online-learning template: streaming
// scalers feed an SGD-family model, with a drift monitor on the score
// stream.
func onlinePipeline(model string) *Pipeline {
	return &Pipeline{
		Name:        "stream-online-" + model,
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port", "tcp_syn"}}},
			{Func: "normalize", Input: []string{"X"}, Output: "Xn", Params: map[string]any{"kind": "zscore"}},
			{Func: "clip", Input: []string{"Xn"}, Output: "Xc", Params: map[string]any{"quantile": 0.99}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": model}},
			{Func: "train", Input: []string{"m", "Xc"}, Output: "fit"},
			{Func: "drift_detect", Input: []string{"fit"}, Output: "drift",
				Params: map[string]any{"lambda": 5.0, "min_samples": 10}},
		},
	}
}

// noScalerPipeline keeps the feature path stateless so online training is
// a pure function of global row order.
func noScalerPipeline(model string) *Pipeline {
	return &Pipeline{
		Name:        "stream-online-raw-" + model,
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port", "tcp_syn"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": model}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

func onlineDS(t *testing.T) *dataset.Labeled {
	t.Helper()
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	return spec.Generate(0.05)
}

// TestOnlineTrainChunkInvariantNoScaler: without streaming scalers in the
// path, an online training pass is a pure fold over the global row order,
// so every chunk size must produce the identical fitted model. linear_svm
// and mlp partial-fit natively; decision_tree goes through the reservoir
// wrapper, whose Algorithm-R sample is also a function of row order only.
func TestOnlineTrainChunkInvariantNoScaler(t *testing.T) {
	ds := onlineDS(t)
	for _, model := range []string{"linear_svm", "mlp", "decision_tree"} {
		var want *EvalResult
		for _, rows := range streamChunkSizes {
			eng := NewEngine(noScalerPipeline(model))
			eng.Seed = 7
			if err := eng.TrainStream(ds, StreamConfig{ChunkRows: rows, Online: true}); err != nil {
				t.Fatalf("%s chunk %d: online train: %v", model, rows, err)
			}
			got, err := eng.Test(ds)
			if err != nil {
				t.Fatalf("%s chunk %d: test: %v", model, rows, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(want.Pred, got.Pred) {
				t.Errorf("%s: chunk size %d trains a different model", model, rows)
			}
		}
	}
}

// TestOnlinePrequentialShapeEquivalence: at a fixed chunk size, an online
// pass (streaming scalers, partial-fit train, prequential test, drift
// monitor) must produce identical results under every execution shape —
// sequential, pipelined, worker fan-out, and a sharded request (which
// online demotes to one sink).
func TestOnlinePrequentialShapeEquivalence(t *testing.T) {
	ds := onlineDS(t)
	p := onlinePipeline("linear_svm")
	for _, rows := range streamChunkSizes {
		var want *EvalResult
		wantDrift := -1
		for _, shape := range streamExecShapes {
			shape.ChunkRows = rows
			shape.Online = true
			eng := NewEngine(p)
			eng.Seed = 7
			if err := eng.TrainStream(ds, shape); err != nil {
				t.Fatalf("chunk %d shape %+v: train: %v", rows, shape, err)
			}
			got, err := eng.TestStream(ds, shape)
			if err != nil {
				t.Fatalf("chunk %d shape %+v: test: %v", rows, shape, err)
			}
			if want == nil {
				want, wantDrift = got, eng.LastStream.DriftEvents
				continue
			}
			requireEqualResults(t, want, got, fmt.Sprintf("chunk %d workers %d shards %d", rows, shape.Workers, shape.Shards))
			if eng.LastStream.DriftEvents != wantDrift {
				t.Errorf("chunk %d workers %d shards %d: %d drift events, want %d",
					rows, shape.Workers, shape.Shards, eng.LastStream.DriftEvents, wantDrift)
			}
		}
	}
}

// TestOnlineScalersStream pins that an online training pass streams the
// scalers and the train op (no barrier, no retained packets): the whole
// pipeline must be classified streamed in ModeTrain when online.
func TestOnlineScalersStream(t *testing.T) {
	p := onlinePipeline("linear_svm")
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Check(); err != nil {
		t.Fatal(err)
	}
	off := eng.planStream(ModeTrain, false)
	on := eng.planStream(ModeTrain, true)
	for i, op := range p.Ops {
		if op.Func == "model" {
			continue
		}
		if !on.streamed[i] {
			t.Errorf("online train: op %s not streamed", op.Func)
		}
	}
	for _, fn := range []string{"normalize", "clip", "train"} {
		for i, op := range p.Ops {
			if op.Func == fn && off.streamed[i] {
				t.Errorf("offline train: op %s unexpectedly streamed", fn)
			}
		}
	}
	if len(on.accum) != 0 || on.needPackets {
		t.Errorf("online train plan retains state: accum=%v needPackets=%v", on.accum, on.needPackets)
	}
}

// driftedDS reorders a trace so all benign packets precede all attack
// packets: a score stream that shifts sharply mid-trace.
func driftedDS(t *testing.T) *dataset.Labeled {
	t.Helper()
	ds := onlineDS(t)
	out := &dataset.Labeled{
		Name:        ds.Name + "-drift",
		Granularity: ds.Granularity,
		Link:        ds.Link,
		Devices:     ds.Devices,
	}
	for _, want := range []int{0, 1} {
		for i, l := range ds.Labels {
			if l != want {
				continue
			}
			out.Packets = append(out.Packets, ds.Packets[i])
			out.Labels = append(out.Labels, l)
			out.Attacks = append(out.Attacks, ds.Attacks[i])
		}
	}
	return out
}

// TestDriftDetectRaisesEvents: a model that tracks the labels sees its
// prediction stream shift when the attack phase begins; the drift op must
// fire, surface events through the hook (with the chunk's features when
// requested), and count them in LastStream.
func TestDriftDetectRaisesEvents(t *testing.T) {
	ds := driftedDS(t)
	p := &Pipeline{
		Name:        "stream-drift",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port", "tcp_syn"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
			{Func: "drift_detect", Input: []string{"fit"}, Output: "drift",
				Params: map[string]any{"lambda": 5.0, "min_samples": 10}},
		},
	}
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	var events []DriftEvent
	sawFeatures := false
	hooks := &StreamHooks{
		WantFeatures: true,
		AfterChunk: func(up ChunkUpdate) error {
			events = append(events, up.Drift...)
			if len(up.Features) > 0 && len(up.Features) == len(up.Labels) {
				sawFeatures = true
			}
			return nil
		},
	}
	res, err := eng.TestStream(ds, StreamConfig{ChunkRows: 64, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(ds.Packets) {
		t.Fatalf("got %d predictions for %d packets", len(res.Pred), len(ds.Packets))
	}
	if len(events) == 0 {
		t.Fatal("no drift events on a label-shifted trace")
	}
	if eng.LastStream.DriftEvents != len(events) {
		t.Errorf("LastStream.DriftEvents = %d, hook saw %d", eng.LastStream.DriftEvents, len(events))
	}
	if !sawFeatures {
		t.Error("WantFeatures did not surface the train frame")
	}
	ev := events[0]
	if ev.Output != "drift" || ev.Stat <= 0 || ev.Base < 0 || ev.Row < 0 {
		t.Errorf("malformed drift event: %+v", ev)
	}
	// The first detection should come after the benign prefix.
	nBenign := 0
	for _, l := range ds.Labels {
		if l == 0 {
			nBenign++
		}
	}
	if global := ev.Base + ev.Row; global < nBenign/2 {
		t.Errorf("drift fired at row %d, before the shift region (benign prefix %d)", global, nBenign)
	}
}

// TestShardMetricsSingleCount is the double-count regression test: a
// sharded sink splits the train op across K lanes, but lumen_ops_total
// must still count one execution per chunk, exactly like the unsharded
// sink.
func TestShardMetricsSingleCount(t *testing.T) {
	ds := onlineDS(t)
	p := fieldPipeline()
	counts := map[int]uint64{}
	chunks := map[int]int{}
	for _, shards := range []int{1, 4} {
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.TrainStream(ds, StreamConfig{ChunkRows: 64}); err != nil {
			t.Fatal(err)
		}
		met := obs.NewMetrics()
		eng.Metrics = met
		cfg := StreamConfig{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: shards}
		if _, err := eng.TestStream(ds, cfg); err != nil {
			t.Fatal(err)
		}
		if shards > 1 && eng.LastStream.Shards != shards {
			t.Fatalf("sharded sink did not engage (got %d lanes)", eng.LastStream.Shards)
		}
		counts[shards] = met.Counter("lumen_ops_total",
			"Pipeline operations executed (including cache-served ones).",
			"op", "train").Value()
		chunks[shards] = eng.LastStream.Chunks
	}
	for shards, n := range counts {
		if want := uint64(chunks[shards]); n != want {
			t.Errorf("shards=%d: lumen_ops_total{op=train} = %d, want %d (one per chunk)", shards, n, want)
		}
	}
}
