package core

import (
	"fmt"

	"lumen/internal/mlkit"
)

func init() {
	register("model",
		"construct an (unfitted) model spec: random_forest, decision_tree, gaussian_nb, knn, linear_svm, mlp, voting ensembles, automl, kitnet, autoencoder, ocsvm, nystrom_ocsvm, nystrom_gmm, gmm",
		opSig{in: nil, out: KindModel}, opModel)
	register("train",
		"fit the model on the frame's features and labels (training runs); predict with the fitted model (test runs)",
		opSig{in: []Kind{KindModel, KindFrame}, out: KindTrained}, opTrain)
}

func opModel(_ *opCtx, _ []Value, p params) (Value, error) {
	mt := p.str("model_type", p.str("type", ""))
	if mt == "" {
		return nil, fmt.Errorf("model: missing model_type")
	}
	if _, err := buildClassifier(ModelSpec{Type: mt, Params: map[string]any(p)}, 0); err != nil {
		return nil, err // validate eagerly so Check-time errors are early
	}
	return ModelSpec{Type: mt, Params: map[string]any(p)}, nil
}

// ModelTypes lists the supported model_type values.
func ModelTypes() []string {
	return []string{
		"random_forest", "decision_tree", "gaussian_nb", "knn", "linear_svm",
		"mlp", "ensemble_rf_svm_dt_knn", "ensemble_nb_dt_rf_dnn", "automl",
		"kitnet", "autoencoder", "ocsvm", "nystrom_ocsvm", "nystrom_gmm", "gmm",
	}
}

// buildClassifier instantiates the classifier (or thresholded detector)
// described by spec. Unsupervised detectors are wrapped in
// mlkit.Thresholded, which fits on the benign subset of the training data
// and calibrates its score threshold from a training-score quantile.
//
// A "tune" parameter object — {"param": [values...]} — wraps the model in
// a grid search over those hyperparameters (the §6 automatic tuning
// extension); supported for random_forest, decision_tree and knn.
func buildClassifier(spec ModelSpec, seed int64) (mlkit.Classifier, error) {
	p := params(spec.Params)
	if p == nil {
		p = params{}
	}
	if tune, ok := p["tune"].(map[string]any); ok {
		return buildTuned(spec.Type, tune, seed)
	}
	q := p.f64("quantile", 0.98)
	switch spec.Type {
	case "random_forest":
		return &mlkit.RandomForest{
			NTrees:   p.i("n_trees", 50),
			MaxDepth: p.i("max_depth", 0),
			Seed:     seed,
		}, nil
	case "decision_tree":
		return &mlkit.DecisionTree{MaxDepth: p.i("max_depth", 0), Seed: seed}, nil
	case "gaussian_nb":
		return &mlkit.GaussianNB{}, nil
	case "knn":
		return &mlkit.KNN{K: p.i("k", 5), Seed: seed}, nil
	case "linear_svm":
		return &mlkit.LinearSVM{Epochs: p.i("epochs", 10), Seed: seed}, nil
	case "mlp":
		return &mlkit.MLPClassifier{
			Hidden: []int{p.i("hidden", 16)},
			Epochs: p.i("epochs", 20),
			Seed:   seed,
		}, nil
	case "ensemble_rf_svm_dt_knn": // ML-DDoS (A00)
		return &mlkit.VotingEnsemble{Members: []mlkit.Classifier{
			&mlkit.RandomForest{NTrees: p.i("n_trees", 30), Seed: seed},
			&mlkit.LinearSVM{Seed: seed},
			&mlkit.DecisionTree{Seed: seed},
			&mlkit.KNN{K: p.i("k", 5), Seed: seed},
		}}, nil
	case "ensemble_nb_dt_rf_dnn": // Ensemble (Moustafa et al.)
		return &mlkit.VotingEnsemble{Members: []mlkit.Classifier{
			&mlkit.GaussianNB{},
			&mlkit.DecisionTree{Seed: seed},
			&mlkit.RandomForest{NTrees: p.i("n_trees", 30), Seed: seed},
			&mlkit.MLPClassifier{Hidden: []int{16}, Epochs: p.i("epochs", 20), Seed: seed},
		}}, nil
	case "automl":
		return &mlkit.AutoML{Seed: seed}, nil
	case "kitnet":
		return &mlkit.Thresholded{
			Detector: &mlkit.KitNET{
				MaxAESize: p.i("max_ae", 10),
				Epochs:    p.i("epochs", 3),
				Seed:      seed,
			},
			Quantile: q,
		}, nil
	case "autoencoder":
		var hidden []int
		if h := p.i("hidden", 0); h > 0 {
			hidden = []int{h}
		}
		return &mlkit.Thresholded{
			Detector: &mlkit.DetectorPipeline{
				Steps: []mlkit.Transformer{&mlkit.MinMaxScaler{}},
				Detector: &mlkit.Autoencoder{
					Hidden: hidden,
					Epochs: p.i("epochs", 20),
					Seed:   seed,
				},
			},
			Quantile: q,
		}, nil
	case "ocsvm":
		return &mlkit.Thresholded{
			Detector: &mlkit.DetectorPipeline{
				Steps:    []mlkit.Transformer{&mlkit.StandardScaler{}},
				Detector: &mlkit.OneClassSVM{Nu: p.f64("nu", 0.1), Seed: seed},
			},
			Quantile: q,
		}, nil
	case "nystrom_ocsvm":
		return &mlkit.Thresholded{
			Detector: &mlkit.DetectorPipeline{
				Steps: []mlkit.Transformer{
					&mlkit.StandardScaler{},
					&mlkit.NystromMap{M: p.i("m", 48), Seed: seed},
				},
				Detector: &mlkit.OneClassSVM{Nu: p.f64("nu", 0.1), Seed: seed},
			},
			Quantile: q,
		}, nil
	case "nystrom_gmm":
		return &mlkit.Thresholded{
			Detector: &mlkit.DetectorPipeline{
				Steps: []mlkit.Transformer{
					&mlkit.StandardScaler{},
					&mlkit.NystromMap{M: p.i("m", 48), Seed: seed},
				},
				Detector: &mlkit.GMM{K: p.i("k", 4), Seed: seed},
			},
			Quantile: q,
		}, nil
	case "gmm":
		return &mlkit.Thresholded{
			Detector: &mlkit.DetectorPipeline{
				Steps:    []mlkit.Transformer{&mlkit.StandardScaler{}},
				Detector: &mlkit.GMM{K: p.i("k", 4), Seed: seed},
			},
			Quantile: q,
		}, nil
	}
	return nil, fmt.Errorf("model: unknown model_type %q (supported: %v)", spec.Type, ModelTypes())
}

// buildTuned wraps a tree-family model in a grid search over the given
// hyperparameter lists.
func buildTuned(modelType string, tune map[string]any, seed int64) (mlkit.Classifier, error) {
	grid := map[string][]float64{}
	for k, v := range tune {
		raw, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("model: tune.%s must be a list of numbers", k)
		}
		for _, e := range raw {
			f, ok := e.(float64)
			if !ok {
				return nil, fmt.Errorf("model: tune.%s has a non-numeric entry", k)
			}
			grid[k] = append(grid[k], f)
		}
	}
	var build func(a map[string]float64) mlkit.Classifier
	switch modelType {
	case "random_forest":
		build = func(a map[string]float64) mlkit.Classifier {
			return &mlkit.RandomForest{
				NTrees:   intOr(a, "n_trees", 50),
				MaxDepth: intOr(a, "max_depth", 0),
				Seed:     seed,
			}
		}
	case "decision_tree":
		build = func(a map[string]float64) mlkit.Classifier {
			return &mlkit.DecisionTree{
				MaxDepth:       intOr(a, "max_depth", 0),
				MinSamplesLeaf: intOr(a, "min_samples_leaf", 0),
				Seed:           seed,
			}
		}
	case "knn":
		build = func(a map[string]float64) mlkit.Classifier {
			return &mlkit.KNN{K: intOr(a, "k", 5), Seed: seed}
		}
	default:
		return nil, fmt.Errorf("model: tune is not supported for model_type %q", modelType)
	}
	return &mlkit.GridSearch{New: build, Grid: grid, Seed: seed}, nil
}

func intOr(a map[string]float64, key string, def int) int {
	if v, ok := a[key]; ok {
		return int(v)
	}
	return def
}

func opTrain(ctx *opCtx, in []Value, _ params) (Value, error) {
	spec, ok := in[0].(ModelSpec)
	if !ok {
		return nil, fmt.Errorf("train: first input must be a model, got %v", in[0].Kind())
	}
	fr, err := asFrame(in[1])
	if err != nil {
		return nil, err
	}
	X := fr.Matrix()
	if ctx.mode == ModeTrain {
		if fr.Labels == nil {
			return nil, fmt.Errorf("train: frame has no labels")
		}
		if ctx.online() {
			return opTrainOnline(ctx, spec, X, fr)
		}
		clf, err := buildClassifier(spec, ctx.seed)
		if err != nil {
			return nil, err
		}
		if ctx.span != nil || ctx.metrics != nil {
			if of, ok := clf.(mlkit.ObservableFitter); ok {
				of.SetFitObserver(newEpochObserver(ctx.span, ctx.metrics))
			}
		}
		if err := clf.Fit(X, fr.Labels); err != nil {
			return nil, fmt.Errorf("train: %w", err)
		}
		tr := &Trained{Spec: spec, Clf: clf}
		ctx.setState(tr)
		return *tr, nil
	}
	st, ok := ctx.getState().(*Trained)
	if !ok {
		return nil, fmt.Errorf("train: model not fitted (test before train)")
	}
	res := &EvalResult{
		Unit:    fr.Unit,
		Truth:   append([]int(nil), fr.Labels...),
		Attacks: append([]string(nil), fr.Attacks...),
		UnitIdx: append([]int(nil), fr.UnitIdx...),
	}
	if len(X) > 0 {
		res.Pred = st.Clf.Predict(X)
		if pc, ok := st.Clf.(mlkit.ProbClassifier); ok {
			res.Scores = pc.Proba(X)
		}
	}
	ctx.result = res
	if ctx.stream != nil {
		ctx.stream.lastResult = res
	}
	// Prequential (test-then-train): the chunk was scored by the model as
	// fitted before it arrived; now absorb it as labelled training data.
	if ctx.online() && len(X) > 0 && fr.Labels != nil {
		if pf, ok := st.Clf.(mlkit.PartialFitter); ok {
			if err := pf.PartialFit(X, fr.Labels); err != nil {
				return nil, fmt.Errorf("train: prequential partial fit: %w", err)
			}
			countPartialFitRows(ctx, len(X))
		}
	}
	return *st, nil
}

// opTrainOnline is the ModeTrain body of an online streaming pass: the
// first chunk builds the model (wrapping batch-only families in a
// reservoir retrainer), every chunk partial-fits it in stream order.
func opTrainOnline(ctx *opCtx, spec ModelSpec, X [][]float64, fr *Frame) (Value, error) {
	var pf mlkit.PartialFitter
	if c, ok := ctx.carry(); ok {
		pf = c.(mlkit.PartialFitter)
	} else {
		clf, err := buildClassifier(spec, ctx.seed)
		if err != nil {
			return nil, err
		}
		pf = mlkit.AsPartialFitter(clf, ctx.seed)
		ctx.setCarry(pf)
		ctx.setState(&Trained{Spec: spec, Clf: pf})
	}
	if len(X) > 0 {
		if err := pf.PartialFit(X, fr.Labels); err != nil {
			return nil, fmt.Errorf("train: partial fit: %w", err)
		}
		countPartialFitRows(ctx, len(X))
	}
	st := ctx.getState().(*Trained)
	return *st, nil
}

// countPartialFitRows bumps the online-learning row counter.
func countPartialFitRows(ctx *opCtx, n int) {
	if ctx.metrics != nil {
		ctx.metrics.Counter("lumen_partial_fit_rows_total",
			"Rows absorbed by online partial-fit model updates.").Add(uint64(n))
	}
}
