package core

import (
	"fmt"
	"math"
	"sort"

	"lumen/internal/mlkit"
)

func init() {
	register("onehot",
		"expand a categorical column into 0/1 indicator columns (vocabulary fixed at training time)",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opOneHot)
	register("derive",
		"append a derived column: ratio, product, diff, log1p or abs of existing columns",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opDerive)
	register("clip",
		"winsorize numeric columns to a quantile range fitted on training data",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opClip)
	register("log_scale",
		"replace numeric columns with log1p(|x|)*sign(x), compressing heavy-tailed features",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opLogScale)
	register("balance",
		"rebalance class sizes by downsampling the majority class (training runs only; test frames pass through)",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opBalance)
	register("pca_transform",
		"project numeric columns onto principal components fitted on training data",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opPCATransform)
	register("head",
		"keep only the first n rows",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opHead)
}

func opOneHot(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	colName := p.str("col", "")
	c := f.Col(colName)
	if c == nil || c.IsNumeric() {
		return nil, fmt.Errorf("onehot: need a string column, %q is not one", colName)
	}
	maxCats := p.i("max_categories", 16)

	var vocab []string
	if ctx.mode == ModeTrain {
		counts := map[string]int{}
		for _, v := range c.S {
			counts[v]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if counts[keys[a]] != counts[keys[b]] {
				return counts[keys[a]] > counts[keys[b]]
			}
			return keys[a] < keys[b]
		})
		if len(keys) > maxCats {
			keys = keys[:maxCats]
		}
		sort.Strings(keys)
		vocab = keys
		ctx.setState(vocab)
	} else {
		var ok bool
		vocab, ok = ctx.getState().([]string)
		if !ok {
			return nil, fmt.Errorf("onehot: not fitted (test before train)")
		}
	}

	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for _, col := range f.Cols {
		if col.Name == colName {
			continue // replaced by indicators
		}
		if col.IsNumeric() {
			out.AddF(col.Name, col.F)
		} else {
			out.AddS(col.Name, col.S)
		}
	}
	for _, cat := range vocab {
		ind := make([]float64, f.N)
		for i, v := range c.S {
			if v == cat {
				ind[i] = 1
			}
		}
		out.AddF(colName+"="+cat, ind)
	}
	return out, nil
}

func opDerive(_ *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	fn := p.str("fn", "")
	aName, bName := p.str("a", ""), p.str("b", "")
	outName := p.str("out", "")
	if outName == "" {
		outName = fn + "_" + aName
		if bName != "" {
			outName += "_" + bName
		}
	}
	a := f.Col(aName)
	if a == nil || !a.IsNumeric() {
		return nil, fmt.Errorf("derive: need numeric column a, %q is not one", aName)
	}
	var b *Column
	switch fn {
	case "ratio", "product", "diff":
		b = f.Col(bName)
		if b == nil || !b.IsNumeric() {
			return nil, fmt.Errorf("derive: fn %q needs numeric column b", fn)
		}
	case "log1p", "abs":
	default:
		return nil, fmt.Errorf("derive: unknown fn %q (ratio, product, diff, log1p, abs)", fn)
	}
	vals := make([]float64, f.N)
	for i := 0; i < f.N; i++ {
		switch fn {
		case "ratio":
			if b.F[i] != 0 {
				vals[i] = a.F[i] / b.F[i]
			} else {
				vals[i] = a.F[i]
			}
		case "product":
			vals[i] = a.F[i] * b.F[i]
		case "diff":
			vals[i] = a.F[i] - b.F[i]
		case "log1p":
			vals[i] = math.Log1p(math.Abs(a.F[i]))
		case "abs":
			vals[i] = math.Abs(a.F[i])
		}
	}
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for _, col := range f.Cols {
		if col.IsNumeric() {
			out.AddF(col.Name, col.F)
		} else {
			out.AddS(col.Name, col.S)
		}
	}
	out.AddF(outName, vals)
	return out, nil
}

// clipState holds per-column winsorization bounds.
type clipState struct {
	cols []string
	lo   []float64
	hi   []float64
}

// clipCarry streams the winsorization bounds across chunks: one P²
// quantile estimator per column and tail.
type clipCarry struct {
	cols []string
	lo   []*mlkit.P2Quantile
	hi   []*mlkit.P2Quantile
}

func opClip(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	var st *clipState
	if ctx.mode == ModeTrain && ctx.online() {
		// Streaming fit: absorb the chunk into the P² estimators, clamp
		// with the bounds as of this chunk.
		q := p.f64("quantile", 0.99)
		var cc *clipCarry
		if c, ok := ctx.carry(); ok {
			cc = c.(*clipCarry)
		} else {
			cc = &clipCarry{cols: numericNames(f)}
			for range cc.cols {
				cc.lo = append(cc.lo, mlkit.NewP2Quantile(1-q))
				cc.hi = append(cc.hi, mlkit.NewP2Quantile(q))
			}
			ctx.setCarry(cc)
		}
		st = &clipState{
			cols: cc.cols,
			lo:   make([]float64, len(cc.cols)),
			hi:   make([]float64, len(cc.cols)),
		}
		for j, name := range cc.cols {
			c := f.Col(name)
			if c == nil {
				return nil, fmt.Errorf("clip: column %q missing mid-stream", name)
			}
			for _, v := range c.F {
				cc.lo[j].Add(v)
				cc.hi[j].Add(v)
			}
			st.lo[j] = cc.lo[j].Value()
			st.hi[j] = cc.hi[j].Value()
		}
		ctx.setState(st)
	} else if ctx.mode == ModeTrain {
		q := p.f64("quantile", 0.99)
		st = &clipState{cols: numericNames(f)}
		// One sort per column serves both quantiles; the scratch buffer
		// is reused across columns (all have f.N values).
		var scratch []float64
		for _, name := range st.cols {
			c := f.Col(name)
			scratch = mlkit.SortedCopy(c.F, scratch)
			st.lo = append(st.lo, mlkit.QuantileSorted(scratch, 1-q))
			st.hi = append(st.hi, mlkit.QuantileSorted(scratch, q))
		}
		ctx.setState(st)
	} else {
		var ok bool
		st, ok = ctx.getState().(*clipState)
		if !ok {
			return nil, fmt.Errorf("clip: not fitted (test before train)")
		}
	}
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for j, name := range st.cols {
		c := f.Col(name)
		if c == nil {
			return nil, fmt.Errorf("clip: column %q missing at test time", name)
		}
		vals := make([]float64, f.N)
		for i, v := range c.F {
			if v < st.lo[j] {
				v = st.lo[j]
			} else if v > st.hi[j] {
				v = st.hi[j]
			}
			vals[i] = v
		}
		out.AddF(name, vals)
	}
	for _, c := range f.Cols {
		if !c.IsNumeric() {
			out.AddS(c.Name, c.S)
		}
	}
	return out, nil
}

func opLogScale(_ *opCtx, in []Value, _ params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for _, c := range f.Cols {
		if !c.IsNumeric() {
			out.AddS(c.Name, c.S)
			continue
		}
		vals := make([]float64, f.N)
		for i, v := range c.F {
			lv := math.Log1p(math.Abs(v))
			if v < 0 {
				lv = -lv
			}
			vals[i] = lv
		}
		out.AddF(c.Name, vals)
	}
	return out, nil
}

func opBalance(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	if ctx.mode != ModeTrain {
		return f, nil // never drop test rows
	}
	if f.Labels == nil {
		return nil, fmt.Errorf("balance: frame has no labels")
	}
	// ratio caps majority/minority size; 0 means 1 (fully balanced).
	ratio := p.f64("ratio", 1)
	if ratio < 1 {
		ratio = 1
	}
	var pos, neg []int
	for i, y := range f.Labels {
		if y != 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	minority, majority := pos, neg
	if len(pos) > len(neg) {
		minority, majority = neg, pos
	}
	if len(minority) == 0 {
		return f, nil
	}
	limit := int(float64(len(minority)) * ratio)
	if limit >= len(majority) {
		return f, nil
	}
	rng := mlkit.NewRNG(ctx.seed + 23)
	perm := rng.Perm(len(majority))
	keep := append([]int(nil), minority...)
	for _, j := range perm[:limit] {
		keep = append(keep, majority[j])
	}
	sort.Ints(keep)
	return f.TakeRows(keep), nil
}

// pcaState holds the fitted projection.
type pcaState struct {
	p    *mlkit.PCA
	cols []string
}

func opPCATransform(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	var st *pcaState
	if ctx.mode == ModeTrain {
		st = &pcaState{p: &mlkit.PCA{K: p.i("k", 0)}, cols: numericNames(f)}
		sel, err := f.Select(st.cols)
		if err != nil {
			return nil, err
		}
		if err := st.p.Fit(sel.Matrix()); err != nil {
			return nil, err
		}
		ctx.setState(st)
	} else {
		var ok bool
		st, ok = ctx.getState().(*pcaState)
		if !ok {
			return nil, fmt.Errorf("pca_transform: not fitted (test before train)")
		}
	}
	sel, err := f.Select(st.cols)
	if err != nil {
		return nil, err
	}
	proj := st.p.Transform(sel.Matrix())
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for c := 0; c < st.p.Components(); c++ {
		vals := make([]float64, f.N)
		for i := range vals {
			vals[i] = proj[i][c]
		}
		out.AddF(fmt.Sprintf("pc%d", c), vals)
	}
	return out, nil
}

func opHead(_ *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	n := p.i("n", 0)
	if n <= 0 || n >= f.N {
		return f, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.TakeRows(idx), nil
}
