package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"lumen/internal/features"
	"lumen/internal/mlkit"
)

func init() {
	register("group_by",
		"partition frame rows by one or more key columns",
		opSig{in: []Kind{KindFrame}, out: KindGrouped}, opGroupBy)
	register("time_slice",
		"refine groups (or whole frame) into fixed time windows using the ts column",
		opSig{in: []Kind{KindGrouped}, out: KindGrouped}, opTimeSlice)
	register("apply_aggregates",
		"compute aggregate functions per group -> one row per group (mean/std/median/min/max/sum/count/rate/entropy/distinct)",
		opSig{in: []Kind{KindGrouped}, out: KindFrame}, opApplyAggregates)
	register("broadcast_aggregates",
		"compute aggregates per group and attach them to every member row (per-packet classification with group context)",
		opSig{in: []Kind{KindGrouped}, out: KindFrame}, opBroadcastAggregates)
	register("select",
		"project a frame onto named columns",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opSelect)
	register("filter",
		"keep rows satisfying col <op> value (==, !=, >, <, >=, <=)",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opFilter)
	register("concat_cols",
		"concatenate the columns of equal-length frames",
		opSig{in: []Kind{KindFrame, KindFrame}, out: KindFrame, variadicIn: true}, opConcatCols)
	register("drop_const",
		"drop numeric columns with zero variance on the training data",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opDropConst)
	register("normalize",
		"scale numeric columns (zscore or minmax); fitted on training data, reused at test time",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opNormalize)
	register("drop_correlated",
		"drop numeric columns highly correlated with an earlier one; fitted on training data",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opDropCorrelated)
	register("sample",
		"deterministically subsample rows (frac or n)",
		opSig{in: []Kind{KindFrame}, out: KindFrame}, opSample)
}

func opGroupBy(_ *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	keys := p.strList("flowid")
	if len(keys) == 0 {
		keys = p.strList("keys")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("group_by: no key columns (param flowid/keys)")
	}
	return groupRows(f, keys)
}

func opTimeSlice(_ *opCtx, in []Value, p params) (Value, error) {
	g, ok := in[0].(*Grouped)
	if !ok {
		return nil, fmt.Errorf("time_slice: expected grouped, got %v", in[0].Kind())
	}
	window := p.f64("window", 10)
	if window <= 0 {
		return nil, fmt.Errorf("time_slice: window must be positive")
	}
	ts := g.F.Col("ts")
	if ts == nil || !ts.IsNumeric() {
		return nil, fmt.Errorf("time_slice: frame needs a numeric ts column")
	}
	out := &Grouped{F: g.F, GroupOf: make([]int, g.F.N)}
	for i := range out.GroupOf {
		out.GroupOf[i] = -1
	}
	for gi, rows := range g.Groups {
		buckets := map[int64][]int{}
		var order []int64
		for _, r := range rows {
			b := int64(math.Floor(ts.F[r] / window))
			if _, seen := buckets[b]; !seen {
				order = append(order, b)
			}
			buckets[b] = append(buckets[b], r)
		}
		for _, b := range order {
			ni := len(out.Groups)
			out.Keys = append(out.Keys, fmt.Sprintf("%s@%d", g.Keys[gi], b))
			out.Groups = append(out.Groups, buckets[b])
			for _, r := range buckets[b] {
				out.GroupOf[r] = ni
			}
		}
	}
	return out, nil
}

// aggSpec is one {col, fn} aggregate request.
type aggSpec struct {
	col string
	fn  string
}

func parseAggs(p params) ([]aggSpec, error) {
	raw := p.anyList("list")
	if raw == nil {
		raw = p.anyList("aggregates")
	}
	if raw == nil {
		return nil, fmt.Errorf("aggregates: missing list param")
	}
	var out []aggSpec
	for _, e := range raw {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("aggregates: each entry must be an object with col and fn")
		}
		spec := aggSpec{}
		if s, ok := m["col"].(string); ok {
			spec.col = s
		}
		if s, ok := m["fn"].(string); ok {
			spec.fn = s
		}
		if spec.col == "" || spec.fn == "" {
			return nil, fmt.Errorf("aggregates: entry missing col or fn")
		}
		out = append(out, spec)
	}
	return out, nil
}

// aggregate computes one aggregate function over the group rows of col.
// scratch (optional) backs the temporary value copy for fns that need
// one; a worker that aggregates many groups should pass a reused buffer.
// min/max/sum/first/last/count scan the column directly — no copy, no
// sort.
func aggregate(c *Column, rows []int, fn string, tsCol *Column, scratch []float64) (float64, error) {
	if c.IsNumeric() {
		switch fn {
		case "min":
			m := c.F[rows[0]]
			for _, r := range rows[1:] {
				if v := c.F[r]; v < m {
					m = v
				}
			}
			return m, nil
		case "max":
			m := c.F[rows[0]]
			for _, r := range rows[1:] {
				if v := c.F[r]; v > m {
					m = v
				}
			}
			return m, nil
		case "sum":
			var t float64
			for _, r := range rows {
				t += c.F[r]
			}
			return t, nil
		case "count":
			return float64(len(rows)), nil
		case "first":
			return c.F[rows[0]], nil
		case "last":
			return c.F[rows[len(rows)-1]], nil
		case "rate", "bandwidth":
			// events (or units) per second over the group's time span.
			if tsCol == nil {
				return 0, fmt.Errorf("aggregate %s needs a ts column in the frame", fn)
			}
			span := tsCol.F[rows[len(rows)-1]] - tsCol.F[rows[0]]
			if span <= 0 {
				span = 1
			}
			if fn == "rate" {
				return float64(len(rows)) / span, nil
			}
			var t float64
			for _, r := range rows {
				t += c.F[r]
			}
			return t / span, nil
		}
		if cap(scratch) < len(rows) {
			scratch = make([]float64, len(rows))
		}
		vals := scratch[:len(rows)]
		for i, r := range rows {
			vals[i] = c.F[r]
		}
		switch fn {
		case "mean":
			return mlkit.Mean(vals), nil
		case "std":
			return math.Sqrt(mlkit.Variance(vals)), nil
		case "var":
			return mlkit.Variance(vals), nil
		case "median":
			// vals is already a scratch copy — sort in place, one pass.
			return mlkit.QuantileSorted(mlkit.SortedCopy(vals, vals), 0.5), nil
		case "distinct":
			seen := map[float64]bool{}
			for _, v := range vals {
				seen[v] = true
			}
			return float64(len(seen)), nil
		case "entropy":
			cnt := features.NewCounter()
			for _, v := range vals {
				cnt.Add(fmt.Sprintf("%g", v))
			}
			return cnt.Entropy(), nil
		}
		return 0, fmt.Errorf("aggregate: unknown numeric fn %q", fn)
	}
	switch fn {
	case "distinct":
		seen := map[string]bool{}
		for _, r := range rows {
			seen[c.S[r]] = true
		}
		return float64(len(seen)), nil
	case "entropy":
		cnt := features.NewCounter()
		for _, r := range rows {
			cnt.Add(c.S[r])
		}
		return cnt.Entropy(), nil
	case "count":
		return float64(len(rows)), nil
	}
	return 0, fmt.Errorf("aggregate: fn %q not valid for string column %q", fn, c.Name)
}

func opApplyAggregates(_ *opCtx, in []Value, p params) (Value, error) {
	g, ok := in[0].(*Grouped)
	if !ok {
		return nil, fmt.Errorf("apply_aggregates: expected grouped, got %v", in[0].Kind())
	}
	specs, err := parseAggs(p)
	if err != nil {
		return nil, err
	}
	tsCol := g.F.Col("ts")
	out := NewFrame(len(g.Groups))
	out.Unit = UnitGroup
	out.Labels = make([]int, out.N)
	out.Attacks = make([]string, out.N)
	cols := make([][]float64, len(specs))
	for j := range cols {
		cols[j] = make([]float64, out.N)
	}
	// Validate columns up front, then aggregate groups on a worker pool
	// (groups are independent — the map-reduce shape the paper exploits).
	srcCols := make([]*Column, len(specs))
	for j, spec := range specs {
		c := g.F.Col(spec.col)
		if c == nil {
			return nil, fmt.Errorf("apply_aggregates: no column %q", spec.col)
		}
		srcCols[j] = c
	}
	workers := runtime.GOMAXPROCS(0)
	if len(g.Groups) < 256 || workers < 2 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	chunk := (len(g.Groups) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(g.Groups) {
			hi = len(g.Groups)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch []float64 // per-worker, reused across groups
			for gi := lo; gi < hi; gi++ {
				rows := g.Groups[gi]
				if cap(scratch) < len(rows) {
					scratch = make([]float64, len(rows))
				}
				for j, spec := range specs {
					v, err := aggregate(srcCols[j], rows, spec.fn, tsCol, scratch[:0])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					cols[j][gi] = v
				}
				out.Labels[gi], out.Attacks[gi] = majorityLabel(g.F, rows)
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for j, spec := range specs {
		out.AddF(spec.col+"_"+spec.fn, cols[j])
	}
	return out, nil
}

func opBroadcastAggregates(_ *opCtx, in []Value, p params) (Value, error) {
	g, ok := in[0].(*Grouped)
	if !ok {
		return nil, fmt.Errorf("broadcast_aggregates: expected grouped, got %v", in[0].Kind())
	}
	specs, err := parseAggs(p)
	if err != nil {
		return nil, err
	}
	tsCol := g.F.Col("ts")
	f := g.F
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	// Carry existing numeric columns forward, then append group context.
	for _, c := range f.Cols {
		if c.IsNumeric() {
			out.AddF(c.Name, c.F)
		}
	}
	for _, spec := range specs {
		c := f.Col(spec.col)
		if c == nil {
			return nil, fmt.Errorf("broadcast_aggregates: no column %q", spec.col)
		}
		perGroup := make([]float64, len(g.Groups))
		var scratch []float64
		for gi, rows := range g.Groups {
			if cap(scratch) < len(rows) {
				scratch = make([]float64, len(rows))
			}
			v, err := aggregate(c, rows, spec.fn, tsCol, scratch[:0])
			if err != nil {
				return nil, err
			}
			perGroup[gi] = v
		}
		col := make([]float64, f.N)
		for r := 0; r < f.N; r++ {
			if gi := g.GroupOf[r]; gi >= 0 {
				col[r] = perGroup[gi]
			}
		}
		out.AddF("grp_"+spec.col+"_"+spec.fn, col)
	}
	return out, nil
}

func majorityLabel(f *Frame, rows []int) (int, string) {
	if f.Labels == nil {
		return 0, ""
	}
	pos := 0
	attack := ""
	for _, r := range rows {
		if f.Labels[r] != 0 {
			pos++
			if attack == "" && f.Attacks != nil {
				attack = f.Attacks[r]
			}
		}
	}
	if pos*2 >= len(rows) && pos > 0 {
		return 1, attack
	}
	return 0, ""
}

func opSelect(_ *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	cols := p.strList("cols")
	if len(cols) == 0 {
		return nil, fmt.Errorf("select: missing cols param")
	}
	return f.Select(cols)
}

func opFilter(_ *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	colName := p.str("col", "")
	c := f.Col(colName)
	if c == nil {
		return nil, fmt.Errorf("filter: no column %q", colName)
	}
	cmp := p.str("op", "==")
	keep := make([]bool, f.N)
	if c.IsNumeric() {
		val := p.f64("value", 0)
		for i, v := range c.F {
			switch cmp {
			case "==":
				keep[i] = v == val
			case "!=":
				keep[i] = v != val
			case ">":
				keep[i] = v > val
			case "<":
				keep[i] = v < val
			case ">=":
				keep[i] = v >= val
			case "<=":
				keep[i] = v <= val
			default:
				return nil, fmt.Errorf("filter: unknown op %q", cmp)
			}
		}
	} else {
		val := p.str("value", "")
		for i, v := range c.S {
			switch cmp {
			case "==":
				keep[i] = v == val
			case "!=":
				keep[i] = v != val
			default:
				return nil, fmt.Errorf("filter: op %q not valid for string column", cmp)
			}
		}
	}
	return f.FilterRows(keep), nil
}

func opConcatCols(_ *opCtx, in []Value, _ params) (Value, error) {
	first, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	out := NewFrame(first.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = first.Unit, first.UnitIdx, first.Labels, first.Attacks
	seen := map[string]bool{}
	for fi, v := range in {
		f, err := asFrame(v)
		if err != nil {
			return nil, err
		}
		if f.N != first.N {
			return nil, fmt.Errorf("concat_cols: frame %d has %d rows, want %d", fi, f.N, first.N)
		}
		for _, c := range f.Cols {
			name := c.Name
			for seen[name] {
				name = name + "_"
			}
			seen[name] = true
			if c.IsNumeric() {
				out.AddF(name, c.F)
			} else {
				out.AddS(name, c.S)
			}
		}
	}
	return out, nil
}

func opDropConst(ctx *opCtx, in []Value, _ params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	var keep []string
	if ctx.mode == ModeTrain {
		for _, c := range f.Cols {
			if !c.IsNumeric() {
				keep = append(keep, c.Name)
				continue
			}
			first := c.F[0]
			constant := true
			for _, v := range c.F[1:] {
				if v != first {
					constant = false
					break
				}
			}
			if !constant {
				keep = append(keep, c.Name)
			}
		}
		if len(keep) == 0 { // keep at least one column
			keep = []string{f.Cols[0].Name}
		}
		ctx.setState(keep)
	} else {
		var ok bool
		keep, ok = ctx.getState().([]string)
		if !ok {
			return nil, fmt.Errorf("drop_const: not fitted (test before train)")
		}
	}
	return f.Select(keep)
}

// scalerState holds a fitted scaler with the column layout it saw.
type scalerState struct {
	scaler mlkit.Scaler
	cols   []string
}

// newScaler builds the scaler selected by the op's "kind" param.
func newScaler(p params) (mlkit.Scaler, error) {
	switch kind := p.str("kind", "zscore"); kind {
	case "zscore":
		return &mlkit.StandardScaler{}, nil
	case "minmax":
		return &mlkit.MinMaxScaler{}, nil
	default:
		return nil, fmt.Errorf("normalize: unknown kind %q", kind)
	}
}

func opNormalize(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	var st *scalerState
	switch {
	case ctx.mode == ModeTrain && ctx.online():
		// Streaming fit: fold the chunk into the scaler's online moments
		// (Welford / running min-max), then scale it with the statistics
		// as of this chunk (update-then-transform).
		if c, ok := ctx.carry(); ok {
			st = c.(*scalerState)
		} else {
			sc, err := newScaler(p)
			if err != nil {
				return nil, err
			}
			st = &scalerState{scaler: sc, cols: numericNames(f)}
			ctx.setCarry(st)
		}
		ctx.setState(st)
		if len(st.cols) == 0 {
			return f, nil
		}
		sel, err := f.Select(st.cols)
		if err != nil {
			return nil, err
		}
		if f.N > 0 {
			ot, ok := st.scaler.(mlkit.OnlineTransformer)
			if !ok {
				return nil, fmt.Errorf("normalize: scaler %T cannot partial-fit", st.scaler)
			}
			if err := ot.PartialFit(sel.Matrix()); err != nil {
				return nil, err
			}
		}
	case ctx.mode == ModeTrain:
		sc, err := newScaler(p)
		if err != nil {
			return nil, err
		}
		st = &scalerState{scaler: sc, cols: numericNames(f)}
		if len(st.cols) == 0 {
			return f, nil
		}
		sel, err := f.Select(st.cols)
		if err != nil {
			return nil, err
		}
		if err := sc.Fit(sel.Matrix()); err != nil {
			return nil, err
		}
		ctx.setState(st)
	default:
		var ok bool
		st, ok = ctx.getState().(*scalerState)
		if !ok {
			return nil, fmt.Errorf("normalize: not fitted (test before train)")
		}
	}
	sel, err := f.Select(st.cols)
	if err != nil {
		return nil, err
	}
	scaled := st.scaler.Transform(sel.Matrix())
	out := NewFrame(f.N)
	out.Unit, out.UnitIdx, out.Labels, out.Attacks = f.Unit, f.UnitIdx, f.Labels, f.Attacks
	for j, name := range st.cols {
		col := make([]float64, f.N)
		for i := range col {
			col[i] = scaled[i][j]
		}
		out.AddF(name, col)
	}
	// Preserve string columns (keys for later grouping).
	for _, c := range f.Cols {
		if !c.IsNumeric() {
			out.AddS(c.Name, c.S)
		}
	}
	return out, nil
}

func numericNames(f *Frame) []string {
	var out []string
	for _, c := range f.Cols {
		if c.IsNumeric() {
			out = append(out, c.Name)
		}
	}
	return out
}

func opDropCorrelated(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	var keep []string
	if ctx.mode == ModeTrain {
		nums := numericNames(f)
		sel, err := f.Select(nums)
		if err != nil {
			return nil, err
		}
		filt := &mlkit.CorrelationFilter{Threshold: p.f64("threshold", 0.95)}
		if err := filt.Fit(sel.Matrix()); err != nil {
			return nil, err
		}
		for _, j := range filt.Keep {
			keep = append(keep, nums[j])
		}
		ctx.setState(keep)
	} else {
		var ok bool
		keep, ok = ctx.getState().([]string)
		if !ok {
			return nil, fmt.Errorf("drop_correlated: not fitted (test before train)")
		}
	}
	return f.Select(keep)
}

func opSample(ctx *opCtx, in []Value, p params) (Value, error) {
	f, err := asFrame(in[0])
	if err != nil {
		return nil, err
	}
	n := p.i("n", 0)
	if frac := p.f64("frac", 0); frac > 0 {
		n = int(float64(f.N) * frac)
	}
	if n <= 0 || n >= f.N {
		return f, nil
	}
	rng := mlkit.NewRNG(ctx.seed + 17)
	perm := rng.Perm(f.N)
	idx := append([]int(nil), perm[:n]...)
	// Keep time order stable for downstream ops.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return f.TakeRows(idx), nil
}
