package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
	"lumen/internal/obs"
)

// streamExec is the state of one RunStream execution, shared between the
// sequential loop and the staged pipeline. The per-chunk work lives in
// chunkJob so that the pipeline can fan it out to workers; everything on
// streamExec itself is only ever touched by one goroutine at a time (the
// sequential loop, or the sink stage absorbing jobs in stream order).
type streamExec struct {
	e    *Engine
	mode Mode
	pl   *streamPlan
	meta dataset.SourceMeta
	// sc carries cross-chunk fold state for the ordered ops; only the
	// goroutine that runs them (sequential loop / sink stage) touches it.
	sc    *streamCtx
	sinks map[int]*flowSinkState
	// lanes holds the per-shard sink partitions of a sharded pipelined
	// run (nil otherwise); finish() merges their flow logs back into the
	// canonical order.
	lanes []*shardLane
	// hooks are the pass's per-chunk callbacks (nil when unhooked); absorb
	// invokes them on the ordered sink goroutine.
	hooks *StreamHooks
	// lazyViews records that enableViews switched the source onto the
	// zero-copy PacketView fast path for this pass.
	lazyViews bool
	// trainFrame is the name of the train op's feature-frame input,
	// resolved once so hooks with WantFeatures can find it per chunk.
	trainFrame string
	prof       []OpStats

	accum   map[string][]*Frame
	lastVal map[string]Value
	results []*EvalResult
	hwm     uint64

	// accDS accumulates the full packet set when the plan needs it and
	// the source cannot hand over a materialized dataset.
	accDS *dataset.Labeled
	// accSums accumulates per-packet summaries on the lazy view path of
	// flow-only plans, so flow features can read member-packet fields at
	// flush without a decoded packet set. Fed by feedSinks on the ordered
	// goroutine.
	accSums    []netpkt.PacketSummary
	lsrc       labeledSource
	hasLabeled bool
	nChunks    int
}

// newStreamExec validates the pipeline and sets up the plan, flow sinks,
// profile and accumulators of one RunStream pass.
func newStreamExec(e *Engine, src dataset.Source, mode Mode, online bool) (*streamExec, error) {
	if err := e.Check(); err != nil {
		return nil, err
	}
	r := &streamExec{
		e:       e,
		mode:    mode,
		pl:      e.planStream(mode, online),
		meta:    src.Meta(),
		sc:      &streamCtx{carry: map[string]any{}, online: online},
		sinks:   map[int]*flowSinkState{},
		accum:   map[string][]*Frame{},
		lastVal: map[string]Value{},
	}
	sinks, err := newFlowSinkStates(e, r.pl)
	if err != nil {
		return nil, err
	}
	r.sinks = sinks
	r.prof = make([]OpStats, len(e.P.Ops))
	for i, op := range e.P.Ops {
		r.prof[i] = OpStats{Func: op.Func, Output: op.Output}
	}
	for _, op := range e.P.Ops {
		if op.Func == "train" && len(op.Input) == 2 {
			r.trainFrame = op.Input[1]
		}
	}
	r.lsrc, r.hasLabeled = src.(labeledSource)
	if r.pl.needPackets && !r.hasLabeled {
		r.accDS = &dataset.Labeled{
			Name:        r.meta.Name,
			Granularity: r.meta.Granularity,
			Link:        r.meta.Link,
			Devices:     r.meta.Devices,
		}
	}
	return r, nil
}

// newFlowSinkStates builds one incremental assembler per flow-sink op.
// Sharded runs call it once per lane, so each lane assembles its own
// flow partition with an independent assembler.
func newFlowSinkStates(e *Engine, pl *streamPlan) (map[int]*flowSinkState, error) {
	sinks := map[int]*flowSinkState{}
	for i, op := range e.P.Ops {
		if !pl.flowSink[i] {
			continue
		}
		opts, gran, err := flowParams(params(op.Params))
		if err != nil {
			return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		}
		s := &flowSinkState{gran: gran}
		if gran == dataset.UniflowG {
			s.uni = flow.NewUniflowAssembler(opts)
		} else {
			s.conn = flow.NewConnAssembler(opts)
		}
		sinks[i] = s
	}
	return sinks, nil
}

// recycler returns the source's Recycler when finished chunks may safely
// be handed back for buffer reuse: nothing retained across chunks may
// alias the chunk's packets. Accumulated frames are copies, but the full
// packet set (needPackets) and any accumulated packet-kind value alias
// the chunk directly, so either disables recycling. The one needPackets
// shape that recycles anyway is a flow-only plan on the lazy view path:
// it retains PacketSummary value copies, never the views themselves, so
// the chunk owns nothing that outlives its release. Call only after
// enableViews settled the pass's decode mode.
func (r *streamExec) recycler(src dataset.Source) dataset.Recycler {
	if r.pl.needPackets && !(r.pl.flowOnly && r.lazyViews) {
		return nil
	}
	for i, op := range r.e.P.Ops {
		if r.pl.streamed[i] && r.pl.accum[op.Output] && opRegistry[op.Func].sig.out == KindPackets {
			return nil
		}
	}
	rec, _ := src.(dataset.Recycler)
	return rec
}

// chunkJob is the unit of work flowing through a stream run: one chunk,
// its per-chunk dataset view and value environment, and everything its
// ops produced. Jobs are pooled; newJob / putChunkJob bound steady-state
// allocations per chunk.
type chunkJob struct {
	nc  dataset.NumberedChunk
	cds *dataset.Labeled
	env map[string]Value
	// stats is indexed by op; only executed ops write their entry.
	stats   []OpStats
	results []*EvalResult
	// drift collects the chunk's drift_detect events (Seq is stamped at
	// absorb time, once the chunk's order in the stream is settled).
	drift []DriftEvent
	err   error
	// wsc is the job-local stream context used on parallel workers. Ops
	// that fan out never depend on cross-chunk fold state, but some
	// (field_extract without iat) still save it; writing into a
	// discardable job-local carry keeps them race-free.
	wsc streamCtx

	// Shard-routing state, used only by sharded pipelined runs: the lane
	// of every packet, the scoring frame and its per-lane row partition,
	// each lane's output, and the barrier the merger waits on before
	// stitching. routed marks jobs dispatched to the lanes; demoted marks
	// jobs whose scoring ran on the router instead.
	shardIDs  []uint8
	laneFrame *Frame
	laneRows  [][]int
	laneRes   []laneResult
	laneDone  sync.WaitGroup
	routed    bool
	demoted   bool
}

var chunkJobPool = sync.Pool{New: func() any { return new(chunkJob) }}

// chunkJobGets / chunkJobPuts balance-check the job pool: every job
// taken by newJob must come back through putChunkJob on every exit path
// (including early pipeline unwinds), or pooled jobs leak.
var chunkJobGets, chunkJobPuts atomic.Int64

// newJob readies a pooled job for one chunk.
func (r *streamExec) newJob(nc dataset.NumberedChunk) *chunkJob {
	chunkJobGets.Add(1)
	j := chunkJobPool.Get().(*chunkJob)
	j.nc = nc
	// cds is allocated fresh: op outputs of packet kind may retain it
	// beyond the job's lifetime.
	j.cds = &dataset.Labeled{
		Name:        r.meta.Name,
		Granularity: r.meta.Granularity,
		Link:        r.meta.Link,
		Devices:     r.meta.Devices,
		Packets:     nc.Packets,
		Labels:      nc.Labels,
		Attacks:     nc.Attacks,
	}
	if j.env == nil {
		j.env = make(map[string]Value, len(r.e.P.Ops)+1)
	} else {
		clear(j.env)
	}
	j.env[InputName] = Packets{DS: j.cds, Views: nc.Views}
	if cap(j.stats) < len(r.e.P.Ops) {
		j.stats = make([]OpStats, len(r.e.P.Ops))
	} else {
		j.stats = j.stats[:len(r.e.P.Ops)]
		clear(j.stats)
	}
	j.results = j.results[:0]
	j.drift = j.drift[:0]
	j.err = nil
	if j.wsc.carry == nil {
		j.wsc.carry = map[string]any{}
	} else {
		clear(j.wsc.carry)
	}
	j.wsc.base = nc.Base
	j.wsc.online = r.sc.online
	return j
}

// putChunkJob returns a job to the pool once nothing references it.
func putChunkJob(j *chunkJob) {
	chunkJobPuts.Add(1)
	j.nc = dataset.NumberedChunk{}
	j.cds = nil
	clear(j.env)
	for i := range j.results {
		j.results[i] = nil
	}
	j.shardIDs = j.shardIDs[:0]
	j.laneFrame = nil
	for i := range j.laneRows {
		j.laneRows[i] = j.laneRows[i][:0]
	}
	clear(j.laneRes)
	j.laneRes = j.laneRes[:0]
	j.routed, j.demoted = false, false
	chunkJobPool.Put(j)
}

// feedSinks pushes the job's packets through every incremental flow
// assembler. Only the goroutine that owns stream order may call it. On
// the lazy view path each packet's summary is built once, feeds every
// sink, and is retained for the flush-time feature pass (accSums).
func (r *streamExec) feedSinks(job *chunkJob) {
	if len(r.sinks) == 0 {
		return
	}
	if len(job.nc.Views) > 0 {
		for j := range job.nc.Views {
			sum := job.nc.Views[j].Summary()
			gi := job.nc.Base + j
			for _, s := range r.sinks {
				if s.uni != nil {
					s.unis = append(s.unis, s.uni.AddSummary(gi, sum)...)
				} else {
					s.cons = append(s.cons, s.conn.AddSummary(gi, sum)...)
				}
			}
			r.accSums = append(r.accSums, sum)
		}
		return
	}
	for i := range r.e.P.Ops {
		s, ok := r.sinks[i]
		if !ok {
			continue
		}
		for j, p := range job.nc.Packets {
			if s.uni != nil {
				s.unis = append(s.unis, s.uni.Add(job.nc.Base+j, p)...)
			} else {
				s.cons = append(s.cons, s.conn.Add(job.nc.Base+j, p)...)
			}
		}
	}
}

// runOps executes the picked ops over the job's environment, recording
// per-op stats and any evaluation results on the job. A failing op stores
// its wrapped error in job.err and stops the job. sc supplies the chunk
// base and cross-chunk carry: the shared ordered context, or the job's
// own when running on a parallel worker.
func (r *streamExec) runOps(job *chunkJob, pick []bool, sc *streamCtx, chunkSpan *obs.Span) {
	if job.err != nil {
		return
	}
	e := r.e
	sc.base = job.nc.Base
	for i, op := range e.P.Ops {
		if !pick[i] {
			continue
		}
		in := make([]Value, len(op.Input))
		for j, name := range op.Input {
			v, ok := job.env[name]
			if !ok {
				job.err = fmt.Errorf("core: op %d (%s): value %q was freed or never set", i, op.Func, name)
				return
			}
			in[j] = v
		}
		ctx := &opCtx{mode: r.mode, outName: op.Output, state: e.state, seed: e.Seed, metrics: e.Metrics, stream: sc, drift: &job.drift}
		if chunkSpan != nil {
			ctx.span = chunkSpan.Child("op:" + op.Func)
			ctx.span.Set("output", op.Output)
		}
		st := OpStats{Func: op.Func, Output: op.Output}
		start := time.Now()
		out, err := e.runOp(opRegistry[op.Func], ctx, op, in, &st)
		st.Wall = time.Since(start)
		if err == nil {
			st.OutRows = outRows(out)
		}
		e.finishOp(ctx.span, &st, err)
		if err != nil {
			job.err = fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
			return
		}
		job.stats[i] = st
		job.env[op.Output] = out
		if ctx.result != nil {
			job.results = append(job.results, ctx.result)
		}
	}
}

// absorb folds one finished job into the run, in stream order: profile
// stats, evaluation results, accumulated frames for deferred ops, and
// the full packet set when the plan needs it. It returns the job's error
// (the stream must abort on it, exactly like sequential execution).
func (r *streamExec) absorb(job *chunkJob) error {
	if job.err != nil {
		return job.err
	}
	if r.accDS != nil {
		r.accDS.Packets = append(r.accDS.Packets, job.nc.Packets...)
		if job.nc.Labels != nil {
			r.accDS.Labels = append(r.accDS.Labels, job.nc.Labels...)
		}
		if job.nc.Attacks != nil {
			r.accDS.Attacks = append(r.accDS.Attacks, job.nc.Attacks...)
		}
	}
	for i := range job.stats {
		r.prof[i].Wall += job.stats[i].Wall
		r.prof[i].Allocs += job.stats[i].Allocs
		r.prof[i].OutRows += job.stats[i].OutRows
	}
	r.results = append(r.results, job.results...)
	for i := range job.drift {
		job.drift[i].Seq = job.nc.Seq
	}
	r.e.LastStream.DriftEvents += len(job.drift)
	for name := range r.pl.accum {
		v, ok := job.env[name]
		if !ok {
			continue
		}
		if fr, isFrame := v.(*Frame); isFrame {
			r.accum[name] = append(r.accum[name], fr)
		} else {
			r.lastVal[name] = v
		}
	}
	r.nChunks++
	if live := heapLiveBytes(); live > r.hwm {
		r.hwm = live
	}
	if r.e.Metrics != nil {
		r.e.Metrics.Counter("lumen_chunks_total",
			"Chunks pulled from packet sources by streaming runs.").Inc()
	}
	r.countDecode(job.nc.Views)
	// The hook runs last, once the chunk is fully folded into the run, so
	// callbacks observe a consistent pass state. Its error aborts the
	// stream exactly like an op failure in this chunk would have.
	return r.afterChunk(job)
}

// finish runs the deferred (barrier) suffix with batch semantics over
// the accumulated state and assembles the final result.
func (r *streamExec) finish() (*EvalResult, error) {
	e := r.e
	if e.Metrics != nil {
		e.Metrics.Gauge("lumen_stream_hwm_bytes",
			"Live-heap high-water mark observed at chunk boundaries of the most recent streaming run.").Set(float64(r.hwm))
	}
	var fullDS *dataset.Labeled
	if r.pl.needPackets {
		if r.hasLabeled {
			fullDS = r.lsrc.Labeled()
		} else {
			fullDS = r.accDS
		}
	}

	// Flush: run deferred ops in op order with batch semantics over the
	// concatenated accumulations.
	fenv := map[string]Value{}
	concatenated := map[string]*Frame{}
	resolve := func(name string) (Value, error) {
		if v, ok := fenv[name]; ok {
			return v, nil
		}
		if fr, ok := concatenated[name]; ok {
			return fr, nil
		}
		if parts, ok := r.accum[name]; ok {
			fr, err := concatFrames(parts)
			if err != nil {
				return nil, err
			}
			concatenated[name] = fr
			return fr, nil
		}
		if v, ok := r.lastVal[name]; ok {
			return v, nil
		}
		if name == InputName {
			return Packets{DS: fullDS}, nil
		}
		return nil, fmt.Errorf("value %q was freed or never set", name)
	}
	for i, op := range e.P.Ops {
		if r.pl.streamed[i] {
			continue
		}
		st := OpStats{Func: op.Func, Output: op.Output}
		start := time.Now()
		if s, ok := r.sinks[i]; ok {
			fenv[op.Output] = r.finishFlows(i, s, fullDS)
			r.prof[i].Wall += time.Since(start)
			continue
		}
		in := make([]Value, len(op.Input))
		for j, name := range op.Input {
			v, err := resolve(name)
			if err != nil {
				return nil, fmt.Errorf("core: op %d (%s): %w", i, op.Func, err)
			}
			in[j] = v
		}
		ctx := &opCtx{mode: r.mode, outName: op.Output, state: e.state, seed: e.Seed, metrics: e.Metrics}
		if e.Span != nil {
			ctx.span = e.Span.Child("op:" + op.Func)
			ctx.span.Set("output", op.Output)
		}
		out, err := e.runOp(opRegistry[op.Func], ctx, op, in, &st)
		st.Wall = time.Since(start)
		if err == nil {
			st.OutRows = outRows(out)
		}
		e.finishOp(ctx.span, &st, err)
		if err != nil {
			return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		}
		fenv[op.Output] = out
		r.prof[i].Wall, r.prof[i].Allocs, r.prof[i].OutRows = st.Wall, st.Allocs, st.OutRows
		if ctx.result != nil {
			r.results = append(r.results, ctx.result)
		}
	}
	e.Profile = append(e.Profile[:0], r.prof...)
	e.LastStream.Chunks = r.nChunks
	e.LastStream.HWMBytes = r.hwm
	e.LastStream.LazyViews = r.lazyViews
	if r.mode == ModeTrain {
		if r.sc.online {
			// Reservoir-wrapped batch models have only been accumulating
			// rows; make sure every trained state ends the pass fitted.
			for _, v := range e.state {
				tr, ok := v.(*Trained)
				if !ok {
					continue
				}
				if ff, ok := tr.Clf.(mlkit.FinishFitter); ok {
					if err := ff.FinishFit(); err != nil {
						return nil, fmt.Errorf("core: finish fit: %w", err)
					}
				}
			}
		}
		e.trained = true
	}
	return mergeResults(r.results), nil
}
