package core

import (
	"fmt"

	"lumen/internal/dataset"
)

// FeatureSet is a materialized feature matrix with metadata, for analyses
// that need direct access to features outside a pipeline run (feature
// importance, device classification, custom studies — the paper's §6
// extensions).
type FeatureSet struct {
	Names   []string
	X       [][]float64
	Y       []int
	Attacks []string
	// UnitIdx maps each row to its packet or flow index in the source.
	UnitIdx []int
	Unit    UnitKind
}

// ExtractFlowFeatures assembles flows at the given granularity and
// computes the named per-flow features (nil = full catalogue).
func ExtractFlowFeatures(ds *dataset.Labeled, gran dataset.Granularity, feats []string) (*FeatureSet, error) {
	granStr := "connection"
	if gran == dataset.UniflowG {
		granStr = "uniflow"
	} else if gran == dataset.Packet {
		return nil, fmt.Errorf("core: ExtractFlowFeatures needs a flow granularity")
	}
	fl, err := opFlowAssemble(nil, []Value{Packets{DS: ds}}, params{"granularity": granStr})
	if err != nil {
		return nil, err
	}
	p := params{}
	if feats != nil {
		p["features"] = feats
	}
	fv, err := opFlowFeatures(nil, []Value{fl}, p)
	if err != nil {
		return nil, err
	}
	return frameToSet(fv.(*Frame)), nil
}

// ExtractPacketFields extracts the named per-packet fields (numeric
// fields only make it into X; string fields are skipped).
func ExtractPacketFields(ds *dataset.Labeled, fields []string) (*FeatureSet, error) {
	fv, err := opFieldExtract(nil, []Value{Packets{DS: ds}}, params{"fields": fields})
	if err != nil {
		return nil, err
	}
	return frameToSet(fv.(*Frame)), nil
}

func frameToSet(f *Frame) *FeatureSet {
	var names []string
	for _, c := range f.Cols {
		if c.IsNumeric() {
			names = append(names, c.Name)
		}
	}
	return &FeatureSet{
		Names:   names,
		X:       f.Matrix(),
		Y:       f.Labels,
		Attacks: f.Attacks,
		UnitIdx: f.UnitIdx,
		Unit:    f.Unit,
	}
}
