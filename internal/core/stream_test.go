package core

import (
	"fmt"
	"reflect"
	"testing"

	"lumen/internal/dataset"
)

// streamChunkSizes is the equivalence matrix from the issue: small chunks,
// large chunks, and whole-trace-as-one-chunk.
var streamChunkSizes = []int{64, 1024, 0}

// streamExecShapes are the execution shapes every equivalence case runs
// under: the sequential loop, single-worker pipelining (decode overlaps
// ops), parallel worker fan-out with ordered recombination, and
// flow-sharded sinks at several lane counts (alone and combined with
// worker fan-out).
var streamExecShapes = []StreamConfig{
	{},
	{PipelineDepth: 2},
	{PipelineDepth: 4, Workers: 4},
	{Shards: 2},
	{PipelineDepth: 2, Workers: 2, Shards: 2},
	{PipelineDepth: 4, Workers: 4, Shards: 4},
	{PipelineDepth: 4, Workers: 4, Shards: 8},
}

func flowPipeline(model string, extra map[string]any) *Pipeline {
	mp := map[string]any{"model_type": model}
	for k, v := range extra {
		mp[k] = v
	}
	return &Pipeline{
		Name:        "stream-flow-" + model,
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "flows", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"flows"}, Output: "X"},
			{Func: "normalize", Input: []string{"X"}, Output: "Xn", Params: map[string]any{"kind": "zscore"}},
			{Func: "model", Output: "m", Params: mp},
			{Func: "train", Input: []string{"m", "Xn"}, Output: "fit"},
		},
	}
}

func fieldPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-field-dt",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"ts", "len", "ttl", "dst_port", "tcp_syn", "iat"}}},
			{Func: "filter", Input: []string{"X"}, Output: "Xf", Params: map[string]any{"col": "len", "op": ">", "value": 0.0}},
			{Func: "log_scale", Input: []string{"Xf"}, Output: "Xl"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "Xl"}, Output: "fit"},
		},
	}
}

func dot11Pipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-dot11-dt",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "dot11_features", Input: []string{InputName}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

func kitsunePipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-kitsune-dt",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "kitsune_features", Input: []string{InputName}, Output: "X", Params: map[string]any{"lambdas": []any{0.1}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

func nprintPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-nprint-dt",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "nprint", Input: []string{InputName}, Output: "X", Params: map[string]any{"variant": "tcp_udp_ipv4"}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 5}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

// packetAggPipeline routes through the barrier chain group_by ->
// time_slice -> broadcast_aggregates, so test mode defers everything past
// field_extract to the flush pass.
func packetAggPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-packet-agg",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"ts", "len", "src_ip", "dst_port"}}},
			{Func: "group_by", Input: []string{"X"}, Output: "G", Params: map[string]any{"keys": []any{"src_ip"}}},
			{Func: "time_slice", Input: []string{"G"}, Output: "GT", Params: map[string]any{"window": 5.0}},
			{Func: "broadcast_aggregates", Input: []string{"GT"}, Output: "Xa",
				Params: map[string]any{"list": []any{
					map[string]any{"col": "len", "fn": "mean"},
					map[string]any{"col": "len", "fn": "std"},
					map[string]any{"col": "dst_port", "fn": "distinct"},
				}}},
			{Func: "normalize", Input: []string{"Xa"}, Output: "Xn", Params: map[string]any{"kind": "minmax"}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "Xn"}, Output: "fit"},
		},
	}
}

// scorePipeline exercises the Scores path (Thresholded autoencoder).
func scorePipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-autoenc",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port"}}},
			{Func: "normalize", Input: []string{"X"}, Output: "Xn", Params: map[string]any{"kind": "minmax"}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "autoencoder", "epochs": 3}},
			{Func: "train", Input: []string{"m", "Xn"}, Output: "fit"},
		},
	}
}

// batchRun trains and tests p over ds with the batch engine.
func batchRun(t *testing.T, p *Pipeline, ds *dataset.Labeled) *EvalResult {
	t.Helper()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatalf("batch train: %v", err)
	}
	res, err := eng.Test(ds)
	if err != nil {
		t.Fatalf("batch test: %v", err)
	}
	return res
}

// streamRun trains and tests p over ds with the chunked engine, once per
// execution shape. All shapes must agree bit-for-bit; the sequential
// result is returned (callers compare it against batch, which pins every
// shape transitively).
func streamRun(t *testing.T, p *Pipeline, ds *dataset.Labeled, chunk int) *EvalResult {
	t.Helper()
	var seq *EvalResult
	for _, shape := range streamExecShapes {
		cfg := shape
		cfg.ChunkRows = chunk
		label := fmt.Sprintf("chunk %d, depth %d, workers %d, shards %d", chunk, cfg.PipelineDepth, cfg.Workers, cfg.Shards)
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.TrainStream(ds, cfg); err != nil {
			t.Fatalf("stream train (%s): %v", label, err)
		}
		res, err := eng.TestStream(ds, cfg)
		if err != nil {
			t.Fatalf("stream test (%s): %v", label, err)
		}
		if len(eng.Profile) != len(p.Ops) {
			t.Fatalf("stream profile has %d entries, want %d", len(eng.Profile), len(p.Ops))
		}
		if got, want := eng.LastStream.Pipelined, shape.pipelined(); got != want {
			t.Fatalf("LastStream.Pipelined = %v, want %v (%s)", got, want, label)
		}
		if seq == nil {
			seq = res
		} else {
			requireEqualResults(t, seq, res, label+" vs sequential")
		}
	}
	return seq
}

func requireEqualResults(t *testing.T, batch, stream *EvalResult, label string) {
	t.Helper()
	if !reflect.DeepEqual(batch, stream) {
		t.Errorf("%s: streamed result differs from batch\nbatch:  pred=%d truth=%d scores=%d idx=%d\nstream: pred=%d truth=%d scores=%d idx=%d",
			label,
			len(batch.Pred), len(batch.Truth), len(batch.Scores), len(batch.UnitIdx),
			len(stream.Pred), len(stream.Truth), len(stream.Scores), len(stream.UnitIdx))
	}
}

// TestStreamEquivalenceAllDatasets is the issue's acceptance matrix:
// every registered dataset, chunk sizes {64, 1024, whole-trace}, streamed
// EvalResult bit-identical to batch.
func TestStreamEquivalenceAllDatasets(t *testing.T) {
	ids := append(dataset.ConnectionIDs(), dataset.PacketIDs()...)
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			spec, ok := dataset.Get(id)
			if !ok {
				t.Fatalf("no dataset %s", id)
			}
			ds := spec.Generate(0.05)
			var p *Pipeline
			switch {
			case spec.Granularity == dataset.ConnectionG:
				p = flowPipeline("decision_tree", map[string]any{"max_depth": 6})
			case id == "P2":
				p = dot11Pipeline()
			default:
				p = fieldPipeline()
			}
			want := batchRun(t, p, ds)
			for _, chunk := range streamChunkSizes {
				got := streamRun(t, p, ds, chunk)
				requireEqualResults(t, want, got, fmt.Sprintf("%s chunk=%d", id, chunk))
			}
		})
	}
}

// TestStreamEquivalencePipelineShapes sweeps the op classes: stateful
// packet folds (kitsune), header expansion (nprint), the grouping barrier
// chain, and the Scores path.
func TestStreamEquivalencePipelineShapes(t *testing.T) {
	cases := []struct {
		name string
		p    *Pipeline
		ds   string
	}{
		{"kitsune", kitsunePipeline(), "P1"},
		{"nprint", nprintPipeline(), "P0"},
		{"packet-agg", packetAggPipeline(), "P0"},
		{"autoencoder-scores", scorePipeline(), "P3"},
		{"flow-rf", flowPipeline("random_forest", map[string]any{"n_trees": 5}), "F4"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec, ok := dataset.Get(tc.ds)
			if !ok {
				t.Fatalf("no dataset %s", tc.ds)
			}
			ds := spec.Generate(0.05)
			want := batchRun(t, tc.p, ds)
			for _, chunk := range streamChunkSizes {
				got := streamRun(t, tc.p, ds, chunk)
				requireEqualResults(t, want, got, fmt.Sprintf("%s chunk=%d", tc.name, chunk))
			}
			if tc.name == "autoencoder-scores" && want.Scores == nil {
				t.Error("score pipeline produced no scores; the Scores merge path went untested")
			}
		})
	}
}

// TestStreamBatchTrainStreamTest mixes the paths: a batch-fitted engine
// must serve streamed inference with identical output.
func TestStreamBatchTrainStreamTest(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.05)
	p := flowPipeline("decision_tree", map[string]any{"max_depth": 6})
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.TestStream(ds, StreamConfig{ChunkRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, want, got, "batch-train/stream-test")
}

// TestStreamFlowSpansChunks forces flows across chunk boundaries: chunk
// size 4 splits every connection of the trace over many chunks, so the
// incremental assembler must stitch them exactly as the batch path does.
func TestStreamFlowSpansChunks(t *testing.T) {
	spec, _ := dataset.Get("F4")
	ds := spec.Generate(0.03)
	if len(ds.Packets) < 16 {
		t.Fatalf("dataset too small (%d packets) to span chunks", len(ds.Packets))
	}
	p := flowPipeline("decision_tree", map[string]any{"max_depth": 4})
	want := batchRun(t, p, ds)
	got := streamRun(t, p, ds, 4)
	requireEqualResults(t, want, got, "flow chunk=4")
}

// TestStreamTimeSliceStraddlesChunks pins the barrier-op guarantee: a
// time window that straddles a chunk boundary is aggregated over both
// sides because group_by/time_slice run at flush over the full frame.
func TestStreamTimeSliceStraddlesChunks(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	p := packetAggPipeline()
	want := batchRun(t, p, ds)
	for _, chunk := range []int{7, 64} {
		got := streamRun(t, p, ds, chunk)
		requireEqualResults(t, want, got, fmt.Sprintf("time-slice chunk=%d", chunk))
	}
}

// emptyTailSource wraps a SliceSource and appends one empty chunk after
// the stream ends, simulating a source whose final pull drains nothing.
type emptyTailSource struct {
	inner *dataset.SliceSource
	n     int
	sent  bool
}

func (s *emptyTailSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *emptyTailSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	if ck, ok := s.inner.Next(maxRows, maxBytes); ok {
		return ck, true
	}
	if !s.sent {
		s.sent = true
		return dataset.Chunk{Base: s.n}, true
	}
	return dataset.Chunk{}, false
}

func (s *emptyTailSource) Reset() error {
	s.sent = false
	return s.inner.Reset()
}

// Labeled keeps the zero-copy full-dataset path available, like the
// wrapped SliceSource.
func (s *emptyTailSource) Labeled() *dataset.Labeled { return s.inner.Labeled() }

// TestStreamEmptyFinalChunk: an empty trailing chunk must not perturb the
// result — streamed ops see a typed zero-row frame and merge to nothing.
func TestStreamEmptyFinalChunk(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	p := fieldPipeline()
	want := batchRun(t, p, ds)

	for _, shape := range streamExecShapes {
		cfg := shape
		cfg.ChunkRows = 64
		eng := NewEngine(p)
		eng.Seed = 7
		src := &emptyTailSource{inner: dataset.NewSliceSource(ds), n: len(ds.Packets)}
		if _, err := eng.RunStream(src, ModeTrain, cfg); err != nil {
			t.Fatal(err)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunStream(src, ModeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, want, got, fmt.Sprintf("empty-final-chunk depth=%d workers=%d", cfg.PipelineDepth, cfg.Workers))
	}
}

// TestStreamEmptyDataset: a stream with no packets must behave like batch
// on an empty dataset (both fail identically at train: no labels).
func TestStreamEmptyDataset(t *testing.T) {
	ds := &dataset.Labeled{Name: "empty", Granularity: dataset.Packet}
	p := fieldPipeline()
	be := NewEngine(p)
	_, berr := be.run(ds, ModeTrain)
	se := NewEngine(p)
	serr := se.TrainStream(ds, StreamConfig{ChunkRows: 64})
	if (berr == nil) != (serr == nil) {
		t.Fatalf("batch err %v vs stream err %v", berr, serr)
	}
	if berr != nil && serr != nil && berr.Error() != serr.Error() {
		t.Fatalf("error mismatch:\nbatch:  %v\nstream: %v", berr, serr)
	}
}

// TestStreamByteBound drives the byte-based chunk bound.
func TestStreamByteBound(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	p := fieldPipeline()
	want := batchRun(t, p, ds)

	for _, shape := range streamExecShapes {
		cfg := shape
		cfg.ChunkBytes = 4096
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.TrainStream(ds, cfg); err != nil {
			t.Fatal(err)
		}
		got, err := eng.TestStream(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, want, got, fmt.Sprintf("byte-bound depth=%d workers=%d", cfg.PipelineDepth, cfg.Workers))
	}
}

// TestTestStreamBeforeTrain mirrors the batch contract.
func TestTestStreamBeforeTrain(t *testing.T) {
	eng := NewEngine(fieldPipeline())
	if _, err := eng.TestStream(&dataset.Labeled{}, StreamConfig{}); err == nil {
		t.Fatal("TestStream before TrainStream should error")
	}
}
