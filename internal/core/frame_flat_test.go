package core

import (
	"fmt"
	"math"
	"testing"
)

// TestFlatMatrixMatchesMatrix pins FlatMatrix against the row shape
// Matrix exposes: same values, one backing allocation, and Matrix rows
// must be views into FlatMatrix-style flat storage (mutating a row must
// not touch the frame's columns).
func TestFlatMatrixMatchesMatrix(t *testing.T) {
	f := NewFrame(4)
	f.AddF("a", []float64{1, 2, 3, 4})
	f.AddS("tag", []string{"x", "y", "x", "y"}) // skipped by both paths
	f.AddF("b", []float64{10, 20, 30, 40})

	m := f.FlatMatrix()
	if m.Rows != 4 || m.Cols != 2 {
		t.Fatalf("FlatMatrix dims = %dx%d, want 4x2", m.Rows, m.Cols)
	}
	X := f.Matrix()
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if X[i][j] != m.At(i, j) {
				t.Fatalf("Matrix[%d][%d] = %g, FlatMatrix = %g", i, j, X[i][j], m.At(i, j))
			}
		}
	}
	if m.At(2, 1) != 30 {
		t.Fatalf("FlatMatrix(2,1) = %g, want 30", m.At(2, 1))
	}
	// Matrix rows view the flat copy, not the frame's columns.
	X[0][0] = -1
	if f.Col("a").F[0] != 1 {
		t.Fatal("mutating a Matrix row must not write through to frame columns")
	}
}

// TestFlatMatrixNoNumeric covers the zero-column edge.
func TestFlatMatrixNoNumeric(t *testing.T) {
	f := NewFrame(3)
	f.AddS("s", []string{"a", "b", "c"})
	m := f.FlatMatrix()
	if m.Rows != 3 || m.Cols != 0 {
		t.Fatalf("dims = %dx%d, want 3x0", m.Rows, m.Cols)
	}
	X := f.Matrix()
	if len(X) != 3 || len(X[0]) != 0 {
		t.Fatalf("Matrix shape = %d rows, row0 len %d", len(X), len(X[0]))
	}
}

// TestTakeRowsIdentityView verifies the O(n) identity-permutation fast
// path returns a frame sharing column storage (like Select), while
// non-identity index sets still copy.
func TestTakeRowsIdentityView(t *testing.T) {
	f := NewFrame(3)
	f.AddF("a", []float64{1, 2, 3})
	f.AddS("s", []string{"p", "q", "r"})
	f.Labels = []int{0, 1, 0}
	f.UnitIdx = []int{5, 6, 7}
	f.Attacks = []string{"", "dos", ""}

	view := f.TakeRows([]int{0, 1, 2})
	if view.N != 3 {
		t.Fatalf("view.N = %d", view.N)
	}
	// Shared storage: writes through the view's column are visible in f.
	view.Col("a").F[1] = 99
	if f.Col("a").F[1] != 99 {
		t.Fatal("identity TakeRows must share numeric column storage")
	}
	f.Col("a").F[1] = 2
	if &view.Labels[0] != &f.Labels[0] || &view.UnitIdx[0] != &f.UnitIdx[0] {
		t.Fatal("identity TakeRows must share label/unit metadata")
	}

	// A reordering must still deep-copy.
	rev := f.TakeRows([]int{2, 1, 0})
	rev.Col("a").F[0] = -5
	if f.Col("a").F[2] == -5 {
		t.Fatal("non-identity TakeRows must copy column storage")
	}
	if rev.Col("a").F[1] != 2 || rev.Col("s").S[0] != "r" || rev.Labels[0] != 0 || rev.Attacks[1] != "dos" {
		t.Fatal("non-identity TakeRows reordered values wrong")
	}

	// Same length but permuted: must not take the view path.
	perm := f.TakeRows([]int{1, 0, 2})
	perm.Col("a").F[0] = 123
	if f.Col("a").F[1] == 123 {
		t.Fatal("permuted TakeRows must copy, not share")
	}
}

// TestGroupRowsKeyCompat pins the strconv.AppendFloat key building
// against the previous fmt.Sprintf("%g") + string-concat scheme: every
// produced group key must be byte-identical, including negative zero,
// exponents, infinities and NaN.
func TestGroupRowsKeyCompat(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1e-9, 1.2345678901234567e+300,
		-2.5e-300, math.Inf(1), math.Inf(-1), math.NaN(), 1234567890.123,
	}
	tags := []string{"a", "b", "a", "b", "c", "a", "b", "c", "a", "b", "c", "a"}
	f := NewFrame(len(vals))
	f.AddF("v", vals)
	f.AddS("tag", tags)

	g, err := groupRows(f, []string{"v", "tag"})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute keys the old way and check first-appearance order + bytes.
	oldIndex := map[string]int{}
	var oldKeys []string
	for r := 0; r < f.N; r++ {
		key := fmt.Sprintf("%g", vals[r]) + "|" + tags[r]
		if _, ok := oldIndex[key]; !ok {
			oldIndex[key] = len(oldKeys)
			oldKeys = append(oldKeys, key)
		}
	}
	if len(g.Keys) != len(oldKeys) {
		t.Fatalf("got %d groups, old scheme gives %d", len(g.Keys), len(oldKeys))
	}
	for i, k := range g.Keys {
		if k != oldKeys[i] {
			t.Fatalf("key[%d] = %q, old scheme %q", i, k, oldKeys[i])
		}
	}
}
