package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

// Flow-sharded sink. When StreamConfig.Shards > 1, the pipeline's sink
// stage splits into three roles so stateful per-flow work runs
// concurrently without giving up bit-identical results:
//
//	router (caller goroutine)  reorders jobs by sequence, runs the
//	                           ordered ops whose carry state spans flows
//	                           (Kitsune folds, global inter-arrival
//	                           times), hashes each packet's
//	                           direction-normalized five-tuple to a lane
//	                           and dispatches the job to every lane
//	shard lanes (K goroutines) each owns its flow assemblers, streamCtx
//	                           and a model-scratch replica; lane k feeds
//	                           its assemblers only the packets hashed to
//	                           k and scores only the frame rows whose
//	                           packets hashed to k
//	merger (goroutine)         waits for all lanes to finish a job (in
//	                           stream order), stitches the per-lane
//	                           verdicts back into packet order, and
//	                           absorbs the job into the run
//
// Determinism rule: a lane only ever receives work that is a function of
// its own flows (assembly) or of single rows (scoring through a fitted,
// read-only model), so the partition cannot change any output value —
// only where it is computed. The merger reassembles verdicts by original
// row index and the flush merges per-lane flow logs back into canonical
// (first-packet time, tuple) order, so EvalResult and conn-logs are
// bit-identical to Shards=1. Anything that would break that rule
// (cross-flow carry) never leaves the router.
type shardRun struct {
	r    *streamExec
	pump *dataset.Pump
	done chan struct{}

	lanes []*shardLane
	merge chan *chunkJob

	// laneOp is the single lane-eligible op index (-1 when none): the
	// engine rejects multiple train ops, so at most one op scores on the
	// lanes. lanePick is the corresponding one-op pick mask, proba
	// whether its classifier reports probability scores, shared the
	// fitted value every stitched job publishes to its env.
	laneOp   int
	lanePick []bool
	proba    bool
	shared   Value

	laneWG  sync.WaitGroup
	mergeWG sync.WaitGroup
	// aborted flips once the merger hit the first in-order error; the
	// router stops dispatching and the lanes stop working. firstErr and
	// mergeStallNS are merger-owned until the goroutines are joined.
	aborted      atomic.Bool
	firstErr     error
	mergeStallNS int64

	sinkSpan  *obs.Span
	mergeSpan *obs.Span
}

// shardLane is one flow-hash lane: the partition-local share of every
// stateful sink structure.
type shardLane struct {
	k     int
	in    chan *chunkJob
	sinks map[int]*flowSinkState
	sc    *streamCtx
	// state mirrors Engine.state with model-scratch replicas swapped in
	// (mlkit.ScoringReplica), so lanes score concurrently yet
	// bit-identically through the shared fitted parameters.
	state map[string]any
	span  *obs.Span

	packets int64
	rows    int64
	stallNS int64
}

// laneResult is one lane's output for one job's laned op.
type laneResult struct {
	res  *EvalResult
	err  error
	wall time.Duration
}

// laneState clones the engine's fitted-state map, replacing each trained
// model with a scoring replica that owns its inference scratch.
func laneState(e *Engine) map[string]any {
	st := make(map[string]any, len(e.state))
	for k, v := range e.state {
		if tr, ok := v.(*Trained); ok {
			st[k] = &Trained{Spec: tr.Spec, Clf: mlkit.ScoringReplica(tr.Clf)}
		} else {
			st[k] = v
		}
	}
	return st
}

// startShards builds the lanes and starts the lane and merger
// goroutines. queue bounds the merge channel (and each lane's inbox), so
// total in-flight stays O(depth + workers) jobs.
func (r *streamExec) startShards(shards, queue int, pump *dataset.Pump, done chan struct{}, sinkSpan *obs.Span, laneTID int) *shardRun {
	e := r.e
	s := &shardRun{
		r:        r,
		pump:     pump,
		done:     done,
		merge:    make(chan *chunkJob, queue),
		laneOp:   -1,
		sinkSpan: sinkSpan,
	}
	for i, isLane := range r.pl.lane {
		if isLane {
			s.laneOp = i
		}
	}
	if s.laneOp >= 0 {
		s.lanePick = make([]bool, len(e.P.Ops))
		s.lanePick[s.laneOp] = true
		op := e.P.Ops[s.laneOp]
		if tr, ok := e.state[op.Output].(*Trained); ok {
			_, s.proba = tr.Clf.(mlkit.ProbClassifier)
			s.shared = *tr
		}
	}
	for k := 0; k < shards; k++ {
		// Sink params were validated when newStreamExec built r.sinks
		// from the same plan, so this cannot fail here.
		laneSinks, _ := newFlowSinkStates(e, r.pl)
		ln := &shardLane{
			k:     k,
			in:    make(chan *chunkJob, queue),
			sinks: laneSinks,
			sc:    &streamCtx{carry: map[string]any{}},
			state: laneState(e),
		}
		if e.Span != nil {
			ln.span = e.Span.ChildOn("stage:shard", laneTID+k)
			ln.span.Set("shard", k)
		}
		s.lanes = append(s.lanes, ln)
		s.laneWG.Add(1)
		go ln.run(s)
	}
	r.lanes = s.lanes
	if e.Span != nil {
		s.mergeSpan = e.Span.ChildOn("stage:merge", laneTID+shards)
	}
	s.mergeWG.Add(1)
	go s.mergerLoop()
	return s
}

// route handles one in-order job on the router: cross-flow ordered ops,
// packet→lane hashing, row partitioning and dispatch. On the lazy view
// path of flow-only plans the router also accumulates each packet's
// summary (in stream order — the lanes feed themselves, so feedSinks
// never runs here) for the flush-time flow-feature pass. Every job —
// even failed or post-abort ones — is forwarded to the merger, which
// owns release.
func (s *shardRun) route(j *chunkJob) {
	if j.err == nil && !s.aborted.Load() {
		if len(s.r.sinks) > 0 && len(j.nc.Views) > 0 {
			for vi := range j.nc.Views {
				s.r.accSums = append(s.r.accSums, j.nc.Views[vi].Summary())
			}
		}
		if s.r.pl.nOrdered > s.r.pl.nLane {
			var cs *obs.Span
			if s.sinkSpan != nil {
				cs = s.sinkSpan.Child("chunk")
				cs.Set("base", j.nc.Base)
				cs.Set("rows", j.nc.Len())
			}
			s.r.runOps(j, s.r.pl.routerOrdered, s.r.sc, cs)
			if cs != nil {
				cs.End()
			}
		}
		if j.err == nil {
			s.dispatch(j)
		}
	}
	s.merge <- j
}

// dispatch hashes the job's packets into lanes, partitions the scoring
// frame's rows by owning packet, and hands the job to every lane. Rows
// that cannot be attributed to a packet of this chunk demote the scoring
// op to the router (global order — exactly the unsharded sink).
func (s *shardRun) dispatch(j *chunkJob) {
	K := len(s.lanes)
	j.shardIDs = j.nc.ShardIDs(K, j.shardIDs[:0])
	j.laneFrame = nil
	j.demoted = false
	if s.laneOp >= 0 {
		fr := s.laneInput(j)
		if fr == nil || !s.partition(j, fr) {
			j.demoted = true
			s.r.runOps(j, s.lanePick, s.r.sc, nil)
			if j.err != nil {
				return // route forwards the failed job to the merger
			}
		}
	}
	if cap(j.laneRes) < K {
		j.laneRes = make([]laneResult, K)
	} else {
		j.laneRes = j.laneRes[:K]
		clear(j.laneRes)
	}
	j.routed = true
	j.laneDone.Add(K)
	for _, ln := range s.lanes {
		ln.in <- j
	}
}

// laneInput returns the frame the laned op scores, nil when it is not a
// plain frame (which cannot happen for train, but demotion keeps this
// robust).
func (s *shardRun) laneInput(j *chunkJob) *Frame {
	op := s.r.e.P.Ops[s.laneOp]
	for _, name := range op.Input {
		if fr, ok := j.env[name].(*Frame); ok {
			return fr
		}
	}
	return nil
}

// partition buckets the frame's rows by the lane of their source packet
// (UnitIdx maps row → global packet index). False when any row falls
// outside this chunk.
func (s *shardRun) partition(j *chunkJob, fr *Frame) bool {
	if fr.Unit != UnitPacket || (fr.N > 0 && fr.UnitIdx == nil) {
		return false
	}
	K, n := len(s.lanes), j.nc.Len()
	if cap(j.laneRows) < K {
		j.laneRows = make([][]int, K)
	} else {
		j.laneRows = j.laneRows[:K]
	}
	for k := range j.laneRows {
		j.laneRows[k] = j.laneRows[k][:0]
	}
	for row := 0; row < fr.N; row++ {
		pi := fr.UnitIdx[row] - j.nc.Base
		if pi < 0 || pi >= n {
			return false
		}
		k := int(j.shardIDs[pi])
		j.laneRows[k] = append(j.laneRows[k], row)
	}
	j.laneFrame = fr
	return true
}

// run is a lane goroutine: drain the inbox, do the lane's share of each
// job, signal the merger. Stall only counts receives that delivered a
// job (not the close).
func (ln *shardLane) run(s *shardRun) {
	defer s.laneWG.Done()
	for {
		t0 := time.Now()
		j, ok := <-ln.in
		if !ok {
			return
		}
		ln.stallNS += time.Since(t0).Nanoseconds()
		ln.process(s, j)
		j.laneDone.Done()
	}
}

// process does lane k's share of one job: feed its packets to its flow
// assemblers, score its rows through its model replica. Lazy chunks feed
// the assemblers PacketSummary values built from the views — safe
// concurrently because headers were predecoded on the source goroutine
// (enableViews forces the hint for sharded lazy runs) and each view
// element belongs to exactly one lane.
func (ln *shardLane) process(s *shardRun, j *chunkJob) {
	if s.aborted.Load() {
		return
	}
	for _, id := range j.shardIDs {
		if int(id) == ln.k {
			ln.packets++
		}
	}
	if j.nc.Views != nil {
		if len(ln.sinks) > 0 {
			for pi := range j.nc.Views {
				if int(j.shardIDs[pi]) != ln.k {
					continue
				}
				sum := j.nc.Views[pi].Summary()
				for _, fs := range ln.sinks {
					if fs.uni != nil {
						fs.unis = append(fs.unis, fs.uni.AddSummary(j.nc.Base+pi, sum)...)
					} else {
						fs.cons = append(fs.cons, fs.conn.AddSummary(j.nc.Base+pi, sum)...)
					}
				}
			}
		}
	} else {
		for i := range s.r.e.P.Ops {
			fs, ok := ln.sinks[i]
			if !ok {
				continue
			}
			for pi, p := range j.nc.Packets {
				if int(j.shardIDs[pi]) != ln.k {
					continue
				}
				if fs.uni != nil {
					fs.unis = append(fs.unis, fs.uni.Add(j.nc.Base+pi, p)...)
				} else {
					fs.cons = append(fs.cons, fs.conn.Add(j.nc.Base+pi, p)...)
				}
			}
		}
	}
	if s.laneOp >= 0 && !j.demoted && j.laneFrame != nil {
		ln.scoreRows(s, j)
	}
}

// scoreRows runs the laned op over this lane's row subset, through the
// lane's scratch replica. Wrapping matches runOps exactly so a lane
// failure surfaces the same error the sequential sink would have.
func (ln *shardLane) scoreRows(s *shardRun, j *chunkJob) {
	e := s.r.e
	i := s.laneOp
	op := e.P.Ops[i]
	rows := j.laneRows[ln.k]
	lr := &j.laneRes[ln.k]
	in := make([]Value, len(op.Input))
	for idx, name := range op.Input {
		v, ok := j.env[name]
		if !ok {
			lr.err = fmt.Errorf("core: op %d (%s): value %q was freed or never set", i, op.Func, name)
			return
		}
		if fr, isFrame := v.(*Frame); isFrame && fr == j.laneFrame {
			v = fr.TakeRows(rows)
		}
		in[idx] = v
	}
	ln.sc.base = j.nc.Base
	ctx := &opCtx{mode: s.r.mode, outName: op.Output, state: ln.state, seed: e.Seed, metrics: e.Metrics, stream: ln.sc}
	if ln.span != nil {
		ctx.span = ln.span.Child("op:" + op.Func)
		ctx.span.Set("output", op.Output)
		ctx.span.Set("rows", len(rows))
	}
	st := OpStats{Func: op.Func, Output: op.Output}
	start := time.Now()
	_, err := e.runOp(opRegistry[op.Func], ctx, op, in, &st)
	lr.wall = time.Since(start)
	// Close only the lane's span here: the op executed once logically,
	// split across K lanes, so the merger emits its single metrics sample
	// at stitch time (per-lane emission would count the op K times).
	finishOpSpan(ctx.span, &st, err)
	if err != nil {
		lr.err = fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		return
	}
	lr.res = ctx.result
	ln.rows += int64(len(rows))
}

// mergerLoop absorbs jobs in stream order: wait until every lane
// finished the job, stitch the per-lane verdicts back into row order,
// fold the job into the run, release it. The first in-order error stops
// the pump and unwinds the upstream stages, exactly like the unsharded
// sink.
func (s *shardRun) mergerLoop() {
	defer s.mergeWG.Done()
	for j := range s.merge {
		t0 := time.Now()
		j.laneDone.Wait()
		s.mergeStallNS += time.Since(t0).Nanoseconds()
		if s.firstErr == nil {
			s.stitch(j)
			if err := s.r.absorb(j); err != nil {
				s.firstErr = err
				s.aborted.Store(true)
				s.pump.Stop()
				close(s.done)
			}
		}
		s.pump.Done(j.nc)
		putChunkJob(j)
	}
}

// stitch reassembles the lanes' outputs into the job, by original row
// index, reproducing exactly what the unsharded sink would have put
// there: the same EvalResult (including nil-ness of empty fields), the
// op's output value in the env, and its profile entry.
func (s *shardRun) stitch(j *chunkJob) {
	if j.err != nil || !j.routed || s.laneOp < 0 || j.demoted || j.laneFrame == nil {
		return
	}
	i := s.laneOp
	op := s.r.e.P.Ops[i]
	var wall time.Duration
	for k := range j.laneRes {
		wall += j.laneRes[k].wall
	}
	// One metrics sample per logical op execution, matching the unsharded
	// sink (which records the op even when it fails).
	defer s.r.e.opMetrics(&OpStats{Func: op.Func, Output: op.Output, Wall: wall})
	for k := range j.laneRes {
		if err := j.laneRes[k].err; err != nil {
			j.err = err
			return
		}
	}
	fr := j.laneFrame
	res := &EvalResult{
		Unit:    fr.Unit,
		Truth:   append([]int(nil), fr.Labels...),
		Attacks: append([]string(nil), fr.Attacks...),
		UnitIdx: append([]int(nil), fr.UnitIdx...),
	}
	if fr.N > 0 {
		res.Pred = make([]int, fr.N)
		if s.proba {
			res.Scores = make([]float64, fr.N)
		}
		for k := range j.laneRes {
			lr := &j.laneRes[k]
			for li, row := range j.laneRows[k] {
				res.Pred[row] = lr.res.Pred[li]
				if s.proba {
					res.Scores[row] = lr.res.Scores[li]
				}
			}
		}
	}
	j.results = append(j.results, res)
	j.env[op.Output] = s.shared
	j.stats[i] = OpStats{Func: op.Func, Output: op.Output, Wall: wall}
}

// close shuts the lanes and merger down in dependency order and returns
// the first in-order error (nil on clean runs). Called from the router
// goroutine after the last job was forwarded.
func (s *shardRun) close() error {
	for _, ln := range s.lanes {
		close(ln.in)
	}
	s.laneWG.Wait()
	close(s.merge)
	s.mergeWG.Wait()
	if s.r.e.Span != nil {
		for _, ln := range s.lanes {
			ln.span.Set("packets", ln.packets)
			ln.span.Set("rows", ln.rows)
			ln.span.Set("stall_ns", ln.stallNS)
			ln.span.End()
		}
		s.mergeSpan.Set("stall_ns", s.mergeStallNS)
		s.mergeSpan.End()
	}
	return s.firstErr
}

// finishFlows assembles the final Flows value of sink op i at flush,
// merging the per-lane partitions (sharded runs) with the direct sink
// (unsharded runs) back into canonical order.
func (r *streamExec) finishFlows(i int, s *flowSinkState, fullDS *dataset.Labeled) *Flows {
	out := &Flows{DS: fullDS, Granularity: s.gran, Sums: r.accSums}
	if s.uni != nil {
		parts := [][]*flow.Uniflow{append(s.unis, s.uni.Flush()...)}
		for _, ln := range r.lanes {
			ls := ln.sinks[i]
			parts = append(parts, append(ls.unis, ls.uni.Flush()...))
		}
		out.Unis = flow.MergeUniflows(parts...)
	} else {
		parts := [][]*flow.Connection{append(s.cons, s.conn.Flush()...)}
		for _, ln := range r.lanes {
			ls := ln.sinks[i]
			parts = append(parts, append(ls.cons, ls.conn.Flush()...))
		}
		out.Conns = flow.MergeConnections(parts...)
	}
	return out
}
