package core

import (
	"fmt"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/obs"
)

// StreamConfig bounds the chunks a RunStream pass pulls from its source
// and shapes its execution. Zero chunk bounds mean unbounded: with both
// zero the whole trace arrives as one chunk and streaming degenerates to
// batch execution. Zero pipeline fields select the sequential loop; any
// non-default pipeline field selects the staged pipeline (see
// runPipelined), which produces bit-identical results.
type StreamConfig struct {
	// ChunkRows caps the packets per chunk (0 = no row bound).
	ChunkRows int
	// ChunkBytes caps the wire bytes per chunk (0 = no byte bound).
	ChunkBytes int
	// PipelineDepth bounds how many decoded chunks may queue between the
	// source goroutine and the op workers (0 = sequential execution,
	// unless Workers asks for parallelism, in which case the default
	// depth of 2 applies). Peak memory grows with it: the pipeline holds
	// O(PipelineDepth + Workers) chunks in flight.
	PipelineDepth int
	// Workers is the number of parallel op-stage workers (0 or 1 = one
	// worker). Only order-free row-local ops fan out; carry-state ops and
	// model scoring always run in stream order in the sink stage.
	Workers int
	// Shards is the number of flow-hash lanes the stateful sink stage is
	// partitioned into (0 or 1 = a single sink). Each packet routes to
	// the lane derived from its direction-normalized five-tuple, and each
	// lane owns independent flow assemblers and a model-scratch replica,
	// so flow assembly and model scoring run concurrently across lanes
	// while cross-flow carry folds (Kitsune statistics, inter-arrival
	// times) stay on the in-order router. Results remain bit-identical to
	// Shards=1 at any shard count; see DESIGN.md "Flow-sharded sink".
	Shards int
	// Hooks are optional per-chunk lifecycle callbacks (see StreamHooks).
	// Setting an AfterChunk hook demotes Shards to 1, because lanes score
	// concurrently with absorption and would race callback-driven model
	// mutation.
	Hooks *StreamHooks
	// Online enables in-stream learning. In ModeTrain the train op and
	// the online-capable scalers (normalize, clip) stream chunk-by-chunk
	// through partial-fit carry state instead of deferring to the flush
	// barrier, so fitting runs in bounded memory over one pass. In
	// ModeTest the train op evaluates prequentially (test-then-train):
	// each chunk is scored by the model as fitted before the chunk
	// arrived, then absorbed as labelled training data when the model
	// supports mlkit.PartialFitter. Online runs keep model scoring on the
	// ordered sink (no shard lanes), because the model mutates mid-stream.
	Online bool
}

// pipelined reports whether the config selects the staged pipeline.
func (c StreamConfig) pipelined() bool {
	return c.PipelineDepth > 0 || c.Workers > 1 || c.Shards > 1
}

// depth returns the effective source-queue depth of a pipelined run.
func (c StreamConfig) depth() int {
	if c.PipelineDepth > 0 {
		return c.PipelineDepth
	}
	return 2
}

// workers returns the effective op-stage worker count.
func (c StreamConfig) workers() int {
	if c.Workers > 1 {
		return c.Workers
	}
	return 1
}

// shards returns the effective sink-shard count, capped so a lane id
// fits in a byte (dataset.Chunk.ShardIDs).
func (c StreamConfig) shards() int {
	if c.Shards <= 1 {
		return 1
	}
	if c.Shards > 256 {
		return 256
	}
	return c.Shards
}

// streamableAlways lists ops that are row-local in both modes: each output
// row depends only on its input row (plus, for the packet feature ops,
// fold state that opCtx.carry threads across chunks), so running them
// chunk-by-chunk is bit-identical to batch.
var streamableAlways = map[string]bool{
	"field_extract": true, "nprint": true, "kitsune_features": true,
	"dot11_features": true, "select": true, "filter": true,
	"concat_cols": true, "derive": true, "log_scale": true, "model": true,
	"drift_detect": true,
}

// streamableTest lists ops that fit global state in ModeTrain (a barrier)
// but apply it row-locally in ModeTest, where they stream. balance is a
// test-mode pass-through; train predicts per row with the fitted model.
var streamableTest = map[string]bool{
	"normalize": true, "clip": true, "pca_transform": true, "onehot": true,
	"drop_const": true, "drop_correlated": true, "balance": true, "train": true,
}

// streamableOnlineTrain lists the ops that additionally stream in
// ModeTrain when StreamConfig.Online is set: the train op partial-fits
// its model chunk-by-chunk, and the scalers fold Welford/P² carry state
// instead of fitting behind the barrier.
var streamableOnlineTrain = map[string]bool{
	"normalize": true, "clip": true, "train": true,
}

// streamable reports whether fn can run per chunk in the given mode.
// Unknown ops default to barrier: correctness over memory.
func streamable(fn string, mode Mode, online bool) bool {
	if streamableAlways[fn] {
		return true
	}
	if mode == ModeTest && streamableTest[fn] {
		return true
	}
	return online && mode == ModeTrain && streamableOnlineTrain[fn]
}

// orderedOnly reports whether a streamed op must see chunks in stream
// order and therefore cannot fan out to parallel chunk workers:
//   - kitsune_features / dot11_features fold damped statistics across
//     chunks (opCtx.carry), so chunk N's output depends on chunks < N;
//   - field_extract does the same for its iat column (previous packet
//     timestamp) — without iat it is order-free;
//   - train in test mode scores through the fitted classifier, whose
//     inference path may reuse internal scratch buffers (e.g. MLP batch
//     activations), so concurrent calls on one model are unsafe;
//   - drift_detect folds a Page-Hinkley statistic over the score stream;
//   - in online train mode, normalize and clip fold streaming-scaler
//     carry state (Welford moments, P² quantile markers) across chunks.
func orderedOnly(op OpSpec, mode Mode, online bool) bool {
	switch op.Func {
	case "kitsune_features", "dot11_features", "train", "drift_detect":
		return true
	case "normalize", "clip":
		return online && mode == ModeTrain
	case "field_extract":
		for _, f := range params(op.Params).strList("fields") {
			if f == "iat" {
				return true
			}
		}
	}
	return false
}

// streamPlan is the static split of a pipeline into its streamed prefix
// and deferred (barrier) suffix, computed before any packet is read.
type streamPlan struct {
	// streamed[i]: op i runs once per chunk.
	streamed []bool
	// flowSink[i]: op i is a flow_assemble fed packet-by-packet during the
	// chunk loop; its Flows output materializes at flush.
	flowSink []bool
	// worker[i]: op i is streamed, order-free and fed only by other
	// order-free streamed values, so pipelined runs may execute it on
	// parallel chunk workers. ordered[i] marks the remaining streamed
	// ops, which the sink stage runs in stream order (nOrdered counts
	// them).
	worker   []bool
	ordered  []bool
	nOrdered int
	// lane[i]: op i is ordered but flow-partitionable — its rows can be
	// scored independently per shard lane (test-mode model scoring whose
	// output no later streamed op consumes). The remaining ordered ops
	// (routerOrdered) fold cross-flow carry state — Kitsune's per-source
	// statistics, global inter-arrival times — and must see every chunk
	// in stream order on a single goroutine even when the sink is
	// sharded. nLane counts the lane-eligible ops.
	lane          []bool
	routerOrdered []bool
	nLane         int
	// accum holds the names of streamed frame outputs that some deferred
	// op reads: their per-chunk frames are retained and concatenated at
	// flush. Streamed values consumed only by streamed ops are never kept.
	accum map[string]bool
	// needPackets: some deferred op (or flow sink) reads the full packet
	// set at flush, so it must be available as one dataset. flowOnly
	// refines it: the packets are needed solely by flow sinks, which
	// consume PacketSummary values — that case can still ride the lazy
	// view fast path, with summaries accumulated per chunk instead of
	// decoded packets.
	needPackets bool
	flowOnly    bool
}

// planStream classifies every op: an op streams iff its class allows it
// and every input is itself streamed (a value produced behind a barrier
// only exists at flush).
func (e *Engine) planStream(mode Mode, online bool) *streamPlan {
	pl := &streamPlan{
		streamed:      make([]bool, len(e.P.Ops)),
		flowSink:      make([]bool, len(e.P.Ops)),
		worker:        make([]bool, len(e.P.Ops)),
		ordered:       make([]bool, len(e.P.Ops)),
		lane:          make([]bool, len(e.P.Ops)),
		routerOrdered: make([]bool, len(e.P.Ops)),
		accum:         map[string]bool{},
	}
	streamedVal := map[string]bool{InputName: true}
	for i, op := range e.P.Ops {
		allStreamed := true
		for _, in := range op.Input {
			if !streamedVal[in] {
				allStreamed = false
			}
		}
		if op.Func == "flow_assemble" && allStreamed {
			pl.flowSink[i] = true
			pl.needPackets = true // Flows retain the full dataset for labels
			pl.flowOnly = true
			continue
		}
		if allStreamed && streamable(op.Func, mode, online) {
			pl.streamed[i] = true
			streamedVal[op.Output] = true
		}
	}
	// Split streamed ops into the parallelizable worker stage and the
	// order-preserving sink stage. An op can only fan out if everything
	// it reads is produced on the same worker (or is the chunk itself);
	// anything downstream of an ordered op is ordered too.
	workerVal := map[string]bool{InputName: true}
	for i, op := range e.P.Ops {
		if !pl.streamed[i] {
			continue
		}
		free := !orderedOnly(op, mode, online)
		for _, in := range op.Input {
			if !workerVal[in] {
				free = false
			}
		}
		if free {
			pl.worker[i] = true
			workerVal[op.Output] = true
		} else {
			pl.ordered[i] = true
			pl.nOrdered++
		}
	}
	// Split the ordered ops once more for sharded sinks: test-mode
	// scoring partitions cleanly by flow/packet (each row scored
	// independently by a per-lane model replica) as long as no later
	// streamed op consumes the trained value mid-stream; every other
	// ordered op keeps cross-chunk, cross-flow carry and stays on the
	// router.
	for i, op := range e.P.Ops {
		if !pl.ordered[i] {
			continue
		}
		eligible := op.Func == "train" && mode == ModeTest && !online
		if eligible {
			for j := i + 1; j < len(e.P.Ops) && eligible; j++ {
				if !pl.streamed[j] {
					continue
				}
				for _, in := range e.P.Ops[j].Input {
					if in == op.Output {
						eligible = false
					}
				}
			}
		}
		if eligible {
			pl.lane[i] = true
			pl.nLane++
		} else {
			pl.routerOrdered[i] = true
		}
	}
	// Deferred ops pull their streamed inputs from the accumulator.
	for i, op := range e.P.Ops {
		if pl.streamed[i] || pl.flowSink[i] {
			continue
		}
		for _, in := range op.Input {
			if in == InputName {
				pl.needPackets = true
				pl.flowOnly = false // a deferred op reads decoded packets
			} else if streamedVal[in] {
				pl.accum[in] = true
			}
		}
	}
	return pl
}

// flowSinkState is one flow_assemble op being fed incrementally: the
// assembler plus every flow completed so far (evicted mid-stream once
// idle, exactly as the batch path would have split them).
type flowSinkState struct {
	gran dataset.Granularity
	uni  *flow.UniflowAssembler
	conn *flow.ConnAssembler
	unis []*flow.Uniflow
	cons []*flow.Connection
}

// labeledSource is implemented by sources backed by a materialized
// dataset (SliceSource, GenSource); RunStream uses it to satisfy barrier
// ops without re-accumulating every chunk.
type labeledSource interface {
	Labeled() *dataset.Labeled
}

// RunStream executes the pipeline over a chunked packet source in
// bounded memory. Ops that are row-local in the given mode run once per
// chunk; barrier ops (global aggregation, fitting) are deferred to a
// flush pass over the accumulated intermediate frames, where they run
// with exact batch semantics — the result is bit-identical to run() on
// the materialized dataset, at every chunk size.
//
// With cfg.PipelineDepth or cfg.Workers set, execution is a staged
// pipeline (decode, row-local ops, ordered sink in separate goroutines
// over bounded channels; see runPipelined) and still bit-identical.
//
// Memory: peak state is the in-flight chunks (one sequentially,
// O(PipelineDepth + Workers) pipelined) plus whatever the plan must
// retain — accumulated feature frames for deferred ops, and the full
// packet set when a barrier op (or flow assembly, whose output carries
// packet labels) needs it. A fully streamed test pass holds O(chunk).
// Sources backed by a materialized dataset satisfy the full-packet case
// zero-copy; for PcapSource the packets are accumulated, making
// barrier-bound pipelines O(trace) there. When nothing outlives its
// chunk and the source recycles (PcapSource), packet buffers are pooled
// so the steady state allocates almost nothing per chunk.
//
// RunStream bypasses the shared Cache: chunk results are keyed by
// stream position and fold state, which the content-addressed cache
// cannot express.
func (e *Engine) RunStream(src dataset.Source, mode Mode, cfg StreamConfig) (*EvalResult, error) {
	r, err := newStreamExec(e, src, mode, cfg.Online)
	if err != nil {
		return nil, err
	}
	if cfg.Online {
		// Online runs mutate the model between chunks (partial fit,
		// prequential test-then-train), so model scoring must see chunks
		// one at a time in stream order: single sink, no lanes.
		cfg.Shards = 1
	}
	if cfg.Hooks.active() {
		r.hooks = cfg.Hooks
		// Sharded lanes score concurrently with the merger's absorption,
		// so a callback mutating model state between absorbs would race a
		// lane mid-score. Demote to the single ordered sink, where the
		// hook's exactly-one-model-per-chunk contract holds.
		cfg.Shards = 1
	}
	r.enableViews(src, &cfg)
	if cfg.pipelined() {
		return r.runPipelined(src, cfg)
	}
	e.LastStream = StreamStats{Workers: 1}
	rec := r.recycler(src)
	for {
		ck, ok := src.Next(cfg.ChunkRows, cfg.ChunkBytes)
		if !ok {
			break
		}
		job := r.newJob(dataset.NumberedChunk{Seq: r.nChunks, Chunk: ck})
		var chunkSpan *obs.Span
		if e.Span != nil {
			chunkSpan = e.Span.Child("chunk")
			chunkSpan.Set("base", ck.Base)
			chunkSpan.Set("rows", ck.Len())
		}
		r.feedSinks(job)
		r.runOps(job, r.pl.streamed, r.sc, chunkSpan)
		if chunkSpan != nil {
			chunkSpan.End()
		}
		err := r.absorb(job)
		if rec != nil {
			rec.Recycle(job.nc.Chunk)
		}
		// Release the chunk's backing-resource reference (mmap-backed
		// rotated captures) after recycling, mirroring Pump.Done.
		job.nc.ReleaseRef()
		putChunkJob(job)
		if err != nil {
			return nil, err
		}
	}
	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			return nil, fmt.Errorf("core: packet source: %w", err)
		}
	}
	return r.finish()
}

// TrainStream fits the pipeline by streaming the dataset in bounded
// chunks; equivalent to Train (identical fitted state) at any chunk size.
func (e *Engine) TrainStream(ds *dataset.Labeled, cfg StreamConfig) error {
	_, err := e.RunStream(dataset.NewSliceSource(ds), ModeTrain, cfg)
	return err
}

// TestStream runs the fitted pipeline over the dataset chunk-by-chunk and
// returns predictions identical to Test. On fully streamable pipelines
// the model scores each chunk as it arrives, so peak memory tracks the
// chunk size, not the trace size.
func (e *Engine) TestStream(ds *dataset.Labeled, cfg StreamConfig) (*EvalResult, error) {
	if !e.trained {
		return nil, fmt.Errorf("core: Test before Train on pipeline %q", e.P.Name)
	}
	res, err := e.RunStream(dataset.NewSliceSource(ds), ModeTest, cfg)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("core: pipeline %q produced no predictions", e.P.Name)
	}
	return res, nil
}

// mergeResults stitches per-chunk evaluation results back into one, in
// chunk order. A single part is returned untouched so whole-trace
// streaming matches batch exactly (including nil-ness of empty fields);
// empty chunks contribute empty slices and vanish in the append.
func mergeResults(parts []*EvalResult) *EvalResult {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	out := &EvalResult{Unit: parts[0].Unit}
	for _, p := range parts {
		out.Pred = append(out.Pred, p.Pred...)
		out.Truth = append(out.Truth, p.Truth...)
		out.Attacks = append(out.Attacks, p.Attacks...)
		out.Scores = append(out.Scores, p.Scores...)
		out.UnitIdx = append(out.UnitIdx, p.UnitIdx...)
	}
	return out
}

// concatFrames concatenates per-chunk frames into one batch-shaped frame.
// A single part is returned as-is (it already has batch shape). Metadata
// slices are present in the result if any part carries them; parts that
// lack them are zero-filled to keep rows aligned. Column schema must
// match across parts — streamed ops are deterministic per chunk, so a
// mismatch is a bug, not data.
func concatFrames(parts []*Frame) (*Frame, error) {
	if len(parts) == 1 {
		return parts[0], nil
	}
	n := 0
	hasIdx, hasLabels, hasAttacks := false, false, false
	for _, p := range parts {
		n += p.N
		hasIdx = hasIdx || p.UnitIdx != nil
		hasLabels = hasLabels || p.Labels != nil
		hasAttacks = hasAttacks || p.Attacks != nil
	}
	out := NewFrame(n)
	out.Unit = parts[0].Unit
	if hasIdx {
		out.UnitIdx = make([]int, 0, n)
	}
	if hasLabels {
		out.Labels = make([]int, 0, n)
	}
	if hasAttacks {
		out.Attacks = make([]string, 0, n)
	}
	for _, p := range parts {
		if hasIdx {
			out.UnitIdx = append(out.UnitIdx, padInts(p.UnitIdx, p.N)...)
		}
		if hasLabels {
			out.Labels = append(out.Labels, padInts(p.Labels, p.N)...)
		}
		if hasAttacks {
			out.Attacks = append(out.Attacks, padStrings(p.Attacks, p.N)...)
		}
	}
	first := parts[0]
	for ci := range first.Cols {
		c := &first.Cols[ci]
		if c.IsNumeric() {
			vals := make([]float64, 0, n)
			for _, p := range parts {
				pc, err := sameCol(p, ci, c.Name, true)
				if err != nil {
					return nil, err
				}
				vals = append(vals, pc.F...)
			}
			out.AddF(c.Name, vals)
		} else {
			vals := make([]string, 0, n)
			for _, p := range parts {
				pc, err := sameCol(p, ci, c.Name, false)
				if err != nil {
					return nil, err
				}
				vals = append(vals, pc.S...)
			}
			out.AddS(c.Name, vals)
		}
	}
	for _, p := range parts {
		if len(p.Cols) != len(first.Cols) {
			return nil, fmt.Errorf("core: inconsistent chunk schemas: %d vs %d columns", len(p.Cols), len(first.Cols))
		}
	}
	return out, nil
}

// sameCol fetches column ci of p, validating it matches the schema of
// the first chunk (name and numeric/categorical type).
func sameCol(p *Frame, ci int, name string, numeric bool) (*Column, error) {
	if ci >= len(p.Cols) {
		return nil, fmt.Errorf("core: inconsistent chunk schemas: missing column %q", name)
	}
	c := &p.Cols[ci]
	if c.Name != name || c.IsNumeric() != numeric {
		return nil, fmt.Errorf("core: inconsistent chunk schemas: column %d is %q, want %q", ci, c.Name, name)
	}
	return c, nil
}

func padInts(s []int, n int) []int {
	if s == nil && n > 0 {
		return make([]int, n)
	}
	return s
}

func padStrings(s []string, n int) []string {
	if s == nil && n > 0 {
		return make([]string, n)
	}
	return s
}
