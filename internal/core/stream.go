package core

import (
	"fmt"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/obs"
)

// StreamConfig bounds the chunks a RunStream pass pulls from its source.
// Zero values mean unbounded: with both bounds zero the whole trace
// arrives as one chunk and streaming degenerates to batch execution.
type StreamConfig struct {
	// ChunkRows caps the packets per chunk (0 = no row bound).
	ChunkRows int
	// ChunkBytes caps the wire bytes per chunk (0 = no byte bound).
	ChunkBytes int
}

// streamableAlways lists ops that are row-local in both modes: each output
// row depends only on its input row (plus, for the packet feature ops,
// fold state that opCtx.carry threads across chunks), so running them
// chunk-by-chunk is bit-identical to batch.
var streamableAlways = map[string]bool{
	"field_extract": true, "nprint": true, "kitsune_features": true,
	"dot11_features": true, "select": true, "filter": true,
	"concat_cols": true, "derive": true, "log_scale": true, "model": true,
}

// streamableTest lists ops that fit global state in ModeTrain (a barrier)
// but apply it row-locally in ModeTest, where they stream. balance is a
// test-mode pass-through; train predicts per row with the fitted model.
var streamableTest = map[string]bool{
	"normalize": true, "clip": true, "pca_transform": true, "onehot": true,
	"drop_const": true, "drop_correlated": true, "balance": true, "train": true,
}

// streamable reports whether fn can run per chunk in the given mode.
// Unknown ops default to barrier: correctness over memory.
func streamable(fn string, mode Mode) bool {
	if streamableAlways[fn] {
		return true
	}
	return mode == ModeTest && streamableTest[fn]
}

// streamPlan is the static split of a pipeline into its streamed prefix
// and deferred (barrier) suffix, computed before any packet is read.
type streamPlan struct {
	// streamed[i]: op i runs once per chunk.
	streamed []bool
	// flowSink[i]: op i is a flow_assemble fed packet-by-packet during the
	// chunk loop; its Flows output materializes at flush.
	flowSink []bool
	// accum holds the names of streamed frame outputs that some deferred
	// op reads: their per-chunk frames are retained and concatenated at
	// flush. Streamed values consumed only by streamed ops are never kept.
	accum map[string]bool
	// needPackets: some deferred op (or flow sink) reads the full packet
	// set at flush, so it must be available as one dataset.
	needPackets bool
}

// planStream classifies every op: an op streams iff its class allows it
// and every input is itself streamed (a value produced behind a barrier
// only exists at flush).
func (e *Engine) planStream(mode Mode) *streamPlan {
	pl := &streamPlan{
		streamed: make([]bool, len(e.P.Ops)),
		flowSink: make([]bool, len(e.P.Ops)),
		accum:    map[string]bool{},
	}
	streamedVal := map[string]bool{InputName: true}
	for i, op := range e.P.Ops {
		allStreamed := true
		for _, in := range op.Input {
			if !streamedVal[in] {
				allStreamed = false
			}
		}
		if op.Func == "flow_assemble" && allStreamed {
			pl.flowSink[i] = true
			pl.needPackets = true // Flows retain the full dataset for labels
			continue
		}
		if allStreamed && streamable(op.Func, mode) {
			pl.streamed[i] = true
			streamedVal[op.Output] = true
		}
	}
	// Deferred ops pull their streamed inputs from the accumulator.
	for i, op := range e.P.Ops {
		if pl.streamed[i] || pl.flowSink[i] {
			continue
		}
		for _, in := range op.Input {
			if in == InputName {
				pl.needPackets = true
			} else if streamedVal[in] {
				pl.accum[in] = true
			}
		}
	}
	return pl
}

// flowSinkState is one flow_assemble op being fed incrementally: the
// assembler plus every flow completed so far (evicted mid-stream once
// idle, exactly as the batch path would have split them).
type flowSinkState struct {
	gran dataset.Granularity
	uni  *flow.UniflowAssembler
	conn *flow.ConnAssembler
	unis []*flow.Uniflow
	cons []*flow.Connection
}

// labeledSource is implemented by sources backed by a materialized
// dataset (SliceSource, GenSource); RunStream uses it to satisfy barrier
// ops without re-accumulating every chunk.
type labeledSource interface {
	Labeled() *dataset.Labeled
}

// RunStream executes the pipeline over a chunked packet source in
// bounded memory. Ops that are row-local in the given mode run once per
// chunk; barrier ops (global aggregation, fitting) are deferred to a
// flush pass over the accumulated intermediate frames, where they run
// with exact batch semantics — the result is bit-identical to run() on
// the materialized dataset, at every chunk size.
//
// Memory: peak state is one chunk plus whatever the plan must retain —
// accumulated feature frames for deferred ops, and the full packet set
// when a barrier op (or flow assembly, whose output carries packet
// labels) needs it. A fully streamed test pass holds O(chunk). Sources
// backed by a materialized dataset satisfy the full-packet case
// zero-copy; for PcapSource the packets are accumulated, making
// barrier-bound pipelines O(trace) there.
//
// RunStream bypasses the shared Cache: chunk results are keyed by
// stream position and fold state, which the content-addressed cache
// cannot express.
func (e *Engine) RunStream(src dataset.Source, mode Mode, cfg StreamConfig) (*EvalResult, error) {
	if err := e.Check(); err != nil {
		return nil, err
	}
	pl := e.planStream(mode)
	meta := src.Meta()
	sc := &streamCtx{carry: map[string]any{}}

	sinks := map[int]*flowSinkState{}
	for i, op := range e.P.Ops {
		if !pl.flowSink[i] {
			continue
		}
		opts, gran, err := flowParams(params(op.Params))
		if err != nil {
			return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		}
		s := &flowSinkState{gran: gran}
		if gran == dataset.UniflowG {
			s.uni = flow.NewUniflowAssembler(opts)
		} else {
			s.conn = flow.NewConnAssembler(opts)
		}
		sinks[i] = s
	}

	prof := make([]OpStats, len(e.P.Ops))
	for i, op := range e.P.Ops {
		prof[i] = OpStats{Func: op.Func, Output: op.Output}
	}

	accum := map[string][]*Frame{}
	lastVal := map[string]Value{}
	var results []*EvalResult
	var hwm uint64

	// full-packet accumulation, only when the plan needs it and the
	// source cannot hand over a materialized dataset.
	var accDS *dataset.Labeled
	lsrc, hasLabeled := src.(labeledSource)
	if pl.needPackets && !hasLabeled {
		accDS = &dataset.Labeled{
			Name:        meta.Name,
			Granularity: meta.Granularity,
			Link:        meta.Link,
			Devices:     meta.Devices,
		}
	}

	var nChunks int
	for {
		ck, ok := src.Next(cfg.ChunkRows, cfg.ChunkBytes)
		if !ok {
			break
		}
		nChunks++
		var chunkSpan *obs.Span
		if e.Span != nil {
			chunkSpan = e.Span.Child("chunk")
			chunkSpan.Set("base", ck.Base)
			chunkSpan.Set("rows", len(ck.Packets))
		}
		cds := &dataset.Labeled{
			Name:        meta.Name,
			Granularity: meta.Granularity,
			Link:        meta.Link,
			Devices:     meta.Devices,
			Packets:     ck.Packets,
			Labels:      ck.Labels,
			Attacks:     ck.Attacks,
		}
		if accDS != nil {
			accDS.Packets = append(accDS.Packets, ck.Packets...)
			if ck.Labels != nil {
				accDS.Labels = append(accDS.Labels, ck.Labels...)
			}
			if ck.Attacks != nil {
				accDS.Attacks = append(accDS.Attacks, ck.Attacks...)
			}
		}
		sc.base = ck.Base
		env := map[string]Value{InputName: Packets{DS: cds}}
		for i, op := range e.P.Ops {
			if s, ok := sinks[i]; ok {
				for j, p := range ck.Packets {
					if s.uni != nil {
						s.unis = append(s.unis, s.uni.Add(ck.Base+j, p)...)
					} else {
						s.cons = append(s.cons, s.conn.Add(ck.Base+j, p)...)
					}
				}
				continue
			}
			if !pl.streamed[i] {
				continue
			}
			in := make([]Value, len(op.Input))
			for j, name := range op.Input {
				v, ok := env[name]
				if !ok {
					return nil, fmt.Errorf("core: op %d (%s): value %q was freed or never set", i, op.Func, name)
				}
				in[j] = v
			}
			ctx := &opCtx{mode: mode, outName: op.Output, state: e.state, seed: e.Seed, metrics: e.Metrics, stream: sc}
			if chunkSpan != nil {
				ctx.span = chunkSpan.Child("op:" + op.Func)
				ctx.span.Set("output", op.Output)
			}
			st := OpStats{Func: op.Func, Output: op.Output}
			start := time.Now()
			out, err := e.runOp(opRegistry[op.Func], ctx, op, in, &st)
			st.Wall = time.Since(start)
			if err == nil {
				st.OutRows = outRows(out)
			}
			e.finishOp(ctx.span, &st, err)
			if err != nil {
				return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
			}
			prof[i].Wall += st.Wall
			prof[i].Allocs += st.Allocs
			prof[i].OutRows += st.OutRows
			env[op.Output] = out
			if ctx.result != nil {
				results = append(results, ctx.result)
			}
			if pl.accum[op.Output] {
				if fr, ok := out.(*Frame); ok {
					accum[op.Output] = append(accum[op.Output], fr)
				} else {
					lastVal[op.Output] = out
				}
			}
		}
		if live := heapLiveBytes(); live > hwm {
			hwm = live
		}
		if chunkSpan != nil {
			chunkSpan.End()
		}
		if e.Metrics != nil {
			e.Metrics.Counter("lumen_chunks_total",
				"Chunks pulled from packet sources by streaming runs.").Inc()
		}
	}
	if e.Metrics != nil {
		e.Metrics.Gauge("lumen_stream_hwm_bytes",
			"Live-heap high-water mark observed at chunk boundaries of the most recent streaming run.").Set(float64(hwm))
	}
	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			return nil, fmt.Errorf("core: packet source: %w", err)
		}
	}

	var fullDS *dataset.Labeled
	if pl.needPackets {
		if hasLabeled {
			fullDS = lsrc.Labeled()
		} else {
			fullDS = accDS
		}
	}

	// Flush: run deferred ops in op order with batch semantics over the
	// concatenated accumulations.
	fenv := map[string]Value{}
	concatenated := map[string]*Frame{}
	resolve := func(name string) (Value, error) {
		if v, ok := fenv[name]; ok {
			return v, nil
		}
		if fr, ok := concatenated[name]; ok {
			return fr, nil
		}
		if parts, ok := accum[name]; ok {
			fr, err := concatFrames(parts)
			if err != nil {
				return nil, err
			}
			concatenated[name] = fr
			return fr, nil
		}
		if v, ok := lastVal[name]; ok {
			return v, nil
		}
		if name == InputName {
			return Packets{DS: fullDS}, nil
		}
		return nil, fmt.Errorf("value %q was freed or never set", name)
	}
	for i, op := range e.P.Ops {
		if pl.streamed[i] {
			continue
		}
		st := OpStats{Func: op.Func, Output: op.Output}
		start := time.Now()
		if s, ok := sinks[i]; ok {
			out := &Flows{DS: fullDS, Granularity: s.gran}
			if s.uni != nil {
				out.Unis = append(s.unis, s.uni.Flush()...)
				flow.SortUniflows(out.Unis)
			} else {
				out.Conns = append(s.cons, s.conn.Flush()...)
				flow.SortConnections(out.Conns)
			}
			fenv[op.Output] = out
			prof[i].Wall += time.Since(start)
			continue
		}
		in := make([]Value, len(op.Input))
		for j, name := range op.Input {
			v, err := resolve(name)
			if err != nil {
				return nil, fmt.Errorf("core: op %d (%s): %w", i, op.Func, err)
			}
			in[j] = v
		}
		ctx := &opCtx{mode: mode, outName: op.Output, state: e.state, seed: e.Seed, metrics: e.Metrics}
		if e.Span != nil {
			ctx.span = e.Span.Child("op:" + op.Func)
			ctx.span.Set("output", op.Output)
		}
		out, err := e.runOp(opRegistry[op.Func], ctx, op, in, &st)
		st.Wall = time.Since(start)
		if err == nil {
			st.OutRows = outRows(out)
		}
		e.finishOp(ctx.span, &st, err)
		if err != nil {
			return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		}
		fenv[op.Output] = out
		prof[i].Wall, prof[i].Allocs, prof[i].OutRows = st.Wall, st.Allocs, st.OutRows
		if ctx.result != nil {
			results = append(results, ctx.result)
		}
	}
	e.Profile = append(e.Profile[:0], prof...)
	if mode == ModeTrain {
		e.trained = true
	}
	return mergeResults(results), nil
}

// TrainStream fits the pipeline by streaming the dataset in bounded
// chunks; equivalent to Train (identical fitted state) at any chunk size.
func (e *Engine) TrainStream(ds *dataset.Labeled, cfg StreamConfig) error {
	_, err := e.RunStream(dataset.NewSliceSource(ds), ModeTrain, cfg)
	return err
}

// TestStream runs the fitted pipeline over the dataset chunk-by-chunk and
// returns predictions identical to Test. On fully streamable pipelines
// the model scores each chunk as it arrives, so peak memory tracks the
// chunk size, not the trace size.
func (e *Engine) TestStream(ds *dataset.Labeled, cfg StreamConfig) (*EvalResult, error) {
	if !e.trained {
		return nil, fmt.Errorf("core: Test before Train on pipeline %q", e.P.Name)
	}
	res, err := e.RunStream(dataset.NewSliceSource(ds), ModeTest, cfg)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("core: pipeline %q produced no predictions", e.P.Name)
	}
	return res, nil
}

// mergeResults stitches per-chunk evaluation results back into one, in
// chunk order. A single part is returned untouched so whole-trace
// streaming matches batch exactly (including nil-ness of empty fields);
// empty chunks contribute empty slices and vanish in the append.
func mergeResults(parts []*EvalResult) *EvalResult {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	out := &EvalResult{Unit: parts[0].Unit}
	for _, p := range parts {
		out.Pred = append(out.Pred, p.Pred...)
		out.Truth = append(out.Truth, p.Truth...)
		out.Attacks = append(out.Attacks, p.Attacks...)
		out.Scores = append(out.Scores, p.Scores...)
		out.UnitIdx = append(out.UnitIdx, p.UnitIdx...)
	}
	return out
}

// concatFrames concatenates per-chunk frames into one batch-shaped frame.
// A single part is returned as-is (it already has batch shape). Metadata
// slices are present in the result if any part carries them; parts that
// lack them are zero-filled to keep rows aligned. Column schema must
// match across parts — streamed ops are deterministic per chunk, so a
// mismatch is a bug, not data.
func concatFrames(parts []*Frame) (*Frame, error) {
	if len(parts) == 1 {
		return parts[0], nil
	}
	n := 0
	hasIdx, hasLabels, hasAttacks := false, false, false
	for _, p := range parts {
		n += p.N
		hasIdx = hasIdx || p.UnitIdx != nil
		hasLabels = hasLabels || p.Labels != nil
		hasAttacks = hasAttacks || p.Attacks != nil
	}
	out := NewFrame(n)
	out.Unit = parts[0].Unit
	if hasIdx {
		out.UnitIdx = make([]int, 0, n)
	}
	if hasLabels {
		out.Labels = make([]int, 0, n)
	}
	if hasAttacks {
		out.Attacks = make([]string, 0, n)
	}
	for _, p := range parts {
		if hasIdx {
			out.UnitIdx = append(out.UnitIdx, padInts(p.UnitIdx, p.N)...)
		}
		if hasLabels {
			out.Labels = append(out.Labels, padInts(p.Labels, p.N)...)
		}
		if hasAttacks {
			out.Attacks = append(out.Attacks, padStrings(p.Attacks, p.N)...)
		}
	}
	first := parts[0]
	for ci := range first.Cols {
		c := &first.Cols[ci]
		if c.IsNumeric() {
			vals := make([]float64, 0, n)
			for _, p := range parts {
				pc, err := sameCol(p, ci, c.Name, true)
				if err != nil {
					return nil, err
				}
				vals = append(vals, pc.F...)
			}
			out.AddF(c.Name, vals)
		} else {
			vals := make([]string, 0, n)
			for _, p := range parts {
				pc, err := sameCol(p, ci, c.Name, false)
				if err != nil {
					return nil, err
				}
				vals = append(vals, pc.S...)
			}
			out.AddS(c.Name, vals)
		}
	}
	for _, p := range parts {
		if len(p.Cols) != len(first.Cols) {
			return nil, fmt.Errorf("core: inconsistent chunk schemas: %d vs %d columns", len(p.Cols), len(first.Cols))
		}
	}
	return out, nil
}

// sameCol fetches column ci of p, validating it matches the schema of
// the first chunk (name and numeric/categorical type).
func sameCol(p *Frame, ci int, name string, numeric bool) (*Column, error) {
	if ci >= len(p.Cols) {
		return nil, fmt.Errorf("core: inconsistent chunk schemas: missing column %q", name)
	}
	c := &p.Cols[ci]
	if c.Name != name || c.IsNumeric() != numeric {
		return nil, fmt.Errorf("core: inconsistent chunk schemas: column %d is %q, want %q", ci, c.Name, name)
	}
	return c, nil
}

func padInts(s []int, n int) []int {
	if s == nil && n > 0 {
		return make([]int, n)
	}
	return s
}

func padStrings(s []string, n int) []string {
	if s == nil && n > 0 {
		return make([]string, n)
	}
	return s
}
