package core

import (
	"math"
	"testing"
)

func trainCtx() *opCtx { return &opCtx{mode: ModeTrain, outName: "o", state: map[string]any{}} }

func testCtxFrom(tc *opCtx) *opCtx {
	return &opCtx{mode: ModeTest, outName: tc.outName, state: tc.state}
}

func TestOneHotVocabularyFixedAtTrain(t *testing.T) {
	tr := NewFrame(4)
	tr.AddS("svc", []string{"http", "dns", "http", "mqtt"})
	tr.AddF("x", []float64{1, 2, 3, 4})
	ctx := trainCtx()
	out, err := opOneHot(ctx, []Value{tr}, params{"col": "svc"})
	if err != nil {
		t.Fatal(err)
	}
	of := out.(*Frame)
	if of.Col("svc=http") == nil || of.Col("svc=dns") == nil || of.Col("svc=mqtt") == nil {
		t.Fatalf("indicator columns missing: %v", of.Names())
	}
	if of.Col("svc") != nil {
		t.Error("original string column should be replaced")
	}
	if of.Col("svc=http").F[0] != 1 || of.Col("svc=http").F[1] != 0 {
		t.Error("indicator values wrong")
	}
	// Test-time: unseen category maps to all-zeros, vocabulary unchanged.
	te := NewFrame(1)
	te.AddS("svc", []string{"telnet"})
	te.AddF("x", []float64{9})
	out2, err := opOneHot(testCtxFrom(ctx), []Value{te}, params{"col": "svc"})
	if err != nil {
		t.Fatal(err)
	}
	tf := out2.(*Frame)
	for _, name := range []string{"svc=http", "svc=dns", "svc=mqtt"} {
		if tf.Col(name).F[0] != 0 {
			t.Errorf("unseen category set %s", name)
		}
	}
}

func TestOneHotMaxCategories(t *testing.T) {
	tr := NewFrame(5)
	tr.AddS("k", []string{"a", "a", "b", "c", "d"})
	ctx := trainCtx()
	out, err := opOneHot(ctx, []Value{tr}, params{"col": "k", "max_categories": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	of := out.(*Frame)
	if len(of.Cols) != 2 { // top-2 by frequency: a plus one of b/c/d
		t.Fatalf("got %d indicator columns, want 2: %v", len(of.Cols), of.Names())
	}
	if of.Col("k=a") == nil {
		t.Error("most frequent category must survive the cap")
	}
}

func TestDeriveRatioAndLog(t *testing.T) {
	f := NewFrame(3)
	f.AddF("a", []float64{10, 20, 5})
	f.AddF("b", []float64{2, 0, 5})
	out, err := opDerive(nil, []Value{f}, params{"fn": "ratio", "a": "a", "b": "b"})
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Frame).Col("ratio_a_b").F
	if r[0] != 5 || r[1] != 20 /* div-by-zero falls back to a */ || r[2] != 1 {
		t.Errorf("ratio = %v", r)
	}
	out2, err := opDerive(nil, []Value{f}, params{"fn": "log1p", "a": "a", "out": "la"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2.(*Frame).Col("la").F[0]; math.Abs(got-math.Log1p(10)) > 1e-12 {
		t.Errorf("log1p = %v", got)
	}
	if _, err := opDerive(nil, []Value{f}, params{"fn": "nope", "a": "a"}); err == nil {
		t.Error("unknown fn should error")
	}
}

func TestClipWinsorizes(t *testing.T) {
	tr := NewFrame(101)
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i) // 0..100
	}
	tr.AddF("v", vals)
	ctx := trainCtx()
	out, err := opClip(ctx, []Value{tr}, params{"quantile": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	c := out.(*Frame).Col("v").F
	if c[100] > 91 || c[0] < 9 {
		t.Errorf("clip bounds not applied: min=%v max=%v", c[0], c[100])
	}
	// Test frame clips with the SAME bounds.
	te := NewFrame(1)
	te.AddF("v", []float64{1e9})
	out2, err := opClip(testCtxFrom(ctx), []Value{te}, params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2.(*Frame).Col("v").F[0]; got > 91 {
		t.Errorf("test clip = %v, want <= train hi", got)
	}
}

func TestLogScaleSignPreserved(t *testing.T) {
	f := NewFrame(2)
	f.AddF("v", []float64{-10, 10})
	out, err := opLogScale(nil, []Value{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := out.(*Frame).Col("v").F
	if c[0] >= 0 || c[1] <= 0 || math.Abs(c[0]) != c[1] {
		t.Errorf("log scale = %v, want symmetric signs", c)
	}
}

func TestBalanceDownsamplesMajorityOnlyInTraining(t *testing.T) {
	f := NewFrame(100)
	vals := make([]float64, 100)
	f.AddF("v", vals)
	f.Labels = make([]int, 100)
	for i := 0; i < 10; i++ {
		f.Labels[i] = 1
	}
	ctx := trainCtx()
	ctx.seed = 3
	out, err := opBalance(ctx, []Value{f}, params{})
	if err != nil {
		t.Fatal(err)
	}
	bf := out.(*Frame)
	if bf.N != 20 {
		t.Fatalf("balanced N = %d, want 20 (10 pos + 10 neg)", bf.N)
	}
	pos := 0
	for _, y := range bf.Labels {
		pos += y
	}
	if pos != 10 {
		t.Errorf("positives = %d, want all 10 kept", pos)
	}
	// Test mode must pass the frame through untouched.
	out2, err := opBalance(testCtxFrom(ctx), []Value{f}, params{})
	if err != nil {
		t.Fatal(err)
	}
	if out2.(*Frame).N != 100 {
		t.Error("balance must not drop test rows")
	}
}

func TestPCATransformOp(t *testing.T) {
	tr := NewFrame(50)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = float64(i)
		b[i] = 2 * float64(i)
	}
	tr.AddF("a", a)
	tr.AddF("b", b)
	ctx := trainCtx()
	out, err := opPCATransform(ctx, []Value{tr}, params{"k": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	pf := out.(*Frame)
	if pf.Col("pc0") == nil || len(pf.Cols) != 1 {
		t.Fatalf("pca output cols = %v, want [pc0]", pf.Names())
	}
	// Test-time reuse.
	te := NewFrame(2)
	te.AddF("a", []float64{0, 10})
	te.AddF("b", []float64{0, 20})
	out2, err := opPCATransform(testCtxFrom(ctx), []Value{te}, params{})
	if err != nil {
		t.Fatal(err)
	}
	if out2.(*Frame).N != 2 {
		t.Error("pca test transform wrong size")
	}
}

func TestHeadOp(t *testing.T) {
	f := NewFrame(5)
	f.AddF("v", []float64{1, 2, 3, 4, 5})
	out, err := opHead(nil, []Value{f}, params{"n": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	hf := out.(*Frame)
	if hf.N != 2 || hf.Col("v").F[1] != 2 {
		t.Fatalf("head = %+v", hf.Col("v").F)
	}
	out2, _ := opHead(nil, []Value{f}, params{"n": 50.0})
	if out2.(*Frame).N != 5 {
		t.Error("oversized head should return input unchanged")
	}
}

func TestOpCountMatchesPaperScale(t *testing.T) {
	// The paper identifies "around 30 unique operations"; the registry
	// should be in that neighbourhood.
	if n := len(Ops()); n < 25 {
		t.Errorf("only %d ops registered; the framework should offer ~30", n)
	}
}
