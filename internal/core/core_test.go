package core

import (
	"strings"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

func smallDS(t *testing.T, id string) *dataset.Labeled {
	t.Helper()
	spec, ok := dataset.Get(id)
	if !ok {
		t.Fatalf("no dataset %s", id)
	}
	return spec.Generate(0.15)
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame(3)
	f.AddF("a", []float64{1, 2, 3})
	f.AddS("s", []string{"x", "y", "x"})
	if c := f.Col("a"); c == nil || !c.IsNumeric() {
		t.Fatal("column a missing or not numeric")
	}
	if c := f.Col("nope"); c != nil {
		t.Fatal("unknown column should be nil")
	}
	m := f.Matrix()
	if len(m) != 3 || len(m[0]) != 1 || m[2][0] != 3 {
		t.Fatalf("matrix = %v", m)
	}
	sel, err := f.Select([]string{"s"})
	if err != nil || len(sel.Cols) != 1 {
		t.Fatalf("select: %v / %d cols", err, len(sel.Cols))
	}
	if _, err := f.Select([]string{"missing"}); err == nil {
		t.Fatal("select of missing column should error")
	}
}

func TestFrameAddFPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	f := NewFrame(2)
	f.AddF("a", []float64{1})
}

func TestFrameFilterAndTakeRows(t *testing.T) {
	f := NewFrame(4)
	f.AddF("v", []float64{10, 20, 30, 40})
	f.Labels = []int{0, 1, 0, 1}
	f.Attacks = []string{"", "x", "", "y"}
	f.UnitIdx = []int{0, 1, 2, 3}
	out := f.FilterRows([]bool{false, true, false, true})
	if out.N != 2 || out.Col("v").F[0] != 20 || out.Labels[1] != 1 || out.Attacks[1] != "y" {
		t.Fatalf("filter result wrong: %+v", out)
	}
}

func TestOpsRegistryCoverage(t *testing.T) {
	ops := Ops()
	if len(ops) < 15 {
		t.Fatalf("only %d ops registered; the framework should offer a rich op set", len(ops))
	}
	for _, name := range ops {
		if OpDoc(name) == "" {
			t.Errorf("op %q has no doc", name)
		}
	}
}

func TestFieldExtractValues(t *testing.T) {
	ds := smallDS(t, "F1")
	fr, err := opFieldExtract(nil, []Value{Packets{DS: ds}}, params{
		"fields": []any{"ts", "len", "src_ip", "dst_port", "tcp_syn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := fr.(*Frame)
	if f.N != len(ds.Packets) {
		t.Fatalf("rows %d != packets %d", f.N, len(ds.Packets))
	}
	if f.Col("src_ip") == nil || f.Col("src_ip").IsNumeric() {
		t.Fatal("src_ip should be a string column")
	}
	// ts must be non-decreasing, len positive.
	tsCol, lenCol := f.Col("ts").F, f.Col("len").F
	for i := range tsCol {
		if i > 0 && tsCol[i] < tsCol[i-1] {
			t.Fatalf("ts not sorted at %d", i)
		}
		if lenCol[i] <= 0 {
			t.Fatalf("len[%d] = %v", i, lenCol[i])
		}
	}
	if f.Labels == nil || len(f.Labels) != f.N {
		t.Fatal("labels not propagated to frame")
	}
}

func TestFieldExtractUnknownField(t *testing.T) {
	ds := smallDS(t, "F1")
	_, err := opFieldExtract(nil, []Value{Packets{DS: ds}}, params{"fields": []any{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestGroupByAndAggregates(t *testing.T) {
	f := NewFrame(6)
	f.AddS("key", []string{"a", "a", "b", "b", "b", "a"})
	f.AddF("ts", []float64{0, 1, 2, 3, 4, 5})
	f.AddF("v", []float64{1, 3, 10, 10, 40, 2})
	f.Labels = []int{0, 0, 1, 1, 1, 0}
	f.Attacks = []string{"", "", "syn", "syn", "syn", ""}
	g, err := groupRows(f, []string{"key"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Groups))
	}
	out, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{
			map[string]any{"col": "v", "fn": "mean"},
			map[string]any{"col": "v", "fn": "max"},
			map[string]any{"col": "v", "fn": "count"},
			map[string]any{"col": "v", "fn": "distinct"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	af := out.(*Frame)
	if af.N != 2 {
		t.Fatalf("agg rows = %d, want 2", af.N)
	}
	// Group a = rows {0,1,5}: mean 2, max 3, count 3, distinct 3.
	if got := af.Col("v_mean").F[0]; got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := af.Col("v_max").F[0]; got != 3 {
		t.Errorf("max = %v, want 3", got)
	}
	if got := af.Col("v_count").F[0]; got != 3 {
		t.Errorf("count = %v, want 3", got)
	}
	// Group b = rows {2,3,4}: label 1 (majority), attack syn.
	if af.Labels[1] != 1 || af.Attacks[1] != "syn" {
		t.Errorf("group label/attack = %d/%q, want 1/syn", af.Labels[1], af.Attacks[1])
	}
}

func TestTimeSliceSplitsGroups(t *testing.T) {
	f := NewFrame(4)
	f.AddS("key", []string{"a", "a", "a", "a"})
	f.AddF("ts", []float64{0, 1, 11, 12})
	g, _ := groupRows(f, []string{"key"})
	out, err := opTimeSlice(nil, []Value{g}, params{"window": 10.0})
	if err != nil {
		t.Fatal(err)
	}
	g2 := out.(*Grouped)
	if len(g2.Groups) != 2 {
		t.Fatalf("time slices = %d, want 2", len(g2.Groups))
	}
	if len(g2.Groups[0]) != 2 || len(g2.Groups[1]) != 2 {
		t.Fatalf("slice sizes = %d/%d, want 2/2", len(g2.Groups[0]), len(g2.Groups[1]))
	}
}

func TestBroadcastAggregatesKeepsRowUnit(t *testing.T) {
	f := NewFrame(4)
	f.Unit = UnitPacket
	f.UnitIdx = []int{0, 1, 2, 3}
	f.AddS("key", []string{"a", "b", "a", "b"})
	f.AddF("ts", []float64{0, 1, 2, 3})
	f.AddF("v", []float64{2, 10, 4, 20})
	g, _ := groupRows(f, []string{"key"})
	out, err := opBroadcastAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v", "fn": "mean"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bf := out.(*Frame)
	if bf.N != 4 || bf.Unit != UnitPacket {
		t.Fatalf("broadcast changed row unit: N=%d unit=%v", bf.N, bf.Unit)
	}
	col := bf.Col("grp_v_mean").F
	want := []float64{3, 15, 3, 15}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("row %d group mean = %v, want %v", i, col[i], want[i])
		}
	}
}

func TestNormalizeStatefulAcrossModes(t *testing.T) {
	train := NewFrame(3)
	train.AddF("v", []float64{0, 5, 10})
	test := NewFrame(2)
	test.AddF("v", []float64{5, 20})

	ctx := &opCtx{mode: ModeTrain, outName: "n", state: map[string]any{}}
	if _, err := opNormalize(ctx, []Value{train}, params{"kind": "minmax"}); err != nil {
		t.Fatal(err)
	}
	ctx2 := &opCtx{mode: ModeTest, outName: "n", state: ctx.state}
	out, err := opNormalize(ctx2, []Value{test}, params{"kind": "minmax"})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Frame).Col("v").F
	if got[0] != 0.5 || got[1] != 1 { // 20 clamps to 1 using train range
		t.Fatalf("normalized = %v, want [0.5 1]", got)
	}
}

func TestNormalizeTestBeforeTrainErrors(t *testing.T) {
	f := NewFrame(1)
	f.AddF("v", []float64{1})
	ctx := &opCtx{mode: ModeTest, outName: "n", state: map[string]any{}}
	if _, err := opNormalize(ctx, []Value{f}, params{}); err == nil {
		t.Fatal("want not-fitted error")
	}
}

const fig4Template = `{
  "name": "fig4-example",
  "granularity": "packet",
  "ops": [
    {"func": "field_extract", "input": ["$packets"], "output": "Packets",
     "params": {"fields": ["ts", "src_ip", "dst_ip", "tcp_flags", "len", "dst_port", "proto", "iat"]}},
    {"func": "group_by", "input": ["Packets"], "output": "Grouped_packets",
     "params": {"flowid": ["src_ip"]}},
    {"func": "time_slice", "input": ["Grouped_packets"], "output": "Sliced_packets",
     "params": {"window": 10}},
    {"func": "broadcast_aggregates", "input": ["Sliced_packets"], "output": "Features",
     "params": {"list": [
        {"col": "len", "fn": "mean"},
        {"col": "len", "fn": "bandwidth"},
        {"col": "iat", "fn": "mean"},
        {"col": "dst_ip", "fn": "distinct"}
     ]}},
    {"func": "select", "input": ["Features"], "output": "X",
     "params": {"cols": ["len", "tcp_flags", "dst_port", "proto", "grp_len_mean", "grp_len_bandwidth", "grp_iat_mean", "grp_dst_ip_distinct"]}},
    {"func": "model", "input": [], "output": "clf1",
     "params": {"model_type": "random_forest", "n_trees": 15}},
    {"func": "train", "input": ["clf1", "X"], "output": "trained"}
  ]
}`

func TestFig4TemplateEndToEnd(t *testing.T) {
	p, err := ParsePipeline([]byte(fig4Template))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p)
	eng.Seed = 1
	ds := smallDS(t, "P0")
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(ds.Packets) {
		t.Fatalf("predictions %d, packets %d", len(res.Pred), len(ds.Packets))
	}
	prec := mlkit.Precision(res.Truth, res.Pred)
	rec := mlkit.Recall(res.Truth, res.Pred)
	if prec < 0.8 || rec < 0.5 {
		t.Errorf("train-on-test precision %.3f recall %.3f too low for a loud-attack dataset", prec, rec)
	}
	// The engine must have profiled every op.
	if len(eng.Profile) != len(p.Ops) {
		t.Errorf("profile has %d entries, want %d", len(eng.Profile), len(p.Ops))
	}
	for _, st := range eng.Profile {
		if st.Func == "" || st.Wall < 0 {
			t.Errorf("bad profile entry %+v", st)
		}
	}
}

func TestConnectionPipelineEndToEnd(t *testing.T) {
	p := &Pipeline{
		Name:        "conn-rf",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "flows", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"flows"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "random_forest", "n_trees": 15}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
	eng := NewEngine(p)
	eng.Seed = 3
	ds := smallDS(t, "F1")
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unit != UnitFlow {
		t.Fatalf("unit = %v, want flow", res.Unit)
	}
	if prec := mlkit.Precision(res.Truth, res.Pred); prec < 0.8 {
		t.Errorf("same-data precision %.3f too low", prec)
	}
	// Attack attribution must be present for malicious units.
	sawAttack := false
	for i := range res.Truth {
		if res.Truth[i] == 1 && res.Attacks[i] != "" {
			sawAttack = true
		}
	}
	if !sawAttack {
		t.Error("no attack attribution on malicious flows")
	}
}

func TestCheckRejectsBadPipelines(t *testing.T) {
	cases := []struct {
		name string
		p    *Pipeline
		want string
	}{
		{
			"unknown-op",
			&Pipeline{Granularity: "packet", Ops: []OpSpec{{Func: "nope", Output: "x"}}},
			"unknown func",
		},
		{
			"undefined-input",
			&Pipeline{Granularity: "packet", Ops: []OpSpec{
				{Func: "field_extract", Input: []string{"ghost"}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
			}},
			"not defined",
		},
		{
			"kind-mismatch",
			&Pipeline{Granularity: "packet", Ops: []OpSpec{
				{Func: "field_extract", Input: []string{InputName}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
				{Func: "flow_features", Input: []string{"f"}, Output: "g"},
			}},
			"want flows",
		},
		{
			"no-train",
			&Pipeline{Granularity: "packet", Ops: []OpSpec{
				{Func: "field_extract", Input: []string{InputName}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
			}},
			"no train op",
		},
		{
			"bad-granularity",
			&Pipeline{Granularity: "frobs", Ops: []OpSpec{
				{Func: "field_extract", Input: []string{InputName}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
			}},
			"granularity",
		},
		{
			"duplicate-output",
			&Pipeline{Granularity: "packet", Ops: []OpSpec{
				{Func: "field_extract", Input: []string{InputName}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
				{Func: "field_extract", Input: []string{InputName}, Output: "f", Params: map[string]any{"fields": []any{"len"}}},
			}},
			"already defined",
		},
	}
	for _, c := range cases {
		err := NewEngine(c.p).Check()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestParsePipelineRejectsUnknownFields(t *testing.T) {
	_, err := ParsePipeline([]byte(`{"name":"x","granularity":"packet","surprise":1,"ops":[]}`))
	if err == nil {
		t.Fatal("want error on unknown top-level field")
	}
}

func TestTestBeforeTrainFails(t *testing.T) {
	p, _ := ParsePipeline([]byte(fig4Template))
	eng := NewEngine(p)
	if _, err := eng.Test(smallDS(t, "P0")); err == nil {
		t.Fatal("want error on Test before Train")
	}
}

func TestDeadValueElimination(t *testing.T) {
	p, _ := ParsePipeline([]byte(fig4Template))
	eng := NewEngine(p)
	last := eng.lastUses()
	// "Packets" is last read by the group_by op (index 1): after op 1 it
	// must be freed.
	if last["Packets"] != 1 {
		t.Errorf("lastUse(Packets) = %d, want 1", last["Packets"])
	}
	// The train op (index 6) reads clf1 and X.
	if last["X"] != 6 || last["clf1"] != 6 {
		t.Errorf("lastUse(X)=%d lastUse(clf1)=%d, want 6/6", last["X"], last["clf1"])
	}
}

func TestKitsuneFeaturesShape(t *testing.T) {
	ds := smallDS(t, "P1")
	out, err := opKitsuneFeatures(nil, []Value{Packets{DS: ds}}, params{})
	if err != nil {
		t.Fatal(err)
	}
	f := out.(*Frame)
	if f.N != len(ds.Packets) {
		t.Fatalf("rows %d != packets %d", f.N, len(ds.Packets))
	}
	if len(f.Cols) != 39 { // 3 lambdas x 13 stats
		t.Fatalf("kitsune features = %d cols, want 39", len(f.Cols))
	}
}

func TestKitsuneFeaturesWorkOn80211(t *testing.T) {
	ds := smallDS(t, "P2")
	out, err := opKitsuneFeatures(nil, []Value{Packets{DS: ds}}, params{})
	if err != nil {
		t.Fatal(err)
	}
	f := out.(*Frame)
	// Rates (weights) must be nonzero for most rows even without IPs.
	nz := 0
	col := f.Col("k_1_srcw").F
	for _, v := range col {
		if v > 0 {
			nz++
		}
	}
	if nz < f.N/2 {
		t.Errorf("only %d/%d rows have src weight > 0 on 802.11", nz, f.N)
	}
}

func TestNPrintOpVariants(t *testing.T) {
	ds := smallDS(t, "P0")
	for _, v := range []string{"all", "tcp_udp_ipv4", "tcp_udp_ipv4_payload", "tcp_icmp_ipv4"} {
		out, err := opNPrint(nil, []Value{Packets{DS: ds}}, params{"variant": v})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if out.(*Frame).N != len(ds.Packets) {
			t.Fatalf("%s: row mismatch", v)
		}
	}
	if _, err := opNPrint(nil, []Value{Packets{DS: ds}}, params{"variant": "bogus"}); err == nil {
		t.Fatal("want error for unknown variant")
	}
}

func TestModelOpValidatesEagerly(t *testing.T) {
	if _, err := opModel(nil, nil, params{"model_type": "not_a_model"}); err == nil {
		t.Fatal("want error for unknown model type")
	}
	for _, mt := range ModelTypes() {
		if _, err := opModel(nil, nil, params{"model_type": mt}); err != nil {
			t.Errorf("model %s: %v", mt, err)
		}
	}
}

func TestSampleDeterministicAndSorted(t *testing.T) {
	f := NewFrame(100)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	f.AddF("v", vals)
	ctx := &opCtx{seed: 5, state: map[string]any{}}
	a, err := opSample(ctx, []Value{f}, params{"n": 10.0})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := opSample(&opCtx{seed: 5, state: map[string]any{}}, []Value{f}, params{"n": 10.0})
	af, bf := a.(*Frame), b.(*Frame)
	if af.N != 10 || bf.N != 10 {
		t.Fatalf("sample sizes %d/%d", af.N, bf.N)
	}
	for i := 0; i < 10; i++ {
		if af.Col("v").F[i] != bf.Col("v").F[i] {
			t.Fatal("sampling not deterministic")
		}
		if i > 0 && af.Col("v").F[i] < af.Col("v").F[i-1] {
			t.Fatal("sample not in row order")
		}
	}
}

func TestDropConstAndDropCorrelated(t *testing.T) {
	f := NewFrame(50)
	a := make([]float64, 50)
	b := make([]float64, 50)
	c := make([]float64, 50)
	rng := mlkit.NewRNG(1)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = 2 * a[i] // perfectly correlated
		c[i] = 7        // constant
	}
	f.AddF("a", a)
	f.AddF("b", b)
	f.AddF("c", c)

	ctx := &opCtx{mode: ModeTrain, outName: "d", state: map[string]any{}}
	out, err := opDropConst(ctx, []Value{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if names := out.(*Frame).Names(); len(names) != 2 {
		t.Fatalf("drop_const kept %v, want [a b]", names)
	}
	ctx2 := &opCtx{mode: ModeTrain, outName: "e", state: map[string]any{}}
	out2, err := opDropCorrelated(ctx2, []Value{out.(*Frame)}, params{})
	if err != nil {
		t.Fatal(err)
	}
	if names := out2.(*Frame).Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("drop_correlated kept %v, want [a]", names)
	}
}
