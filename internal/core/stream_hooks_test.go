package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

// hookShapes are the execution shapes the hook contract covers; sharded
// configs are included to verify the demotion to a single sink.
var hookShapes = []StreamConfig{
	{ChunkRows: 64},
	{ChunkRows: 64, PipelineDepth: 2},
	{ChunkRows: 64, PipelineDepth: 4, Workers: 4},
	{ChunkRows: 64, Shards: 4},
}

// TestAfterChunkHook verifies the per-chunk lifecycle hook across
// execution shapes: one call per chunk in stream order, per-chunk verdict
// rows that concatenate to exactly the unhooked result, and unchanged
// final output.
func TestAfterChunkHook(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.05)
	p := fieldPipeline()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.TrainStream(ds, StreamConfig{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	want, err := eng.TestStream(ds, StreamConfig{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	for si, shape := range hookShapes {
		var seqs []int
		var preds []int
		rows := 0
		shape.Hooks = &StreamHooks{AfterChunk: func(up ChunkUpdate) error {
			seqs = append(seqs, up.Seq)
			for _, res := range up.Results {
				preds = append(preds, res.Pred...)
				rows += len(res.Truth)
			}
			return nil
		}}
		got, err := eng.TestStream(ds, shape)
		if err != nil {
			t.Fatalf("shape %d: %v", si, err)
		}
		requireEqualResults(t, want, got, fmt.Sprintf("hooked shape %d", si))
		if len(seqs) == 0 {
			t.Fatalf("shape %d: hook never ran", si)
		}
		for i, s := range seqs {
			if s != i {
				t.Fatalf("shape %d: hook saw seq %d at position %d (out of order or dropped)", si, s, i)
			}
		}
		if len(seqs) != eng.LastStream.Chunks {
			t.Errorf("shape %d: hook ran %d times for %d chunks", si, len(seqs), eng.LastStream.Chunks)
		}
		if len(preds) != len(want.Pred) || rows != len(want.Truth) {
			t.Errorf("shape %d: per-chunk verdicts cover %d preds / %d rows, want %d", si, len(preds), rows, len(want.Pred))
		}
		for i := range preds {
			if preds[i] != want.Pred[i] {
				t.Fatalf("shape %d: per-chunk pred %d = %d, batch %d", si, i, preds[i], want.Pred[i])
			}
		}
		if shape.Shards > 1 && eng.LastStream.Pipelined && eng.LastStream.Shards != 1 {
			t.Errorf("shape %d: hooks must demote shards to 1, got %d", si, eng.LastStream.Shards)
		}
	}
}

// TestAfterChunkHookError pins the abort path: a failing hook stops the
// stream like a failing op would, in every execution shape.
func TestAfterChunkHookError(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.05)
	eng := NewEngine(fieldPipeline())
	eng.Seed = 7
	if err := eng.TrainStream(ds, StreamConfig{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink exploded")
	for si, shape := range hookShapes {
		calls := 0
		shape.Hooks = &StreamHooks{AfterChunk: func(ChunkUpdate) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		}}
		_, err := eng.TestStream(ds, shape)
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("shape %d: want hook error, got %v", si, err)
		}
		if !strings.Contains(err.Error(), "after-chunk hook") {
			t.Errorf("shape %d: error should name the hook: %v", si, err)
		}
	}
}

// TestAfterChunkHookModelSwap exercises the contract the daemon's hot
// swap relies on: a hook that retargets the model between chunks yields
// verdicts attributable to exactly one model per chunk.
func TestAfterChunkHookModelSwap(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.05)
	eng := NewEngine(fieldPipeline())
	eng.Seed = 7
	if err := eng.TrainStream(ds, StreamConfig{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	old, ok := eng.TrainedModel()
	if !ok {
		t.Fatal("no trained model")
	}
	// The replacement predicts the complement, making attribution visible.
	inv := invertClassifier{old}
	want, err := eng.TestStream(ds, StreamConfig{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	const swapAt = 3
	var got []int
	boundary := 0 // verdict rows scored before the swap took effect
	hooks := &StreamHooks{AfterChunk: func(up ChunkUpdate) error {
		for _, res := range up.Results {
			got = append(got, res.Pred...)
		}
		if up.Seq < swapAt {
			boundary = len(got)
		}
		if up.Seq == swapAt-1 {
			return eng.ReplaceModel(inv)
		}
		return nil
	}}
	if _, err := eng.TestStream(ds, StreamConfig{ChunkRows: 64, PipelineDepth: 4, Workers: 4, Hooks: hooks}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplaceModel(old); err != nil { // restore
		t.Fatal(err)
	}
	if len(got) != len(want.Pred) {
		t.Fatalf("swap run produced %d preds, want %d", len(got), len(want.Pred))
	}
	if boundary == 0 || boundary >= len(got) {
		t.Fatalf("trace too small for swap test: boundary %d of %d rows", boundary, len(got))
	}
	// Every pred must match the old model before the boundary and the
	// inverted replacement after it — exactly one model per chunk.
	for i := range got {
		wantPred := want.Pred[i]
		if i >= boundary {
			wantPred = 1 - wantPred
		}
		if got[i] != wantPred {
			t.Fatalf("pred %d = %d: chunk not scored by exactly one model (want %d)", i, got[i], wantPred)
		}
	}
}

// invertClassifier flips the wrapped classifier's predictions; it gives
// swap tests a replacement model whose verdicts are unmistakable.
type invertClassifier struct{ inner mlkit.Classifier }

func (c invertClassifier) Fit(X [][]float64, y []int) error { return c.inner.Fit(X, y) }

func (c invertClassifier) Predict(X [][]float64) []int {
	out := c.inner.Predict(X)
	for i := range out {
		out[i] = 1 - out[i]
	}
	return out
}

// TestInstallModel pins the no-training install path: a classifier
// installed into a preprocessing-stateless pipeline serves Test directly.
func TestInstallModel(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.05)
	src := NewEngine(fieldPipeline())
	src.Seed = 7
	if err := src.Train(ds); err != nil {
		t.Fatal(err)
	}
	clf, _ := src.TrainedModel()
	want, err := src.Test(ds)
	if err != nil {
		t.Fatal(err)
	}

	dst := NewEngine(fieldPipeline())
	dst.Seed = 7
	if _, err := dst.Test(ds); err == nil {
		t.Fatal("Test before InstallModel should fail")
	}
	if err := dst.InstallModel(clf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, want, got, "installed model")

	if err := NewEngine(fieldPipeline()).ReplaceModel(clf); err == nil {
		t.Fatal("ReplaceModel on an untrained engine should fail")
	}
}
