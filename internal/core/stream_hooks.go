package core

import (
	"fmt"

	"lumen/internal/netpkt"
)

// ChunkUpdate describes one chunk a RunStream pass has fully absorbed:
// its position in the stream, its packets, and the verdicts streamed
// scoring produced for it. It is handed to StreamHooks.AfterChunk so a
// resident consumer (the detection daemon) can emit alerts and drive
// model lifecycle operations chunk-by-chunk instead of waiting for the
// pass to finish.
type ChunkUpdate struct {
	// Seq is the chunk's sequence number within the pass (0-based).
	Seq int
	// Base is the global index of the chunk's first packet.
	Base int
	// Packets are the chunk's packets. They are valid only for the
	// duration of the callback: recycling sources reclaim the underlying
	// buffers afterwards, so callbacks must not retain the slice or
	// anything aliasing the packets' Data/Payload.
	Packets []*netpkt.Packet
	// Views are the chunk's lazy packet views when the pass rides the
	// zero-copy decode fast path under a view-aware hook
	// (StreamHooks.AcceptViews); Packets is nil then. The same lifetime
	// rules apply — and more strictly: view bytes may alias a memory
	// mapping that unmaps once the chunk is released, so copy anything
	// (e.g. a PacketSummary) that must outlive the callback.
	Views []netpkt.PacketView
	// Results are the evaluation results streamed test-mode scoring
	// produced for this chunk, in op order. Empty on training passes, on
	// chunks with no scored rows, and on pipelines whose scoring is
	// deferred to the flush pass (flow granularities, barrier suffixes) —
	// those verdicts appear only in RunStream's final merged result.
	Results []*EvalResult
	// Drift holds the drift_detect events raised during this chunk, in
	// detection order. The slice is pooled with the chunk job: copy it to
	// retain events past the callback.
	Drift []DriftEvent
	// Features / Labels are the train op's per-chunk input feature matrix
	// and labels, set only when StreamHooks.WantFeatures is true and the
	// feature frame streams (nil otherwise). Valid only during the
	// callback: copy rows to retain them (e.g. into a retrain reservoir).
	Features [][]float64
	Labels   []int
}

// StreamHooks are per-chunk lifecycle callbacks of one RunStream pass.
//
// AfterChunk runs once per absorbed chunk, in stream order, on the same
// goroutine that executes the ordered streamed ops — including model
// scoring — after the chunk's results are final and before the next
// chunk's ordered ops run. That ordering is the hook's contract: a
// callback may mutate fitted model state (hot swap via
// Engine.ReplaceModel or an mlkit.SwapHandle) with the guarantee that
// every chunk is scored by exactly one model configuration and no chunk
// is ever mid-score while the callback runs. A non-nil error aborts the
// stream exactly like a failing op.
//
// Because sharded sinks score lanes concurrently with absorption, setting
// hooks demotes StreamConfig.Shards to 1; every other pipeline shape
// (sequential, pipelined with workers) is supported and bit-identical.
type StreamHooks struct {
	// AfterChunk is called after each chunk is absorbed; see the type
	// comment for the execution contract. Nil disables the hook.
	AfterChunk func(ChunkUpdate) error
	// WantFeatures requests the train op's per-chunk input features (and
	// labels when the frame carries them) on every ChunkUpdate, so a
	// consumer can maintain a retraining reservoir without re-deriving
	// the feature pipeline.
	WantFeatures bool
	// AcceptViews declares the AfterChunk callback view-aware: when the
	// plan qualifies for the zero-copy decode fast path, the pass takes
	// it and ChunkUpdate carries Views instead of Packets. Hooks without
	// it pin the pass to eager decoding, preserving the classic
	// Packets-only callback contract.
	AcceptViews bool
}

// active reports whether any callback is set.
func (h *StreamHooks) active() bool {
	return h != nil && h.AfterChunk != nil
}

// afterChunk invokes the AfterChunk hook for one absorbed job.
func (r *streamExec) afterChunk(job *chunkJob) error {
	if !r.hooks.active() {
		return nil
	}
	up := ChunkUpdate{
		Seq:     job.nc.Seq,
		Base:    job.nc.Base,
		Packets: job.nc.Packets,
		Views:   job.nc.Views,
		Results: job.results,
		Drift:   job.drift,
	}
	if r.hooks.WantFeatures && r.trainFrame != "" {
		if fr, ok := job.env[r.trainFrame].(*Frame); ok {
			up.Features = fr.Matrix()
			up.Labels = fr.Labels
		}
	}
	if err := r.hooks.AfterChunk(up); err != nil {
		return fmt.Errorf("core: after-chunk hook (chunk %d): %w", job.nc.Seq, err)
	}
	return nil
}
