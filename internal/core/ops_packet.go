package core

import (
	"fmt"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/features"
	"lumen/internal/netpkt"
)

func init() {
	register("field_extract",
		"extract per-packet header fields into a frame (single pass, all requested fields at once)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opFieldExtract)
	register("nprint",
		"render packets to the nprint bit-level representation (variants: all, tcp_udp_ipv4, tcp_udp_ipv4_payload, tcp_icmp_ipv4)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opNPrint)
	register("kitsune_features",
		"damped incremental statistics per packet over src, channel and socket groupings (Kitsune/AfterImage)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opKitsuneFeatures)
	register("dot11_features",
		"802.11 frame features: subtype mix, retry, duration, per-transmitter rates",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opDot11Features)
}

// packetFields is the catalogue of per-packet fields field_extract knows.
// All requested fields are produced in one pass over the packets (the
// shared-extraction optimization the paper highlights for size+time).
var packetFields = []string{
	"ts", "iat", "len", "payload_len", "ttl", "ip_id", "ip_tos", "proto",
	"src_port", "dst_port", "tcp_flags", "tcp_syn", "tcp_ack", "tcp_fin",
	"tcp_rst", "tcp_psh", "tcp_urg", "tcp_window", "udp_len", "icmp_type",
	"icmp_code", "is_arp", "is_tcp", "is_udp", "is_icmp", "dns_qr", "dns_qd",
	"is_http", "http_is_req", "http_status", "http_path_len", "http_body_len",
	"is_mqtt", "mqtt_type", "mqtt_qos", "mqtt_topic_len",
	"src_ip", "dst_ip", "src_mac", "dst_mac",
}

// PacketFields returns the supported field names (for documentation and
// template validation).
func PacketFields() []string { return append([]string(nil), packetFields...) }

// feCarry is field_extract's cross-chunk fold state: the previous
// packet's timestamp, so iat stays exact across a chunk boundary.
type feCarry struct {
	prevTs float64
	seen   bool
}

// pktTime converts a capture timestamp to the float seconds every packet
// op works in.
func pktTime(ts time.Time) float64 { return float64(ts.UnixNano()) / 1e9 }

func opFieldExtract(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	fields := p.strList("fields")
	if len(fields) == 0 {
		return nil, fmt.Errorf("field_extract: no fields requested")
	}
	known := map[string]bool{}
	for _, f := range packetFields {
		known[f] = true
	}
	for _, f := range fields {
		if !known[f] {
			return nil, fmt.Errorf("field_extract: unknown field %q", f)
		}
	}
	ds := pk.DS
	n := pk.Len()
	fr := newPacketFrame(n, ds, ctx.streamBase())

	numeric := map[string][]float64{}
	strs := map[string][]string{}
	for _, f := range fields {
		switch f {
		case "src_ip", "dst_ip", "src_mac", "dst_mac":
			strs[f] = make([]string, n)
		default:
			numeric[f] = make([]float64, n)
		}
	}
	var car feCarry
	if v, ok := ctx.carry(); ok {
		car, _ = v.(feCarry)
	}
	if pk.Views != nil {
		car = fieldExtractViews(pk.Views, numeric, strs, car)
	} else {
		car = fieldExtractPackets(ds.Packets, numeric, strs, car)
	}
	ctx.setCarry(car)
	// Preserve the requested order.
	for _, f := range fields {
		if col, ok := numeric[f]; ok {
			fr.AddF(f, col)
		} else {
			fr.AddS(f, strs[f])
		}
	}
	return fr, nil
}

// fieldExtractPackets fills the requested columns from eagerly decoded
// packets — the classic row-major loop.
func fieldExtractPackets(pkts []*netpkt.Packet, numeric map[string][]float64, strs map[string][]string, car feCarry) feCarry {
	prevTs, seen := car.prevTs, car.seen
	for i, pkt := range pkts {
		t := pktTime(pkt.Ts)
		for f := range numeric {
			var v float64
			switch f {
			case "ts":
				v = t
			case "iat":
				if seen {
					v = t - prevTs
				}
			case "len":
				v = float64(pkt.WireLen())
			case "payload_len":
				v = float64(len(pkt.Payload))
			case "ttl":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.TTL)
				}
			case "ip_id":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.ID)
				}
			case "ip_tos":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.TOS)
				}
			case "proto":
				v = float64(pkt.Protocol())
			case "src_port":
				v = float64(pkt.SrcPort())
			case "dst_port":
				v = float64(pkt.DstPort())
			case "tcp_flags":
				if pkt.TCP != nil {
					v = float64(pkt.TCP.Flags)
				}
			case "tcp_syn":
				v = flagVal(pkt, netpkt.FlagSYN)
			case "tcp_ack":
				v = flagVal(pkt, netpkt.FlagACK)
			case "tcp_fin":
				v = flagVal(pkt, netpkt.FlagFIN)
			case "tcp_rst":
				v = flagVal(pkt, netpkt.FlagRST)
			case "tcp_psh":
				v = flagVal(pkt, netpkt.FlagPSH)
			case "tcp_urg":
				v = flagVal(pkt, netpkt.FlagURG)
			case "tcp_window":
				if pkt.TCP != nil {
					v = float64(pkt.TCP.Window)
				}
			case "udp_len":
				if pkt.UDP != nil {
					v = float64(pkt.UDP.Length)
				}
			case "icmp_type":
				if pkt.ICMP != nil {
					v = float64(pkt.ICMP.Type)
				}
			case "icmp_code":
				if pkt.ICMP != nil {
					v = float64(pkt.ICMP.Code)
				}
			case "is_arp":
				v = b2f(pkt.ARP != nil)
			case "is_tcp":
				v = b2f(pkt.TCP != nil)
			case "is_udp":
				v = b2f(pkt.UDP != nil)
			case "is_icmp":
				v = b2f(pkt.ICMP != nil)
			case "dns_qr":
				if pkt.DNS != nil && pkt.DNS.QR {
					v = 1
				}
			case "dns_qd":
				if pkt.DNS != nil {
					v = float64(pkt.DNS.QDCount)
				}
			case "is_http":
				v = b2f(pkt.HTTP != nil)
			case "http_is_req":
				if pkt.HTTP != nil && pkt.HTTP.IsRequest {
					v = 1
				}
			case "http_status":
				if pkt.HTTP != nil {
					v = float64(pkt.HTTP.Status)
				}
			case "http_path_len":
				if pkt.HTTP != nil {
					v = float64(len(pkt.HTTP.Path))
				}
			case "http_body_len":
				if pkt.HTTP != nil && pkt.HTTP.ContentLength > 0 {
					v = float64(pkt.HTTP.ContentLength)
				}
			case "is_mqtt":
				v = b2f(pkt.MQTT != nil)
			case "mqtt_type":
				if pkt.MQTT != nil {
					v = float64(pkt.MQTT.Type)
				}
			case "mqtt_qos":
				if pkt.MQTT != nil {
					v = float64(pkt.MQTT.QoS)
				}
			case "mqtt_topic_len":
				if pkt.MQTT != nil {
					v = float64(len(pkt.MQTT.Topic))
				}
			}
			numeric[f][i] = v
		}
		for f := range strs {
			var v string
			switch f {
			case "src_ip":
				if a := pkt.SrcIP(); a.IsValid() {
					v = a.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr2.String() // MAC stands in on 802.11
				}
			case "dst_ip":
				if a := pkt.DstIP(); a.IsValid() {
					v = a.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr1.String()
				}
			case "src_mac":
				if pkt.Eth != nil {
					v = pkt.Eth.Src.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr2.String()
				}
			case "dst_mac":
				if pkt.Eth != nil {
					v = pkt.Eth.Dst.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr1.String()
				}
			}
			strs[f][i] = v
		}
		prevTs, seen = t, true
	}
	return feCarry{prevTs: prevTs, seen: seen}
}

// fieldExtractViews fills the requested columns from lazy views, one
// column pass per field with the field switch hoisted out of the inner
// loop. Only the layers a field actually needs are decoded: metadata
// fields (ts/iat/len) trigger nothing, header fields run the one-pass
// L2-L4 decode on first touch, app fields force the app parse only on
// port-gated packets. Output is bit-identical to the eager loop, and the
// carry advances on every packet exactly as the eager loop's does.
func fieldExtractViews(views []netpkt.PacketView, numeric map[string][]float64, strs map[string][]string, car feCarry) feCarry {
	n := len(views)
	for f, col := range numeric {
		switch f {
		case "ts":
			for i := range views {
				col[i] = pktTime(views[i].Ts)
			}
		case "iat":
			prev, seen := car.prevTs, car.seen
			for i := range views {
				t := pktTime(views[i].Ts)
				if seen {
					col[i] = t - prev
				}
				prev, seen = t, true
			}
		case "len":
			for i := range views {
				col[i] = float64(views[i].WireLen())
			}
		case "payload_len":
			for i := range views {
				col[i] = float64(views[i].PayloadLen())
			}
		case "ttl":
			for i := range views {
				if ip, ok := views[i].IPv4(); ok {
					col[i] = float64(ip.TTL)
				}
			}
		case "ip_id":
			for i := range views {
				if ip, ok := views[i].IPv4(); ok {
					col[i] = float64(ip.ID)
				}
			}
		case "ip_tos":
			for i := range views {
				if ip, ok := views[i].IPv4(); ok {
					col[i] = float64(ip.TOS)
				}
			}
		case "proto":
			for i := range views {
				col[i] = float64(views[i].Protocol())
			}
		case "src_port":
			for i := range views {
				col[i] = float64(views[i].SrcPort())
			}
		case "dst_port":
			for i := range views {
				col[i] = float64(views[i].DstPort())
			}
		case "tcp_flags":
			for i := range views {
				if t, ok := views[i].TCP(); ok {
					col[i] = float64(t.Flags)
				}
			}
		case "tcp_syn":
			fillFlagCol(views, col, netpkt.FlagSYN)
		case "tcp_ack":
			fillFlagCol(views, col, netpkt.FlagACK)
		case "tcp_fin":
			fillFlagCol(views, col, netpkt.FlagFIN)
		case "tcp_rst":
			fillFlagCol(views, col, netpkt.FlagRST)
		case "tcp_psh":
			fillFlagCol(views, col, netpkt.FlagPSH)
		case "tcp_urg":
			fillFlagCol(views, col, netpkt.FlagURG)
		case "tcp_window":
			for i := range views {
				if t, ok := views[i].TCP(); ok {
					col[i] = float64(t.Window)
				}
			}
		case "udp_len":
			for i := range views {
				if u, ok := views[i].UDP(); ok {
					col[i] = float64(u.Length)
				}
			}
		case "icmp_type":
			for i := range views {
				if ic, ok := views[i].ICMP(); ok {
					col[i] = float64(ic.Type)
				}
			}
		case "icmp_code":
			for i := range views {
				if ic, ok := views[i].ICMP(); ok {
					col[i] = float64(ic.Code)
				}
			}
		case "is_arp":
			for i := range views {
				_, ok := views[i].ARP()
				col[i] = b2f(ok)
			}
		case "is_tcp":
			for i := range views {
				_, ok := views[i].TCP()
				col[i] = b2f(ok)
			}
		case "is_udp":
			for i := range views {
				_, ok := views[i].UDP()
				col[i] = b2f(ok)
			}
		case "is_icmp":
			for i := range views {
				_, ok := views[i].ICMP()
				col[i] = b2f(ok)
			}
		case "dns_qr":
			for i := range views {
				if d, ok := views[i].DNS(); ok && d.QR {
					col[i] = 1
				}
			}
		case "dns_qd":
			for i := range views {
				if d, ok := views[i].DNS(); ok {
					col[i] = float64(d.QDCount)
				}
			}
		case "is_http":
			for i := range views {
				_, ok := views[i].HTTP()
				col[i] = b2f(ok)
			}
		case "http_is_req":
			for i := range views {
				if h, ok := views[i].HTTP(); ok && h.IsRequest {
					col[i] = 1
				}
			}
		case "http_status":
			for i := range views {
				if h, ok := views[i].HTTP(); ok {
					col[i] = float64(h.Status)
				}
			}
		case "http_path_len":
			for i := range views {
				if h, ok := views[i].HTTP(); ok {
					col[i] = float64(len(h.Path))
				}
			}
		case "http_body_len":
			for i := range views {
				if h, ok := views[i].HTTP(); ok && h.ContentLength > 0 {
					col[i] = float64(h.ContentLength)
				}
			}
		case "is_mqtt":
			for i := range views {
				_, ok := views[i].MQTT()
				col[i] = b2f(ok)
			}
		case "mqtt_type":
			for i := range views {
				if m, ok := views[i].MQTT(); ok {
					col[i] = float64(m.Type)
				}
			}
		case "mqtt_qos":
			for i := range views {
				if m, ok := views[i].MQTT(); ok {
					col[i] = float64(m.QoS)
				}
			}
		case "mqtt_topic_len":
			for i := range views {
				if m, ok := views[i].MQTT(); ok {
					col[i] = float64(len(m.Topic))
				}
			}
		}
	}
	for f, col := range strs {
		switch f {
		case "src_ip":
			for i := range views {
				if a := views[i].SrcIP(); a.IsValid() {
					col[i] = a.String()
				} else if d, ok := views[i].Dot11(); ok {
					col[i] = d.Addr2.String() // MAC stands in on 802.11
				}
			}
		case "dst_ip":
			for i := range views {
				if a := views[i].DstIP(); a.IsValid() {
					col[i] = a.String()
				} else if d, ok := views[i].Dot11(); ok {
					col[i] = d.Addr1.String()
				}
			}
		case "src_mac":
			for i := range views {
				if e, ok := views[i].Eth(); ok {
					col[i] = e.Src.String()
				} else if d, ok := views[i].Dot11(); ok {
					col[i] = d.Addr2.String()
				}
			}
		case "dst_mac":
			for i := range views {
				if e, ok := views[i].Eth(); ok {
					col[i] = e.Dst.String()
				} else if d, ok := views[i].Dot11(); ok {
					col[i] = d.Addr1.String()
				}
			}
		}
	}
	if n > 0 {
		car.prevTs, car.seen = pktTime(views[n-1].Ts), true
	}
	return car
}

// fillFlagCol writes one TCP-flag indicator column from views.
func fillFlagCol(views []netpkt.PacketView, col []float64, f uint8) {
	for i := range views {
		if t, ok := views[i].TCP(); ok && t.HasFlag(f) {
			col[i] = 1
		}
	}
}

func flagVal(p *netpkt.Packet, f uint8) float64 {
	if p.TCP != nil && p.TCP.HasFlag(f) {
		return 1
	}
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// newPacketFrame builds an empty frame of n packet rows with unit
// metadata and labels copied from the dataset. base offsets UnitIdx so
// chunked runs attribute rows to global packet indices (0 on batch runs).
// n is passed explicitly because view-mode chunks leave ds.Packets empty.
func newPacketFrame(n int, ds *dataset.Labeled, base int) *Frame {
	fr := NewFrame(n)
	fr.Unit = UnitPacket
	fr.UnitIdx = make([]int, n)
	for i := range fr.UnitIdx {
		fr.UnitIdx[i] = base + i
	}
	fr.Labels = append([]int(nil), ds.Labels...)
	fr.Attacks = append([]string(nil), ds.Attacks...)
	return fr
}

func opNPrint(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	var cfg features.NPrintConfig
	variant := p.str("variant", "all")
	switch variant {
	case "all":
		cfg = features.NPrintAll
	case "tcp_udp_ipv4":
		cfg = features.NPrintTCPUDPIPv4
	case "tcp_udp_ipv4_payload":
		cfg = features.NPrintWithPayload
	case "tcp_icmp_ipv4":
		cfg = features.NPrintTCPICMPIPv4
	default:
		return nil, fmt.Errorf("nprint: unknown variant %q", variant)
	}
	ds := pk.DS
	n := pk.Len()
	fr := newPacketFrame(n, ds, ctx.streamBase())
	w := cfg.Width()
	cols := make([][]float64, w)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	// One scratch row reused across packets: FillRow renders into it, the
	// scatter loop transposes into the column slices.
	row := make([]float64, w)
	if pk.Views != nil {
		for i := range pk.Views {
			cfg.FillRow(row, features.ShapeOfView(&pk.Views[i]))
			for j, b := range row {
				cols[j][i] = b
			}
		}
	} else {
		for i, pkt := range ds.Packets {
			cfg.FillRow(row, features.ShapeOf(pkt))
			for j, b := range row {
				cols[j][i] = b
			}
		}
	}
	for j := range cols {
		fr.AddF(fmt.Sprintf("bit_%d", j), cols[j])
	}
	return fr, nil
}

// kitsuneStreams bundles the damped statistics of one grouping key.
type kitsuneStreams struct {
	src, chanl, sock *features.IncStat
	jitter           *features.IncStat
	two              *features.IncStat2D
}

// kitsuneCarry is the op's cross-chunk fold state: every incremental
// statistic is keyed by grouping and decay rate, and damped stats are
// strictly sequential, so chunked execution must resume from the same
// maps batch execution would have at that packet.
type kitsuneCarry struct {
	perLambda []map[string]*kitsuneStreams
	lastSeen  []map[string]float64
}

// fold ingests one packet — reduced to its timestamp, wire size, payload
// length and grouping keys — and writes row i of every column. Shared by
// the eager and view loops so both paths are structurally identical.
func (car *kitsuneCarry) fold(lambdas []float64, cols [][]float64, i int, t, size, payLen float64, srcKey, chanKey, sockKey string) {
	perLambda, lastSeen := car.perLambda, car.lastSeen
	for li, lam := range lambdas {
		st := perLambda[li][srcKey]
		if st == nil {
			st = &kitsuneStreams{
				src:    features.NewIncStat(lam),
				chanl:  features.NewIncStat(lam),
				sock:   features.NewIncStat(lam),
				jitter: features.NewIncStat(lam),
				two:    features.NewIncStat2D(lam),
			}
			perLambda[li][srcKey] = st
		}
		// Jitter: inter-arrival within the channel.
		if last, ok := lastSeen[li][chanKey]; ok {
			st.jitter.Insert(t-last, t)
		}
		lastSeen[li][chanKey] = t
		st.src.Insert(size, t)
		// Channel/socket stats live in dedicated stream objects keyed
		// by their own keys; reuse the map with prefixed keys.
		cst := perLambda[li]["c|"+chanKey]
		if cst == nil {
			cst = &kitsuneStreams{src: features.NewIncStat(lam), two: features.NewIncStat2D(lam)}
			perLambda[li]["c|"+chanKey] = cst
		}
		cst.src.Insert(size, t)
		cst.two.Insert(size, payLen, t)
		sst := perLambda[li]["s|"+sockKey]
		if sst == nil {
			sst = &kitsuneStreams{src: features.NewIncStat(lam)}
			perLambda[li]["s|"+sockKey] = sst
		}
		sst.src.Insert(size, t)

		base := li * 13
		cols[base+0][i] = st.src.Weight()
		cols[base+1][i] = st.src.Mean()
		cols[base+2][i] = st.src.Std()
		cols[base+3][i] = cst.src.Weight()
		cols[base+4][i] = cst.src.Mean()
		cols[base+5][i] = cst.src.Std()
		cols[base+6][i] = sst.src.Weight()
		cols[base+7][i] = sst.src.Mean()
		cols[base+8][i] = sst.src.Std()
		cols[base+9][i] = st.jitter.Mean()
		cols[base+10][i] = st.jitter.Std()
		cols[base+11][i] = cst.two.Magnitude()
		cols[base+12][i] = cst.two.Cov()
	}
}

// kitsune groupings: per-source stream, per-channel (src->dst) stream and
// per-socket (five-tuple) stream, each at several decay rates.
func opKitsuneFeatures(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	lambdas := []float64{1, 0.1, 0.01}
	if ls := p.anyList("lambdas"); ls != nil {
		lambdas = lambdas[:0]
		for _, l := range ls {
			if f, ok := l.(float64); ok {
				lambdas = append(lambdas, f)
			}
		}
	}
	ds := pk.DS
	n := pk.Len()
	fr := newPacketFrame(n, ds, ctx.streamBase())
	nFeat := len(lambdas) * 13
	cols := make([][]float64, nFeat)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	prev, _ := ctx.carry()
	car, ok := prev.(*kitsuneCarry)
	if !ok {
		car = &kitsuneCarry{
			perLambda: make([]map[string]*kitsuneStreams, len(lambdas)),
			lastSeen:  make([]map[string]float64, len(lambdas)),
		}
		for li := range lambdas {
			car.perLambda[li] = map[string]*kitsuneStreams{}
			car.lastSeen[li] = map[string]float64{}
		}
		ctx.setCarry(car)
	}
	if pk.Views != nil {
		for i := range pk.Views {
			vw := &pk.Views[i]
			srcKey, chanKey, sockKey := kitsuneKeysView(vw)
			car.fold(lambdas, cols, i, pktTime(vw.Ts), float64(vw.WireLen()),
				float64(vw.PayloadLen()), srcKey, chanKey, sockKey)
		}
	} else {
		for i, pkt := range ds.Packets {
			srcKey, chanKey, sockKey := kitsuneKeys(pkt)
			car.fold(lambdas, cols, i, pktTime(pkt.Ts), float64(pkt.WireLen()),
				float64(len(pkt.Payload)), srcKey, chanKey, sockKey)
		}
	}
	names := []string{"srcw", "srcmean", "srcstd", "chw", "chmean", "chstd", "skw", "skmean", "skstd", "jitmean", "jitstd", "mag", "cov"}
	for li, lam := range lambdas {
		for k, nm := range names {
			fr.AddF(fmt.Sprintf("k_%g_%s", lam, nm), cols[li*13+k])
		}
	}
	return fr, nil
}

// kitsuneKeys derives grouping keys, falling back to MACs on 802.11
// (Kitsune is the one algorithm the paper can run on AWID3).
func kitsuneKeys(p *netpkt.Packet) (src, channel, socket string) {
	if a := p.SrcIP(); a.IsValid() {
		src = a.String()
		channel = src + ">" + p.DstIP().String()
		if ft, ok := p.Tuple(); ok {
			socket = ft.String()
		} else {
			socket = channel
		}
		return src, channel, socket
	}
	if p.Dot11 != nil {
		src = p.Dot11.Addr2.String()
		channel = src + ">" + p.Dot11.Addr1.String()
		return src, channel, channel
	}
	if p.Eth != nil {
		src = p.Eth.Src.String()
		channel = src + ">" + p.Eth.Dst.String()
		return src, channel, channel
	}
	return "?", "?", "?"
}

// kitsuneKeysView is kitsuneKeys over a lazy view.
func kitsuneKeysView(v *netpkt.PacketView) (src, channel, socket string) {
	if a := v.SrcIP(); a.IsValid() {
		src = a.String()
		channel = src + ">" + v.DstIP().String()
		if ft, ok := v.Tuple(); ok {
			socket = ft.String()
		} else {
			socket = channel
		}
		return src, channel, socket
	}
	if d, ok := v.Dot11(); ok {
		src = d.Addr2.String()
		channel = src + ">" + d.Addr1.String()
		return src, channel, channel
	}
	if e, ok := v.Eth(); ok {
		src = e.Src.String()
		channel = src + ">" + e.Dst.String()
		return src, channel, channel
	}
	return "?", "?", "?"
}

// dot11Carry keeps the per-transmitter damped rate trackers alive
// across chunks so streamed execution matches batch execution.
type dot11Carry struct {
	perTx       map[string]*features.IncStat
	perTxDeauth map[string]*features.IncStat
}

// dot11Fill bundles the output columns and rate trackers of one
// dot11_features evaluation; fold writes row i from one 802.11 header.
// Shared by the eager and view loops.
type dot11Fill struct {
	subtype, mgmt, retry, duration, rate, deauthRate, plen []float64
	perTx, perTxDeauth                                     map[string]*features.IncStat
	lam                                                    float64
}

func (f *dot11Fill) fold(i int, d *netpkt.Dot11, t, payLen float64) {
	f.subtype[i] = float64(d.Subtype)
	f.mgmt[i] = b2f(d.Subtype.IsManagement())
	f.retry[i] = b2f(d.Retry)
	f.duration[i] = float64(d.Duration)
	f.plen[i] = payLen
	key := d.Addr2.String()
	st := f.perTx[key]
	if st == nil {
		st = features.NewIncStat(f.lam)
		f.perTx[key] = st
	}
	st.Insert(1, t)
	f.rate[i] = st.Weight()
	dst := f.perTxDeauth[key]
	if dst == nil {
		dst = features.NewIncStat(f.lam)
		f.perTxDeauth[key] = dst
	}
	if d.Subtype == netpkt.Dot11Deauth || d.Subtype == netpkt.Dot11Disassoc {
		dst.Insert(1, t)
	}
	f.deauthRate[i] = dst.Weight()
}

func opDot11Features(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	ds := pk.DS
	n := pk.Len()
	fr := newPacketFrame(n, ds, ctx.streamBase())
	lam := p.f64("lambda", 0.5)
	prev, _ := ctx.carry()
	car, ok := prev.(*dot11Carry)
	if !ok {
		car = &dot11Carry{perTx: map[string]*features.IncStat{}, perTxDeauth: map[string]*features.IncStat{}}
		ctx.setCarry(car)
	}
	fill := &dot11Fill{
		subtype: make([]float64, n), mgmt: make([]float64, n),
		retry: make([]float64, n), duration: make([]float64, n),
		rate: make([]float64, n), deauthRate: make([]float64, n),
		plen:  make([]float64, n),
		perTx: car.perTx, perTxDeauth: car.perTxDeauth, lam: lam,
	}
	if pk.Views != nil {
		for i := range pk.Views {
			vw := &pk.Views[i]
			d, ok := vw.Dot11()
			if !ok {
				continue
			}
			fill.fold(i, d, pktTime(vw.Ts), float64(vw.PayloadLen()))
		}
	} else {
		for i, pkt := range ds.Packets {
			if pkt.Dot11 == nil {
				continue
			}
			fill.fold(i, pkt.Dot11, pktTime(pkt.Ts), float64(len(pkt.Payload)))
		}
	}
	fr.AddF("subtype", fill.subtype)
	fr.AddF("is_mgmt", fill.mgmt)
	fr.AddF("retry", fill.retry)
	fr.AddF("duration", fill.duration)
	fr.AddF("tx_rate", fill.rate)
	fr.AddF("tx_deauth_rate", fill.deauthRate)
	fr.AddF("payload_len", fill.plen)
	return fr, nil
}
