package core

import (
	"fmt"

	"lumen/internal/dataset"
	"lumen/internal/features"
	"lumen/internal/netpkt"
)

func init() {
	register("field_extract",
		"extract per-packet header fields into a frame (single pass, all requested fields at once)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opFieldExtract)
	register("nprint",
		"render packets to the nprint bit-level representation (variants: all, tcp_udp_ipv4, tcp_udp_ipv4_payload, tcp_icmp_ipv4)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opNPrint)
	register("kitsune_features",
		"damped incremental statistics per packet over src, channel and socket groupings (Kitsune/AfterImage)",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opKitsuneFeatures)
	register("dot11_features",
		"802.11 frame features: subtype mix, retry, duration, per-transmitter rates",
		opSig{in: []Kind{KindPackets}, out: KindFrame}, opDot11Features)
}

// packetFields is the catalogue of per-packet fields field_extract knows.
// All requested fields are produced in one pass over the packets (the
// shared-extraction optimization the paper highlights for size+time).
var packetFields = []string{
	"ts", "iat", "len", "payload_len", "ttl", "ip_id", "ip_tos", "proto",
	"src_port", "dst_port", "tcp_flags", "tcp_syn", "tcp_ack", "tcp_fin",
	"tcp_rst", "tcp_psh", "tcp_urg", "tcp_window", "udp_len", "icmp_type",
	"icmp_code", "is_arp", "is_tcp", "is_udp", "is_icmp", "dns_qr", "dns_qd",
	"is_http", "http_is_req", "http_status", "http_path_len", "http_body_len",
	"is_mqtt", "mqtt_type", "mqtt_qos", "mqtt_topic_len",
	"src_ip", "dst_ip", "src_mac", "dst_mac",
}

// PacketFields returns the supported field names (for documentation and
// template validation).
func PacketFields() []string { return append([]string(nil), packetFields...) }

// feCarry is field_extract's cross-chunk fold state: the previous
// packet's timestamp, so iat stays exact across a chunk boundary.
type feCarry struct {
	prevTs float64
	seen   bool
}

func opFieldExtract(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	fields := p.strList("fields")
	if len(fields) == 0 {
		return nil, fmt.Errorf("field_extract: no fields requested")
	}
	known := map[string]bool{}
	for _, f := range packetFields {
		known[f] = true
	}
	for _, f := range fields {
		if !known[f] {
			return nil, fmt.Errorf("field_extract: unknown field %q", f)
		}
	}
	ds := pk.DS
	n := len(ds.Packets)
	fr := newPacketFrame(ds, ctx.streamBase())

	numeric := map[string][]float64{}
	strs := map[string][]string{}
	for _, f := range fields {
		switch f {
		case "src_ip", "dst_ip", "src_mac", "dst_mac":
			strs[f] = make([]string, n)
		default:
			numeric[f] = make([]float64, n)
		}
	}
	var car feCarry
	if v, ok := ctx.carry(); ok {
		car, _ = v.(feCarry)
	}
	prevTs, seen := car.prevTs, car.seen
	for i, pkt := range ds.Packets {
		t := float64(pkt.Ts.UnixNano()) / 1e9
		for f := range numeric {
			var v float64
			switch f {
			case "ts":
				v = t
			case "iat":
				if seen {
					v = t - prevTs
				}
			case "len":
				v = float64(pkt.WireLen())
			case "payload_len":
				v = float64(len(pkt.Payload))
			case "ttl":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.TTL)
				}
			case "ip_id":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.ID)
				}
			case "ip_tos":
				if pkt.IPv4 != nil {
					v = float64(pkt.IPv4.TOS)
				}
			case "proto":
				v = float64(pkt.Protocol())
			case "src_port":
				v = float64(pkt.SrcPort())
			case "dst_port":
				v = float64(pkt.DstPort())
			case "tcp_flags":
				if pkt.TCP != nil {
					v = float64(pkt.TCP.Flags)
				}
			case "tcp_syn":
				v = flagVal(pkt, netpkt.FlagSYN)
			case "tcp_ack":
				v = flagVal(pkt, netpkt.FlagACK)
			case "tcp_fin":
				v = flagVal(pkt, netpkt.FlagFIN)
			case "tcp_rst":
				v = flagVal(pkt, netpkt.FlagRST)
			case "tcp_psh":
				v = flagVal(pkt, netpkt.FlagPSH)
			case "tcp_urg":
				v = flagVal(pkt, netpkt.FlagURG)
			case "tcp_window":
				if pkt.TCP != nil {
					v = float64(pkt.TCP.Window)
				}
			case "udp_len":
				if pkt.UDP != nil {
					v = float64(pkt.UDP.Length)
				}
			case "icmp_type":
				if pkt.ICMP != nil {
					v = float64(pkt.ICMP.Type)
				}
			case "icmp_code":
				if pkt.ICMP != nil {
					v = float64(pkt.ICMP.Code)
				}
			case "is_arp":
				v = b2f(pkt.ARP != nil)
			case "is_tcp":
				v = b2f(pkt.TCP != nil)
			case "is_udp":
				v = b2f(pkt.UDP != nil)
			case "is_icmp":
				v = b2f(pkt.ICMP != nil)
			case "dns_qr":
				if pkt.DNS != nil && pkt.DNS.QR {
					v = 1
				}
			case "dns_qd":
				if pkt.DNS != nil {
					v = float64(pkt.DNS.QDCount)
				}
			case "is_http":
				v = b2f(pkt.HTTP != nil)
			case "http_is_req":
				if pkt.HTTP != nil && pkt.HTTP.IsRequest {
					v = 1
				}
			case "http_status":
				if pkt.HTTP != nil {
					v = float64(pkt.HTTP.Status)
				}
			case "http_path_len":
				if pkt.HTTP != nil {
					v = float64(len(pkt.HTTP.Path))
				}
			case "http_body_len":
				if pkt.HTTP != nil && pkt.HTTP.ContentLength > 0 {
					v = float64(pkt.HTTP.ContentLength)
				}
			case "is_mqtt":
				v = b2f(pkt.MQTT != nil)
			case "mqtt_type":
				if pkt.MQTT != nil {
					v = float64(pkt.MQTT.Type)
				}
			case "mqtt_qos":
				if pkt.MQTT != nil {
					v = float64(pkt.MQTT.QoS)
				}
			case "mqtt_topic_len":
				if pkt.MQTT != nil {
					v = float64(len(pkt.MQTT.Topic))
				}
			}
			numeric[f][i] = v
		}
		for f := range strs {
			var v string
			switch f {
			case "src_ip":
				if a := pkt.SrcIP(); a.IsValid() {
					v = a.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr2.String() // MAC stands in on 802.11
				}
			case "dst_ip":
				if a := pkt.DstIP(); a.IsValid() {
					v = a.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr1.String()
				}
			case "src_mac":
				if pkt.Eth != nil {
					v = pkt.Eth.Src.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr2.String()
				}
			case "dst_mac":
				if pkt.Eth != nil {
					v = pkt.Eth.Dst.String()
				} else if pkt.Dot11 != nil {
					v = pkt.Dot11.Addr1.String()
				}
			}
			strs[f][i] = v
		}
		prevTs, seen = t, true
	}
	ctx.setCarry(feCarry{prevTs: prevTs, seen: seen})
	// Preserve the requested order.
	for _, f := range fields {
		if col, ok := numeric[f]; ok {
			fr.AddF(f, col)
		} else {
			fr.AddS(f, strs[f])
		}
	}
	return fr, nil
}

func flagVal(p *netpkt.Packet, f uint8) float64 {
	if p.TCP != nil && p.TCP.HasFlag(f) {
		return 1
	}
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// newPacketFrame builds an empty frame with packet-unit metadata and
// labels copied from the dataset. base offsets UnitIdx so chunked runs
// attribute rows to global packet indices (0 on batch runs).
func newPacketFrame(ds *dataset.Labeled, base int) *Frame {
	n := len(ds.Packets)
	fr := NewFrame(n)
	fr.Unit = UnitPacket
	fr.UnitIdx = make([]int, n)
	for i := range fr.UnitIdx {
		fr.UnitIdx[i] = base + i
	}
	fr.Labels = append([]int(nil), ds.Labels...)
	fr.Attacks = append([]string(nil), ds.Attacks...)
	return fr
}

func opNPrint(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	var cfg features.NPrintConfig
	variant := p.str("variant", "all")
	switch variant {
	case "all":
		cfg = features.NPrintAll
	case "tcp_udp_ipv4":
		cfg = features.NPrintTCPUDPIPv4
	case "tcp_udp_ipv4_payload":
		cfg = features.NPrintWithPayload
	case "tcp_icmp_ipv4":
		cfg = features.NPrintTCPICMPIPv4
	default:
		return nil, fmt.Errorf("nprint: unknown variant %q", variant)
	}
	ds := pk.DS
	fr := newPacketFrame(ds, ctx.streamBase())
	w := cfg.Width()
	cols := make([][]float64, w)
	for j := range cols {
		cols[j] = make([]float64, fr.N)
	}
	for i, pkt := range ds.Packets {
		v := cfg.Vector(pkt)
		for j, b := range v {
			cols[j][i] = b
		}
	}
	for j := range cols {
		fr.AddF(fmt.Sprintf("bit_%d", j), cols[j])
	}
	return fr, nil
}

// kitsuneStreams bundles the damped statistics of one grouping key.
type kitsuneStreams struct {
	src, chanl, sock *features.IncStat
	jitter           *features.IncStat
	two              *features.IncStat2D
}

// kitsuneCarry is the op's cross-chunk fold state: every incremental
// statistic is keyed by grouping and decay rate, and damped stats are
// strictly sequential, so chunked execution must resume from the same
// maps batch execution would have at that packet.
type kitsuneCarry struct {
	perLambda []map[string]*kitsuneStreams
	lastSeen  []map[string]float64
}

// kitsune groupings: per-source stream, per-channel (src->dst) stream and
// per-socket (five-tuple) stream, each at several decay rates.
func opKitsuneFeatures(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	lambdas := []float64{1, 0.1, 0.01}
	if ls := p.anyList("lambdas"); ls != nil {
		lambdas = lambdas[:0]
		for _, l := range ls {
			if f, ok := l.(float64); ok {
				lambdas = append(lambdas, f)
			}
		}
	}
	ds := pk.DS
	fr := newPacketFrame(ds, ctx.streamBase())
	nFeat := len(lambdas) * 13
	cols := make([][]float64, nFeat)
	for j := range cols {
		cols[j] = make([]float64, fr.N)
	}
	prev, _ := ctx.carry()
	car, ok := prev.(*kitsuneCarry)
	if !ok {
		car = &kitsuneCarry{
			perLambda: make([]map[string]*kitsuneStreams, len(lambdas)),
			lastSeen:  make([]map[string]float64, len(lambdas)),
		}
		for li := range lambdas {
			car.perLambda[li] = map[string]*kitsuneStreams{}
			car.lastSeen[li] = map[string]float64{}
		}
		ctx.setCarry(car)
	}
	perLambda, lastSeen := car.perLambda, car.lastSeen
	for i, pkt := range ds.Packets {
		t := float64(pkt.Ts.UnixNano()) / 1e9
		size := float64(pkt.WireLen())
		srcKey, chanKey, sockKey := kitsuneKeys(pkt)
		for li, lam := range lambdas {
			st := perLambda[li][srcKey]
			if st == nil {
				st = &kitsuneStreams{
					src:    features.NewIncStat(lam),
					chanl:  features.NewIncStat(lam),
					sock:   features.NewIncStat(lam),
					jitter: features.NewIncStat(lam),
					two:    features.NewIncStat2D(lam),
				}
				perLambda[li][srcKey] = st
			}
			// Jitter: inter-arrival within the channel.
			if last, ok := lastSeen[li][chanKey]; ok {
				st.jitter.Insert(t-last, t)
			}
			lastSeen[li][chanKey] = t
			st.src.Insert(size, t)
			// Channel/socket stats live in dedicated stream objects keyed
			// by their own keys; reuse the map with prefixed keys.
			cst := perLambda[li]["c|"+chanKey]
			if cst == nil {
				cst = &kitsuneStreams{src: features.NewIncStat(lam), two: features.NewIncStat2D(lam)}
				perLambda[li]["c|"+chanKey] = cst
			}
			cst.src.Insert(size, t)
			cst.two.Insert(size, float64(len(pkt.Payload)), t)
			sst := perLambda[li]["s|"+sockKey]
			if sst == nil {
				sst = &kitsuneStreams{src: features.NewIncStat(lam)}
				perLambda[li]["s|"+sockKey] = sst
			}
			sst.src.Insert(size, t)

			base := li * 13
			cols[base+0][i] = st.src.Weight()
			cols[base+1][i] = st.src.Mean()
			cols[base+2][i] = st.src.Std()
			cols[base+3][i] = cst.src.Weight()
			cols[base+4][i] = cst.src.Mean()
			cols[base+5][i] = cst.src.Std()
			cols[base+6][i] = sst.src.Weight()
			cols[base+7][i] = sst.src.Mean()
			cols[base+8][i] = sst.src.Std()
			cols[base+9][i] = st.jitter.Mean()
			cols[base+10][i] = st.jitter.Std()
			cols[base+11][i] = cst.two.Magnitude()
			cols[base+12][i] = cst.two.Cov()
		}
	}
	names := []string{"srcw", "srcmean", "srcstd", "chw", "chmean", "chstd", "skw", "skmean", "skstd", "jitmean", "jitstd", "mag", "cov"}
	for li, lam := range lambdas {
		for k, nm := range names {
			fr.AddF(fmt.Sprintf("k_%g_%s", lam, nm), cols[li*13+k])
		}
	}
	return fr, nil
}

// kitsuneKeys derives grouping keys, falling back to MACs on 802.11
// (Kitsune is the one algorithm the paper can run on AWID3).
func kitsuneKeys(p *netpkt.Packet) (src, channel, socket string) {
	if a := p.SrcIP(); a.IsValid() {
		src = a.String()
		channel = src + ">" + p.DstIP().String()
		if ft, ok := p.Tuple(); ok {
			socket = ft.String()
		} else {
			socket = channel
		}
		return src, channel, socket
	}
	if p.Dot11 != nil {
		src = p.Dot11.Addr2.String()
		channel = src + ">" + p.Dot11.Addr1.String()
		return src, channel, channel
	}
	if p.Eth != nil {
		src = p.Eth.Src.String()
		channel = src + ">" + p.Eth.Dst.String()
		return src, channel, channel
	}
	return "?", "?", "?"
}

// dot11Carry keeps the per-transmitter damped rate trackers alive
// across chunks so streamed execution matches batch execution.
type dot11Carry struct {
	perTx       map[string]*features.IncStat
	perTxDeauth map[string]*features.IncStat
}

func opDot11Features(ctx *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	ds := pk.DS
	fr := newPacketFrame(ds, ctx.streamBase())
	n := fr.N
	lam := p.f64("lambda", 0.5)
	subtype := make([]float64, n)
	mgmt := make([]float64, n)
	retry := make([]float64, n)
	duration := make([]float64, n)
	rate := make([]float64, n)
	deauthRate := make([]float64, n)
	plen := make([]float64, n)
	prev, _ := ctx.carry()
	car, ok := prev.(*dot11Carry)
	if !ok {
		car = &dot11Carry{perTx: map[string]*features.IncStat{}, perTxDeauth: map[string]*features.IncStat{}}
		ctx.setCarry(car)
	}
	perTx, perTxDeauth := car.perTx, car.perTxDeauth
	for i, pkt := range ds.Packets {
		d := pkt.Dot11
		if d == nil {
			continue
		}
		t := float64(pkt.Ts.UnixNano()) / 1e9
		subtype[i] = float64(d.Subtype)
		mgmt[i] = b2f(d.Subtype.IsManagement())
		retry[i] = b2f(d.Retry)
		duration[i] = float64(d.Duration)
		plen[i] = float64(len(pkt.Payload))
		key := d.Addr2.String()
		st := perTx[key]
		if st == nil {
			st = features.NewIncStat(lam)
			perTx[key] = st
		}
		st.Insert(1, t)
		rate[i] = st.Weight()
		dst := perTxDeauth[key]
		if dst == nil {
			dst = features.NewIncStat(lam)
			perTxDeauth[key] = dst
		}
		if d.Subtype == netpkt.Dot11Deauth || d.Subtype == netpkt.Dot11Disassoc {
			dst.Insert(1, t)
		}
		deauthRate[i] = dst.Weight()
	}
	fr.AddF("subtype", subtype)
	fr.AddF("is_mgmt", mgmt)
	fr.AddF("retry", retry)
	fr.AddF("duration", duration)
	fr.AddF("tx_rate", rate)
	fr.AddF("tx_deauth_rate", deauthRate)
	fr.AddF("payload_len", plen)
	return fr, nil
}
