package core
