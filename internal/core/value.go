// Package core implements the Lumen development framework: the paper's
// primary contribution. An anomaly-detection algorithm is expressed as a
// pipeline of configurable operations (field extraction, grouping, time
// slicing, aggregation, normalization, models, training) connected through
// named values — exactly the template structure of the paper's Fig. 4. The
// execution engine type-checks a pipeline before running it, profiles the
// time and allocation cost of every operation, and frees intermediate
// values that no later operation references.
package core

import (
	"fmt"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
)

// Kind identifies the type of a pipeline value; the engine type-checks
// op inputs against kinds before execution.
type Kind int

// Value kinds.
const (
	KindPackets Kind = iota
	KindFlows
	KindFrame
	KindGrouped
	KindModel
	KindTrained
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPackets:
		return "packets"
	case KindFlows:
		return "flows"
	case KindFrame:
		return "frame"
	case KindGrouped:
		return "grouped"
	case KindModel:
		return "model"
	case KindTrained:
		return "trained"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is anything an operation can produce or consume.
type Value interface{ Kind() Kind }

// Packets wraps a labelled dataset as a pipeline input. On the lazy
// decode fast path Views carries the chunk's packets as zero-copy
// PacketViews instead of DS.Packets (which is then empty); DS still
// supplies labels, attacks and stream metadata. Ops that support the
// columnar path check Views first; everything else sees the classic
// eager representation.
type Packets struct {
	DS *dataset.Labeled
	// Views is non-nil only on view-mode streaming chunks.
	Views []netpkt.PacketView
}

// Kind implements Value.
func (Packets) Kind() Kind { return KindPackets }

// Len returns the packet count in either representation.
func (p Packets) Len() int {
	if p.Views != nil {
		return len(p.Views)
	}
	if p.DS == nil {
		return 0
	}
	return len(p.DS.Packets)
}

// Flows is the output of flow assembly: either uniflows or connections,
// with the source dataset retained for label and attack attribution.
type Flows struct {
	DS          *dataset.Labeled
	Granularity dataset.Granularity
	Unis        []*flow.Uniflow    // set when Granularity == UniflowG
	Conns       []*flow.Connection // set when Granularity == ConnectionG
	// Sums, when non-nil, carries per-packet summaries indexed like
	// DS.Packets would be; set by streaming runs on the lazy view fast
	// path, where the decoded packet set is never materialized. Feature
	// computation reads per-packet fields through summary().
	Sums []netpkt.PacketSummary
}

// summary returns the flow-assembly fields of member packet pi from
// whichever representation the value carries.
func (f *Flows) summary(pi int) netpkt.PacketSummary {
	if f.Sums != nil {
		return f.Sums[pi]
	}
	return f.DS.Packets[pi].Summary()
}

// Kind implements Value.
func (Flows) Kind() Kind { return KindFlows }

// Len returns the number of flows.
func (f *Flows) Len() int {
	if f.Granularity == dataset.UniflowG {
		return len(f.Unis)
	}
	return len(f.Conns)
}

// PacketIdx returns the packet indices of flow i.
func (f *Flows) PacketIdx(i int) []int {
	if f.Granularity == dataset.UniflowG {
		return f.Unis[i].PacketIdx
	}
	return f.Conns[i].Packets()
}

// ModelSpec is an unfitted model configuration produced by the "model"
// operation.
type ModelSpec struct {
	Type   string
	Params map[string]any
}

// Kind implements Value.
func (ModelSpec) Kind() Kind { return KindModel }

// Trained is a fitted model, the output of the "train" operation.
type Trained struct {
	Spec ModelSpec
	Clf  mlkit.Classifier
}

// Kind implements Value.
func (Trained) Kind() Kind { return KindTrained }
