package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
)

func init() {
	register("flow_assemble",
		"group packets into uniflows or bidirectional connections (Zeek-style, idle-timeout split)",
		opSig{in: []Kind{KindPackets}, out: KindFlows}, opFlowAssemble)
	register("flow_features",
		"compute per-flow features (sizes, inter-arrivals, flags, states, services, first-N stats)",
		opSig{in: []Kind{KindFlows}, out: KindFrame}, opFlowFeatures)
}

// flowParams decodes flow_assemble's parameters; shared between the
// batch op and the streaming flow sink so both split flows identically.
func flowParams(p params) (flow.Options, dataset.Granularity, error) {
	opts := flow.Options{}
	if to := p.f64("idle_timeout", 0); to > 0 {
		opts.IdleTimeout = time.Duration(to * float64(time.Second))
	}
	switch g := p.str("granularity", "connection"); g {
	case "uniflow":
		return opts, dataset.UniflowG, nil
	case "connection":
		return opts, dataset.ConnectionG, nil
	default:
		return opts, 0, fmt.Errorf("flow_assemble: unknown granularity %q", g)
	}
}

func opFlowAssemble(_ *opCtx, in []Value, p params) (Value, error) {
	pk, err := asPackets(in[0])
	if err != nil {
		return nil, err
	}
	opts, gran, err := flowParams(p)
	if err != nil {
		return nil, err
	}
	out := &Flows{DS: pk.DS, Granularity: gran}
	if gran == dataset.UniflowG {
		out.Unis = flow.Uniflows(pk.DS.Packets, opts)
	} else {
		out.Conns = flow.Connections(pk.DS.Packets, opts)
	}
	return out, nil
}

// flowFeatureNames is the per-flow feature catalogue.
var flowFeatureNames = []string{
	"duration", "pkt_count", "byte_count", "payload_bytes",
	"mean_len", "std_len", "min_len", "max_len",
	"mean_iat", "std_iat", "pps", "bps",
	"syn_count", "ack_count", "fin_count", "rst_count", "psh_count", "urg_count",
	"flag_change_rate",
	"src_port", "dst_port", "proto", "dst_port_wellknown",
	"orig_bytes", "resp_bytes", "orig_pkts", "resp_pkts", "byte_ratio",
	"state_s0", "state_sf", "state_rej", "state_rst", "state_oth",
	"svc_http", "svc_tls", "svc_dns", "svc_telnet", "svc_ssh", "svc_mqtt", "svc_ntp", "svc_other",
	"first_n_mean_len", "first_n_std_len", "first_n_mean_iat", "first_n_std_iat",
}

// FlowFeatures returns the supported per-flow feature names.
func FlowFeatures() []string { return append([]string(nil), flowFeatureNames...) }

func opFlowFeatures(_ *opCtx, in []Value, p params) (Value, error) {
	fl, ok := in[0].(*Flows)
	if !ok {
		return nil, fmt.Errorf("flow_features: expected flows, got %v", in[0].Kind())
	}
	want := p.strList("features")
	if len(want) == 0 {
		want = flowFeatureNames
	}
	known := map[string]bool{}
	for _, f := range flowFeatureNames {
		known[f] = true
	}
	for _, f := range want {
		if !known[f] {
			return nil, fmt.Errorf("flow_features: unknown feature %q", f)
		}
	}
	firstN := p.i("first_n", 100)

	n := fl.Len()
	fr := NewFrame(n)
	fr.Unit = UnitFlow
	fr.UnitIdx = make([]int, n)
	fr.Labels = make([]int, n)
	fr.Attacks = make([]string, n)
	cols := map[string][]float64{}
	for _, f := range want {
		cols[f] = make([]float64, n)
	}
	// Per-flow vectors are independent: compute them on a worker pool
	// (the map-reduce parallelism the paper gets from Ray).
	ds := fl.DS
	workers := runtime.GOMAXPROCS(0)
	if n < 256 || workers < 2 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fr.UnitIdx[i] = i
				idx := fl.PacketIdx(i)
				fr.Labels[i], fr.Attacks[i] = flowLabel(ds, idx)
				fv := computeFlowVector(fl, i, idx, firstN)
				for name, col := range cols {
					col[i] = fv[name]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, f := range want {
		fr.AddF(f, cols[f])
	}
	return fr, nil
}

// flowLabel derives a flow's ground truth: malicious if any member packet
// is (datasets label whole flows, so members agree by construction), with
// the attack name taken from the first malicious packet. Unlabeled
// sources (pcap captures, view-path runs) yield benign.
func flowLabel(ds *dataset.Labeled, idx []int) (int, string) {
	for _, pi := range idx {
		if pi < len(ds.Labels) && ds.Labels[pi] != 0 {
			if pi < len(ds.Attacks) {
				return 1, ds.Attacks[pi]
			}
			return 1, ""
		}
	}
	return 0, ""
}

// computeFlowVector builds every catalogue feature for flow i. Per-packet
// fields are read through Flows.summary so the same code serves decoded
// packets and the view path's retained summaries.
func computeFlowVector(fl *Flows, i int, idx []int, firstN int) map[string]float64 {
	out := make(map[string]float64, len(flowFeatureNames))
	if len(idx) == 0 {
		return out
	}
	lens := make([]float64, 0, len(idx))
	iats := make([]float64, 0, len(idx))
	var prevT float64
	var payload float64
	var flags [6]float64
	var flagChanges int
	var prevFlags uint8
	first := fl.summary(idx[0])
	last := first
	for k, pi := range idx {
		s := fl.summary(pi)
		last = s
		t := float64(s.Ts.UnixNano()) / 1e9
		l := float64(s.Wire)
		lens = append(lens, l)
		if k > 0 {
			iats = append(iats, t-prevT)
		}
		prevT = t
		payload += float64(s.PayloadLen)
		if s.HasTCP {
			fs := s.TCPFlags
			for b := 0; b < 6; b++ {
				if fs&(1<<uint(b)) != 0 {
					flags[b]++
				}
			}
			if k > 0 && fs != prevFlags {
				flagChanges++
			}
			prevFlags = fs
		}
	}
	dur := float64(last.Ts.Sub(first.Ts)) / float64(time.Second)
	out["duration"] = dur
	out["pkt_count"] = float64(len(idx))
	var bytes float64
	for _, l := range lens {
		bytes += l
	}
	out["byte_count"] = bytes
	out["payload_bytes"] = payload
	out["mean_len"] = mlkit.Mean(lens)
	out["std_len"] = math.Sqrt(mlkit.Variance(lens))
	mn, mx := lens[0], lens[0]
	for _, l := range lens {
		if l < mn {
			mn = l
		}
		if l > mx {
			mx = l
		}
	}
	out["min_len"] = mn
	out["max_len"] = mx
	out["mean_iat"] = mlkit.Mean(iats)
	out["std_iat"] = math.Sqrt(mlkit.Variance(iats))
	if dur > 0 {
		out["pps"] = float64(len(idx)) / dur
		out["bps"] = bytes / dur
	}
	out["syn_count"] = flags[1]
	out["ack_count"] = flags[4]
	out["fin_count"] = flags[0]
	out["rst_count"] = flags[2]
	out["psh_count"] = flags[3]
	out["urg_count"] = flags[5]
	if len(idx) > 1 {
		out["flag_change_rate"] = float64(flagChanges) / float64(len(idx)-1)
	}

	var tuple netpkt.FiveTuple
	if fl.Granularity == dataset.UniflowG {
		tuple = fl.Unis[i].Tuple
	} else {
		c := fl.Conns[i]
		tuple = c.Tuple
		out["orig_bytes"] = float64(c.OrigBytes)
		out["resp_bytes"] = float64(c.RespBytes)
		out["orig_pkts"] = float64(len(c.OrigIdx))
		out["resp_pkts"] = float64(len(c.RespIdx))
		if c.RespBytes > 0 {
			out["byte_ratio"] = float64(c.OrigBytes) / float64(c.RespBytes)
		} else {
			out["byte_ratio"] = float64(c.OrigBytes)
		}
		switch c.State {
		case flow.StateS0:
			out["state_s0"] = 1
		case flow.StateSF:
			out["state_sf"] = 1
		case flow.StateREJ:
			out["state_rej"] = 1
		case flow.StateRSTO, flow.StateRSTR:
			out["state_rst"] = 1
		default:
			out["state_oth"] = 1
		}
	}
	out["src_port"] = float64(tuple.SrcPort)
	out["dst_port"] = float64(tuple.DstPort)
	out["proto"] = float64(tuple.Proto)
	if tuple.DstPort < 1024 {
		out["dst_port_wellknown"] = 1
	}
	switch tuple.DstPort {
	case 80, 8080:
		out["svc_http"] = 1
	case 443, 8443:
		out["svc_tls"] = 1
	case 53:
		out["svc_dns"] = 1
	case 23, 2323:
		out["svc_telnet"] = 1
	case 22:
		out["svc_ssh"] = 1
	case 1883, 8883:
		out["svc_mqtt"] = 1
	case 123:
		out["svc_ntp"] = 1
	default:
		out["svc_other"] = 1
	}

	// First-N-packet statistics (the OCSVM A07 feature design: lengths
	// and inter-arrival times of the first hundred packets).
	limit := firstN
	if limit > len(lens) {
		limit = len(lens)
	}
	fl1 := lens[:limit]
	out["first_n_mean_len"] = mlkit.Mean(fl1)
	out["first_n_std_len"] = math.Sqrt(mlkit.Variance(fl1))
	li := limit - 1
	if li > len(iats) {
		li = len(iats)
	}
	if li > 0 {
		fi := iats[:li]
		out["first_n_mean_iat"] = mlkit.Mean(fi)
		out["first_n_std_iat"] = math.Sqrt(mlkit.Variance(fi))
	}
	return out
}
