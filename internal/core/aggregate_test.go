package core

import (
	"math"
	"strings"
	"testing"
)

// aggFrame builds a one-group frame over the given values with ts 0..n-1.
func aggFrame(vals []float64) *Grouped {
	f := NewFrame(len(vals))
	ts := make([]float64, len(vals))
	keys := make([]string, len(vals))
	for i := range vals {
		ts[i] = float64(i)
		keys[i] = "g"
	}
	f.AddS("k", keys)
	f.AddF("ts", ts)
	f.AddF("v", vals)
	g, _ := groupRows(f, []string{"k"})
	return g
}

func aggOne(t *testing.T, g *Grouped, fn string) float64 {
	t.Helper()
	out, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v", "fn": fn}},
	})
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	return out.(*Frame).Cols[0].F[0]
}

func TestAggregateFunctions(t *testing.T) {
	g := aggFrame([]float64{4, 1, 3, 2, 2})
	cases := map[string]float64{
		"mean":     2.4,
		"median":   2,
		"min":      1,
		"max":      4,
		"sum":      12,
		"count":    5,
		"first":    4,
		"last":     2,
		"distinct": 4,
		"rate":     5.0 / 4.0, // 5 events over a 4-second span
		"var":      1.04,
	}
	for fn, want := range cases {
		if got := aggOne(t, g, fn); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", fn, got, want)
		}
	}
	if got := aggOne(t, g, "std"); math.Abs(got-math.Sqrt(1.04)) > 1e-9 {
		t.Errorf("std = %v", got)
	}
	// bandwidth: sum of v per second of span.
	if got := aggOne(t, g, "bandwidth"); math.Abs(got-3) > 1e-9 {
		t.Errorf("bandwidth = %v, want 3", got)
	}
	// entropy over {4,1,3,2,2}: four symbols, one repeated twice.
	wantH := -(0.4*math.Log2(0.4) + 3*0.2*math.Log2(0.2))
	if got := aggOne(t, g, "entropy"); math.Abs(got-wantH) > 1e-9 {
		t.Errorf("entropy = %v, want %v", got, wantH)
	}
}

func TestAggregateErrors(t *testing.T) {
	g := aggFrame([]float64{1, 2})
	if _, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v", "fn": "frobnicate"}},
	}); err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown fn error = %v", err)
	}
	if _, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "missing", "fn": "mean"}},
	}); err == nil {
		t.Error("missing column should error")
	}
	if _, err := opApplyAggregates(nil, []Value{g}, params{}); err == nil {
		t.Error("missing list should error")
	}
	if _, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v"}},
	}); err == nil {
		t.Error("entry without fn should error")
	}
	// String-column aggregate restrictions.
	if _, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "k", "fn": "mean"}},
	}); err == nil {
		t.Error("mean over a string column should error")
	}
}

func TestStringAggregates(t *testing.T) {
	f := NewFrame(4)
	f.AddS("k", []string{"g", "g", "g", "g"})
	f.AddS("s", []string{"a", "b", "a", "c"})
	g, _ := groupRows(f, []string{"k"})
	out, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{
			map[string]any{"col": "s", "fn": "distinct"},
			map[string]any{"col": "s", "fn": "count"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	af := out.(*Frame)
	if af.Col("s_distinct").F[0] != 3 || af.Col("s_count").F[0] != 4 {
		t.Errorf("string aggregates = %v/%v", af.Col("s_distinct").F[0], af.Col("s_count").F[0])
	}
}

func TestRateWithoutTsErrors(t *testing.T) {
	f := NewFrame(2)
	f.AddS("k", []string{"g", "g"})
	f.AddF("v", []float64{1, 2})
	g, _ := groupRows(f, []string{"k"})
	if _, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v", "fn": "rate"}},
	}); err == nil {
		t.Error("rate without ts column should error")
	}
}

func TestFilterStringAndNumericPaths(t *testing.T) {
	f := NewFrame(4)
	f.AddF("v", []float64{1, 5, 10, 3})
	f.AddS("s", []string{"a", "b", "a", "c"})
	out, err := opFilter(nil, []Value{f}, params{"col": "v", "op": ">=", "value": 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if out.(*Frame).N != 2 {
		t.Errorf("numeric filter kept %d rows, want 2", out.(*Frame).N)
	}
	out2, err := opFilter(nil, []Value{f}, params{"col": "s", "op": "==", "value": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if out2.(*Frame).N != 2 {
		t.Errorf("string filter kept %d rows, want 2", out2.(*Frame).N)
	}
	if _, err := opFilter(nil, []Value{f}, params{"col": "s", "op": ">", "value": "a"}); err == nil {
		t.Error("ordered comparison on string column should error")
	}
	if _, err := opFilter(nil, []Value{f}, params{"col": "nope"}); err == nil {
		t.Error("missing column should error")
	}
}

func TestConcatColsMismatch(t *testing.T) {
	a := NewFrame(2)
	a.AddF("x", []float64{1, 2})
	b := NewFrame(3)
	b.AddF("y", []float64{1, 2, 3})
	if _, err := opConcatCols(nil, []Value{a, b}, nil); err == nil {
		t.Error("row-count mismatch should error")
	}
	c := NewFrame(2)
	c.AddF("x", []float64{9, 9}) // duplicate name
	out, err := opConcatCols(nil, []Value{a, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := out.(*Frame).Names()
	if names[0] == names[1] {
		t.Errorf("duplicate names not disambiguated: %v", names)
	}
}

func TestUniflowPipelineEndToEnd(t *testing.T) {
	p := &Pipeline{
		Name:        "uniflow-rf",
		Granularity: "uniflow",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "uniflow"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X", Params: map[string]any{
				"features": []string{"duration", "pkt_count", "mean_len", "pps", "dst_port", "syn_count"},
			}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "X"}, Output: "t"},
		},
	}
	eng := NewEngine(p)
	ds := smallDS(t, "F1")
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unit != UnitFlow || len(res.Pred) == 0 {
		t.Fatalf("uniflow eval: unit=%v n=%d", res.Unit, len(res.Pred))
	}
}

func TestEngineProfileRecordsAllocs(t *testing.T) {
	p, _ := ParsePipeline([]byte(fig4Template))
	eng := NewEngine(p)
	eng.Profiling = true
	if err := eng.Train(smallDS(t, "P0")); err != nil {
		t.Fatal(err)
	}
	var anyAllocs bool
	for _, st := range eng.Profile {
		if st.Allocs > 0 {
			anyAllocs = true
		}
	}
	if !anyAllocs {
		t.Error("profile recorded zero allocations for every op")
	}
}

func TestEngineProfilingOffRecordsNoAllocs(t *testing.T) {
	p, _ := ParsePipeline([]byte(fig4Template))
	eng := NewEngine(p) // Profiling defaults to off
	if err := eng.Train(smallDS(t, "P0")); err != nil {
		t.Fatal(err)
	}
	if len(eng.Profile) != len(p.Ops) {
		t.Fatalf("profile has %d entries, want %d", len(eng.Profile), len(p.Ops))
	}
	for _, st := range eng.Profile {
		if st.Allocs != 0 {
			t.Errorf("op %s recorded %d alloc bytes with profiling off", st.Func, st.Allocs)
		}
		if st.Wall < 0 {
			t.Errorf("op %s has negative wall time", st.Func)
		}
	}
}
