package core

import (
	"sync"
	"time"

	"lumen/internal/obs"
)

// epochObserver adapts mlkit's per-epoch fit callbacks to the engine's
// observability sinks: each reported epoch becomes a retroactive child
// span of the train op plus fit metrics (epoch counter, epoch-duration
// histogram, last-loss gauge). A fresh observer is attached per train op
// right before Fit, so prev starts at the fit boundary; ensemble members
// train sequentially, which keeps the single prev timestamp a valid
// epoch start for whichever model reports next.
type epochObserver struct {
	span    *obs.Span
	metrics *obs.Metrics

	mu   sync.Mutex
	prev time.Time
}

func newEpochObserver(span *obs.Span, m *obs.Metrics) *epochObserver {
	return &epochObserver{span: span, metrics: m, prev: time.Now()}
}

// FitEpoch implements mlkit.FitObserver.
func (o *epochObserver) FitEpoch(model string, epoch int, loss float64) {
	now := time.Now()
	o.mu.Lock()
	start := o.prev
	o.prev = now
	o.mu.Unlock()
	if o.span != nil {
		o.span.Emit("epoch:"+model, start, now, map[string]any{
			"model": model, "epoch": epoch, "loss": loss,
		})
	}
	if o.metrics != nil {
		o.metrics.Counter("lumen_fit_epochs_total",
			"Completed model-fitting epochs.", "model", model).Inc()
		o.metrics.Histogram("lumen_fit_epoch_seconds",
			"Wall time of each model-fitting epoch.", nil, "model", model).
			Observe(now.Sub(start).Seconds())
		o.metrics.Gauge("lumen_fit_loss",
			"Training loss reported by the most recent fitting epoch.",
			"model", model).Set(loss)
	}
}
