package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/obs"
)

// StreamStats describes the most recent RunStream execution of an
// engine: how it ran and where its time and memory went.
type StreamStats struct {
	// Chunks is the number of chunks pulled from the source.
	Chunks int
	// Pipelined reports whether the staged pipeline ran (false: the
	// sequential loop). Depth, Workers and Shards are its effective
	// shape; Shards is 1 when the sink ran unsharded (including plans
	// with nothing flow-partitionable, where a requested shard count is
	// ignored).
	Pipelined bool
	Depth     int
	Workers   int
	Shards    int
	// PeakInFlightBytes is the high-water mark of wire bytes decoded but
	// not yet released by the sink — the pipeline's actual buffering,
	// bounded by O(Depth + Workers) chunks. Zero on sequential runs.
	PeakInFlightBytes int64
	// SourceStallNS / OpsStallNS / SinkStallNS are the cumulative times
	// each stage spent blocked on its neighbours: the source handing
	// chunks to a full queue, the op workers waiting for decode, and the
	// sink waiting for the next processed chunk.
	SourceStallNS int64
	OpsStallNS    int64
	SinkStallNS   int64
	// HWMBytes is the live-heap high-water mark sampled at chunk
	// boundaries (the lumen_stream_hwm_bytes gauge).
	HWMBytes uint64
	// LazyViews reports that the pass ran on the zero-copy decode fast
	// path: the source emitted lazy PacketView chunks and the packet ops
	// filled frame columns straight from them.
	LazyViews bool
	// DriftEvents counts the detections raised by drift_detect ops over
	// the whole pass.
	DriftEvents int
}

// runPipelined executes one RunStream pass as a staged, bounded-channel
// pipeline:
//
//	source (goroutine)      decode chunks from the dataset.Source (Pump)
//	   │  chan, cap = depth
//	ops (N worker goroutines)  order-free row-local ops per chunk
//	   │  chan, cap = depth + workers
//	sink (this goroutine)   reorder by sequence, then carry-state ops,
//	                        model scoring, flow sinks, accumulation
//
// Chunks fan out to the workers and are recombined in stream order by
// the sink's reorder buffer, so results are bit-identical to the
// sequential loop (and to batch). Both channels are depth-bounded and
// the reorder buffer cannot exceed the in-flight chunk count, so peak
// memory stays O((depth + workers) × chunk).
func (r *streamExec) runPipelined(src dataset.Source, cfg StreamConfig) (*EvalResult, error) {
	e := r.e
	depth, workers := cfg.depth(), cfg.workers()
	shards := cfg.shards()
	if shards > 1 && r.pl.nLane == 0 && len(r.sinks) == 0 {
		// Nothing in this plan partitions by flow: no flow sinks and no
		// lane-eligible scoring op. Sharding would only add hand-off
		// overhead, so run the sink unsharded.
		shards = 1
	}
	recycle := r.recycler(src) != nil
	e.LastStream = StreamStats{Pipelined: true, Depth: depth, Workers: workers, Shards: shards}

	pump := dataset.StartPump(src, dataset.PumpConfig{
		MaxRows:  cfg.ChunkRows,
		MaxBytes: cfg.ChunkBytes,
		Depth:    depth,
		Recycle:  recycle,
	})

	// Stage spans render on their own tracks, next to the caller's:
	// caller track + 1 is the source, + 2 + w each op worker; the sink
	// stays on the caller's track (it is the caller's goroutine).
	var srcSpan, sinkSpan *obs.Span
	wSpans := make([]*obs.Span, workers)
	laneTID := 0
	if e.Span != nil {
		t := e.Span.TID()
		srcSpan = e.Span.ChildOn("stage:source", t+1)
		for w := range wSpans {
			wSpans[w] = e.Span.ChildOn("stage:ops", t+2+w)
		}
		sinkSpan = e.Span.Child("stage:sink")
		laneTID = t + 2 + workers
	}

	jobs := make(chan *chunkJob, depth+workers)
	done := make(chan struct{}) // closed by the sink on first error
	var sh *shardRun
	if shards > 1 {
		sh = r.startShards(shards, depth+workers, pump, done, sinkSpan, laneTID)
	}
	var opsStallNS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stage *obs.Span) {
			defer wg.Done()
			for {
				t0 := time.Now()
				nc, ok := <-pump.C
				if !ok {
					// The final blocked receive only observed the close —
					// no chunk was delayed, so it is not stall time.
					return
				}
				opsStallNS.Add(time.Since(t0).Nanoseconds())
				job := r.newJob(nc)
				var cs *obs.Span
				if stage != nil {
					cs = stage.Child("chunk")
					cs.Set("base", nc.Base)
					cs.Set("rows", nc.Len())
				}
				r.runOps(job, r.pl.worker, &job.wsc, cs)
				if cs != nil {
					cs.End()
				}
				select {
				case jobs <- job:
				case <-done:
					pump.Done(job.nc)
					putChunkJob(job)
					return
				}
			}
		}(wSpans[w])
	}
	go func() {
		wg.Wait()
		close(jobs)
	}()

	// Queue-depth gauges are sampled once per absorbed chunk.
	var gDecoded, gProcessed *obs.Gauge
	if e.Metrics != nil {
		const help = "Chunks queued between pipeline stages of the most recent streaming run."
		gDecoded = e.Metrics.Gauge("lumen_stage_queue_depth", help, "queue", "decoded")
		gProcessed = e.Metrics.Gauge("lumen_stage_queue_depth", help, "queue", "processed")
	}

	var firstErr error
	var sinkStallNS int64
	pending := map[int]*chunkJob{}
	next := 0
	for {
		t0 := time.Now()
		job, ok := <-jobs
		if !ok {
			// Observing the close is not a stalled chunk hand-off.
			break
		}
		sinkStallNS += time.Since(t0).Nanoseconds()
		pending[job.nc.Seq] = job
		for {
			j, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			next++
			if gDecoded != nil {
				gDecoded.Set(float64(len(pump.C)))
				gProcessed.Set(float64(len(jobs)))
			}
			if sh != nil {
				// Sharded sink: the router hands every in-order job to
				// the lanes and merger, which own error unwind and
				// release.
				sh.route(j)
				continue
			}
			if firstErr == nil {
				if err := r.sinkChunk(j, sinkSpan); err != nil {
					// First in-order failure: identical to where the
					// sequential loop would have stopped. Unwind the
					// upstream stages; the loop keeps draining so no
					// worker stays blocked on a full jobs channel.
					firstErr = err
					pump.Stop()
					close(done)
				}
			}
			pump.Done(j.nc)
			putChunkJob(j)
		}
	}
	// Jobs whose predecessors never arrived (workers unwound early).
	// They were never routed to any lane, so direct release is safe in
	// both sink modes.
	for _, j := range pending {
		pump.Done(j.nc)
		putChunkJob(j)
	}
	if sh != nil {
		firstErr = sh.close()
	}
	// On an error unwind some workers may have exited through the done
	// branch with chunks still queued; release them so the pump's source
	// goroutine can finish (and close pump.C, which Err() requires).
	for nc := range pump.C {
		pump.Done(nc)
	}

	ps := pump.Stats()
	if e.Span != nil {
		srcSpan.Set("chunks", ps.Chunks)
		srcSpan.Set("stall_ns", ps.StallNS)
		srcSpan.Set("peak_inflight_bytes", ps.PeakInFlightBytes)
		srcSpan.End()
		for _, s := range wSpans {
			s.End()
		}
		sinkSpan.Set("stall_ns", sinkStallNS)
		sinkSpan.End()
	}
	e.LastStream.PeakInFlightBytes = ps.PeakInFlightBytes
	e.LastStream.SourceStallNS = ps.StallNS
	e.LastStream.OpsStallNS = opsStallNS.Load()
	e.LastStream.SinkStallNS = sinkStallNS
	if e.Metrics != nil {
		const help = "Cumulative seconds each pipeline stage of the most recent streaming run spent blocked on its neighbours."
		e.Metrics.Gauge("lumen_stage_stall_seconds", help, "stage", "source").Set(float64(ps.StallNS) / 1e9)
		e.Metrics.Gauge("lumen_stage_stall_seconds", help, "stage", "ops").Set(float64(opsStallNS.Load()) / 1e9)
		e.Metrics.Gauge("lumen_stage_stall_seconds", help, "stage", "sink").Set(float64(sinkStallNS) / 1e9)
		if sh != nil {
			e.Metrics.Gauge("lumen_stage_stall_seconds", help, "stage", "merge").Set(float64(sh.mergeStallNS) / 1e9)
			for _, ln := range sh.lanes {
				lbl := strconv.Itoa(ln.k)
				e.Metrics.Gauge("lumen_shard_packets", "Packets routed to each flow-hash shard lane of the most recent streaming run.", "shard", lbl).Set(float64(ln.packets))
				e.Metrics.Gauge("lumen_shard_rows", "Feature rows scored by each flow-hash shard lane of the most recent streaming run.", "shard", lbl).Set(float64(ln.rows))
				e.Metrics.Gauge("lumen_shard_stall_seconds", "Cumulative seconds each shard lane of the most recent streaming run spent waiting for routed chunks.", "shard", lbl).Set(float64(ln.stallNS) / 1e9)
			}
		}
	}

	// Both unwind paths can carry an error: the sink hitting an op error
	// in order, and the pump's source failing concurrently. Surfacing only
	// the sink's used to silently drop a decode failure.
	srcErr := pump.Err()
	if srcErr != nil {
		srcErr = fmt.Errorf("core: packet source: %w", srcErr)
	}
	if firstErr != nil {
		if srcErr != nil {
			return nil, errors.Join(firstErr, srcErr)
		}
		return nil, firstErr
	}
	if srcErr != nil {
		return nil, srcErr
	}
	return r.finish()
}

// sinkChunk runs one in-order job through the sink stage: flow sinks,
// the ordered streamed ops (with the shared cross-chunk carry), then
// absorption into the run.
func (r *streamExec) sinkChunk(j *chunkJob, stage *obs.Span) error {
	if j.err == nil && (r.pl.nOrdered > 0 || len(r.sinks) > 0) {
		var cs *obs.Span
		if stage != nil {
			cs = stage.Child("chunk")
			cs.Set("base", j.nc.Base)
			cs.Set("rows", j.nc.Len())
		}
		r.feedSinks(j)
		r.runOps(j, r.pl.ordered, r.sc, cs)
		if cs != nil {
			cs.End()
		}
	}
	return r.absorb(j)
}
