//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// regression thresholds are skipped under it because sync.Pool drops
// Puts at random in race mode.
const raceEnabled = true
