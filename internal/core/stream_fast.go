package core

// stream_fast.go is the plan-time side of the zero-copy decode fast
// path. Before a RunStream pass pulls its first chunk, viewHint walks
// the planned ops and derives the decode depth the pipeline will
// actually touch; if every consumer of the raw chunk is view-aware, the
// source (when it implements dataset.ViewSource — PcapSource) is
// switched to emitting lazy netpkt.PacketView chunks predecoded exactly
// that deep. Ops then fill Frame columns straight from the views, and
// layers no field needs are never parsed at all. See DESIGN.md "Decode
// fast path".

import (
	"strings"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// viewHint decides whether the planned stream can run on lazy
// PacketView chunks and, if so, how deep the source should predecode
// them. The fast path requires every reader of the raw chunk to be a
// streamed, view-aware packet op or a flow sink (which consumes
// PacketSummary values the run retains for flush); anything else — a
// deferred op needing the full decoded packet set, or an op without a
// columnar implementation — keeps the classic eager *Packet chunks.
func (e *Engine) viewHint(pl *streamPlan) (netpkt.DecodeHint, bool) {
	var hint netpkt.DecodeHint
	if pl.needPackets && !pl.flowOnly {
		return hint, false
	}
	for i, op := range e.P.Ops {
		readsInput := false
		for _, in := range op.Input {
			if in == InputName {
				readsInput = true
			}
		}
		if !readsInput {
			continue
		}
		if pl.flowSink[i] {
			// Flow sinks consume PacketSummary values; building the
			// five-tuple needs the L2-L4 headers.
			hint.Headers = true
			continue
		}
		if !pl.streamed[i] {
			// planStream sets needPackets for deferred readers of the
			// input, so this is unreachable; keep the guard defensive.
			return netpkt.DecodeHint{}, false
		}
		switch op.Func {
		case "field_extract":
			for _, f := range params(op.Params).strList("fields") {
				switch {
				case f == "ts" || f == "iat" || f == "len":
					// Metadata-only: needs no decoding at all.
				case f == "dns_qr" || f == "dns_qd":
					hint.Headers = true
					hint.Apps |= netpkt.AppDNS
				case f == "is_http" || strings.HasPrefix(f, "http_"):
					hint.Headers = true
					hint.Apps |= netpkt.AppHTTP
				case f == "is_mqtt" || strings.HasPrefix(f, "mqtt_"):
					hint.Headers = true
					hint.Apps |= netpkt.AppMQTT
				default:
					hint.Headers = true
				}
			}
		case "nprint", "kitsune_features", "dot11_features":
			hint.Headers = true
		default:
			// No view-aware implementation: the op expects *Packet.
			return netpkt.DecodeHint{}, false
		}
	}
	return hint, true
}

// enableViews switches the source onto lazy view chunks when the plan
// permits it, recording the decision on the pass. It must run before the
// first chunk is pulled. Hooked runs stay eager unless the hook declares
// itself view-aware (StreamHooks.AcceptViews) — the classic ChunkUpdate
// callback contract exposes the chunk's decoded Packets. Sharded lazy
// runs keep their lanes: the router partitions on PacketView.Tuple, and
// forcing the header predecode onto the source goroutine makes the
// router's tuple reads and the lanes' summary reads side-effect-free
// (PacketView lazily mutates itself through read accessors otherwise).
func (r *streamExec) enableViews(src dataset.Source, cfg *StreamConfig) {
	vs, ok := src.(dataset.ViewSource)
	if !ok {
		return
	}
	if cfg.Hooks.active() && !cfg.Hooks.AcceptViews {
		vs.ConfigureViews(false, netpkt.DecodeHint{})
		return
	}
	hint, ok := r.e.viewHint(r.pl)
	if !ok {
		vs.ConfigureViews(false, netpkt.DecodeHint{})
		return
	}
	if cfg.shards() > 1 {
		hint.Headers = true
	}
	if !vs.ConfigureViews(true, hint) {
		vs.ConfigureViews(false, netpkt.DecodeHint{})
		return
	}
	r.lazyViews = true
}

// countDecode feeds the decode counters for one absorbed view chunk:
// every view-path packet, and the subset whose header decode never ran
// (the plan needed nothing beyond record metadata).
func (r *streamExec) countDecode(views []netpkt.PacketView) {
	if r.e.Metrics == nil || len(views) == 0 {
		return
	}
	skips := 0
	for i := range views {
		if !views[i].HeadersDecoded() {
			skips++
		}
	}
	r.e.Metrics.Counter("lumen_decode_packets_total",
		"Packets delivered as lazy views through the decode fast path of streaming runs.").Add(uint64(len(views)))
	if skips > 0 {
		r.e.Metrics.Counter("lumen_decode_lazy_skips_total",
			"View-path packets whose L2-L4 header decode was never needed and so never ran.").Add(uint64(skips))
	}
}
