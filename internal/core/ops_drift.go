package core

import (
	"fmt"

	"lumen/internal/mlkit"
)

func init() {
	register("drift_detect",
		"monitor the trained model's per-chunk score stream with a Page-Hinkley test and raise drift events on distribution shift (streaming test runs; a pass-through otherwise)",
		opSig{in: []Kind{KindTrained}, out: KindTrained}, opDriftDetect)
}

// opDriftDetect folds the train op's per-chunk scores (predictions when
// the model exposes no scores) into a Page-Hinkley estimator carried
// across chunks. Detections append DriftEvents to the running chunk job,
// which surface through StreamHooks.ChunkUpdate.Drift and
// Engine.LastStream.DriftEvents — the trigger a resident daemon uses to
// schedule a background retrain. On batch runs and in train mode the op
// passes the trained value through unchanged, so pipelines carrying a
// drift_detect stage remain valid everywhere.
//
// Params: delta (deviation tolerance, default 0.005), lambda (detection
// threshold, default 50), min_samples (warm-up, default 30), two_sided
// (also detect mean decreases — a model gone blind — default false).
func opDriftDetect(ctx *opCtx, in []Value, p params) (Value, error) {
	tr, ok := in[0].(Trained)
	if !ok {
		return nil, fmt.Errorf("drift_detect: input must be a trained model, got %v", in[0].Kind())
	}
	if ctx.stream == nil || ctx.mode != ModeTest {
		return tr, nil
	}
	res := ctx.stream.lastResult
	ctx.stream.lastResult = nil
	if res == nil {
		return tr, nil
	}
	var ph *mlkit.PageHinkley
	if c, ok := ctx.carry(); ok {
		ph = c.(*mlkit.PageHinkley)
	} else {
		ph = &mlkit.PageHinkley{
			Delta:      p.f64("delta", 0),
			Lambda:     p.f64("lambda", 0),
			MinSamples: p.i("min_samples", 0),
			TwoSided:   p.b("two_sided", false),
		}
		ctx.setCarry(ph)
	}
	useScores := len(res.Scores) == len(res.Pred)
	for i := range res.Pred {
		x := float64(res.Pred[i])
		if useScores {
			x = res.Scores[i]
		}
		if ph.Add(x) && ctx.drift != nil {
			stat, mean := ph.LastDetection()
			*ctx.drift = append(*ctx.drift, DriftEvent{
				Output: ctx.outName,
				Base:   ctx.streamBase(),
				Row:    i,
				Stat:   stat,
				Mean:   mean,
			})
		}
	}
	return tr, nil
}
