package core

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"lumen/internal/obs"
)

// Cache shares the results of stateless operations across engines — the
// paper's "we construct the evaluation pipeline such that intermediate
// results are shared across algorithms". When the benchmarking suite
// evaluates many algorithms on the same datasets, flow assembly and
// feature extraction run once per (op, params, input) instead of once
// per run.
//
// Only stateless, mode-independent ops participate (field extraction,
// flow assembly, feature computation, grouping, aggregation...); anything
// fitted on training data (scalers, filters, models) never does. Cache
// keys combine the op name, its canonical parameter encoding, and the
// identity of its input values, so two pipelines reusing the same
// upstream results hit the same entries.
//
// The cache is safe for concurrent use by many engines. Concurrent
// misses on the same key are deduplicated singleflight-style: one caller
// computes, the rest block until the result is published (counted as
// DedupWaits in Stats). Cached values are shared by reference across
// engines and MUST be treated as immutable by every op.
//
// SetLimit bounds the entry count; when exceeded, the least recently
// used entries are evicted. Byte sizes are estimated per value so long
// suite runs can observe cache growth via Stats().Bytes.
type Cache struct {
	mu       sync.Mutex
	maxEnt   int // 0 = unbounded
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	bytes    int64

	hits, misses, dedupWaits, evictions int

	// om mirrors the counters above into an obs.Metrics registry when one
	// is attached (see SetMetrics). All instruments are nil-safe, so the
	// zero value means "no registry" without extra branches.
	om cacheMetrics
}

// cacheMetrics holds the pre-resolved instruments for cache activity.
type cacheMetrics struct {
	hits, misses, dedupWaits, evictions *obs.Counter
	entries, bytes                      *obs.Gauge
}

// SetMetrics mirrors cache activity into m: lumen_cache_{hits,misses,
// dedup_waits,evictions}_total counters plus lumen_cache_entries and
// lumen_cache_bytes gauges. A nil m detaches nothing and is a no-op;
// counters registered by an earlier call keep their accumulated values.
func (c *Cache) SetMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.om = cacheMetrics{
		hits:       m.Counter("lumen_cache_hits_total", "Cache lookups served from a stored entry."),
		misses:     m.Counter("lumen_cache_misses_total", "Cache lookups that started a computation."),
		dedupWaits: m.Counter("lumen_cache_dedup_waits_total", "Cache lookups that blocked on another engine's in-flight computation."),
		evictions:  m.Counter("lumen_cache_evictions_total", "Entries dropped by the LRU bound."),
		entries:    m.Gauge("lumen_cache_entries", "Entries currently stored in the shared cache."),
		bytes:      m.Gauge("lumen_cache_bytes", "Estimated resident bytes of stored cache values."),
	}
	c.syncGauges()
}

// syncGauges publishes the current entry count and byte estimate. Caller
// holds mu.
func (c *Cache) syncGauges() {
	c.om.entries.Set(float64(len(c.entries)))
	c.om.bytes.Set(float64(c.bytes))
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key   string
	val   Value
	bytes int64
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// CacheStats is a snapshot of cache activity. Misses counts
// computations actually started — under singleflight it equals the
// number of distinct keys computed, while DedupWaits counts lookups
// that blocked on another engine's in-flight computation instead of
// recomputing.
type CacheStats struct {
	Hits       int   `json:"hits"`
	Misses     int   `json:"misses"`
	DedupWaits int   `json:"dedup_waits"`
	Evictions  int   `json:"evictions"`
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
}

// NewCache returns an empty shared cache with no entry bound.
func NewCache() *Cache {
	return &Cache{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// SetLimit bounds the cache to at most n entries (0 = unbounded),
// evicting least-recently-used entries immediately if over the bound.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxEnt = n
	c.evict()
}

// Stats returns a snapshot of cache activity.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		DedupWaits: c.dedupWaits,
		Evictions:  c.evictions,
		Entries:    len(c.entries),
		Bytes:      c.bytes,
	}
}

// Len reports the number of cached values.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// getOrCompute returns the value for key, running compute at most once
// across all concurrent callers: a cached value is returned immediately;
// a lookup that races an in-flight computation blocks until that
// computation publishes; otherwise this caller computes and publishes.
// computed reports whether THIS caller ran compute (for profiling
// attribution). Errors are propagated to all waiters and never cached.
func (c *Cache) getOrCompute(key string, compute func() (Value, error)) (v Value, err error, computed bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.om.hits.Inc()
		c.lru.MoveToFront(el)
		v = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, nil, false
	}
	if f, ok := c.inflight[key]; ok {
		c.dedupWaits++
		c.om.dedupWaits.Inc()
		c.mu.Unlock()
		<-f.done
		return f.val, f.err, false
	}
	c.misses++
	c.om.misses.Inc()
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	finished := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if finished && f.err == nil {
			c.insert(key, f.val)
		} else if !finished {
			// compute panicked; unblock waiters with an error instead of
			// leaving them parked forever, then let the panic propagate.
			f.err = fmt.Errorf("core: cache: computation for key %q panicked", key)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	finished = true
	return f.val, f.err, true
}

// insert adds a computed value and applies the LRU bound. Caller holds mu.
func (c *Cache) insert(key string, v Value) {
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes -= old.bytes
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	e := &cacheEntry{key: key, val: v, bytes: valueBytes(v)}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	c.evict()
	c.syncGauges()
}

// evict drops least-recently-used entries until within bound. Caller
// holds mu.
func (c *Cache) evict() {
	for c.maxEnt > 0 && c.lru.Len() > c.maxEnt {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
		c.om.evictions.Inc()
	}
	c.syncGauges()
}

// valueBytes estimates the resident size of a cached value. Estimates
// ignore struct headers beyond a small per-element constant and may
// double-count backing arrays shared between values (e.g. a Grouped and
// the Frame it wraps); they exist for observability and eviction
// accounting, not exact memory attribution.
func valueBytes(v Value) int64 {
	const hdr = 16 // string header / per-element bookkeeping
	switch x := v.(type) {
	case *Frame:
		var b int64
		for i := range x.Cols {
			c := &x.Cols[i]
			b += 8 * int64(len(c.F))
			for _, s := range c.S {
				b += hdr + int64(len(s))
			}
		}
		b += 8 * int64(len(x.UnitIdx))
		b += 8 * int64(len(x.Labels))
		for _, a := range x.Attacks {
			b += hdr + int64(len(a))
		}
		return b
	case *Grouped:
		b := valueBytes(x.F)
		for _, g := range x.Groups {
			b += 8 * int64(len(g))
		}
		b += 8 * int64(len(x.GroupOf))
		for _, k := range x.Keys {
			b += hdr + int64(len(k))
		}
		return b
	case *Flows:
		var b int64
		for _, u := range x.Unis {
			b += 96 + 8*int64(len(u.PacketIdx))
		}
		for _, cn := range x.Conns {
			b += 160 + 8*int64(len(cn.OrigIdx)+len(cn.RespIdx))
		}
		return b
	default:
		return 0
	}
}

// cacheKey builds the identity of one op invocation, or ok=false when
// any input has no stable identity.
func cacheKey(op OpSpec, in []Value) (string, bool) {
	params, err := json.Marshal(op.Params)
	if err != nil {
		return "", false
	}
	key := op.Func + "|" + string(params)
	for _, v := range in {
		id, ok := valueID(v)
		if !ok {
			return "", false
		}
		key += "|" + id
	}
	return key, true
}

// valueID returns a stable identity for a pipeline value: the address of
// its backing object. Model specs and trained models are excluded — ops
// consuming them are never cacheable anyway.
func valueID(v Value) (string, bool) {
	switch x := v.(type) {
	case Packets:
		return fmt.Sprintf("pk:%p", x.DS), true
	case *Frame:
		return fmt.Sprintf("fr:%p", x), true
	case *Grouped:
		return fmt.Sprintf("gr:%p", x), true
	case *Flows:
		return fmt.Sprintf("fl:%p", x), true
	default:
		return "", false
	}
}
