package core

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Cache shares the results of stateless operations across engines — the
// paper's "we construct the evaluation pipeline such that intermediate
// results are shared across algorithms". When the benchmarking suite
// evaluates many algorithms on the same datasets, flow assembly and
// feature extraction run once per (op, params, input) instead of once
// per run.
//
// Only stateless, mode-independent ops participate (field extraction,
// flow assembly, feature computation, grouping, aggregation...); anything
// fitted on training data (scalers, filters, models) never does. Cache
// keys combine the op name, its canonical parameter encoding, and the
// identity of its input values, so two pipelines reusing the same
// upstream results hit the same entries.
type Cache struct {
	mu sync.Mutex
	m  map[string]Value

	hits, misses int
}

// NewCache returns an empty shared cache.
func NewCache() *Cache { return &Cache{m: make(map[string]Value)} }

// Stats reports cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached values.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *Cache) get(key string) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache) put(key string, v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// cacheKey builds the identity of one op invocation, or ok=false when
// any input has no stable identity.
func cacheKey(op OpSpec, in []Value) (string, bool) {
	params, err := json.Marshal(op.Params)
	if err != nil {
		return "", false
	}
	key := op.Func + "|" + string(params)
	for _, v := range in {
		id, ok := valueID(v)
		if !ok {
			return "", false
		}
		key += "|" + id
	}
	return key, true
}

// valueID returns a stable identity for a pipeline value: the address of
// its backing object. Model specs and trained models are excluded — ops
// consuming them are never cacheable anyway.
func valueID(v Value) (string, bool) {
	switch x := v.(type) {
	case Packets:
		return fmt.Sprintf("pk:%p", x.DS), true
	case *Frame:
		return fmt.Sprintf("fr:%p", x), true
	case *Grouped:
		return fmt.Sprintf("gr:%p", x), true
	case *Flows:
		return fmt.Sprintf("fl:%p", x), true
	default:
		return "", false
	}
}
