package core

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/pcap"
)

// eagerSource hides the wrapped source's ConfigureViews so the run
// decodes every packet eagerly — the comparison baseline for the
// zero-copy fast path. Recycling stays active to keep the runs
// otherwise identical.
type eagerSource struct {
	inner *dataset.PcapSource
}

func (s *eagerSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *eagerSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	return s.inner.Next(maxRows, maxBytes)
}

func (s *eagerSource) Reset() error { return s.inner.Reset() }

func (s *eagerSource) Err() error { return s.inner.Err() }

func (s *eagerSource) Recycle(ck dataset.Chunk) { s.inner.Recycle(ck) }

// captureBytes serializes a dataset to an in-memory pcap.
func captureBytes(t testing.TB, ds *dataset.Labeled) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// appFieldPipeline touches every app-layer field class, forcing the
// deepest lazy decode (headers + DNS + HTTP + MQTT).
func appFieldPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-field-apps",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{
					"len", "proto", "payload_len",
					"dns_qr", "dns_qd", "is_http", "http_status", "is_mqtt", "mqtt_type",
				}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

// metaFieldPipeline reads only packet metadata (ts/len/iat), the depth
// at which the fast path skips header decoding entirely.
func metaFieldPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-field-meta",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"ts", "len", "iat"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

// TestStreamFastPathEquivalence is the acceptance sweep for the
// zero-copy decode fast path: for every packet-op class, at every
// decode depth the planner can choose, a test pass over a pcap source
// with lazy views enabled must be bit-identical to the same pass
// decoding eagerly — sequential and pipelined.
func TestStreamFastPathEquivalence(t *testing.T) {
	cases := []struct {
		name string
		p    *Pipeline
		ds   string
	}{
		{"field-headers", fieldPipeline(), "P0"},
		{"field-apps", appFieldPipeline(), "P0"},
		{"field-meta", metaFieldPipeline(), "P0"},
		{"nprint", nprintPipeline(), "P0"},
		{"kitsune", kitsunePipeline(), "P1"},
		{"autoencoder-scores", scorePipeline(), "P3"},
		{"dot11", dot11Pipeline(), "P2"},
	}
	shapes := []StreamConfig{
		{ChunkRows: 64},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 2},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 4},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec, ok := dataset.Get(tc.ds)
			if !ok {
				t.Fatalf("no dataset %s", tc.ds)
			}
			ds := spec.Generate(0.05)
			raw := captureBytes(t, ds)
			eng := NewEngine(tc.p)
			eng.Seed = 7
			if err := eng.Train(ds); err != nil {
				t.Fatal(err)
			}
			for _, cfg := range shapes {
				label := fmt.Sprintf("depth %d, workers %d, shards %d", cfg.PipelineDepth, cfg.Workers, cfg.Shards)
				es, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
				if err != nil {
					t.Fatal(err)
				}
				want, err := eng.RunStream(&eagerSource{inner: es}, ModeTest, cfg)
				if err != nil {
					t.Fatalf("eager (%s): %v", label, err)
				}
				if eng.LastStream.LazyViews {
					t.Fatalf("eager run (%s) took the fast path", label)
				}

				ls, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.RunStream(ls, ModeTest, cfg)
				if err != nil {
					t.Fatalf("lazy (%s): %v", label, err)
				}
				if !eng.LastStream.LazyViews {
					t.Fatalf("lazy run (%s) did not take the fast path", label)
				}
				if cfg.Shards > 1 && eng.LastStream.Shards != cfg.Shards {
					t.Fatalf("lazy run (%s) folded the sink to %d shards", label, eng.LastStream.Shards)
				}
				requireEqualResults(t, want, got, tc.name+" "+label)
			}
		})
	}
}

// TestStreamFastPathFlowOnly: a pipeline whose only packet reader is a
// flow sink rides the lazy view path — assemblers are fed per-packet
// summaries built from the views, the summaries are retained, and the
// flush-time feature pass reads them instead of decoded packets. The
// result must be bit-identical to the eager run.
func TestStreamFastPathFlowOnly(t *testing.T) {
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	raw := captureBytes(t, ds)
	p := flowPipeline("decision_tree", map[string]any{"max_depth": 6})
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	shapes := []StreamConfig{
		{ChunkRows: 64},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 2},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 4},
		{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 8},
	}
	for _, cfg := range shapes {
		label := fmt.Sprintf("depth %d, workers %d, shards %d", cfg.PipelineDepth, cfg.Workers, cfg.Shards)
		es, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.RunStream(&eagerSource{inner: es}, ModeTest, cfg)
		if err != nil {
			t.Fatalf("eager (%s): %v", label, err)
		}
		if eng.LastStream.LazyViews {
			t.Fatalf("eager run (%s) took the fast path", label)
		}

		ls, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunStream(ls, ModeTest, cfg)
		if err != nil {
			t.Fatalf("lazy (%s): %v", label, err)
		}
		if !eng.LastStream.LazyViews {
			t.Fatalf("flow-only lazy run (%s) did not take the fast path", label)
		}
		if cfg.Shards > 1 && eng.LastStream.Shards != cfg.Shards {
			t.Fatalf("flow-only lazy run (%s) folded the sink to %d shards", label, eng.LastStream.Shards)
		}
		requireEqualResults(t, want, got, "flow-only "+label)
	}
}

// TestStreamFastPathShardedLanes: the shard router partitions lazy
// chunks on PacketView.Tuple(), so a sharded request keeps its lanes
// under view mode instead of folding back to one — and the predecode
// hint forces header decoding on the source goroutine so the lanes
// read the views concurrently without mutating them.
func TestStreamFastPathShardedLanes(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	raw := captureBytes(t, ds)
	p := fieldPipeline()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunStream(src, ModeTest, StreamConfig{ChunkRows: 64, PipelineDepth: 2, Workers: 2, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if !eng.LastStream.LazyViews {
		t.Fatal("fast path should engage")
	}
	if eng.LastStream.Shards != 4 {
		t.Fatalf("Shards = %d, want 4: lazy views must flow through the sharded sink", eng.LastStream.Shards)
	}
}

// TestStreamFastPathHooksAcceptViews: a hook that declares itself
// view-aware (StreamHooks.AcceptViews) keeps the fast path engaged and
// receives lazy views in ChunkUpdate.Views with Packets nil.
func TestStreamFastPathHooksAcceptViews(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	raw := captureBytes(t, ds)
	p := fieldPipeline()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
	if err != nil {
		t.Fatal(err)
	}
	var nviews, npkts int
	cfg := StreamConfig{
		ChunkRows: 64,
		Hooks: &StreamHooks{
			AcceptViews: true,
			AfterChunk: func(up ChunkUpdate) error {
				nviews += len(up.Views)
				npkts += len(up.Packets)
				return nil
			},
		},
	}
	if _, err := eng.RunStream(src, ModeTest, cfg); err != nil {
		t.Fatal(err)
	}
	if !eng.LastStream.LazyViews {
		t.Fatal("view-aware hooks must keep the fast path engaged")
	}
	if npkts != 0 {
		t.Fatalf("hook saw %d eager packets on the view path", npkts)
	}
	if nviews != len(ds.Packets) {
		t.Fatalf("hook saw %d views, want %d", nviews, len(ds.Packets))
	}
}

// TestStreamFastPathDisabledByHooks: chunk hooks observe decoded
// packets (ChunkUpdate.Packets), so an engine with hooks must stay on
// the eager path.
func TestStreamFastPathDisabledByHooks(t *testing.T) {
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.05)
	raw := captureBytes(t, ds)
	p := fieldPipeline()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{
		ChunkRows: 64,
		Hooks:     &StreamHooks{AfterChunk: func(ChunkUpdate) error { return nil }},
	}
	if _, err := eng.RunStream(src, ModeTest, cfg); err != nil {
		t.Fatal(err)
	}
	if eng.LastStream.LazyViews {
		t.Fatal("hooks must force the eager path")
	}
}

// TestStreamLazyViewsAllocs pins the allocation budget of the zero-copy
// columnar path: a steady-state test pass over a pooled pcap source
// must stay within 2 allocations per packet (the eager path pays 5+
// just materializing layer structs).
func TestStreamLazyViewsAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; allocation thresholds do not hold")
	}
	spec, _ := dataset.Get("P0")
	ds := spec.Generate(0.1)
	raw := captureBytes(t, ds)
	p := &Pipeline{
		Name:        "stream-allocs",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{ChunkRows: 512}
	pass := func() {
		if _, err := eng.RunStream(src, ModeTest, cfg); err != nil {
			t.Fatal(err)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	pass() // warm the pools
	if !eng.LastStream.LazyViews {
		t.Fatal("fast path should engage")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	perRun := testing.AllocsPerRun(3, pass)
	perPkt := perRun / float64(len(ds.Packets))
	t.Logf("%.0f allocs/run over %d packets = %.2f allocs/packet", perRun, len(ds.Packets), perPkt)
	if perPkt > 2 {
		t.Errorf("lazy columnar path allocates %.2f/packet, budget is 2", perPkt)
	}
}
