package core

import (
	"fmt"
	"sort"
)

// OpFunc executes one operation. ctx gives access to fitted state for
// stateful ops (normalization, models) and the execution mode.
type OpFunc func(ctx *opCtx, in []Value, p params) (Value, error)

// opSig declares an operation's type signature for static checking.
type opSig struct {
	in  []Kind // expected input kinds, in order
	out Kind
	// variadicIn allows any number of trailing inputs of the last kind.
	variadicIn bool
}

type opDef struct {
	name string
	sig  opSig
	run  OpFunc
	doc  string
}

// opRegistry holds every operation the framework defines. Operations are
// configurable (paper §3.2: "each operation can, in practice, support
// multiple functions"), so the ~30 registered names cover the feature
// pipelines of all 16 ported algorithms.
var opRegistry = map[string]*opDef{}

func register(name, doc string, sig opSig, run OpFunc) {
	if _, dup := opRegistry[name]; dup {
		panic("core: duplicate op " + name)
	}
	opRegistry[name] = &opDef{name: name, sig: sig, run: run, doc: doc}
}

// Ops returns the registered operation names, sorted.
func Ops() []string {
	out := make([]string, 0, len(opRegistry))
	for n := range opRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OpDoc returns the one-line description of an operation.
func OpDoc(name string) string {
	if d, ok := opRegistry[name]; ok {
		return d.doc
	}
	return ""
}

// params wraps the JSON parameter object of one op with typed accessors
// (JSON numbers arrive as float64).
type params map[string]any

func (p params) str(key, def string) string {
	if v, ok := p[key]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

func (p params) f64(key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return def
}

func (p params) i(key string, def int) int {
	switch v := p[key].(type) {
	case float64:
		return int(v)
	case int:
		return v
	}
	return def
}

func (p params) b(key string, def bool) bool {
	if v, ok := p[key].(bool); ok {
		return v
	}
	return def
}

func (p params) strList(key string) []string {
	switch v := p[key].(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// anyList returns the raw list value (for structured params like
// aggregate specs).
func (p params) anyList(key string) []any {
	if v, ok := p[key].([]any); ok {
		return v
	}
	return nil
}

func asFrame(v Value) (*Frame, error) {
	f, ok := v.(*Frame)
	if !ok {
		return nil, fmt.Errorf("core: expected frame, got %v", v.Kind())
	}
	return f, nil
}

func asPackets(v Value) (Packets, error) {
	pk, ok := v.(Packets)
	if !ok {
		return Packets{}, fmt.Errorf("core: expected packets, got %v", v.Kind())
	}
	return pk, nil
}
