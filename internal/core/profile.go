package core

import "runtime/metrics"

// heapAllocName is the cumulative heap-allocation counter sampled around
// each op when profiling is enabled. Unlike runtime.ReadMemStats it does
// not stop the world, so profiled engines no longer serialize every
// other goroutine in the process — the property that made the old
// always-on ReadMemStats pair a scalability bug under the benchmark
// suite's worker pool.
const heapAllocName = "/gc/heap/allocs:bytes"

// heapAllocBytes samples the process-wide cumulative heap allocation
// counter. The counter is process-global: an op's Allocs delta includes
// allocations made concurrently by other goroutines, so byte attribution
// is only exact when one engine runs at a time (see OpStats.Allocs).
func heapAllocBytes() uint64 {
	s := [1]metrics.Sample{{Name: heapAllocName}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
