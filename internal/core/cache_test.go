package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lumen/internal/mlkit"
)

func TestCacheHitsAcrossEngines(t *testing.T) {
	ds := smallDS(t, "F1")
	p := &Pipeline{
		Name:        "cached",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "X"}, Output: "t"},
		},
	}
	cache := NewCache()

	// First engine: all misses.
	e1 := NewEngine(p)
	e1.SetCache(cache)
	if err := e1.Train(ds); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want 0 hits", st.Hits, st.Misses)
	}
	if st.Entries == 0 || st.Bytes <= 0 {
		t.Fatalf("first run: entries=%d bytes=%d, want nonzero size accounting", st.Entries, st.Bytes)
	}

	// Second engine, same dataset: flow ops must be served from cache.
	e2 := NewEngine(p)
	e2.SetCache(cache)
	if err := e2.Train(ds); err != nil {
		t.Fatal(err)
	}
	if h2 := cache.Stats().Hits; h2 < 2 { // flow_assemble + flow_features
		t.Fatalf("second run hits = %d, want >= 2", h2)
	}
	cachedOps := 0
	for _, st := range e2.Profile {
		if st.Cached {
			cachedOps++
		}
	}
	if cachedOps != 2 {
		t.Errorf("profile shows %d cached ops, want 2", cachedOps)
	}

	// Results identical with and without cache.
	e3 := NewEngine(p) // no cache
	e3.Seed = e2.Seed
	if err := e3.Train(ds); err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := e3.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if mlkit.Precision(r2.Truth, r2.Pred) != mlkit.Precision(r3.Truth, r3.Pred) {
		t.Error("cache changed results")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	ds := smallDS(t, "F1")
	in := []Value{Packets{DS: ds}}
	opA := OpSpec{Func: "flow_assemble", Params: map[string]any{"granularity": "connection"}}
	opB := OpSpec{Func: "flow_assemble", Params: map[string]any{"granularity": "uniflow"}}
	ka, ok := cacheKey(opA, in)
	if !ok {
		t.Fatal("no key for packets input")
	}
	kb, _ := cacheKey(opB, in)
	if ka == kb {
		t.Error("different params must produce different keys")
	}
	ds2 := smallDS(t, "F4")
	kc, _ := cacheKey(opA, []Value{Packets{DS: ds2}})
	if ka == kc {
		t.Error("different datasets must produce different keys")
	}
	// Model inputs have no identity -> not cacheable.
	if _, ok := cacheKey(OpSpec{Func: "train"}, []Value{ModelSpec{Type: "x"}}); ok {
		t.Error("model inputs must not be cacheable")
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	ds := smallDS(t, "F1")
	p, _ := ParsePipeline([]byte(fig4Template))
	e := NewEngine(p)
	if err := e.Train(ds); err != nil {
		t.Fatal(err)
	}
	for _, st := range e.Profile {
		if st.Cached {
			t.Fatal("no cache attached, nothing may be marked cached")
		}
	}
}

// TestCacheSingleflightDedup proves N concurrent misses on one key run
// the compute function exactly once: one caller computes, the rest block
// and share the published result.
func TestCacheSingleflightDedup(t *testing.T) {
	c := NewCache()
	const n = 8
	var calls int32
	start := make(chan struct{})
	vals := make([]Value, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err, _ := c.getOrCompute("k", func() (Value, error) {
				atomic.AddInt32(&calls, 1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return NewFrame(3), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", calls)
	}
	for i := 1; i < n; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("caller %d got a different value pointer", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one computation)", st.Misses)
	}
	if st.Hits+st.DedupWaits != n-1 {
		t.Errorf("hits+dedupWaits = %d, want %d", st.Hits+st.DedupWaits, n-1)
	}
}

// TestCacheSingleflightError proves errors reach every waiter and are
// never cached.
func TestCacheSingleflightError(t *testing.T) {
	c := NewCache()
	wantErr := fmt.Errorf("boom")
	_, err, computed := c.getOrCompute("k", func() (Value, error) { return nil, wantErr })
	if err != wantErr || !computed {
		t.Fatalf("got err=%v computed=%v", err, computed)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// The key must be computable again after a failure.
	v, err, computed := c.getOrCompute("k", func() (Value, error) { return NewFrame(1), nil })
	if err != nil || !computed || v == nil {
		t.Fatalf("retry after error: v=%v err=%v computed=%v", v, err, computed)
	}
}

// TestCacheLRUEviction proves the entry bound evicts least-recently-used
// values and accounts for them in Stats.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache()
	c.SetLimit(2)
	mk := func(key string) Value {
		v, err, _ := c.getOrCompute(key, func() (Value, error) {
			f := NewFrame(4)
			f.AddF("x", []float64{1, 2, 3, 4})
			return f, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	mk("a")
	mk("b")
	mk("a") // touch a so b is now LRU
	mk("c") // evicts b
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2 and 1", st.Entries, st.Evictions)
	}
	if st.Bytes != 2*4*8 {
		t.Errorf("bytes=%d, want %d (two 4-row single-column frames)", st.Bytes, 2*4*8)
	}
	missesBefore := st.Misses
	mk("b") // must recompute: it was evicted
	if got := c.Stats().Misses; got != missesBefore+1 {
		t.Errorf("misses after re-request of evicted key = %d, want %d", got, missesBefore+1)
	}
	mk("a")
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("entries=%d after reinsert, want 2", got)
	}
}

// snapshotFrames deep-copies the numeric data of every cached Frame so a
// later comparison can detect in-place mutation by downstream ops.
func snapshotFrames(c *Cache) map[string][][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := map[string][][]float64{}
	for key, el := range c.entries {
		fr, ok := el.Value.(*cacheEntry).val.(*Frame)
		if !ok {
			continue
		}
		var cols [][]float64
		for i := range fr.Cols {
			if fr.Cols[i].IsNumeric() {
				cols = append(cols, append([]float64(nil), fr.Cols[i].F...))
			}
		}
		snap[key] = cols
	}
	return snap
}

// TestCacheAliasingGuard runs many engines concurrently against one
// shared cache and asserts the cached *Frame values are bit-identical
// before and after: downstream ops (scaling, training...) must never
// mutate a cached value they alias.
func TestCacheAliasingGuard(t *testing.T) {
	ds := smallDS(t, "F1")
	p := &Pipeline{
		Name:        "aliasing",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X"},
			{Func: "log_scale", Input: []string{"X"}, Output: "Xl"},
			{Func: "normalize", Input: []string{"Xl"}, Output: "Xs", Params: map[string]any{"kind": "zscore"}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "Xs"}, Output: "t"},
		},
	}
	cache := NewCache()
	// Populate the cache once, then snapshot every cached frame.
	e0 := NewEngine(p)
	e0.SetCache(cache)
	if err := e0.Train(ds); err != nil {
		t.Fatal(err)
	}
	before := snapshotFrames(cache)
	if len(before) == 0 {
		t.Fatal("no frames cached; aliasing guard has nothing to check")
	}

	const engines = 8
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewEngine(p)
			e.SetCache(cache)
			e.Seed = int64(i)
			if err := e.Train(ds); err != nil {
				t.Error(err)
				return
			}
			if _, err := e.Test(ds); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	after := snapshotFrames(cache)
	for key, cols := range before {
		got, ok := after[key]
		if !ok {
			t.Errorf("cached frame %q disappeared", key)
			continue
		}
		if !reflect.DeepEqual(cols, got) {
			t.Errorf("cached frame %q was mutated by a downstream op", key)
		}
	}
}

// TestEngineSingleflightAcrossEngines runs N engines with identical
// cacheable prefixes concurrently and asserts every distinct key was
// computed exactly once (misses == entries, and no recompute races).
func TestEngineSingleflightAcrossEngines(t *testing.T) {
	ds := smallDS(t, "F1")
	p := &Pipeline{
		Name:        "sf",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "X"}, Output: "t"},
		},
	}
	cache := NewCache()
	const engines = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e := NewEngine(p)
			e.SetCache(cache)
			e.Seed = int64(i)
			if err := e.Train(ds); err != nil {
				t.Error(err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	st := cache.Stats()
	if st.Misses != st.Entries {
		t.Errorf("misses=%d entries=%d: some key was computed more than once", st.Misses, st.Entries)
	}
	// All first-wave engines race the same two keys: every lookup that
	// was not the one computation must be a hit or a dedup-wait.
	if st.Hits+st.DedupWaits != engines*2-st.Misses {
		t.Errorf("hits=%d dedupWaits=%d misses=%d for %d lookups",
			st.Hits, st.DedupWaits, st.Misses, engines*2)
	}
}
