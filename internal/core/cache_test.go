package core

import (
	"testing"

	"lumen/internal/mlkit"
)

func TestCacheHitsAcrossEngines(t *testing.T) {
	ds := smallDS(t, "F1")
	p := &Pipeline{
		Name:        "cached",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "fl", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"fl"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "X"}, Output: "t"},
		},
	}
	cache := NewCache()

	// First engine: all misses.
	e1 := NewEngine(p)
	e1.SetCache(cache)
	if err := e1.Train(ds); err != nil {
		t.Fatal(err)
	}
	h, m := cache.Stats()
	if h != 0 || m == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want 0 hits", h, m)
	}

	// Second engine, same dataset: flow ops must be served from cache.
	e2 := NewEngine(p)
	e2.SetCache(cache)
	if err := e2.Train(ds); err != nil {
		t.Fatal(err)
	}
	h2, _ := cache.Stats()
	if h2 < 2 { // flow_assemble + flow_features
		t.Fatalf("second run hits = %d, want >= 2", h2)
	}
	cachedOps := 0
	for _, st := range e2.Profile {
		if st.Cached {
			cachedOps++
		}
	}
	if cachedOps != 2 {
		t.Errorf("profile shows %d cached ops, want 2", cachedOps)
	}

	// Results identical with and without cache.
	e3 := NewEngine(p) // no cache
	e3.Seed = e2.Seed
	if err := e3.Train(ds); err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := e3.Test(ds)
	if err != nil {
		t.Fatal(err)
	}
	if mlkit.Precision(r2.Truth, r2.Pred) != mlkit.Precision(r3.Truth, r3.Pred) {
		t.Error("cache changed results")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	ds := smallDS(t, "F1")
	in := []Value{Packets{DS: ds}}
	opA := OpSpec{Func: "flow_assemble", Params: map[string]any{"granularity": "connection"}}
	opB := OpSpec{Func: "flow_assemble", Params: map[string]any{"granularity": "uniflow"}}
	ka, ok := cacheKey(opA, in)
	if !ok {
		t.Fatal("no key for packets input")
	}
	kb, _ := cacheKey(opB, in)
	if ka == kb {
		t.Error("different params must produce different keys")
	}
	ds2 := smallDS(t, "F4")
	kc, _ := cacheKey(opA, []Value{Packets{DS: ds2}})
	if ka == kc {
		t.Error("different datasets must produce different keys")
	}
	// Model inputs have no identity -> not cacheable.
	if _, ok := cacheKey(OpSpec{Func: "train"}, []Value{ModelSpec{Type: "x"}}); ok {
		t.Error("model inputs must not be cacheable")
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	ds := smallDS(t, "F1")
	p, _ := ParsePipeline([]byte(fig4Template))
	e := NewEngine(p)
	if err := e.Train(ds); err != nil {
		t.Fatal(err)
	}
	for _, st := range e.Profile {
		if st.Cached {
			t.Fatal("no cache attached, nothing may be marked cached")
		}
	}
}
