package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// badFilterPipeline fails on the first chunk: the filter references a
// column field_extract never produced. filter is row-local, so the error
// surfaces in the op-worker stage and travels to the sink with its job.
func badFilterPipeline() *Pipeline {
	return &Pipeline{
		Name:        "stream-shard-bad-filter",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl"}}},
			{Func: "filter", Input: []string{"X"}, Output: "Xf",
				Params: map[string]any{"col": "no_such_column", "op": ">", "value": 0.0}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "Xf"}, Output: "fit"},
		},
	}
}

// errTruncated is the simulated capture failure used by failingSource.
var errTruncated = errors.New("simulated capture truncation")

// failingSource delivers failAt-1 chunks, then fails the stream the way
// a truncated capture would: Next reports end-of-stream and Err exposes
// the cause. Only the pump goroutine touches calls/err; Pump.Err reads
// err after the chunk channel closed (a happens-before edge).
type failingSource struct {
	inner  dataset.Source
	failAt int // 1-based Next call that fails
	calls  int
	err    error
}

func (s *failingSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *failingSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	s.calls++
	if s.calls >= s.failAt {
		s.err = errTruncated
		return dataset.Chunk{}, false
	}
	return s.inner.Next(maxRows, maxBytes)
}

func (s *failingSource) Reset() error {
	s.calls, s.err = 0, nil
	return s.inner.Reset()
}

func (s *failingSource) Err() error { return s.err }

// slowEOFSource delivers every chunk instantly but takes delay to detect
// end-of-stream — a capture whose final read blocks on a timeout. The
// stages spend that time blocked on channels that only ever close, which
// must not be booked as stall.
type slowEOFSource struct {
	inner dataset.Source
	delay time.Duration
}

func (s *slowEOFSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *slowEOFSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	ck, ok := s.inner.Next(maxRows, maxBytes)
	if !ok {
		time.Sleep(s.delay)
	}
	return ck, ok
}

func (s *slowEOFSource) Reset() error { return s.inner.Reset() }

// TestStreamErrorUnwindPoolBalance is the chunk-job pool regression
// test: when an error unwinds the pipeline mid-stream with several
// workers in flight, every job taken from the pool must go back — the
// worker shutdown path used to release the chunk but leak the job.
// Repeated runs make the racy worker-side unwind branch (a select
// between a ready send and the closed done channel) all but certain to
// be taken at least once; the balance must hold no matter which exit
// each worker used.
func TestStreamErrorUnwindPoolBalance(t *testing.T) {
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	p := badFilterPipeline()
	for _, shape := range []StreamConfig{
		{ChunkRows: 16, PipelineDepth: 4, Workers: 4},
		{ChunkRows: 16, PipelineDepth: 4, Workers: 4, Shards: 2},
	} {
		gets0, puts0 := chunkJobGets.Load(), chunkJobPuts.Load()
		for i := 0; i < 10; i++ {
			eng := NewEngine(p)
			eng.Seed = 7
			if err := eng.TrainStream(ds, shape); err == nil {
				t.Fatal("run with the bad filter should have failed")
			}
		}
		gets, puts := chunkJobGets.Load()-gets0, chunkJobPuts.Load()-puts0
		if gets == 0 {
			t.Fatal("no chunk jobs were taken from the pool")
		}
		if gets != puts {
			t.Errorf("chunk-job pool leak (workers %d, shards %d): %d gets vs %d puts",
				shape.Workers, shape.Shards, gets, puts)
		}
	}
}

// TestStreamStallExcludesShutdown pins the stall accounting fix: the
// final blocked receive on each stage channel only observes the close,
// so a source that is slow to *detect* EOF (but fast to deliver chunks)
// must leave ops and sink stall near zero. Before the fix both counters
// absorbed the whole EOF delay per goroutine.
func TestStreamStallExcludesShutdown(t *testing.T) {
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	p := fieldPipeline()
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.TrainStream(ds, StreamConfig{}); err != nil {
		t.Fatal(err)
	}
	const delay = 150 * time.Millisecond
	src := &slowEOFSource{inner: dataset.NewSliceSource(ds), delay: delay}
	// One chunk holds the whole trace, so after it clears the stages the
	// only thing left to wait for is the delayed close.
	cfg := StreamConfig{ChunkRows: len(ds.Packets), PipelineDepth: 2, Workers: 2}
	if _, err := eng.RunStream(src, ModeTest, cfg); err != nil {
		t.Fatal(err)
	}
	st := eng.LastStream
	if limit := (delay / 2).Nanoseconds(); st.OpsStallNS >= limit || st.SinkStallNS >= limit {
		t.Errorf("shutdown wait was booked as stall: ops %v, sink %v (EOF delay %v)",
			time.Duration(st.OpsStallNS), time.Duration(st.SinkStallNS), delay)
	}
}

// TestStreamSinkAndSourceErrorsBothSurface pins the unwind fix for
// concurrent failures: the sink hits the first in-order op error while
// the source independently dies mid-capture. The run used to report
// only the sink's error and silently drop the source's; now both are
// joined.
func TestStreamSinkAndSourceErrorsBothSurface(t *testing.T) {
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	for _, shape := range []StreamConfig{
		{ChunkRows: 16, PipelineDepth: 2, Workers: 2},
		{ChunkRows: 16, PipelineDepth: 2, Workers: 2, Shards: 2},
	} {
		// The source delivers chunk 0 then fails on the very next pull —
		// before the sink's verdict on chunk 0 can stop the pump — so
		// both failures are always in play.
		src := &failingSource{inner: dataset.NewSliceSource(ds), failAt: 2}
		eng := NewEngine(badFilterPipeline())
		eng.Seed = 7
		_, err := eng.RunStream(src, ModeTrain, shape)
		if err == nil {
			t.Fatal("run should have failed")
		}
		if !strings.Contains(err.Error(), "no_such_column") {
			t.Errorf("sink op error missing (shards %d): %v", shape.Shards, err)
		}
		if !errors.Is(err, errTruncated) || !strings.Contains(err.Error(), "packet source") {
			t.Errorf("source error missing (shards %d): %v", shape.Shards, err)
		}
	}

	// A clean pipeline over the same dying source still reports just the
	// source failure.
	src := &failingSource{inner: dataset.NewSliceSource(ds), failAt: 2}
	eng := NewEngine(fieldPipeline())
	eng.Seed = 7
	_, err := eng.RunStream(src, ModeTrain, StreamConfig{ChunkRows: 16, PipelineDepth: 2, Workers: 2})
	if !errors.Is(err, errTruncated) {
		t.Errorf("source-only failure not surfaced: %v", err)
	}
}

// TestStreamShardFlowStraddle: flows whose packets straddle many chunk
// boundaries must assemble identically at every shard count. The
// EvalResult of a connection-granularity pipeline is a function of the
// assembled conn log (count, order, features, labels), so bit-equality
// here pins the log itself across K.
func TestStreamShardFlowStraddle(t *testing.T) {
	ids := dataset.ConnectionIDs()
	if len(ids) == 0 {
		t.Fatal("no connection datasets registered")
	}
	spec, ok := dataset.Get(ids[0])
	if !ok {
		t.Fatalf("no dataset %s", ids[0])
	}
	ds := spec.Generate(0.05)
	p := flowPipeline("decision_tree", map[string]any{"max_depth": 6})
	want := batchRun(t, p, ds)
	for _, k := range []int{1, 2, 8} {
		// Tiny chunks: nearly every flow spans several chunks.
		cfg := StreamConfig{ChunkRows: 16, PipelineDepth: 2, Workers: 2, Shards: k}
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.TrainStream(ds, cfg); err != nil {
			t.Fatalf("shards %d: %v", k, err)
		}
		got, err := eng.TestStream(ds, cfg)
		if err != nil {
			t.Fatalf("shards %d: %v", k, err)
		}
		requireEqualResults(t, want, got, fmt.Sprintf("shards %d", k))
		if eng.LastStream.Shards != k {
			t.Errorf("LastStream.Shards = %d, want %d", eng.LastStream.Shards, k)
		}
	}
}

// singleFlowDataset carves the busiest canonical five-tuple out of a
// generated trace: one flow's packets, nothing else.
func singleFlowDataset(t *testing.T) *dataset.Labeled {
	t.Helper()
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	groups := map[netpkt.FiveTuple][]int{}
	for i, p := range ds.Packets {
		if ft, ok := p.Tuple(); ok {
			c := ft.Canonical()
			groups[c] = append(groups[c], i)
		}
	}
	var best []int
	for _, idx := range groups {
		if len(idx) > len(best) {
			best = idx
		}
	}
	if len(best) < 8 {
		t.Fatalf("busiest flow has only %d packets", len(best))
	}
	sub := &dataset.Labeled{
		Name:        ds.Name + "-oneflow",
		Granularity: ds.Granularity,
		Link:        ds.Link,
		Devices:     ds.Devices,
	}
	for _, i := range best {
		sub.Packets = append(sub.Packets, ds.Packets[i])
		sub.Labels = append(sub.Labels, ds.Labels[i])
		sub.Attacks = append(sub.Attacks, ds.Attacks[i])
	}
	return sub
}

// TestStreamShardSingleFlowEmptyLanes: a trace that is one flow hashes
// every packet to the same lane, leaving the other K-1 lanes empty (they
// still receive every job and score zero rows). Results must match the
// sequential run exactly at every K, including the flow sink's log.
func TestStreamShardSingleFlowEmptyLanes(t *testing.T) {
	ds := singleFlowDataset(t)
	p := &Pipeline{
		Name:        "stream-shard-oneflow",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "flows",
				Params: map[string]any{"granularity": "connection"}},
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 4}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
	var want *EvalResult
	for _, k := range []int{1, 2, 8} {
		cfg := StreamConfig{ChunkRows: 8, PipelineDepth: 2, Workers: 2, Shards: k}
		eng := NewEngine(p)
		eng.Seed = 7
		if err := eng.TrainStream(ds, cfg); err != nil {
			t.Fatalf("shards %d train: %v", k, err)
		}
		got, err := eng.TestStream(ds, cfg)
		if err != nil {
			t.Fatalf("shards %d test: %v", k, err)
		}
		if want == nil {
			want = got
			continue
		}
		requireEqualResults(t, want, got, fmt.Sprintf("shards %d", k))
	}
}
