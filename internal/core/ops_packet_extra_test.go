package core

import (
	"testing"
)

func TestDot11FeaturesOp(t *testing.T) {
	ds := smallDS(t, "P2")
	out, err := opDot11Features(nil, []Value{Packets{DS: ds}}, params{})
	if err != nil {
		t.Fatal(err)
	}
	f := out.(*Frame)
	if f.N != len(ds.Packets) {
		t.Fatalf("rows %d != packets %d", f.N, len(ds.Packets))
	}
	for _, name := range []string{"subtype", "is_mgmt", "retry", "duration", "tx_rate", "tx_deauth_rate", "payload_len"} {
		if f.Col(name) == nil {
			t.Errorf("missing column %q", name)
		}
	}
	// Deauth frames must show a rising per-transmitter deauth rate.
	var maxDeauthRate float64
	for _, v := range f.Col("tx_deauth_rate").F {
		if v > maxDeauthRate {
			maxDeauthRate = v
		}
	}
	if maxDeauthRate < 2 {
		t.Errorf("max deauth rate %v; the flood should drive it up", maxDeauthRate)
	}
	// 802.11 management share should be substantial (beacons).
	mgmt := 0.0
	for _, v := range f.Col("is_mgmt").F {
		mgmt += v
	}
	if mgmt < float64(f.N)/10 {
		t.Errorf("only %v management frames", mgmt)
	}
}

func TestKitsuneFeaturesCustomLambdas(t *testing.T) {
	ds := smallDS(t, "P1")
	out, err := opKitsuneFeatures(nil, []Value{Packets{DS: ds}}, params{
		"lambdas": []any{0.5, 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := out.(*Frame)
	if len(f.Cols) != 26 { // 2 lambdas x 13 stats
		t.Fatalf("cols = %d, want 26", len(f.Cols))
	}
	if f.Col("k_0.5_srcmean") == nil || f.Col("k_0.05_jitstd") == nil {
		t.Fatalf("lambda-named columns missing: %v", f.Names()[:4])
	}
}

func TestNewAppLayerFields(t *testing.T) {
	ds := smallDS(t, "F1") // has benign MQTT + HTTP and an HTTP flood
	out, err := opFieldExtract(nil, []Value{Packets{DS: ds}}, params{
		"fields": []any{"is_http", "http_is_req", "http_path_len", "is_mqtt", "mqtt_type", "mqtt_topic_len"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := out.(*Frame)
	sum := func(name string) float64 {
		var s float64
		for _, v := range f.Col(name).F {
			s += v
		}
		return s
	}
	if sum("is_http") == 0 {
		t.Error("no HTTP packets flagged")
	}
	if sum("is_mqtt") == 0 {
		t.Error("no MQTT packets flagged")
	}
	if sum("http_path_len") == 0 {
		t.Error("HTTP request paths not measured")
	}
	if sum("mqtt_topic_len") == 0 {
		t.Error("MQTT topics not measured")
	}
}

func TestApplyAggregatesParallelMatchesSerial(t *testing.T) {
	// Build a frame with >256 groups to engage the worker pool and check
	// the result matches a small serial case computed per group.
	n := 2048
	f := NewFrame(n)
	keys := make([]string, n)
	ts := make([]float64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = string(rune('a' + i%300)) // 300 groups
		ts[i] = float64(i)
		v[i] = float64(i % 7)
	}
	f.AddS("k", keys)
	f.AddF("ts", ts)
	f.AddF("v", v)
	g, err := groupRows(f, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := opApplyAggregates(nil, []Value{g}, params{
		"list": []any{map[string]any{"col": "v", "fn": "sum"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	af := out.(*Frame)
	if af.N != len(g.Groups) {
		t.Fatalf("agg rows = %d, want %d", af.N, len(g.Groups))
	}
	// Spot-check group sums independently.
	for gi := 0; gi < 5; gi++ {
		var want float64
		for _, r := range g.Groups[gi] {
			want += v[r]
		}
		if got := af.Col("v_sum").F[gi]; got != want {
			t.Fatalf("group %d sum = %v, want %v", gi, got, want)
		}
	}
}
