package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadPipelineFromRepoTemplate(t *testing.T) {
	// The template shipped with the custom-algorithm example must parse
	// and type-check through the public loader.
	path := filepath.Join("..", "..", "examples", "custom-algorithm", "my-detector.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("template not present: %v", err)
	}
	p, err := LoadPipeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-detector" || len(p.Ops) != 7 {
		t.Fatalf("parsed %q with %d ops", p.Name, len(p.Ops))
	}
}

func TestLoadPipelineMissingFile(t *testing.T) {
	if _, err := LoadPipeline("/no/such/file.json"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	p, err := ParsePipeline([]byte(fig4Template))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParsePipeline(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if q.Name != p.Name || len(q.Ops) != len(p.Ops) {
		t.Fatal("round trip changed the pipeline")
	}
}
