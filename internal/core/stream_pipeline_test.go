package core

import (
	"bytes"
	"runtime/debug"
	"testing"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/pcap"
)

// slowSource delays every chunk pull, simulating a decode-bound source
// (e.g. a cold disk) so the downstream stages stall on the bounded
// channel. It hides the wrapped source's Labeled method on purpose.
type slowSource struct {
	inner dataset.Source
	delay time.Duration
}

func (s *slowSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *slowSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	time.Sleep(s.delay)
	return s.inner.Next(maxRows, maxBytes)
}

func (s *slowSource) Reset() error { return s.inner.Reset() }

// maxChunkWire computes the largest wire-byte weight of any row-bounded
// chunk window, the unit of the pipeline's O(depth × chunk) memory bound.
func maxChunkWire(ds *dataset.Labeled, chunk int) int {
	maxW := 0
	for i := 0; i < len(ds.Packets); i += chunk {
		end := i + chunk
		if end > len(ds.Packets) {
			end = len(ds.Packets)
		}
		w := 0
		for _, p := range ds.Packets[i:end] {
			w += p.WireLen()
		}
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}

// TestStreamPipelineBackpressure is the issue's stress test: a slow
// source (decode-bound) and a slow sink (ordered-op-bound kitsune fold)
// both exercise backpressure on the bounded channels. The run must stay
// bit-identical to sequential streaming, record stall time on the
// starved side, and keep in-flight bytes bounded by O((depth + workers)
// × chunk) — not trace size.
func TestStreamPipelineBackpressure(t *testing.T) {
	spec, ok := dataset.Get("P1")
	if !ok {
		t.Fatal("no dataset P1")
	}
	ds := spec.Generate(0.05)
	p := kitsunePipeline()
	// At least 16 chunks so several are in flight at every stage.
	chunk := len(ds.Packets) / 16
	if chunk < 4 {
		t.Fatalf("dataset too small (%d packets) to stress the pipeline", len(ds.Packets))
	}

	ref := NewEngine(p)
	ref.Seed = 7
	if err := ref.TrainStream(ds, StreamConfig{ChunkRows: chunk}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.TestStream(ds, StreamConfig{ChunkRows: chunk})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		delay time.Duration
	}{
		// The kitsune fold runs in the sink; with an instant source the
		// sink is the bottleneck and the source stalls on the full queue.
		{"slow-sink", 0},
		// With a delayed source the ops/sink stages starve instead.
		{"slow-source", 500 * time.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := StreamConfig{ChunkRows: chunk, PipelineDepth: 2, Workers: 2}
			eng := NewEngine(p)
			eng.Seed = 7
			if err := eng.TrainStream(ds, StreamConfig{ChunkRows: chunk}); err != nil {
				t.Fatal(err)
			}
			var src dataset.Source = dataset.NewSliceSource(ds)
			if tc.delay > 0 {
				src = &slowSource{inner: src, delay: tc.delay}
			}
			got, err := eng.RunStream(src, ModeTest, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualResults(t, want, got, tc.name)

			st := eng.LastStream
			if !st.Pipelined || st.Chunks == 0 {
				t.Fatalf("LastStream not populated: %+v", st)
			}
			if st.PeakInFlightBytes <= 0 {
				t.Error("PeakInFlightBytes not tracked")
			}
			bound := int64(3*(cfg.PipelineDepth+cfg.Workers)+4) * int64(maxChunkWire(ds, chunk))
			if st.PeakInFlightBytes > bound {
				t.Errorf("in-flight bytes %d exceed O(depth×chunk) bound %d", st.PeakInFlightBytes, bound)
			}
			if tc.delay > 0 && st.OpsStallNS == 0 {
				t.Error("slow source starved the op workers but OpsStallNS is zero")
			}
			if tc.delay == 0 && st.SourceStallNS == 0 {
				t.Error("slow sink should have stalled the source but SourceStallNS is zero")
			}
		})
	}
}

// TestStreamPipelineErrorEquivalence pins the failure contract: the
// pipeline reports the same error as the sequential loop — the first
// failing op in stream order, identically wrapped — regardless of which
// worker hit it first.
func TestStreamPipelineErrorEquivalence(t *testing.T) {
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.05)
	p := &Pipeline{
		Name:        "stream-bad-filter",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl"}}},
			{Func: "filter", Input: []string{"X"}, Output: "Xf",
				Params: map[string]any{"col": "no_such_column", "op": ">", "value": 0.0}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree"}},
			{Func: "train", Input: []string{"m", "Xf"}, Output: "fit"},
		},
	}
	seq := NewEngine(p)
	seqErr := seq.TrainStream(ds, StreamConfig{ChunkRows: 64})
	if seqErr == nil {
		t.Fatal("sequential run should have failed")
	}
	for _, shape := range []StreamConfig{
		{ChunkRows: 64, PipelineDepth: 2},
		{ChunkRows: 64, PipelineDepth: 4, Workers: 4},
	} {
		pe := NewEngine(p)
		pipErr := pe.TrainStream(ds, shape)
		if pipErr == nil {
			t.Fatalf("pipelined run (depth %d, workers %d) should have failed", shape.PipelineDepth, shape.Workers)
		}
		if seqErr.Error() != pipErr.Error() {
			t.Errorf("error mismatch (depth %d, workers %d):\nsequential: %v\npipelined:  %v",
				shape.PipelineDepth, shape.Workers, seqErr, pipErr)
		}
	}
}

// TestStreamPipelinedEmptyDataset mirrors TestStreamEmptyDataset for the
// staged pipeline: an empty trace fails exactly like batch.
func TestStreamPipelinedEmptyDataset(t *testing.T) {
	ds := &dataset.Labeled{Name: "empty", Granularity: dataset.Packet}
	p := fieldPipeline()
	be := NewEngine(p)
	_, berr := be.run(ds, ModeTrain)
	se := NewEngine(p)
	serr := se.TrainStream(ds, StreamConfig{ChunkRows: 64, PipelineDepth: 2, Workers: 2})
	if (berr == nil) != (serr == nil) {
		t.Fatalf("batch err %v vs pipelined err %v", berr, serr)
	}
	if berr != nil && serr != nil && berr.Error() != serr.Error() {
		t.Fatalf("error mismatch:\nbatch:     %v\npipelined: %v", berr, serr)
	}
}

// noRecycleSource hides the wrapped source's Recycler so a run over the
// same capture allocates every packet buffer fresh (the comparison
// baseline for the pooling regression test).
type noRecycleSource struct {
	inner *dataset.PcapSource
}

func (s *noRecycleSource) Meta() dataset.SourceMeta { return s.inner.Meta() }

func (s *noRecycleSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	return s.inner.Next(maxRows, maxBytes)
}

func (s *noRecycleSource) Reset() error { return s.inner.Reset() }

func (s *noRecycleSource) Err() error { return s.inner.Err() }

// TestStreamPooledChunkAllocs is the allocation regression test for the
// buffer pool chain (pcap → dataset → core): with a recycling source and
// a fully streamed pipeline, steady-state packet buffers come from the
// pool, so a pass over the capture must allocate markedly less than the
// same pass with recycling hidden — the wire bytes no longer hit the
// allocator per chunk.
func TestStreamPooledChunkAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; allocation thresholds do not hold")
	}
	spec, ok := dataset.Get("P0")
	if !ok {
		t.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.1)
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	br, err := pcap.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wire := 0
	for _, p := range decoded {
		wire += p.WireLen()
	}
	// ~40 chunks regardless of trace scale, so most chunks run against a
	// warmed pool even with several chunks in flight.
	chunk := len(decoded)/40 + 1

	// No iat: the whole test pass fans out to workers and retains nothing,
	// which is exactly the recycling-eligible shape.
	p := &Pipeline{
		Name:        "stream-pool",
		Granularity: "packet",
		Ops: []OpSpec{
			{Func: "field_extract", Input: []string{InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"len", "ttl", "dst_port"}}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
	eng := NewEngine(p)
	eng.Seed = 7
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}

	// The pools (packet buffers, chunk jobs) start empty, so the first
	// pass over a capture allocates everything regardless of recycling.
	// Warm each source with one pass, then measure the steady-state pass.
	// GC stays off during measurement so sync.Pool contents are not
	// trimmed mid-comparison.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	run := func(cfg StreamConfig, hide bool) (uint64, *EvalResult, *dataset.PcapSource) {
		ps, err := dataset.NewPcapSource("mem.pcap", bytes.NewReader(raw), dataset.Packet)
		if err != nil {
			t.Fatal(err)
		}
		var src dataset.Source = ps
		if hide {
			src = &noRecycleSource{inner: ps}
		}
		if _, err := eng.RunStream(src, ModeTest, cfg); err != nil {
			t.Fatal(err)
		}
		if err := ps.Reset(); err != nil {
			t.Fatal(err)
		}
		before := heapAllocBytes()
		res, err := eng.RunStream(src, ModeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return heapAllocBytes() - before, res, ps
	}

	seqCfg := StreamConfig{ChunkRows: chunk}
	pipeCfg := StreamConfig{ChunkRows: chunk, PipelineDepth: 2, Workers: 2}

	pooledB, pooledRes, ps := run(seqCfg, false)
	freshB, freshRes, _ := run(seqCfg, true)
	pipeB, pipeRes, _ := run(pipeCfg, false)

	requireEqualResults(t, pooledRes, freshRes, "pooled vs fresh")
	requireEqualResults(t, pooledRes, pipeRes, "pooled vs pipelined")

	gets, reuses := ps.PoolStats()
	if gets == 0 {
		t.Fatal("pool never used")
	}
	if reuses < gets/2 {
		t.Errorf("pool reuse too low: %d of %d buffer requests served from pool", reuses, gets)
	}
	if pooledB >= freshB {
		t.Errorf("recycling did not reduce allocations: pooled %d B >= fresh %d B", pooledB, freshB)
	}
	if saved := int64(freshB) - int64(pooledB); saved < int64(wire)/2 {
		t.Errorf("recycling saved only %d B of %d wire bytes; pooled chunk buffers are not being reused", saved, wire)
	}
	if pipeB >= freshB {
		t.Errorf("pipelined recycling did not reduce allocations: %d B >= fresh %d B", pipeB, freshB)
	}
}
