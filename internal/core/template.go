package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ParsePipeline decodes a pipeline template from JSON — the file format a
// Lumen user fills in (paper Fig. 4) — and type-checks it. Unknown
// top-level fields are rejected so typos surface immediately.
func ParsePipeline(data []byte) (*Pipeline, error) {
	var p Pipeline
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: parsing pipeline template: %w", err)
	}
	eng := NewEngine(&p)
	if err := eng.Check(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPipeline reads and parses a template file.
func LoadPipeline(path string) (*Pipeline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePipeline(data)
}

// MarshalPipeline renders a pipeline back to indented JSON (for saving
// synthesized algorithms).
func MarshalPipeline(p *Pipeline) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
