package core

import (
	"strings"
	"testing"

	"lumen/internal/dataset"
	"lumen/internal/obs"
)

// obsPipeline is a small flow pipeline with an iterative model so train
// ops produce epoch events.
func obsPipeline() *Pipeline {
	return &Pipeline{
		Name:        "obs-svm",
		Granularity: "connection",
		Ops: []OpSpec{
			{Func: "flow_assemble", Input: []string{InputName}, Output: "flows", Params: map[string]any{"granularity": "connection"}},
			{Func: "flow_features", Input: []string{"flows"}, Output: "X"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "linear_svm", "epochs": 4}},
			{Func: "train", Input: []string{"m", "X"}, Output: "fit"},
		},
	}
}

func TestEngineEmitsSpansAndMetrics(t *testing.T) {
	p := obsPipeline()
	tr := obs.NewTracer()
	met := obs.NewMetrics()
	root := tr.Start("run", 0)

	eng := NewEngine(p)
	eng.Seed = 1
	eng.Span = root
	eng.Metrics = met
	ds := smallDS(t, "F1")
	if err := eng.Train(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Test(ds); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Spans()
	var ops, epochs int
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "op:"):
			ops++
			if s.Parent != spans[findSpan(t, spans, "run")].ID {
				t.Errorf("op span %q not parented to run", s.Name)
			}
			if _, ok := s.Attrs["output"]; !ok {
				t.Errorf("op span %q missing output attr", s.Name)
			}
			if _, ok := s.Attrs["rows_out"]; !ok {
				t.Errorf("op span %q missing rows_out attr", s.Name)
			}
		case strings.HasPrefix(s.Name, "epoch:"):
			epochs++
		}
	}
	// 4 ops per phase, two phases (train + test).
	if ops != 8 {
		t.Errorf("got %d op spans, want 8", ops)
	}
	if epochs != 4 {
		t.Errorf("got %d epoch spans, want 4 (epochs configured)", epochs)
	}

	if got := met.Counter("lumen_ops_total", "", "op", "train").Value(); got != 2 {
		t.Errorf("lumen_ops_total{op=train} = %d, want 2", got)
	}
	if got := met.Counter("lumen_fit_epochs_total", "", "model", "linear_svm").Value(); got != 4 {
		t.Errorf("lumen_fit_epochs_total{model=linear_svm} = %d, want 4", got)
	}
	if n := met.Histogram("lumen_op_wall_seconds", "", nil, "op", "flow_features").Count(); n != 2 {
		t.Errorf("lumen_op_wall_seconds{op=flow_features} count = %d, want 2", n)
	}
}

func findSpan(t *testing.T, spans []obs.SpanRecord, name string) int {
	t.Helper()
	for i, s := range spans {
		if s.Name == name {
			return i
		}
	}
	t.Fatalf("span %q not found", name)
	return -1
}

func TestCacheMetricsMirrorStats(t *testing.T) {
	met := obs.NewMetrics()
	c := NewCache()
	c.SetMetrics(met)
	c.SetLimit(1)

	compute := func(v Value) func() (Value, error) {
		return func() (Value, error) { return v, nil }
	}
	f1, f2 := NewFrame(0), NewFrame(0)
	if _, err, _ := c.getOrCompute("k1", compute(f1)); err != nil {
		t.Fatal(err)
	}
	if _, err, _ := c.getOrCompute("k1", compute(f1)); err != nil { // hit
		t.Fatal(err)
	}
	if _, err, _ := c.getOrCompute("k2", compute(f2)); err != nil { // miss + evict k1
		t.Fatal(err)
	}

	st := c.Stats()
	checks := []struct {
		name string
		got  uint64
		want int
	}{
		{"lumen_cache_hits_total", met.Counter("lumen_cache_hits_total", "").Value(), st.Hits},
		{"lumen_cache_misses_total", met.Counter("lumen_cache_misses_total", "").Value(), st.Misses},
		{"lumen_cache_evictions_total", met.Counter("lumen_cache_evictions_total", "").Value(), st.Evictions},
	}
	for _, ck := range checks {
		if int(ck.got) != ck.want {
			t.Errorf("%s = %d, want %d (Stats)", ck.name, ck.got, ck.want)
		}
	}
	if st.Evictions != 1 {
		t.Fatalf("expected one eviction, got %d", st.Evictions)
	}
	if g := met.Gauge("lumen_cache_entries", "").Value(); g != float64(st.Entries) {
		t.Errorf("lumen_cache_entries = %v, want %d", g, st.Entries)
	}
	if g := met.Gauge("lumen_cache_bytes", "").Value(); g != float64(st.Bytes) {
		t.Errorf("lumen_cache_bytes = %v, want %d", g, st.Bytes)
	}
}

// TestDisabledObsAddsNoOpAllocations pins the acceptance guarantee that
// an engine with no Span/Metrics attached allocates nothing extra on the
// op dispatch path: finishOp and the span setup must be branch-only.
func TestDisabledObsAddsNoOpAllocations(t *testing.T) {
	eng := NewEngine(obsPipeline())
	st := OpStats{Func: "select", Output: "x"}
	if n := testing.AllocsPerRun(1000, func() {
		var sp *obs.Span
		if eng.Span != nil {
			sp = eng.Span.Child("op:" + "select")
		}
		eng.finishOp(sp, &st, nil)
	}); n != 0 {
		t.Fatalf("disabled obs allocates %v per op, want 0", n)
	}
}

// BenchmarkOpDispatch measures a full engine run (train + test) on a
// small dataset with observability disabled — the seed-parity hot path.
func BenchmarkOpDispatch(b *testing.B) {
	spec, ok := dataset.Get("F1")
	if !ok {
		b.Skip("dataset F1 unavailable")
	}
	ds := spec.Generate(0.15)
	p := obsPipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(p)
		eng.Seed = 1
		if err := eng.Train(ds); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Test(ds); err != nil {
			b.Fatal(err)
		}
	}
}
