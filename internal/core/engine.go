package core

import (
	"fmt"
	"runtime/metrics"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

// Mode distinguishes fitting runs from inference runs of a pipeline.
type Mode int

// Execution modes.
const (
	ModeTrain Mode = iota
	ModeTest
)

// InputName is the predefined binding for the dataset a pipeline runs on.
const InputName = "$packets"

// OpSpec is one template entry — the JSON object of the paper's Fig. 4:
// a configurable operation with named inputs, one named output and
// algorithm-specific parameters.
type OpSpec struct {
	Func   string         `json:"func"`
	Input  []string       `json:"input"`
	Output string         `json:"output"`
	Params map[string]any `json:"params"`
}

// Pipeline is a complete algorithm template.
type Pipeline struct {
	Name        string   `json:"name"`
	Granularity string   `json:"granularity"` // packet | uniflow | connection
	Ops         []OpSpec `json:"ops"`
}

// Granular parses the declared classification granularity.
func (p *Pipeline) Granular() (dataset.Granularity, error) {
	switch p.Granularity {
	case "packet":
		return dataset.Packet, nil
	case "uniflow":
		return dataset.UniflowG, nil
	case "connection":
		return dataset.ConnectionG, nil
	}
	return 0, fmt.Errorf("core: pipeline %q has unknown granularity %q", p.Name, p.Granularity)
}

// EvalResult is the outcome of a test run: per-unit predictions aligned
// with ground truth and attack attribution, at the pipeline's
// classification granularity.
type EvalResult struct {
	Unit    UnitKind
	Pred    []int
	Truth   []int
	Attacks []string
	Scores  []float64 // positive-class scores when the model supports them
	UnitIdx []int
}

// OpStats records the profile of one executed operation (the paper's
// engine "generates plots of memory and time spent in each operation").
// Wall is always recorded; Allocs only when Engine.Profiling is on.
type OpStats struct {
	Func   string
	Output string
	Wall   time.Duration
	// Allocs is the delta of the process-wide heap-allocation counter
	// around the op (runtime/metrics, no stop-the-world). The counter is
	// shared by every goroutine, so when several engines run in parallel
	// an op's delta includes its neighbours' allocations — exact byte
	// attribution requires a single-engine run.
	Allocs  uint64
	OutRows int // rows when the output is a frame/grouped
	// Cached marks results not computed by this engine: served from a
	// shared Cache, or waited out while another engine computed them.
	Cached bool
}

// opCtx is passed to every op invocation.
type opCtx struct {
	mode    Mode
	outName string
	state   map[string]any
	seed    int64
	result  *EvalResult
	// span is the per-op span when tracing is on (nil otherwise); ops
	// with internal structure (train) hang child events off it.
	span *obs.Span
	// metrics is the engine's registry (nil when metrics are off).
	metrics *obs.Metrics
	// stream is set on chunked (RunStream) executions: it carries the
	// chunk's global base index and per-op fold state across chunks.
	// Nil on batch runs, so every accessor below is nil-safe.
	stream *streamCtx
	// drift collects DriftEvents raised by drift_detect ops during this
	// chunk (nil on batch runs and outside the streamed op loop).
	drift *[]DriftEvent
}

func (c *opCtx) setState(v any) { c.state[c.outName] = v }
func (c *opCtx) getState() any  { return c.state[c.outName] }

// streamCtx is the cross-chunk execution state of one RunStream pass:
// the current chunk's base index into the full stream, and fold state
// (keyed by op output name) that sequential packet ops — iat deltas,
// Kitsune/802.11 damped statistics — carry from one chunk to the next so
// chunked execution stays bit-identical to batch.
type streamCtx struct {
	base  int
	carry map[string]any
	// online mirrors StreamConfig.Online for the ops: train partial-fits
	// in ModeTrain and evaluates prequentially in ModeTest.
	online bool
	// lastResult carries the train op's per-chunk EvalResult to a
	// downstream drift_detect op within the same chunk.
	lastResult *EvalResult
}

// DriftEvent is one detection raised by a drift_detect op: the global row
// position where the Page-Hinkley statistic crossed its threshold, plus
// the statistic and running score mean at the moment of detection. Events
// surface per chunk through StreamHooks.ChunkUpdate.Drift.
type DriftEvent struct {
	Output string // drift_detect op's output name
	Seq    int    // chunk sequence number
	Base   int    // global index of the chunk's first row
	Row    int    // row offset within the chunk
	Stat   float64
	Mean   float64
}

// streamBase returns the global index of the current chunk's first
// packet (0 on batch runs, so batch op behaviour is unchanged).
func (c *opCtx) streamBase() int {
	if c == nil || c.stream == nil {
		return 0
	}
	return c.stream.base
}

// carry returns this op's cross-chunk fold state, if streaming.
func (c *opCtx) carry() (any, bool) {
	if c == nil || c.stream == nil {
		return nil, false
	}
	v, ok := c.stream.carry[c.outName]
	return v, ok
}

// setCarry saves this op's cross-chunk fold state; a no-op on batch runs.
func (c *opCtx) setCarry(v any) {
	if c == nil || c.stream == nil {
		return
	}
	c.stream.carry[c.outName] = v
}

// online reports whether this execution is an online (in-stream learning)
// RunStream pass; always false on batch runs.
func (c *opCtx) online() bool {
	return c != nil && c.stream != nil && c.stream.online
}

// Engine compiles and executes one pipeline. Train must run before Test;
// the fitted state of stateful operations (scalers, filters, models) is
// keyed by their output names.
type Engine struct {
	P    *Pipeline
	Seed int64
	// Profiling enables per-op allocation sampling (see OpStats.Allocs).
	// Off by default: wall-clock timing is always on and free, while
	// allocation counters cost one runtime/metrics read per op boundary.
	Profiling bool
	// Span, when set, becomes the parent of one child span per executed
	// op ("op:<func>" with output/rows_out/cached attributes). Nil (the
	// default) disables tracing with no allocations on the op path.
	Span *obs.Span
	// Metrics, when set, receives per-op counters and wall-time
	// histograms (lumen_ops_total, lumen_op_wall_seconds,
	// lumen_op_cache_served_total) plus fit metrics from train ops.
	Metrics *obs.Metrics

	state map[string]any
	cache *Cache
	// Profile holds per-op stats of the most recent run.
	Profile []OpStats
	// LastStream describes the most recent RunStream execution (chunk
	// count, pipeline shape, stage stalls, memory high-water marks).
	LastStream StreamStats
	trained    bool
}

// NewEngine wraps a pipeline. Call Check (or let Train do it) before use.
func NewEngine(p *Pipeline) *Engine {
	return &Engine{P: p, state: make(map[string]any)}
}

// SetCache attaches a shared cache for stateless op results (see Cache).
func (e *Engine) SetCache(c *Cache) { e.cache = c }

// cacheableOps lists the stateless, mode-independent operations whose
// results a shared Cache may serve.
var cacheableOps = map[string]bool{
	"field_extract": true, "nprint": true, "kitsune_features": true,
	"dot11_features": true, "flow_assemble": true, "flow_features": true,
	"group_by": true, "time_slice": true, "apply_aggregates": true,
	"broadcast_aggregates": true, "select": true, "filter": true,
	"concat_cols": true, "log_scale": true, "derive": true, "head": true,
}

// Check statically validates the pipeline: known ops, defined inputs,
// kind-correct connections, single final train op — the "execution engine
// verifies the file's syntax (e.g. type checks)" step of the paper.
func (e *Engine) Check() error {
	if len(e.P.Ops) == 0 {
		return fmt.Errorf("core: pipeline %q has no ops", e.P.Name)
	}
	if _, err := e.P.Granular(); err != nil {
		return err
	}
	kinds := map[string]Kind{InputName: KindPackets}
	trainSeen := false
	for i, op := range e.P.Ops {
		def, ok := opRegistry[op.Func]
		if !ok {
			return fmt.Errorf("core: op %d: unknown func %q (available: %v)", i, op.Func, Ops())
		}
		if err := checkInputs(def, op, kinds, i); err != nil {
			return err
		}
		if op.Output == "" {
			return fmt.Errorf("core: op %d (%s): missing output name", i, op.Func)
		}
		if _, dup := kinds[op.Output]; dup {
			return fmt.Errorf("core: op %d (%s): output %q already defined", i, op.Func, op.Output)
		}
		kinds[op.Output] = def.sig.out
		if op.Func == "train" {
			if trainSeen {
				return fmt.Errorf("core: op %d: multiple train ops are not supported", i)
			}
			trainSeen = true
		}
	}
	if !trainSeen {
		return fmt.Errorf("core: pipeline %q has no train op", e.P.Name)
	}
	return nil
}

func checkInputs(def *opDef, op OpSpec, kinds map[string]Kind, i int) error {
	want := def.sig.in
	switch {
	case def.sig.variadicIn:
		if len(op.Input) < len(want) {
			return fmt.Errorf("core: op %d (%s): needs at least %d inputs, got %d", i, op.Func, len(want), len(op.Input))
		}
	case len(op.Input) != len(want):
		return fmt.Errorf("core: op %d (%s): needs %d inputs, got %d", i, op.Func, len(want), len(op.Input))
	}
	for j, name := range op.Input {
		k, ok := kinds[name]
		if !ok {
			return fmt.Errorf("core: op %d (%s): input %q is not defined by any earlier op", i, op.Func, name)
		}
		exp := want[len(want)-1]
		if j < len(want) {
			exp = want[j]
		}
		if k != exp {
			return fmt.Errorf("core: op %d (%s): input %q is %v, want %v", i, op.Func, name, k, exp)
		}
	}
	return nil
}

// lastUses computes, for every value name, the index of the last op that
// reads it — the engine's dead-value elimination ("removing variables/
// data that are not used in future operations to conserve memory").
func (e *Engine) lastUses() map[string]int {
	last := map[string]int{}
	for i, op := range e.P.Ops {
		for _, in := range op.Input {
			last[in] = i
		}
	}
	return last
}

// run executes the pipeline over ds in the given mode.
func (e *Engine) run(ds *dataset.Labeled, mode Mode) (*EvalResult, error) {
	if err := e.Check(); err != nil {
		return nil, err
	}
	env := map[string]Value{InputName: Packets{DS: ds}}
	last := e.lastUses()
	e.Profile = e.Profile[:0]
	var result *EvalResult
	for i, op := range e.P.Ops {
		def := opRegistry[op.Func]
		in := make([]Value, len(op.Input))
		for j, name := range op.Input {
			v, ok := env[name]
			if !ok {
				return nil, fmt.Errorf("core: op %d (%s): value %q was freed or never set", i, op.Func, name)
			}
			in[j] = v
		}
		// Serve stateless ops through the shared cache when attached:
		// a hit returns immediately, a miss racing another engine's
		// computation blocks on its result, and only one engine per key
		// actually runs the op (singleflight).
		ctx := &opCtx{mode: mode, outName: op.Output, state: e.state, seed: e.Seed, metrics: e.Metrics}
		// The explicit nil guard (not just nil-safe methods) keeps the
		// disabled path allocation-free: the name concatenation below
		// would allocate even if Child were a no-op.
		if e.Span != nil {
			ctx.span = e.Span.Child("op:" + op.Func)
			ctx.span.Set("output", op.Output)
		}
		st := OpStats{Func: op.Func, Output: op.Output}
		var key string
		useCache := false
		if e.cache != nil && cacheableOps[op.Func] {
			key, useCache = cacheKey(op, in)
		}
		var out Value
		var err error
		start := time.Now()
		if useCache {
			var computed bool
			out, err, computed = e.cache.getOrCompute(key, func() (Value, error) {
				return e.runOp(def, ctx, op, in, &st)
			})
			st.Cached = !computed
		} else {
			out, err = e.runOp(def, ctx, op, in, &st)
		}
		// For cache hits and dedup-waits Wall is lookup/wait time, not
		// compute time — what this engine actually spent.
		st.Wall = time.Since(start)
		if err == nil {
			st.OutRows = outRows(out)
		}
		e.finishOp(ctx.span, &st, err)
		if err != nil {
			return nil, fmt.Errorf("core: op %d (%s -> %s): %w", i, op.Func, op.Output, err)
		}
		env[op.Output] = out
		e.Profile = append(e.Profile, st)
		if ctx.result != nil {
			result = ctx.result
		}
		// Free values no later op reads.
		for name, lu := range last {
			if lu == i {
				delete(env, name)
			}
		}
	}
	return result, nil
}

// runOp executes one op, sampling the allocation counter around it when
// profiling is enabled. With profiling off this performs no memory-stat
// reads at all.
func (e *Engine) runOp(def *opDef, ctx *opCtx, op OpSpec, in []Value, st *OpStats) (Value, error) {
	var before uint64
	if e.Profiling {
		before = heapAllocBytes()
	}
	out, err := def.run(ctx, in, params(op.Params))
	if e.Profiling {
		st.Allocs = heapAllocBytes() - before
	}
	return out, err
}

// finishOp closes the op's span and records its metrics. Both sinks are
// individually optional; with neither attached this does nothing. The two
// halves are split out so the sharded sink can close per-lane spans while
// emitting exactly one metrics sample per logical op execution.
func (e *Engine) finishOp(sp *obs.Span, st *OpStats, err error) {
	finishOpSpan(sp, st, err)
	e.opMetrics(st)
}

// finishOpSpan closes the op's tracing span (nil-safe).
func finishOpSpan(sp *obs.Span, st *OpStats, err error) {
	if sp != nil {
		sp.Set("rows_out", st.OutRows)
		sp.Set("cached", st.Cached)
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
}

// opMetrics records one op execution in the engine's metrics registry
// (no-op when metrics are off).
func (e *Engine) opMetrics(st *OpStats) {
	if e.Metrics == nil {
		return
	}
	e.Metrics.Counter("lumen_ops_total",
		"Pipeline operations executed (including cache-served ones).",
		"op", st.Func).Inc()
	e.Metrics.Histogram("lumen_op_wall_seconds",
		"Wall time spent per operation (lookup/wait time for cache-served ops).",
		nil, "op", st.Func).Observe(st.Wall.Seconds())
	if st.Cached {
		e.Metrics.Counter("lumen_op_cache_served_total",
			"Operations whose result came from the shared cache instead of computation.",
			"op", st.Func).Inc()
	}
}

// heapAllocName is the cumulative heap-allocation counter sampled around
// each op when profiling is enabled. Unlike runtime.ReadMemStats it does
// not stop the world, so profiled engines do not serialize every other
// goroutine in the process.
const heapAllocName = "/gc/heap/allocs:bytes"

// heapAllocBytes samples the process-wide cumulative heap allocation
// counter. The counter is process-global: an op's Allocs delta includes
// allocations made concurrently by other goroutines, so byte attribution
// is only exact when one engine runs at a time (see OpStats.Allocs).
func heapAllocBytes() uint64 {
	s := [1]metrics.Sample{{Name: heapAllocName}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// heapLiveName is the live-heap gauge sampled at chunk boundaries on
// streaming runs (lumen_stream_hwm_bytes). Like heapAllocName it avoids
// the stop-the-world cost of runtime.ReadMemStats.
const heapLiveName = "/memory/classes/heap/objects:bytes"

// heapLiveBytes samples the bytes currently occupied by live (plus
// not-yet-collected) heap objects, process-wide.
func heapLiveBytes() uint64 {
	s := [1]metrics.Sample{{Name: heapLiveName}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// outRows reports the row count of a frame or grouped output (0 for
// other value kinds), on both the computed and the cache-served paths.
func outRows(v Value) int {
	switch x := v.(type) {
	case *Frame:
		return x.N
	case *Grouped:
		return len(x.Groups)
	}
	return 0
}

// Train fits the pipeline's stateful ops and model on a labelled dataset.
func (e *Engine) Train(ds *dataset.Labeled) error {
	if _, err := e.run(ds, ModeTrain); err != nil {
		return err
	}
	e.trained = true
	return nil
}

// Test runs the fitted pipeline on a dataset and returns per-unit
// predictions with ground truth.
func (e *Engine) Test(ds *dataset.Labeled) (*EvalResult, error) {
	if !e.trained {
		return nil, fmt.Errorf("core: Test before Train on pipeline %q", e.P.Name)
	}
	res, err := e.run(ds, ModeTest)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("core: pipeline %q produced no predictions", e.P.Name)
	}
	return res, nil
}

// Reset clears fitted state so the engine can be retrained.
func (e *Engine) Reset() {
	e.state = make(map[string]any)
	e.trained = false
}

// TrainedModel returns the fitted classifier behind the pipeline's train
// op (ok=false before Train). Combined with mlkit.SaveModel this gives
// the "save_path" output of the paper's Fig. 4 template.
func (e *Engine) TrainedModel() (mlkit.Classifier, bool) {
	for _, op := range e.P.Ops {
		if op.Func != "train" {
			continue
		}
		if tr, ok := e.state[op.Output].(*Trained); ok {
			return tr.Clf, true
		}
	}
	return nil, false
}

// NewTrainableModel builds a fresh, unfitted classifier from the
// pipeline's model spec (the same construction Train performs). A
// resident daemon uses it to fit a replacement model on reservoir data in
// the background before hot-swapping it in via ReplaceModel/SwapHandle.
func (e *Engine) NewTrainableModel() (mlkit.Classifier, error) {
	for _, op := range e.P.Ops {
		if op.Func != "model" {
			continue
		}
		p := params(op.Params)
		mt := p.str("model_type", p.str("type", ""))
		if mt == "" {
			return nil, fmt.Errorf("core: pipeline %q model op has no model_type", e.P.Name)
		}
		return buildClassifier(ModelSpec{Type: mt, Params: map[string]any(p)}, e.Seed)
	}
	return nil, fmt.Errorf("core: pipeline %q has no model op", e.P.Name)
}

// ReplaceModel swaps the fitted classifier behind the pipeline's train op
// in place, leaving every other piece of fitted state (scalers, filters,
// PCA bases) untouched. It is the model half of a hot swap: a resident
// pipeline installs an mlkit.SwapHandle here once, then retargets the
// handle between chunks (see StreamHooks). The engine must already be
// trained — ReplaceModel changes which classifier scores, not whether
// the pipeline is fitted.
func (e *Engine) ReplaceModel(clf mlkit.Classifier) error {
	for _, op := range e.P.Ops {
		if op.Func != "train" {
			continue
		}
		tr, ok := e.state[op.Output].(*Trained)
		if !ok {
			return fmt.Errorf("core: ReplaceModel on untrained pipeline %q", e.P.Name)
		}
		tr.Clf = clf
		return nil
	}
	return fmt.Errorf("core: pipeline %q has no train op", e.P.Name)
}

// InstallModel installs an externally fitted classifier (e.g. loaded via
// mlkit.LoadModel) as the pipeline's trained model and marks the engine
// trained, without running a training pass. This only yields a correctly
// fitted pipeline when no other op needs training-time state: pipelines
// whose test path is preprocessing-stateless (field extraction, filters,
// log scaling) qualify; pipelines with normalize/pca/onehot ops do not —
// train those with Train/TrainStream instead.
func (e *Engine) InstallModel(clf mlkit.Classifier) error {
	if err := e.Check(); err != nil {
		return err
	}
	for _, op := range e.P.Ops {
		if op.Func != "train" {
			continue
		}
		e.state[op.Output] = &Trained{Spec: ModelSpec{Type: "installed"}, Clf: clf}
		e.trained = true
		return nil
	}
	return fmt.Errorf("core: pipeline %q has no train op", e.P.Name)
}
