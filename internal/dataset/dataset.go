// Package dataset synthesizes the benchmark corpora standing in for the 15
// public datasets the paper evaluates on (CICIDS 2017/2019 days, CTU IoT
// scenarios, IEEE IoT, Kitsune captures, AWID3). Each dataset is produced
// by a deterministic IoT traffic simulator: device behaviour models emit
// benign sessions, attack injectors overlay labelled malicious traffic,
// and the result is a time-ordered packet trace with ground truth at the
// same classification granularity as the real corpus.
//
// The substitution is documented in DESIGN.md: the paper's findings are
// about relative behaviour across algorithms and datasets, which the
// simulator preserves by reproducing the traffic properties the ported
// feature pipelines key on (rates, inter-arrival regularity, port/flag
// entropy, flow size distributions, protocol mix) and varying device
// mixes, address plans and attack parameters across datasets the way the
// real corpora differ.
package dataset

import (
	"fmt"
	"sort"

	"lumen/internal/netpkt"
)

// Granularity declares what unit the ground-truth labels of a dataset (or
// the classifications of an algorithm) apply to. Coarser granularities
// have higher values, so an algorithm can faithfully run on any dataset
// with granularity >= its own (paper §2.1: a packet-level algorithm can
// train on flow labels by propagation, but not the other way around).
type Granularity int

// Classification granularities, fine to coarse.
const (
	Packet Granularity = iota
	UniflowG
	ConnectionG
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Packet:
		return "packet"
	case UniflowG:
		return "uniflow"
	case ConnectionG:
		return "connection"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// CanFaithfullyRun reports whether an algorithm classifying at alg
// granularity can be trained/tested on labels at ds granularity without
// modifying the ground truth.
func CanFaithfullyRun(alg, ds Granularity) bool { return ds >= alg }

// Attack names used across the registry (the columns of Fig. 5).
const (
	AttackSYNFlood    = "dos-synflood"
	AttackHTTPFlood   = "dos-httpflood"
	AttackUDPFlood    = "ddos-udpflood"
	AttackDNSAmp      = "ddos-dnsamp"
	AttackPortScan    = "portscan"
	AttackOSScan      = "osscan"
	AttackBruteSSH    = "bruteforce-ssh"
	AttackBruteTelnet = "bruteforce-telnet"
	AttackMirai       = "botnet-mirai"
	AttackTorii       = "botnet-torii"
	AttackARPMitM     = "mitm-arp"
	AttackExfil       = "exfiltration"
	AttackWebAttack   = "web-attack"
	AttackDeauth      = "wifi-deauth"
	AttackEvilTwin    = "wifi-eviltwin"
)

// Labeled is a generated dataset: a time-ordered packet trace with
// per-packet ground truth. For connection-granularity datasets every
// packet of a connection carries the same label, matching how the real
// corpora are labelled per flow.
type Labeled struct {
	Name        string
	Granularity Granularity
	Link        netpkt.LinkType
	Packets     []*netpkt.Packet
	Labels      []int    // 0 benign, 1 malicious, aligned with Packets
	Attacks     []string // attack name per packet, "" for benign
	// Devices maps a local endpoint (IP or MAC string) to its device
	// kind (camera, plug, sensor, ...), enabling the device-classification
	// task of the paper's §6 extension.
	Devices map[string]string
}

// MaliciousFraction returns the fraction of packets labelled malicious.
func (l *Labeled) MaliciousFraction() float64 {
	if len(l.Labels) == 0 {
		return 0
	}
	n := 0
	for _, v := range l.Labels {
		n += v
	}
	return float64(n) / float64(len(l.Labels))
}

// AttackSet returns the distinct attack names present, sorted.
func (l *Labeled) AttackSet() []string {
	seen := map[string]bool{}
	for _, a := range l.Attacks {
		if a != "" {
			seen[a] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// DeviceClassTask relabels a dataset for the device-classification task
// of the paper's §6 ("if we were to extend our framework to do ML-based
// device classification, we would only need to add a new dataset ... and
// the rest of the functions/modules would be used directly"): each
// packet's class is its source device's kind, with class 0 ("external")
// for packets from endpoints outside the monitored site. It returns the
// class names (index = class id) and the per-packet class labels.
func DeviceClassTask(l *Labeled) (classes []string, y []int) {
	classes = []string{"external"}
	index := map[string]int{"external": 0}
	y = make([]int, len(l.Packets))
	for i, p := range l.Packets {
		var key string
		if a := p.SrcIP(); a.IsValid() {
			key = a.String()
		} else if p.Dot11 != nil {
			key = p.Dot11.Addr2.String()
		}
		kind, ok := l.Devices[key]
		if !ok {
			y[i] = 0
			continue
		}
		ci, seen := index[kind]
		if !seen {
			ci = len(classes)
			index[kind] = ci
			classes = append(classes, kind)
		}
		y[i] = ci
	}
	return classes, y
}

// Spec describes one registered dataset.
type Spec struct {
	ID          string
	Desc        string
	Granularity Granularity
	Link        netpkt.LinkType
	// Attacks lists the attack types the generator injects.
	Attacks []string
	// Generate builds the dataset at the given scale (1.0 = default
	// size); generation is deterministic per dataset.
	Generate func(scale float64) *Labeled
}

// Registry returns every registered dataset spec in ID order: F0–F9 are
// connection-granularity, P0–P4 packet-granularity (paper §5.1: "ten
// connection-level classification datasets and five packet-level").
func Registry() []Spec { return registry() }

// Get looks a spec up by ID.
func Get(id string) (Spec, bool) {
	for _, s := range registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// Merge builds a combined dataset from frac of each input — the Fig. 6
// merged-training construction ("10% of data from each dataset"). The
// sample is drawn per flow, not per leading packet: packets are grouped
// by canonical five-tuple (non-IP packets form singleton groups) and
// every k-th flow is taken in order of first appearance, so the sample
// spans the whole capture, covers every attack phase, and keeps flows
// intact for connection-level feature extraction. frac >= 1 keeps
// everything.
func Merge(name string, frac float64, parts ...*Labeled) *Labeled {
	out := &Labeled{Name: name}
	if len(parts) == 0 {
		return out
	}
	out.Granularity = parts[0].Granularity
	out.Link = parts[0].Link
	out.Devices = map[string]string{}
	for _, p := range parts {
		if p.Granularity < out.Granularity {
			out.Granularity = p.Granularity
		}
		for k, v := range p.Devices {
			out.Devices[k] = v
		}
		for _, i := range sampleFlowIndices(p, frac) {
			out.Packets = append(out.Packets, p.Packets[i])
			out.Labels = append(out.Labels, p.Labels[i])
			out.Attacks = append(out.Attacks, p.Attacks[i])
		}
	}
	out.sortByTime()
	return out
}

// sampleFlowIndices returns the packet indices of every k-th flow
// (k = round(1/frac)) of the dataset, in time order.
func sampleFlowIndices(p *Labeled, frac float64) []int {
	if frac >= 1 {
		all := make([]int, len(p.Packets))
		for i := range all {
			all[i] = i
		}
		return all
	}
	if frac <= 0 {
		return nil
	}
	stride := int(1/frac + 0.5)
	if stride < 1 {
		stride = 1
	}
	order := []int{} // group ids in first-appearance order
	groups := map[netpkt.FiveTuple]int{}
	members := [][]int{}
	for i, pkt := range p.Packets {
		ft, ok := pkt.Tuple()
		if !ok {
			order = append(order, len(members))
			members = append(members, []int{i})
			continue
		}
		key := ft.Canonical()
		gi, seen := groups[key]
		if !seen {
			gi = len(members)
			groups[key] = gi
			order = append(order, gi)
			members = append(members, nil)
		}
		members[gi] = append(members[gi], i)
	}
	var idx []int
	for n, gi := range order {
		if n%stride != 0 {
			continue
		}
		idx = append(idx, members[gi]...)
	}
	sort.Ints(idx)
	return idx
}

// sortByTime restores global time order (flow assembly requires it) while
// keeping labels aligned.
func (l *Labeled) sortByTime() {
	idx := make([]int, len(l.Packets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return l.Packets[idx[a]].Ts.Before(l.Packets[idx[b]].Ts)
	})
	pk := make([]*netpkt.Packet, len(idx))
	lb := make([]int, len(idx))
	at := make([]string, len(idx))
	for to, from := range idx {
		pk[to] = l.Packets[from]
		lb[to] = l.Labels[from]
		at[to] = l.Attacks[from]
	}
	l.Packets, l.Labels, l.Attacks = pk, lb, at
}
