package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// benchCapture generates the P0 trace once and serializes it to pcap
// bytes; the raw frames are also returned for the netpkt-level decode
// benchmarks.
func benchCapture(b *testing.B) (raw []byte, frames [][]byte, link netpkt.LinkType, wire int) {
	b.Helper()
	spec, ok := Get("P0")
	if !ok {
		b.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.5)
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, ds.Link)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			b.Fatal(err)
		}
		frames = append(frames, p.Data)
		wire += len(p.Data)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), frames, ds.Link, wire
}

// BenchmarkDecodeEager is the baseline: the full-stack eager decoder,
// one Packet plus layer structs per frame.
func BenchmarkDecodeEager(b *testing.B) {
	_, frames, link, wire := benchCapture(b)
	ts := time.Unix(0, 0)
	b.SetBytes(int64(wire))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			_ = netpkt.Decode(f, link, ts)
		}
	}
}

// BenchmarkDecodeLazyHeaders parses L2–L4 headers in place on a reused
// view — the decode depth most pipelines request.
func BenchmarkDecodeLazyHeaders(b *testing.B) {
	_, frames, link, wire := benchCapture(b)
	ts := time.Unix(0, 0)
	var v netpkt.PacketView
	b.SetBytes(int64(wire))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			v.Reset(f, link, ts)
			v.Predecode(netpkt.DecodeHint{Headers: true})
		}
	}
}

// BenchmarkDecodeLazyMeta is the metadata-only depth (ts/len/iat
// pipelines): no layer is parsed at all.
func BenchmarkDecodeLazyMeta(b *testing.B) {
	_, frames, link, wire := benchCapture(b)
	ts := time.Unix(0, 0)
	var v netpkt.PacketView
	b.SetBytes(int64(wire))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			v.Reset(f, link, ts)
		}
	}
}

// drainSource measures one full pass: pull every chunk and recycle it,
// exactly what the streaming engine's source stage does.
func drainSource(b *testing.B, src *PcapSource) {
	for {
		ck, ok := src.Next(512, 0)
		if !ok {
			break
		}
		src.Recycle(ck)
	}
	if err := src.Err(); err != nil {
		b.Fatal(err)
	}
	if err := src.Reset(); err != nil {
		b.Fatal(err)
	}
}

func benchSourceStage(b *testing.B, raw []byte, mmapFile, lazy bool, wire int) {
	var src *PcapSource
	if mmapFile {
		path := filepath.Join(b.TempDir(), "bench.pcap")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			b.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		src, err = NewPcapSource("bench.pcap", f, Packet)
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
	} else {
		var err error
		src, err = NewPcapSource("bench.pcap", bytes.NewReader(raw), Packet)
		if err != nil {
			b.Fatal(err)
		}
	}
	if lazy {
		if !src.ConfigureViews(true, netpkt.DecodeHint{Headers: true}) {
			b.Fatal("ConfigureViews refused")
		}
	}
	drainSource(b, src) // warm the pools
	b.SetBytes(int64(wire))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainSource(b, src)
	}
}

// BenchmarkSourceStage* measure the streaming engine's source stage —
// chunked decode plus buffer recycling — across the decode-mode matrix.
// The acceptance bar for the fast path is lazy ≥ 2× eager throughput.

func BenchmarkSourceStageEagerBuffered(b *testing.B) {
	raw, _, _, wire := benchCapture(b)
	benchSourceStage(b, raw, false, false, wire)
}

func BenchmarkSourceStageLazyBuffered(b *testing.B) {
	raw, _, _, wire := benchCapture(b)
	benchSourceStage(b, raw, false, true, wire)
}

func BenchmarkSourceStageEagerMmap(b *testing.B) {
	raw, _, _, wire := benchCapture(b)
	benchSourceStage(b, raw, true, false, wire)
}

func BenchmarkSourceStageLazyMmap(b *testing.B) {
	raw, _, _, wire := benchCapture(b)
	benchSourceStage(b, raw, true, true, wire)
}
