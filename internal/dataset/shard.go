package dataset

import "lumen/internal/netpkt"

// ShardID returns the shard lane in [0, k) that owns packet p when flow
// state is partitioned across k lanes. The lane is derived from the
// stable hash of the packet's direction-normalized five-tuple, so every
// packet of a flow — in either direction — lands on the same lane.
// Packets without a network layer (ARP, 802.11 management frames) have
// no flow and deterministically route to lane 0.
func ShardID(p *netpkt.Packet, k int) int {
	if k <= 1 {
		return 0
	}
	ft, ok := p.Tuple()
	if !ok {
		return 0
	}
	return int(ft.ShardHash() % uint64(k))
}

// ShardIDView is ShardID for a lazy PacketView: the five-tuple parses
// from the L2-L4 headers without materializing app layers, so lazy
// chunks route to lanes as cheaply as eager ones. Tuple lazily decodes
// headers when they have not been touched yet — callers sharing views
// across goroutines must predecode headers on the source goroutine
// first (netpkt.PacketView is not concurrency-safe while decoding).
func ShardIDView(v *netpkt.PacketView, k int) int {
	if k <= 1 {
		return 0
	}
	ft, ok := v.Tuple()
	if !ok {
		return 0
	}
	return int(ft.ShardHash() % uint64(k))
}

// ShardIDs appends the shard lane of every packet in the chunk — either
// representation — to dst (reusing its capacity) and returns the
// extended slice. k must be at most 256 so a lane fits in a byte.
func (c Chunk) ShardIDs(k int, dst []uint8) []uint8 {
	if c.Views != nil {
		for i := range c.Views {
			dst = append(dst, uint8(ShardIDView(&c.Views[i], k)))
		}
		return dst
	}
	for _, p := range c.Packets {
		dst = append(dst, uint8(ShardID(p, k)))
	}
	return dst
}
