package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"lumen/internal/netpkt"
)

// sim accumulates labelled packets for one dataset run. All randomness
// flows through one seeded source, so generation is deterministic.
type sim struct {
	rng  *rand.Rand
	recs []rec
	link netpkt.LinkType
	// ephemeral port allocator per host
	nextPort map[netip.Addr]uint16
	// devices records local endpoint -> kind for the device-
	// classification task.
	devices map[string]string
}

type rec struct {
	p      *netpkt.Packet
	label  int
	attack string
}

func newSim(seed int64) *sim {
	return &sim{
		rng:      rand.New(rand.NewSource(seed)),
		link:     netpkt.LinkEthernet,
		nextPort: make(map[netip.Addr]uint16),
		devices:  make(map[string]string),
	}
}

// device is one simulated IoT endpoint.
type device struct {
	Name string
	Kind string // camera, plug, thermostat, sensor, hub, speaker
	IP   netip.Addr
	MAC  netpkt.MAC
}

// network describes the address plan of one dataset's capture site;
// varying it across datasets is part of why cross-dataset transfer
// degrades (different scales, rates and endpoints), as the paper observes.
type network struct {
	subnet  [3]byte // /24 prefix
	gateway device
	cloud   []netip.Addr // external service endpoints
	dns     netip.Addr
	devices []device
}

// buildNetwork creates nDevices of a per-dataset kind mix.
func (s *sim) buildNetwork(subnet [3]byte, kinds []string, nDevices int) *network {
	nw := &network{subnet: subnet}
	mk := func(host byte, name, kind string) device {
		return device{
			Name: name,
			Kind: kind,
			IP:   netip.AddrFrom4([4]byte{subnet[0], subnet[1], subnet[2], host}),
			MAC:  netpkt.MAC{0x02, subnet[2], 0, 0, 0, host},
		}
	}
	nw.gateway = mk(1, "gateway", "hub")
	s.devices[nw.gateway.IP.String()] = nw.gateway.Kind
	nw.dns = netip.AddrFrom4([4]byte{8, 8, 8, 8})
	for i := 0; i < 3; i++ {
		nw.cloud = append(nw.cloud, netip.AddrFrom4([4]byte{52, 10, subnet[2], byte(10 + i)}))
	}
	for i := 0; i < nDevices; i++ {
		kind := kinds[i%len(kinds)]
		d := mk(byte(10+i), fmt.Sprintf("%s-%d", kind, i), kind)
		s.devices[d.IP.String()] = kind
		nw.devices = append(nw.devices, d)
	}
	return nw
}

func (s *sim) ephemeralPort(ip netip.Addr) uint16 {
	p, ok := s.nextPort[ip]
	if !ok {
		p = 40000 + uint16(s.rng.Intn(8000))
	}
	p++
	if p < 32768 {
		p = 40000
	}
	s.nextPort[ip] = p
	return p
}

func (s *sim) add(p *netpkt.Packet, label int, attack string) {
	if _, err := p.Serialize(); err != nil {
		panic(fmt.Sprintf("dataset: serialize: %v", err)) // generator bug, not input error
	}
	p.DecodeAppLayer() // expose DNS/HTTP/MQTT views, as a capture read-back would
	s.recs = append(s.recs, rec{p, label, attack})
}

func ts(sec float64) time.Time { return time.Unix(0, int64(sec*1e9)).UTC() }

// payload returns len pseudorandom bytes.
func (s *sim) payload(n int) []byte {
	b := make([]byte, n)
	s.rng.Read(b)
	return b
}

func (s *sim) tcp(src, dst device, sport, dport uint16, flags uint8, t float64, payload []byte, ttl uint8, label int, attack string) {
	if ttl == 0 {
		ttl = 64
	}
	s.add(&netpkt.Packet{
		Ts:      ts(t),
		Eth:     &netpkt.Ethernet{Src: src.MAC, Dst: dst.MAC, EtherType: netpkt.EtherTypeIPv4},
		IPv4:    &netpkt.IPv4{TTL: ttl, Protocol: netpkt.ProtoTCP, Src: src.IP, Dst: dst.IP, ID: uint16(s.rng.Intn(65536))},
		TCP:     &netpkt.TCP{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535, Seq: uint32(s.rng.Intn(1 << 30))},
		Payload: payload,
	}, label, attack)
}

func (s *sim) udp(src, dst device, sport, dport uint16, t float64, payload []byte, label int, attack string) {
	s.add(&netpkt.Packet{
		Ts:      ts(t),
		Eth:     &netpkt.Ethernet{Src: src.MAC, Dst: dst.MAC, EtherType: netpkt.EtherTypeIPv4},
		IPv4:    &netpkt.IPv4{TTL: 64, Protocol: netpkt.ProtoUDP, Src: src.IP, Dst: dst.IP, ID: uint16(s.rng.Intn(65536))},
		UDP:     &netpkt.UDP{SrcPort: sport, DstPort: dport},
		Payload: payload,
	}, label, attack)
}

// external wraps an off-subnet address as a pseudo-device for emission.
func external(ip netip.Addr) device {
	b := ip.As4()
	return device{Name: "ext", Kind: "ext", IP: ip, MAC: netpkt.MAC{0x02, 0xee, b[1], b[2], b[3], 1}}
}

// tcpSession emits a full TCP exchange: handshake, nReq request/response
// pairs of random payloads, FIN close. Returns the session end time.
func (s *sim) tcpSession(src, dst device, dport uint16, start float64, nReq, reqLen, respLen int, gap float64, label int, attack string) float64 {
	reqs := make([][]byte, nReq)
	resps := make([][]byte, nReq)
	for i := 0; i < nReq; i++ {
		reqs[i] = s.payload(reqLen)
		resps[i] = s.payload(respLen)
	}
	return s.tcpSessionApp(src, dst, dport, start, reqs, resps, gap, label, attack)
}

// tcpSessionApp emits a full TCP exchange carrying the given application
// payloads (so protocol-aware decoders see real HTTP/MQTT messages).
func (s *sim) tcpSessionApp(src, dst device, dport uint16, start float64, reqs, resps [][]byte, gap float64, label int, attack string) float64 {
	sport := s.ephemeralPort(src.IP)
	t := start
	jit := func() float64 { return s.rng.Float64() * 0.004 }
	s.tcp(src, dst, sport, dport, netpkt.FlagSYN, t, nil, 0, label, attack)
	t += 0.002 + jit()
	s.tcp(dst, src, dport, sport, netpkt.FlagSYN|netpkt.FlagACK, t, nil, 0, label, attack)
	t += 0.001 + jit()
	s.tcp(src, dst, sport, dport, netpkt.FlagACK, t, nil, 0, label, attack)
	for i := range reqs {
		t += gap * (0.8 + 0.4*s.rng.Float64())
		s.tcp(src, dst, sport, dport, netpkt.FlagACK|netpkt.FlagPSH, t, reqs[i], 0, label, attack)
		t += 0.003 + jit()
		var resp []byte
		if i < len(resps) {
			resp = resps[i]
		}
		s.tcp(dst, src, dport, sport, netpkt.FlagACK|netpkt.FlagPSH, t, resp, 0, label, attack)
	}
	t += 0.005 + jit()
	s.tcp(src, dst, sport, dport, netpkt.FlagFIN|netpkt.FlagACK, t, nil, 0, label, attack)
	t += 0.002
	s.tcp(dst, src, dport, sport, netpkt.FlagFIN|netpkt.FlagACK, t, nil, 0, label, attack)
	t += 0.001
	s.tcp(src, dst, sport, dport, netpkt.FlagACK, t, nil, 0, label, attack)
	return t
}

// dnsLookup emits a query/response pair.
func (s *sim) dnsLookup(src device, dns netip.Addr, name string, start float64) {
	sport := s.ephemeralPort(src.IP)
	id := uint16(s.rng.Intn(65536))
	srv := external(dns)
	s.udp(src, srv, sport, 53, start, netpkt.EncodeDNSQuery(id, name, false), 0, "")
	s.udp(srv, src, 53, sport, start+0.01+s.rng.Float64()*0.02, netpkt.EncodeDNSQuery(id, name, true), 0, "")
}

// benignDevice simulates one device's background behaviour over [0, dur).
func (s *sim) benignDevice(nw *network, d device, dur float64) {
	switch d.Kind {
	case "camera":
		// Streaming bursts to a cloud endpoint plus keepalives.
		cloud := external(nw.cloud[0])
		for t := s.rng.Float64() * 5; t < dur; t += 5 + s.rng.Float64()*3 {
			s.dnsLookup(d, nw.dns, "stream."+d.Name+".cam.example", t-0.05)
			sport := s.ephemeralPort(d.IP)
			n := 15 + s.rng.Intn(15)
			tt := t
			for i := 0; i < n; i++ {
				s.udp(d, cloud, sport, 3478, tt, s.payload(500+s.rng.Intn(700)), 0, "")
				tt += 0.03 + s.rng.Float64()*0.02
			}
		}
	case "plug", "sensor", "thermostat":
		// Periodic telemetry to the hub: real MQTT PUBLISH payloads.
		period := 3 + s.rng.Float64()*3
		topic := "home/" + d.Name + "/telemetry"
		for t := s.rng.Float64() * period; t < dur; t += period {
			s.tcpSessionApp(d, nw.gateway, 1883, t,
				[][]byte{netpkt.EncodeMQTTPublish(topic, 20+s.rng.Intn(40))},
				[][]byte{{byte(netpkt.MQTTPubAck) << 4, 2, 0, byte(s.rng.Intn(256))}},
				0.01, 0, "")
		}
		if d.Kind == "sensor" {
			// Sensors also speak CoAP (UDP 5683) to the hub, so an
			// "unknown service" alone is not a malicious tell.
			for t := 1 + s.rng.Float64()*8; t < dur; t += 9 + s.rng.Float64()*6 {
				sport := s.ephemeralPort(d.IP)
				s.udp(d, nw.gateway, sport, 5683, t, s.payload(30+s.rng.Intn(30)), 0, "")
				s.udp(nw.gateway, d, 5683, sport, t+0.01, s.payload(20), 0, "")
			}
		}
	case "speaker", "hub":
		// Cloud HTTPS chatter and DNS.
		cloud := external(nw.cloud[1%len(nw.cloud)])
		for t := 1 + s.rng.Float64()*6; t < dur; t += 8 + s.rng.Float64()*6 {
			s.dnsLookup(d, nw.dns, "api."+d.Kind+".example.com", t-0.08)
			s.tcpSession(d, cloud, 443, t, 2+s.rng.Intn(3), 200+s.rng.Intn(300), 400+s.rng.Intn(800), 0.05, 0, "")
		}
	}
	// Everyone does occasional NTP and an HTTP firmware check.
	ntp := external(netip.AddrFrom4([4]byte{129, 6, 15, 28}))
	for t := 2 + s.rng.Float64()*10; t < dur; t += 30 + s.rng.Float64()*20 {
		sport := s.ephemeralPort(d.IP)
		s.udp(d, ntp, sport, 123, t, s.payload(48), 0, "")
		s.udp(ntp, d, 123, sport, t+0.02, s.payload(48), 0, "")
	}
	fw := external(nw.cloud[2%len(nw.cloud)])
	for t := 5 + s.rng.Float64()*25; t < dur; t += 35 + s.rng.Float64()*25 {
		host := "fw." + d.Kind + ".example.com"
		s.dnsLookup(d, nw.dns, host, t-0.06)
		s.tcpSessionApp(d, fw, 80, t,
			[][]byte{netpkt.EncodeHTTPRequest("GET", "/fw/"+d.Name+"/check", host, 0)},
			[][]byte{netpkt.EncodeHTTPResponse(200, 300+s.rng.Intn(500))},
			0.03, 0, "")
	}
}

// finish sorts records by time and packages the dataset.
func (s *sim) finish(name string, g Granularity) *Labeled {
	l := &Labeled{Name: name, Granularity: g, Link: s.link, Devices: s.devices}
	l.Packets = make([]*netpkt.Packet, len(s.recs))
	l.Labels = make([]int, len(s.recs))
	l.Attacks = make([]string, len(s.recs))
	for i, r := range s.recs {
		l.Packets[i] = r.p
		l.Labels[i] = r.label
		l.Attacks[i] = r.attack
	}
	l.sortByTime()
	return l
}

// scaleDur converts the base duration by the scale factor, keeping at
// least a few seconds so sessions complete.
func scaleDur(base, scale float64) float64 { return math.Max(base*scale, 5) }
