package dataset

import (
	"net/netip"

	"lumen/internal/netpkt"
)

// registry defines the 15 stand-in datasets of Table 3: F0–F9 at
// connection granularity and P0–P4 at packet granularity (the paper's
// Table 3 names P0–P2; the Kitsune corpus contributes multiple attack
// captures, expanded here as P1/P3/P4 to reach the "five packet-level
// datasets" of §5.1). Every dataset differs in address plan, device mix,
// rates and attack set, so cross-dataset transfer degrades the way it
// does across the real corpora.
func registry() []Spec {
	return []Spec{
		{
			ID: "F0", Desc: "CICIDS 2017 Tuesday (brute force)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackBruteSSH, AttackBruteTelnet},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF0)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 10}, []string{"plug", "thermostat", "hub", "speaker"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{172, 16, 0, 1}))
				s.bruteForce(atk, nw.devices[2], 22, dur*0.2, dur*0.25, 1.6, AttackBruteSSH)
				s.bruteForce(atk, nw.devices[5], 23, dur*0.55, dur*0.25, 2, AttackBruteTelnet)
				return s.finish("F0", ConnectionG)
			},
		},
		{
			ID: "F1", Desc: "CICIDS 2017 Wednesday (DoS)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackSYNFlood, AttackHTTPFlood},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF1)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 10}, []string{"camera", "plug", "hub", "sensor"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{172, 16, 0, 10}))
				s.synFlood(atk, nw.devices[2], 80, dur*0.15, dur*0.22, 30)
				s.httpFlood(atk, nw.devices[2], dur*0.55, dur*0.22, 3)
				return s.finish("F1", ConnectionG)
			},
		},
		{
			ID: "F2", Desc: "CICIDS 2017 Thursday (web attack, infiltration)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackWebAttack, AttackExfil},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF2)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 10}, []string{"hub", "speaker", "plug", "camera"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{172, 16, 0, 20}))
				s.webAttack(atk, nw.devices[0], dur*0.2, int(20*scale)+5)
				for i := 0; i < 4; i++ {
					s.exfiltration(nw.devices[3], dur*(0.5+0.1*float64(i)), int(60*scale)+10)
				}
				return s.finish("F2", ConnectionG)
			},
		},
		{
			ID: "F3", Desc: "CICIDS 2019 01-11 (DDoS)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackUDPFlood, AttackDNSAmp},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF3)
				dur := scaleDur(50, scale)
				nw := s.buildNetwork([3]byte{10, 50, 0}, []string{"hub", "camera", "plug", "plug"}, 14)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				s.udpFlood(nw.devices[0], dur*0.2, dur*0.22, 45, 24)
				s.dnsAmplification(nw.devices[0], dur*0.6, dur*0.22, 30)
				return s.finish("F3", ConnectionG)
			},
		},
		{
			ID: "F4", Desc: "CTU IoT 1-1 (Mirai)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackMirai},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF4)
				dur := scaleDur(70, scale)
				nw := s.buildNetwork([3]byte{192, 168, 100}, []string{"camera", "plug", "sensor"}, 9)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				cnc := netip.AddrFrom4([4]byte{111, 22, 33, 44})
				s.miraiBot(nw.devices[1], cnc, nw, dur*0.15, dur*0.7)
				return s.finish("F4", ConnectionG)
			},
		},
		{
			ID: "F5", Desc: "CTU IoT 20-1 (Torii, stealthy C&C)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackTorii},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF5)
				dur := scaleDur(90, scale)
				nw := s.buildNetwork([3]byte{192, 168, 100}, []string{"plug", "sensor", "thermostat"}, 9)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				cnc := netip.AddrFrom4([4]byte{66, 85, 157, 90})
				s.toriiBot(nw.devices[0], cnc, dur*0.1, dur*0.85)
				s.toriiBot(nw.devices[3], cnc, dur*0.15, dur*0.8)
				return s.finish("F5", ConnectionG)
			},
		},
		{
			ID: "F6", Desc: "CTU IoT 3-1 (scanning)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackPortScan, AttackOSScan},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF6)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 2}, []string{"hub", "plug", "camera"}, 10)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{185, 10, 20, 30}))
				s.portScan(atk, nw.devices[0], dur*0.2, int(150*scale)+20, 0.05)
				s.osScan(atk, nw.devices[4], dur*0.6, int(80*scale)+10)
				return s.finish("F6", ConnectionG)
			},
		},
		{
			ID: "F7", Desc: "CTU IoT 7-1 (telnet brute force + Mirai)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackBruteTelnet, AttackMirai},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF7)
				dur := scaleDur(65, scale)
				nw := s.buildNetwork([3]byte{192, 168, 100}, []string{"camera", "sensor", "plug", "hub"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{45, 95, 11, 2}))
				s.bruteForce(atk, nw.devices[0], 23, dur*0.15, dur*0.25, 2.2, AttackBruteTelnet)
				cnc := netip.AddrFrom4([4]byte{111, 22, 99, 7})
				s.miraiBot(nw.devices[0], cnc, nw, dur*0.55, dur*0.35)
				return s.finish("F7", ConnectionG)
			},
		},
		{
			ID: "F8", Desc: "CTU IoT 34-1 (Mirai + UDP DDoS)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackMirai, AttackUDPFlood},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF8)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 100}, []string{"plug", "camera", "sensor"}, 9)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				cnc := netip.AddrFrom4([4]byte{111, 77, 33, 5})
				s.miraiBot(nw.devices[2], cnc, nw, dur*0.1, dur*0.4)
				s.udpFlood(nw.devices[4], dur*0.6, dur*0.22, 40, 16)
				return s.finish("F8", ConnectionG)
			},
		},
		{
			ID: "F9", Desc: "CTU IoT 8-1 (Hajime-style scanning)", Granularity: ConnectionG,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackPortScan, AttackBruteTelnet},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xF9)
				dur := scaleDur(60, scale)
				nw := s.buildNetwork([3]byte{192, 168, 3}, []string{"sensor", "plug", "hub", "thermostat"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{91, 200, 1, 9}))
				s.portScan(atk, nw.devices[1], dur*0.2, int(120*scale)+20, 0.08)
				s.bruteForce(atk, nw.devices[1], 23, dur*0.6, dur*0.22, 1.6, AttackBruteTelnet)
				return s.finish("F9", ConnectionG)
			},
		},
		{
			ID: "P0", Desc: "IEEE IoT network intrusion dataset", Granularity: Packet,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackPortScan, AttackSYNFlood, AttackARPMitM, AttackOSScan},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xB0)
				dur := scaleDur(55, scale)
				nw := s.buildNetwork([3]byte{192, 168, 0}, []string{"camera", "speaker", "plug", "hub"}, 12)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{192, 168, 0, 250}))
				s.portScan(atk, nw.devices[0], dur*0.1, int(100*scale)+20, 0.04)
				s.synFlood(atk, nw.devices[1], 80, dur*0.35, dur*0.15, 28)
				s.arpSpoof(atk, nw.devices[2], nw.gateway, dur*0.6, dur*0.2, 5)
				s.osScan(atk, nw.devices[3], dur*0.85, int(60*scale)+10)
				return s.finish("P0", Packet)
			},
		},
		{
			ID: "P1", Desc: "Kitsune capture: Mirai on a camera network", Granularity: Packet,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackMirai},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xB1)
				dur := scaleDur(70, scale)
				nw := s.buildNetwork([3]byte{192, 168, 20}, []string{"camera", "camera", "camera", "hub"}, 10)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				cnc := netip.AddrFrom4([4]byte{101, 99, 88, 77})
				s.miraiBot(nw.devices[0], cnc, nw, dur*0.25, dur*0.6)
				return s.finish("P1", Packet)
			},
		},
		{
			ID: "P2", Desc: "AWID3 (802.11 wireless attacks)", Granularity: Packet,
			Link:    netpkt.LinkDot11,
			Attacks: []string{AttackDeauth, AttackEvilTwin},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xB2)
				dur := scaleDur(45, scale)
				ap := netpkt.MAC{0x0a, 0x11, 0x22, 0x33, 0x44, 0x55}
				var stations []netpkt.MAC
				for i := byte(0); i < 6; i++ {
					stations = append(stations, netpkt.MAC{0x02, 0x99, 0, 0, 0, i + 1})
				}
				s.wifiBenign(ap, stations, dur)
				s.deauthFlood(ap, stations, dur*0.25, dur*0.15, 25)
				rogue := netpkt.MAC{0x0a, 0xde, 0xad, 0xbe, 0xef, 0x01}
				s.evilTwin(rogue, stations, dur*0.6, dur*0.25)
				return s.finish("P2", Packet)
			},
		},
		{
			ID: "P3", Desc: "Kitsune capture: SYN DoS", Granularity: Packet,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackSYNFlood},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xB3)
				dur := scaleDur(50, scale)
				nw := s.buildNetwork([3]byte{192, 168, 20}, []string{"camera", "camera", "hub"}, 9)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{172, 30, 1, 2}))
				s.synFlood(atk, nw.devices[2], 554, dur*0.3, dur*0.3, 35)
				return s.finish("P3", Packet)
			},
		},
		{
			ID: "P4", Desc: "Kitsune capture: ARP MitM", Granularity: Packet,
			Link:    netpkt.LinkEthernet,
			Attacks: []string{AttackARPMitM},
			Generate: func(scale float64) *Labeled {
				s := newSim(0xB4)
				dur := scaleDur(55, scale)
				nw := s.buildNetwork([3]byte{192, 168, 20}, []string{"camera", "speaker", "hub"}, 9)
				for _, d := range nw.devices {
					s.benignDevice(nw, d, dur)
				}
				atk := external(netip.AddrFrom4([4]byte{192, 168, 20, 240}))
				s.arpSpoof(atk, nw.devices[0], nw.gateway, dur*0.3, dur*0.45, 8)
				return s.finish("P4", Packet)
			},
		},
	}
}

// ConnectionIDs returns the IDs of connection-granularity datasets.
func ConnectionIDs() []string {
	return []string{"F0", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9"}
}

// PacketIDs returns the IDs of packet-granularity datasets.
func PacketIDs() []string { return []string{"P0", "P1", "P2", "P3", "P4"} }
