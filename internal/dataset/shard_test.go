package dataset

import (
	"net/netip"
	"testing"
	"time"

	"lumen/internal/netpkt"
)

func shardPkt(src, dst netip.Addr, sport, dport uint16) *netpkt.Packet {
	return &netpkt.Packet{
		Ts:   time.Unix(0, 0),
		IPv4: &netpkt.IPv4{Src: src, Dst: dst, Protocol: netpkt.ProtoTCP},
		TCP:  &netpkt.TCP{SrcPort: sport, DstPort: dport},
	}
}

func TestShardIDBothDirectionsSameLane(t *testing.T) {
	a := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	b := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	fwd := shardPkt(a, b, 40000, 80)
	rev := shardPkt(b, a, 80, 40000)
	for _, k := range []int{1, 2, 8, 64} {
		sf, sr := ShardID(fwd, k), ShardID(rev, k)
		if sf != sr {
			t.Errorf("k=%d: directions landed on different lanes: %d vs %d", k, sf, sr)
		}
		if sf < 0 || sf >= k {
			t.Errorf("k=%d: lane %d out of range", k, sf)
		}
	}
}

func TestShardIDNonIPRoutesToZero(t *testing.T) {
	arp := &netpkt.Packet{ARP: &netpkt.ARP{Op: 1}}
	if got := ShardID(arp, 8); got != 0 {
		t.Errorf("non-IP packet routed to lane %d, want 0", got)
	}
}

func TestChunkShardIDsAlignAndSpread(t *testing.T) {
	var pkts []*netpkt.Packet
	for i := 0; i < 64; i++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(i), 1})
		dst := netip.AddrFrom4([4]byte{10, 0, byte(i), 2})
		pkts = append(pkts, shardPkt(src, dst, uint16(1024+i), 80))
	}
	ck := Chunk{Packets: pkts}
	ids := ck.ShardIDs(8, nil)
	if len(ids) != len(pkts) {
		t.Fatalf("got %d ids for %d packets", len(ids), len(pkts))
	}
	lanes := map[uint8]bool{}
	for i, id := range ids {
		if int(id) != ShardID(pkts[i], 8) {
			t.Errorf("packet %d: ShardIDs=%d, ShardID=%d", i, id, ShardID(pkts[i], 8))
		}
		lanes[id] = true
	}
	if len(lanes) < 2 {
		t.Errorf("64 distinct flows all hashed to %d lane(s); expected spread", len(lanes))
	}
	// Appending reuses dst.
	ids2 := ck.ShardIDs(8, ids[:0])
	if &ids2[0] != &ids[0] {
		t.Error("ShardIDs did not reuse dst capacity")
	}
}
