package dataset

import (
	"sync/atomic"
	"time"
)

// Recycler is implemented by sources whose chunks can be handed back for
// buffer reuse once the consumer is completely done with them (no packet,
// Data or Payload reference retained). PcapSource implements it; the
// zero-copy view sources (SliceSource, GenSource) do not, since their
// chunks alias the materialized dataset.
type Recycler interface {
	Recycle(Chunk)
}

// NumberedChunk is a chunk with its position in the stream, as emitted by
// a Pump. Seq starts at 0 and increments by one per chunk, so consumers
// that fan chunks out to parallel workers can recombine results in stream
// order.
type NumberedChunk struct {
	Seq int
	Chunk
}

// PumpConfig shapes a Pump.
type PumpConfig struct {
	// MaxRows / MaxBytes bound each chunk (Source.Next semantics).
	MaxRows  int
	MaxBytes int
	// Depth is the channel buffer: how many decoded chunks may sit
	// between the source goroutine and the consumer (minimum 1).
	Depth int
	// Recycle hands consumed chunks back to the source for buffer reuse
	// when the source implements Recycler. Enable only when the consumer
	// retains nothing from a chunk after calling Done on it.
	Recycle bool
}

// PumpStats summarizes a pump's activity so far.
type PumpStats struct {
	// Chunks is the number of chunks emitted.
	Chunks int
	// PeakInFlightBytes is the high-water mark of wire bytes decoded but
	// not yet released with Done — the pump's actual buffering, bounded
	// by O(Depth + consumer lag) chunks.
	PeakInFlightBytes int64
	// StallNS is the cumulative time the source goroutine spent blocked
	// handing chunks to a slower consumer.
	StallNS int64
}

// Pump is the pipelined source stage: a goroutine that pulls chunks from
// a Source and hands them to the consumer through a bounded channel, so
// decode overlaps with downstream work while peak memory stays
// O(Depth × chunk). Create one with StartPump, range over C, and call
// Done on each chunk when finished with it (Done drives both the
// in-flight byte accounting and, when enabled, buffer recycling).
type Pump struct {
	// C delivers chunks in stream order and is closed at end of stream
	// (or after Stop).
	C <-chan NumberedChunk

	src      Source
	rec      Recycler // nil when recycling is off
	quit     chan struct{}
	stopped  atomic.Bool
	chunks   atomic.Int64
	inFlight atomic.Int64
	peak     atomic.Int64
	stallNS  atomic.Int64
}

// StartPump launches the source goroutine. The source must not be used
// by anyone else until C closes.
func StartPump(src Source, cfg PumpConfig) *Pump {
	depth := cfg.Depth
	if depth < 1 {
		depth = 1
	}
	ch := make(chan NumberedChunk, depth)
	p := &Pump{C: ch, src: src, quit: make(chan struct{})}
	if cfg.Recycle {
		p.rec, _ = src.(Recycler)
	}
	go func() {
		defer close(ch)
		seq := 0
		for {
			ck, ok := src.Next(cfg.MaxRows, cfg.MaxBytes)
			if !ok {
				return
			}
			p.chunks.Add(1)
			p.addInFlight(int64(ck.WireBytes()))
			start := time.Now()
			select {
			case ch <- NumberedChunk{Seq: seq, Chunk: ck}:
			case <-p.quit:
				return
			}
			p.stallNS.Add(time.Since(start).Nanoseconds())
			seq++
		}
	}()
	return p
}

// addInFlight adjusts the in-flight byte count and maintains the peak.
func (p *Pump) addInFlight(d int64) {
	v := p.inFlight.Add(d)
	for {
		cur := p.peak.Load()
		if v <= cur || p.peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Done releases one delivered chunk: its bytes leave the in-flight
// account, its buffers return to the source's pool when recycling is on,
// and its backing-resource reference (Chunk.Ref) is released — for
// mmap-backed chunks from a rotated-capture watch this is what finally
// lets the file's mapping unmap. Call it exactly once per chunk received
// from C, from any goroutine, only when nothing references the chunk's
// packets anymore.
func (p *Pump) Done(ck NumberedChunk) {
	p.addInFlight(-int64(ck.WireBytes()))
	if p.rec != nil {
		p.rec.Recycle(ck.Chunk)
	}
	ck.ReleaseRef()
}

// Stop aborts the source goroutine early (e.g. when the consumer hit an
// error). C still gets closed; chunks already buffered in C are not
// drained — the consumer should keep receiving until C closes.
func (p *Pump) Stop() {
	if p.stopped.CompareAndSwap(false, true) {
		close(p.quit)
	}
}

// Err reports the error that ended the stream, if the source exposes one
// (PcapSource does). Valid once C has closed.
func (p *Pump) Err() error {
	if es, ok := p.src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

// Stats snapshots the pump's counters; safe to call concurrently.
func (p *Pump) Stats() PumpStats {
	return PumpStats{
		Chunks:            int(p.chunks.Load()),
		PeakInFlightBytes: p.peak.Load(),
		StallNS:           p.stallNS.Load(),
	}
}
