package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// TestLazyViewsMatchEagerAcrossRegistry replays the first chunk of every
// registered dataset through both PcapSource decode modes: materialized
// lazy views must be identical to the eagerly decoded packets on each
// dataset's real traffic mix (every link type, protocol blend and attack
// shape the generators produce).
func TestLazyViewsMatchEagerAcrossRegistry(t *testing.T) {
	const rows = 200
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			ds := spec.Generate(0.05)
			n := len(ds.Packets)
			if n > rows {
				n = rows
			}
			if n == 0 {
				t.Skip("generator produced no packets at this scale")
			}
			var buf bytes.Buffer
			w, err := pcap.NewWriter(&buf, ds.Link)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ds.Packets[:n] {
				if err := w.WritePacket(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()

			eager, err := NewPcapSource(spec.ID, bytes.NewReader(raw), spec.Granularity)
			if err != nil {
				t.Fatal(err)
			}
			eck, ok := eager.Next(rows, 0)
			if !ok || eager.Err() != nil {
				t.Fatalf("eager chunk: ok=%v err=%v", ok, eager.Err())
			}

			lazy, err := NewPcapSource(spec.ID, bytes.NewReader(raw), spec.Granularity)
			if err != nil {
				t.Fatal(err)
			}
			hint := netpkt.DecodeHint{Headers: true, Apps: netpkt.AppDNS | netpkt.AppHTTP | netpkt.AppMQTT}
			if !lazy.ConfigureViews(true, hint) {
				t.Fatal("ConfigureViews refused view mode")
			}
			lck, ok := lazy.Next(rows, 0)
			if !ok || lazy.Err() != nil {
				t.Fatalf("lazy chunk: ok=%v err=%v", ok, lazy.Err())
			}
			if lck.Views == nil || lck.Packets != nil {
				t.Fatalf("lazy chunk shape: views=%d packets=%d", len(lck.Views), len(lck.Packets))
			}
			if len(lck.Views) != len(eck.Packets) {
				t.Fatalf("lazy chunk has %d views, eager %d packets", len(lck.Views), len(eck.Packets))
			}
			for i := range lck.Views {
				got := lck.Views[i].Materialize()
				if !reflect.DeepEqual(got, eck.Packets[i]) {
					t.Fatalf("packet %d differs:\nview:  %+v\neager: %+v", i, got, eck.Packets[i])
				}
			}
		})
	}
}
