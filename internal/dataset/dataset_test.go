package dataset

import (
	"testing"

	"lumen/internal/flow"
	"lumen/internal/netpkt"
)

func TestRegistryShape(t *testing.T) {
	specs := Registry()
	if len(specs) != 15 {
		t.Fatalf("registry has %d datasets, want 15 (10 connection + 5 packet)", len(specs))
	}
	nConn, nPkt := 0, 0
	for _, s := range specs {
		switch s.Granularity {
		case ConnectionG:
			nConn++
		case Packet:
			nPkt++
		}
		if s.ID == "" || s.Desc == "" || s.Generate == nil || len(s.Attacks) == 0 {
			t.Errorf("spec %q incomplete", s.ID)
		}
	}
	if nConn != 10 || nPkt != 5 {
		t.Errorf("granularity mix %d conn / %d pkt, want 10/5", nConn, nPkt)
	}
}

func TestGetKnownAndUnknown(t *testing.T) {
	if _, ok := Get("F5"); !ok {
		t.Error("F5 should exist")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestEveryDatasetGenerates(t *testing.T) {
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			ds := spec.Generate(0.3)
			if len(ds.Packets) < 100 {
				t.Fatalf("%s: only %d packets", spec.ID, len(ds.Packets))
			}
			if len(ds.Labels) != len(ds.Packets) || len(ds.Attacks) != len(ds.Packets) {
				t.Fatalf("%s: label/attack slices misaligned", spec.ID)
			}
			frac := ds.MaliciousFraction()
			if frac <= 0.02 || frac >= 0.9 {
				t.Errorf("%s: malicious fraction %.3f outside (0.02, 0.9)", spec.ID, frac)
			}
			// Time ordering (flow assembly depends on it).
			for i := 1; i < len(ds.Packets); i++ {
				if ds.Packets[i].Ts.Before(ds.Packets[i-1].Ts) {
					t.Fatalf("%s: packets out of time order at %d", spec.ID, i)
				}
			}
			// Declared attacks actually appear.
			got := map[string]bool{}
			for _, a := range ds.AttackSet() {
				got[a] = true
			}
			for _, want := range spec.Attacks {
				if !got[want] {
					t.Errorf("%s: declared attack %q absent from trace", spec.ID, want)
				}
			}
			// Raw bytes present and decodable for every packet.
			for i, p := range ds.Packets {
				if len(p.Data) == 0 {
					t.Fatalf("%s: packet %d has no wire bytes", spec.ID, i)
				}
			}
		})
	}
}

func TestGenerationDeterministic(t *testing.T) {
	spec, _ := Get("F1")
	a := spec.Generate(0.3)
	b := spec.Generate(0.3)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if !a.Packets[i].Ts.Equal(b.Packets[i].Ts) || a.Labels[i] != b.Labels[i] {
			t.Fatalf("run differs at packet %d", i)
		}
		if string(a.Packets[i].Data) != string(b.Packets[i].Data) {
			t.Fatalf("wire bytes differ at packet %d", i)
		}
	}
}

func TestConnectionLabelsAreConsistentPerConnection(t *testing.T) {
	// Connection-granularity ground truth requires every packet of a
	// connection to carry the same label — the property that makes
	// faithful connection-level training possible (paper §2.1).
	for _, id := range ConnectionIDs() {
		spec, _ := Get(id)
		ds := spec.Generate(0.25)
		conns := flow.Connections(ds.Packets, flow.Options{})
		for _, c := range conns {
			first := -1
			for _, pi := range c.Packets() {
				if first == -1 {
					first = ds.Labels[pi]
				} else if ds.Labels[pi] != first {
					t.Fatalf("%s: connection %v mixes labels", id, c.Tuple)
					break
				}
			}
		}
	}
}

func TestAWID3HasNoIPLayer(t *testing.T) {
	spec, _ := Get("P2")
	ds := spec.Generate(0.3)
	if ds.Link != netpkt.LinkDot11 {
		t.Fatalf("P2 link = %v, want 802.11", ds.Link)
	}
	for i, p := range ds.Packets {
		if p.IPv4 != nil || p.TCP != nil {
			t.Fatalf("packet %d has an IP layer in the 802.11 dataset", i)
		}
		if p.Dot11 == nil {
			t.Fatalf("packet %d missing Dot11 layer", i)
		}
	}
	// No five-tuples -> no connections: connection-level algorithms
	// cannot faithfully run here (paper Obs. 4).
	if conns := flow.Connections(ds.Packets, flow.Options{}); len(conns) != 0 {
		t.Errorf("802.11 dataset produced %d connections, want 0", len(conns))
	}
}

func TestGranularityOrdering(t *testing.T) {
	cases := []struct {
		alg, ds Granularity
		want    bool
	}{
		{Packet, Packet, true},
		{Packet, ConnectionG, true}, // propagate flow label to packets
		{ConnectionG, Packet, false},
		{ConnectionG, ConnectionG, true},
		{UniflowG, ConnectionG, true},
		{UniflowG, Packet, false},
	}
	for _, c := range cases {
		if got := CanFaithfullyRun(c.alg, c.ds); got != c.want {
			t.Errorf("CanFaithfullyRun(%v, %v) = %v, want %v", c.alg, c.ds, got, c.want)
		}
	}
}

func TestMergeKeepsAlignmentAndOrder(t *testing.T) {
	a, _ := Get("F0")
	b, _ := Get("F1")
	da, db := a.Generate(0.2), b.Generate(0.2)
	m := Merge("AB", 0.1, da, db)
	// Flow-sampled: roughly 10% of each part, never the leading prefix.
	total := len(da.Packets) + len(db.Packets)
	if len(m.Packets) < total/30 || len(m.Packets) > total/3 {
		t.Fatalf("merged size %d not near 10%% of %d", len(m.Packets), total)
	}
	if len(m.Labels) != len(m.Packets) || len(m.Attacks) != len(m.Packets) {
		t.Fatal("merged slices misaligned")
	}
	for i := 1; i < len(m.Packets); i++ {
		if m.Packets[i].Ts.Before(m.Packets[i-1].Ts) {
			t.Fatal("merged packets out of time order")
		}
	}
	if m.Granularity != ConnectionG {
		t.Errorf("merged granularity = %v, want connection", m.Granularity)
	}
}

func TestToriiIsStealthy(t *testing.T) {
	// The Torii stand-in must be low-rate relative to benign traffic:
	// its packets/sec during the attack window should be well below the
	// loud attacks'. Sanity-check by packet share: malicious share in F5
	// should be below F1's (DoS).
	f5, _ := Get("F5")
	f1, _ := Get("F1")
	s5 := f5.Generate(0.3).MaliciousFraction()
	s1 := f1.Generate(0.3).MaliciousFraction()
	if s5 >= s1 {
		t.Errorf("Torii share %.3f should be below DoS share %.3f", s5, s1)
	}
}

func TestScaleGrowsDataset(t *testing.T) {
	spec, _ := Get("F1")
	small := spec.Generate(0.2)
	big := spec.Generate(0.5)
	if len(big.Packets) <= len(small.Packets) {
		t.Errorf("scale 0.5 (%d pkts) should exceed scale 0.2 (%d pkts)", len(big.Packets), len(small.Packets))
	}
}
