package dataset

import (
	"fmt"
	"strings"
	"time"
)

// Concat joins datasets into one trace on a continued timeline: each
// subsequent part's packet timestamps are shifted so its first packet
// lands one millisecond after the previous part's last. The parts must
// share a link type. Labels, attacks and device maps carry over. The
// shift mutates the parts' packets in place (they are shared, not
// copied), which is fine for freshly generated datasets — the usual way
// drifting-traffic scenarios are synthesized.
func Concat(parts ...*Labeled) (*Labeled, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: Concat of nothing")
	}
	out := &Labeled{
		Granularity: parts[0].Granularity,
		Link:        parts[0].Link,
	}
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		if p.Link != out.Link {
			return nil, fmt.Errorf("dataset: Concat mixes link types (%v, %v)", out.Link, p.Link)
		}
		names = append(names, p.Name)
		if n := len(out.Packets); n > 0 && len(p.Packets) > 0 {
			shift := out.Packets[n-1].Ts.Add(time.Millisecond).Sub(p.Packets[0].Ts)
			for _, pkt := range p.Packets {
				pkt.Ts = pkt.Ts.Add(shift)
			}
		}
		out.Packets = append(out.Packets, p.Packets...)
		out.Labels = append(out.Labels, p.Labels...)
		out.Attacks = append(out.Attacks, p.Attacks...)
		for k, v := range p.Devices {
			if out.Devices == nil {
				out.Devices = map[string]string{}
			}
			out.Devices[k] = v
		}
	}
	out.Name = strings.Join(names, "+")
	return out, nil
}
