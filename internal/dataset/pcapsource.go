package dataset

import (
	"errors"
	"fmt"
	"io"
	"os"

	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// PcapSource streams a pcap capture as chunks without ever decoding the
// whole file — the genuinely bounded-memory ingestion path: peak memory
// is one chunk of decoded packets, independent of capture size. Packets
// carry zero labels (live captures have no ground truth).
//
// When the underlying stream is a regular file, the source memory-maps
// it and reads zero-copy: record bytes are views into the mapping, with
// no per-record copy or allocation. Consumers may additionally opt into
// lazy chunks of netpkt.PacketView via ConfigureViews (the ViewSource
// interface), skipping eager per-packet Decode entirely. In mmap mode
// the caller must Close the source once every chunk is released; chunk
// data is invalid afterwards.
type PcapSource struct {
	name string
	rs   io.ReadSeeker
	r    *pcap.Reader
	gran Granularity
	base int
	pool *pcap.BufferPool
	// view/hint select lazy PacketView chunks (ConfigureViews).
	view bool
	hint netpkt.DecodeHint
	// refs: every emitted zero-copy chunk retains a reference on the file
	// mapping (EnableChunkRefs), so chunks stay valid past Close.
	refs bool
	// emitted tracks the at-least-one-chunk contract for empty captures.
	emitted bool
	done    bool
	err     error
}

// NewPcapSource opens a capture for chunked streaming. rs must be
// positioned at the pcap global header; it is retained for Reset.
// Regular files are memory-mapped (zero-copy reads); other streams use
// the buffered reader. The source carries a buffer pool: consumers that
// fully process a chunk without retaining its packets may hand it back
// with Recycle, and the decoder reuses the buffers for later chunks.
func NewPcapSource(name string, rs io.ReadSeeker, gran Granularity) (*PcapSource, error) {
	return NewPcapSourcePooled(name, rs, gran, pcap.NewBufferPool())
}

// NewPcapSourcePooled opens a capture like NewPcapSource, but drawing
// decode buffers from the caller's pool instead of a private one. A
// rotated-capture watch streams many per-file sources back to back;
// sharing one pool across them keeps chunk buffers recycling across file
// boundaries.
func NewPcapSourcePooled(name string, rs io.ReadSeeker, gran Granularity, pool *pcap.BufferPool) (*PcapSource, error) {
	var r *pcap.Reader
	if f, ok := rs.(*os.File); ok {
		if mr, err := pcap.OpenMmap(f); err == nil {
			r = mr
		}
	}
	if r == nil {
		var err error
		r, err = pcap.NewReader(rs)
		if err != nil {
			return nil, err
		}
	}
	r.SetBufferPool(pool)
	return &PcapSource{name: name, rs: rs, r: r, gran: gran, pool: pool}, nil
}

// EnableChunkRefs makes every non-empty chunk of an mmap-backed source
// carry a retained reference on the file mapping (Chunk.Ref), shifting
// the unmap point from Close to the release of the last in-flight chunk:
// Close then only drops the reader's owner reference, and consumers
// release per-chunk refs via Chunk.ReleaseRef (dataset.Pump.Done does it
// automatically). This is what lets a rotated-capture watch serve
// zero-copy chunks that outlive each file's reader. It reports whether
// refs are active — false on buffered sources, whose chunks own their
// bytes and need no lifetime anchor.
func (p *PcapSource) EnableChunkRefs() bool {
	p.refs = p.r.ZeroCopy()
	return p.refs
}

// ConfigureViews implements ViewSource: with on=true, Next emits chunks
// of lazy PacketViews predecoded to hint's depth instead of eagerly
// decoded Packets. PcapSource always honours the request.
func (p *PcapSource) ConfigureViews(on bool, hint netpkt.DecodeHint) bool {
	p.view, p.hint = on, hint
	return true
}

// DecodeMode describes how the source reads and decodes, for operator
// surfaces: "mmap" or "buffered", with "+lazy" when view chunks are on.
func (p *PcapSource) DecodeMode() string {
	mode := "buffered"
	if p.r.ZeroCopy() {
		mode = "mmap"
	}
	if p.view {
		mode += "+lazy"
	}
	return mode
}

// Recycle implements Recycler: it returns ck's packet data buffers and
// packet/view slice to the decoder's pool. The caller must not touch ck
// (or anything aliasing its packets' Data/Payload) afterwards. Safe to
// call concurrently with Next — a pipelined sink recycles chunks while
// the source goroutine decodes ahead. In mmap mode the record bytes
// alias the mapping and are never pooled — only the slices are. A chunk
// carrying a mapping ref is zero-copy by construction, even when the
// reader has been closed since it was cut (rotated captures).
func (p *PcapSource) Recycle(ck Chunk) {
	zc := ck.Ref != nil || p.r.ZeroCopy()
	if ck.Views != nil {
		if !zc {
			for i := range ck.Views {
				p.pool.PutData(ck.Views[i].Data)
			}
		}
		p.pool.PutViews(ck.Views)
		return
	}
	if !zc {
		for _, pkt := range ck.Packets {
			p.pool.PutData(pkt.Data)
		}
	}
	p.pool.PutPkts(ck.Packets)
}

// Close releases the memory mapping of an mmap-backed source (a no-op
// for buffered ones). Without chunk refs every outstanding chunk's data
// becomes invalid; with EnableChunkRefs only the owner reference drops,
// and in-flight chunks keep the mapping alive until their own release.
// It does not close the stream handed to NewPcapSource.
func (p *PcapSource) Close() error { return p.r.Close() }

// PoolStats reports the decode buffer pool's request/reuse counters.
func (p *PcapSource) PoolStats() (gets, reuses uint64) { return p.pool.Stats() }

// Meta implements Source.
func (p *PcapSource) Meta() SourceMeta {
	return SourceMeta{Name: p.name, Granularity: p.gran, Link: p.r.LinkType()}
}

// Next implements Source. Read errors end the stream; check Err after
// the final chunk.
func (p *PcapSource) Next(maxRows, maxBytes int) (Chunk, bool) {
	if p.done {
		return Chunk{}, false
	}
	var (
		pkts  []*netpkt.Packet
		views []netpkt.PacketView
		n     int
		err   error
	)
	if p.view {
		views, err = p.r.ReadViews(maxRows, maxBytes, p.hint)
		n = len(views)
	} else {
		pkts, err = p.r.ReadChunk(maxRows, maxBytes)
		n = len(pkts)
	}
	if errors.Is(err, io.EOF) {
		p.done = true
		if p.emitted {
			return Chunk{}, false
		}
		p.emitted = true
		return Chunk{}, true
	}
	if err != nil {
		p.done = true
		p.err = err
		if n == 0 {
			return Chunk{}, false
		}
	}
	c := Chunk{
		Base:    p.base,
		Packets: pkts,
		Views:   views,
		Labels:  make([]int, n),
		Attacks: make([]string, n),
	}
	if p.refs && n > 0 {
		if mp := p.r.Mapping(); mp != nil {
			mp.Retain()
			c.Ref = mp
		}
	}
	p.base += n
	p.emitted = true
	return c, true
}

// Err reports the read error that ended the stream, if any.
func (p *PcapSource) Err() error { return p.err }

// Reset implements Source: it rewinds to the capture start — in place
// for mmap-backed readers, via re-seek and header re-parse for buffered
// ones. The buffer pool (with whatever it accumulated) carries over to
// the new pass.
func (p *PcapSource) Reset() error {
	if !p.r.Rewind() {
		if _, err := p.rs.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("dataset: rewinding pcap source: %w", err)
		}
		r, err := pcap.NewReader(p.rs)
		if err != nil {
			return err
		}
		r.SetBufferPool(p.pool)
		p.r = r
	}
	p.base, p.emitted, p.done, p.err = 0, false, false, nil
	return nil
}
