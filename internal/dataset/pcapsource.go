package dataset

import (
	"errors"
	"fmt"
	"io"

	"lumen/internal/pcap"
)

// PcapSource streams a pcap capture as chunks without ever decoding the
// whole file — the genuinely bounded-memory ingestion path: peak memory
// is one chunk of decoded packets, independent of capture size. Packets
// carry zero labels (live captures have no ground truth).
type PcapSource struct {
	name string
	rs   io.ReadSeeker
	r    *pcap.Reader
	gran Granularity
	base int
	pool *pcap.BufferPool
	// emitted tracks the at-least-one-chunk contract for empty captures.
	emitted bool
	done    bool
	err     error
}

// NewPcapSource opens a capture for chunked streaming. rs must be
// positioned at the pcap global header; it is retained for Reset.
// The source carries a buffer pool: consumers that fully process a chunk
// without retaining its packets may hand it back with Recycle, and the
// decoder reuses the buffers for later chunks.
func NewPcapSource(name string, rs io.ReadSeeker, gran Granularity) (*PcapSource, error) {
	r, err := pcap.NewReader(rs)
	if err != nil {
		return nil, err
	}
	pool := pcap.NewBufferPool()
	r.SetBufferPool(pool)
	return &PcapSource{name: name, rs: rs, r: r, gran: gran, pool: pool}, nil
}

// Recycle implements Recycler: it returns ck's packet data buffers and
// packet slice to the decoder's pool. The caller must not touch ck (or
// anything aliasing its packets' Data/Payload) afterwards. Safe to call
// concurrently with Next — a pipelined sink recycles chunks while the
// source goroutine decodes ahead.
func (p *PcapSource) Recycle(ck Chunk) {
	for _, pkt := range ck.Packets {
		p.pool.PutData(pkt.Data)
	}
	p.pool.PutPkts(ck.Packets)
}

// PoolStats reports the decode buffer pool's request/reuse counters.
func (p *PcapSource) PoolStats() (gets, reuses uint64) { return p.pool.Stats() }

// Meta implements Source.
func (p *PcapSource) Meta() SourceMeta {
	return SourceMeta{Name: p.name, Granularity: p.gran, Link: p.r.LinkType()}
}

// Next implements Source. Read errors end the stream; check Err after
// the final chunk.
func (p *PcapSource) Next(maxRows, maxBytes int) (Chunk, bool) {
	if p.done {
		return Chunk{}, false
	}
	pkts, err := p.r.ReadChunk(maxRows, maxBytes)
	if errors.Is(err, io.EOF) {
		p.done = true
		if p.emitted {
			return Chunk{}, false
		}
		p.emitted = true
		return Chunk{}, true
	}
	if err != nil {
		p.done = true
		p.err = err
		if len(pkts) == 0 {
			return Chunk{}, false
		}
	}
	c := Chunk{
		Base:    p.base,
		Packets: pkts,
		Labels:  make([]int, len(pkts)),
		Attacks: make([]string, len(pkts)),
	}
	p.base += len(pkts)
	p.emitted = true
	return c, true
}

// Err reports the read error that ended the stream, if any.
func (p *PcapSource) Err() error { return p.err }

// Reset implements Source: it seeks back to the capture start and
// re-parses the global header. The buffer pool (with whatever it
// accumulated) carries over to the new pass.
func (p *PcapSource) Reset() error {
	if _, err := p.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("dataset: rewinding pcap source: %w", err)
	}
	r, err := pcap.NewReader(p.rs)
	if err != nil {
		return err
	}
	r.SetBufferPool(p.pool)
	p.r = r
	p.base, p.emitted, p.done, p.err = 0, false, false, nil
	return nil
}
