package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

func genF1(t *testing.T) *Labeled {
	t.Helper()
	spec, ok := Get("F1")
	if !ok {
		t.Fatal("no dataset F1")
	}
	return spec.Generate(0.05)
}

// drain pulls every chunk, checking base indices are contiguous.
func drain(t *testing.T, src Source, maxRows, maxBytes int) []Chunk {
	t.Helper()
	var out []Chunk
	next := 0
	for {
		ck, ok := src.Next(maxRows, maxBytes)
		if !ok {
			break
		}
		if ck.Base != next {
			t.Fatalf("chunk base %d, want %d", ck.Base, next)
		}
		next += len(ck.Packets)
		out = append(out, ck)
		if len(out) > 1<<20 {
			t.Fatal("source never terminates")
		}
	}
	return out
}

func TestSliceSourceChunksCoverDataset(t *testing.T) {
	ds := genF1(t)
	src := NewSliceSource(ds)
	chunks := drain(t, src, 64, 0)
	total := 0
	for _, ck := range chunks {
		if len(ck.Packets) > 64 {
			t.Fatalf("chunk of %d packets exceeds row bound", len(ck.Packets))
		}
		for j, p := range ck.Packets {
			if p != ds.Packets[ck.Base+j] {
				t.Fatalf("packet %d+%d is not a view of the dataset", ck.Base, j)
			}
			if ck.Labels[j] != ds.Labels[ck.Base+j] || ck.Attacks[j] != ds.Attacks[ck.Base+j] {
				t.Fatalf("labels misaligned at %d+%d", ck.Base, j)
			}
		}
		total += len(ck.Packets)
	}
	if total != len(ds.Packets) {
		t.Fatalf("chunks cover %d packets, dataset has %d", total, len(ds.Packets))
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
}

func TestSliceSourceUnboundedIsOneChunk(t *testing.T) {
	ds := genF1(t)
	chunks := drain(t, NewSliceSource(ds), 0, 0)
	if len(chunks) != 1 || len(chunks[0].Packets) != len(ds.Packets) {
		t.Fatalf("unbounded pull gave %d chunks", len(chunks))
	}
}

func TestSliceSourceEmptyDatasetEmitsOneChunk(t *testing.T) {
	src := NewSliceSource(&Labeled{Name: "empty"})
	chunks := drain(t, src, 64, 0)
	if len(chunks) != 1 || len(chunks[0].Packets) != 0 {
		t.Fatalf("empty dataset: got %d chunks, want exactly one empty chunk", len(chunks))
	}
}

func TestSliceSourceByteBoundProgress(t *testing.T) {
	ds := genF1(t)
	// A byte bound below any packet size must still move one packet per
	// chunk, never stall.
	chunks := drain(t, NewSliceSource(ds), 0, 1)
	if len(chunks) != len(ds.Packets) {
		t.Fatalf("1-byte bound gave %d chunks for %d packets", len(chunks), len(ds.Packets))
	}
}

func TestSliceSourceReset(t *testing.T) {
	ds := genF1(t)
	src := NewSliceSource(ds)
	a := drain(t, src, 50, 0)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	b := drain(t, src, 50, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("second pass differs after Reset")
	}
}

func TestGenSourceMatchesGenerate(t *testing.T) {
	spec, _ := Get("F1")
	src := NewGenSource(spec, 0.05)
	want := spec.Generate(0.05)
	got := src.Labeled()
	if len(got.Packets) != len(want.Packets) {
		t.Fatalf("GenSource has %d packets, Generate %d", len(got.Packets), len(want.Packets))
	}
	meta := src.Meta()
	if meta.Name != want.Name || meta.Granularity != want.Granularity || meta.Link != want.Link {
		t.Fatalf("meta %+v does not match dataset", meta)
	}
	chunks := drain(t, src, 128, 0)
	total := 0
	for _, ck := range chunks {
		total += len(ck.Packets)
	}
	if total != len(want.Packets) {
		t.Fatalf("chunks cover %d packets, want %d", total, len(want.Packets))
	}
}

// TestPcapSourceMatchesReadAll round-trips a generated trace through an
// in-memory pcap file and checks the chunked reader yields the same
// packets as the batch decode.
func TestPcapSourceMatchesReadAll(t *testing.T) {
	ds := genF1(t)
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, ds.Link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	br, err := pcap.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewPcapSource("f1.pcap", bytes.NewReader(raw), ConnectionG)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, src, 37, 0)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	var got []*netpkt.Packet
	for _, ck := range chunks {
		if len(ck.Labels) != len(ck.Packets) || len(ck.Attacks) != len(ck.Packets) {
			t.Fatal("pcap chunks must carry zero-filled labels")
		}
		got = append(got, ck.Packets...)
	}
	if len(got) != len(want) {
		t.Fatalf("chunked read got %d packets, ReadAll %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Ts.Equal(want[i].Ts) || got[i].WireLen() != want[i].WireLen() {
			t.Fatalf("packet %d differs between chunked and batch read", i)
		}
	}
	if meta := src.Meta(); meta.Link != ds.Link || meta.Name != "f1.pcap" {
		t.Fatalf("meta %+v", meta)
	}

	// Reset must replay the capture identically.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src, 37, 0)
	if len(again) != len(chunks) {
		t.Fatalf("reset pass gave %d chunks, first pass %d", len(again), len(chunks))
	}
}

func TestPcapSourceEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	src, err := NewPcapSource("empty.pcap", bytes.NewReader(buf.Bytes()), Packet)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, src, 64, 0)
	if len(chunks) != 1 || len(chunks[0].Packets) != 0 {
		t.Fatalf("empty capture: got %d chunks, want one empty chunk", len(chunks))
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
}
