package dataset

import "lumen/internal/netpkt"

// Chunk is one bounded window of a packet stream: a contiguous run of
// time-ordered packets with their labels, plus the global index of the
// first packet so downstream consumers can keep dataset-wide packet
// indices (flow assembly, unit attribution) while only ever seeing one
// chunk at a time.
type Chunk struct {
	// Base is the global index of Packets[0] in the full stream.
	Base    int
	Packets []*netpkt.Packet
	// Views is the lazy columnar alternative to Packets: zero-copy
	// PacketViews that decode layers on first touch. A chunk carries
	// either Packets or Views, never both (both nil for an empty chunk).
	// Views are only emitted by sources whose consumer opted in via
	// ViewSource.ConfigureViews; they stay valid until the chunk is
	// recycled (or the source closed, for mmap-backed sources).
	Views []netpkt.PacketView
	// Labels and Attacks align with Packets/Views; nil when the source
	// carries no ground truth (live captures).
	Labels  []int
	Attacks []string
	// Ref, when non-nil, is a reference the chunk holds on the resource
	// backing its packet bytes — a refcounted file mapping
	// (pcap.Mapping) for zero-copy chunks that must outlive their
	// reader, as rotated-capture watches emit. The chunk's final owner
	// releases it exactly once, after Recycle, via ReleaseRef; the
	// backing resource stays alive until the last in-flight chunk does.
	Ref ChunkRef
}

// ChunkRef is one releasable reference on a chunk's backing resource
// (see Chunk.Ref). pcap.Mapping implements it.
type ChunkRef interface {
	Release() error
}

// ReleaseRef releases the chunk's backing-resource reference, if it
// carries one. Call exactly once per delivered chunk, after the last
// touch of its packet bytes (dataset.Pump does this in Done).
func (c Chunk) ReleaseRef() {
	if c.Ref != nil {
		c.Ref.Release()
	}
}

// Len returns the packet count of the chunk in either representation.
func (c Chunk) Len() int {
	if c.Views != nil {
		return len(c.Views)
	}
	return len(c.Packets)
}

// WireBytes sums the on-wire sizes of the chunk's packets.
func (c Chunk) WireBytes() int {
	n := 0
	for i := range c.Views {
		n += c.Views[i].WireLen()
	}
	for _, p := range c.Packets {
		n += p.WireLen()
	}
	return n
}

// SourceMeta describes a packet source without materializing it.
type SourceMeta struct {
	Name        string
	Granularity Granularity
	Link        netpkt.LinkType
	// Devices maps local endpoints to device kinds when known.
	Devices map[string]string
}

// Source is a chunked packet stream — the bounded-memory counterpart of
// handing a whole *Labeled to the engine. Implementations must emit
// packets in non-decreasing time order and yield at least one chunk per
// pass even when the stream holds no packets (a single empty chunk), so
// consumers always observe a correctly-typed end of stream.
type Source interface {
	// Meta describes the stream (name, granularity, link type).
	Meta() SourceMeta
	// Next returns the next chunk, bounded by maxRows packets and
	// maxBytes wire bytes (each bound ignored when <= 0; a chunk always
	// contains at least one packet unless the stream is empty). The
	// second result is false once the stream is exhausted.
	Next(maxRows, maxBytes int) (Chunk, bool)
	// Reset rewinds the source so it can be streamed again.
	Reset() error
}

// ViewSource is implemented by sources that can emit chunks of lazy
// PacketViews instead of eagerly decoded Packets (PcapSource). The
// consumer — whose plan knows how deep it will look — opts in with
// ConfigureViews before streaming; hint is the decode depth to apply on
// the source goroutine. The return reports whether the source honours
// the request (a source may refuse, e.g. for link types it cannot view).
// Calling with on=false restores eager chunks.
type ViewSource interface {
	ConfigureViews(on bool, hint netpkt.DecodeHint) bool
}

// SliceSource streams an in-memory dataset as zero-copy chunk views.
// It exists so batch-materialized datasets (the synthetic corpora) run
// through the same chunked execution path as genuinely streaming sources.
type SliceSource struct {
	ds      *Labeled
	pos     int
	emitted bool
}

// NewSliceSource wraps a materialized dataset.
func NewSliceSource(ds *Labeled) *SliceSource { return &SliceSource{ds: ds} }

// Labeled exposes the underlying dataset, letting consumers that need
// the full packet set (barrier ops) avoid re-accumulating it.
func (s *SliceSource) Labeled() *Labeled { return s.ds }

// Meta implements Source.
func (s *SliceSource) Meta() SourceMeta {
	return SourceMeta{Name: s.ds.Name, Granularity: s.ds.Granularity, Link: s.ds.Link, Devices: s.ds.Devices}
}

// Next implements Source: chunks are subslice views, no copying.
func (s *SliceSource) Next(maxRows, maxBytes int) (Chunk, bool) {
	n := len(s.ds.Packets)
	if s.pos >= n {
		if s.emitted {
			return Chunk{}, false
		}
		s.emitted = true
		return Chunk{Base: s.pos}, true
	}
	end := n
	if maxRows > 0 && s.pos+maxRows < end {
		end = s.pos + maxRows
	}
	if maxBytes > 0 {
		bytes := 0
		e := s.pos
		for e < end {
			bytes += s.ds.Packets[e].WireLen()
			e++
			if bytes >= maxBytes {
				break
			}
		}
		end = e
		if end == s.pos { // always make progress
			end = s.pos + 1
		}
	}
	c := Chunk{Base: s.pos, Packets: s.ds.Packets[s.pos:end]}
	if s.ds.Labels != nil {
		c.Labels = s.ds.Labels[s.pos:end]
	}
	if s.ds.Attacks != nil {
		c.Attacks = s.ds.Attacks[s.pos:end]
	}
	s.pos = end
	s.emitted = true
	return c, true
}

// Reset implements Source.
func (s *SliceSource) Reset() error {
	s.pos, s.emitted = 0, false
	return nil
}

// GenSource is a generator-backed source: it defers dataset synthesis to
// the first pull, so building a pipeline over a registered dataset costs
// nothing until packets are actually consumed. (The simulator itself
// still materializes the trace internally to sort it into time order;
// the deferral bounds when that happens, not its peak. PcapSource is the
// genuinely O(chunk) path.)
type GenSource struct {
	spec  Spec
	scale float64
	inner *SliceSource
}

// NewGenSource wraps a registered dataset spec at the given scale.
func NewGenSource(spec Spec, scale float64) *GenSource {
	return &GenSource{spec: spec, scale: scale}
}

func (g *GenSource) materialize() *SliceSource {
	if g.inner == nil {
		g.inner = NewSliceSource(g.spec.Generate(g.scale))
	}
	return g.inner
}

// Labeled exposes the generated dataset (generating it on first call).
func (g *GenSource) Labeled() *Labeled { return g.materialize().Labeled() }

// Meta implements Source.
func (g *GenSource) Meta() SourceMeta { return g.materialize().Meta() }

// Next implements Source, generating the dataset on the first pull.
func (g *GenSource) Next(maxRows, maxBytes int) (Chunk, bool) {
	return g.materialize().Next(maxRows, maxBytes)
}

// Reset implements Source; the generated trace is kept.
func (g *GenSource) Reset() error {
	if g.inner == nil {
		return nil
	}
	return g.inner.Reset()
}
