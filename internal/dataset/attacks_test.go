package dataset

import (
	"testing"

	"lumen/internal/netpkt"
)

// attackPackets returns the packets of a dataset carrying the given
// attack label.
func attackPackets(ds *Labeled, attack string) []*netpkt.Packet {
	var out []*netpkt.Packet
	for i, a := range ds.Attacks {
		if a == attack {
			out = append(out, ds.Packets[i])
		}
	}
	return out
}

func TestSYNFloodSignature(t *testing.T) {
	spec, _ := Get("F1")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackSYNFlood)
	if len(pkts) < 50 {
		t.Fatalf("only %d synflood packets", len(pkts))
	}
	syn, other := 0, 0
	sports := map[uint16]bool{}
	for _, p := range pkts {
		if p.TCP == nil {
			t.Fatal("synflood packet without TCP")
		}
		if p.TCP.HasFlag(netpkt.FlagSYN) && !p.TCP.HasFlag(netpkt.FlagACK) {
			syn++
			sports[p.TCP.SrcPort] = true
		} else {
			other++
		}
	}
	if syn < other {
		t.Errorf("synflood should be SYN-dominated: %d SYN vs %d other", syn, other)
	}
	if len(sports) < 30 {
		t.Errorf("synflood uses only %d source ports; should be spread", len(sports))
	}
}

func TestPortScanSweepsManyPorts(t *testing.T) {
	spec, _ := Get("F6")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackPortScan)
	dports := map[uint16]bool{}
	for _, p := range pkts {
		if p.TCP != nil && p.TCP.HasFlag(netpkt.FlagSYN) && !p.TCP.HasFlag(netpkt.FlagACK) {
			dports[p.TCP.DstPort] = true
		}
	}
	if len(dports) < 40 {
		t.Errorf("portscan touched only %d ports", len(dports))
	}
}

func TestUDPFloodSpoofsManySources(t *testing.T) {
	spec, _ := Get("F3")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackUDPFlood)
	srcs := map[string]bool{}
	var bigPayloads int
	for _, p := range pkts {
		srcs[p.SrcIP().String()] = true
		if len(p.Payload) > 800 {
			bigPayloads++
		}
	}
	if len(srcs) < 10 {
		t.Errorf("udpflood from only %d sources; DDoS needs many", len(srcs))
	}
	if bigPayloads < len(pkts)/2 {
		t.Errorf("udpflood payloads too small: %d/%d large", bigPayloads, len(pkts))
	}
}

func TestDNSAmplificationLargeResponses(t *testing.T) {
	spec, _ := Get("F3")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackDNSAmp)
	if len(pkts) == 0 {
		t.Fatal("no dns amplification packets")
	}
	for _, p := range pkts {
		if p.UDP == nil || p.UDP.SrcPort != 53 {
			t.Fatal("amplification traffic must come from resolver port 53")
		}
		if len(p.Payload) < 1000 {
			t.Fatalf("amplified response only %d bytes", len(p.Payload))
		}
	}
}

func TestMiraiScansTelnet(t *testing.T) {
	spec, _ := Get("F4")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackMirai)
	telnet, cnc := 0, 0
	for _, p := range pkts {
		if p.TCP == nil {
			continue
		}
		switch {
		case p.TCP.DstPort == 23 || p.TCP.SrcPort == 23:
			telnet++
		case p.TCP.DstPort == 48101 || p.TCP.SrcPort == 48101:
			cnc++
		}
	}
	if telnet == 0 || cnc == 0 {
		t.Errorf("mirai needs both telnet scanning (%d) and C&C beacons (%d)", telnet, cnc)
	}
}

func TestToriiStaysQuietAndOddPorted(t *testing.T) {
	spec, _ := Get("F5")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackTorii)
	if len(pkts) == 0 {
		t.Fatal("no torii packets")
	}
	// All C&C ports must sit above every benign service port and below
	// Mirai's 48101 C&C region (the Fig. 10 asymmetry depends on this).
	for _, p := range pkts {
		if p.TCP == nil {
			t.Fatal("torii packet without TCP")
		}
		dp := p.TCP.DstPort
		if p.TCP.SrcPort > dp {
			dp = p.TCP.SrcPort // response direction; take the service side
		}
		_ = dp
	}
	dports := map[uint16]bool{}
	for _, p := range pkts {
		if p.TCP.HasFlag(netpkt.FlagSYN) && !p.TCP.HasFlag(netpkt.FlagACK) {
			dports[p.TCP.DstPort] = true
		}
	}
	for dp := range dports {
		if dp < 6000 || dp > 24000 {
			t.Errorf("torii port %d outside the (6000, 24000) design band", dp)
		}
	}
	if len(dports) < 3 {
		t.Errorf("torii rotated only %d ports", len(dports))
	}
	// Quiet: malicious packet share well below the flood datasets'.
	if ds.MaliciousFraction() > 0.2 {
		t.Errorf("torii share %.2f too loud", ds.MaliciousFraction())
	}
}

func TestARPSpoofGratuitousReplies(t *testing.T) {
	spec, _ := Get("P0")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackARPMitM)
	arpReplies := 0
	for _, p := range pkts {
		if p.ARP != nil && p.ARP.Op == 2 {
			arpReplies++
			if p.ARP.SenderHW == (netpkt.MAC{}) {
				t.Fatal("spoofed reply with empty MAC")
			}
		}
	}
	if arpReplies < 10 {
		t.Errorf("only %d spoofed ARP replies", arpReplies)
	}
}

func TestExfiltrationIsUploadHeavy(t *testing.T) {
	spec, _ := Get("F2")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackExfil)
	var up, down int
	for _, p := range pkts {
		if p.TCP == nil {
			continue
		}
		if p.TCP.DstPort == 8443 {
			up += len(p.Payload)
		} else {
			down += len(p.Payload)
		}
	}
	if up < 10*down+1000 {
		t.Errorf("exfiltration not upload-heavy: up=%d down=%d", up, down)
	}
}

func TestWebAttackCarriesInjectionPayloads(t *testing.T) {
	spec, _ := Get("F2")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackWebAttack)
	sawHTTP := false
	for _, p := range pkts {
		if p.HTTP != nil && p.HTTP.IsRequest {
			sawHTTP = true
			if len(p.HTTP.Path) < 10 {
				t.Errorf("web attack path suspiciously short: %q", p.HTTP.Path)
			}
		}
	}
	if !sawHTTP {
		t.Error("web attack produced no decodable HTTP requests")
	}
}

func TestDeauthFloodTargetsStations(t *testing.T) {
	spec, _ := Get("P2")
	ds := spec.Generate(0.3)
	pkts := attackPackets(ds, AttackDeauth)
	if len(pkts) < 20 {
		t.Fatalf("only %d deauth frames", len(pkts))
	}
	for _, p := range pkts {
		if p.Dot11 == nil || p.Dot11.Subtype != netpkt.Dot11Deauth {
			t.Fatal("deauth attack with non-deauth frame")
		}
	}
}

func TestEvilTwinUsesRogueBSSID(t *testing.T) {
	spec, _ := Get("P2")
	ds := spec.Generate(0.3)
	atk := attackPackets(ds, AttackEvilTwin)
	benignBSSIDs := map[netpkt.MAC]bool{}
	for i, p := range ds.Packets {
		if ds.Attacks[i] == "" && p.Dot11 != nil {
			benignBSSIDs[p.Dot11.Addr3] = true
		}
	}
	for _, p := range atk {
		if p.Dot11.Subtype == netpkt.Dot11Beacon && benignBSSIDs[p.Dot11.Addr3] {
			t.Fatal("evil twin beacons must use a rogue BSSID")
		}
	}
}

func TestBenignTelemetryDecodesAsMQTT(t *testing.T) {
	spec, _ := Get("F0")
	ds := spec.Generate(0.3)
	mqtt := 0
	for i, p := range ds.Packets {
		if ds.Attacks[i] == "" && p.MQTT != nil && p.MQTT.Type == netpkt.MQTTPublish {
			mqtt++
			if p.MQTT.Topic == "" {
				t.Error("benign PUBLISH without a topic")
			}
		}
	}
	if mqtt < 20 {
		t.Errorf("only %d benign MQTT PUBLISH packets decoded", mqtt)
	}
}

func TestBenignFirmwareChecksDecodeAsHTTP(t *testing.T) {
	spec, _ := Get("F0")
	ds := spec.Generate(0.5)
	reqs := 0
	for i, p := range ds.Packets {
		if ds.Attacks[i] == "" && p.HTTP != nil && p.HTTP.IsRequest {
			reqs++
			if p.HTTP.Method != "GET" {
				t.Errorf("benign firmware check method = %q", p.HTTP.Method)
			}
		}
	}
	if reqs == 0 {
		t.Error("no benign HTTP requests decoded")
	}
}
