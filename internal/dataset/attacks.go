package dataset

import (
	"fmt"
	"net/netip"

	"lumen/internal/netpkt"
)

// Attack injectors. Each emits labelled malicious traffic over a time
// window, with parameters chosen to mirror the signatures the ported
// algorithms key on (rate, flag mix, port entropy, payload sizes).

// synFlood: one attacker hammers victim:dport with SYNs from random
// source ports; the victim answers some with RST (half-open the rest).
func (s *sim) synFlood(attacker, victim device, dport uint16, start, dur, rate float64) {
	for t := start; t < start+dur; t += 1 / rate * (0.7 + 0.6*s.rng.Float64()) {
		sport := uint16(1024 + s.rng.Intn(60000))
		s.tcp(attacker, victim, sport, dport, netpkt.FlagSYN, t, nil, 0, 1, AttackSYNFlood)
		if s.rng.Float64() < 0.3 {
			s.tcp(victim, attacker, dport, sport, netpkt.FlagRST|netpkt.FlagACK, t+0.001, nil, 0, 1, AttackSYNFlood)
		}
	}
}

// httpFlood: rapid short HTTP request sessions with randomized paths
// (Hulk-style DoS defeats caches with unique URLs).
func (s *sim) httpFlood(attacker, victim device, start, dur, rate float64) {
	for t := start; t < start+dur; t += 1 / rate * (0.8 + 0.4*s.rng.Float64()) {
		path := fmt.Sprintf("/?r=%d", s.rng.Intn(1<<30))
		s.tcpSessionApp(attacker, victim, 80, t,
			[][]byte{netpkt.EncodeHTTPRequest("GET", path, victim.IP.String(), 0)},
			[][]byte{netpkt.EncodeHTTPResponse(200, 40)},
			0.002, 1, AttackHTTPFlood)
	}
}

// udpFlood: many spoofed sources blast the victim with large UDP
// datagrams (DDoS).
func (s *sim) udpFlood(victim device, start, dur, rate float64, nSources int) {
	srcs := make([]device, nSources)
	for i := range srcs {
		srcs[i] = external(netip.AddrFrom4([4]byte{
			byte(11 + s.rng.Intn(200)), byte(s.rng.Intn(256)), byte(s.rng.Intn(256)), byte(1 + s.rng.Intn(254)),
		}))
	}
	for t := start; t < start+dur; t += 1 / rate {
		src := srcs[s.rng.Intn(len(srcs))]
		s.udp(src, victim, uint16(1024+s.rng.Intn(60000)), uint16(1+s.rng.Intn(65535)), t, s.payload(900+s.rng.Intn(500)), 1, AttackUDPFlood)
	}
}

// dnsAmplification: small spoofed queries cause large responses at the
// victim.
func (s *sim) dnsAmplification(victim device, start, dur, rate float64) {
	resolver := external(netip.AddrFrom4([4]byte{9, 9, 9, 9}))
	for t := start; t < start+dur; t += 1 / rate {
		sport := uint16(1024 + s.rng.Intn(60000))
		// Only the reflected large responses arrive at the victim's site.
		s.udp(resolver, victim, 53, sport, t, s.payload(1200+s.rng.Intn(200)), 1, AttackDNSAmp)
	}
}

// portScan: SYN probes across many destination ports; closed ports RST.
func (s *sim) portScan(attacker, victim device, start float64, nPorts int, gap float64) {
	t := start
	for i := 0; i < nPorts; i++ {
		dport := uint16(1 + s.rng.Intn(10000))
		sport := s.ephemeralPort(attacker.IP)
		s.tcp(attacker, victim, sport, dport, netpkt.FlagSYN, t, nil, 0, 1, AttackPortScan)
		s.tcp(victim, attacker, dport, sport, netpkt.FlagRST|netpkt.FlagACK, t+0.001, nil, 0, 1, AttackPortScan)
		t += gap * (0.5 + s.rng.Float64())
	}
}

// osScan: malformed-flag probes (NULL/FIN/Xmas) with odd TTLs.
func (s *sim) osScan(attacker, victim device, start float64, n int) {
	flagSets := []uint8{0, netpkt.FlagFIN, netpkt.FlagFIN | netpkt.FlagPSH | netpkt.FlagURG, netpkt.FlagSYN | netpkt.FlagFIN}
	t := start
	for i := 0; i < n; i++ {
		s.tcp(attacker, victim, s.ephemeralPort(attacker.IP), uint16(1+s.rng.Intn(1024)),
			flagSets[s.rng.Intn(len(flagSets))], t, nil, uint8(30+s.rng.Intn(200)), 1, AttackOSScan)
		t += 0.05 + s.rng.Float64()*0.1
	}
}

// bruteForce: repeated short login sessions against dport (22 = SSH,
// 23 = Telnet/Mirai-style).
func (s *sim) bruteForce(attacker, victim device, dport uint16, start, dur, rate float64, attack string) {
	for t := start; t < start+dur; t += 1 / rate * (0.7 + 0.6*s.rng.Float64()) {
		s.tcpSession(attacker, victim, dport, t, 2, 30+s.rng.Intn(30), 40, 0.02, 1, attack)
	}
}

// miraiBot: an infected device beacons to C&C and scans the neighbourhood
// for telnet — the loud botnet signature of the CTU Mirai scenarios.
func (s *sim) miraiBot(bot device, cnc netip.Addr, nw *network, start, dur float64) {
	cncDev := external(cnc)
	for t := start; t < start+dur; t += 4 + s.rng.Float64()*2 {
		s.tcpSession(bot, cncDev, 48101, t, 1, 20+s.rng.Intn(20), 30, 0.01, 1, AttackMirai)
	}
	// Telnet scanning sweep.
	for t := start + 1; t < start+dur; t += 0.4 + s.rng.Float64()*0.4 {
		tgt := external(netip.AddrFrom4([4]byte{nw.subnet[0], nw.subnet[1], nw.subnet[2], byte(2 + s.rng.Intn(250))}))
		sport := s.ephemeralPort(bot.IP)
		s.tcp(bot, tgt, sport, 23, netpkt.FlagSYN, t, nil, 0, 1, AttackMirai)
		if s.rng.Float64() < 0.2 {
			s.tcp(tgt, bot, 23, sport, netpkt.FlagRST|netpkt.FlagACK, t+0.002, nil, 0, 1, AttackMirai)
		}
	}
}

// toriiBot: the stealthy botnet of CTU scenario 20-1. Low-rate, highly
// periodic beacons on an uncommon high port, upload-skewed, torn down
// with an RST instead of a clean close. The session *shape* is generic
// "bad" (odd port, abrupt termination, asymmetric bytes) — properties
// loud attacks also exhibit — but the rate is far too low for models
// keyed on volume to notice. That is the mechanism behind the paper's
// Obs. 3 asymmetry: nothing trained elsewhere generalizes to F5, while a
// model trained on F5 still flags loud attacks.
func (s *sim) toriiBot(bot device, cnc netip.Addr, start, dur float64) {
	cncDev := external(cnc)
	// Torii rotates its C&C among many uncommon high ports; a model
	// trained on it therefore learns "odd high destination port + odd
	// session shape", a rule that transfers to scans, floods and other
	// botnets' C&C — while its own low rate keeps it invisible to models
	// trained on loud attacks.
	ports := []uint16{6667, 7547, 9527, 12361, 16661, 21832}
	const period = 7.0 // strict periodicity
	for t := start; t < start+dur; t += period + s.rng.Float64()*0.05 {
		dport := ports[s.rng.Intn(len(ports))]
		sport := s.ephemeralPort(bot.IP)
		tt := t
		s.tcp(bot, cncDev, sport, dport, netpkt.FlagSYN, tt, nil, 0, 1, AttackTorii)
		tt += 0.002 + s.rng.Float64()*0.004
		s.tcp(cncDev, bot, dport, sport, netpkt.FlagSYN|netpkt.FlagACK, tt, nil, 0, 1, AttackTorii)
		tt += 0.001 + s.rng.Float64()*0.004
		s.tcp(bot, cncDev, sport, dport, netpkt.FlagACK, tt, nil, 0, 1, AttackTorii)
		// Telemetry-sized report and acknowledgment: the session shape
		// blends in with benign MQTT chatter; only the port is off.
		for i := 0; i < 1+s.rng.Intn(2); i++ {
			tt += 0.01 + s.rng.Float64()*0.01
			s.tcp(bot, cncDev, sport, dport, netpkt.FlagACK|netpkt.FlagPSH, tt, s.payload(40+s.rng.Intn(60)), 0, 1, AttackTorii)
			tt += 0.003 + s.rng.Float64()*0.004
			s.tcp(cncDev, bot, dport, sport, netpkt.FlagACK|netpkt.FlagPSH, tt, s.payload(20), 0, 1, AttackTorii)
		}
		tt += 0.005
		if s.rng.Float64() < 0.6 {
			// Abrupt teardown from the bot.
			s.tcp(bot, cncDev, sport, dport, netpkt.FlagRST, tt, nil, 0, 1, AttackTorii)
		} else {
			s.tcp(bot, cncDev, sport, dport, netpkt.FlagFIN|netpkt.FlagACK, tt, nil, 0, 1, AttackTorii)
			tt += 0.002
			s.tcp(cncDev, bot, dport, sport, netpkt.FlagFIN|netpkt.FlagACK, tt, nil, 0, 1, AttackTorii)
			tt += 0.001
			s.tcp(bot, cncDev, sport, dport, netpkt.FlagACK, tt, nil, 0, 1, AttackTorii)
		}
	}
}

// arpSpoof: gratuitous ARP replies poisoning victim's view of the
// gateway (MitM).
func (s *sim) arpSpoof(attacker, victim, gateway device, start, dur, rate float64) {
	for t := start; t < start+dur; t += 1 / rate {
		s.add(&netpkt.Packet{
			Ts:  ts(t),
			Eth: &netpkt.Ethernet{Src: attacker.MAC, Dst: victim.MAC, EtherType: netpkt.EtherTypeARP},
			ARP: &netpkt.ARP{
				Op:       2,
				SenderHW: attacker.MAC, SenderIP: gateway.IP,
				TargetHW: victim.MAC, TargetIP: victim.IP,
			},
		}, 1, AttackARPMitM)
		// Relayed (now-intercepted) victim traffic with attacker TTL decrement.
		if s.rng.Float64() < 0.5 {
			s.tcp(victim, gateway, s.ephemeralPort(victim.IP), 443, netpkt.FlagACK|netpkt.FlagPSH, t+0.05, s.payload(80), 63, 1, AttackARPMitM)
		}
	}
}

// exfiltration: a compromised device pushes a large upload to an unusual
// external host.
func (s *sim) exfiltration(bot device, start float64, nChunks int) {
	sink := external(netip.AddrFrom4([4]byte{185, 220, 100, 42}))
	sport := s.ephemeralPort(bot.IP)
	t := start
	s.tcp(bot, sink, sport, 8443, netpkt.FlagSYN, t, nil, 0, 1, AttackExfil)
	t += 0.02
	s.tcp(sink, bot, 8443, sport, netpkt.FlagSYN|netpkt.FlagACK, t, nil, 0, 1, AttackExfil)
	t += 0.01
	for i := 0; i < nChunks; i++ {
		s.tcp(bot, sink, sport, 8443, netpkt.FlagACK|netpkt.FlagPSH, t, s.payload(1200+s.rng.Intn(200)), 0, 1, AttackExfil)
		t += 0.01 + s.rng.Float64()*0.01
	}
	s.tcp(bot, sink, sport, 8443, netpkt.FlagFIN|netpkt.FlagACK, t, nil, 0, 1, AttackExfil)
}

// webAttack: SQLi/XSS-style long suspicious HTTP requests against the
// hub's admin interface.
func (s *sim) webAttack(attacker, victim device, start float64, n int) {
	payloads := []string{
		"/login?user=admin'%20OR%20'1'='1",
		"/search?q=<script>document.location='http://evil'</script>",
		"/admin.php?cmd=;cat%20/etc/passwd",
	}
	t := start
	for i := 0; i < n; i++ {
		path := payloads[s.rng.Intn(len(payloads))] + fmt.Sprintf("&pad=%d", s.rng.Intn(1<<20))
		// Padded long request bodies mimic injection fuzzing.
		s.tcpSessionApp(attacker, victim, 80, t,
			[][]byte{netpkt.EncodeHTTPRequest("POST", path, victim.IP.String(), 400+s.rng.Intn(400))},
			[][]byte{netpkt.EncodeHTTPResponse(500, 120)},
			0.01, 1, AttackWebAttack)
		t += 0.5 + s.rng.Float64()
	}
}

// --- 802.11 attacks (AWID3 stand-in, no IP layer) ---

// dot11 emits an 802.11 frame.
func (s *sim) dot11(sub netpkt.Dot11Subtype, src, dst, bssid netpkt.MAC, t float64, payload []byte, label int, attack string) {
	s.link = netpkt.LinkDot11
	s.add(&netpkt.Packet{
		Ts: ts(t),
		Dot11: &netpkt.Dot11{
			Subtype: sub, Addr1: dst, Addr2: src, Addr3: bssid,
			Seq: uint16(s.rng.Intn(4096)), Duration: uint16(s.rng.Intn(500)),
		},
		Payload: payload,
	}, label, attack)
}

// wifiBenign: AP beacons plus station data frames.
func (s *sim) wifiBenign(ap netpkt.MAC, stations []netpkt.MAC, dur float64) {
	bcast := netpkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	for t := 0.0; t < dur; t += 0.1024 { // standard beacon interval
		s.dot11(netpkt.Dot11Beacon, ap, bcast, ap, t, s.payload(60), 0, "")
	}
	for _, st := range stations {
		for t := s.rng.Float64(); t < dur; t += 0.05 + s.rng.Float64()*0.3 {
			s.dot11(netpkt.Dot11Data, st, ap, ap, t, s.payload(100+s.rng.Intn(900)), 0, "")
			if s.rng.Float64() < 0.6 {
				s.dot11(netpkt.Dot11Data, ap, st, ap, t+0.002, s.payload(100+s.rng.Intn(1200)), 0, "")
			}
		}
	}
}

// deauthFlood: spoofed deauthentication frames knock stations off.
func (s *sim) deauthFlood(ap netpkt.MAC, stations []netpkt.MAC, start, dur, rate float64) {
	for t := start; t < start+dur; t += 1 / rate {
		st := stations[s.rng.Intn(len(stations))]
		s.dot11(netpkt.Dot11Deauth, ap, st, ap, t, []byte{0x07, 0x00}, 1, AttackDeauth)
	}
}

// evilTwin: a rogue AP beacons the same SSID from a different BSSID and
// lures association attempts.
func (s *sim) evilTwin(rogue netpkt.MAC, stations []netpkt.MAC, start, dur float64) {
	bcast := netpkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	for t := start; t < start+dur; t += 0.1024 {
		s.dot11(netpkt.Dot11Beacon, rogue, bcast, rogue, t, s.payload(60), 1, AttackEvilTwin)
	}
	for _, st := range stations {
		if s.rng.Float64() < 0.5 {
			t := start + s.rng.Float64()*dur
			s.dot11(netpkt.Dot11ProbeRequest, st, bcast, rogue, t, s.payload(30), 1, AttackEvilTwin)
			s.dot11(netpkt.Dot11Auth, st, rogue, rogue, t+0.01, s.payload(10), 1, AttackEvilTwin)
			s.dot11(netpkt.Dot11AssocReq, st, rogue, rogue, t+0.02, s.payload(40), 1, AttackEvilTwin)
		}
	}
}
