package dataset

import "testing"

func TestDevicesMapPopulated(t *testing.T) {
	spec, _ := Get("F1")
	ds := spec.Generate(0.2)
	if len(ds.Devices) < 5 {
		t.Fatalf("devices map has %d entries, want >= 5", len(ds.Devices))
	}
	kinds := map[string]bool{}
	for _, k := range ds.Devices {
		kinds[k] = true
	}
	for _, want := range []string{"camera", "plug", "hub"} {
		if !kinds[want] {
			t.Errorf("missing device kind %q in F1", want)
		}
	}
}

func TestDeviceClassTask(t *testing.T) {
	spec, _ := Get("F1")
	ds := spec.Generate(0.2)
	classes, y := DeviceClassTask(ds)
	if len(y) != len(ds.Packets) {
		t.Fatalf("labels %d != packets %d", len(y), len(ds.Packets))
	}
	if classes[0] != "external" {
		t.Fatalf("class 0 = %q, want external", classes[0])
	}
	counts := make([]int, len(classes))
	for _, c := range y {
		if c < 0 || c >= len(classes) {
			t.Fatalf("class index %d out of range", c)
		}
		counts[c]++
	}
	// Every class present in the registry mix should have traffic, and
	// external endpoints (cloud, DNS, attacker) must appear too.
	for c, n := range counts {
		if n == 0 {
			t.Errorf("class %q has no packets", classes[c])
		}
	}
	if counts[0] == 0 {
		t.Error("no external packets — responses from cloud should be external")
	}
}

func TestDeviceClassTaskMergePreservesDevices(t *testing.T) {
	a, _ := Get("F0")
	b, _ := Get("F1")
	m := Merge("ab", 0.3, a.Generate(0.2), b.Generate(0.2))
	if len(m.Devices) == 0 {
		t.Fatal("merge dropped the devices map")
	}
	classes, y := DeviceClassTask(m)
	if len(classes) < 3 || len(y) != len(m.Packets) {
		t.Fatalf("classes %v, labels %d", classes, len(y))
	}
}
