// Package daemon is the resident detection service behind cmd/lumend: a
// registry of concurrently running streaming pipelines, each one a
// trained core.Engine scoring a live packet source through
// core.RunStream. The package owns the operational surface the batch CLI
// lacks: pluggable ingest (pcap replay, framed network feeds, watched
// capture directories), JSONL alert sinks, Zeek-style conn-logs at
// drain, live /metrics and /trace endpoints, graceful drain/reload, and
// atomic hot swap of a newly trained model with shadow-scored divergence
// reporting.
//
// Every pipeline runs on its own goroutine; all model mutation funnels
// through core.StreamHooks.AfterChunk on the scoring goroutine, so each
// chunk's verdicts are attributable to exactly one model generation.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lumen/internal/obs"
)

// Config carries the daemon-wide collaborators. Zero values are valid:
// a nil Metrics disables instrumentation, a nil Tracer disables spans.
type Config struct {
	// Metrics receives the lumen_daemon_* instrument families.
	Metrics *obs.Metrics
	// Tracer receives per-pass pipeline spans and swap events.
	Tracer *obs.Tracer
}

// Daemon is the pipeline registry. It hands out *Pipe handles, serves
// the operational HTTP surface (see Handler), and aggregates metrics
// across pipelines. All methods are safe for concurrent use.
type Daemon struct {
	metrics *obs.Metrics
	tracer  *obs.Tracer
	started time.Time

	mu    sync.Mutex
	pipes map[string]*Pipe
	order []string
}

// New returns an empty daemon.
func New(cfg Config) *Daemon {
	return &Daemon{
		metrics: cfg.Metrics,
		tracer:  cfg.Tracer,
		started: time.Now(),
		pipes:   map[string]*Pipe{},
	}
}

// Metrics returns the daemon's metric registry (nil when disabled).
func (d *Daemon) Metrics() *obs.Metrics { return d.metrics }

// Tracer returns the daemon's tracer (nil when disabled).
func (d *Daemon) Tracer() *obs.Tracer { return d.tracer }

// Start validates cfg, registers the pipeline under its name, and starts
// its scoring goroutine. The returned Pipe is already running; callers
// observe it via Status and stop it via Drain.
func (d *Daemon) Start(cfg PipeConfig) (*Pipe, error) {
	p, err := d.newPipe(cfg)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if _, dup := d.pipes[p.name]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("daemon: pipeline %q already registered", p.name)
	}
	d.pipes[p.name] = p
	d.order = append(d.order, p.name)
	n := len(d.pipes)
	p.tid = n // one trace track per pipeline (track 0 stays the main track)
	d.mu.Unlock()
	d.metrics.Gauge("lumen_daemon_pipelines", "Registered pipelines.").Set(float64(n))
	go p.run()
	return p, nil
}

// Pipe returns the named pipeline, or false when unknown.
func (d *Daemon) Pipe(name string) (*Pipe, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pipes[name]
	return p, ok
}

// Pipes returns the registered pipelines in registration order.
func (d *Daemon) Pipes() []*Pipe {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Pipe, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.pipes[n])
	}
	return out
}

// Status returns every pipeline's status, sorted by name.
func (d *Daemon) Status() []PipeStatus {
	pipes := d.Pipes()
	out := make([]PipeStatus, 0, len(pipes))
	for _, p := range pipes {
		out = append(out, p.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DrainAll gracefully drains every pipeline, concurrently, and joins
// their terminal errors.
func (d *Daemon) DrainAll() error {
	pipes := d.Pipes()
	errs := make([]error, len(pipes))
	var wg sync.WaitGroup
	for i, p := range pipes {
		wg.Add(1)
		go func(i int, p *Pipe) {
			defer wg.Done()
			errs[i] = p.Drain()
		}(i, p)
	}
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("pipeline %q: %w", pipes[i].name, err))
		}
	}
	return errors.Join(joined...)
}
