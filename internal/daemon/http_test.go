package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

// httpGet fetches a URL and returns status + body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// httpPost posts to a URL and returns status + body.
func httpPost(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDaemonHTTP drives two concurrent pipelines end-to-end over the
// operational HTTP surface: status listing, a hot swap from a persisted
// model file, drain, /metrics, /trace, and the error paths.
func TestDaemonHTTP(t *testing.T) {
	ds := testDS(t)
	rows := chunkRowsFor(len(ds.Packets), 20)

	// A promotable candidate, persisted the way an offline trainer would.
	clf, ok := trainedEngine(t, ds).TrainedModel()
	if !ok {
		t.Fatal("no trained model")
	}
	modelPath := filepath.Join(t.TempDir(), "candidate.json")
	if err := mlkit.SaveModel(modelPath, clf); err != nil {
		t.Fatal(err)
	}

	d := New(Config{Metrics: obs.NewMetrics(), Tracer: obs.NewTracer()})
	gate := newGate(dataset.NewSliceSource(ds))
	var alertsA, alertsB bytes.Buffer
	if _, err := d.Start(PipeConfig{
		Name:   "gated",
		Engine: trainedEngine(t, ds),
		Source: gate,
		Stream: core.StreamConfig{ChunkRows: rows},
		Alerts: &alertsA,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(PipeConfig{
		Name:   "free",
		Engine: trainedEngine(t, ds),
		Source: NewReplaySource(dataset.NewSliceSource(ds), 0),
		Stream: core.StreamConfig{ChunkRows: rows},
		Alerts: &alertsB,
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if code, body := httpGet(t, srv.URL+"/healthz"); code != 200 || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	var listed []PipeStatus
	code, body := httpGet(t, srv.URL+"/pipelines")
	if code != 200 {
		t.Fatalf("/pipelines = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 || listed[0].Name != "free" || listed[1].Name != "gated" {
		t.Fatalf("/pipelines listed %+v", listed)
	}

	// Swap over HTTP: queue the request (it blocks until a chunk
	// boundary), then feed chunks so it applies and auto-promotes.
	p, _ := d.Pipe("gated")
	gate.allow(2)
	waitFor(t, 5*time.Second, "2 chunks", func() bool { return p.Status().Chunks >= 2 })
	swapped := make(chan struct{})
	go func() {
		defer close(swapped)
		u := fmt.Sprintf("%s/pipelines/gated/swap?model=%s&shadow=1&max-disagree=0&auto=true", srv.URL, modelPath)
		if code, body := httpPost(t, u); code != 200 || !bytes.Contains(body, []byte(`"ok": true`)) {
			t.Errorf("swap = %d %s", code, body)
		}
	}()
	waitFor(t, 5*time.Second, "swap queued", func() bool { return len(p.ctrl) > 0 })
	gate.allow(1)
	select {
	case <-swapped:
	case <-time.After(10 * time.Second):
		t.Fatal("HTTP swap never returned")
	}
	gate.allow(1) // one shadow chunk; identical model promotes
	waitFor(t, 5*time.Second, "promotion", func() bool { return p.Status().ModelGeneration == 2 })

	// Status of one pipeline.
	code, body = httpGet(t, srv.URL+"/pipelines/gated")
	var st PipeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/pipelines/gated = %d %s: %v", code, body, err)
	}
	if st.ModelGeneration != 2 || st.LastSwap == nil || st.LastSwap.Outcome != "promoted" {
		t.Fatalf("status after HTTP swap = %+v", st)
	}

	// Drain both over HTTP; "gated" still has permits outstanding only
	// for consumed chunks, so drain truncates it gracefully.
	if code, body := httpPost(t, srv.URL+"/pipelines/gated/drain"); code != 200 {
		t.Fatalf("drain gated = %d %s", code, body)
	}
	if code, body := httpPost(t, srv.URL+"/pipelines/free/drain"); code != 200 {
		t.Fatalf("drain free = %d %s", code, body)
	}
	for _, name := range []string{"gated", "free"} {
		_, body := httpGet(t, srv.URL+"/pipelines/"+name)
		var st PipeStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "stopped" || st.Error != "" || st.Verdicts == 0 {
			t.Fatalf("pipeline %s after drain: %+v", name, st)
		}
	}

	// Observability endpoints.
	code, body = httpGet(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"lumen_daemon_pipelines 2",
		`lumen_daemon_model_generation{pipeline="gated"} 2`,
		`lumen_daemon_swaps_total{outcome="promoted",pipeline="gated"} 1`,
		`lumen_daemon_chunks_total{pipeline="free"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := httpGet(t, srv.URL+"/trace"); code != 200 || !bytes.Contains(body, []byte("pipeline:gated")) {
		t.Fatalf("/trace = %d (want pipeline spans): %.120s", code, body)
	}
	if code, _ := httpGet(t, srv.URL+"/trace?format=chrome"); code != 200 {
		t.Fatalf("/trace?format=chrome = %d", code)
	}

	// Error paths.
	if code, _ := httpGet(t, srv.URL+"/pipelines/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown pipeline = %d, want 404", code)
	}
	if code, _ := httpPost(t, srv.URL+"/pipelines/gated/frobnicate"); code != http.StatusNotFound {
		t.Fatalf("unknown verb = %d, want 404", code)
	}
	if code, _ := httpGet(t, srv.URL+"/pipelines/gated/drain"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a control verb = %d, want 405", code)
	}
	if code, body := httpPost(t, srv.URL+"/pipelines/gated/promote"); code != http.StatusConflict ||
		!bytes.Contains(body, []byte("not running")) {
		t.Fatalf("promote on stopped pipeline = %d %s, want 409", code, body)
	}
	if code, _ := httpPost(t, srv.URL+"/pipelines/free/swap?model=/does/not/exist.json"); code != http.StatusConflict {
		t.Fatalf("swap with a bad model path = %d, want 409", code)
	}

	// Both alert streams carried verdicts from their own pipeline only.
	for name, buf := range map[string]*bytes.Buffer{"gated": &alertsA, "free": &alertsB} {
		alerts := parseAlerts(t, buf.Bytes())
		if len(alerts) == 0 {
			t.Fatalf("pipeline %s wrote no alerts", name)
		}
		for _, a := range alerts {
			if a.Pipeline != name {
				t.Fatalf("pipeline %s emitted alert for %q", name, a.Pipeline)
			}
		}
	}
}
