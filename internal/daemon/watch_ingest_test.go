package daemon

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/obs"
	"lumen/internal/pcap"
)

// eagerWatch hides DirSource's ViewSource capability, pinning a
// pipeline to the eager buffered path — the baseline the lazy mmap run
// must match bit for bit.
type eagerWatch struct{ inner *DirSource }

func (w eagerWatch) Meta() dataset.SourceMeta                   { return w.inner.Meta() }
func (w eagerWatch) Next(rows, bytes int) (dataset.Chunk, bool) { return w.inner.Next(rows, bytes) }
func (w eagerWatch) Reset() error                               { return w.inner.Reset() }
func (w eagerWatch) Drain()                                     { w.inner.Drain() }
func (w eagerWatch) Err() error                                 { return w.inner.Err() }
func (w eagerWatch) DecodeMode() string                         { return w.inner.DecodeMode() }

// writeRotated splits ds into three rotated capture files under dir.
func writeRotated(t *testing.T, dir string, ds *dataset.Labeled) {
	t.Helper()
	n := len(ds.Packets)
	writePcap(t, filepath.Join(dir, "trace-000.pcap"), ds.Link, ds.Packets[:n/3])
	writePcap(t, filepath.Join(dir, "trace-001.pcap"), ds.Link, ds.Packets[n/3:2*n/3])
	writePcap(t, filepath.Join(dir, "trace-002.pcap"), ds.Link, ds.Packets[2*n/3:])
}

// TestWatchIngestLazyEquivalence is the daemon acceptance bar for the
// zero-copy watch fast path: the same rotated captures ingested once
// eagerly (buffered) and once over mmap+lazy views produce identical
// verdicts and a bit-identical conn-log, the lazy pipeline reports
// decode mode "mmap+lazy" in its status, and draining the daemon
// returns the live-mapping gauge to its baseline.
func TestWatchIngestLazyEquivalence(t *testing.T) {
	ds := testDS(t)
	total := int64(len(ds.Packets))
	n0 := pcap.OpenMappings()

	run := func(name string, lazy bool) ([]Alert, []byte, PipeStatus) {
		dir := t.TempDir()
		writeRotated(t, dir, ds)
		watch := NewDirSource(name, dir, "*.pcap", dataset.Packet, ds.Link, 5*time.Millisecond)
		var src dataset.Source = watch
		if !lazy {
			src = eagerWatch{inner: watch}
		}
		d := New(Config{Metrics: obs.NewMetrics()})
		var alerts, connlog bytes.Buffer
		p, err := d.Start(PipeConfig{
			Name:    name,
			Engine:  trainedEngine(t, ds),
			Source:  src,
			Stream:  core.StreamConfig{ChunkRows: 64, PipelineDepth: 2, Workers: 2},
			Alerts:  &alerts,
			ConnLog: &connlog,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, 10*time.Second, name+" to ingest the captures", func() bool {
			return p.Status().Packets >= total
		})
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		return parseAlerts(t, alerts.Bytes()), connlog.Bytes(), p.Status()
	}

	eagerAlerts, eagerLog, eagerSt := run("watch-eager", false)
	if eagerSt.DecodeMode != "buffered" {
		t.Fatalf("eager decode mode = %q, want buffered", eagerSt.DecodeMode)
	}
	lazyAlerts, lazyLog, lazySt := run("watch-lazy", true)
	if lazySt.DecodeMode != "mmap+lazy" {
		t.Fatalf("lazy decode mode = %q, want mmap+lazy", lazySt.DecodeMode)
	}
	if got := pcap.OpenMappings(); got != n0 {
		t.Fatalf("live mappings after drain = %d, want baseline %d", got, n0)
	}

	if !bytes.Equal(eagerLog, lazyLog) {
		t.Fatalf("conn-log differs between eager and lazy watch: %d vs %d bytes", len(eagerLog), len(lazyLog))
	}
	if len(eagerAlerts) != len(lazyAlerts) {
		t.Fatalf("alert lines: eager %d, lazy %d", len(eagerAlerts), len(lazyAlerts))
	}
	for i := range eagerAlerts {
		e, l := eagerAlerts[i], lazyAlerts[i]
		if e.Pred != l.Pred || e.Seq != l.Seq || e.Index != l.Index || e.Unit != l.Unit {
			t.Fatalf("alert %d diverges: eager %+v, lazy %+v", i, e, l)
		}
	}
	if eagerSt.Verdicts != lazySt.Verdicts || eagerSt.Packets != lazySt.Packets {
		t.Fatalf("counters diverge: eager %+v, lazy %+v", eagerSt, lazySt)
	}
}
