package daemon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// MaxFrameBytes caps one framed-feed payload (timestamp + packet bytes).
// Frames above it are rejected as protocol corruption, protecting the
// daemon from a bad length prefix allocating gigabytes.
const MaxFrameBytes = 1 << 22

// FeedSource ingests packets pushed over a network listener (TCP or unix
// socket) in a length-prefixed frame format — the push counterpart of
// pcap replay, for feeding lumend from a capture process on another
// host. Any number of producers may connect; their packets interleave in
// arrival order. FeedSource is not resettable: a live feed has no
// beginning to rewind to, so Reload does not apply.
//
// Frame wire format, all integers big-endian:
//
//	uint32 length   // byte length of the remainder of the frame
//	uint64 ts_ns    // packet timestamp, Unix nanoseconds
//	bytes  packet   // raw link-layer packet bytes (length - 8 of them)
//
// WriteFrame emits this format.
type FeedSource struct {
	name string
	link netpkt.LinkType
	ln   net.Listener
	pkts chan *netpkt.Packet

	stop     chan struct{}
	stopOnce sync.Once
	readers  sync.WaitGroup

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	err     error
	base    int
	emitted bool
}

// NewFeedSource starts accepting producers on ln, decoding their frames
// as link-layer packets of the given link type. buffer bounds how many
// decoded packets may queue ahead of the pipeline (0 means 1024).
func NewFeedSource(name string, ln net.Listener, link netpkt.LinkType, buffer int) *FeedSource {
	if buffer <= 0 {
		buffer = 1024
	}
	s := &FeedSource{
		name:  name,
		link:  link,
		ln:    ln,
		pkts:  make(chan *netpkt.Packet, buffer),
		stop:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
	}
	s.readers.Add(1)
	go s.accept()
	go func() {
		s.readers.Wait()
		close(s.pkts)
	}()
	return s
}

// Addr returns the listener's address (where producers connect).
func (s *FeedSource) Addr() net.Addr { return s.ln.Addr() }

// accept admits producer connections until the listener closes.
func (s *FeedSource) accept() {
	defer s.readers.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop: // expected: Drain closed the listener
			default:
				s.setErr(fmt.Errorf("daemon: feed %q: accept: %w", s.name, err))
			}
			return
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.readers.Add(1)
		go s.read(c)
	}
}

// read decodes frames from one producer until it disconnects or drain.
func (s *FeedSource) read(c net.Conn) {
	defer s.readers.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) && !isClosed(err) {
				s.setErr(fmt.Errorf("daemon: feed %q: frame header: %w", s.name, err))
			}
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 8 || n > MaxFrameBytes {
			s.setErr(fmt.Errorf("daemon: feed %q: frame length %d out of range [8, %d]", s.name, n, MaxFrameBytes))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			s.setErr(fmt.Errorf("daemon: feed %q: frame body: %w", s.name, err))
			return
		}
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(buf[:8]))).UTC()
		pkt := netpkt.Decode(buf[8:], s.link, ts)
		select {
		case s.pkts <- pkt:
		case <-s.stop:
			return
		}
	}
}

// isClosed reports the use-of-closed-connection errors that drain
// provokes on purpose.
func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// setErr records the first feed error for Err.
func (s *FeedSource) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Meta implements dataset.Source. Live feeds carry no ground truth and
// stream at packet granularity.
func (s *FeedSource) Meta() dataset.SourceMeta {
	return dataset.SourceMeta{Name: s.name, Granularity: dataset.Packet, Link: s.link}
}

// Next implements dataset.Source: it blocks for the first available
// packet, then batches whatever else already arrived up to the chunk
// bounds. The stream ends after Drain, once the queued packets are
// consumed.
func (s *FeedSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	first, ok := <-s.pkts
	if !ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.emitted {
			s.emitted = true
			return dataset.Chunk{Base: s.base}, true
		}
		return dataset.Chunk{}, false
	}
	batch := []*netpkt.Packet{first}
	bytes := first.WireLen()
	for (maxRows <= 0 || len(batch) < maxRows) && (maxBytes <= 0 || bytes < maxBytes) {
		select {
		case p, more := <-s.pkts:
			if !more {
				goto done
			}
			batch = append(batch, p)
			bytes += p.WireLen()
		default:
			goto done
		}
	}
done:
	s.mu.Lock()
	ck := dataset.Chunk{
		Base:    s.base,
		Packets: batch,
		Labels:  make([]int, len(batch)),
		Attacks: make([]string, len(batch)),
	}
	s.base += len(batch)
	s.emitted = true
	s.mu.Unlock()
	return ck, true
}

// Reset implements dataset.Source; live feeds cannot rewind.
func (s *FeedSource) Reset() error {
	return fmt.Errorf("daemon: feed %q: live feeds cannot be reset", s.name)
}

// Drain implements Drainer: the listener and every producer connection
// close; packets already queued still reach the pipeline, then the
// stream ends.
func (s *FeedSource) Drain() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
}

// Err implements the optional error surface: the first protocol or
// listener error observed (producer disconnects are not errors).
func (s *FeedSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// WriteFrame writes one framed packet in the FeedSource wire format.
func WriteFrame(w io.Writer, ts time.Time, pkt []byte) error {
	if len(pkt)+8 > MaxFrameBytes {
		return fmt.Errorf("daemon: WriteFrame: packet of %d bytes exceeds the %d-byte frame cap", len(pkt), MaxFrameBytes-8)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(pkt)+8))
	binary.BigEndian.PutUint64(hdr[4:], uint64(ts.UnixNano()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(pkt)
	return err
}
