package daemon

import (
	"fmt"

	"lumen/internal/core"
	"lumen/internal/mlkit"
)

// RetrainConfig enables drift-triggered background retraining on a
// pipeline. The pipeline feeds every chunk's features and labels into a
// bounded uniform reservoir (the hook's WantFeatures path); when the
// pipeline's drift_detect op raises an event, a fresh model — built from
// the engine's own model spec — is fitted on a reservoir snapshot off
// the scoring goroutine and submitted as a hot swap, shadow-gated by
// Swap before it can become the active generation.
type RetrainConfig struct {
	// Enabled turns the subsystem on. Pipelines without a drift_detect op
	// never trigger, but still fill the reservoir.
	Enabled bool
	// ReservoirCap bounds the retraining reservoir; 0 means 4096.
	ReservoirCap int
	// MinRows is the smallest reservoir fill that permits a retrain; 0
	// means 256.
	MinRows int
	// CooldownChunks is the minimum number of chunks between retrain
	// triggers; 0 means 32.
	CooldownChunks int
	// Seed drives reservoir sampling.
	Seed int64
	// FreshData, when set, flushes the reservoir at each accepted drift
	// trigger and defers the refit until MinRows fresh rows have
	// accumulated, so the candidate learns the post-drift regime instead
	// of a mixture dominated by pre-drift traffic. Without it the refit
	// runs immediately on the uniform all-history reservoir.
	FreshData bool
	// Swap configures the shadow-divergence gate the retrained candidate
	// must pass. Zero value means shadow until an operator decides; set
	// AutoDecide for closed-loop promotion.
	Swap SwapOptions
}

func (c RetrainConfig) cap() int {
	if c.ReservoirCap <= 0 {
		return 4096
	}
	return c.ReservoirCap
}

func (c RetrainConfig) minRows() int {
	if c.MinRows <= 0 {
		return 256
	}
	return c.MinRows
}

func (c RetrainConfig) cooldown() int64 {
	if c.CooldownChunks <= 0 {
		return 32
	}
	return int64(c.CooldownChunks)
}

// retrainRes is the pipeline's labelled-row reservoir (Algorithm R,
// uniform over all rows seen). Rows are copied on admission: hook
// feature matrices are only valid during the callback. Only the scoring
// goroutine touches it; background retrains work on snapshots.
type retrainRes struct {
	cap  int
	rng  *mlkit.RNG
	X    [][]float64
	y    []int
	seen int
}

func newRetrainRes(cap int, seed int64) *retrainRes {
	return &retrainRes{cap: cap, rng: mlkit.NewRNG(seed)}
}

// add absorbs one chunk's rows. labels may be nil (unlabeled feeds);
// those rows train as benign, matching the online-train convention.
func (r *retrainRes) add(X [][]float64, labels []int) {
	for i, row := range X {
		label := 0
		if i < len(labels) && labels[i] != 0 {
			label = 1
		}
		r.seen++
		if len(r.X) < r.cap {
			r.X = append(r.X, append([]float64(nil), row...))
			r.y = append(r.y, label)
		} else if j := r.rng.Intn(r.seen); j < r.cap {
			r.X[j] = append(r.X[j][:0], row...)
			r.y[j] = label
		}
	}
}

// reset empties the reservoir, restarting Algorithm R from zero rows
// seen; FreshData retrains use it so the refit sees only post-drift
// traffic.
func (r *retrainRes) reset() {
	r.X = r.X[:0]
	r.y = r.y[:0]
	r.seen = 0
}

// snapshot copies the reservoir for out-of-band fitting. Rows are
// deep-copied so a concurrent retrain never observes in-place
// replacement by later add calls.
func (r *retrainRes) snapshot() ([][]float64, []int) {
	X := make([][]float64, len(r.X))
	for i, row := range r.X {
		X[i] = append([]float64(nil), row...)
	}
	return X, append([]int(nil), r.y...)
}

// observeDrift is the per-chunk retrain hook, run on the scoring
// goroutine from afterChunk: fill the reservoir, count drift events, arm
// a retrain when one fired and the gates (cooldown, single-flight)
// allow it, and launch the armed retrain once the reservoir holds
// MinRows — immediately for all-history reservoirs, after fresh rows
// accumulate in FreshData mode.
func (p *Pipe) observeDrift(up core.ChunkUpdate) {
	if len(up.Drift) > 0 {
		p.mDrift.Add(uint64(len(up.Drift)))
	}
	if !p.retrain.Enabled {
		return
	}
	if len(up.Features) > 0 {
		p.res.add(up.Features, up.Labels)
	}
	if len(up.Drift) > 0 && !p.retrainArmed && !p.retrainBusy.Load() {
		c := p.chunks.Load()
		if p.lastRetrain == 0 || c-p.lastRetrain >= p.retrain.cooldown() {
			p.retrainArmed = true
			if p.retrain.FreshData {
				p.res.reset()
			}
		}
	}
	if !p.retrainArmed || len(p.res.X) < p.retrain.minRows() {
		return
	}
	if !p.retrainBusy.CompareAndSwap(false, true) {
		return
	}
	p.retrainArmed = false
	p.lastRetrain = p.chunks.Load()
	X, y := p.res.snapshot()
	go p.backgroundRetrain(X, y)
}

// backgroundRetrain fits a fresh model on the reservoir snapshot and
// submits it as a shadow-gated hot swap. It runs off the scoring
// goroutine: the only interaction with the pipeline is the Swap control
// message, applied at a chunk boundary like any operator-initiated swap.
func (p *Pipe) backgroundRetrain(X [][]float64, y []int) {
	defer p.retrainBusy.Store(false)
	outcome := "ok"
	if err := p.fitAndSwap(X, y); err != nil {
		outcome = "error"
	}
	p.metrics.Counter("lumen_retrain_total",
		"Drift-triggered background retrains, by outcome.",
		"pipeline", p.name, "outcome", outcome).Inc()
}

func (p *Pipe) fitAndSwap(X [][]float64, y []int) error {
	clf, err := p.eng.NewTrainableModel()
	if err != nil {
		return fmt.Errorf("daemon: retrain %q: %w", p.name, err)
	}
	if err := clf.Fit(X, y); err != nil {
		return fmt.Errorf("daemon: retrain %q: fit on %d rows: %w", p.name, len(X), err)
	}
	return p.Swap(clf, p.retrain.Swap)
}
