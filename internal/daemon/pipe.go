package daemon

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
	"lumen/internal/pcap"
)

// ErrStopped is returned by control calls (Swap, Promote, Rollback,
// Reload) once a pipeline is no longer running.
var ErrStopped = errors.New("daemon: pipeline is not running")

// State is a pipeline's lifecycle state.
type State int

// Pipeline lifecycle states, in the order they are reached. The numeric
// value is exported as the lumen_daemon_pipeline_state gauge.
const (
	// StateRunning: the scoring goroutine is consuming the source.
	StateRunning State = iota
	// StateDraining: a drain was requested; the pipeline finishes the
	// packets already ingested and then stops.
	StateDraining
	// StateStopped: the pipeline drained cleanly (conn-log written,
	// alert sink flushed).
	StateStopped
	// StateFailed: the pipeline aborted with an error (see Status).
	StateFailed
)

// String names the state ("running", "draining", "stopped", "failed").
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Drainer is the optional source capability the daemon uses for graceful
// drain: Drain asks the source to stop producing, after which its Next
// returns false once the already-ingested packets are consumed. All
// daemon sources (ReplaySource, FeedSource, DirSource) implement it;
// finite sources without it simply run to their natural end.
type Drainer interface {
	Drain()
}

// PipeConfig describes one resident pipeline.
type PipeConfig struct {
	// Name identifies the pipeline in the registry, metrics labels, the
	// HTTP surface, and every alert line. Required, unique per daemon.
	Name string
	// Engine is the trained engine to score with. The daemon takes
	// exclusive ownership: it installs a mlkit.SwapHandle behind the
	// train op (enabling hot swap) and drives the engine from the
	// pipeline's goroutine. Do not share one engine across pipelines.
	Engine *core.Engine
	// Source is the packet source to ingest. Sources implementing
	// Drainer drain gracefully; sources implementing Reset support
	// Reload.
	Source dataset.Source
	// Stream bounds chunking and execution shape. Hooks must be nil —
	// the per-chunk hook slot is how the daemon drives the pipeline.
	Stream core.StreamConfig
	// Alerts receives one JSONL verdict line per scored unit (see Alert).
	// Nil disables the alert sink. The writer is only accessed from the
	// pipeline's goroutine.
	Alerts io.Writer
	// AnomaliesOnly suppresses alert lines for units predicted benign
	// (pred 0), keeping only anomalies. Verdict counters still count
	// every scored unit.
	AnomaliesOnly bool
	// ConnLog receives a Zeek-style TSV connection log, written once at
	// drain. The log is bit-identical to flow.Connections over the same
	// trace: evictions accumulate during streaming and one global sort
	// runs at the end.
	ConnLog io.Writer
	// FlowOpts configures the conn-log assembler (idle timeout).
	FlowOpts flow.Options
	// Retrain enables drift-triggered background retraining with hot swap
	// (see RetrainConfig).
	Retrain RetrainConfig
}

// SwapOptions configures one hot-swap attempt.
type SwapOptions struct {
	// ShadowChunks is the number of chunks to shadow-score before the
	// auto decision (default 8 when AutoDecide is set).
	ShadowChunks int
	// AutoDecide promotes automatically once ShadowChunks chunks were
	// shadow-scored and the disagreement fraction is at most MaxDisagree,
	// and rolls back otherwise. When false the swap shadows until an
	// explicit Promote or Rollback call.
	AutoDecide bool
	// MaxDisagree is the largest tolerated disagreement fraction for an
	// automatic promote (0 demands bit-identical verdicts).
	MaxDisagree float64
}

// SwapReport is the terminal record of one hot-swap attempt.
type SwapReport struct {
	// Outcome is "promoted" or "rolled_back".
	Outcome string `json:"outcome"`
	// By records who decided: "auto" or "operator".
	By string `json:"by"`
	// Generation is the active generation after the decision.
	Generation int `json:"generation"`
	// Chunks and Rows tally what the shadow phase scored.
	Chunks int `json:"chunks"`
	Rows   int `json:"rows"`
	// DisagreeFrac and ScoreMAD are the final divergence numbers.
	DisagreeFrac float64 `json:"disagree_frac"`
	ScoreMAD     float64 `json:"score_mad"`
}

// PipeStatus is a pipeline's observable state, as served by /pipelines.
type PipeStatus struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// Passes counts RunStream passes (reloads start a new pass).
	Passes  int64 `json:"passes"`
	Chunks  int64 `json:"chunks"`
	Packets int64 `json:"packets"`
	// Verdicts counts scored units; Alerts counts emitted alert lines.
	Verdicts int64 `json:"verdicts"`
	Alerts   int64 `json:"alerts"`
	Reloads  int64 `json:"reloads"`
	// DecodeMode reports how the source reads and decodes ("mmap+lazy",
	// "buffered", "idle", ...), for sources that expose it.
	DecodeMode string `json:"decode_mode,omitempty"`
	// ModelGeneration is the active model's generation (1 = initial).
	ModelGeneration int `json:"model_generation"`
	// Shadowing reports an in-progress hot swap, with its live divergence.
	Shadowing      bool        `json:"shadowing"`
	ShadowChunks   int         `json:"shadow_chunks,omitempty"`
	ShadowDisagree float64     `json:"shadow_disagree,omitempty"`
	ShadowScoreMAD float64     `json:"shadow_score_mad,omitempty"`
	LastSwap       *SwapReport `json:"last_swap,omitempty"`
	Error          string      `json:"error,omitempty"`
}

// ctrlKind discriminates control messages.
type ctrlKind int

const (
	ctrlSwap ctrlKind = iota
	ctrlPromote
	ctrlRollback
)

// ctrlMsg is one queued control-plane request. Messages are applied
// between chunks on the scoring goroutine (see Pipe.afterChunk), so a
// control action only ever takes effect on a chunk boundary.
type ctrlMsg struct {
	kind  ctrlKind
	clf   mlkit.Classifier
	opts  SwapOptions
	reply chan error
}

// Pipe is one resident pipeline: a trained engine scoring a source on a
// dedicated goroutine. Control methods (Swap, Promote, Rollback, Reload,
// Drain) are safe to call from any goroutine; they take effect on the
// next chunk boundary.
type Pipe struct {
	name    string
	d       *Daemon
	metrics *obs.Metrics
	tracer  *obs.Tracer
	tid     int

	eng    *core.Engine
	handle *mlkit.SwapHandle
	src    dataset.Source
	stream core.StreamConfig

	alertw        *bufio.Writer
	enc           *json.Encoder
	anomaliesOnly bool
	connw         io.Writer
	conn          *flow.ConnAssembler

	ctrl chan ctrlMsg
	done chan struct{}

	// mu guards control-side state read by Status and the run loop.
	mu            sync.Mutex
	state         State
	runErr        error
	stopReq       bool
	reloadPending bool
	lastSwap      *SwapReport

	// Scoring-goroutine-only state (touched exclusively from afterChunk
	// and the run loop; never locked).
	streamedRows int
	pktIdx       int
	connDone     []*flow.Connection
	swapOpts     SwapOptions
	span         *obs.Span
	// Retrain state: the reservoir and cooldown marker live on the
	// scoring goroutine; retrainBusy is the single-flight latch shared
	// with the background fit goroutine.
	retrain      RetrainConfig
	res          *retrainRes
	lastRetrain  int64
	retrainArmed bool
	retrainBusy  atomic.Bool

	passes   atomic.Int64
	chunks   atomic.Int64
	packets  atomic.Int64
	verdicts atomic.Int64
	alerts   atomic.Int64
	reloads  atomic.Int64

	mChunks, mPackets, mVerdicts, mAlerts *obs.Counter
	mPasses, mReloads, mDrift             *obs.Counter
	mState, mGen, mShadowing, mMaps       *obs.Gauge
}

// newPipe validates cfg and builds the pipeline without starting it.
func (d *Daemon) newPipe(cfg PipeConfig) (*Pipe, error) {
	if cfg.Name == "" {
		return nil, errors.New("daemon: PipeConfig.Name is required")
	}
	if cfg.Engine == nil || cfg.Source == nil {
		return nil, fmt.Errorf("daemon: pipeline %q needs both an engine and a source", cfg.Name)
	}
	if cfg.Stream.Hooks != nil {
		return nil, fmt.Errorf("daemon: pipeline %q: StreamConfig.Hooks is owned by the daemon", cfg.Name)
	}
	clf, ok := cfg.Engine.TrainedModel()
	if !ok {
		return nil, fmt.Errorf("daemon: pipeline %q has no trained model; train or install one first", cfg.Name)
	}
	handle, isHandle := clf.(*mlkit.SwapHandle)
	if !isHandle {
		handle = mlkit.NewSwapHandle(clf)
		if err := cfg.Engine.ReplaceModel(handle); err != nil {
			return nil, err
		}
	}
	p := &Pipe{
		name:          cfg.Name,
		d:             d,
		metrics:       d.metrics,
		tracer:        d.tracer,
		eng:           cfg.Engine,
		handle:        handle,
		src:           cfg.Source,
		stream:        cfg.Stream,
		anomaliesOnly: cfg.AnomaliesOnly,
		ctrl:          make(chan ctrlMsg, 16),
		done:          make(chan struct{}),
		state:         StateRunning,
		retrain:       cfg.Retrain,
	}
	// AcceptViews lets watch/replay sources that serve lazy view chunks
	// keep the zero-copy decode fast path: afterChunk feeds the conn-log
	// assembler per-packet summaries built from the views.
	p.stream.Hooks = &core.StreamHooks{AfterChunk: p.afterChunk, AcceptViews: true}
	if cfg.Retrain.Enabled {
		p.stream.Hooks.WantFeatures = true
		p.res = newRetrainRes(cfg.Retrain.cap(), cfg.Retrain.Seed)
	}
	if cfg.Alerts != nil {
		p.alertw = bufio.NewWriter(cfg.Alerts)
		p.enc = json.NewEncoder(p.alertw)
	}
	if cfg.ConnLog != nil {
		p.connw = cfg.ConnLog
		p.conn = flow.NewConnAssembler(cfg.FlowOpts)
	}
	lbl := []string{"pipeline", p.name}
	m := d.metrics
	p.mChunks = m.Counter("lumen_daemon_chunks_total", "Chunks scored, per pipeline.", lbl...)
	p.mPackets = m.Counter("lumen_daemon_packets_total", "Packets ingested, per pipeline.", lbl...)
	p.mVerdicts = m.Counter("lumen_daemon_verdicts_total", "Units scored, per pipeline.", lbl...)
	p.mAlerts = m.Counter("lumen_daemon_alerts_total", "Alert lines written, per pipeline.", lbl...)
	p.mPasses = m.Counter("lumen_daemon_passes_total", "RunStream passes, per pipeline.", lbl...)
	p.mReloads = m.Counter("lumen_daemon_reloads_total", "Completed reloads, per pipeline.", lbl...)
	p.mDrift = m.Counter("lumen_drift_events_total", "Drift-detector events observed, per pipeline.", lbl...)
	p.mState = m.Gauge("lumen_daemon_pipeline_state", "Lifecycle state (0 running, 1 draining, 2 stopped, 3 failed).", lbl...)
	p.mGen = m.Gauge("lumen_daemon_model_generation", "Active model generation, per pipeline.", lbl...)
	p.mShadowing = m.Gauge("lumen_daemon_swap_shadowing", "1 while a hot swap is shadow-scoring.", lbl...)
	p.mMaps = m.Gauge("lumen_mmap_open_mappings", "Process-wide live pcap memory mappings (refcounted; drops to baseline when every in-flight chunk is released).")
	p.mState.Set(float64(StateRunning))
	p.mGen.Set(float64(handle.Generation()))
	return p, nil
}

// Name returns the pipeline's registry name.
func (p *Pipe) Name() string { return p.name }

// Done returns a channel closed when the pipeline has fully stopped
// (conn-log written, sinks flushed).
func (p *Pipe) Done() <-chan struct{} { return p.done }

// run is the pipeline goroutine: one RunStream pass per loop iteration,
// looping only when a reload was requested.
func (p *Pipe) run() {
	defer close(p.done)
	for {
		p.passes.Add(1)
		p.mPasses.Inc()
		p.streamedRows = 0
		if p.tracer != nil {
			p.span = p.tracer.Start("pipeline:"+p.name, p.tid)
		}
		p.eng.Span = p.span
		res, err := p.eng.RunStream(p.src, core.ModeTest, p.stream)
		p.eng.Span = nil
		if err == nil && res != nil {
			err = p.writeTail(res)
		}
		if err == nil {
			err = p.flushAlerts()
		}
		if p.span != nil {
			p.span.Set("chunks", p.eng.LastStream.Chunks)
			p.span.Set("pass", p.passes.Load())
			p.span.End()
			p.span = nil
		}
		p.mu.Lock()
		if err != nil {
			p.runErr = err
			p.setStateLocked(StateFailed)
			p.mu.Unlock()
			break
		}
		if p.reloadPending && !p.stopReq {
			p.reloadPending = false
			p.mu.Unlock()
			if rerr := p.src.Reset(); rerr != nil {
				p.mu.Lock()
				p.runErr = fmt.Errorf("daemon: reload %q: %w", p.name, rerr)
				p.setStateLocked(StateFailed)
				p.mu.Unlock()
				break
			}
			p.reloads.Add(1)
			p.mReloads.Inc()
			continue
		}
		p.setStateLocked(StateStopped)
		p.mu.Unlock()
		break
	}
	p.finalize()
}

// setStateLocked records the state transition; callers hold p.mu.
func (p *Pipe) setStateLocked(s State) {
	p.state = s
	p.mState.Set(float64(s))
}

// finalize writes the conn-log, flushes sinks, and fails any control
// requests still queued. It runs exactly once, just before done closes.
func (p *Pipe) finalize() {
	if p.conn != nil && p.connw != nil {
		// Mirror flow.Connections exactly: accumulated evictions plus the
		// final flush, then one global sort — this is what makes a drained
		// conn-log bit-identical to the batch driver over the same trace.
		conns := append(p.connDone, p.conn.Flush()...)
		flow.SortConnections(conns)
		if err := flow.WriteConnLog(p.connw, conns); err != nil {
			p.recordErr(fmt.Errorf("daemon: conn-log %q: %w", p.name, err))
		}
		p.connDone = nil
	}
	if err := p.flushAlerts(); err != nil {
		p.recordErr(err)
	}
	p.mMaps.Set(float64(pcap.OpenMappings()))
	for {
		select {
		case m := <-p.ctrl:
			if m.reply != nil {
				m.reply <- ErrStopped
			}
		default:
			return
		}
	}
}

// recordErr keeps the first terminal error and flips the state to failed.
func (p *Pipe) recordErr(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.runErr == nil {
		p.runErr = err
		p.setStateLocked(StateFailed)
	}
}

// afterChunk is the core.StreamHooks.AfterChunk callback — the heart of
// the pipeline. It runs once per chunk, in stream order, on the scoring
// goroutine, with the chunk's verdicts final. In order: emit alerts,
// fold packets into the conn-log assembler, bump counters, apply queued
// control messages, and advance any in-progress swap. Because control
// messages are applied after this chunk's verdicts were written, every
// chunk is attributable to exactly one model generation.
func (p *Pipe) afterChunk(up core.ChunkUpdate) error {
	gen := p.handle.Generation()
	rows := 0
	for _, res := range up.Results {
		n := resRows(res)
		if err := p.writeRange(res, 0, n, up.Seq, gen, "stream"); err != nil {
			return err
		}
		rows += n
	}
	p.streamedRows += rows
	if err := p.flushAlerts(); err != nil {
		return err
	}
	npkts := len(up.Packets)
	if up.Views != nil {
		npkts = len(up.Views)
	}
	if p.conn != nil {
		if up.Views != nil {
			// Lazy fast path: feed value-copied summaries — the view bytes
			// may alias a mapping that unmaps once the chunk is released.
			for i := range up.Views {
				if evicted := p.conn.AddSummary(p.pktIdx+i, up.Views[i].Summary()); len(evicted) > 0 {
					p.connDone = append(p.connDone, evicted...)
				}
			}
		} else {
			for i, pkt := range up.Packets {
				if evicted := p.conn.Add(p.pktIdx+i, pkt); len(evicted) > 0 {
					p.connDone = append(p.connDone, evicted...)
				}
			}
		}
	}
	p.pktIdx += npkts
	p.chunks.Add(1)
	p.packets.Add(int64(npkts))
	p.mChunks.Inc()
	p.mPackets.Add(uint64(npkts))
	p.mMaps.Set(float64(pcap.OpenMappings()))
	p.observeDrift(up)
	p.pumpCtrl()
	p.updateSwap()
	return nil
}

// writeTail emits the verdicts that only materialize when the stream
// flushes (deferred ops: flow-granularity pipelines, barrier suffixes).
// RunStream merges them after the streamed rows, so the tail is
// everything past the streamed-row counter.
func (p *Pipe) writeTail(res *core.EvalResult) error {
	n := resRows(res)
	if p.streamedRows >= n {
		return nil
	}
	return p.writeRange(res, p.streamedRows, n, -1, p.handle.Generation(), "flush")
}

// resRows is the verdict row count of one result.
func resRows(res *core.EvalResult) int {
	n := len(res.Pred)
	if len(res.Truth) > n {
		n = len(res.Truth)
	}
	return n
}

// writeRange emits alert lines for rows [from, to) of res and counts
// them as verdicts.
func (p *Pipe) writeRange(res *core.EvalResult, from, to, seq, gen int, phase string) error {
	p.verdicts.Add(int64(to - from))
	p.mVerdicts.Add(uint64(to - from))
	if p.enc == nil {
		return nil
	}
	unit := res.Unit.String()
	wrote := 0
	for i := from; i < to; i++ {
		pred := 0
		if i < len(res.Pred) {
			pred = res.Pred[i]
		}
		if p.anomaliesOnly && pred != 1 {
			continue
		}
		a := Alert{
			TS:       time.Now().UTC().Format(time.RFC3339Nano),
			Pipeline: p.name,
			Seq:      seq,
			Phase:    phase,
			Unit:     unit,
			Index:    -1,
			Pred:     pred,
			ModelGen: gen,
		}
		if i < len(res.UnitIdx) {
			a.Index = res.UnitIdx[i]
		}
		if i < len(res.Truth) {
			a.Truth = res.Truth[i]
		}
		if i < len(res.Attacks) {
			a.Attack = res.Attacks[i]
		}
		if i < len(res.Scores) {
			s := res.Scores[i]
			a.Score = &s
		}
		if err := p.enc.Encode(a); err != nil {
			return fmt.Errorf("daemon: alert sink %q: %w", p.name, err)
		}
		wrote++
	}
	p.alerts.Add(int64(wrote))
	p.mAlerts.Add(uint64(wrote))
	return nil
}

// flushAlerts pushes buffered alert lines to the underlying writer.
func (p *Pipe) flushAlerts() error {
	if p.alertw == nil {
		return nil
	}
	if err := p.alertw.Flush(); err != nil {
		return fmt.Errorf("daemon: alert sink %q: %w", p.name, err)
	}
	return nil
}

// pumpCtrl applies every queued control message. It runs on the scoring
// goroutine between chunks, so model retargeting never races a chunk
// mid-score.
func (p *Pipe) pumpCtrl() {
	for {
		select {
		case m := <-p.ctrl:
			var err error
			switch m.kind {
			case ctrlSwap:
				err = p.handle.StartShadow(m.clf)
				if err == nil {
					p.swapOpts = m.opts
					p.mShadowing.Set(1)
					p.emitSwapEvent("swap:shadow_start", nil)
				}
			case ctrlPromote:
				err = p.decide(true, "operator")
			case ctrlRollback:
				err = p.decide(false, "operator")
			}
			if m.reply != nil {
				m.reply <- err
			}
		default:
			return
		}
	}
}

// updateSwap publishes the live shadow divergence and applies the
// automatic promote-or-rollback decision once enough chunks were
// shadow-scored.
func (p *Pipe) updateSwap() {
	if !p.handle.Shadowing() {
		return
	}
	st := p.handle.Stats()
	p.setDivergence(st)
	o := p.swapOpts
	if !o.AutoDecide {
		return
	}
	target := o.ShadowChunks
	if target <= 0 {
		target = 8
	}
	if st.Chunks < target {
		return
	}
	_ = p.decide(st.DisagreeFrac() <= o.MaxDisagree, "auto")
}

// decide finishes the in-progress swap: promote makes the candidate
// active (generation += 1), rollback discards it. Runs on the scoring
// goroutine only.
func (p *Pipe) decide(promote bool, by string) error {
	var st mlkit.SwapStats
	var err error
	outcome := "rolled_back"
	if promote {
		st, err = p.handle.Promote()
		outcome = "promoted"
	} else {
		st, err = p.handle.Rollback()
	}
	if err != nil {
		return err
	}
	gen := p.handle.Generation()
	rep := &SwapReport{
		Outcome:      outcome,
		By:           by,
		Generation:   gen,
		Chunks:       st.Chunks,
		Rows:         st.Rows,
		DisagreeFrac: st.DisagreeFrac(),
		ScoreMAD:     st.ScoreMAD(),
	}
	p.mu.Lock()
	p.lastSwap = rep
	p.mu.Unlock()
	p.swapOpts = SwapOptions{}
	p.setDivergence(st)
	p.mGen.Set(float64(gen))
	p.mShadowing.Set(0)
	p.metrics.Counter("lumen_daemon_swaps_total", "Finished hot-swap attempts.",
		"pipeline", p.name, "outcome", outcome).Inc()
	p.emitSwapEvent("swap:"+outcome, map[string]any{
		"by": by, "generation": gen,
		"chunks": st.Chunks, "rows": st.Rows,
		"disagree_frac": st.DisagreeFrac(), "score_mad": st.ScoreMAD(),
	})
	return nil
}

// setDivergence publishes a shadow tally as lumen_swap_divergence gauges.
func (p *Pipe) setDivergence(st mlkit.SwapStats) {
	g := func(stat string) *obs.Gauge {
		return p.metrics.Gauge("lumen_swap_divergence",
			"Shadow-scoring divergence between active and candidate model.",
			"pipeline", p.name, "stat", stat)
	}
	g("disagree_frac").Set(st.DisagreeFrac())
	g("score_mad").Set(st.ScoreMAD())
	g("shadow_chunks").Set(float64(st.Chunks))
	g("shadow_rows").Set(float64(st.Rows))
}

// emitSwapEvent records a zero-width swap marker on the pass span.
func (p *Pipe) emitSwapEvent(name string, attrs map[string]any) {
	if p.span != nil {
		now := time.Now()
		p.span.Emit(name, now, now, attrs)
	}
}

// control queues m and waits for the scoring goroutine to apply it at
// the next chunk boundary. On an idle source the wait extends until the
// next chunk arrives.
func (p *Pipe) control(m ctrlMsg) error {
	m.reply = make(chan error, 1)
	select {
	case p.ctrl <- m:
	case <-p.done:
		return ErrStopped
	}
	select {
	case err := <-m.reply:
		return err
	case <-p.done:
		return ErrStopped
	}
}

// Swap begins a hot swap: clf is attached as a shadow at the next chunk
// boundary and scored alongside the active model. With opts.AutoDecide
// the pipeline promotes or rolls back on its own; otherwise call Promote
// or Rollback. Fails while another swap is in progress.
func (p *Pipe) Swap(clf mlkit.Classifier, opts SwapOptions) error {
	if clf == nil {
		return errors.New("daemon: Swap: nil classifier")
	}
	return p.control(ctrlMsg{kind: ctrlSwap, clf: clf, opts: opts})
}

// SwapFromFile loads a persisted model (mlkit.LoadModel envelope) and
// starts a hot swap with it.
func (p *Pipe) SwapFromFile(path string, opts SwapOptions) error {
	clf, err := mlkit.LoadModel(path)
	if err != nil {
		return err
	}
	return p.Swap(clf, opts)
}

// Promote finishes the in-progress swap in the candidate's favor at the
// next chunk boundary.
func (p *Pipe) Promote() error { return p.control(ctrlMsg{kind: ctrlPromote}) }

// Rollback discards the in-progress swap's candidate at the next chunk
// boundary.
func (p *Pipe) Rollback() error { return p.control(ctrlMsg{kind: ctrlRollback}) }

// Reload asks the pipeline to finish the current pass (draining the
// source if it supports Drain) and start a fresh one with the source
// Reset — the rotate-and-rescan verb for replay sources. It returns once
// the reload is scheduled, not once the new pass starts.
func (p *Pipe) Reload() error {
	p.mu.Lock()
	if p.state != StateRunning || p.stopReq {
		p.mu.Unlock()
		return ErrStopped
	}
	p.reloadPending = true
	p.mu.Unlock()
	p.drainSource()
	return nil
}

// Drain gracefully stops the pipeline: the source stops producing, the
// packets already ingested are scored to completion, deferred verdicts
// and the conn-log are written, and sinks are flushed. Drain blocks
// until all of that finished and returns the pipeline's terminal error.
// It is idempotent — concurrent and repeated calls all wait for the same
// shutdown.
func (p *Pipe) Drain() error {
	p.mu.Lock()
	already := p.stopReq
	p.stopReq = true
	if p.state == StateRunning {
		p.setStateLocked(StateDraining)
	}
	p.mu.Unlock()
	if !already {
		p.drainSource()
	}
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runErr
}

// drainSource signals a drainable source to stop producing. Finite
// sources without Drain end on their own.
func (p *Pipe) drainSource() {
	if dr, ok := p.src.(Drainer); ok {
		dr.Drain()
	}
}

// Status snapshots the pipeline's observable state.
func (p *Pipe) Status() PipeStatus {
	p.mu.Lock()
	st := PipeStatus{
		Name:     p.name,
		State:    p.state.String(),
		LastSwap: p.lastSwap,
	}
	if p.runErr != nil {
		st.Error = p.runErr.Error()
	}
	p.mu.Unlock()
	st.Passes = p.passes.Load()
	st.Chunks = p.chunks.Load()
	st.Packets = p.packets.Load()
	st.Verdicts = p.verdicts.Load()
	st.Alerts = p.alerts.Load()
	st.Reloads = p.reloads.Load()
	if dm, ok := p.src.(interface{ DecodeMode() string }); ok {
		st.DecodeMode = dm.DecodeMode()
	}
	st.ModelGeneration = p.handle.Generation()
	st.Shadowing = p.handle.Shadowing()
	if st.Shadowing {
		s := p.handle.Stats()
		st.ShadowChunks = s.Chunks
		st.ShadowDisagree = s.DisagreeFrac()
		st.ShadowScoreMAD = s.ScoreMAD()
	}
	return st
}
