package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the daemon's operational HTTP surface:
//
//	GET  /healthz                     liveness probe ("ok")
//	GET  /metrics                     Prometheus exposition (text 0.0.4)
//	GET  /trace                       finished spans as JSONL
//	GET  /trace?format=chrome         same spans as a Chrome trace
//	GET  /pipelines                   every pipeline's PipeStatus (JSON)
//	GET  /pipelines/{name}            one pipeline's PipeStatus
//	POST /pipelines/{name}/drain      graceful drain (blocks until done)
//	POST /pipelines/{name}/reload     drain + source Reset + fresh pass
//	POST /pipelines/{name}/swap       start a hot swap; query params:
//	                                  model (required, path to a model
//	                                  saved with mlkit.SaveModel),
//	                                  shadow (chunks, default 8),
//	                                  max-disagree (float, default 0),
//	                                  auto (default true)
//	POST /pipelines/{name}/promote    finish the swap in the candidate's
//	                                  favor
//	POST /pipelines/{name}/rollback   discard the swap candidate
//
// Control verbs respond 200 with {"ok": true} plus the pipeline's fresh
// status, or an error status with {"ok": false, "error": "..."}.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if d.metrics != nil {
		mux.Handle("/metrics", d.metrics.Handler())
	}
	if d.tracer != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "chrome" {
				w.Header().Set("Content-Type", "application/json")
				d.tracer.WriteChromeTrace(w)
				return
			}
			w.Header().Set("Content-Type", "application/jsonl")
			d.tracer.WriteJSONL(w)
		})
	}
	mux.HandleFunc("/pipelines", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, d.Status())
	})
	mux.HandleFunc("/pipelines/", d.servePipeline)
	return mux
}

// servePipeline dispatches /pipelines/{name}[/verb].
func (d *Daemon) servePipeline(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/pipelines/")
	name, verb, _ := strings.Cut(rest, "/")
	p, ok := d.Pipe(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown pipeline %q", name)
		return
	}
	if verb == "" {
		writeJSON(w, http.StatusOK, p.Status())
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "%s %s: control verbs require POST", r.Method, r.URL.Path)
		return
	}
	var err error
	switch verb {
	case "drain":
		err = p.Drain()
	case "reload":
		err = p.Reload()
	case "swap":
		err = d.serveSwap(p, r)
	case "promote":
		err = p.Promote()
	case "rollback":
		err = p.Rollback()
	default:
		writeErr(w, http.StatusNotFound, "unknown verb %q (want drain, reload, swap, promote, rollback)", verb)
		return
	}
	if err != nil {
		writeErr(w, http.StatusConflict, "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "status": p.Status()})
}

// serveSwap parses the swap query parameters and starts the swap.
func (d *Daemon) serveSwap(p *Pipe, r *http.Request) error {
	q := r.URL.Query()
	opts := SwapOptions{AutoDecide: true}
	if v := q.Get("shadow"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		opts.ShadowChunks = n
	}
	if v := q.Get("max-disagree"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		opts.MaxDisagree = f
	}
	if v := q.Get("auto"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		opts.AutoDecide = b
	}
	return p.SwapFromFile(q.Get("model"), opts)
}

// writeJSON renders v with an application/json content type.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr renders a {"ok": false, "error": ...} response.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"ok": false, "error": fmt.Sprintf(format, args...)})
}
