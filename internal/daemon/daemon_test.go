package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/flow"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

// testDS generates the shared fixture trace.
func testDS(t *testing.T) *dataset.Labeled {
	t.Helper()
	spec, ok := dataset.Get("F1")
	if !ok {
		t.Fatal("dataset F1 not registered")
	}
	return spec.Generate(0.05)
}

// testPipeline is a packet-granularity pipeline whose every op streams,
// so all verdicts are emitted chunk-by-chunk.
func testPipeline() *core.Pipeline {
	return &core.Pipeline{
		Name:        "daemon-pkt-dt",
		Granularity: "packet",
		Ops: []core.OpSpec{
			{Func: "field_extract", Input: []string{core.InputName}, Output: "X",
				Params: map[string]any{"fields": []any{"ts", "len", "ttl", "dst_port", "tcp_syn", "iat"}}},
			{Func: "log_scale", Input: []string{"X"}, Output: "Xl"},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 6}},
			{Func: "train", Input: []string{"m", "Xl"}, Output: "fit"},
		},
	}
}

// trainedEngine trains a fresh engine on ds with a fixed seed, so every
// call yields an identically-behaving model.
func trainedEngine(t *testing.T, ds *dataset.Labeled) *core.Engine {
	t.Helper()
	eng := core.NewEngine(testPipeline())
	eng.Seed = 7
	if err := eng.TrainStream(ds, core.StreamConfig{ChunkRows: 256}); err != nil {
		t.Fatal(err)
	}
	return eng
}

// chunkRowsFor picks a chunk size yielding about `chunks` chunks over n
// packets.
func chunkRowsFor(n, chunks int) int {
	r := n / chunks
	if r < 1 {
		r = 1
	}
	return r
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// parseAlerts decodes a JSONL alert stream.
func parseAlerts(t *testing.T, data []byte) []Alert {
	t.Helper()
	var out []Alert
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var a Alert
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad alert line %q: %v", sc.Text(), err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// gateSource releases one inner chunk per permit, letting tests place
// control actions on exact chunk boundaries. It implements Drainer and
// Reset, so drain and reload paths run against it too.
type gateSource struct {
	inner   dataset.Source
	permits chan struct{}

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	emitted bool
}

func newGate(inner dataset.Source) *gateSource {
	return &gateSource{inner: inner, permits: make(chan struct{}, 4096), stop: make(chan struct{})}
}

func (g *gateSource) allow(n int) {
	for i := 0; i < n; i++ {
		g.permits <- struct{}{}
	}
}

func (g *gateSource) Meta() dataset.SourceMeta { return g.inner.Meta() }

func (g *gateSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	g.mu.Lock()
	stopCh, stopped := g.stop, g.stopped
	g.mu.Unlock()
	if stopped {
		return g.end()
	}
	select {
	case <-g.permits:
	case <-stopCh:
		return g.end()
	}
	ck, ok := g.inner.Next(maxRows, maxBytes)
	if !ok {
		return g.end()
	}
	g.mu.Lock()
	g.emitted = true
	g.mu.Unlock()
	return ck, true
}

func (g *gateSource) end() (dataset.Chunk, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.emitted {
		g.emitted = true
		return dataset.Chunk{}, true
	}
	return dataset.Chunk{}, false
}

func (g *gateSource) Reset() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.inner.Reset(); err != nil {
		return err
	}
	if g.stopped {
		g.stop = make(chan struct{})
		g.stopped = false
	}
	g.emitted = false
	return nil
}

func (g *gateSource) Drain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.stopped {
		g.stopped = true
		close(g.stop)
	}
}

// TestRunToCompletionConnLog pins the conn-log acceptance bar: a
// pipeline that consumes its whole source produces a conn-log
// bit-identical to the batch driver (flow.Connections) over the same
// trace, and its alert lines cover every verdict of the equivalent batch
// run in order — zero dropped, zero double-scored.
func TestRunToCompletionConnLog(t *testing.T) {
	ds := testDS(t)
	want, err := trainedEngine(t, ds).TestStream(ds, core.StreamConfig{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wantLog bytes.Buffer
	if err := flow.WriteConnLog(&wantLog, flow.Connections(ds.Packets, flow.Options{})); err != nil {
		t.Fatal(err)
	}

	d := New(Config{Metrics: obs.NewMetrics()})
	var alerts, connlog bytes.Buffer
	p, err := d.Start(PipeConfig{
		Name:    "full",
		Engine:  trainedEngine(t, ds),
		Source:  NewReplaySource(dataset.NewSliceSource(ds), 0),
		Stream:  core.StreamConfig{ChunkRows: 64, PipelineDepth: 2, Workers: 2},
		Alerts:  &alerts,
		ConnLog: &connlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-p.Done()
	if err := p.Drain(); err != nil { // drain after natural end: same terminal state
		t.Fatal(err)
	}
	st := p.Status()
	if st.State != "stopped" {
		t.Fatalf("state = %s, want stopped", st.State)
	}
	if !bytes.Equal(connlog.Bytes(), wantLog.Bytes()) {
		t.Fatalf("conn-log differs from batch driver: %d vs %d bytes", connlog.Len(), wantLog.Len())
	}
	got := parseAlerts(t, alerts.Bytes())
	if len(got) != len(want.Pred) {
		t.Fatalf("alert lines = %d, want %d (dropped or double-scored verdicts)", len(got), len(want.Pred))
	}
	for i, a := range got {
		if a.Pred != want.Pred[i] || a.Truth != want.Truth[i] {
			t.Fatalf("alert %d = pred %d truth %d, batch %d/%d", i, a.Pred, a.Truth, want.Pred[i], want.Truth[i])
		}
		if a.ModelGen != 1 || a.Pipeline != "full" || a.Unit != "packet" {
			t.Fatalf("alert %d metadata off: %+v", i, a)
		}
	}
	if int64(len(got)) != st.Verdicts || st.Packets != int64(len(ds.Packets)) {
		t.Fatalf("status counters %+v disagree with %d alerts / %d packets", st, len(got), len(ds.Packets))
	}
}

// TestDrainMidStreamConnLog drains a gated pipeline partway through the
// trace and requires the conn-log to be bit-identical to the batch
// driver over exactly the ingested prefix.
func TestDrainMidStreamConnLog(t *testing.T) {
	ds := testDS(t)
	rows := chunkRowsFor(len(ds.Packets), 12)
	gate := newGate(dataset.NewSliceSource(ds))
	var connlog bytes.Buffer
	d := New(Config{})
	p, err := d.Start(PipeConfig{
		Name:    "partial",
		Engine:  trainedEngine(t, ds),
		Source:  gate,
		Stream:  core.StreamConfig{ChunkRows: rows},
		ConnLog: &connlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.allow(3)
	waitFor(t, 5*time.Second, "3 chunks", func() bool { return p.Status().Chunks >= 3 })
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	n := int(p.Status().Packets)
	if n == 0 || n >= len(ds.Packets) {
		t.Fatalf("ingested %d of %d packets; drain should truncate mid-stream", n, len(ds.Packets))
	}
	var wantLog bytes.Buffer
	if err := flow.WriteConnLog(&wantLog, flow.Connections(ds.Packets[:n], flow.Options{})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(connlog.Bytes(), wantLog.Bytes()) {
		t.Fatalf("drained conn-log differs from batch over the %d-packet prefix", n)
	}
}

// invertClf flips a classifier's verdicts — an unmistakably different
// swap candidate.
type invertClf struct{ inner mlkit.Classifier }

func (c invertClf) Fit(X [][]float64, y []int) error { return c.inner.Fit(X, y) }

func (c invertClf) Predict(X [][]float64) []int {
	out := c.inner.Predict(X)
	for i := range out {
		out[i] = 1 - out[i]
	}
	return out
}

// TestHotSwapUnderLiveIngest is the tentpole regression: a hot swap
// under live ingest must drop no chunk, double-score no chunk, and
// attribute every verdict to exactly one model generation. An identical
// candidate auto-promotes (divergence 0); an inverted candidate
// auto-rolls-back (divergence 1 > 0).
func TestHotSwapUnderLiveIngest(t *testing.T) {
	ds := testDS(t)
	rows := chunkRowsFor(len(ds.Packets), 16)
	want, err := trainedEngine(t, ds).TestStream(ds, core.StreamConfig{ChunkRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	sameModel, _ := trainedEngine(t, ds).TrainedModel()

	gate := newGate(dataset.NewSliceSource(ds))
	var alerts bytes.Buffer
	d := New(Config{Metrics: obs.NewMetrics(), Tracer: obs.NewTracer()})
	p, err := d.Start(PipeConfig{
		Name:   "swap",
		Engine: trainedEngine(t, ds),
		Source: gate,
		Stream: core.StreamConfig{ChunkRows: rows, PipelineDepth: 2, Workers: 2},
		Alerts: &alerts,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: promote an identical candidate after 2 shadow chunks.
	gate.allow(2)
	waitFor(t, 5*time.Second, "2 chunks", func() bool { return p.Status().Chunks >= 2 })
	swapDone := make(chan error, 1)
	go func() {
		swapDone <- p.Swap(sameModel, SwapOptions{AutoDecide: true, ShadowChunks: 2, MaxDisagree: 0})
	}()
	waitFor(t, 5*time.Second, "swap request queued", func() bool { return len(p.ctrl) > 0 })
	gate.allow(1) // boundary that applies the swap
	var swapErr error
	select {
	case swapErr = <-swapDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Swap did not apply at the next chunk boundary")
	}
	if swapErr != nil {
		t.Fatal(swapErr)
	}
	if st := p.Status(); !st.Shadowing {
		t.Fatalf("status after Swap = %+v, want shadowing", st)
	}
	gate.allow(2) // the two shadow-scored chunks; auto-promote follows
	waitFor(t, 5*time.Second, "promotion to generation 2", func() bool { return p.Status().ModelGeneration == 2 })

	// Phase 2: an inverted candidate must roll back (disagree 1 > 0).
	go func() {
		swapDone <- p.Swap(invertClf{sameModel}, SwapOptions{AutoDecide: true, ShadowChunks: 1, MaxDisagree: 0})
	}()
	waitFor(t, 5*time.Second, "second swap request queued", func() bool { return len(p.ctrl) > 0 })
	gate.allow(1)
	select {
	case swapErr = <-swapDone:
	case <-time.After(5 * time.Second):
		t.Fatal("second Swap did not apply")
	}
	if swapErr != nil {
		t.Fatal(swapErr)
	}
	gate.allow(1) // one shadow-scored chunk; auto-rollback follows
	waitFor(t, 5*time.Second, "rollback", func() bool {
		st := p.Status()
		return !st.Shadowing && st.LastSwap != nil && st.LastSwap.Outcome == "rolled_back"
	})
	if g := p.Status().ModelGeneration; g != 2 {
		t.Fatalf("generation after rollback = %d, want 2", g)
	}

	// Let the rest of the trace through; the stream ends naturally once
	// the inner source is exhausted (drain afterwards is a no-op).
	gate.allow(4096 - 7)
	waitFor(t, 10*time.Second, "full ingest", func() bool {
		return p.Status().Packets == int64(len(ds.Packets))
	})
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}

	got := parseAlerts(t, alerts.Bytes())
	if len(got) != len(want.Pred) {
		t.Fatalf("alert lines = %d, want %d (a chunk was dropped or double-scored)", len(got), len(want.Pred))
	}
	genBySeq := map[int]int{}
	lastSeq := -1
	sawGen2 := false
	for i, a := range got {
		if a.Pred != want.Pred[i] {
			t.Fatalf("alert %d pred = %d, batch %d", i, a.Pred, want.Pred[i])
		}
		if a.Seq < lastSeq {
			t.Fatalf("alert %d out of stream order: seq %d after %d", i, a.Seq, lastSeq)
		}
		lastSeq = a.Seq
		if g, ok := genBySeq[a.Seq]; ok && g != a.ModelGen {
			t.Fatalf("chunk %d scored by generations %d and %d — not exactly one model", a.Seq, g, a.ModelGen)
		}
		genBySeq[a.Seq] = a.ModelGen
		if a.ModelGen == 2 {
			sawGen2 = true
		} else if a.ModelGen != 1 {
			t.Fatalf("alert %d has generation %d", i, a.ModelGen)
		}
	}
	if !sawGen2 {
		t.Fatal("no verdicts attributed to the promoted generation")
	}

	// The swap surface is visible on /metrics.
	var prom bytes.Buffer
	if err := d.Metrics().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lumen_daemon_swaps_total{outcome="promoted",pipeline="swap"} 1`,
		`lumen_daemon_swaps_total{outcome="rolled_back",pipeline="swap"} 1`,
		`lumen_daemon_model_generation{pipeline="swap"} 2`,
		`lumen_swap_divergence{pipeline="swap",stat="disagree_frac"} 1`,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestReloadDuringActiveIngest reloads a pipeline mid-pass: the current
// pass drains, the source resets, and scoring restarts from the top of
// the stream on the same goroutine.
func TestReloadDuringActiveIngest(t *testing.T) {
	ds := testDS(t)
	rows := chunkRowsFor(len(ds.Packets), 12)
	gate := newGate(dataset.NewSliceSource(ds))
	var alerts bytes.Buffer
	d := New(Config{})
	p, err := d.Start(PipeConfig{
		Name:   "reload",
		Engine: trainedEngine(t, ds),
		Source: gate,
		Stream: core.StreamConfig{ChunkRows: rows},
		Alerts: &alerts,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.allow(3)
	waitFor(t, 5*time.Second, "3 chunks", func() bool { return p.Status().Chunks >= 3 })
	if err := p.Reload(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "second pass", func() bool { return p.Status().Reloads == 1 })
	gate.allow(4)
	waitFor(t, 5*time.Second, "chunks after reload", func() bool { return p.Status().Chunks >= 7 })
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.Passes != 2 || st.Reloads != 1 || st.State != "stopped" || st.Error != "" {
		t.Fatalf("status after reload+drain = %+v", st)
	}
	// The alert stream must show the chunk sequence restarting.
	got := parseAlerts(t, alerts.Bytes())
	restarted := false
	for i := 1; i < len(got); i++ {
		if got[i].Seq < got[i-1].Seq {
			restarted = true
			break
		}
	}
	if !restarted {
		t.Fatal("alert stream never restarted at seq 0 after reload")
	}
	if int64(len(got)) != st.Verdicts {
		t.Fatalf("alert lines %d != verdict counter %d", len(got), st.Verdicts)
	}
}

// stallWriter blocks every Write until released — a stalled downstream
// alert consumer. stalled closes when the first Write arrives.
type stallWriter struct {
	release chan struct{}
	stalled chan struct{}
	once    sync.Once
	buf     bytes.Buffer
}

func (w *stallWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.stalled) })
	<-w.release
	return w.buf.Write(p)
}

// TestDrainWithStalledSink pins the drain contract against a blocked
// alert sink: drain waits (no data loss, no timeout abort) and completes
// once the sink unblocks.
func TestDrainWithStalledSink(t *testing.T) {
	ds := testDS(t)
	want, err := trainedEngine(t, ds).TestStream(ds, core.StreamConfig{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	sink := &stallWriter{release: make(chan struct{}), stalled: make(chan struct{})}
	d := New(Config{})
	p, err := d.Start(PipeConfig{
		Name:   "stalled",
		Engine: trainedEngine(t, ds),
		Source: NewReplaySource(dataset.NewSliceSource(ds), 0),
		Stream: core.StreamConfig{ChunkRows: 64},
		Alerts: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sink.stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline never reached the stalled sink")
	}
	drained := make(chan error, 1)
	go func() { drained <- p.Drain() }()
	select {
	case err := <-drained:
		t.Fatalf("drain completed through a stalled sink (err %v)", err)
	case <-time.After(150 * time.Millisecond):
	}
	if st := p.Status().State; st != "draining" {
		t.Fatalf("state while stalled = %s, want draining", st)
	}
	close(sink.release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed after the sink unblocked")
	}
	// Drain stops ingest at the source, so only the chunks pulled before
	// the drain are scored — but none of them may be lost to the stall.
	st := p.Status()
	got := parseAlerts(t, sink.buf.Bytes())
	if int64(len(got)) != st.Verdicts || st.Verdicts == 0 {
		t.Fatalf("alerts after stall = %d lines, verdict counter %d (data lost)", len(got), st.Verdicts)
	}
	for i, a := range got {
		if a.Pred != want.Pred[i] {
			t.Fatalf("alert %d pred = %d, batch %d", i, a.Pred, want.Pred[i])
		}
	}
}

// TestDoubleStopIdempotent: repeated and concurrent drains all converge
// on the same terminal state, and control verbs on a stopped pipeline
// fail with ErrStopped.
func TestDoubleStopIdempotent(t *testing.T) {
	ds := testDS(t)
	d := New(Config{})
	p, err := d.Start(PipeConfig{
		Name:   "stop",
		Engine: trainedEngine(t, ds),
		Source: NewReplaySource(dataset.NewSliceSource(ds), 0),
		Stream: core.StreamConfig{ChunkRows: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Drain()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent drain %d: %v", i, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("repeated drain: %v", err)
	}
	if st := p.Status().State; st != "stopped" {
		t.Fatalf("state = %s, want stopped", st)
	}
	clf, _ := trainedEngine(t, ds).TrainedModel()
	if err := p.Swap(clf, SwapOptions{}); err != ErrStopped {
		t.Fatalf("Swap after stop = %v, want ErrStopped", err)
	}
	if err := p.Reload(); err != ErrStopped {
		t.Fatalf("Reload after stop = %v, want ErrStopped", err)
	}
	if err := p.Promote(); err != ErrStopped {
		t.Fatalf("Promote after stop = %v, want ErrStopped", err)
	}
}

// TestStartValidation pins the registration errors.
func TestStartValidation(t *testing.T) {
	ds := testDS(t)
	d := New(Config{})
	src := NewReplaySource(dataset.NewSliceSource(ds), 0)
	if _, err := d.Start(PipeConfig{Engine: trainedEngine(t, ds), Source: src}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := d.Start(PipeConfig{Name: "x", Source: src}); err == nil {
		t.Fatal("nil engine accepted")
	}
	untrained := core.NewEngine(testPipeline())
	if _, err := d.Start(PipeConfig{Name: "x", Engine: untrained, Source: src}); err == nil {
		t.Fatal("untrained engine accepted")
	}
	hooked := core.StreamConfig{Hooks: &core.StreamHooks{AfterChunk: func(core.ChunkUpdate) error { return nil }}}
	if _, err := d.Start(PipeConfig{Name: "x", Engine: trainedEngine(t, ds), Source: src, Stream: hooked}); err == nil {
		t.Fatal("caller-supplied hooks accepted")
	}
	p, err := d.Start(PipeConfig{Name: "dup", Engine: trainedEngine(t, ds), Source: src, Stream: core.StreamConfig{ChunkRows: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(PipeConfig{Name: "dup", Engine: trainedEngine(t, ds), Source: NewReplaySource(dataset.NewSliceSource(ds), 0)}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.DrainAll(); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf("%v", p.Name()) // exercise the tiny accessors
	<-p.Done()
}
