package daemon

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// tinyTrace builds an n-packet dataset with timestamps spaced by gap,
// for pacing tests that need a controlled capture timeline.
func tinyTrace(n int, gap time.Duration) *dataset.Labeled {
	base := time.Unix(1700000000, 0).UTC()
	pkts := make([]*netpkt.Packet, n)
	for i := range pkts {
		pkts[i] = &netpkt.Packet{Ts: base.Add(time.Duration(i) * gap)}
	}
	return &dataset.Labeled{
		Name:        "tiny",
		Granularity: dataset.Packet,
		Link:        netpkt.LinkEthernet,
		Packets:     pkts,
		Labels:      make([]int, n),
		Attacks:     make([]string, n),
	}
}

// drainOf asserts src supports graceful drain and returns the hook.
func drainOf(t *testing.T, src dataset.Source) Drainer {
	t.Helper()
	d, ok := src.(Drainer)
	if !ok {
		t.Fatalf("%T does not implement Drainer", src)
	}
	return d
}

// TestReplaySourcePassthrough: unpaced replay forwards the inner stream
// unchanged and resets for another pass.
func TestReplaySourcePassthrough(t *testing.T) {
	ds := tinyTrace(10, time.Second)
	src := NewReplaySource(dataset.NewSliceSource(ds), 0)
	for pass := 0; pass < 2; pass++ {
		total, base := 0, 0
		for {
			ck, ok := src.Next(3, 0)
			if !ok {
				break
			}
			if ck.Base != base {
				t.Fatalf("pass %d: chunk base %d, want %d", pass, ck.Base, base)
			}
			base += len(ck.Packets)
			total += len(ck.Packets)
		}
		if total != 10 {
			t.Fatalf("pass %d: replayed %d packets, want 10", pass, total)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	if m := src.Meta(); m.Name != "tiny" {
		t.Fatalf("meta passthrough broken: %+v", m)
	}
}

// TestReplaySourceDrainInterruptsPacing: a drain must cut a pacing sleep
// short instead of waiting out the capture timeline.
func TestReplaySourceDrainInterruptsPacing(t *testing.T) {
	// 1h between packets at speed 1 — Next would sleep an hour.
	src := NewReplaySource(dataset.NewSliceSource(tinyTrace(3, time.Hour)), 1)
	if _, ok := src.Next(1, 0); !ok {
		t.Fatal("first chunk missing")
	}
	type res struct {
		ok      bool
		elapsed time.Duration
	}
	got := make(chan res, 1)
	go func() {
		start := time.Now()
		_, ok := src.Next(1, 0)
		got <- res{ok, time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond)
	drainOf(t, src).Drain()
	select {
	case r := <-got:
		if !r.ok {
			t.Fatal("the in-flight chunk must still be delivered on drain")
		}
		if r.elapsed > 10*time.Second {
			t.Fatalf("drain took %v to interrupt pacing", r.elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never interrupted the pacing sleep")
	}
	if _, ok := src.Next(1, 0); ok {
		t.Fatal("stream must end after drain")
	}
	// Reset re-arms the drained replay.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Next(0, 0); !ok {
		t.Fatal("reset after drain must replay again")
	}
}

// TestReplaySourceEmptyContract: a drained-before-first-chunk replay
// still emits the one empty chunk the Source contract requires.
func TestReplaySourceEmptyContract(t *testing.T) {
	src := NewReplaySource(dataset.NewSliceSource(tinyTrace(5, time.Second)), 0)
	drainOf(t, src).Drain()
	ck, ok := src.Next(0, 0)
	if !ok || len(ck.Packets) != 0 {
		t.Fatalf("want one empty chunk, got ok=%v len=%d", ok, len(ck.Packets))
	}
	if _, ok := src.Next(0, 0); ok {
		t.Fatal("stream must end after the empty chunk")
	}
}

// feedPair starts a FeedSource on a unix socket and connects a producer.
func feedPair(t *testing.T) (*FeedSource, net.Conn) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "feed.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Skipf("unix sockets unavailable: %v", err)
	}
	src := NewFeedSource("test-feed", ln, netpkt.LinkEthernet, 64)
	c, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	return src, c
}

// TestFeedSource pushes framed packets over a unix socket and verifies
// the source re-emits them as chunks with rebased indices and preserved
// timestamps.
func TestFeedSource(t *testing.T) {
	ds := testDS(t)
	n := 50
	src, c := feedPair(t)
	go func() {
		for _, p := range ds.Packets[:n] {
			data, err := p.Serialize()
			if err != nil {
				t.Error(err)
				return
			}
			if err := WriteFrame(c, p.Ts, data); err != nil {
				t.Error(err)
				return
			}
		}
		c.Close()
	}()
	var pkts []*netpkt.Packet
	base := 0
	for len(pkts) < n {
		ck, ok := src.Next(16, 0)
		if !ok {
			t.Fatalf("stream ended after %d of %d packets", len(pkts), n)
		}
		if ck.Base != base {
			t.Fatalf("chunk base %d, want %d", ck.Base, base)
		}
		if len(ck.Labels) != len(ck.Packets) || len(ck.Attacks) != len(ck.Packets) {
			t.Fatal("feed chunks must carry zeroed labels")
		}
		base += len(ck.Packets)
		pkts = append(pkts, ck.Packets...)
	}
	for i, p := range pkts {
		if !p.Ts.Equal(ds.Packets[i].Ts) {
			t.Fatalf("packet %d timestamp %v, want %v", i, p.Ts, ds.Packets[i].Ts)
		}
	}
	src.Drain()
	for {
		if _, ok := src.Next(16, 0); !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("clean feed reported error: %v", err)
	}
	if err := src.Reset(); err == nil {
		t.Fatal("live feeds must reject Reset")
	}
	if src.Addr() == nil {
		t.Fatal("feed must expose its listener address")
	}
}

// TestFeedSourceEmptyContract: draining an idle feed still yields the
// contract's one empty chunk.
func TestFeedSourceEmptyContract(t *testing.T) {
	src, c := feedPair(t)
	c.Close()
	src.Drain()
	ck, ok := src.Next(0, 0)
	if !ok || len(ck.Packets) != 0 {
		t.Fatalf("want one empty chunk, got ok=%v len=%d", ok, len(ck.Packets))
	}
	if _, ok := src.Next(0, 0); ok {
		t.Fatal("stream must end after the empty chunk")
	}
}

// TestFeedSourceBadFrame: a length prefix outside the protocol bounds is
// recorded as a feed error and the producer is cut off.
func TestFeedSourceBadFrame(t *testing.T) {
	src, c := feedPair(t)
	if _, err := c.Write([]byte{0, 0, 0, 3}); err != nil { // length 3 < 8
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "protocol error", func() bool { return src.Err() != nil })
	src.Drain()
}

// writePcap writes pkts as a pcap file.
func writePcap(t testing.TB, path string, link netpkt.LinkType, pkts []*netpkt.Packet) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, link)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestDirSource streams rotated captures from a watched directory:
// pre-existing files in name order, a file added mid-watch, packet
// indices rebased across files, and drain ending the stream.
func TestDirSource(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	writePcap(t, filepath.Join(dir, "trace-000.pcap"), ds.Link, ds.Packets[:30])
	writePcap(t, filepath.Join(dir, "trace-001.pcap"), ds.Link, ds.Packets[30:60])
	src := NewDirSource("watch", dir, "*.pcap", dataset.Packet, ds.Link, 5*time.Millisecond)
	if m := src.Meta(); m.Name != "watch" || m.Link != ds.Link {
		t.Fatalf("meta = %+v", m)
	}
	count, base := 0, 0
	pull := func(want int) {
		t.Helper()
		for count < want {
			ck, ok := src.Next(16, 0)
			if !ok {
				t.Fatalf("stream ended at %d of %d packets (err %v)", count, want, src.Err())
			}
			if ck.Base != base {
				t.Fatalf("chunk base %d, want %d (rebasing across files broken)", ck.Base, base)
			}
			base += len(ck.Packets)
			count += len(ck.Packets)
		}
	}
	pull(60)
	if got := src.DecodeMode(); got != "buffered" {
		t.Fatalf("eager watch DecodeMode = %q, want buffered", got)
	}
	// A capture rotated in after the watch started is picked up too.
	writePcap(t, filepath.Join(dir, "trace-002.pcap"), ds.Link, ds.Packets[60:80])
	pull(80)
	src.Drain()
	for {
		if _, ok := src.Next(16, 0); !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("clean watch reported error: %v", err)
	}
	if err := src.Reset(); err == nil {
		t.Fatal("directory watches must reject Reset")
	}
}

// TestDirSourceViewsRotationUnderLoad pins the refcounted-mapping
// contract of view-mode watch ingest: chunks cut from a mapped capture
// stay valid while the file is deleted out from under the watch AND the
// per-file reader is closed, and the mapping unmaps only when the last
// in-flight chunk releases its reference.
func TestDirSourceViewsRotationUnderLoad(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace-000.pcap")
	writePcap(t, path, ds.Link, ds.Packets[:40])
	n0 := pcap.OpenMappings()
	src := NewDirSource("watch", dir, "*.pcap", dataset.Packet, ds.Link, 5*time.Millisecond)
	if !src.ConfigureViews(true, netpkt.DecodeHint{Headers: true}) {
		t.Fatal("watch must honour the view request")
	}
	if got := src.DecodeMode(); got != "idle" {
		t.Fatalf("DecodeMode before ingest = %q, want idle", got)
	}
	var live []dataset.Chunk
	count := 0
	for count < 40 {
		ck, ok := src.Next(8, 0)
		if !ok {
			t.Fatalf("stream ended at %d of 40 packets (err %v)", count, src.Err())
		}
		if len(ck.Packets) != 0 {
			t.Fatal("view-mode watch must emit views, not packets")
		}
		if ck.Len() > 0 && ck.Ref == nil {
			t.Fatal("view chunks must carry a mapping reference")
		}
		count += ck.Len()
		live = append(live, ck)
	}
	if got := src.DecodeMode(); got != "mmap+lazy" {
		t.Fatalf("DecodeMode = %q, want mmap+lazy", got)
	}
	if got := pcap.OpenMappings(); got != n0+1 {
		t.Fatalf("live mappings = %d, want %d", got, n0+1)
	}
	// Rotate the file away while every chunk is still in flight, then
	// drain the watch (which closes the per-file reader). The mapping
	// must survive both: the kernel keeps mapped pages past unlink, and
	// the chunks' references keep it past the reader's Close.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	src.Drain()
	for {
		if _, ok := src.Next(8, 0); !ok {
			break
		}
	}
	if got := pcap.OpenMappings(); got != n0+1 {
		t.Fatalf("mapping dropped with chunks in flight: %d live, want %d", got, n0+1)
	}
	sum := 0
	for _, ck := range live {
		for i := range ck.Views {
			for _, b := range ck.Views[i].Data {
				sum += int(b)
			}
		}
	}
	if sum == 0 {
		t.Fatal("mapped bytes unreadable after rotation")
	}
	for _, ck := range live {
		src.Recycle(ck)
		ck.ReleaseRef()
	}
	if got := pcap.OpenMappings(); got != n0 {
		t.Fatalf("mappings after release = %d, want baseline %d", got, n0)
	}
}
