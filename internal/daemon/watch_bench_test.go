package daemon

import (
	"path/filepath"
	"testing"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// benchDirSource measures the watch-ingest source stage — discover,
// decode, recycle — over a directory of pre-rotated captures, in the
// buffered eager mode versus the mmap+lazy view mode. Each iteration
// runs a fresh watch over the same files (watches are one-shot), so the
// per-iteration cost includes one scan-and-stabilize round trip; the
// decode work dominates. The acceptance bar is mmap ≥ 2× buffered.
func benchDirSource(b *testing.B, lazy bool) {
	spec, ok := dataset.Get("P0")
	if !ok {
		b.Fatal("no dataset P0")
	}
	ds := spec.Generate(0.5)
	// Replicate the trace so per-iteration decode work dominates the
	// fixed watch costs (scan round trip, stabilization sleep, opens) —
	// otherwise both modes converge on the same overhead floor.
	var pkts []*netpkt.Packet
	for len(pkts) < 8*len(ds.Packets) {
		pkts = append(pkts, ds.Packets...)
	}
	dir := b.TempDir()
	n := len(pkts)
	wire := 0
	for _, p := range pkts {
		wire += len(p.Data)
	}
	writePcap(b, filepath.Join(dir, "trace-000.pcap"), ds.Link, pkts[:n/4])
	writePcap(b, filepath.Join(dir, "trace-001.pcap"), ds.Link, pkts[n/4:n/2])
	writePcap(b, filepath.Join(dir, "trace-002.pcap"), ds.Link, pkts[n/2:3*n/4])
	writePcap(b, filepath.Join(dir, "trace-003.pcap"), ds.Link, pkts[3*n/4:])
	b.SetBytes(int64(wire))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NewDirSource("bench", dir, "*.pcap", dataset.Packet, ds.Link, 50*time.Microsecond)
		if lazy {
			if !src.ConfigureViews(true, netpkt.DecodeHint{Headers: true}) {
				b.Fatal("ConfigureViews refused")
			}
		}
		count := 0
		for count < n {
			ck, ok := src.Next(512, 0)
			if !ok {
				b.Fatalf("stream ended at %d of %d packets (err %v)", count, n, src.Err())
			}
			count += ck.Len()
			src.Recycle(ck)
			ck.ReleaseRef()
		}
		src.Drain()
		for {
			if _, ok := src.Next(512, 0); !ok {
				break
			}
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirSourceBuffered(b *testing.B) { benchDirSource(b, false) }

func BenchmarkDirSourceMmap(b *testing.B) { benchDirSource(b, true) }
