package daemon

// Alert is one JSONL line on a pipeline's alert sink: the verdict for a
// single scored unit (packet, flow, or group). Lines are newline-
// delimited JSON objects, one per unit, written in scoring order. The
// field-by-field schema is documented for operators in OPERATIONS.md.
type Alert struct {
	// TS is the wall-clock emission time (RFC 3339, UTC, ns precision).
	TS string `json:"ts"`
	// Pipeline is the emitting pipeline's registry name.
	Pipeline string `json:"pipeline"`
	// Seq is the stream chunk sequence number the unit was scored in,
	// or -1 for verdicts that materialize at drain (Phase "flush").
	Seq int `json:"seq"`
	// Phase is "stream" for verdicts emitted while chunks flow, "flush"
	// for deferred verdicts written at drain (flow-granularity
	// pipelines, barrier suffixes).
	Phase string `json:"phase"`
	// Unit names the scored row unit: "packet", "flow", or "group".
	Unit string `json:"unit"`
	// Index is the unit's global index in the ingested stream (packet
	// index or flow index), -1 when the pipeline drops the mapping.
	Index int `json:"index"`
	// Pred is the model's verdict: 1 anomalous, 0 benign.
	Pred int `json:"pred"`
	// Score is the positive-class score when the model exposes one.
	Score *float64 `json:"score,omitempty"`
	// Truth is the ground-truth label when the source carries labels
	// (replayed corpora); 0 on unlabeled live traffic.
	Truth int `json:"truth"`
	// Attack is the ground-truth attack name ("" = benign/unknown).
	Attack string `json:"attack,omitempty"`
	// ModelGen is the model generation that produced the verdict; it
	// increments on every promoted hot swap, so alerts remain
	// attributable across swaps.
	ModelGen int `json:"model_gen"`
}
