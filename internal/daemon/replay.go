package daemon

import (
	"sync"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// ReplaySource replays a finite inner source (pcap file, in-memory
// corpus) as daemon ingest, optionally paced to the capture's own
// timeline. It adds the two capabilities resident pipelines need from a
// replay: pacing (wire speed or any multiple of it) and graceful Drain.
// Reset rewinds the inner source and re-arms the replay, so reloads
// replay the capture from the top.
type ReplaySource struct {
	mu      sync.Mutex
	inner   dataset.Source
	speed   float64
	delay   time.Duration
	stop    chan struct{}
	stopped bool
	emitted bool
	started bool
	wall0   time.Time
	pkt0    time.Time
}

// NewReplaySource wraps inner. speed is the replay rate as a multiple of
// capture time: 1 replays at wire speed, 2 at double speed, 0 disables
// pacing and replays as fast as the pipeline pulls. If inner exposes the
// full dataset (a Labeled method, like dataset.SliceSource), the
// returned source forwards it so barrier ops avoid re-accumulation.
func NewReplaySource(inner dataset.Source, speed float64) dataset.Source {
	r := &ReplaySource{inner: inner, speed: speed, stop: make(chan struct{})}
	if l, ok := inner.(interface{ Labeled() *dataset.Labeled }); ok {
		return &replayLabeled{ReplaySource: r, l: l}
	}
	return r
}

// NewPacedSource wraps inner with a fixed per-chunk delay, ignoring
// capture timestamps. Where NewReplaySource recreates the capture's own
// timeline, a paced source spaces chunks evenly — the shape drift
// benchmarks and smokes need so background retrains and shadow windows
// always have upcoming chunk boundaries to land on, regardless of how
// the synthetic capture stamps its packets. Drain interrupts the delay
// like it interrupts replay pacing.
func NewPacedSource(inner dataset.Source, delay time.Duration) dataset.Source {
	r := &ReplaySource{inner: inner, delay: delay, stop: make(chan struct{})}
	if l, ok := inner.(interface{ Labeled() *dataset.Labeled }); ok {
		return &replayLabeled{ReplaySource: r, l: l}
	}
	return r
}

// replayLabeled adds the Labeled passthrough for inner sources that
// expose their full dataset.
type replayLabeled struct {
	*ReplaySource
	l interface{ Labeled() *dataset.Labeled }
}

// Labeled exposes the inner source's materialized dataset.
func (r *replayLabeled) Labeled() *dataset.Labeled { return r.l.Labeled() }

// Meta implements dataset.Source.
func (s *ReplaySource) Meta() dataset.SourceMeta { return s.inner.Meta() }

// ConfigureViews implements dataset.ViewSource by forwarding to the
// inner source, so a replayed capture rides the zero-copy decode fast
// path exactly like direct ingest. Inner sources without view support
// refuse the request.
func (s *ReplaySource) ConfigureViews(on bool, hint netpkt.DecodeHint) bool {
	if vs, ok := s.inner.(dataset.ViewSource); ok {
		return vs.ConfigureViews(on, hint)
	}
	return false
}

// DecodeMode surfaces the inner source's decode mode when it reports one.
func (s *ReplaySource) DecodeMode() string {
	if dm, ok := s.inner.(interface{ DecodeMode() string }); ok {
		return dm.DecodeMode()
	}
	return ""
}

// Next implements dataset.Source: it forwards to the inner source,
// sleeping first so the chunk's first packet lands on the replay
// timeline. Drain interrupts the sleep (the chunk is still delivered;
// the stream ends on the following call).
func (s *ReplaySource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	s.mu.Lock()
	stopCh, stopped := s.stop, s.stopped
	s.mu.Unlock()
	if stopped {
		return s.endStream()
	}
	ck, ok := s.inner.Next(maxRows, maxBytes)
	if !ok {
		return s.endStream()
	}
	s.mu.Lock()
	s.emitted = true
	wait := s.delay
	if s.speed > 0 && ck.Len() > 0 {
		var first time.Time
		if len(ck.Packets) > 0 {
			first = ck.Packets[0].Ts
		} else {
			first = ck.Views[0].Ts
		}
		if !s.started {
			s.started = true
			s.wall0 = time.Now()
			s.pkt0 = first
		}
		target := time.Duration(float64(first.Sub(s.pkt0)) / s.speed)
		wait = target - time.Since(s.wall0)
	}
	s.mu.Unlock()
	if wait > 0 {
		select {
		case <-time.After(wait):
		case <-stopCh:
		}
	}
	return ck, true
}

// endStream honors the at-least-one-chunk contract: the first end-of-
// stream observation on a pass that emitted nothing yields one empty
// chunk.
func (s *ReplaySource) endStream() (dataset.Chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.emitted {
		s.emitted = true
		return dataset.Chunk{}, true
	}
	return dataset.Chunk{}, false
}

// Reset implements dataset.Source: it rewinds the inner source and
// re-arms pacing and drain, so the next pass replays from the top.
func (s *ReplaySource) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.Reset(); err != nil {
		return err
	}
	s.stop = make(chan struct{})
	s.stopped = false
	s.emitted = false
	s.started = false
	return nil
}

// Drain implements Drainer: the replay stops producing; an in-flight
// pacing sleep is interrupted and its chunk delivered, then the stream
// ends.
func (s *ReplaySource) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
}

// Recycle forwards chunk recycling to the inner source when it pools
// chunk buffers (dataset.PcapSource).
func (s *ReplaySource) Recycle(ck dataset.Chunk) {
	if rec, ok := s.inner.(dataset.Recycler); ok {
		rec.Recycle(ck)
	}
}

// Err surfaces the inner source's decode error when it reports one
// (dataset.PcapSource).
func (s *ReplaySource) Err() error {
	if es, ok := s.inner.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}
