package daemon

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
	"lumen/internal/pcap"
)

// DirSource ingests rotated capture files from a watched directory: it
// polls for files matching a glob pattern, waits for each file's size to
// hold still across one poll interval (the rotation-complete heuristic),
// then streams it as pcap chunks with packet indices rebased to one
// continuous stream across files. Files are processed once each, in
// lexical name order — name rotated captures sortably
// (trace-000017.pcap). DirSource is not resettable; a watch has no
// beginning to rewind to.
//
// When the consumer opts into lazy view chunks (ConfigureViews), each
// file is memory-mapped and served over the zero-copy decode fast path:
// every chunk holds a reference on its file's mapping (Chunk.Ref), so
// the mapping stays valid until the last in-flight chunk is released —
// even after the file's reader is closed, and even if the file itself
// is deleted mid-flight (the kernel keeps mapped pages alive past
// unlink). Eager consumers retain decoded packets beyond chunk release,
// which a deferred unmap cannot anchor, so the watch falls back to
// buffered reads (pooled copies) for them.
type DirSource struct {
	name string
	dir  string
	glob string
	gran dataset.Granularity
	link netpkt.LinkType
	poll time.Duration

	stop     chan struct{}
	stopOnce sync.Once

	// pool is shared across the per-file sources so decode buffers keep
	// recycling across file boundaries.
	pool *pcap.BufferPool

	// Single-consumer state: Next runs on one goroutine.
	known   map[string]bool // every path ever queued for ingest
	waiting []string        // discovered but not yet size-stable, sorted
	sizes   map[string]int64
	cur     *dataset.PcapSource
	curf    *os.File
	base    int
	emitted bool
	view    bool
	hint    netpkt.DecodeHint

	mu   sync.Mutex
	err  error
	mode string
}

// NewDirSource watches dir for files matching glob (e.g. "*.pcap"),
// polling every poll interval (0 means 500ms). gran and link describe
// the captures; link is advisory (each file's own pcap header governs
// decoding).
func NewDirSource(name, dir, glob string, gran dataset.Granularity, link netpkt.LinkType, poll time.Duration) *DirSource {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	return &DirSource{
		name:  name,
		dir:   dir,
		glob:  glob,
		gran:  gran,
		link:  link,
		poll:  poll,
		stop:  make(chan struct{}),
		pool:  pcap.NewBufferPool(),
		known: map[string]bool{},
		sizes: map[string]int64{},
	}
}

// Meta implements dataset.Source.
func (s *DirSource) Meta() dataset.SourceMeta {
	return dataset.SourceMeta{Name: s.name, Granularity: s.gran, Link: s.link}
}

// ConfigureViews implements dataset.ViewSource: with on=true, files are
// memory-mapped and chunks carry lazy PacketViews with a retained
// mapping reference each (see the type comment). Configure before the
// first Next call.
func (s *DirSource) ConfigureViews(on bool, hint netpkt.DecodeHint) bool {
	s.view, s.hint = on, hint
	return true
}

// DecodeMode reports how the watch currently reads and decodes, for
// operator surfaces: "idle" before the first file opens, then the
// current file source's mode ("mmap+lazy", "buffered", ...).
func (s *DirSource) DecodeMode() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == "" {
		return "idle"
	}
	return s.mode
}

// Next implements dataset.Source: it drains the current file, then polls
// for the next size-stable one. The stream ends on Drain or on the first
// unreadable file (surfaced via Err).
func (s *DirSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	for {
		select {
		case <-s.stop:
			s.closeCurrent()
			return s.endStream()
		default:
		}
		if s.cur != nil {
			ck, ok := s.cur.Next(maxRows, maxBytes)
			if ok {
				n := ck.Len()
				ck.Base = s.base
				s.base += n
				s.emitted = true
				return ck, true
			}
			err := s.cur.Err()
			s.closeCurrent()
			if err != nil {
				s.setErr(err)
				return s.endStream()
			}
		}
		if path := s.scan(); path != "" {
			if err := s.open(path); err != nil {
				s.setErr(err)
				return s.endStream()
			}
			continue
		}
		select {
		case <-time.After(s.poll):
		case <-s.stop:
			return s.endStream()
		}
	}
}

// scan returns the next unprocessed file whose size held still since the
// previous scan. Discovery is incremental: paths already queued or
// consumed (known) are skipped, and only genuinely new matches trigger a
// re-sort of the small waiting list — the glob result itself is never
// re-sorted or re-stat'd wholesale every tick.
func (s *DirSource) scan() string {
	matches, err := filepath.Glob(filepath.Join(s.dir, s.glob))
	if err != nil {
		s.setErr(fmt.Errorf("daemon: watch %q: %w", s.name, err))
		return ""
	}
	grew := false
	for _, path := range matches {
		if !s.known[path] {
			s.known[path] = true
			s.waiting = append(s.waiting, path)
			grew = true
		}
	}
	if grew {
		sort.Strings(s.waiting)
	}
	for i := 0; i < len(s.waiting); {
		path := s.waiting[i]
		fi, err := os.Stat(path)
		switch {
		case os.IsNotExist(err) || (err == nil && fi.IsDir()):
			// Vanished before ingest, or a directory: drop for good.
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			delete(s.sizes, path)
			continue
		case err != nil:
			// Transient stat failure: retry on the next tick.
			i++
			continue
		}
		if prev, ok := s.sizes[path]; ok && prev == fi.Size() {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			delete(s.sizes, path)
			return path
		}
		s.sizes[path] = fi.Size()
		i++
	}
	return ""
}

// bufferedFile hides the *os.File concrete type from the pcap source's
// mmap detection. Eager consumers retain decoded packets past chunk
// release, so even refcounted mappings would unmap under live bytes;
// buffered reads copy record bytes into pooled buffers, which carry no
// such lifetime constraint.
type bufferedFile struct{ *os.File }

// open starts streaming one capture file.
func (s *DirSource) open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("daemon: watch %q: %w", s.name, err)
	}
	var rs io.ReadSeeker = f
	if !s.view {
		rs = bufferedFile{f}
	}
	src, err := dataset.NewPcapSourcePooled(filepath.Base(path), rs, s.gran, s.pool)
	if err != nil {
		f.Close()
		return fmt.Errorf("daemon: watch %q: %s: %w", s.name, filepath.Base(path), err)
	}
	src.ConfigureViews(s.view, s.hint)
	src.EnableChunkRefs()
	s.cur, s.curf = src, f
	s.mu.Lock()
	s.mode = src.DecodeMode()
	s.mu.Unlock()
	return nil
}

// closeCurrent drops the current file's reader (releasing its owner
// reference on the mapping — in-flight chunks keep their own) and its
// descriptor.
func (s *DirSource) closeCurrent() {
	if s.cur != nil {
		s.cur.Close()
	}
	if s.curf != nil {
		s.curf.Close()
	}
	s.cur, s.curf = nil, nil
}

// Recycle implements dataset.Recycler against the watch's shared pool,
// so chunks recycle even after the file they were cut from drained and
// its per-file source was closed. Chunks holding a mapping reference
// (view mode) alias the mapping and never pool their bytes; buffered
// chunks return data buffers and slices both.
func (s *DirSource) Recycle(ck dataset.Chunk) {
	zc := ck.Ref != nil
	if ck.Views != nil {
		if !zc {
			for i := range ck.Views {
				s.pool.PutData(ck.Views[i].Data)
			}
		}
		s.pool.PutViews(ck.Views)
		return
	}
	if !zc {
		for _, pkt := range ck.Packets {
			s.pool.PutData(pkt.Data)
		}
	}
	s.pool.PutPkts(ck.Packets)
}

// endStream honors the at-least-one-chunk contract on first end.
func (s *DirSource) endStream() (dataset.Chunk, bool) {
	if !s.emitted {
		s.emitted = true
		return dataset.Chunk{Base: s.base}, true
	}
	return dataset.Chunk{}, false
}

// Reset implements dataset.Source; watches cannot rewind.
func (s *DirSource) Reset() error {
	return fmt.Errorf("daemon: watch %q: directory watches cannot be reset", s.name)
}

// Drain implements Drainer: the watch stops polling; the file currently
// streaming is cut off at the next chunk boundary.
func (s *DirSource) Drain() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Err returns the first file or decode error the watch hit.
func (s *DirSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *DirSource) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}
