package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lumen/internal/dataset"
	"lumen/internal/netpkt"
)

// DirSource ingests rotated capture files from a watched directory: it
// polls for files matching a glob pattern, waits for each file's size to
// hold still across one poll interval (the rotation-complete heuristic),
// then streams it as pcap chunks with packet indices rebased to one
// continuous stream across files. Files are processed once each, in
// lexical name order per scan — name rotated captures sortably
// (trace-000017.pcap). DirSource is not resettable; a watch has no
// beginning to rewind to.
type DirSource struct {
	name string
	dir  string
	glob string
	gran dataset.Granularity
	link netpkt.LinkType
	poll time.Duration

	stop     chan struct{}
	stopOnce sync.Once

	// Single-consumer state: Next runs on one goroutine.
	seen    map[string]bool
	sizes   map[string]int64
	cur     *dataset.PcapSource
	curf    *os.File
	base    int
	emitted bool

	mu  sync.Mutex
	err error
}

// NewDirSource watches dir for files matching glob (e.g. "*.pcap"),
// polling every poll interval (0 means 500ms). gran and link describe
// the captures; link is advisory (each file's own pcap header governs
// decoding).
func NewDirSource(name, dir, glob string, gran dataset.Granularity, link netpkt.LinkType, poll time.Duration) *DirSource {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	return &DirSource{
		name:  name,
		dir:   dir,
		glob:  glob,
		gran:  gran,
		link:  link,
		poll:  poll,
		stop:  make(chan struct{}),
		seen:  map[string]bool{},
		sizes: map[string]int64{},
	}
}

// Meta implements dataset.Source.
func (s *DirSource) Meta() dataset.SourceMeta {
	return dataset.SourceMeta{Name: s.name, Granularity: s.gran, Link: s.link}
}

// Next implements dataset.Source: it drains the current file, then polls
// for the next size-stable one. The stream ends on Drain or on the first
// unreadable file (surfaced via Err).
func (s *DirSource) Next(maxRows, maxBytes int) (dataset.Chunk, bool) {
	for {
		select {
		case <-s.stop:
			if s.curf != nil {
				s.curf.Close()
				s.cur, s.curf = nil, nil
			}
			return s.endStream()
		default:
		}
		if s.cur != nil {
			ck, ok := s.cur.Next(maxRows, maxBytes)
			if ok {
				n := len(ck.Packets)
				ck.Base = s.base
				s.base += n
				s.emitted = true
				return ck, true
			}
			err := s.cur.Err()
			s.curf.Close()
			s.cur, s.curf = nil, nil
			if err != nil {
				s.setErr(err)
				return s.endStream()
			}
		}
		if path := s.scan(); path != "" {
			if err := s.open(path); err != nil {
				s.setErr(err)
				return s.endStream()
			}
			continue
		}
		select {
		case <-time.After(s.poll):
		case <-s.stop:
			return s.endStream()
		}
	}
}

// scan returns the next unprocessed file whose size held still since the
// previous scan, recording sizes for files still growing.
func (s *DirSource) scan() string {
	matches, err := filepath.Glob(filepath.Join(s.dir, s.glob))
	if err != nil {
		s.setErr(fmt.Errorf("daemon: watch %q: %w", s.name, err))
		return ""
	}
	sort.Strings(matches)
	for _, path := range matches {
		if s.seen[path] {
			continue
		}
		fi, err := os.Stat(path)
		if err != nil || fi.IsDir() {
			continue
		}
		if prev, ok := s.sizes[path]; ok && prev == fi.Size() {
			s.seen[path] = true
			delete(s.sizes, path)
			return path
		}
		s.sizes[path] = fi.Size()
	}
	return ""
}

// bufferedFile hides the *os.File concrete type from NewPcapSource's
// mmap detection. A directory watch hands chunks downstream that can
// outlive each rotated file's reader, so there is no point in the watch
// loop where releasing a memory mapping (PcapSource.Close) would be
// safe; buffered reads copy record bytes into pooled buffers, which
// carry no such lifetime constraint.
type bufferedFile struct{ *os.File }

// open starts streaming one capture file.
func (s *DirSource) open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("daemon: watch %q: %w", s.name, err)
	}
	src, err := dataset.NewPcapSource(filepath.Base(path), bufferedFile{f}, s.gran)
	if err != nil {
		f.Close()
		return fmt.Errorf("daemon: watch %q: %s: %w", s.name, filepath.Base(path), err)
	}
	s.cur, s.curf = src, f
	return nil
}

// endStream honors the at-least-one-chunk contract on first end.
func (s *DirSource) endStream() (dataset.Chunk, bool) {
	if !s.emitted {
		s.emitted = true
		return dataset.Chunk{Base: s.base}, true
	}
	return dataset.Chunk{}, false
}

// Reset implements dataset.Source; watches cannot rewind.
func (s *DirSource) Reset() error {
	return fmt.Errorf("daemon: watch %q: directory watches cannot be reset", s.name)
}

// Drain implements Drainer: the watch stops polling; the file currently
// streaming is cut off at the next chunk boundary.
func (s *DirSource) Drain() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Err returns the first file or decode error the watch hit.
func (s *DirSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *DirSource) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}
