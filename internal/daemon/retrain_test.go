package daemon

import (
	"bytes"
	"testing"
	"time"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/obs"
)

// driftPipeline is testPipeline with a Page-Hinkley monitor on the
// prediction stream.
func driftPipeline() *core.Pipeline {
	p := testPipeline()
	p.Name = "daemon-pkt-drift"
	p.Ops = append(p.Ops, core.OpSpec{
		Func: "drift_detect", Input: []string{"fit"}, Output: "drift",
		Params: map[string]any{"lambda": 5.0, "min_samples": 10},
	})
	return p
}

// driftedTestDS reorders the fixture trace benign-first-then-attack, so
// the scored stream shifts sharply mid-trace.
func driftedTestDS(t *testing.T) *dataset.Labeled {
	t.Helper()
	ds := testDS(t)
	out := &dataset.Labeled{
		Name:        ds.Name + "-drift",
		Granularity: ds.Granularity,
		Link:        ds.Link,
		Devices:     ds.Devices,
	}
	for _, want := range []int{0, 1} {
		for i, l := range ds.Labels {
			if l != want {
				continue
			}
			out.Packets = append(out.Packets, ds.Packets[i])
			out.Labels = append(out.Labels, l)
			out.Attacks = append(out.Attacks, ds.Attacks[i])
		}
	}
	return out
}

// TestDriftTriggeredRetrain is the closed-loop acceptance test: a
// label-shifted trace makes drift_detect fire, the pipeline retrains a
// fresh model on its feature reservoir in the background, and the
// candidate passes the shadow gate into a promoted generation — all
// while every chunk keeps getting scored (no dropped verdicts).
func TestDriftTriggeredRetrain(t *testing.T) {
	ds := driftedTestDS(t)
	eng := core.NewEngine(driftPipeline())
	eng.Seed = 7
	if err := eng.TrainStream(ds, core.StreamConfig{ChunkRows: 256}); err != nil {
		t.Fatal(err)
	}

	met := obs.NewMetrics()
	d := New(Config{Metrics: met})
	g := newGate(dataset.NewSliceSource(ds))
	var alerts bytes.Buffer
	rows := chunkRowsFor(len(ds.Packets), 40)
	p, err := d.Start(PipeConfig{
		Name:   "retrain",
		Engine: eng,
		Source: g,
		Stream: core.StreamConfig{ChunkRows: rows},
		Alerts: &alerts,
		Retrain: RetrainConfig{
			Enabled:        true,
			ReservoirCap:   2048,
			MinRows:        64,
			CooldownChunks: 2,
			Seed:           3,
			Swap:           SwapOptions{AutoDecide: true, ShadowChunks: 2, MaxDisagree: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Release chunks one at a time until the retrained generation is
	// active, so the background fit and its shadow phase always have a
	// next chunk boundary to land on.
	total := len(ds.Packets)/rows + 2
	for i := 0; i < total; i++ {
		g.allow(1)
		seq := int64(i + 1)
		waitFor(t, 5*time.Second, "chunk absorption", func() bool {
			return p.Status().Chunks >= seq
		})
		if p.Status().ModelGeneration >= 2 {
			break
		}
	}
	waitFor(t, 5*time.Second, "promoted retrain generation", func() bool {
		return p.Status().ModelGeneration >= 2
	})
	g.allow(total) // let the rest of the trace through
	<-p.Done()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}

	st := p.Status()
	if st.ModelGeneration < 2 {
		t.Fatalf("model generation = %d, want >= 2 after drift retrain", st.ModelGeneration)
	}
	if st.LastSwap == nil || st.LastSwap.Outcome != "promoted" || st.LastSwap.By != "auto" {
		t.Fatalf("last swap = %+v, want auto promotion", st.LastSwap)
	}
	if n := met.Counter("lumen_drift_events_total",
		"Drift-detector events observed, per pipeline.",
		"pipeline", "retrain").Value(); n == 0 {
		t.Fatal("lumen_drift_events_total did not count")
	}
	if n := met.Counter("lumen_retrain_total",
		"Drift-triggered background retrains, by outcome.",
		"pipeline", "retrain", "outcome", "ok").Value(); n == 0 {
		t.Fatal("lumen_retrain_total{outcome=ok} did not count")
	}
	if st.Verdicts != int64(len(ds.Packets)) {
		t.Fatalf("verdicts = %d, want %d (dropped chunks)", st.Verdicts, len(ds.Packets))
	}
	got := parseAlerts(t, alerts.Bytes())
	if len(got) != len(ds.Packets) {
		t.Fatalf("alert lines = %d, want %d", len(got), len(ds.Packets))
	}
	// The generation stamp must flip mid-stream: early alerts carry gen 1,
	// late ones the promoted generation.
	if got[0].ModelGen != 1 {
		t.Fatalf("first alert generation = %d, want 1", got[0].ModelGen)
	}
	if last := got[len(got)-1].ModelGen; last < 2 {
		t.Fatalf("final alert generation = %d, want >= 2", last)
	}
}
