package features

import "lumen/internal/netpkt"

// NPrintConfig selects which protocol sections the nprint representation
// includes — algorithms A01–A04 are four such configurations.
type NPrintConfig struct {
	IPv4    bool
	TCP     bool
	UDP     bool
	ICMP    bool
	Payload int // number of payload bytes to include (0 = none)
}

// Bit section widths in bits, mirroring the nprint tool's fixed layout:
// every packet maps to the same positions whether or not a header is
// present; absent headers encode as -1.
const (
	nprintIPv4Bits = 20 * 8
	nprintTCPBits  = 20 * 8
	nprintUDPBits  = 8 * 8
	nprintICMPBits = 8 * 8
)

// Width returns the feature-vector length for this configuration.
func (c NPrintConfig) Width() int {
	n := 0
	if c.IPv4 {
		n += nprintIPv4Bits
	}
	if c.TCP {
		n += nprintTCPBits
	}
	if c.UDP {
		n += nprintUDPBits
	}
	if c.ICMP {
		n += nprintICMPBits
	}
	n += c.Payload * 8
	return n
}

// Vector renders one packet to its nprint bit vector: 1/0 for present
// header bits, -1 for bits of absent sections.
func (c NPrintConfig) Vector(p *netpkt.Packet) []float64 {
	out := make([]float64, 0, c.Width())
	raw := p.Data
	// Locate header byte ranges inside the raw frame.
	var ipStart, l4Start int = -1, -1
	if p.Link == netpkt.LinkEthernet && len(raw) >= 14 {
		if p.IPv4 != nil {
			ipStart = 14
			ihl := 20
			if len(raw) > 14 {
				ihl = int(raw[14]&0x0f) * 4
			}
			l4Start = 14 + ihl
		}
	}
	if c.IPv4 {
		out = appendBits(out, raw, ipStart, 20, p.IPv4 != nil)
	}
	if c.TCP {
		out = appendBits(out, raw, l4Start, 20, p.TCP != nil)
	}
	if c.UDP {
		out = appendBits(out, raw, l4Start, 8, p.UDP != nil)
	}
	if c.ICMP {
		out = appendBits(out, raw, l4Start, 8, p.ICMP != nil)
	}
	if c.Payload > 0 {
		payStart := -1
		if len(p.Payload) > 0 && len(raw) >= len(p.Payload) {
			payStart = len(raw) - len(p.Payload)
		}
		out = appendBits(out, raw, payStart, c.Payload, payStart >= 0)
	}
	return out
}

// appendBits appends nBytes*8 bit features from raw[start:]; absent or
// truncated regions fill with -1.
func appendBits(out []float64, raw []byte, start, nBytes int, present bool) []float64 {
	for i := 0; i < nBytes; i++ {
		idx := start + i
		if !present || start < 0 || idx >= len(raw) {
			for b := 0; b < 8; b++ {
				out = append(out, -1)
			}
			continue
		}
		v := raw[idx]
		for b := 7; b >= 0; b-- {
			out = append(out, float64((v>>uint(b))&1))
		}
	}
	return out
}

// Standard nprint variants as used in the paper's Table 2.
var (
	// NPrintAll is A01: every supported section plus 10 payload bytes.
	NPrintAll = NPrintConfig{IPv4: true, TCP: true, UDP: true, ICMP: true, Payload: 10}
	// NPrintTCPUDPIPv4 is A02.
	NPrintTCPUDPIPv4 = NPrintConfig{IPv4: true, TCP: true, UDP: true}
	// NPrintWithPayload is A03: tcp+udp+ipv4+payload.
	NPrintWithPayload = NPrintConfig{IPv4: true, TCP: true, UDP: true, Payload: 10}
	// NPrintTCPICMPIPv4 is A04.
	NPrintTCPICMPIPv4 = NPrintConfig{IPv4: true, TCP: true, ICMP: true}
)
