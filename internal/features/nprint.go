package features

import "lumen/internal/netpkt"

// NPrintConfig selects which protocol sections the nprint representation
// includes — algorithms A01–A04 are four such configurations.
type NPrintConfig struct {
	IPv4    bool
	TCP     bool
	UDP     bool
	ICMP    bool
	Payload int // number of payload bytes to include (0 = none)
}

// Bit section widths in bits, mirroring the nprint tool's fixed layout:
// every packet maps to the same positions whether or not a header is
// present; absent headers encode as -1.
const (
	nprintIPv4Bits = 20 * 8
	nprintTCPBits  = 20 * 8
	nprintUDPBits  = 8 * 8
	nprintICMPBits = 8 * 8
)

// Width returns the feature-vector length for this configuration.
func (c NPrintConfig) Width() int {
	n := 0
	if c.IPv4 {
		n += nprintIPv4Bits
	}
	if c.TCP {
		n += nprintTCPBits
	}
	if c.UDP {
		n += nprintUDPBits
	}
	if c.ICMP {
		n += nprintICMPBits
	}
	n += c.Payload * 8
	return n
}

// Shape is the minimal description of a packet that nprint rendering
// needs: the raw frame, which headers are present, and the payload
// length. It is derivable from either an eagerly decoded Packet or a
// lazy PacketView, so both representations share one fill path.
type Shape struct {
	Raw        []byte
	Link       netpkt.LinkType
	HasIPv4    bool
	HasTCP     bool
	HasUDP     bool
	HasICMP    bool
	PayloadLen int
}

// ShapeOf derives the Shape of an eagerly decoded packet.
func ShapeOf(p *netpkt.Packet) Shape {
	return Shape{
		Raw: p.Data, Link: p.Link,
		HasIPv4: p.IPv4 != nil, HasTCP: p.TCP != nil,
		HasUDP: p.UDP != nil, HasICMP: p.ICMP != nil,
		PayloadLen: len(p.Payload),
	}
}

// ShapeOfView derives the Shape of a lazy view, forcing only its header
// pass (nprint reads raw header bytes, never the app layers).
func ShapeOfView(v *netpkt.PacketView) Shape {
	_, ip4 := v.IPv4()
	_, tcp := v.TCP()
	_, udp := v.UDP()
	_, icmp := v.ICMP()
	return Shape{
		Raw: v.Data, Link: v.Link,
		HasIPv4: ip4, HasTCP: tcp, HasUDP: udp, HasICMP: icmp,
		PayloadLen: v.PayloadLen(),
	}
}

// Vector renders one packet to its nprint bit vector: 1/0 for present
// header bits, -1 for bits of absent sections.
func (c NPrintConfig) Vector(p *netpkt.Packet) []float64 {
	out := make([]float64, c.Width())
	c.FillRow(out, ShapeOf(p))
	return out
}

// FillRow renders one packet's nprint bits into dst, which must have
// length Width(). Callers that reuse dst across packets avoid the
// per-packet vector allocation of Vector; the bit layout is identical.
func (c NPrintConfig) FillRow(dst []float64, s Shape) {
	raw := s.Raw
	// Locate header byte ranges inside the raw frame.
	var ipStart, l4Start int = -1, -1
	if s.Link == netpkt.LinkEthernet && len(raw) >= 14 {
		if s.HasIPv4 {
			ipStart = 14
			ihl := 20
			if len(raw) > 14 {
				ihl = int(raw[14]&0x0f) * 4
			}
			l4Start = 14 + ihl
		}
	}
	off := 0
	if c.IPv4 {
		off = fillBits(dst, off, raw, ipStart, 20, s.HasIPv4)
	}
	if c.TCP {
		off = fillBits(dst, off, raw, l4Start, 20, s.HasTCP)
	}
	if c.UDP {
		off = fillBits(dst, off, raw, l4Start, 8, s.HasUDP)
	}
	if c.ICMP {
		off = fillBits(dst, off, raw, l4Start, 8, s.HasICMP)
	}
	if c.Payload > 0 {
		payStart := -1
		if s.PayloadLen > 0 && len(raw) >= s.PayloadLen {
			payStart = len(raw) - s.PayloadLen
		}
		fillBits(dst, off, raw, payStart, c.Payload, payStart >= 0)
	}
}

// fillBits writes nBytes*8 bit features from raw[start:] into dst at
// off, returning the next offset; absent or truncated regions fill
// with -1.
func fillBits(dst []float64, off int, raw []byte, start, nBytes int, present bool) int {
	for i := 0; i < nBytes; i++ {
		idx := start + i
		if !present || start < 0 || idx >= len(raw) {
			for b := 0; b < 8; b++ {
				dst[off] = -1
				off++
			}
			continue
		}
		v := raw[idx]
		for b := 7; b >= 0; b-- {
			dst[off] = float64((v >> uint(b)) & 1)
			off++
		}
	}
	return off
}

// Standard nprint variants as used in the paper's Table 2.
var (
	// NPrintAll is A01: every supported section plus 10 payload bytes.
	NPrintAll = NPrintConfig{IPv4: true, TCP: true, UDP: true, ICMP: true, Payload: 10}
	// NPrintTCPUDPIPv4 is A02.
	NPrintTCPUDPIPv4 = NPrintConfig{IPv4: true, TCP: true, UDP: true}
	// NPrintWithPayload is A03: tcp+udp+ipv4+payload.
	NPrintWithPayload = NPrintConfig{IPv4: true, TCP: true, UDP: true, Payload: 10}
	// NPrintTCPICMPIPv4 is A04.
	NPrintTCPICMPIPv4 = NPrintConfig{IPv4: true, TCP: true, ICMP: true}
)
