// Package features implements the statistical feature primitives the ported
// algorithms share: damped incremental 1D/2D statistics (the AfterImage
// structures behind Kitsune's per-packet features), Shannon entropy over
// categorical counters, and nprint's bit-level packet representation.
package features

import "math"

// IncStat maintains exponentially damped count/mean/variance of a value
// stream, O(1) per insert. The decay halves the weight of history every
// 1/Lambda seconds, so features adapt to traffic shifts the way Kitsune's
// AfterImage does.
type IncStat struct {
	// Lambda is the decay rate in 1/seconds; 0 disables damping.
	Lambda float64

	w      float64 // damped count
	ls     float64 // damped linear sum
	ss     float64 // damped squared sum
	lastTs float64
	seen   bool
}

// NewIncStat returns a damped statistic with the given decay rate.
func NewIncStat(lambda float64) *IncStat { return &IncStat{Lambda: lambda} }

// Insert adds value v observed at time ts (seconds).
func (s *IncStat) Insert(v, ts float64) {
	s.decay(ts)
	s.w++
	s.ls += v
	s.ss += v * v
}

// decay ages the sufficient statistics to time ts.
func (s *IncStat) decay(ts float64) {
	if !s.seen {
		s.seen = true
		s.lastTs = ts
		return
	}
	if s.Lambda > 0 && ts > s.lastTs {
		f := math.Exp2(-s.Lambda * (ts - s.lastTs))
		s.w *= f
		s.ls *= f
		s.ss *= f
	}
	if ts > s.lastTs {
		s.lastTs = ts
	}
}

// Weight returns the damped observation count.
func (s *IncStat) Weight() float64 { return s.w }

// Mean returns the damped mean (0 before any insert).
func (s *IncStat) Mean() float64 {
	if s.w == 0 {
		return 0
	}
	return s.ls / s.w
}

// Var returns the damped variance (never negative).
func (s *IncStat) Var() float64 {
	if s.w == 0 {
		return 0
	}
	m := s.ls / s.w
	v := s.ss/s.w - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Std returns the damped standard deviation.
func (s *IncStat) Std() float64 { return math.Sqrt(s.Var()) }

// IncStat2D tracks the damped covariance between two co-observed streams
// (Kitsune's 2D "socket" statistics), plus the joint magnitude and radius
// features derived from the pair of 1D statistics.
type IncStat2D struct {
	A, B *IncStat

	sr     float64 // damped sum of residual products
	w      float64 // damped joint count
	lastTs float64
	seen   bool
}

// NewIncStat2D builds a 2D statistic over two damped 1D streams sharing
// the decay rate lambda.
func NewIncStat2D(lambda float64) *IncStat2D {
	return &IncStat2D{A: NewIncStat(lambda), B: NewIncStat(lambda)}
}

// Insert adds the co-observed pair (va, vb) at time ts.
func (s *IncStat2D) Insert(va, vb, ts float64) {
	if s.seen && s.A.Lambda > 0 && ts > s.lastTs {
		f := math.Exp2(-s.A.Lambda * (ts - s.lastTs))
		s.sr *= f
		s.w *= f
	}
	if !s.seen || ts > s.lastTs {
		s.lastTs = ts
	}
	s.seen = true
	s.A.Insert(va, ts)
	s.B.Insert(vb, ts)
	s.sr += (va - s.A.Mean()) * (vb - s.B.Mean())
	s.w++
}

// Cov returns the damped covariance estimate.
func (s *IncStat2D) Cov() float64 {
	if s.w == 0 {
		return 0
	}
	return s.sr / s.w
}

// Corr returns the damped correlation coefficient in [-1,1].
func (s *IncStat2D) Corr() float64 {
	sd := s.A.Std() * s.B.Std()
	if sd == 0 {
		return 0
	}
	c := s.Cov() / sd
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Magnitude returns sqrt(meanA² + meanB²), Kitsune's joint-magnitude
// feature.
func (s *IncStat2D) Magnitude() float64 {
	ma, mb := s.A.Mean(), s.B.Mean()
	return math.Sqrt(ma*ma + mb*mb)
}

// Radius returns sqrt(varA² + varB²), Kitsune's joint-radius feature.
func (s *IncStat2D) Radius() float64 {
	va, vb := s.A.Var(), s.B.Var()
	return math.Sqrt(va*va + vb*vb)
}
