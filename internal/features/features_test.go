package features

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"lumen/internal/netpkt"
)

func TestIncStatUndampedMatchesBatch(t *testing.T) {
	s := NewIncStat(0)
	vals := []float64{1, 2, 3, 4, 5, 100}
	for i, v := range vals {
		s.Insert(v, float64(i))
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var variance float64
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(vals))
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-variance) > 1e-9 {
		t.Errorf("var = %v, want %v", s.Var(), variance)
	}
	if s.Weight() != 6 {
		t.Errorf("weight = %v, want 6", s.Weight())
	}
}

func TestIncStatDampingForgetsHistory(t *testing.T) {
	s := NewIncStat(1) // half-life 1s
	s.Insert(100, 0)
	s.Insert(0, 20) // 20 half-lives later: the 100 is ~gone
	if m := s.Mean(); m > 0.01 {
		t.Errorf("damped mean = %v, want ~0", m)
	}
	// Weight decays toward the recent observation's unit weight.
	if w := s.Weight(); math.Abs(w-1) > 0.01 {
		t.Errorf("damped weight = %v, want ~1", w)
	}
}

func TestIncStatDampedWeightHalves(t *testing.T) {
	s := NewIncStat(1)
	s.Insert(5, 0)
	s.decay(1) // exactly one half-life
	if w := s.Weight(); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("weight after one half-life = %v, want 0.5", w)
	}
}

func TestIncStatVarNeverNegativeProperty(t *testing.T) {
	f := func(vals []float64, lambdaRaw uint8) bool {
		s := NewIncStat(float64(lambdaRaw%5) * 0.1)
		ts := 0.0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Insert(v, ts)
			ts += 0.1
			if s.Var() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIncStat2DPerfectCorrelation(t *testing.T) {
	s := NewIncStat2D(0)
	for i := 0; i < 100; i++ {
		v := float64(i)
		s.Insert(v, 2*v, float64(i))
	}
	if c := s.Corr(); c < 0.95 {
		t.Errorf("corr = %v, want ~1 for linearly related streams", c)
	}
	if s.Cov() <= 0 {
		t.Errorf("cov = %v, want > 0", s.Cov())
	}
}

func TestIncStat2DAntiCorrelation(t *testing.T) {
	s := NewIncStat2D(0)
	for i := 0; i < 100; i++ {
		v := float64(i)
		s.Insert(v, -v, float64(i))
	}
	if c := s.Corr(); c > -0.9 {
		t.Errorf("corr = %v, want ~-1", c)
	}
}

func TestIncStat2DMagnitudeRadius(t *testing.T) {
	s := NewIncStat2D(0)
	for i := 0; i < 50; i++ {
		s.Insert(3, 4, float64(i))
	}
	if m := s.Magnitude(); math.Abs(m-5) > 1e-9 {
		t.Errorf("magnitude = %v, want 5", m)
	}
	if r := s.Radius(); r != 0 {
		t.Errorf("radius of constant streams = %v, want 0", r)
	}
}

func TestCounterEntropy(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 8; i++ {
		c.Add("a")
		c.Add("b")
	}
	if h := c.Entropy(); math.Abs(h-1) > 1e-9 {
		t.Errorf("uniform 2-symbol entropy = %v, want 1 bit", h)
	}
	if c.Distinct() != 2 || c.Total() != 16 {
		t.Errorf("distinct/total = %d/%v", c.Distinct(), c.Total())
	}
	if ne := c.NormalizedEntropy(); math.Abs(ne-1) > 1e-9 {
		t.Errorf("normalized entropy = %v, want 1", ne)
	}
}

func TestCounterSingleSymbolEntropyZero(t *testing.T) {
	c := NewCounter()
	c.Add("only")
	c.Add("only")
	if h := c.Entropy(); h != 0 {
		t.Errorf("entropy = %v, want 0", h)
	}
	if ne := c.NormalizedEntropy(); ne != 0 {
		t.Errorf("normalized entropy = %v, want 0", ne)
	}
}

func TestEntropyOfMaximal(t *testing.T) {
	h := EntropyOf([]string{"a", "b", "c", "d"})
	if math.Abs(h-2) > 1e-9 {
		t.Errorf("entropy = %v, want 2 bits", h)
	}
}

func buildTCPPacket(t *testing.T) *netpkt.Packet {
	t.Helper()
	p := &netpkt.Packet{
		Eth: &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		IPv4: &netpkt.IPv4{
			TTL: 64, Protocol: netpkt.ProtoTCP,
			Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		},
		TCP:     &netpkt.TCP{SrcPort: 0xABCD, DstPort: 80, Flags: netpkt.FlagSYN},
		Payload: []byte{0xFF, 0x00},
	}
	if _, err := p.Serialize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNPrintWidths(t *testing.T) {
	if w := NPrintTCPUDPIPv4.Width(); w != 160+160+64 {
		t.Errorf("A02 width = %d, want 384", w)
	}
	if w := NPrintAll.Width(); w != 160+160+64+64+80 {
		t.Errorf("A01 width = %d, want 528", w)
	}
}

func TestNPrintVectorLengthAndValues(t *testing.T) {
	p := buildTCPPacket(t)
	v := NPrintTCPUDPIPv4.Vector(p)
	if len(v) != NPrintTCPUDPIPv4.Width() {
		t.Fatalf("vector length %d != width %d", len(v), NPrintTCPUDPIPv4.Width())
	}
	for i, b := range v {
		if b != 0 && b != 1 && b != -1 {
			t.Fatalf("bit %d = %v, want in {-1,0,1}", i, b)
		}
	}
	// UDP section must be all -1 for a TCP packet.
	udpStart := 160 + 160
	for i := udpStart; i < udpStart+64; i++ {
		if v[i] != -1 {
			t.Fatalf("udp bit %d = %v, want -1 (absent)", i, v[i])
		}
	}
	// IPv4 version nibble = 0100: first four bits of the IP section.
	if v[0] != 0 || v[1] != 1 || v[2] != 0 || v[3] != 0 {
		t.Errorf("ip version bits = %v, want 0100", v[:4])
	}
	// TCP source port 0xABCD = 1010 1011 1100 1101.
	tcpStart := 160
	wantPort := []float64{1, 0, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1}
	for i, w := range wantPort {
		if v[tcpStart+i] != w {
			t.Fatalf("tcp port bit %d = %v, want %v", i, v[tcpStart+i], w)
		}
	}
}

func TestNPrintPayloadSection(t *testing.T) {
	p := buildTCPPacket(t)
	cfg := NPrintConfig{Payload: 2}
	v := cfg.Vector(p)
	if len(v) != 16 {
		t.Fatalf("len = %d, want 16", len(v))
	}
	// Payload bytes 0xFF,0x00.
	for i := 0; i < 8; i++ {
		if v[i] != 1 {
			t.Fatalf("payload bit %d = %v, want 1", i, v[i])
		}
	}
	for i := 8; i < 16; i++ {
		if v[i] != 0 {
			t.Fatalf("payload bit %d = %v, want 0", i, v[i])
		}
	}
}

func TestNPrintConsistentWidthAcrossPacketsProperty(t *testing.T) {
	// Vectors must be fixed-width regardless of packet contents — the
	// defining property of the nprint representation.
	cfgs := []NPrintConfig{NPrintAll, NPrintTCPUDPIPv4, NPrintWithPayload, NPrintTCPICMPIPv4}
	pkts := []*netpkt.Packet{
		buildTCPPacket(t),
		{Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Beacon}},
		{},
	}
	for _, cfg := range cfgs {
		for i, p := range pkts {
			if got := len(cfg.Vector(p)); got != cfg.Width() {
				t.Errorf("cfg %+v packet %d: len=%d want %d", cfg, i, got, cfg.Width())
			}
		}
	}
}
