package features

import "math"

// Counter tallies categorical observations for entropy/distinct features
// (e.g. the source-port entropy smartdet keys DoS detection on).
type Counter struct {
	counts map[string]float64
	total  float64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]float64)}
}

// Add increments the count of key.
func (c *Counter) Add(key string) {
	c.counts[key]++
	c.total++
}

// Total returns the number of observations.
func (c *Counter) Total() float64 { return c.total }

// Distinct returns the number of distinct keys seen.
func (c *Counter) Distinct() int { return len(c.counts) }

// Entropy returns the Shannon entropy (bits) of the key distribution.
func (c *Counter) Entropy() float64 {
	if c.total == 0 {
		return 0
	}
	var h float64
	for _, n := range c.counts {
		p := n / c.total
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns entropy divided by log2(distinct), in [0,1]
// (0 when fewer than two keys).
func (c *Counter) NormalizedEntropy() float64 {
	d := len(c.counts)
	if d < 2 {
		return 0
	}
	return c.Entropy() / math.Log2(float64(d))
}

// EntropyOf computes the Shannon entropy of an arbitrary categorical
// sample in one call.
func EntropyOf(keys []string) float64 {
	c := NewCounter()
	for _, k := range keys {
		c.Add(k)
	}
	return c.Entropy()
}
