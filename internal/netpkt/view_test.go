package netpkt

import (
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// viewCorpus builds a diverse set of raw frames covering every layer the
// decoder knows: both link types, both IP versions, all L4 protocols,
// every app protocol, TCP options, fragments and non-IP frames.
func viewCorpus(t testing.TB) []struct {
	name string
	link LinkType
	raw  []byte
} {
	ser := func(p *Packet) []byte {
		raw, err := p.Serialize()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	v6src := netip.MustParseAddr("fd00::1")
	v6dst := netip.MustParseAddr("fd00::2")
	return []struct {
		name string
		link LinkType
		raw  []byte
	}{
		{"tcp-http", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2), ID: 7},
			TCP:     &TCP{SrcPort: 41000, DstPort: 80, Seq: 5, Ack: 6, Flags: FlagACK | FlagPSH, Window: 1024},
			Payload: EncodeHTTPRequest("GET", "/fw", "iot.example", 0),
		})},
		{"tcp-mqtt", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 32, Protocol: ProtoTCP, Src: ip4(10, 0, 0, 3), Dst: ip4(10, 0, 0, 4)},
			TCP:     &TCP{SrcPort: 52000, DstPort: 1883, Flags: FlagACK},
			Payload: EncodeMQTTPublish("home/sensor0/temp", 12),
		})},
		{"tcp-options", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2)},
			TCP:     &TCP{SrcPort: 1000, DstPort: 2000, Flags: FlagSYN, MSS: 1460, WScale: 7, SACKOK: true},
			Payload: []byte("x"),
		})},
		{"udp-dns", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 64, Protocol: ProtoUDP, Src: ip4(192, 168, 1, 10), Dst: ip4(8, 8, 8, 8)},
			UDP:     &UDP{SrcPort: 5353, DstPort: 53},
			Payload: EncodeDNSQuery(7, "camera.iot.example.com", false),
		})},
		{"udp-plain", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 64, Protocol: ProtoUDP, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
			UDP:     &UDP{SrcPort: 9999, DstPort: 8888},
			Payload: []byte("telemetry"),
		})},
		{"icmp", LinkEthernet, ser(&Packet{
			Eth:     testEth(),
			IPv4:    &IPv4{TTL: 64, Protocol: ProtoICMP, Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 99)},
			ICMP:    &ICMP{Type: 8, Code: 0, ID: 3, Seq: 4},
			Payload: []byte("ping"),
		})},
		{"arp", LinkEthernet, ser(&Packet{
			Eth: &Ethernet{Dst: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, Src: MAC{2, 0, 0, 0, 0, 9}},
			ARP: &ARP{Op: 1, SenderHW: MAC{2, 0, 0, 0, 0, 9}, SenderIP: ip4(10, 0, 0, 9), TargetIP: ip4(10, 0, 0, 1)},
		})},
		{"ipv6-udp", LinkEthernet, ser(&Packet{
			Eth:     &Ethernet{EtherType: EtherTypeIPv6},
			IPv6:    &IPv6{NextHeader: ProtoUDP, HopLimit: 64, TrafficClass: 0xA5, FlowLabel: 0x12345, Src: v6src, Dst: v6dst},
			UDP:     &UDP{SrcPort: 546, DstPort: 547},
			Payload: []byte("dhcpv6ish"),
		})},
		{"ipv4-fragment", LinkEthernet, ser(&Packet{
			Eth:  testEth(),
			IPv4: &IPv4{TTL: 64, Protocol: ProtoUDP, FragOff: 100, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
			UDP:  &UDP{SrcPort: 1, DstPort: 2},
		})},
		{"dot11-deauth", LinkDot11, ser(&Packet{
			Dot11: &Dot11{
				Subtype: Dot11Deauth,
				Addr1:   MAC{1, 2, 3, 4, 5, 6}, Addr2: MAC{6, 5, 4, 3, 2, 1}, Addr3: MAC{9, 9, 9, 9, 9, 9},
				Seq: 77, Retry: true,
			},
			Payload: []byte{0x07, 0x00},
		})},
		{"dot11-data", LinkDot11, ser(&Packet{Dot11: &Dot11{Subtype: Dot11Data}})},
	}
}

// allHints covers every decode depth a plan can request.
func allHints() []DecodeHint {
	return []DecodeHint{
		{},
		{Headers: true},
		{Headers: true, Apps: AppDNS},
		{Headers: true, Apps: AppHTTP},
		{Headers: true, Apps: AppMQTT},
		{Headers: true, Apps: AppDNS | AppHTTP | AppMQTT},
	}
}

// TestViewMaterializeMatchesDecode is the fast path's core contract: for
// any frame, at any predecode depth, materializing a view produces the
// exact packet the eager decoder builds — including every truncation of
// every corpus frame.
func TestViewMaterializeMatchesDecode(t *testing.T) {
	ts := time.Unix(1700000000, 123456000).UTC()
	for _, c := range viewCorpus(t) {
		for cut := 0; cut <= len(c.raw); cut++ {
			data := c.raw[:cut]
			want := Decode(data, c.link, ts)
			for _, hint := range allHints() {
				var v PacketView
				v.Reset(data, c.link, ts)
				v.Predecode(hint)
				got := v.Materialize()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s cut=%d hint=%+v:\nview:  %+v\neager: %+v", c.name, cut, hint, got, want)
				}
			}
		}
	}
}

// TestViewLazyAccessors: layers decode on first touch, and only to the
// depth the accessor needs.
func TestViewLazyAccessors(t *testing.T) {
	c := viewCorpus(t)[3] // udp-dns
	var v PacketView
	v.Reset(c.raw, c.link, time.Unix(1, 0))
	if v.HeadersDecoded() {
		t.Fatal("fresh view must not have decoded headers")
	}
	if v.WireLen() != len(c.raw) {
		t.Fatalf("WireLen = %d, want %d", v.WireLen(), len(c.raw))
	}
	u, ok := v.UDP()
	if !ok || u.DstPort != 53 {
		t.Fatalf("UDP accessor: %+v ok=%v", u, ok)
	}
	if !v.HeadersDecoded() {
		t.Fatal("UDP accessor must decode headers")
	}
	if v.AppDecoded() {
		t.Fatal("UDP accessor must not decode app layers")
	}
	d, ok := v.DNS()
	if !ok || d.ID != 7 || len(d.Names) != 1 || d.Names[0] != "camera.iot.example.com" {
		t.Fatalf("DNS accessor: %+v ok=%v", d, ok)
	}
	if !v.AppDecoded() {
		t.Fatal("DNS accessor must decode the app layer")
	}
}

// TestViewResetClearsState: a pooled view reused across packets must not
// leak the previous packet's layers.
func TestViewResetClearsState(t *testing.T) {
	corp := viewCorpus(t)
	var v PacketView
	v.Reset(corp[0].raw, corp[0].link, time.Unix(1, 0)) // tcp-http
	if _, ok := v.HTTP(); !ok {
		t.Fatal("http expected on first packet")
	}
	v.Reset(corp[6].raw, corp[6].link, time.Unix(2, 0)) // arp
	if _, ok := v.TCP(); ok {
		t.Fatal("stale TCP layer after Reset")
	}
	if _, ok := v.HTTP(); ok {
		t.Fatal("stale HTTP layer after Reset")
	}
	a, ok := v.ARP()
	if !ok || a.Op != 1 {
		t.Fatalf("ARP after Reset: %+v ok=%v", a, ok)
	}
	if got := v.Materialize(); !reflect.DeepEqual(got, Decode(corp[6].raw, corp[6].link, time.Unix(2, 0))) {
		t.Fatal("materialize after reuse differs from eager decode")
	}
}

// TestViewSummaryMatchesPacket: the flow assembler consumes summaries, so
// a view summary must match the summary of the eagerly decoded packet.
func TestViewSummaryMatchesPacket(t *testing.T) {
	ts := time.Unix(1700000000, 0)
	for _, c := range viewCorpus(t) {
		var v PacketView
		v.Reset(c.raw, c.link, ts)
		got := v.Summary()
		want := Decode(c.raw, c.link, ts).Summary()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: summary mismatch:\nview:  %+v\neager: %+v", c.name, got, want)
		}
	}
}

// TestViewTupleAndEndpoints: the convenience accessors agree with the
// materialized packet.
func TestViewTupleAndEndpoints(t *testing.T) {
	ts := time.Unix(5, 0)
	for _, c := range viewCorpus(t) {
		var v PacketView
		v.Reset(c.raw, c.link, ts)
		p := Decode(c.raw, c.link, ts)
		wantT, wantOK := p.Tuple()
		gotT, gotOK := v.Tuple()
		if gotOK != wantOK || gotT != wantT {
			t.Fatalf("%s: tuple %+v/%v, want %+v/%v", c.name, gotT, gotOK, wantT, wantOK)
		}
		if v.Protocol() != p.Protocol() {
			t.Fatalf("%s: proto %d, want %d", c.name, v.Protocol(), p.Protocol())
		}
		if string(v.Payload()) != string(p.Payload) {
			t.Fatalf("%s: payload %q, want %q", c.name, v.Payload(), p.Payload)
		}
	}
}
