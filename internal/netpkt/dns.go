package netpkt

import "encoding/binary"

// DNS is a minimally-decoded DNS message: header plus question names,
// which is what the IoT feature pipelines (e.g. the Ensemble algorithm's
// DNS features) consume.
type DNS struct {
	ID      uint16
	QR      bool // response?
	Opcode  uint8
	RCode   uint8
	QDCount uint16
	ANCount uint16
	Names   []string
}

// decodeDNS parses a DNS message; ok is false on malformed input.
func decodeDNS(b []byte) (*DNS, bool) {
	if len(b) < 12 {
		return nil, false
	}
	d := &DNS{
		ID:      binary.BigEndian.Uint16(b[0:2]),
		QR:      b[2]&0x80 != 0,
		Opcode:  (b[2] >> 3) & 0x0f,
		RCode:   b[3] & 0x0f,
		QDCount: binary.BigEndian.Uint16(b[4:6]),
		ANCount: binary.BigEndian.Uint16(b[6:8]),
	}
	off := 12
	for q := 0; q < int(d.QDCount) && q < 16; q++ {
		name, next, ok := decodeName(b, off)
		if !ok {
			return d, true // header still useful
		}
		d.Names = append(d.Names, name)
		off = next + 4 // skip qtype+qclass
		if off > len(b) {
			break
		}
	}
	return d, true
}

// decodeName reads an uncompressed DNS name starting at off.
func decodeName(b []byte, off int) (name string, next int, ok bool) {
	var out []byte
	for {
		if off >= len(b) {
			return "", 0, false
		}
		l := int(b[off])
		if l == 0 {
			off++
			break
		}
		if l >= 0xc0 { // compression pointers not produced by our encoder
			return "", 0, false
		}
		off++
		if off+l > len(b) {
			return "", 0, false
		}
		if len(out) > 0 {
			out = append(out, '.')
		}
		out = append(out, b[off:off+l]...)
		off += l
	}
	return string(out), off, true
}

// EncodeDNSQuery builds a simple one-question DNS query payload (A record,
// IN class) for the traffic simulator.
func EncodeDNSQuery(id uint16, name string, response bool) []byte {
	b := make([]byte, 12, 12+len(name)+6)
	binary.BigEndian.PutUint16(b[0:2], id)
	if response {
		b[2] = 0x80
		binary.BigEndian.PutUint16(b[6:8], 1) // one answer
	}
	binary.BigEndian.PutUint16(b[4:6], 1) // one question
	b = appendName(b, name)
	b = append(b, 0, 1, 0, 1) // QTYPE=A, QCLASS=IN
	return b
}

func appendName(b []byte, name string) []byte {
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			label := name[start:i]
			if len(label) > 0 && len(label) < 64 {
				b = append(b, byte(len(label)))
				b = append(b, label...)
			}
			start = i + 1
		}
	}
	return append(b, 0)
}
