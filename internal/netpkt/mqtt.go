package netpkt

// MQTTType is the MQTT control-packet type from the fixed header.
type MQTTType uint8

// MQTT control packet types (MQTT 3.1.1 §2.2.1).
const (
	MQTTConnect    MQTTType = 1
	MQTTConnAck    MQTTType = 2
	MQTTPublish    MQTTType = 3
	MQTTPubAck     MQTTType = 4
	MQTTSubscribe  MQTTType = 8
	MQTTSubAck     MQTTType = 9
	MQTTPingReq    MQTTType = 12
	MQTTPingResp   MQTTType = 13
	MQTTDisconnect MQTTType = 14
)

// String names the control type.
func (t MQTTType) String() string {
	switch t {
	case MQTTConnect:
		return "CONNECT"
	case MQTTConnAck:
		return "CONNACK"
	case MQTTPublish:
		return "PUBLISH"
	case MQTTPubAck:
		return "PUBACK"
	case MQTTSubscribe:
		return "SUBSCRIBE"
	case MQTTSubAck:
		return "SUBACK"
	case MQTTPingReq:
		return "PINGREQ"
	case MQTTPingResp:
		return "PINGRESP"
	case MQTTDisconnect:
		return "DISCONNECT"
	default:
		return "UNKNOWN"
	}
}

// MQTT is a minimally-decoded MQTT fixed header plus the topic of
// PUBLISH packets — what IoT telemetry feature pipelines key on.
type MQTT struct {
	Type      MQTTType
	QoS       uint8
	Retain    bool
	Remaining int
	Topic     string // PUBLISH only
}

// decodeMQTT parses an MQTT control packet from a TCP payload; ok is
// false when the bytes do not look like MQTT.
func decodeMQTT(b []byte) (*MQTT, bool) {
	if len(b) < 2 {
		return nil, false
	}
	m := &MQTT{
		Type:   MQTTType(b[0] >> 4),
		QoS:    (b[0] >> 1) & 0x03,
		Retain: b[0]&0x01 != 0,
	}
	if m.Type < MQTTConnect || m.Type > MQTTDisconnect || m.QoS == 3 {
		return nil, false
	}
	// Variable-length remaining length (up to 4 bytes).
	rem, mult, i := 0, 1, 1
	for {
		if i >= len(b) || i > 4 {
			return nil, false
		}
		digit := int(b[i])
		rem += (digit & 0x7f) * mult
		i++
		if digit&0x80 == 0 {
			break
		}
		mult *= 128
	}
	m.Remaining = rem
	if m.Type == MQTTPublish && i+2 <= len(b) {
		tl := int(b[i])<<8 | int(b[i+1])
		if i+2+tl <= len(b) && tl > 0 && tl < 256 {
			m.Topic = string(b[i+2 : i+2+tl])
		}
	}
	return m, true
}

// EncodeMQTTPublish builds a PUBLISH packet payload for the simulator.
func EncodeMQTTPublish(topic string, payloadLen int) []byte {
	varLen := 2 + len(topic) + payloadLen
	b := []byte{byte(MQTTPublish) << 4}
	// Encode remaining length.
	rem := varLen
	for {
		digit := byte(rem % 128)
		rem /= 128
		if rem > 0 {
			digit |= 0x80
		}
		b = append(b, digit)
		if rem == 0 {
			break
		}
	}
	b = append(b, byte(len(topic)>>8), byte(len(topic)))
	b = append(b, topic...)
	for i := 0; i < payloadLen; i++ {
		b = append(b, byte('0'+i%10))
	}
	return b
}

// EncodeMQTTConnect builds a minimal CONNECT packet payload.
func EncodeMQTTConnect(clientID string) []byte {
	// Variable header: protocol name "MQTT", level 4, flags, keepalive.
	var vh []byte
	vh = append(vh, 0, 4, 'M', 'Q', 'T', 'T', 4, 2, 0, 60)
	vh = append(vh, byte(len(clientID)>>8), byte(len(clientID)))
	vh = append(vh, clientID...)
	b := []byte{byte(MQTTConnect) << 4, byte(len(vh))}
	return append(b, vh...)
}
