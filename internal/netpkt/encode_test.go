package netpkt

import (
	"net/netip"
	"testing"
	"time"
)

func TestTCPOptionsRoundTrip(t *testing.T) {
	p := &Packet{
		Eth: testEth(),
		IPv4: &IPv4{
			TTL: 64, Protocol: ProtoTCP,
			Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2),
		},
		TCP: &TCP{
			SrcPort: 1000, DstPort: 2000, Flags: FlagSYN,
			MSS: 1460, WScale: 7, SACKOK: true,
		},
		Payload: []byte("x"),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.TCP == nil {
		t.Fatal("tcp missing")
	}
	if q.TCP.MSS != 1460 || q.TCP.WScale != 7 || !q.TCP.SACKOK {
		t.Fatalf("options mismatch: %+v", q.TCP)
	}
	if q.TCP.DataOff <= 5 {
		t.Errorf("DataOff = %d, want > 5 with options", q.TCP.DataOff)
	}
	if string(q.Payload) != "x" {
		t.Errorf("payload = %q after options", q.Payload)
	}
	if !q.VerifyIPv4Checksum() {
		t.Error("ipv4 checksum broke with options")
	}
}

func TestTCPWithoutOptionsStaysMinimal(t *testing.T) {
	p := &Packet{
		Eth:  testEth(),
		IPv4: &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
		TCP:  &TCP{SrcPort: 1, DstPort: 2},
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.TCP.DataOff != 5 {
		t.Errorf("DataOff = %d, want 5", q.TCP.DataOff)
	}
}

func TestTCPOptionsMalformedStops(t *testing.T) {
	var tc TCP
	tc.parseOptions([]byte{2, 99}) // length overruns
	if tc.MSS != 0 {
		t.Error("overrunning option must be ignored")
	}
	tc.parseOptions([]byte{1, 1, 0, 2, 4, 0x05, 0xb4}) // NOPs then EOL stops before MSS
	if tc.MSS != 0 {
		t.Error("options after EOL must be ignored")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	src := netip.MustParseAddr("fd00::1")
	dst := netip.MustParseAddr("fd00::2")
	p := &Packet{
		Eth: &Ethernet{EtherType: EtherTypeIPv6},
		IPv6: &IPv6{
			NextHeader: ProtoUDP, HopLimit: 64,
			TrafficClass: 0xA5, FlowLabel: 0x12345,
			Src: src, Dst: dst,
		},
		UDP:     &UDP{SrcPort: 546, DstPort: 547},
		Payload: []byte("dhcpv6ish"),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.IPv6 == nil {
		t.Fatal("ipv6 missing")
	}
	if q.IPv6.Src != src || q.IPv6.Dst != dst {
		t.Fatalf("addresses mismatch: %v -> %v", q.IPv6.Src, q.IPv6.Dst)
	}
	if q.IPv6.TrafficClass != 0xA5 || q.IPv6.FlowLabel != 0x12345 || q.IPv6.HopLimit != 64 {
		t.Fatalf("header mismatch: %+v", q.IPv6)
	}
	if q.UDP == nil || q.UDP.DstPort != 547 {
		t.Fatalf("udp mismatch: %+v", q.UDP)
	}
	if string(q.Payload) != "dhcpv6ish" {
		t.Errorf("payload = %q", q.Payload)
	}
	ft, ok := q.Tuple()
	if !ok || ft.Proto != ProtoUDP || ft.SrcIP != src {
		t.Errorf("tuple = %+v ok=%v", ft, ok)
	}
}
