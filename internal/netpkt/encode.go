package netpkt

import (
	"encoding/binary"
	"fmt"
)

// Serialize renders the packet's decoded layers to wire bytes, fixing up
// length and checksum fields, and stores the result in p.Data. Supported
// stacks: Ethernet{ARP | IPv4{TCP|UDP|ICMP}} and bare Dot11.
func (p *Packet) Serialize() ([]byte, error) {
	switch {
	case p.Dot11 != nil:
		p.Link = LinkDot11
		p.Data = p.Dot11.encode(p.Payload)
		return p.Data, nil
	case p.Eth == nil:
		return nil, fmt.Errorf("netpkt: serialize: no link layer")
	}
	p.Link = LinkEthernet
	buf := make([]byte, 0, 14+40+len(p.Payload))
	eth := make([]byte, 14)
	copy(eth[0:6], p.Eth.Dst[:])
	copy(eth[6:12], p.Eth.Src[:])

	switch {
	case p.ARP != nil:
		binary.BigEndian.PutUint16(eth[12:14], EtherTypeARP)
		buf = append(buf, eth...)
		buf = append(buf, p.ARP.encode()...)
	case p.IPv4 != nil:
		binary.BigEndian.PutUint16(eth[12:14], EtherTypeIPv4)
		l4, err := p.encodeL4()
		if err != nil {
			return nil, err
		}
		ip := p.IPv4.encode(len(l4))
		buf = append(buf, eth...)
		buf = append(buf, ip...)
		buf = append(buf, l4...)
	case p.IPv6 != nil:
		binary.BigEndian.PutUint16(eth[12:14], EtherTypeIPv6)
		l4, err := p.encodeL4()
		if err != nil {
			return nil, err
		}
		ip := p.IPv6.encode(len(l4))
		buf = append(buf, eth...)
		buf = append(buf, ip...)
		buf = append(buf, l4...)
	default:
		return nil, fmt.Errorf("netpkt: serialize: no network layer")
	}
	p.Data = buf
	return buf, nil
}

func (p *Packet) encodeL4() ([]byte, error) {
	switch {
	case p.TCP != nil:
		return p.TCP.encode(p.IPv4, p.Payload), nil
	case p.UDP != nil:
		return p.UDP.encode(p.IPv4, p.Payload), nil
	case p.ICMP != nil:
		return p.ICMP.encode(p.Payload), nil
	}
	// Raw IP payload.
	return p.Payload, nil
}

func (a *ARP) encode() []byte {
	b := make([]byte, 28)
	binary.BigEndian.PutUint16(b[0:2], 1)      // Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // IPv4
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderHW[:])
	sip := a.SenderIP.As4()
	copy(b[14:18], sip[:])
	copy(b[18:24], a.TargetHW[:])
	tip := a.TargetIP.As4()
	copy(b[24:28], tip[:])
	return b
}

func (ip *IPv4) encode(payloadLen int) []byte {
	b := make([]byte, 20)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	total := 20 + payloadLen
	ip.Length = uint16(total)
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	ip.Checksum = internetChecksum(b, 0)
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return b
}

// buildOptions renders the supported TCP options, NOP-padded to a
// 32-bit boundary.
func (t *TCP) buildOptions() []byte {
	var o []byte
	if t.MSS != 0 {
		o = append(o, 2, 4, byte(t.MSS>>8), byte(t.MSS))
	}
	if t.WScale != 0 {
		o = append(o, 3, 3, t.WScale)
	}
	if t.SACKOK {
		o = append(o, 4, 2)
	}
	for len(o)%4 != 0 {
		o = append(o, 1) // NOP
	}
	return o
}

// encode renders an IPv6 fixed header.
func (ip *IPv6) encode(payloadLen int) []byte {
	b := make([]byte, 40)
	b[0] = 0x60 | ip.TrafficClass>>4
	b[1] = ip.TrafficClass<<4 | byte(ip.FlowLabel>>16)
	binary.BigEndian.PutUint16(b[2:4], uint16(ip.FlowLabel))
	ip.Length = uint16(payloadLen)
	binary.BigEndian.PutUint16(b[4:6], ip.Length)
	b[6] = ip.NextHeader
	b[7] = ip.HopLimit
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return b
}

func (t *TCP) encode(ip *IPv4, payload []byte) []byte {
	opts := t.buildOptions()
	t.DataOff = uint8((20 + len(opts)) / 4)
	hdrLen := int(t.DataOff) * 4
	b := make([]byte, hdrLen+len(payload))
	copy(b[20:hdrLen], opts)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = t.DataOff << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[hdrLen:], payload)
	if ip != nil {
		t.Checksum = internetChecksum(b, pseudoHeaderSum(ip.Src, ip.Dst, ProtoTCP, len(b)))
		binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	}
	return b
}

func (u *UDP) encode(ip *IPv4, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	u.Length = uint16(len(b))
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	copy(b[8:], payload)
	if ip != nil {
		u.Checksum = internetChecksum(b, pseudoHeaderSum(ip.Src, ip.Dst, ProtoUDP, len(b)))
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: zero means "no checksum"
		}
		binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	}
	return b
}

func (ic *ICMP) encode(payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	b[0] = ic.Type
	b[1] = ic.Code
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	copy(b[8:], payload)
	ic.Checksum = internetChecksum(b, 0)
	binary.BigEndian.PutUint16(b[2:4], ic.Checksum)
	return b
}
