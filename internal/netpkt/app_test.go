package netpkt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHTTPRequestDecode(t *testing.T) {
	b := EncodeHTTPRequest("GET", "/fw/check?v=2", "fw.example.com", 0)
	h, ok := decodeHTTP(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if !h.IsRequest || h.Method != "GET" || h.Path != "/fw/check?v=2" {
		t.Fatalf("request mismatch: %+v", h)
	}
	if h.Host != "fw.example.com" {
		t.Errorf("host = %q", h.Host)
	}
	if h.UserAgent != "iot-device/1.0" {
		t.Errorf("user-agent = %q", h.UserAgent)
	}
	if h.ContentLength != -1 {
		t.Errorf("content-length = %d, want -1 (absent)", h.ContentLength)
	}
}

func TestHTTPPostWithBody(t *testing.T) {
	b := EncodeHTTPRequest("POST", "/data", "h", 42)
	h, ok := decodeHTTP(b)
	if !ok || h.Method != "POST" || h.ContentLength != 42 {
		t.Fatalf("post mismatch: %+v ok=%v", h, ok)
	}
}

func TestHTTPResponseDecode(t *testing.T) {
	b := EncodeHTTPResponse(404, 10)
	h, ok := decodeHTTP(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if h.IsRequest || h.Status != 404 || h.ContentLength != 10 {
		t.Fatalf("response mismatch: %+v", h)
	}
}

func TestHTTPRejectsNonHTTP(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("hi"),
		[]byte("NOTAMETHOD / HTTP/1.1\r\n\r\n"),
		[]byte("GET /nohttp\r\n"),
		[]byte("HTTP/1.1 9999 Bad\r\n"),
		{0x30, 0x0c, 0x00, 0x01, 0xff},
	}
	for i, c := range cases {
		if h, ok := decodeHTTP(c); ok {
			t.Errorf("case %d decoded as HTTP: %+v", i, h)
		}
	}
}

func TestHTTPDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		decodeHTTP(b)
		decodeMQTT(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMQTTPublishRoundTrip(t *testing.T) {
	b := EncodeMQTTPublish("home/sensor0/temp", 12)
	m, ok := decodeMQTT(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if m.Type != MQTTPublish || m.Topic != "home/sensor0/temp" {
		t.Fatalf("publish mismatch: %+v", m)
	}
	if m.Remaining != 2+17+12 {
		t.Errorf("remaining = %d, want %d", m.Remaining, 2+17+12)
	}
	if m.Type.String() != "PUBLISH" {
		t.Errorf("type name = %q", m.Type)
	}
}

func TestMQTTConnectDecode(t *testing.T) {
	b := EncodeMQTTConnect("plug-3")
	m, ok := decodeMQTT(b)
	if !ok || m.Type != MQTTConnect {
		t.Fatalf("connect mismatch: %+v ok=%v", m, ok)
	}
}

func TestMQTTRejectsGarbage(t *testing.T) {
	if _, ok := decodeMQTT([]byte{0x00, 0x00}); ok { // type 0 invalid
		t.Error("type 0 should be rejected")
	}
	if _, ok := decodeMQTT([]byte{0xf0}); ok { // too short
		t.Error("1-byte input should be rejected")
	}
	if _, ok := decodeMQTT([]byte{0x36, 0x02}); ok { // QoS 3 invalid
		t.Error("QoS 3 should be rejected")
	}
}

func TestMQTTLongRemainingLength(t *testing.T) {
	b := EncodeMQTTPublish("t", 300) // remaining > 127 -> two length bytes
	m, ok := decodeMQTT(b)
	if !ok || m.Remaining != 2+1+300 {
		t.Fatalf("long remaining mismatch: %+v ok=%v", m, ok)
	}
}

func TestAppLayerDecodedThroughPacket(t *testing.T) {
	p := &Packet{
		Eth:     testEth(),
		IPv4:    &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2)},
		TCP:     &TCP{SrcPort: 50000, DstPort: 80, Flags: FlagACK | FlagPSH},
		Payload: EncodeHTTPRequest("GET", "/", "x", 0),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.HTTP == nil || q.HTTP.Method != "GET" {
		t.Fatalf("HTTP layer not decoded through packet: %+v", q.HTTP)
	}

	p2 := &Packet{
		Eth:     testEth(),
		IPv4:    &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2)},
		TCP:     &TCP{SrcPort: 50001, DstPort: 1883, Flags: FlagACK | FlagPSH},
		Payload: EncodeMQTTPublish("a/b", 4),
	}
	raw2, err := p2.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q2 := Decode(raw2, LinkEthernet, time.Time{})
	if q2.MQTT == nil || q2.MQTT.Topic != "a/b" {
		t.Fatalf("MQTT layer not decoded through packet: %+v", q2.MQTT)
	}
}

func TestNonAppPortsNotDecoded(t *testing.T) {
	p := &Packet{
		Eth:     testEth(),
		IPv4:    &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
		TCP:     &TCP{SrcPort: 50000, DstPort: 9999, Flags: FlagACK | FlagPSH},
		Payload: EncodeHTTPRequest("GET", "/", "x", 0),
	}
	raw, _ := p.Serialize()
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.HTTP != nil {
		t.Error("HTTP must only be decoded on HTTP ports")
	}
}
