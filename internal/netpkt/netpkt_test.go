package netpkt

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func ip4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

func testEth() *Ethernet {
	return &Ethernet{
		Dst:       MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		EtherType: EtherTypeIPv4,
	}
}

func TestTCPRoundTrip(t *testing.T) {
	p := &Packet{
		Ts:  time.Unix(100, 0),
		Eth: testEth(),
		IPv4: &IPv4{
			TTL: 64, Protocol: ProtoTCP,
			Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 2),
			ID: 42,
		},
		TCP: &TCP{
			SrcPort: 12345, DstPort: 80,
			Seq: 1000, Ack: 2000,
			Flags: FlagSYN | FlagACK, Window: 65535,
		},
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, p.Ts)
	if q.TruncatedLayer != "" {
		t.Fatalf("decode truncated at %q", q.TruncatedLayer)
	}
	if q.Eth == nil || q.Eth.Src != p.Eth.Src || q.Eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet mismatch: %+v", q.Eth)
	}
	if q.IPv4 == nil || q.IPv4.Src != p.IPv4.Src || q.IPv4.Dst != p.IPv4.Dst || q.IPv4.TTL != 64 || q.IPv4.ID != 42 {
		t.Fatalf("ipv4 mismatch: %+v", q.IPv4)
	}
	if q.TCP == nil || q.TCP.SrcPort != 12345 || q.TCP.DstPort != 80 ||
		q.TCP.Seq != 1000 || q.TCP.Ack != 2000 || !q.TCP.HasFlag(FlagSYN|FlagACK) {
		t.Fatalf("tcp mismatch: %+v", q.TCP)
	}
	if string(q.Payload) != "GET / HTTP/1.1\r\n" {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
	if !q.VerifyIPv4Checksum() {
		t.Error("ipv4 checksum did not verify")
	}
}

func TestUDPDNSRoundTrip(t *testing.T) {
	p := &Packet{
		Eth: testEth(),
		IPv4: &IPv4{
			TTL: 64, Protocol: ProtoUDP,
			Src: ip4(192, 168, 1, 10), Dst: ip4(8, 8, 8, 8),
		},
		UDP:     &UDP{SrcPort: 5353, DstPort: 53},
		Payload: EncodeDNSQuery(7, "camera.iot.example.com", false),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.UDP == nil || q.UDP.DstPort != 53 {
		t.Fatalf("udp mismatch: %+v", q.UDP)
	}
	if q.DNS == nil {
		t.Fatal("dns layer not decoded")
	}
	if q.DNS.ID != 7 || q.DNS.QR || q.DNS.QDCount != 1 {
		t.Fatalf("dns header mismatch: %+v", q.DNS)
	}
	if len(q.DNS.Names) != 1 || q.DNS.Names[0] != "camera.iot.example.com" {
		t.Fatalf("dns names mismatch: %v", q.DNS.Names)
	}
}

func TestDNSResponseFlag(t *testing.T) {
	b := EncodeDNSQuery(9, "a.b", true)
	d, ok := decodeDNS(b)
	if !ok || !d.QR || d.ANCount != 1 {
		t.Fatalf("response decode mismatch: %+v ok=%v", d, ok)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	p := &Packet{
		Eth: testEth(),
		IPv4: &IPv4{
			TTL: 64, Protocol: ProtoICMP,
			Src: ip4(10, 0, 0, 1), Dst: ip4(10, 0, 0, 99),
		},
		ICMP:    &ICMP{Type: 8, Code: 0, ID: 3, Seq: 4},
		Payload: []byte("ping"),
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.ICMP == nil || q.ICMP.Type != 8 || q.ICMP.ID != 3 || q.ICMP.Seq != 4 {
		t.Fatalf("icmp mismatch: %+v", q.ICMP)
	}
	if string(q.Payload) != "ping" {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := &Packet{
		Eth: &Ethernet{Dst: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, Src: MAC{2, 0, 0, 0, 0, 9}},
		ARP: &ARP{
			Op:       1,
			SenderHW: MAC{2, 0, 0, 0, 0, 9},
			SenderIP: ip4(10, 0, 0, 9),
			TargetIP: ip4(10, 0, 0, 1),
		},
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.ARP == nil || q.ARP.Op != 1 || q.ARP.SenderIP != ip4(10, 0, 0, 9) || q.ARP.TargetIP != ip4(10, 0, 0, 1) {
		t.Fatalf("arp mismatch: %+v", q.ARP)
	}
	if _, ok := q.Tuple(); ok {
		t.Error("ARP packet should not produce a five-tuple")
	}
}

func TestDot11RoundTrip(t *testing.T) {
	p := &Packet{
		Dot11: &Dot11{
			Subtype: Dot11Deauth,
			Addr1:   MAC{1, 2, 3, 4, 5, 6},
			Addr2:   MAC{6, 5, 4, 3, 2, 1},
			Addr3:   MAC{9, 9, 9, 9, 9, 9},
			Seq:     77,
			Retry:   true,
		},
		Payload: []byte{0x07, 0x00}, // reason code
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkDot11, time.Time{})
	d := q.Dot11
	if d == nil || d.Subtype != Dot11Deauth || d.Addr1 != p.Dot11.Addr1 || d.Seq != 77 || !d.Retry {
		t.Fatalf("dot11 mismatch: %+v", d)
	}
	if !d.Subtype.IsManagement() {
		t.Error("deauth should be management")
	}
	if q.IPv4 != nil {
		t.Error("802.11 mgmt frame must not expose an IP layer")
	}
}

func TestDot11DataSubtype(t *testing.T) {
	p := &Packet{Dot11: &Dot11{Subtype: Dot11Data}}
	raw, _ := p.Serialize()
	q := Decode(raw, LinkDot11, time.Time{})
	if q.Dot11.Subtype != Dot11Data {
		t.Fatalf("subtype = %v, want data", q.Dot11.Subtype)
	}
	if q.Dot11.Subtype.IsManagement() {
		t.Error("data frame should not be management")
	}
}

func TestFiveTupleCanonicalSymmetry(t *testing.T) {
	f := FiveTuple{
		SrcIP: ip4(10, 0, 0, 2), DstIP: ip4(10, 0, 0, 1),
		SrcPort: 443, DstPort: 51000, Proto: ProtoTCP,
	}
	if f.Canonical() != f.Reverse().Canonical() {
		t.Error("canonical form must be direction-independent")
	}
	if f.Reverse().Reverse() != f {
		t.Error("double reverse must be identity")
	}
}

func TestTuplePortsAndProto(t *testing.T) {
	p := &Packet{
		Eth:  testEth(),
		IPv4: &IPv4{TTL: 64, Protocol: ProtoTCP, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
		TCP:  &TCP{SrcPort: 1111, DstPort: 80},
	}
	if _, err := p.Serialize(); err != nil {
		t.Fatal(err)
	}
	f, ok := p.Tuple()
	if !ok {
		t.Fatal("expected tuple")
	}
	if f.SrcPort != 1111 || f.DstPort != 80 || f.Proto != ProtoTCP {
		t.Fatalf("tuple mismatch: %+v", f)
	}
}

func TestDecodeTruncatedInputs(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"short-ethernet", []byte{1, 2, 3}, "ethernet"},
		{"short-dot11", []byte{1, 2, 3}, "dot11"},
	}
	for _, c := range cases {
		link := LinkEthernet
		if c.name == "short-dot11" {
			link = LinkDot11
		}
		q := Decode(c.data, link, time.Time{})
		if q.TruncatedLayer != c.want {
			t.Errorf("%s: TruncatedLayer = %q, want %q", c.name, q.TruncatedLayer, c.want)
		}
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(data []byte, dot11 bool) bool {
		link := LinkEthernet
		if dot11 {
			link = LinkDot11
		}
		p := Decode(data, link, time.Time{})
		_ = p.WireLen()
		_, _ = p.Tuple()
		return true // reaching here without a panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2 -> checksum 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(data, 0); got != 0x220d {
		t.Errorf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got := internetChecksum([]byte{0xff}, 0); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#x", got)
	}
}

func TestWireLenFallback(t *testing.T) {
	p := &Packet{
		Eth:  testEth(),
		IPv4: &IPv4{Length: 40, Protocol: ProtoTCP, Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2)},
	}
	if got := p.WireLen(); got != 54 {
		t.Errorf("WireLen = %d, want 54 (14 eth + 40 ip-total)", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
}

func TestIPv4FragmentHasNoL4(t *testing.T) {
	p := &Packet{
		Eth: testEth(),
		IPv4: &IPv4{
			TTL: 64, Protocol: ProtoUDP, FragOff: 100,
			Src: ip4(1, 1, 1, 1), Dst: ip4(2, 2, 2, 2),
		},
		UDP: &UDP{SrcPort: 1, DstPort: 2},
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q := Decode(raw, LinkEthernet, time.Time{})
	if q.UDP != nil {
		t.Error("non-first fragment must not decode an L4 header")
	}
}
