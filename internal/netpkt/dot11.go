package netpkt

import "encoding/binary"

// Dot11 frame type/subtype combinations the AWID3 stand-in uses.
type Dot11Subtype uint8

// Management and data subtypes (type<<4 | subtype packed into one value).
const (
	Dot11Beacon       Dot11Subtype = 0x08 // mgmt/beacon
	Dot11Deauth       Dot11Subtype = 0x0c // mgmt/deauthentication
	Dot11Disassoc     Dot11Subtype = 0x0a // mgmt/disassociation
	Dot11Auth         Dot11Subtype = 0x0b // mgmt/authentication
	Dot11AssocReq     Dot11Subtype = 0x00 // mgmt/association request
	Dot11ProbeRequest Dot11Subtype = 0x04 // mgmt/probe request
	Dot11Data         Dot11Subtype = 0x20 // data (marker value)
)

// IsManagement reports whether the subtype is a management frame.
func (s Dot11Subtype) IsManagement() bool { return s != Dot11Data }

// Dot11 is an IEEE 802.11 frame header (3-address format). 802.11
// management frames carry no IP layer, which is exactly why most IP-based
// algorithms cannot run on the AWID3 dataset (paper Obs. 4).
type Dot11 struct {
	Subtype  Dot11Subtype
	Duration uint16
	Addr1    MAC // receiver
	Addr2    MAC // transmitter
	Addr3    MAC // BSSID
	Seq      uint16
	// Retry mirrors the frame-control retry bit.
	Retry bool
}

// encode renders a 24-byte 802.11 header followed by the payload.
func (d *Dot11) encode(payload []byte) []byte {
	b := make([]byte, 24+len(payload))
	var fc uint16
	if d.Subtype == Dot11Data {
		fc = 0x0008 // type=data subtype=0
	} else {
		fc = uint16(d.Subtype&0x0f) << 4 // type=mgmt
	}
	if d.Retry {
		fc |= 1 << 11
	}
	binary.LittleEndian.PutUint16(b[0:2], fc)
	binary.LittleEndian.PutUint16(b[2:4], d.Duration)
	copy(b[4:10], d.Addr1[:])
	copy(b[10:16], d.Addr2[:])
	copy(b[16:22], d.Addr3[:])
	binary.LittleEndian.PutUint16(b[22:24], d.Seq<<4)
	copy(b[24:], payload)
	return b
}

// decodeDot11 parses an 802.11 header from raw bytes.
func (p *Packet) decodeDot11(b []byte) {
	if len(b) < 24 {
		p.TruncatedLayer = "dot11"
		return
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	ftype := uint8(fc>>2) & 0x03
	fsub := uint8(fc>>4) & 0x0f
	d := &Dot11{
		Duration: binary.LittleEndian.Uint16(b[2:4]),
		Seq:      binary.LittleEndian.Uint16(b[22:24]) >> 4,
		Retry:    fc&(1<<11) != 0,
	}
	if ftype == 2 {
		d.Subtype = Dot11Data
	} else {
		d.Subtype = Dot11Subtype(fsub)
	}
	copy(d.Addr1[:], b[4:10])
	copy(d.Addr2[:], b[10:16])
	copy(d.Addr3[:], b[16:22])
	p.Dot11 = d
	if len(b) > 24 {
		p.Payload = b[24:]
	}
}
