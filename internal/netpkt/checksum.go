package netpkt

import "net/netip"

// internetChecksum computes the RFC 1071 one's-complement sum over data,
// seeded with an initial partial sum (for pseudo-headers).
func internetChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial sum of the IPv4 pseudo header used
// by TCP and UDP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, l4len int) uint32 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(s[0])<<8 | uint32(s[1])
	sum += uint32(s[2])<<8 | uint32(s[3])
	sum += uint32(d[0])<<8 | uint32(d[1])
	sum += uint32(d[2])<<8 | uint32(d[3])
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}
