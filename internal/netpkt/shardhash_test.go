package netpkt

import (
	"hash/fnv"
	"net/netip"
	"testing"
)

func hashTuple(t *testing.T, f FiveTuple) uint64 {
	t.Helper()
	c := f.Canonical()
	h := fnv.New64a()
	src, dst := c.SrcIP.As16(), c.DstIP.As16()
	h.Write(src[:])
	h.Write(dst[:])
	h.Write([]byte{byte(c.SrcPort >> 8), byte(c.SrcPort), byte(c.DstPort >> 8), byte(c.DstPort), c.Proto})
	return h.Sum64()
}

func TestShardHashMatchesFNV(t *testing.T) {
	tuples := []FiveTuple{
		{SrcIP: ip4(10, 0, 0, 1), DstIP: ip4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoTCP},
		{SrcIP: ip4(192, 168, 1, 9), DstIP: ip4(8, 8, 8, 8), SrcPort: 53124, DstPort: 53, Proto: ProtoUDP},
		{SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::2"), SrcPort: 443, DstPort: 50000, Proto: ProtoTCP},
		{SrcIP: ip4(10, 0, 0, 1), DstIP: ip4(10, 0, 0, 1), SrcPort: 0, DstPort: 0, Proto: ProtoICMP},
	}
	for _, f := range tuples {
		if got, want := f.ShardHash(), hashTuple(t, f); got != want {
			t.Errorf("ShardHash(%v) = %#x, want FNV-1a %#x", f, got, want)
		}
	}
}

func TestShardHashDirectionInvariant(t *testing.T) {
	f := FiveTuple{SrcIP: ip4(10, 0, 0, 1), DstIP: ip4(172, 16, 0, 9), SrcPort: 40000, DstPort: 443, Proto: ProtoTCP}
	if f.ShardHash() != f.Reverse().ShardHash() {
		t.Errorf("ShardHash differs across directions: %#x vs %#x", f.ShardHash(), f.Reverse().ShardHash())
	}
}

func TestShardHashDistinguishesTuples(t *testing.T) {
	a := FiveTuple{SrcIP: ip4(10, 0, 0, 1), DstIP: ip4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	b := a
	b.SrcPort = 1235
	if a.ShardHash() == b.ShardHash() {
		t.Errorf("distinct tuples hash equal: %v vs %v", a, b)
	}
}
