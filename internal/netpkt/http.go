package netpkt

import (
	"bytes"
	"strconv"
)

// HTTP is a minimally-decoded HTTP message: the request line or status
// line plus a few headers the IoT feature pipelines look at. IoT IDS
// features built on HTTP (e.g. the Ensemble algorithm's HTTP group, the
// web-attack detectors) consume exactly these fields.
type HTTP struct {
	IsRequest bool
	Method    string // requests
	Path      string // requests
	Status    int    // responses
	Host      string
	UserAgent string
	// ContentLength is -1 when absent.
	ContentLength int
}

var httpMethods = [][]byte{
	[]byte("GET"), []byte("POST"), []byte("PUT"), []byte("DELETE"),
	[]byte("HEAD"), []byte("OPTIONS"), []byte("PATCH"),
}

// decodeHTTP parses the start of a TCP payload as an HTTP message; ok is
// false when it does not look like HTTP.
func decodeHTTP(b []byte) (*HTTP, bool) {
	if len(b) < 5 {
		return nil, false
	}
	lineEnd := bytes.IndexByte(b, '\n')
	if lineEnd < 0 {
		lineEnd = len(b)
	}
	line := bytes.TrimRight(b[:lineEnd], "\r")
	h := &HTTP{ContentLength: -1}
	switch {
	case bytes.HasPrefix(line, []byte("HTTP/")):
		// Status line: HTTP/1.1 200 OK
		parts := bytes.SplitN(line, []byte(" "), 3)
		if len(parts) < 2 {
			return nil, false
		}
		code, err := strconv.Atoi(string(parts[1]))
		if err != nil || code < 100 || code > 599 {
			return nil, false
		}
		h.Status = code
	default:
		// Request line: METHOD /path HTTP/1.1
		parts := bytes.SplitN(line, []byte(" "), 3)
		if len(parts) != 3 || !bytes.HasPrefix(parts[2], []byte("HTTP/")) {
			return nil, false
		}
		okMethod := false
		for _, m := range httpMethods {
			if bytes.Equal(parts[0], m) {
				okMethod = true
				break
			}
		}
		if !okMethod {
			return nil, false
		}
		h.IsRequest = true
		h.Method = string(parts[0])
		h.Path = string(parts[1])
	}
	// Scan a few headers.
	rest := b
	if lineEnd < len(b) {
		rest = b[lineEnd+1:]
	} else {
		rest = nil
	}
	for len(rest) > 0 {
		eol := bytes.IndexByte(rest, '\n')
		var hl []byte
		if eol < 0 {
			hl, rest = rest, nil
		} else {
			hl, rest = rest[:eol], rest[eol+1:]
		}
		hl = bytes.TrimRight(hl, "\r")
		if len(hl) == 0 {
			break // end of headers
		}
		colon := bytes.IndexByte(hl, ':')
		if colon < 0 {
			continue
		}
		key := string(bytes.ToLower(bytes.TrimSpace(hl[:colon])))
		val := string(bytes.TrimSpace(hl[colon+1:]))
		switch key {
		case "host":
			h.Host = val
		case "user-agent":
			h.UserAgent = val
		case "content-length":
			if n, err := strconv.Atoi(val); err == nil {
				h.ContentLength = n
			}
		}
	}
	return h, true
}

// EncodeHTTPRequest builds a simple HTTP/1.1 request payload for the
// traffic simulator.
func EncodeHTTPRequest(method, path, host string, bodyLen int) []byte {
	var buf bytes.Buffer
	buf.WriteString(method)
	buf.WriteByte(' ')
	buf.WriteString(path)
	buf.WriteString(" HTTP/1.1\r\nHost: ")
	buf.WriteString(host)
	buf.WriteString("\r\nUser-Agent: iot-device/1.0\r\n")
	if bodyLen > 0 {
		buf.WriteString("Content-Length: ")
		buf.WriteString(strconv.Itoa(bodyLen))
		buf.WriteString("\r\n")
	}
	buf.WriteString("\r\n")
	for i := 0; i < bodyLen; i++ {
		buf.WriteByte(byte('a' + i%26))
	}
	return buf.Bytes()
}

// EncodeHTTPResponse builds a simple HTTP/1.1 response payload.
func EncodeHTTPResponse(status int, bodyLen int) []byte {
	var buf bytes.Buffer
	buf.WriteString("HTTP/1.1 ")
	buf.WriteString(strconv.Itoa(status))
	buf.WriteString(" X\r\nContent-Length: ")
	buf.WriteString(strconv.Itoa(bodyLen))
	buf.WriteString("\r\n\r\n")
	for i := 0; i < bodyLen; i++ {
		buf.WriteByte(byte('a' + i%26))
	}
	return buf.Bytes()
}
