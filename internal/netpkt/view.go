package netpkt

// view.go is the zero-copy lazy decode path. A PacketView sits directly
// on the raw record bytes (typically a subslice of an mmap'ed capture)
// and decodes layers on first touch: L2–L4 headers in one inline pass
// into value fields (no per-layer pointer allocations), DNS/HTTP/MQTT
// only when an accessor actually asks. Every accessor mirrors the eager
// Decode semantics bit for bit — Materialize() must equal
// Decode(Data, Link, Ts) for any input, and the differential fuzz
// targets in view_fuzz_test.go hold it to that.

import (
	"encoding/binary"
	"net/netip"
	"time"
)

// PacketView state and layer-presence bits (one word for both).
const (
	vHdrs uint16 = 1 << iota // ensureHeaders ran
	vApp                     // ensureApp ran
	vPay                     // payload region present (may be empty)
	vEth
	vARP
	vIP4
	vIP6
	vTCP
	vUDP
	vICMP
	vDot11
)

// AppMask selects application-layer protocols in a DecodeHint.
type AppMask uint8

// Application layers a plan may require.
const (
	AppDNS AppMask = 1 << iota
	AppHTTP
	AppMQTT
)

// DecodeHint tells a view producer how deep consumers will look, so the
// decode work can happen up front on the producing goroutine (overlapping
// with downstream compute) instead of lazily on first access. Headers
// requests the L2–L4 pass; Apps requests app-layer parsing for packets
// whose ports gate onto one of the masked protocols. The hint is an
// optimization only — accessors still decode on demand if it was wrong.
type DecodeHint struct {
	Headers bool
	Apps    AppMask
}

// Any reports whether the hint requests any decoding at all.
func (h DecodeHint) Any() bool { return h.Headers || h.Apps != 0 }

// PacketView is one packet decoded lazily over its raw bytes. The zero
// value is invalid; initialize with Reset. Data is borrowed, not owned:
// a view into an mmap'ed capture is valid only until the mapping is
// released (for chunked sources, until the chunk is recycled or the
// source closed), and a view must not outlive the buffer it was reset
// onto. Views are not safe for concurrent use — lazy decoding mutates
// internal state even through read accessors.
type PacketView struct {
	// Ts is the capture timestamp; Link the capture link type; Data the
	// raw wire bytes (borrowed).
	Ts   time.Time
	Link LinkType
	Data []byte

	flags uint16
	trunc string
	// payOff/payEnd delimit the application payload inside Data when the
	// vPay bit is set.
	payOff, payEnd int32

	eth   Ethernet
	arp   ARP
	ip4   IPv4
	ip6   IPv6
	tcp   TCP
	udp   UDP
	icmp  ICMP
	dot11 Dot11

	dns  *DNS
	http *HTTP
	mqtt *MQTT
}

// Reset re-points the view at a new record, clearing all decoded state.
func (v *PacketView) Reset(data []byte, link LinkType, ts time.Time) {
	*v = PacketView{Ts: ts, Link: link, Data: data}
}

// Predecode performs the decoding a DecodeHint asks for. Producers call
// it on the decode goroutine so consumers find the layers already parsed.
func (v *PacketView) Predecode(h DecodeHint) {
	if !h.Any() {
		return
	}
	v.ensureHeaders()
	if h.Apps != 0 && v.flags&vApp == 0 && h.Apps&v.appGate() != 0 {
		v.ensureApp()
	}
}

// HeadersDecoded reports whether the L2–L4 header pass has run (lazily
// or via Predecode) — the signal behind lumen_decode_lazy_skips_total.
func (v *PacketView) HeadersDecoded() bool { return v.flags&vHdrs != 0 }

// AppDecoded reports whether the app-layer pass has run.
func (v *PacketView) AppDecoded() bool { return v.flags&vApp != 0 }

// WireLen returns the on-wire record length. It never triggers decoding.
func (v *PacketView) WireLen() int { return len(v.Data) }

// TruncatedLayer names the first layer that failed to decode (empty when
// the header pass was clean), mirroring Packet.TruncatedLayer.
func (v *PacketView) TruncatedLayer() string {
	v.ensureHeaders()
	return v.trunc
}

// Eth returns the Ethernet header, decoding on first touch; ok is false
// when the layer is absent. The pointer aliases view-internal state and
// is valid only as long as the view (and must not be mutated).
func (v *PacketView) Eth() (*Ethernet, bool) {
	v.ensureHeaders()
	return &v.eth, v.flags&vEth != 0
}

// ARP returns the ARP layer (see Eth for pointer lifetime).
func (v *PacketView) ARP() (*ARP, bool) {
	v.ensureHeaders()
	return &v.arp, v.flags&vARP != 0
}

// IPv4 returns the IPv4 header (see Eth for pointer lifetime).
func (v *PacketView) IPv4() (*IPv4, bool) {
	v.ensureHeaders()
	return &v.ip4, v.flags&vIP4 != 0
}

// IPv6 returns the IPv6 header (see Eth for pointer lifetime).
func (v *PacketView) IPv6() (*IPv6, bool) {
	v.ensureHeaders()
	return &v.ip6, v.flags&vIP6 != 0
}

// TCP returns the TCP header (see Eth for pointer lifetime).
func (v *PacketView) TCP() (*TCP, bool) {
	v.ensureHeaders()
	return &v.tcp, v.flags&vTCP != 0
}

// UDP returns the UDP header (see Eth for pointer lifetime).
func (v *PacketView) UDP() (*UDP, bool) {
	v.ensureHeaders()
	return &v.udp, v.flags&vUDP != 0
}

// ICMP returns the ICMP header (see Eth for pointer lifetime).
func (v *PacketView) ICMP() (*ICMP, bool) {
	v.ensureHeaders()
	return &v.icmp, v.flags&vICMP != 0
}

// Dot11 returns the 802.11 header (see Eth for pointer lifetime).
func (v *PacketView) Dot11() (*Dot11, bool) {
	v.ensureHeaders()
	return &v.dot11, v.flags&vDot11 != 0
}

// DNS returns the DNS message, forcing the app-layer pass.
func (v *PacketView) DNS() (*DNS, bool) {
	v.ensureApp()
	return v.dns, v.dns != nil
}

// HTTP returns the HTTP message, forcing the app-layer pass.
func (v *PacketView) HTTP() (*HTTP, bool) {
	v.ensureApp()
	return v.http, v.http != nil
}

// MQTT returns the MQTT message, forcing the app-layer pass.
func (v *PacketView) MQTT() (*MQTT, bool) {
	v.ensureApp()
	return v.mqtt, v.mqtt != nil
}

// Payload returns the application payload region of Data. Like
// Packet.Payload it may be non-nil yet empty on non-first IP fragments.
func (v *PacketView) Payload() []byte {
	v.ensureHeaders()
	if v.flags&vPay == 0 {
		return nil
	}
	return v.Data[v.payOff:v.payEnd]
}

// PayloadLen returns len(Payload) without materializing the slice.
func (v *PacketView) PayloadLen() int {
	v.ensureHeaders()
	return int(v.payEnd - v.payOff)
}

// SrcIP mirrors Packet.SrcIP: the network-layer source address, falling
// back to ARP's sender IP; zero Addr when absent.
func (v *PacketView) SrcIP() netip.Addr {
	v.ensureHeaders()
	switch {
	case v.flags&vIP4 != 0:
		return v.ip4.Src
	case v.flags&vIP6 != 0:
		return v.ip6.Src
	case v.flags&vARP != 0:
		return v.arp.SenderIP
	}
	return netip.Addr{}
}

// DstIP mirrors Packet.DstIP.
func (v *PacketView) DstIP() netip.Addr {
	v.ensureHeaders()
	switch {
	case v.flags&vIP4 != 0:
		return v.ip4.Dst
	case v.flags&vIP6 != 0:
		return v.ip6.Dst
	case v.flags&vARP != 0:
		return v.arp.TargetIP
	}
	return netip.Addr{}
}

// SrcPort mirrors Packet.SrcPort.
func (v *PacketView) SrcPort() uint16 {
	v.ensureHeaders()
	switch {
	case v.flags&vTCP != 0:
		return v.tcp.SrcPort
	case v.flags&vUDP != 0:
		return v.udp.SrcPort
	}
	return 0
}

// DstPort mirrors Packet.DstPort.
func (v *PacketView) DstPort() uint16 {
	v.ensureHeaders()
	switch {
	case v.flags&vTCP != 0:
		return v.tcp.DstPort
	case v.flags&vUDP != 0:
		return v.udp.DstPort
	}
	return 0
}

// Protocol mirrors Packet.Protocol.
func (v *PacketView) Protocol() uint8 {
	v.ensureHeaders()
	switch {
	case v.flags&vTCP != 0:
		return ProtoTCP
	case v.flags&vUDP != 0:
		return ProtoUDP
	case v.flags&vICMP != 0:
		return ProtoICMP
	case v.flags&vIP4 != 0:
		return v.ip4.Protocol
	case v.flags&vIP6 != 0:
		return v.ip6.NextHeader
	}
	return 0
}

// Tuple mirrors Packet.Tuple: the five-tuple, ok=false without a network
// layer.
func (v *PacketView) Tuple() (FiveTuple, bool) {
	v.ensureHeaders()
	src, dst := v.SrcIP(), v.DstIP()
	if !src.IsValid() || !dst.IsValid() || v.flags&(vIP4|vIP6) == 0 {
		return FiveTuple{}, false
	}
	return FiveTuple{
		SrcIP: src, DstIP: dst,
		SrcPort: v.SrcPort(), DstPort: v.DstPort(),
		Proto: v.Protocol(),
	}, true
}

// Summary extracts the flow-assembly fields of the view.
func (v *PacketView) Summary() PacketSummary {
	v.ensureHeaders()
	s := PacketSummary{Ts: v.Ts, Wire: len(v.Data), PayloadLen: v.PayloadLen()}
	if v.flags&vTCP != 0 {
		s.HasTCP, s.TCPFlags = true, v.tcp.Flags
	}
	s.Tuple, s.HasTuple = v.Tuple()
	return s
}

// Materialize eagerly decodes everything and returns the equivalent
// Packet — exactly what Decode(Data, Link, Ts) would have produced.
// Layer structs are copied, so the Packet does not alias view state
// (its Data and Payload still alias the raw bytes, like Decode's).
func (v *PacketView) Materialize() *Packet {
	v.ensureHeaders()
	v.ensureApp()
	p := &Packet{Ts: v.Ts, Link: v.Link, Data: v.Data, TruncatedLayer: v.trunc}
	if v.flags&vEth != 0 {
		e := v.eth
		p.Eth = &e
	}
	if v.flags&vARP != 0 {
		a := v.arp
		p.ARP = &a
	}
	if v.flags&vIP4 != 0 {
		ip := v.ip4
		p.IPv4 = &ip
	}
	if v.flags&vIP6 != 0 {
		ip := v.ip6
		p.IPv6 = &ip
	}
	if v.flags&vTCP != 0 {
		t := v.tcp
		p.TCP = &t
	}
	if v.flags&vUDP != 0 {
		u := v.udp
		p.UDP = &u
	}
	if v.flags&vICMP != 0 {
		ic := v.icmp
		p.ICMP = &ic
	}
	if v.flags&vDot11 != 0 {
		d := v.dot11
		p.Dot11 = &d
	}
	if v.flags&vPay != 0 {
		p.Payload = v.Data[v.payOff:v.payEnd]
	}
	p.DNS, p.HTTP, p.MQTT = v.dns, v.http, v.mqtt
	return p
}

// ensureHeaders runs the single-pass L2–L4 decode once. It mirrors
// Decode's layer walk exactly (same truncation points, same payload
// slicing) but writes into inline value fields.
func (v *PacketView) ensureHeaders() {
	if v.flags&vHdrs != 0 {
		return
	}
	v.flags |= vHdrs
	switch v.Link {
	case LinkDot11:
		v.hdrDot11()
	default:
		v.hdrEthernet()
	}
}

func (v *PacketView) setPay(off, end int) {
	v.flags |= vPay
	v.payOff, v.payEnd = int32(off), int32(end)
}

func (v *PacketView) hdrDot11() {
	b := v.Data
	if len(b) < 24 {
		v.trunc = "dot11"
		return
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	ftype := uint8(fc>>2) & 0x03
	fsub := uint8(fc>>4) & 0x0f
	d := &v.dot11
	d.Duration = binary.LittleEndian.Uint16(b[2:4])
	d.Seq = binary.LittleEndian.Uint16(b[22:24]) >> 4
	d.Retry = fc&(1<<11) != 0
	if ftype == 2 {
		d.Subtype = Dot11Data
	} else {
		d.Subtype = Dot11Subtype(fsub)
	}
	copy(d.Addr1[:], b[4:10])
	copy(d.Addr2[:], b[10:16])
	copy(d.Addr3[:], b[16:22])
	v.flags |= vDot11
	if len(b) > 24 {
		v.setPay(24, len(b))
	}
}

func (v *PacketView) hdrEthernet() {
	b := v.Data
	if len(b) < 14 {
		v.trunc = "ethernet"
		return
	}
	v.eth.EtherType = binary.BigEndian.Uint16(b[12:14])
	copy(v.eth.Dst[:], b[0:6])
	copy(v.eth.Src[:], b[6:12])
	v.flags |= vEth
	switch v.eth.EtherType {
	case EtherTypeIPv4:
		v.hdrIPv4(14)
	case EtherTypeIPv6:
		v.hdrIPv6(14)
	case EtherTypeARP:
		v.hdrARP(14)
	}
}

func (v *PacketView) hdrARP(off int) {
	b := v.Data[off:]
	if len(b) < 28 {
		v.trunc = "arp"
		return
	}
	a := &v.arp
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	v.flags |= vARP
}

func (v *PacketView) hdrIPv4(off int) {
	b := v.Data[off:]
	if len(b) < 20 || b[0]>>4 != 4 {
		v.trunc = "ipv4"
		return
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		v.trunc = "ipv4"
		return
	}
	ip := &v.ip4
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.Flags = b[6] >> 5
	ip.FragOff = binary.BigEndian.Uint16(b[6:8]) & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.Src = netip.AddrFrom4([4]byte(b[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	v.flags |= vIP4
	end := int(ip.Length)
	if end > len(b) || end < ihl {
		end = len(b)
	}
	if ip.FragOff != 0 {
		v.setPay(off+ihl, off+end) // non-first fragment: no L4 header
		return
	}
	v.hdrL4(ip.Protocol, off+ihl, off+end)
}

func (v *PacketView) hdrIPv6(off int) {
	b := v.Data[off:]
	if len(b) < 40 || b[0]>>4 != 6 {
		v.trunc = "ipv6"
		return
	}
	ip := &v.ip6
	ip.TrafficClass = b[0]<<4 | b[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(b[0:4]) & 0xfffff
	ip.Length = binary.BigEndian.Uint16(b[4:6])
	ip.NextHeader = b[6]
	ip.HopLimit = b[7]
	ip.Src = netip.AddrFrom16([16]byte(b[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	v.flags |= vIP6
	v.hdrL4(ip.NextHeader, off+40, len(v.Data))
}

func (v *PacketView) hdrL4(proto uint8, off, end int) {
	b := v.Data[off:end]
	switch proto {
	case ProtoTCP:
		v.hdrTCP(b, off, end)
	case ProtoUDP:
		v.hdrUDP(b, off, end)
	case ProtoICMP:
		v.hdrICMP(b, off, end)
	default:
		if len(b) > 0 {
			v.setPay(off, end)
		}
	}
}

func (v *PacketView) hdrTCP(b []byte, off, end int) {
	if len(b) < 20 {
		v.trunc = "tcp"
		return
	}
	t := &v.tcp
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.DataOff = b[12] >> 4
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	v.flags |= vTCP
	dataOff := int(t.DataOff) * 4
	if dataOff < 20 || dataOff > len(b) {
		v.trunc = "tcp-options"
		return
	}
	t.parseOptions(b[20:dataOff])
	if dataOff < len(b) {
		v.setPay(off+dataOff, end)
	}
}

func (v *PacketView) hdrUDP(b []byte, off, end int) {
	if len(b) < 8 {
		v.trunc = "udp"
		return
	}
	u := &v.udp
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	v.flags |= vUDP
	if len(b) > 8 {
		v.setPay(off+8, end)
	}
}

func (v *PacketView) hdrICMP(b []byte, off, end int) {
	if len(b) < 8 {
		v.trunc = "icmp"
		return
	}
	ic := &v.icmp
	ic.Type = b[0]
	ic.Code = b[1]
	ic.Checksum = binary.BigEndian.Uint16(b[2:4])
	ic.ID = binary.BigEndian.Uint16(b[4:6])
	ic.Seq = binary.BigEndian.Uint16(b[6:8])
	v.flags |= vICMP
	if len(b) > 8 {
		v.setPay(off+8, end)
	}
}

// appGate maps the decoded transport ports onto the app layer Decode
// would try, as an AppMask (0 when none applies). Headers must already
// be decoded.
func (v *PacketView) appGate() AppMask {
	switch {
	case v.flags&vUDP != 0 && (v.udp.SrcPort == 53 || v.udp.DstPort == 53):
		return AppDNS
	case v.flags&vTCP != 0 && portIs(&v.tcp, 80, 8080):
		return AppHTTP
	case v.flags&vTCP != 0 && portIs(&v.tcp, 1883, 8883):
		return AppMQTT
	}
	return 0
}

// ensureApp runs the app-layer decode once. Decode only attempts it with
// a non-empty payload; an empty/absent payload fails every app parser's
// minimum-length check, so gating is equivalent either way.
func (v *PacketView) ensureApp() {
	v.ensureHeaders()
	if v.flags&vApp != 0 {
		return
	}
	v.flags |= vApp
	if v.flags&vPay == 0 || v.payOff == v.payEnd {
		return
	}
	pay := v.Data[v.payOff:v.payEnd]
	switch v.appGate() {
	case AppDNS:
		if d, ok := decodeDNS(pay); ok {
			v.dns = d
		}
	case AppHTTP:
		if h, ok := decodeHTTP(pay); ok {
			v.http = h
		}
	case AppMQTT:
		if m, ok := decodeMQTT(pay); ok {
			v.mqtt = m
		}
	}
}

// PacketSummary is the fixed-size projection of a packet that flow
// assembly consumes: timestamp, oriented five-tuple, sizes and TCP
// flags. It lets the assemblers run off lazy views (or any other
// representation) without materializing *Packet structs.
type PacketSummary struct {
	// Ts is the packet timestamp.
	Ts time.Time
	// Tuple is the oriented five-tuple; HasTuple is false for packets
	// without a network layer (ARP, 802.11 management).
	Tuple    FiveTuple
	HasTuple bool
	// Wire is the on-wire length; PayloadLen the application payload
	// length.
	Wire       int
	PayloadLen int
	// TCPFlags holds the TCP flag bits when HasTCP is set.
	TCPFlags uint8
	HasTCP   bool
}

// Summary extracts the flow-assembly fields of an eagerly decoded packet.
func (p *Packet) Summary() PacketSummary {
	s := PacketSummary{Ts: p.Ts, Wire: p.WireLen(), PayloadLen: len(p.Payload)}
	if p.TCP != nil {
		s.HasTCP, s.TCPFlags = true, p.TCP.Flags
	}
	s.Tuple, s.HasTuple = p.Tuple()
	return s
}
