package netpkt

import (
	"encoding/binary"
	"net/netip"
	"time"
)

// Decode parses wire bytes into a Packet starting from the given link
// type. Decoding is best-effort, gopacket-style: a malformed inner layer
// sets TruncatedLayer and leaves the outer layers populated.
func Decode(data []byte, link LinkType, ts time.Time) *Packet {
	p := &Packet{Ts: ts, Link: link, Data: data}
	switch link {
	case LinkDot11:
		p.decodeDot11(data)
	default:
		p.decodeEthernet(data)
	}
	return p
}

func (p *Packet) decodeEthernet(b []byte) {
	if len(b) < 14 {
		p.TruncatedLayer = "ethernet"
		return
	}
	eth := &Ethernet{EtherType: binary.BigEndian.Uint16(b[12:14])}
	copy(eth.Dst[:], b[0:6])
	copy(eth.Src[:], b[6:12])
	p.Eth = eth
	rest := b[14:]
	switch eth.EtherType {
	case EtherTypeIPv4:
		p.decodeIPv4(rest)
	case EtherTypeIPv6:
		p.decodeIPv6(rest)
	case EtherTypeARP:
		p.decodeARP(rest)
	}
}

func (p *Packet) decodeARP(b []byte) {
	if len(b) < 28 {
		p.TruncatedLayer = "arp"
		return
	}
	a := &ARP{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	p.ARP = a
}

func (p *Packet) decodeIPv4(b []byte) {
	if len(b) < 20 || b[0]>>4 != 4 {
		p.TruncatedLayer = "ipv4"
		return
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		p.TruncatedLayer = "ipv4"
		return
	}
	ip := &IPv4{
		TOS:      b[1],
		Length:   binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:12]),
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	p.IPv4 = ip
	end := int(ip.Length)
	if end > len(b) || end < ihl {
		end = len(b)
	}
	rest := b[ihl:end]
	if ip.FragOff != 0 {
		p.Payload = rest // non-first fragment: no L4 header
		return
	}
	p.decodeL4(ip.Protocol, rest)
}

func (p *Packet) decodeIPv6(b []byte) {
	if len(b) < 40 || b[0]>>4 != 6 {
		p.TruncatedLayer = "ipv6"
		return
	}
	ip := &IPv6{
		TrafficClass: b[0]<<4 | b[1]>>4,
		FlowLabel:    binary.BigEndian.Uint32(b[0:4]) & 0xfffff,
		Length:       binary.BigEndian.Uint16(b[4:6]),
		NextHeader:   b[6],
		HopLimit:     b[7],
		Src:          netip.AddrFrom16([16]byte(b[8:24])),
		Dst:          netip.AddrFrom16([16]byte(b[24:40])),
	}
	p.IPv6 = ip
	p.decodeL4(ip.NextHeader, b[40:])
}

func (p *Packet) decodeL4(proto uint8, b []byte) {
	switch proto {
	case ProtoTCP:
		p.decodeTCP(b)
	case ProtoUDP:
		p.decodeUDP(b)
	case ProtoICMP:
		p.decodeICMP(b)
	default:
		if len(b) > 0 {
			p.Payload = b
		}
	}
}

func (p *Packet) decodeTCP(b []byte) {
	if len(b) < 20 {
		p.TruncatedLayer = "tcp"
		return
	}
	t := &TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		DataOff: b[12] >> 4,
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Urgent:  binary.BigEndian.Uint16(b[18:20]),
	}
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	p.TCP = t
	off := int(t.DataOff) * 4
	if off < 20 || off > len(b) {
		p.TruncatedLayer = "tcp-options"
		return
	}
	t.parseOptions(b[20:off])
	if off < len(b) {
		p.Payload = b[off:]
		p.decodeApp()
	}
}

// parseOptions walks the TCP options region, extracting the common ones.
func (t *TCP) parseOptions(b []byte) {
	for i := 0; i < len(b); {
		kind := b[i]
		switch kind {
		case 0: // end of options
			return
		case 1: // NOP
			i++
			continue
		}
		if i+1 >= len(b) {
			return
		}
		l := int(b[i+1])
		if l < 2 || i+l > len(b) {
			return
		}
		switch kind {
		case 2: // MSS
			if l == 4 {
				t.MSS = binary.BigEndian.Uint16(b[i+2 : i+4])
			}
		case 3: // window scale
			if l == 3 {
				t.WScale = b[i+2]
			}
		case 4: // SACK permitted
			t.SACKOK = true
		}
		i += l
	}
}

func (p *Packet) decodeUDP(b []byte) {
	if len(b) < 8 {
		p.TruncatedLayer = "udp"
		return
	}
	u := &UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	p.UDP = u
	if len(b) > 8 {
		p.Payload = b[8:]
		p.decodeApp()
	}
}

func (p *Packet) decodeICMP(b []byte) {
	if len(b) < 8 {
		p.TruncatedLayer = "icmp"
		return
	}
	p.ICMP = &ICMP{
		Type:     b[0],
		Code:     b[1],
		Checksum: binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Seq:      binary.BigEndian.Uint16(b[6:8]),
	}
	if len(b) > 8 {
		p.Payload = b[8:]
	}
}

// DecodeAppLayer (re)derives the application layers (DNS/HTTP/MQTT) from
// the packet's transport ports and payload. Decode calls it internally;
// synthesized packets (built layer-by-layer rather than parsed) call it
// after serialization.
func (p *Packet) DecodeAppLayer() { p.decodeApp() }

// decodeApp attempts application-layer decoding keyed on well-known ports.
func (p *Packet) decodeApp() {
	switch {
	case p.UDP != nil && (p.UDP.SrcPort == 53 || p.UDP.DstPort == 53):
		if d, ok := decodeDNS(p.Payload); ok {
			p.DNS = d
		}
	case p.TCP != nil && portIs(p.TCP, 80, 8080):
		if h, ok := decodeHTTP(p.Payload); ok {
			p.HTTP = h
		}
	case p.TCP != nil && portIs(p.TCP, 1883, 8883):
		if m, ok := decodeMQTT(p.Payload); ok {
			p.MQTT = m
		}
	}
}

func portIs(t *TCP, ports ...uint16) bool {
	for _, port := range ports {
		if t.SrcPort == port || t.DstPort == port {
			return true
		}
	}
	return false
}

// VerifyIPv4Checksum recomputes the IPv4 header checksum over the raw
// bytes and reports whether it is consistent. It requires raw Data.
func (p *Packet) VerifyIPv4Checksum() bool {
	if p.IPv4 == nil || len(p.Data) < 34 || p.Link != LinkEthernet {
		return false
	}
	hdr := p.Data[14:]
	ihl := int(hdr[0]&0x0f) * 4
	if len(hdr) < ihl {
		return false
	}
	return internetChecksum(hdr[:ihl], 0) == 0
}
