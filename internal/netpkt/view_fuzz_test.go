package netpkt

import (
	"reflect"
	"testing"
	"time"
)

// fuzzViewAgainstDecode is the shared differential property: for any
// input bytes, the lazy view must never panic and must materialize to
// exactly the packet the eager decoder builds, at every predecode depth.
func fuzzViewAgainstDecode(t *testing.T, data []byte, link LinkType) {
	ts := time.Unix(1700000000, 0)
	want := Decode(data, link, ts)
	for _, hint := range allHints() {
		var v PacketView
		v.Reset(data, link, ts)
		v.Predecode(hint)
		// Exercise the cheap accessors too: they must not disturb the
		// materialized result.
		_ = v.WireLen()
		_ = v.PayloadLen()
		_, _ = v.Tuple()
		_ = v.Summary()
		got := v.Materialize()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("hint %+v: view and eager decode disagree:\nview:  %+v\neager: %+v", hint, got, want)
		}
	}
}

// seedViewCorpus adds every corpus frame plus truncations that land
// inside each protocol header, so the fuzzer starts at the interesting
// boundaries instead of random bytes.
func seedViewCorpus(f *testing.F, link LinkType) {
	for _, c := range viewCorpus(f) {
		if c.link != link {
			continue
		}
		f.Add(c.raw)
		for _, cut := range []int{1, 13, 14, 20, 33, 34, 41, 42, 53, 54} {
			if cut < len(c.raw) {
				f.Add(c.raw[:cut])
			}
		}
	}
}

func FuzzViewEthernet(f *testing.F) {
	seedViewCorpus(f, LinkEthernet)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzViewAgainstDecode(t, data, LinkEthernet)
	})
}

func FuzzViewDot11(f *testing.F) {
	seedViewCorpus(f, LinkDot11)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzViewAgainstDecode(t, data, LinkDot11)
	})
}
