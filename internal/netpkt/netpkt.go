// Package netpkt models network packets and implements wire-format
// encoding and decoding for the protocol layers Lumen's feature pipelines
// consume: Ethernet, ARP, IPv4, IPv6, TCP, UDP, ICMP, DNS, plus IEEE
// 802.11 management frames for wireless datasets. It plays the role
// pypacker/gopacket play for the original system, following gopacket's
// layered-decoding design: a Packet holds typed pointers to each decoded
// layer, nil when absent.
package netpkt

import (
	"fmt"
	"net/netip"
	"time"
)

// EtherType values used by the decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers used by the decoder.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// LinkType identifies the outermost layer of a capture, mirroring pcap
// link types.
type LinkType uint32

// Supported link types.
const (
	LinkEthernet LinkType = 1
	LinkDot11    LinkType = 105
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// String formats the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	Op       uint16 // 1 request, 2 reply
	SenderHW MAC
	SenderIP netip.Addr
	TargetHW MAC
	TargetIP netip.Addr
}

// IPv4 is an IPv4 header (options not modelled).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length incl. header
	ID       uint16
	Flags    uint8 // 3 bits: evil/DF/MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
}

// IPv6 is a fixed IPv6 header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
}

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// TCP is a TCP header. Common options are decoded when present
// (DataOff > 5): MSS, window scale and SACK-permitted.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	// MSS is the maximum-segment-size option value, 0 when absent.
	MSS uint16
	// WScale is the window-scale shift, 0 when absent.
	WScale uint8
	// SACKOK reports the SACK-permitted option.
	SACKOK bool
}

// HasFlag reports whether all bits in f are set.
func (t *TCP) HasFlag(f uint8) bool { return t.Flags&f == f }

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ICMP is an ICMP header.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16
}

// Packet is one decoded (or synthesized) packet. Layer pointers are nil
// when the layer is absent. Data holds the raw bytes when the packet came
// off a capture or was serialized.
type Packet struct {
	Ts   time.Time
	Link LinkType
	Data []byte

	Eth   *Ethernet
	ARP   *ARP
	IPv4  *IPv4
	IPv6  *IPv6
	TCP   *TCP
	UDP   *UDP
	ICMP  *ICMP
	Dot11 *Dot11
	DNS   *DNS
	HTTP  *HTTP
	MQTT  *MQTT

	// Payload is the application payload (above L4), nil when empty.
	Payload []byte

	// TruncatedLayer names the first layer that failed to decode, empty
	// when decoding was clean (gopacket's ErrorLayer idea).
	TruncatedLayer string
}

// WireLen returns the on-wire packet length: len(Data) when raw bytes are
// present, otherwise a best-effort reconstruction from decoded headers.
func (p *Packet) WireLen() int {
	if len(p.Data) > 0 {
		return len(p.Data)
	}
	n := 0
	if p.Eth != nil {
		n += 14
	}
	if p.Dot11 != nil {
		n += 24
	}
	switch {
	case p.IPv4 != nil:
		n += int(p.IPv4.Length)
	case p.IPv6 != nil:
		n += 40 + int(p.IPv6.Length)
	case p.ARP != nil:
		n += 28
	}
	return n
}

// SrcIP returns the network-layer source address (zero Addr when absent).
func (p *Packet) SrcIP() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Src
	case p.IPv6 != nil:
		return p.IPv6.Src
	case p.ARP != nil:
		return p.ARP.SenderIP
	}
	return netip.Addr{}
}

// DstIP returns the network-layer destination address (zero Addr when
// absent).
func (p *Packet) DstIP() netip.Addr {
	switch {
	case p.IPv4 != nil:
		return p.IPv4.Dst
	case p.IPv6 != nil:
		return p.IPv6.Dst
	case p.ARP != nil:
		return p.ARP.TargetIP
	}
	return netip.Addr{}
}

// SrcPort returns the transport source port, 0 when no transport layer.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.SrcPort
	case p.UDP != nil:
		return p.UDP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, 0 when no transport
// layer.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.DstPort
	case p.UDP != nil:
		return p.UDP.DstPort
	}
	return 0
}

// Protocol returns the IP protocol number, 0 when no network layer.
func (p *Packet) Protocol() uint8 {
	switch {
	case p.TCP != nil:
		return ProtoTCP
	case p.UDP != nil:
		return ProtoUDP
	case p.ICMP != nil:
		return ProtoICMP
	case p.IPv4 != nil:
		return p.IPv4.Protocol
	case p.IPv6 != nil:
		return p.IPv6.NextHeader
	}
	return 0
}

// FiveTuple identifies a unidirectional flow. It is comparable and valid
// as a map key.
type FiveTuple struct {
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: f.DstIP, DstIP: f.SrcIP,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Proto: f.Proto,
	}
}

// Canonical returns the direction-independent form of the tuple (the
// lexicographically smaller endpoint first), identifying a bidirectional
// connection.
func (f FiveTuple) Canonical() FiveTuple {
	a := endpointKey{f.SrcIP, f.SrcPort}
	b := endpointKey{f.DstIP, f.DstPort}
	if b.less(a) {
		return f.Reverse()
	}
	return f
}

type endpointKey struct {
	ip   netip.Addr
	port uint16
}

func (a endpointKey) less(b endpointKey) bool {
	if c := a.ip.Compare(b.ip); c != 0 {
		return c < 0
	}
	return a.port < b.port
}

// String renders the tuple as "src:sport->dst:dport/proto".
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Proto)
}

// FNV-1a constants (hash/fnv is not used directly so the fold can run
// over the tuple fields without materializing a byte slice).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// ShardHash returns a stable 64-bit FNV-1a hash of the canonical
// (direction-normalized) form of the tuple, so both directions of a
// connection — and therefore every packet of a flow — hash identically.
// The hash folds the 16-byte address forms (IPv4 mapped into IPv6), the
// ports and the protocol, is independent of process, run and map
// iteration order, and is meant for partitioning flows across shard
// lanes (shard = ShardHash() % K).
func (f FiveTuple) ShardHash() uint64 {
	c := f.Canonical()
	h := fnvOffset64
	src, dst := c.SrcIP.As16(), c.DstIP.As16()
	for _, b := range src {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	for _, b := range dst {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	h = (h ^ uint64(c.SrcPort>>8)) * fnvPrime64
	h = (h ^ uint64(c.SrcPort&0xff)) * fnvPrime64
	h = (h ^ uint64(c.DstPort>>8)) * fnvPrime64
	h = (h ^ uint64(c.DstPort&0xff)) * fnvPrime64
	h = (h ^ uint64(c.Proto)) * fnvPrime64
	return h
}

// Tuple extracts the packet's five-tuple; ok is false for packets without
// a network layer (e.g. 802.11 management frames, ARP).
func (p *Packet) Tuple() (f FiveTuple, ok bool) {
	src, dst := p.SrcIP(), p.DstIP()
	if !src.IsValid() || !dst.IsValid() || (p.IPv4 == nil && p.IPv6 == nil) {
		return FiveTuple{}, false
	}
	return FiveTuple{
		SrcIP: src, DstIP: dst,
		SrcPort: p.SrcPort(), DstPort: p.DstPort(),
		Proto: p.Protocol(),
	}, true
}
