package flow

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"lumen/internal/netpkt"
)

// WriteConnLog renders connections in Zeek conn.log TSV form (the format
// the paper's dataset preprocessing is built around: "we use Zeek to
// split large packet capture into corresponding flows"). Columns follow
// Zeek's defaults: ts, uid, id.orig_h, id.orig_p, id.resp_h, id.resp_p,
// proto, duration, orig_bytes, resp_bytes, conn_state, orig_pkts,
// resp_pkts.
func WriteConnLog(w io.Writer, conns []*Connection) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tproto\tduration\torig_bytes\tresp_bytes\tconn_state\torig_pkts\tresp_pkts"); err != nil {
		return err
	}
	for i, c := range conns {
		proto := protoString(c.Tuple.Proto)
		_, err := fmt.Fprintf(bw, "%.6f\tC%08d\t%s\t%d\t%s\t%d\t%s\t%.6f\t%d\t%d\t%s\t%d\t%d\n",
			float64(c.First.UnixNano())/1e9,
			i,
			c.Tuple.SrcIP, c.Tuple.SrcPort,
			c.Tuple.DstIP, c.Tuple.DstPort,
			proto,
			c.Duration().Seconds(),
			c.OrigBytes, c.RespBytes,
			c.State,
			len(c.OrigIdx), len(c.RespIdx),
		)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func protoString(p uint8) string {
	switch p {
	case netpkt.ProtoTCP:
		return "tcp"
	case netpkt.ProtoUDP:
		return "udp"
	case netpkt.ProtoICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto-%d", p)
	}
}

// MatchByTime pairs each connection in a with the connection in b whose
// start time is closest within tolerance — the CTU preprocessing step
// ("matched our Zeek-flows with the labeled Zeek-flows provided in the
// dataset based on flow timestamps"). It returns, for every connection
// of a, the index of its match in b or -1.
func MatchByTime(a, b []*Connection, tolerance time.Duration) []int {
	out := make([]int, len(a))
	for i := range out {
		out[i] = -1
	}
	// b is time-sorted (Connections returns sorted flows): binary scan.
	for i, ca := range a {
		lo, hi := 0, len(b)
		for lo < hi {
			mid := (lo + hi) / 2
			if b[mid].First.Before(ca.First) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		best, bestD := -1, tolerance
		for _, j := range []int{lo - 1, lo} {
			if j < 0 || j >= len(b) {
				continue
			}
			d := b[j].First.Sub(ca.First)
			if d < 0 {
				d = -d
			}
			if d <= bestD {
				best, bestD = j, d
			}
		}
		out[i] = best
	}
	return out
}
