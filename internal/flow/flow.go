// Package flow assembles packet streams into unidirectional flows and
// bidirectional connections — the role Zeek's flow extraction plays in the
// original Lumen (the paper splits every pcap into Zeek flows before
// labelling). Flows are keyed by five-tuple, split on idle timeouts, and
// connections carry Zeek-style state summaries (S0/SF/REJ/RSTO/OTH).
package flow

import (
	"sort"
	"time"

	"lumen/internal/netpkt"
)

// Uniflow is a set of same-direction packets sharing a five-tuple, within
// one timeout-delimited episode.
type Uniflow struct {
	Tuple netpkt.FiveTuple
	// PacketIdx indexes into the packet slice given to Assemble, in time
	// order. Keeping indices (not copies) lets label propagation work in
	// both directions.
	PacketIdx []int
	First     time.Time
	Last      time.Time
	Bytes     int
	Payload   int // application payload bytes
}

// Duration returns Last-First.
func (u *Uniflow) Duration() time.Duration { return u.Last.Sub(u.First) }

// ConnState summarizes a TCP connection lifecycle, following Zeek's
// conn_state vocabulary.
type ConnState string

// Connection states.
const (
	StateS0   ConnState = "S0"   // SYN seen, no reply
	StateS1   ConnState = "S1"   // handshake complete, not closed
	StateSF   ConnState = "SF"   // normal establish + close
	StateREJ  ConnState = "REJ"  // SYN answered by RST
	StateRSTO ConnState = "RSTO" // established, originator aborted
	StateRSTR ConnState = "RSTR" // established, responder aborted
	StateOTH  ConnState = "OTH"  // midstream or non-TCP
)

// Connection is a bidirectional flow: the originator direction is the one
// whose packet appeared first.
type Connection struct {
	// Tuple is oriented originator → responder.
	Tuple netpkt.FiveTuple
	// OrigIdx and RespIdx index packets of each direction, in time order.
	OrigIdx []int
	RespIdx []int
	First   time.Time
	Last    time.Time
	// OrigBytes and RespBytes are wire bytes per direction.
	OrigBytes, RespBytes int
	// OrigPayload and RespPayload are application bytes per direction.
	OrigPayload, RespPayload int
	State                    ConnState

	sawSYN, sawSYNACK, sawOrigFIN, sawRespFIN bool
	sawOrigRST, sawRespRST                    bool
}

// Duration returns Last-First.
func (c *Connection) Duration() time.Duration { return c.Last.Sub(c.First) }

// Packets returns all packet indices of the connection in time order.
func (c *Connection) Packets() []int {
	out := make([]int, 0, len(c.OrigIdx)+len(c.RespIdx))
	out = append(out, c.OrigIdx...)
	out = append(out, c.RespIdx...)
	sort.Ints(out)
	return out
}

// Options configures assembly.
type Options struct {
	// IdleTimeout splits a flow when the gap between packets exceeds it;
	// 0 means 64s (Zeek's default inactivity interval for TCP is of this
	// order).
	IdleTimeout time.Duration
}

func (o Options) idle() time.Duration {
	if o.IdleTimeout == 0 {
		return 64 * time.Second
	}
	return o.IdleTimeout
}

// Uniflows groups packets into unidirectional flows. Packets without a
// five-tuple (ARP, 802.11 management) are skipped. Input packets must be
// in non-decreasing time order (captures are). It is the batch driver of
// UniflowAssembler, so batch and incremental assembly cannot diverge.
func Uniflows(pkts []*netpkt.Packet, opts Options) []*Uniflow {
	a := NewUniflowAssembler(opts)
	var done []*Uniflow
	for i, p := range pkts {
		done = append(done, a.Add(i, p)...)
	}
	done = append(done, a.Flush()...)
	SortUniflows(done)
	return done
}

// Connections groups packets into bidirectional connections with
// Zeek-style state tracking. It is the batch driver of ConnAssembler.
func Connections(pkts []*netpkt.Packet, opts Options) []*Connection {
	a := NewConnAssembler(opts)
	var done []*Connection
	for i, p := range pkts {
		done = append(done, a.Add(i, p)...)
	}
	done = append(done, a.Flush()...)
	SortConnections(done)
	return done
}

// finalize assigns the Zeek-style connection state.
func (c *Connection) finalize() {
	switch {
	case c.Tuple.Proto != netpkt.ProtoTCP:
		c.State = StateOTH
	case c.sawSYN && c.sawRespRST && !c.sawSYNACK:
		c.State = StateREJ
	case c.sawSYN && !c.sawSYNACK:
		c.State = StateS0
	case c.sawSYN && c.sawSYNACK && c.sawOrigFIN && c.sawRespFIN:
		c.State = StateSF
	case c.sawSYN && c.sawSYNACK && c.sawOrigRST:
		c.State = StateRSTO
	case c.sawSYN && c.sawSYNACK && c.sawRespRST:
		c.State = StateRSTR
	case c.sawSYN && c.sawSYNACK:
		c.State = StateS1
	default:
		c.State = StateOTH
	}
}
