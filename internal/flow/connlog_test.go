package flow

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lumen/internal/netpkt"
)

func TestWriteConnLog(t *testing.T) {
	pkts := handshake(t, 0)
	conns := Connections(pkts, Options{})
	var buf bytes.Buffer
	if err := WriteConnLog(&buf, conns); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(conns) {
		t.Fatalf("got %d lines, want header + %d rows", len(lines), len(conns))
	}
	if !strings.HasPrefix(lines[0], "#fields\tts\tuid") {
		t.Errorf("header = %q", lines[0])
	}
	row := lines[1]
	for _, want := range []string{"10.0.0.1", "1234", "10.0.0.2", "80", "tcp", "SF"} {
		if !strings.Contains(row, want) {
			t.Errorf("row missing %q: %s", want, row)
		}
	}
}

func TestProtoString(t *testing.T) {
	if protoString(netpkt.ProtoTCP) != "tcp" || protoString(netpkt.ProtoUDP) != "udp" ||
		protoString(netpkt.ProtoICMP) != "icmp" || protoString(42) != "proto-42" {
		t.Error("protoString mapping wrong")
	}
}

func TestMatchByTime(t *testing.T) {
	mk := func(sec float64) *Connection {
		return &Connection{First: time.Unix(0, int64(sec*1e9))}
	}
	a := []*Connection{mk(1.0), mk(5.0), mk(100)}
	b := []*Connection{mk(0.9), mk(5.2), mk(50)}
	got := MatchByTime(a, b, 500*time.Millisecond)
	if got[0] != 0 {
		t.Errorf("a[0] matched %d, want 0", got[0])
	}
	if got[1] != 1 {
		t.Errorf("a[1] matched %d, want 1", got[1])
	}
	if got[2] != -1 {
		t.Errorf("a[2] matched %d, want -1 (outside tolerance)", got[2])
	}
}
