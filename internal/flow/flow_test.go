package flow

import (
	"net/netip"
	"testing"
	"time"

	"lumen/internal/netpkt"
)

var (
	hostA = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	hostB = netip.AddrFrom4([4]byte{10, 0, 0, 2})
)

// tcpPkt builds a serialized TCP packet at the given offset (seconds).
func tcpPkt(t *testing.T, src, dst netip.Addr, sport, dport uint16, flags uint8, sec float64, payload string) *netpkt.Packet {
	t.Helper()
	p := &netpkt.Packet{
		Ts:      time.Unix(0, int64(sec*1e9)),
		Eth:     &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		IPv4:    &netpkt.IPv4{TTL: 64, Protocol: netpkt.ProtoTCP, Src: src, Dst: dst},
		TCP:     &netpkt.TCP{SrcPort: sport, DstPort: dport, Flags: flags},
		Payload: []byte(payload),
	}
	if _, err := p.Serialize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func udpPkt(t *testing.T, src, dst netip.Addr, sport, dport uint16, sec float64) *netpkt.Packet {
	t.Helper()
	p := &netpkt.Packet{
		Ts:   time.Unix(0, int64(sec*1e9)),
		Eth:  &netpkt.Ethernet{EtherType: netpkt.EtherTypeIPv4},
		IPv4: &netpkt.IPv4{TTL: 64, Protocol: netpkt.ProtoUDP, Src: src, Dst: dst},
		UDP:  &netpkt.UDP{SrcPort: sport, DstPort: dport},
	}
	if _, err := p.Serialize(); err != nil {
		t.Fatal(err)
	}
	return p
}

// handshake builds a complete TCP session A:1234 -> B:80 with FIN close.
func handshake(t *testing.T, start float64) []*netpkt.Packet {
	t.Helper()
	return []*netpkt.Packet{
		tcpPkt(t, hostA, hostB, 1234, 80, netpkt.FlagSYN, start, ""),
		tcpPkt(t, hostB, hostA, 80, 1234, netpkt.FlagSYN|netpkt.FlagACK, start+0.01, ""),
		tcpPkt(t, hostA, hostB, 1234, 80, netpkt.FlagACK, start+0.02, ""),
		tcpPkt(t, hostA, hostB, 1234, 80, netpkt.FlagACK|netpkt.FlagPSH, start+0.03, "GET /"),
		tcpPkt(t, hostB, hostA, 80, 1234, netpkt.FlagACK|netpkt.FlagPSH, start+0.04, "200 OK"),
		tcpPkt(t, hostA, hostB, 1234, 80, netpkt.FlagFIN|netpkt.FlagACK, start+0.05, ""),
		tcpPkt(t, hostB, hostA, 80, 1234, netpkt.FlagFIN|netpkt.FlagACK, start+0.06, ""),
		tcpPkt(t, hostA, hostB, 1234, 80, netpkt.FlagACK, start+0.07, ""),
	}
}

func TestUniflowsDirectionality(t *testing.T) {
	pkts := handshake(t, 0)
	flows := Uniflows(pkts, Options{})
	if len(flows) != 2 {
		t.Fatalf("got %d uniflows, want 2 (one per direction)", len(flows))
	}
	var fwd, rev *Uniflow
	for _, f := range flows {
		if f.Tuple.SrcPort == 1234 {
			fwd = f
		} else {
			rev = f
		}
	}
	if fwd == nil || rev == nil {
		t.Fatal("missing a direction")
	}
	if len(fwd.PacketIdx) != 5 || len(rev.PacketIdx) != 3 {
		t.Errorf("packet counts fwd=%d rev=%d, want 5/3", len(fwd.PacketIdx), len(rev.PacketIdx))
	}
	if fwd.Payload != 5 { // "GET /"
		t.Errorf("fwd payload = %d, want 5", fwd.Payload)
	}
}

func TestUniflowIdleTimeoutSplits(t *testing.T) {
	pkts := []*netpkt.Packet{
		udpPkt(t, hostA, hostB, 500, 53, 0),
		udpPkt(t, hostA, hostB, 500, 53, 1),
		udpPkt(t, hostA, hostB, 500, 53, 200), // beyond 64s idle
	}
	flows := Uniflows(pkts, Options{})
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2 after idle split", len(flows))
	}
	if len(flows[0].PacketIdx) != 2 || len(flows[1].PacketIdx) != 1 {
		t.Errorf("split sizes %d/%d, want 2/1", len(flows[0].PacketIdx), len(flows[1].PacketIdx))
	}
}

func TestUniflowCustomTimeout(t *testing.T) {
	pkts := []*netpkt.Packet{
		udpPkt(t, hostA, hostB, 500, 53, 0),
		udpPkt(t, hostA, hostB, 500, 53, 2),
	}
	flows := Uniflows(pkts, Options{IdleTimeout: time.Second})
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2 with 1s timeout", len(flows))
	}
}

func TestConnectionMergesDirections(t *testing.T) {
	pkts := handshake(t, 0)
	conns := Connections(pkts, Options{})
	if len(conns) != 1 {
		t.Fatalf("got %d connections, want 1", len(conns))
	}
	c := conns[0]
	if c.Tuple.SrcPort != 1234 || c.Tuple.DstPort != 80 {
		t.Errorf("originator should be A:1234 (first packet), got %v", c.Tuple)
	}
	if len(c.OrigIdx) != 5 || len(c.RespIdx) != 3 {
		t.Errorf("direction counts %d/%d, want 5/3", len(c.OrigIdx), len(c.RespIdx))
	}
	if c.State != StateSF {
		t.Errorf("state = %v, want SF (clean close)", c.State)
	}
	if c.OrigPayload != 5 || c.RespPayload != 6 {
		t.Errorf("payloads %d/%d, want 5/6", c.OrigPayload, c.RespPayload)
	}
	if got := c.Packets(); len(got) != 8 {
		t.Errorf("Packets() returned %d, want 8", len(got))
	}
}

func TestConnectionStateS0(t *testing.T) {
	pkts := []*netpkt.Packet{
		tcpPkt(t, hostA, hostB, 40000, 23, netpkt.FlagSYN, 0, ""),
		tcpPkt(t, hostA, hostB, 40000, 23, netpkt.FlagSYN, 1, ""),
	}
	conns := Connections(pkts, Options{})
	if len(conns) != 1 || conns[0].State != StateS0 {
		t.Fatalf("state = %v, want S0 for unanswered SYN", conns[0].State)
	}
}

func TestConnectionStateREJ(t *testing.T) {
	pkts := []*netpkt.Packet{
		tcpPkt(t, hostA, hostB, 40000, 23, netpkt.FlagSYN, 0, ""),
		tcpPkt(t, hostB, hostA, 23, 40000, netpkt.FlagRST|netpkt.FlagACK, 0.01, ""),
	}
	conns := Connections(pkts, Options{})
	if conns[0].State != StateREJ {
		t.Fatalf("state = %v, want REJ for SYN->RST", conns[0].State)
	}
}

func TestConnectionStateRSTO(t *testing.T) {
	pkts := []*netpkt.Packet{
		tcpPkt(t, hostA, hostB, 40000, 80, netpkt.FlagSYN, 0, ""),
		tcpPkt(t, hostB, hostA, 80, 40000, netpkt.FlagSYN|netpkt.FlagACK, 0.01, ""),
		tcpPkt(t, hostA, hostB, 40000, 80, netpkt.FlagRST, 0.02, ""),
	}
	conns := Connections(pkts, Options{})
	if conns[0].State != StateRSTO {
		t.Fatalf("state = %v, want RSTO", conns[0].State)
	}
}

func TestConnectionUDPIsOTH(t *testing.T) {
	pkts := []*netpkt.Packet{
		udpPkt(t, hostA, hostB, 500, 53, 0),
		udpPkt(t, hostB, hostA, 53, 500, 0.01),
	}
	conns := Connections(pkts, Options{})
	if len(conns) != 1 {
		t.Fatalf("got %d connections, want 1 (bidirectional UDP merges)", len(conns))
	}
	if conns[0].State != StateOTH {
		t.Errorf("state = %v, want OTH for UDP", conns[0].State)
	}
}

func TestConnectionsSkipNonIP(t *testing.T) {
	arp := &netpkt.Packet{
		Eth: &netpkt.Ethernet{},
		ARP: &netpkt.ARP{Op: 1, SenderIP: hostA, TargetIP: hostB},
	}
	if _, err := arp.Serialize(); err != nil {
		t.Fatal(err)
	}
	conns := Connections([]*netpkt.Packet{arp}, Options{})
	if len(conns) != 0 {
		t.Fatalf("ARP produced %d connections, want 0", len(conns))
	}
}

func TestConnectionsMultipleSessions(t *testing.T) {
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	// Second session with a different source port, overlapping in time.
	for _, p := range handshake(t, 0.005) {
		if p.TCP.SrcPort == 1234 {
			p.TCP.SrcPort = 1235
		} else {
			p.TCP.DstPort = 1235
		}
		if _, err := p.Serialize(); err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	// Interleave by time: Connections expects time order.
	sortByTime(pkts)
	conns := Connections(pkts, Options{})
	if len(conns) != 2 {
		t.Fatalf("got %d connections, want 2", len(conns))
	}
	for _, c := range conns {
		if c.State != StateSF {
			t.Errorf("state = %v, want SF", c.State)
		}
	}
}

func sortByTime(pkts []*netpkt.Packet) {
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Ts.Before(pkts[j-1].Ts); j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
}

func TestUniflowDeterministicOrder(t *testing.T) {
	pkts := handshake(t, 0)
	a := Uniflows(pkts, Options{})
	b := Uniflows(pkts, Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a {
		if a[i].Tuple != b[i].Tuple {
			t.Fatal("nondeterministic flow order")
		}
	}
}
