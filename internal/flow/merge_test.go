package flow

import (
	"net/netip"
	"reflect"
	"testing"

	"lumen/internal/netpkt"
)

// shardPackets partitions pkts by flow-hash lane, keeping each packet's
// global index so per-shard assemblers see the indices a global one
// would have used.
func shardPackets(pkts []*netpkt.Packet, k int) [][]int {
	lanes := make([][]int, k)
	for i, p := range pkts {
		lane := 0
		if ft, ok := p.Tuple(); ok && k > 1 {
			lane = int(ft.ShardHash() % uint64(k))
		}
		lanes[lane] = append(lanes[lane], i)
	}
	return lanes
}

// mixedTraffic interleaves several concurrent flows, including an idle
// split (same tuple reused past the timeout) and both directions of each
// connection.
func mixedTraffic(t *testing.T) []*netpkt.Packet {
	t.Helper()
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	for i := 0; i < 12; i++ {
		host := netip.AddrFrom4([4]byte{10, 0, 1, byte(10 + i)})
		sec := 0.5 + float64(i)*0.3
		pkts = append(pkts, udpPkt(t, host, hostB, uint16(6000+i), 53, sec))
		pkts = append(pkts, udpPkt(t, hostB, host, 53, uint16(6000+i), sec+0.01))
	}
	pkts = append(pkts, tcpPkt(t, hostA, hostB, 4321, 80, netpkt.FlagSYN, 2, ""))
	pkts = append(pkts, tcpPkt(t, hostB, hostA, 80, 4321, netpkt.FlagRST, 2.01, ""))
	pkts = append(pkts, handshake(t, 300)...) // same tuple, past idle: split
	pkts = append(pkts, udpPkt(t, hostA, hostB, 5000, 53, 301))
	return pkts
}

// TestShardedUniflowsMatchGlobal: feeding flow-hash partitions of the
// stream to independent assemblers and merging must reproduce the single
// assembler's output exactly, for every shard count.
func TestShardedUniflowsMatchGlobal(t *testing.T) {
	pkts := mixedTraffic(t)
	opts := Options{}
	_, want := driveUni(pkts, opts)
	for _, k := range []int{1, 2, 8} {
		parts := make([][]*Uniflow, k)
		for lane, idxs := range shardPackets(pkts, k) {
			a := NewUniflowAssembler(opts)
			var out []*Uniflow
			for _, i := range idxs {
				out = append(out, a.Add(i, pkts[i])...)
			}
			parts[lane] = append(out, a.Flush()...)
		}
		got := MergeUniflows(parts...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: sharded uniflow assembly diverges: %d flows vs %d", k, len(got), len(want))
		}
	}
}

// TestShardedConnectionsMatchGlobal is the bidirectional counterpart:
// both directions of a connection hash to one lane, so the per-lane conn
// logs merge to the global one bit-for-bit.
func TestShardedConnectionsMatchGlobal(t *testing.T) {
	pkts := mixedTraffic(t)
	opts := Options{}
	_, want := driveConn(pkts, opts)
	for _, k := range []int{1, 2, 8} {
		parts := make([][]*Connection, k)
		empty := 0
		for lane, idxs := range shardPackets(pkts, k) {
			if len(idxs) == 0 {
				empty++
			}
			a := NewConnAssembler(opts)
			var out []*Connection
			for _, i := range idxs {
				out = append(out, a.Add(i, pkts[i])...)
			}
			parts[lane] = append(out, a.Flush()...)
		}
		got := MergeConnections(parts...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: sharded connection assembly diverges: %d conns vs %d", k, len(got), len(want))
		}
		if k == 8 && empty == 0 {
			t.Log("note: all 8 lanes happened to receive packets")
		}
	}
}
