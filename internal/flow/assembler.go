package flow

import (
	"sort"
	"time"

	"lumen/internal/netpkt"
)

// UniflowAssembler groups a time-ordered packet stream into uniflows
// incrementally. Feed packets with Add — which returns flows evicted
// mid-stream once they have sat idle past the timeout — and call Flush at
// end of stream for the remainder. Eviction only changes *when* a flow is
// emitted, never its contents: a swept flow's next same-tuple packet (if
// any) arrives after a gap already exceeding the idle timeout, so batch
// assembly would have split there too. Driving the assembler over a whole
// capture therefore yields exactly the flows of Uniflows, and a chunked
// caller that offsets packet indices gets bit-identical output.
type UniflowAssembler struct {
	idle      time.Duration
	active    map[netpkt.FiveTuple]*Uniflow
	lastSweep time.Time
	started   bool
}

// NewUniflowAssembler returns an empty assembler with the given options.
func NewUniflowAssembler(opts Options) *UniflowAssembler {
	return &UniflowAssembler{idle: opts.idle(), active: make(map[netpkt.FiveTuple]*Uniflow)}
}

// Add ingests packet i (its index in the caller's stream, recorded in
// PacketIdx) and returns any flows evicted because they have been idle
// past the timeout, ordered by first-packet time then tuple. Packets
// without a five-tuple advance the idle sweep but join no flow. Packets
// must arrive in non-decreasing time order.
func (a *UniflowAssembler) Add(i int, p *netpkt.Packet) []*Uniflow {
	return a.AddSummary(i, p.Summary())
}

// AddSummary is Add over a packet summary — the form lazy packet views
// (and any other non-*Packet representation) feed the assembler in.
// Identical semantics: assembly only ever reads the summary fields.
func (a *UniflowAssembler) AddSummary(i int, s netpkt.PacketSummary) []*Uniflow {
	var out []*Uniflow
	if !a.started {
		a.started = true
		a.lastSweep = s.Ts
	} else if s.Ts.Sub(a.lastSweep) > a.idle {
		out = a.sweep(s.Ts)
		a.lastSweep = s.Ts
	}
	if !s.HasTuple {
		return out
	}
	ft := s.Tuple
	f := a.active[ft]
	if f != nil && s.Ts.Sub(f.Last) > a.idle {
		out = append(out, f)
		f = nil
	}
	if f == nil {
		f = &Uniflow{Tuple: ft, First: s.Ts}
		a.active[ft] = f
	}
	f.PacketIdx = append(f.PacketIdx, i)
	f.Last = s.Ts
	f.Bytes += s.Wire
	f.Payload += s.PayloadLen
	return out
}

// sweep evicts every active flow idle past the timeout. Evicted flows are
// removed from the active set, so Flush cannot emit them again.
func (a *UniflowAssembler) sweep(now time.Time) []*Uniflow {
	var out []*Uniflow
	for ft, f := range a.active {
		if now.Sub(f.Last) > a.idle {
			out = append(out, f)
			delete(a.active, ft)
		}
	}
	SortUniflows(out)
	return out
}

// Flush emits the remaining active flows (end of stream) and resets the
// assembler for reuse.
func (a *UniflowAssembler) Flush() []*Uniflow {
	out := make([]*Uniflow, 0, len(a.active))
	for ft, f := range a.active {
		out = append(out, f)
		delete(a.active, ft)
	}
	SortUniflows(out)
	a.started = false
	return out
}

// ConnAssembler is the bidirectional counterpart of UniflowAssembler:
// it groups a time-ordered packet stream into Zeek-style connections,
// evicting idle connections mid-stream with their conn state finalized.
type ConnAssembler struct {
	idle      time.Duration
	active    map[netpkt.FiveTuple]*Connection
	lastSweep time.Time
	started   bool
}

// NewConnAssembler returns an empty assembler with the given options.
func NewConnAssembler(opts Options) *ConnAssembler {
	return &ConnAssembler{idle: opts.idle(), active: make(map[netpkt.FiveTuple]*Connection)}
}

// Add ingests packet i and returns any connections evicted because they
// have been idle past the timeout, finalized (conn state assigned) and
// ordered by first-packet time then tuple.
func (a *ConnAssembler) Add(i int, p *netpkt.Packet) []*Connection {
	return a.AddSummary(i, p.Summary())
}

// AddSummary is Add over a packet summary (see
// UniflowAssembler.AddSummary); identical semantics.
func (a *ConnAssembler) AddSummary(i int, s netpkt.PacketSummary) []*Connection {
	var out []*Connection
	if !a.started {
		a.started = true
		a.lastSweep = s.Ts
	} else if s.Ts.Sub(a.lastSweep) > a.idle {
		out = a.sweep(s.Ts)
		a.lastSweep = s.Ts
	}
	if !s.HasTuple {
		return out
	}
	ft := s.Tuple
	key := ft.Canonical()
	c := a.active[key]
	if c != nil && s.Ts.Sub(c.Last) > a.idle {
		c.finalize()
		out = append(out, c)
		c = nil
	}
	if c == nil {
		c = &Connection{Tuple: ft, First: s.Ts} // first packet defines originator
		a.active[key] = c
	}
	c.add(i, s, ft)
	return out
}

// sweep evicts and finalizes every active connection idle past the
// timeout, removing it from the active set so Flush cannot double-emit.
func (a *ConnAssembler) sweep(now time.Time) []*Connection {
	var out []*Connection
	for key, c := range a.active {
		if now.Sub(c.Last) > a.idle {
			c.finalize()
			out = append(out, c)
			delete(a.active, key)
		}
	}
	SortConnections(out)
	return out
}

// Flush finalizes and emits the remaining active connections (end of
// stream) and resets the assembler for reuse.
func (a *ConnAssembler) Flush() []*Connection {
	out := make([]*Connection, 0, len(a.active))
	for key, c := range a.active {
		c.finalize()
		out = append(out, c)
		delete(a.active, key)
	}
	SortConnections(out)
	a.started = false
	return out
}

// add folds one packet summary into the connection. ft is the packet's
// oriented five-tuple; direction is derived by comparing it to the
// originator's.
func (c *Connection) add(i int, s netpkt.PacketSummary, ft netpkt.FiveTuple) {
	fromOrig := ft == c.Tuple
	if fromOrig {
		c.OrigIdx = append(c.OrigIdx, i)
		c.OrigBytes += s.Wire
		c.OrigPayload += s.PayloadLen
	} else {
		c.RespIdx = append(c.RespIdx, i)
		c.RespBytes += s.Wire
		c.RespPayload += s.PayloadLen
	}
	c.Last = s.Ts
	if s.HasTCP {
		fl := s.TCPFlags
		switch {
		case fromOrig && fl&netpkt.FlagSYN != 0 && fl&netpkt.FlagACK == 0:
			c.sawSYN = true
		case !fromOrig && fl&(netpkt.FlagSYN|netpkt.FlagACK) == netpkt.FlagSYN|netpkt.FlagACK:
			c.sawSYNACK = true
		}
		if fl&netpkt.FlagFIN != 0 {
			c.sawOrigFIN = c.sawOrigFIN || fromOrig
			c.sawRespFIN = c.sawRespFIN || !fromOrig
		}
		if fl&netpkt.FlagRST != 0 {
			c.sawOrigRST = c.sawOrigRST || fromOrig
			c.sawRespRST = c.sawRespRST || !fromOrig
		}
	}
}

// SortUniflows orders flows by first-packet time, then tuple — the
// canonical output order of batch assembly.
func SortUniflows(us []*Uniflow) {
	sort.Slice(us, func(a, b int) bool {
		if !us[a].First.Equal(us[b].First) {
			return us[a].First.Before(us[b].First)
		}
		return us[a].Tuple.String() < us[b].Tuple.String()
	})
}

// SortConnections orders connections by first-packet time, then tuple.
func SortConnections(cs []*Connection) {
	sort.Slice(cs, func(a, b int) bool {
		if !cs[a].First.Equal(cs[b].First) {
			return cs[a].First.Before(cs[b].First)
		}
		return cs[a].Tuple.String() < cs[b].Tuple.String()
	})
}
