package flow

import (
	"reflect"
	"testing"

	"lumen/internal/netpkt"
)

// driveUni feeds packets through an assembler in arbitrary chunking and
// returns the combined output in canonical order.
func driveUni(pkts []*netpkt.Packet, opts Options) (mid, all []*Uniflow) {
	a := NewUniflowAssembler(opts)
	for i, p := range pkts {
		mid = append(mid, a.Add(i, p)...)
	}
	all = append(append([]*Uniflow{}, mid...), a.Flush()...)
	SortUniflows(all)
	return mid, all
}

func driveConn(pkts []*netpkt.Packet, opts Options) (mid, all []*Connection) {
	a := NewConnAssembler(opts)
	for i, p := range pkts {
		mid = append(mid, a.Add(i, p)...)
	}
	all = append(append([]*Connection{}, mid...), a.Flush()...)
	SortConnections(all)
	return mid, all
}

// TestAssemblerMatchesBatchUniflows: incrementally driven assembly must
// equal the batch entry point exactly, including with idle splits.
func TestAssemblerMatchesBatchUniflows(t *testing.T) {
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	pkts = append(pkts, udpPkt(t, hostA, hostB, 5000, 53, 1))
	pkts = append(pkts, handshake(t, 200)...) // same tuple, past idle: split
	pkts = append(pkts, udpPkt(t, hostA, hostB, 5000, 53, 201))
	opts := Options{}
	batch := Uniflows(pkts, opts)
	_, all := driveUni(pkts, opts)
	if !reflect.DeepEqual(batch, all) {
		t.Fatalf("incremental assembly diverges from batch:\nbatch %d flows, incremental %d flows", len(batch), len(all))
	}
}

// TestAssemblerMatchesBatchConnections is the bidirectional counterpart,
// checking conn-state finalization survives mid-stream eviction.
func TestAssemblerMatchesBatchConnections(t *testing.T) {
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	// A connection that is RST-torn-down, then the port pair reused much
	// later — the eviction boundary case.
	pkts = append(pkts, tcpPkt(t, hostA, hostB, 4321, 80, netpkt.FlagSYN, 2, ""))
	pkts = append(pkts, tcpPkt(t, hostB, hostA, 80, 4321, netpkt.FlagRST, 2.01, ""))
	pkts = append(pkts, handshake(t, 300)...)
	pkts = append(pkts, tcpPkt(t, hostA, hostB, 4321, 80, netpkt.FlagSYN, 301, ""))
	opts := Options{}
	batch := Connections(pkts, opts)
	mid, all := driveConn(pkts, opts)
	if !reflect.DeepEqual(batch, all) {
		t.Fatalf("incremental assembly diverges from batch: batch %d conns, incremental %d", len(batch), len(all))
	}
	if len(mid) == 0 {
		t.Fatal("no connection was evicted mid-stream despite a gap past the idle timeout")
	}
	// Mid-stream evictions must arrive finalized: the full handshake with
	// FIN close is StateSF, the RST-rejected one StateREJ.
	states := map[ConnState]bool{}
	for _, c := range mid {
		states[c.State] = true
	}
	if !states[StateSF] {
		t.Error("evicted handshake connection not finalized to SF")
	}
	if !states[StateREJ] {
		t.Error("evicted RST connection not finalized to REJ")
	}
}

// TestAssemblerEvictsMidStream: an idle flow must be emitted by Add (not
// held until Flush), and must not be emitted twice.
func TestAssemblerEvictsMidStream(t *testing.T) {
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	// Unrelated traffic 200s later triggers the sweep.
	pkts = append(pkts, udpPkt(t, hostA, hostB, 9000, 123, 200))
	a := NewConnAssembler(Options{})
	var mid []*Connection
	for i, p := range pkts {
		mid = append(mid, a.Add(i, p)...)
	}
	if len(mid) != 1 {
		t.Fatalf("got %d mid-stream evictions, want 1", len(mid))
	}
	if got := len(mid[0].Packets()); got != 8 {
		t.Errorf("evicted connection has %d packets, want 8", got)
	}
	rest := a.Flush()
	if len(rest) != 1 {
		t.Fatalf("flush emitted %d connections, want 1 (the UDP flow)", len(rest))
	}
	if rest[0].Tuple.Proto != netpkt.ProtoUDP {
		t.Errorf("flush re-emitted an already-evicted connection: %v", rest[0].Tuple)
	}
}

// TestAssemblerSweepThrottle: the sweep runs at most once per idle
// interval, so tightly spaced packets do not rescan the table each time.
func TestAssemblerSweepThrottle(t *testing.T) {
	a := NewUniflowAssembler(Options{})
	// Packets 1s apart never advance past the 64s default idle window, so
	// nothing is ever evicted mid-stream even across many flows.
	var mid []*Uniflow
	i := 0
	for s := 0.0; s < 60; s++ {
		mid = append(mid, a.Add(i, udpPkt(t, hostA, hostB, uint16(6000+i), 53, s))...)
		i++
	}
	if len(mid) != 0 {
		t.Fatalf("sweep evicted %d flows inside the idle window", len(mid))
	}
	if got := len(a.Flush()); got != 60 {
		t.Fatalf("flush emitted %d flows, want 60", got)
	}
}

// TestAssemblerChunkedFeedEqualsWhole: splitting the same stream at every
// possible boundary cannot change the output (chunking only affects who
// calls Add, not what it sees).
func TestAssemblerChunkedFeedEqualsWhole(t *testing.T) {
	var pkts []*netpkt.Packet
	pkts = append(pkts, handshake(t, 0)...)
	pkts = append(pkts, handshake(t, 100)...)
	pkts = append(pkts, udpPkt(t, hostB, hostA, 53, 5353, 100.5))
	want := Connections(pkts, Options{})
	for cut := 1; cut < len(pkts); cut++ {
		a := NewConnAssembler(Options{})
		var out []*Connection
		for i, p := range pkts[:cut] {
			out = append(out, a.Add(i, p)...)
		}
		for j, p := range pkts[cut:] {
			out = append(out, a.Add(cut+j, p)...)
		}
		out = append(out, a.Flush()...)
		SortConnections(out)
		if !reflect.DeepEqual(want, out) {
			t.Fatalf("cut at %d diverges from batch", cut)
		}
	}
}

// TestAssemblerFlushResets: an assembler is reusable after Flush.
func TestAssemblerFlushResets(t *testing.T) {
	a := NewUniflowAssembler(Options{})
	pkts := handshake(t, 0)
	for i, p := range pkts {
		a.Add(i, p)
	}
	first := a.Flush()
	for i, p := range pkts {
		a.Add(i, p)
	}
	second := a.Flush()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("assembler not reusable after Flush")
	}
}
