package flow

// Per-shard assembly: when a packet stream is partitioned by flow key
// (every packet of a flow — both directions — feeds the same assembler),
// each assembler observes exactly the subsequence of packets its flows
// would have contributed to a single global assembler, in the same
// relative order and with the same timestamps and global indices. Flow
// splitting depends only on same-tuple packet gaps and eviction never
// alters a flow's contents (see Assembler docs), so the union of the
// shards' flows is the same multiset a single assembler produces. The
// merge helpers below restore the canonical global order, making
// sharded assembly bit-identical to unsharded.

// MergeUniflows concatenates per-shard uniflow slices and restores the
// canonical (first-packet time, tuple) order.
func MergeUniflows(parts ...[]*Uniflow) []*Uniflow {
	var out []*Uniflow
	for _, p := range parts {
		out = append(out, p...)
	}
	SortUniflows(out)
	return out
}

// MergeConnections is MergeUniflows for bidirectional connections.
func MergeConnections(parts ...[]*Connection) []*Connection {
	var out []*Connection
	for _, p := range parts {
		out = append(out, p...)
	}
	SortConnections(out)
	return out
}
