package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// KMeans clusters rows into K groups by Lloyd's algorithm with k-means++
// initialization. It backs GMM initialization and Nyström landmark picking.
type KMeans struct {
	// K is the number of clusters; 0 means 8.
	K int
	// MaxIter bounds Lloyd iterations; 0 means 50.
	MaxIter int
	// Seed drives initialization.
	Seed int64

	// Centers holds the fitted centroids.
	Centers [][]float64
}

func (k *KMeans) kval() int {
	if k.K == 0 {
		return 8
	}
	return k.K
}

// assignRows fills out[i] with the nearest-center index for each row.
// Rows split across the worker pool; each element is written by exactly
// one goroutine scanning centers in index order with a strict <, so the
// result is bit-identical for any worker count.
func assignRows(X [][]float64, centers [][]float64, out []int) {
	linalg.ParallelRows(len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := X[i]
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := SqDist(row, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			out[i] = best
		}
	})
}

// Fit computes the centroids. When K exceeds the number of rows the extra
// centers duplicate data points.
func (k *KMeans) Fit(X [][]float64) error {
	if _, err := checkXY(X, nil); err != nil {
		return err
	}
	kk := k.kval()
	rng := NewRNG(k.Seed)
	k.Centers = kmeansPlusPlus(X, kk, rng)
	maxIter := k.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	assign := make([]int, len(X))
	scratch := make([]int, len(X))
	for iter := 0; iter < maxIter; iter++ {
		assignRows(X, k.Centers, scratch)
		changed := false
		for i, c := range scratch {
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]float64, len(k.Centers))
		sums := make([][]float64, len(k.Centers))
		for c := range sums {
			sums[c] = make([]float64, len(X[0]))
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range k.Centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				k.Centers[c] = append([]float64(nil), X[rng.Intn(len(X))]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= counts[c]
			}
			k.Centers[c] = sums[c]
		}
	}
	return nil
}

// Assign returns the nearest-center index per row.
func (k *KMeans) Assign(X [][]float64) []int {
	out := make([]int, len(X))
	assignRows(X, k.Centers, out)
	return out
}

// kmeansPlusPlus seeds k centers. The min-distance table is maintained
// incrementally — each round folds only the newest center in with
// dist[i] = min(dist[i], SqDist(row, newest)), which is value-identical
// to recomputing the minimum over all centers (min is order-independent)
// at a k-fold lower cost. The fold parallelizes over rows; the sampling
// weights are summed serially in row order.
func kmeansPlusPlus(X [][]float64, k int, rng *RNG) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
	dist := make([]float64, len(X))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for {
		newest := centers[len(centers)-1]
		linalg.ParallelRows(len(X), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := SqDist(X[i], newest); d < dist[i] {
					dist[i] = d
				}
			}
		})
		if len(centers) >= k {
			break
		}
		var total float64
		for _, d := range dist {
			total += d
		}
		if total == 0 {
			centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dist {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), X[idx]...))
	}
	return centers
}
