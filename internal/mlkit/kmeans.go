package mlkit

import "math"

// KMeans clusters rows into K groups by Lloyd's algorithm with k-means++
// initialization. It backs GMM initialization and Nyström landmark picking.
type KMeans struct {
	// K is the number of clusters; 0 means 8.
	K int
	// MaxIter bounds Lloyd iterations; 0 means 50.
	MaxIter int
	// Seed drives initialization.
	Seed int64

	// Centers holds the fitted centroids.
	Centers [][]float64
}

func (k *KMeans) kval() int {
	if k.K == 0 {
		return 8
	}
	return k.K
}

// Fit computes the centroids. When K exceeds the number of rows the extra
// centers duplicate data points.
func (k *KMeans) Fit(X [][]float64) error {
	if _, err := checkXY(X, nil); err != nil {
		return err
	}
	kk := k.kval()
	rng := NewRNG(k.Seed)
	k.Centers = kmeansPlusPlus(X, kk, rng)
	maxIter := k.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	assign := make([]int, len(X))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, row := range X {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range k.Centers {
				if d := SqDist(row, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]float64, len(k.Centers))
		sums := make([][]float64, len(k.Centers))
		for c := range sums {
			sums[c] = make([]float64, len(X[0]))
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := range k.Centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				k.Centers[c] = append([]float64(nil), X[rng.Intn(len(X))]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= counts[c]
			}
			k.Centers[c] = sums[c]
		}
	}
	return nil
}

// Assign returns the nearest-center index per row.
func (k *KMeans) Assign(X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range k.Centers {
			if d := SqDist(row, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		out[i] = best
	}
	return out
}

func kmeansPlusPlus(X [][]float64, k int, rng *RNG) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
	dist := make([]float64, len(X))
	for len(centers) < k {
		var total float64
		for i, row := range X {
			d := math.Inf(1)
			for _, c := range centers {
				if dd := SqDist(row, c); dd < d {
					d = dd
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dist {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), X[idx]...))
	}
	return centers
}
