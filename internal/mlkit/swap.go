package mlkit

import (
	"fmt"
	"math"
	"sync"
)

// SwapStats accumulates the shadow-scoring divergence observed between
// the active model and a swap candidate: how often their predictions
// disagree and, when both expose class scores, how far those scores
// drift. One instance covers one shadow phase; Promote and Rollback
// return the final tally and reset it.
type SwapStats struct {
	// Chunks counts the Predict calls (one per streamed chunk) observed
	// while the shadow was attached.
	Chunks int
	// Rows counts the scored feature rows.
	Rows int
	// Disagree counts the rows where active and shadow predicted
	// different classes.
	Disagree int
	// ScoreRows counts the rows with comparable class-1 scores (both
	// models implement ProbClassifier); AbsScoreSum is the accumulated
	// |active - shadow| over them.
	ScoreRows   int
	AbsScoreSum float64
}

// DisagreeFrac returns the fraction of rows where the models disagreed
// (0 when nothing was scored).
func (s SwapStats) DisagreeFrac() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Disagree) / float64(s.Rows)
}

// ScoreMAD returns the mean absolute difference between the two models'
// class-1 scores (0 when either model exposes no scores).
func (s SwapStats) ScoreMAD() float64 {
	if s.ScoreRows == 0 {
		return 0
	}
	return s.AbsScoreSum / float64(s.ScoreRows)
}

// String renders the tally in the form operators see in swap reports.
func (s SwapStats) String() string {
	return fmt.Sprintf("chunks=%d rows=%d disagree=%.4f score_mad=%.6f",
		s.Chunks, s.Rows, s.DisagreeFrac(), s.ScoreMAD())
}

// SwapHandle is a swap-safe model slot: a Classifier that delegates to an
// interchangeable active model and supports atomic hot swap with shadow
// scoring. Install one behind a pipeline's train op (core.ReplaceModel)
// and the pipeline keeps scoring through the handle while the model
// behind it is retargeted:
//
//	StartShadow(next)  attach a candidate; every Predict now also scores
//	                   it and accumulates divergence, while verdicts keep
//	                   coming from the active model only
//	Promote()          the candidate becomes active (generation += 1)
//	Rollback()         the candidate is discarded (generation unchanged)
//
// All methods are mutex-guarded, so control-plane calls may come from a
// different goroutine than the scoring path. For exactly-one-model-per-
// chunk verdict attribution, issue the control calls between chunks on
// the scoring goroutine itself — core.StreamHooks.AfterChunk provides
// precisely that execution point.
type SwapHandle struct {
	mu     sync.Mutex
	active Classifier
	shadow Classifier
	gen    int
	stats  SwapStats
}

// NewSwapHandle wraps a fitted classifier as generation 1.
func NewSwapHandle(active Classifier) *SwapHandle {
	return &SwapHandle{active: active, gen: 1}
}

// Fit delegates to the active model. Resident pipelines never retrain
// through the handle, but Fit keeps SwapHandle a full Classifier.
func (h *SwapHandle) Fit(X [][]float64, y []int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active.Fit(X, y)
}

// Predict scores X with the active model. While a shadow is attached it
// also scores X with the candidate and folds the divergence into the
// handle's SwapStats — the returned verdicts always come from the active
// model alone.
func (h *SwapHandle) Predict(X [][]float64) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	preds := h.active.Predict(X)
	if h.shadow == nil || len(X) == 0 {
		if h.shadow != nil {
			h.stats.Chunks++
		}
		return preds
	}
	sp := h.shadow.Predict(X)
	h.stats.Chunks++
	h.stats.Rows += len(preds)
	for i := range preds {
		if i < len(sp) && preds[i] != sp[i] {
			h.stats.Disagree++
		}
	}
	pa, okA := h.active.(ProbClassifier)
	pb, okB := h.shadow.(ProbClassifier)
	if okA && okB {
		sa, sb := pa.Proba(X), pb.Proba(X)
		for i := range sa {
			if i < len(sb) {
				h.stats.ScoreRows++
				h.stats.AbsScoreSum += math.Abs(sa[i] - sb[i])
			}
		}
	}
	return preds
}

// Proba returns the active model's class-1 scores, or nil when the
// active model exposes none.
func (h *SwapHandle) Proba(X [][]float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if pc, ok := h.active.(ProbClassifier); ok {
		return pc.Proba(X)
	}
	return nil
}

// Generation returns the active model's generation: 1 for the initially
// installed model, incremented by every Promote.
func (h *SwapHandle) Generation() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// Shadowing reports whether a swap candidate is currently attached.
func (h *SwapHandle) Shadowing() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shadow != nil
}

// Stats returns the divergence accumulated during the current shadow
// phase (zeroes when no shadow is attached).
func (h *SwapHandle) Stats() SwapStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Active returns the classifier currently serving verdicts.
func (h *SwapHandle) Active() Classifier {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active
}

// StartShadow attaches a fitted candidate for shadow scoring. It fails
// when a swap is already in progress — finish it with Promote or
// Rollback first.
func (h *SwapHandle) StartShadow(next Classifier) error {
	if next == nil {
		return fmt.Errorf("mlkit: StartShadow: nil candidate")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shadow != nil {
		return fmt.Errorf("mlkit: StartShadow: a swap is already in progress (generation %d)", h.gen)
	}
	h.shadow = next
	h.stats = SwapStats{}
	return nil
}

// Promote makes the shadow candidate the active model, increments the
// generation, and returns the shadow phase's final divergence tally.
func (h *SwapHandle) Promote() (SwapStats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shadow == nil {
		return SwapStats{}, fmt.Errorf("mlkit: Promote: no swap in progress")
	}
	h.active, h.shadow = h.shadow, nil
	h.gen++
	st := h.stats
	h.stats = SwapStats{}
	return st, nil
}

// Rollback discards the shadow candidate, keeps the active model and
// generation, and returns the shadow phase's final divergence tally.
func (h *SwapHandle) Rollback() (SwapStats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shadow == nil {
		return SwapStats{}, fmt.Errorf("mlkit: Rollback: no swap in progress")
	}
	h.shadow = nil
	st := h.stats
	h.stats = SwapStats{}
	return st, nil
}
