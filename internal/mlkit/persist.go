package mlkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Model persistence: the paper's template (Fig. 4) ends with a train op
// whose output is a save_path. SaveModel/LoadModel serialize the fitted
// tree-family models and naive Bayes — the classifiers operators deploy —
// as versioned JSON. (Network-based models retrain in seconds here, so
// persistence targets the deployable family.)

// persistEnvelope wraps a serialized model with its type tag.
type persistEnvelope struct {
	Version int             `json:"version"`
	Type    string          `json:"type"`
	Data    json.RawMessage `json:"data"`
}

// treeDTO serializes a fitted DecisionTree.
type treeDTO struct {
	Nodes   []nodeDTO `json:"nodes"`
	Classes int       `json:"classes"`
}

type nodeDTO struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      int32     `json:"l"`
	Right     int32     `json:"r"`
	Proba     []float64 `json:"p,omitempty"`
}

func (t *DecisionTree) dto() treeDTO {
	out := treeDTO{Classes: t.classes, Nodes: make([]nodeDTO, len(t.nodes))}
	for i, n := range t.nodes {
		out.Nodes[i] = nodeDTO{Feature: n.feature, Threshold: n.threshold, Left: n.left, Right: n.right, Proba: n.proba}
	}
	return out
}

func (t *DecisionTree) fromDTO(d treeDTO) {
	t.classes = d.Classes
	t.nodes = make([]treeNode, len(d.Nodes))
	for i, n := range d.Nodes {
		t.nodes[i] = treeNode{feature: n.Feature, threshold: n.Threshold, left: n.Left, right: n.Right, proba: n.Proba}
	}
}

// forestDTO serializes a fitted RandomForest.
type forestDTO struct {
	Trees   []treeDTO `json:"trees"`
	Classes int       `json:"classes"`
}

// nbDTO serializes a fitted GaussianNB.
type nbDTO struct {
	Classes  int         `json:"classes"`
	Priors   []float64   `json:"priors"`
	Means    [][]float64 `json:"means"`
	Vars     [][]float64 `json:"vars"`
	Presence []bool      `json:"presence"`
}

// MarshalModel serializes a supported fitted classifier to JSON.
func MarshalModel(c Classifier) ([]byte, error) {
	var env persistEnvelope
	env.Version = 1
	var err error
	switch m := c.(type) {
	case *DecisionTree:
		env.Type = "decision_tree"
		env.Data, err = json.Marshal(m.dto())
	case *RandomForest:
		env.Type = "random_forest"
		dto := forestDTO{Classes: m.classes}
		for _, tr := range m.trees {
			dto.Trees = append(dto.Trees, tr.dto())
		}
		env.Data, err = json.Marshal(dto)
	case *GaussianNB:
		env.Type = "gaussian_nb"
		// Infinities (empty-class priors) are not valid JSON; encode as
		// a very negative sentinel restored on load.
		pri := append([]float64(nil), m.priors...)
		for i, p := range pri {
			if math.IsInf(p, -1) || p < -1e300 {
				pri[i] = -1e300
			}
		}
		env.Data, err = json.Marshal(nbDTO{
			Classes: m.classes, Priors: pri, Means: m.means, Vars: m.vars, Presence: m.presence,
		})
	default:
		return nil, fmt.Errorf("mlkit: MarshalModel: unsupported classifier %T", c)
	}
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(env, "", " ")
}

// UnmarshalModel reconstructs a classifier serialized by MarshalModel.
func UnmarshalModel(data []byte) (Classifier, error) {
	var env persistEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("mlkit: UnmarshalModel: %w", err)
	}
	if env.Version != 1 {
		return nil, fmt.Errorf("mlkit: UnmarshalModel: unsupported version %d", env.Version)
	}
	switch env.Type {
	case "decision_tree":
		var dto treeDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, err
		}
		t := &DecisionTree{}
		t.fromDTO(dto)
		return t, nil
	case "random_forest":
		var dto forestDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, err
		}
		f := &RandomForest{classes: dto.Classes, NTrees: len(dto.Trees)}
		for _, td := range dto.Trees {
			t := &DecisionTree{}
			t.fromDTO(td)
			f.trees = append(f.trees, t)
		}
		return f, nil
	case "gaussian_nb":
		var dto nbDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, err
		}
		g := &GaussianNB{classes: dto.Classes, priors: dto.Priors, means: dto.Means, vars: dto.Vars, presence: dto.Presence}
		for i, p := range g.priors {
			if p <= -1e300 {
				g.priors[i] = math.Inf(-1)
			}
		}
		return g, nil
	}
	return nil, fmt.Errorf("mlkit: UnmarshalModel: unknown type %q", env.Type)
}

// SaveModel writes a supported fitted classifier to path.
func SaveModel(path string, c Classifier) error {
	data, err := MarshalModel(c)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a classifier written by SaveModel.
func LoadModel(path string) (Classifier, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalModel(data)
}
