package mlkit

import "math"

// PCA computes a principal-component basis via Jacobi eigendecomposition
// of the covariance matrix. As a Detector it scores rows by squared
// reconstruction residual outside the top-K subspace — the classical
// subspace anomaly detector that deep-autoencoder IDS papers (e.g. the
// early-detection model A12) benchmark against.
type PCA struct {
	// K retained components; 0 means enough to explain 95% variance.
	K int

	mean   []float64
	comps  [][]float64 // [k][d] principal axes
	eigval []float64
}

// Fit learns the mean and principal axes of X.
func (p *PCA) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	n := float64(len(X))
	p.mean = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			p.mean[j] += v
		}
	}
	for j := range p.mean {
		p.mean[j] /= n
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range X {
		for a := 0; a < d; a++ {
			da := row[a] - p.mean[a]
			for bI := a; bI < d; bI++ {
				cov[a][bI] += da * (row[bI] - p.mean[bI])
			}
		}
	}
	for a := 0; a < d; a++ {
		for bI := a; bI < d; bI++ {
			cov[a][bI] /= n
			cov[bI][a] = cov[a][bI]
		}
	}
	vals, vecs := jacobiEigen(cov, 100)
	// Order components by decreasing eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < d; i++ { // insertion sort, d is small
		for j := i; j > 0 && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	k := p.K
	if k <= 0 {
		var acc float64
		for _, i := range idx {
			if vals[i] <= 0 {
				break
			}
			acc += vals[i]
			k++
			if total > 0 && acc/total >= 0.95 {
				break
			}
		}
		if k == 0 {
			k = 1
		}
	}
	if k > d {
		k = d
	}
	p.comps = make([][]float64, k)
	p.eigval = make([]float64, k)
	for c := 0; c < k; c++ {
		p.eigval[c] = vals[idx[c]]
		axis := make([]float64, d)
		for r := 0; r < d; r++ {
			axis[r] = vecs[r][idx[c]]
		}
		p.comps[c] = axis
	}
	return nil
}

// Components reports the number of retained components after Fit.
func (p *PCA) Components() int { return len(p.comps) }

// Transform projects rows onto the retained components.
func (p *PCA) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		cent := make([]float64, len(row))
		for j := range row {
			cent[j] = row[j] - p.mean[j]
		}
		proj := make([]float64, len(p.comps))
		for c, axis := range p.comps {
			proj[c] = Dot(axis, cent)
		}
		out[i] = proj
	}
	return out
}

// Score returns the squared reconstruction residual per row (distance
// from the principal subspace); higher means more anomalous.
func (p *PCA) Score(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		cent := make([]float64, len(row))
		for j := range row {
			cent[j] = row[j] - p.mean[j]
		}
		var norm2 float64
		for _, v := range cent {
			norm2 += v * v
		}
		var proj2 float64
		for _, axis := range p.comps {
			pr := Dot(axis, cent)
			proj2 += pr * pr
		}
		res := norm2 - proj2
		if res < 0 {
			res = 0
		}
		out[i] = math.Sqrt(res)
	}
	return out
}
