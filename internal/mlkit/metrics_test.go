package mlkit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	yTrue := []int{1, 1, 0, 0, 1, 0}
	yPred := []int{1, 0, 0, 1, 1, 0}
	c := NewConfusion(yTrue, yPred)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Errorf("got %+v, want TP=2 FN=1 FP=1 TN=2", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v, want 2/3", got)
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %v, want 4/6", got)
	}
}

func TestMetricsDegenerateCases(t *testing.T) {
	if p := Precision([]int{0, 0}, []int{0, 0}); p != 0 {
		t.Errorf("precision with no predictions = %v, want 0", p)
	}
	if r := Recall([]int{0, 0}, []int{1, 1}); r != 0 {
		t.Errorf("recall with no positives = %v, want 0", r)
	}
	if f := F1Score([]int{0}, []int{0}); f != 0 {
		t.Errorf("F1 degenerate = %v, want 0", f)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	y := []int{0, 0, 1, 1}
	if a := AUC(y, []float64{0.1, 0.2, 0.8, 0.9}); a != 1 {
		t.Errorf("perfect AUC = %v, want 1", a)
	}
	if a := AUC(y, []float64{0.9, 0.8, 0.2, 0.1}); a != 0 {
		t.Errorf("inverted AUC = %v, want 0", a)
	}
	if a := AUC(y, []float64{0.5, 0.5, 0.5, 0.5}); a != 0.5 {
		t.Errorf("all-tied AUC = %v, want 0.5", a)
	}
	if a := AUC([]int{1, 1}, []float64{0.1, 0.2}); a != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", a)
	}
}

func TestAUCPropertyInRange(t *testing.T) {
	f := func(scores []float64, labels []bool) bool {
		n := len(scores)
		if len(labels) < n {
			n = len(labels)
		}
		if n == 0 {
			return true
		}
		y := make([]int, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				return true // skip pathological float inputs
			}
			if labels[i] {
				y[i] = 1
			}
		}
		a := AUC(y, scores[:n])
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalancedAccuracy(t *testing.T) {
	// Degenerate predictor that always says 0 on imbalanced data.
	yTrue := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	yPred := make([]int, 10)
	if acc := Accuracy(yTrue, yPred); acc != 0.9 {
		t.Fatalf("plain accuracy = %v, want 0.9", acc)
	}
	if b := BalancedAccuracy(yTrue, yPred); b != 0.5 {
		t.Errorf("balanced accuracy = %v, want 0.5", b)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Input must not be reordered.
	xs2 := []float64{5, 1, 3}
	Quantile(xs2, 0.5)
	if xs2[0] != 5 || xs2[1] != 1 || xs2[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestPearsonCorr(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if r := PearsonCorr(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("corr = %v, want 1", r)
	}
	c := []float64{8, 6, 4, 2}
	if r := PearsonCorr(a, c); math.Abs(r+1) > 1e-12 {
		t.Errorf("corr = %v, want -1", r)
	}
	flat := []float64{3, 3, 3, 3}
	if r := PearsonCorr(a, flat); r != 0 {
		t.Errorf("corr with constant = %v, want 0", r)
	}
}

func TestLogSumExpStability(t *testing.T) {
	got := logSumExp([]float64{-1000, -1000})
	want := -1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("logSumExp = %v, want %v", got, want)
	}
	if !math.IsInf(logSumExp(nil), -1) {
		t.Error("logSumExp(nil) should be -Inf")
	}
}
