package mlkit

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the numeric hot paths the benchsuite spends its
// wall time in: neural-net training (MLP/autoencoder, and through them
// KitNET), KNN prediction, GMM scoring and the Nyström feature map.
// `make bench` runs these with a fixed -benchtime and records the
// results in BENCH_PR3.json so speedups are tracked across PRs.

func benchMatrix(n, d int, seed int64) [][]float64 {
	rng := NewRNG(seed)
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
	}
	return X
}

func benchLabels(X [][]float64) []int {
	y := make([]int, len(X))
	for i, row := range X {
		if row[0]+row[1] > 1 {
			y[i] = 1
		}
	}
	return y
}

func BenchmarkMLPFit(b *testing.B) {
	X := benchMatrix(512, 32, 1)
	y := benchLabels(X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &MLPClassifier{Hidden: []int{32}, Epochs: 5, Seed: 1}
		if err := c.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoencoderFit(b *testing.B) {
	X := benchMatrix(512, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := &Autoencoder{Hidden: []int{16}, Epochs: 5, Seed: 1}
		if err := a.Fit(X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoencoderScore(b *testing.B) {
	X := benchMatrix(2048, 32, 3)
	a := &Autoencoder{Hidden: []int{16}, Epochs: 2, Seed: 1}
	if err := a.Fit(X[:256]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Score(X)
	}
}

// benchBlobs draws rows from a mixture of nc axis-aligned Gaussians with
// shared centers — the clustered shape of real flow-feature data (most
// traffic is repetitive), unlike uniform noise which is the worst case
// for any neighbour pruning.
func benchBlobs(n, d, nc int, rng *RNG, centers []float64) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		c := rng.Intn(nc)
		row := make([]float64, d)
		for j := range row {
			row[j] = centers[c*d+j] + rng.NormFloat64()*0.05
		}
		X[i] = row
	}
	return X
}

func BenchmarkKNNPredict(b *testing.B) {
	for _, d := range []int{8, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			const nc = 16
			rng := NewRNG(4)
			centers := make([]float64, nc*d)
			for i := range centers {
				centers[i] = rng.Float64()
			}
			X := benchBlobs(4096, d, nc, rng, centers)
			y := benchLabels(X)
			k := &KNN{K: 5, MaxTrain: -1}
			if err := k.Fit(X, y); err != nil {
				b.Fatal(err)
			}
			Q := benchBlobs(512, d, nc, rng, centers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = k.Predict(Q)
			}
		})
	}
}

func BenchmarkKitNETFit(b *testing.B) {
	X := benchMatrix(512, 24, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := &KitNET{Epochs: 2, Seed: 1}
		if err := k.Fit(X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGMMScore(b *testing.B) {
	X := benchMatrix(4096, 16, 7)
	g := &GMM{K: 4, Seed: 1, MaxIter: 10}
	if err := g.Fit(X[:512]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Score(X)
	}
}

func BenchmarkGMMFit(b *testing.B) {
	X := benchMatrix(1024, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &GMM{K: 4, Seed: 1, MaxIter: 10}
		if err := g.Fit(X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNystromTransform(b *testing.B) {
	X := benchMatrix(2048, 16, 9)
	ny := &NystromMap{M: 48, Seed: 1}
	if err := ny.Fit(X[:512]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ny.Transform(X)
	}
}

func BenchmarkKMeansFit(b *testing.B) {
	X := benchMatrix(2048, 16, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km := &KMeans{K: 8, Seed: 1, MaxIter: 15}
		if err := km.Fit(X); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearPredict(b *testing.B) {
	X := benchMatrix(8192, 32, 11)
	y := benchLabels(X)
	s := &LinearSVM{Seed: 1, Epochs: 3}
	if err := s.Fit(X[:512], y[:512]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Proba(X)
	}
}
