package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// LogisticRegression is a binary logistic classifier trained by SGD with
// L2 regularization. It broadens the AutoML search space and the grid
// search examples; inputs should be scaled.
type LogisticRegression struct {
	// LR is the learning rate; 0 means 0.1.
	LR float64
	// Lambda is the L2 penalty; 0 means 1e-4.
	Lambda float64
	// Epochs over the data; 0 means 20.
	Epochs int
	// Seed drives sampling order.
	Seed int64

	w   []float64
	b   float64
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; the reported
// loss is the epoch's mean log-loss over the sampled points.
func (l *LogisticRegression) SetFitObserver(o FitObserver) { l.obs = o }

// Fit trains on labels in {0,1}.
func (l *LogisticRegression) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	lr := l.LR
	if lr == 0 {
		lr = 0.1
	}
	lambda := l.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	epochs := l.Epochs
	if epochs == 0 {
		epochs = 20
	}
	l.w = make([]float64, d)
	l.b = 0
	rng := NewRNG(l.Seed)
	n := len(X)
	for e := 0; e < epochs; e++ {
		step := lr / (1 + 0.1*float64(e)) // simple decay
		var logLoss float64
		for k := 0; k < n; k++ {
			i := rng.Intn(n)
			p := sigmoid(Dot(l.w, X[i]) + l.b)
			t := 0.0
			if y[i] != 0 {
				t = 1
			}
			g := p - t
			if l.obs != nil {
				logLoss += crossEntropy(p, t)
			}
			for j, v := range X[i] {
				l.w[j] -= step * (g*v + lambda*l.w[j])
			}
			l.b -= step * g
		}
		if l.obs != nil {
			l.obs.FitEpoch("logistic", e, logLoss/float64(n))
		}
	}
	return nil
}

// crossEntropy is the log-loss of predicting probability p for target t,
// clamped away from 0/1 so a saturated sigmoid stays finite.
func crossEntropy(p, t float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	} else if p > 1-eps {
		p = 1 - eps
	}
	if t != 0 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Predict thresholds the probability at 0.5.
func (l *LogisticRegression) Predict(X [][]float64) []int {
	p := l.Proba(X)
	out := make([]int, len(p))
	for i, v := range p {
		if v > 0.5 {
			out[i] = 1
		}
	}
	return out
}

// Proba returns P(y=1|x) per row. Rows split across the worker pool;
// each element is written by exactly one goroutine, so results are
// bit-identical for any worker count.
func (l *LogisticRegression) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	linalg.ParallelRows(len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = sigmoid(linalg.Dot(l.w, X[i]) + l.b)
		}
	})
	return out
}
