// Package mlkit is a self-contained machine-learning library implemented on
// the Go standard library only. It provides the model families required by
// the 16 anomaly-detection algorithms Lumen ports: decision trees, random
// forests, naive Bayes, k-nearest neighbours, linear and one-class SVMs,
// Gaussian mixtures, k-means, Nyström kernel approximation, feed-forward
// autoencoders, Kitsune's KitNET ensemble, and a small AutoML search.
//
// Two interfaces split the supervised and unsupervised worlds:
//
//	Classifier: Fit(X, y) then Predict(X) -> class labels
//	Detector:   Fit(X)    then Score(X)   -> anomaly scores (higher = worse)
//
// All models accept row-major [][]float64 feature matrices. Randomized
// models take an explicit seed so results are reproducible.
package mlkit

import (
	"errors"
	"fmt"
)

// Classifier is a supervised classifier over dense feature vectors.
// Labels are small non-negative ints; binary tasks use 0 (benign) and
// 1 (malicious).
type Classifier interface {
	// Fit trains the classifier. X is row-major, len(y) == len(X).
	Fit(X [][]float64, y []int) error
	// Predict returns one label per row of X.
	Predict(X [][]float64) []int
}

// ProbClassifier is a Classifier that can also report class-1 scores,
// enabling threshold sweeps (AUC) on supervised models.
type ProbClassifier interface {
	Classifier
	// Proba returns, for each row, the score of the positive class in [0,1].
	Proba(X [][]float64) []float64
}

// Detector is an unsupervised anomaly detector. Fit learns a model of
// "normal" data; Score returns a value per row where higher means more
// anomalous.
type Detector interface {
	Fit(X [][]float64) error
	Score(X [][]float64) []float64
}

// Thresholded wraps a Detector and a score threshold into a Classifier:
// scores strictly above the threshold predict class 1.
type Thresholded struct {
	Detector  Detector
	Threshold float64
	// Quantile, when in (0,1], recomputes Threshold at Fit time as that
	// quantile of the training scores (e.g. 0.98 tolerates 2% training
	// outliers). When 0 the fixed Threshold is used as-is.
	Quantile float64

	// q2 streams the training-score quantile for PartialFit, replacing
	// Fit's exact sort without retaining scores.
	q2 *P2Quantile
}

// Fit fits the wrapped detector on the benign subset of X (rows with y==0),
// falling back to all rows if none are labelled benign, then calibrates the
// threshold from training scores when Quantile is set.
func (t *Thresholded) Fit(X [][]float64, y []int) error {
	benign := make([][]float64, 0, len(X))
	for i, row := range X {
		if y[i] == 0 {
			benign = append(benign, row)
		}
	}
	if len(benign) == 0 {
		benign = X
	}
	if err := t.Detector.Fit(benign); err != nil {
		return err
	}
	if t.Quantile > 0 {
		scores := t.Detector.Score(benign)
		t.Threshold = Quantile(scores, t.Quantile)
		t.q2 = nil // a fresh batch fit restarts any streaming calibration
	}
	return nil
}

// Predict classifies rows whose anomaly score exceeds the threshold as 1.
func (t *Thresholded) Predict(X [][]float64) []int {
	scores := t.Detector.Score(X)
	out := make([]int, len(scores))
	for i, s := range scores {
		if s > t.Threshold {
			out[i] = 1
		}
	}
	return out
}

// Proba maps scores monotonically into [0,1] via score/(score+threshold),
// which preserves AUC ordering.
func (t *Thresholded) Proba(X [][]float64) []float64 {
	scores := t.Detector.Score(X)
	out := make([]float64, len(scores))
	for i, s := range scores {
		if s < 0 {
			s = 0
		}
		d := s + t.Threshold
		if d <= 0 {
			out[i] = 0
			continue
		}
		out[i] = s / d
	}
	return out
}

// ErrNoData is returned by Fit when the training matrix is empty.
var ErrNoData = errors.New("mlkit: empty training set")

// ErrDimMismatch is returned when feature dimensions are inconsistent.
var ErrDimMismatch = errors.New("mlkit: feature dimension mismatch")

func checkXY(X [][]float64, y []int) (d int, err error) {
	if len(X) == 0 {
		return 0, ErrNoData
	}
	if y != nil && len(y) != len(X) {
		return 0, fmt.Errorf("%w: %d rows, %d labels", ErrDimMismatch, len(X), len(y))
	}
	d = len(X[0])
	for i, row := range X {
		if len(row) != d {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrDimMismatch, i, len(row), d)
		}
	}
	return d, nil
}
