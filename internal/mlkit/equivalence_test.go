package mlkit

import (
	"testing"

	"lumen/internal/mlkit/linalg"
)

// Serial-vs-parallel equivalence: every parallelized train/predict path
// must produce bit-identical output for any worker-pool width. Each test
// runs the full path at 1, 2, and 8 workers and compares float64 bits
// (== on float64 is bitwise here because no path produces NaN).

var eqWorkerCounts = []int{1, 2, 8}

// eqData builds a deterministic blobby dataset large enough to cross
// ParallelRows' serial threshold (64 rows).
func eqData(n, d int, seed int64) ([][]float64, []int) {
	rng := NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		row := make([]float64, d)
		for j := range row {
			row[j] = float64(c) + 0.3*rng.NormFloat64()
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

// runAtWorkers executes fn under each worker count and hands results to
// check(reference, got, workers) for counts beyond the first.
func runAtWorkers(t *testing.T, fn func() interface{}, check func(ref, got interface{}, w int)) {
	t.Helper()
	var ref interface{}
	for _, w := range eqWorkerCounts {
		prev := linalg.SetWorkers(w)
		got := fn()
		linalg.SetWorkers(prev)
		if ref == nil {
			ref = got
			continue
		}
		check(ref, got, w)
	}
}

func eqFloats(t *testing.T, name string, ref, got []float64, w int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: len %d vs %d at workers=%d", name, len(ref), len(got), w)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s[%d]: %v (workers=1) != %v (workers=%d)", name, i, ref[i], got[i], w)
		}
	}
}

func eqInts(t *testing.T, name string, ref, got []int, w int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: len %d vs %d at workers=%d", name, len(ref), len(got), w)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s[%d]: %d (workers=1) != %d (workers=%d)", name, i, ref[i], got[i], w)
		}
	}
}

func eqRows(t *testing.T, name string, ref, got [][]float64, w int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: rows %d vs %d at workers=%d", name, len(ref), len(got), w)
	}
	for i := range ref {
		eqFloats(t, name, ref[i], got[i], w)
	}
}

func TestEquivalenceMLP(t *testing.T) {
	X, y := eqData(300, 6, 1)
	runAtWorkers(t, func() interface{} {
		c := &MLPClassifier{Hidden: []int{8}, Epochs: 5, Seed: 7}
		if err := c.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return c.Proba(X)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "mlp proba", ref.([]float64), got.([]float64), w)
	})
}

// TestEquivalenceMLPMinibatch covers the opt-in multi-row backward GEMM
// path (Batch>1), which the per-sample default no longer exercises.
func TestEquivalenceMLPMinibatch(t *testing.T) {
	X, y := eqData(300, 6, 12)
	runAtWorkers(t, func() interface{} {
		d := len(X[0])
		m := &MLP{Sizes: []int{d, 8, 1}, Act: ActReLU, Epochs: 5, Seed: 7, Batch: 32}
		T := make([][]float64, len(y))
		for i, label := range y {
			T[i] = []float64{float64(label)}
		}
		if err := m.FitTargets(X, T); err != nil {
			t.Fatal(err)
		}
		return m.Predict01(X)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "mlp minibatch proba", ref.([]float64), got.([]float64), w)
	})
}

// TestEquivalenceAutoencoderBatchRows covers Autoencoder.TrainBatchRows,
// the streaming minibatch entry point, across worker counts.
func TestEquivalenceAutoencoderBatchRows(t *testing.T) {
	X, _ := eqData(256, 6, 13)
	idx := make([]int, 32)
	runAtWorkers(t, func() interface{} {
		ae := &Autoencoder{Hidden: []int{4}, Seed: 7}
		rmse := make([]float64, 32)
		all := make([]float64, 0, len(X))
		for start := 0; start+32 <= len(X); start += 32 {
			for i := range idx {
				idx[i] = start + i
			}
			ae.TrainBatchRows(X, idx, rmse)
			all = append(all, rmse...)
		}
		return append(all, ae.Score(X)...)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "ae batch rmse+score", ref.([]float64), got.([]float64), w)
	})
}

func TestEquivalenceAutoencoder(t *testing.T) {
	X, _ := eqData(300, 6, 2)
	runAtWorkers(t, func() interface{} {
		ae := &Autoencoder{Hidden: []int{4}, Epochs: 4, Seed: 7}
		if err := ae.Fit(X); err != nil {
			t.Fatal(err)
		}
		return ae.Score(X)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "ae score", ref.([]float64), got.([]float64), w)
	})
}

func TestEquivalenceKitNET(t *testing.T) {
	X, _ := eqData(400, 10, 3)
	runAtWorkers(t, func() interface{} {
		kn := &KitNET{MaxAESize: 4, Epochs: 2, Seed: 7}
		if err := kn.Fit(X); err != nil {
			t.Fatal(err)
		}
		return kn.Score(X)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "kitnet score", ref.([]float64), got.([]float64), w)
	})
}

// TestEquivalenceKNN covers the grouped scan4 kernel with its norm-sorted
// query order and early-exit pruning: per-query results must not depend
// on how queries are grouped into quads or split across workers.
func TestEquivalenceKNN(t *testing.T) {
	X, y := eqData(500, 9, 4)
	Q, _ := eqData(333, 9, 5) // odd count exercises the scan1 tail
	knn := &KNN{K: 5, MaxTrain: -1}
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	runAtWorkers(t, func() interface{} {
		return knn.Proba(Q)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "knn proba", ref.([]float64), got.([]float64), w)
	})
	runAtWorkers(t, func() interface{} {
		return knn.Predict(Q)
	}, func(ref, got interface{}, w int) {
		eqInts(t, "knn predict", ref.([]int), got.([]int), w)
	})
}

// TestKNNMatchesBruteForce pins the pruned, grouped kernel against a
// naive full-scan KNN: pruning may only skip rows that provably cannot
// enter the top-K, so votes must match exactly.
func TestKNNMatchesBruteForce(t *testing.T) {
	X, y := eqData(200, 9, 6)
	Q, _ := eqData(97, 9, 7)
	kk := 5
	knn := &KNN{K: kk, MaxTrain: -1}
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	got := knn.Proba(Q)
	for i, qrow := range Q {
		// Naive top-K by insertion over all training rows.
		bd := make([]float64, 0, kk)
		by := make([]int, 0, kk)
		for j, xrow := range X {
			d := SqDist(qrow, xrow)
			if len(bd) < kk {
				bd = append(bd, d)
				by = append(by, y[j])
			} else if d < bd[kk-1] {
				bd[kk-1], by[kk-1] = d, y[j]
			} else {
				continue
			}
			for p := len(bd) - 1; p > 0 && bd[p-1] > bd[p]; p-- {
				bd[p-1], bd[p] = bd[p], bd[p-1]
				by[p-1], by[p] = by[p], by[p-1]
			}
		}
		ones := 0
		for _, label := range by {
			if label == 1 {
				ones++
			}
		}
		want := float64(ones) / float64(kk)
		if got[i] != want {
			t.Fatalf("query %d: pruned kernel proba %v, brute force %v", i, got[i], want)
		}
	}
}

func TestEquivalenceGMM(t *testing.T) {
	X, _ := eqData(300, 5, 8)
	runAtWorkers(t, func() interface{} {
		g := &GMM{K: 3, MaxIter: 10, Seed: 7}
		if err := g.Fit(X); err != nil {
			t.Fatal(err)
		}
		return g.Score(X)
	}, func(ref, got interface{}, w int) {
		eqFloats(t, "gmm score", ref.([]float64), got.([]float64), w)
	})
}

func TestEquivalenceKMeans(t *testing.T) {
	X, _ := eqData(300, 5, 9)
	runAtWorkers(t, func() interface{} {
		km := &KMeans{K: 4, Seed: 7}
		if err := km.Fit(X); err != nil {
			t.Fatal(err)
		}
		return km.Assign(X)
	}, func(ref, got interface{}, w int) {
		eqInts(t, "kmeans assign", ref.([]int), got.([]int), w)
	})
}

func TestEquivalenceNystrom(t *testing.T) {
	X, _ := eqData(250, 5, 10)
	runAtWorkers(t, func() interface{} {
		ny := &NystromMap{M: 16, Seed: 7}
		if err := ny.Fit(X); err != nil {
			t.Fatal(err)
		}
		return ny.Transform(X)
	}, func(ref, got interface{}, w int) {
		eqRows(t, "nystrom", ref.([][]float64), got.([][]float64), w)
	})
}

func TestEquivalenceLinearModels(t *testing.T) {
	X, y := eqData(300, 6, 11)
	lr := &LogisticRegression{Epochs: 3}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	runAtWorkers(t, func() interface{} { return lr.Proba(X) },
		func(ref, got interface{}, w int) {
			eqFloats(t, "logistic proba", ref.([]float64), got.([]float64), w)
		})

	svm := &LinearSVM{Epochs: 3}
	if err := svm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	runAtWorkers(t, func() interface{} { return svm.Decision(X) },
		func(ref, got interface{}, w int) {
			eqFloats(t, "svm decision", ref.([]float64), got.([]float64), w)
		})

	oc := &OneClassSVM{Epochs: 3}
	if err := oc.Fit(X); err != nil {
		t.Fatal(err)
	}
	runAtWorkers(t, func() interface{} { return oc.Score(X) },
		func(ref, got interface{}, w int) {
			eqFloats(t, "ocsvm score", ref.([]float64), got.([]float64), w)
		})
}
