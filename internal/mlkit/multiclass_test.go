package mlkit

import (
	"math"
	"testing"
)

// threeBlobs generates three separated Gaussian clusters, classes 0/1/2.
func threeBlobs(n int, seed int64) ([][]float64, []int) {
	rng := NewRNG(seed)
	centers := [][]float64{{0, 0}, {6, 0}, {0, 6}}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 3
		X[i] = []float64{
			centers[c][0] + rng.NormFloat64()*0.5,
			centers[c][1] + rng.NormFloat64()*0.5,
		}
		y[i] = c
	}
	return X, y
}

func multiAccuracy(yTrue, yPred []int) float64 {
	n := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			n++
		}
	}
	return float64(n) / float64(len(yTrue))
}

func TestDecisionTreeMulticlass(t *testing.T) {
	X, y := threeBlobs(300, 201)
	tr := &DecisionTree{}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := multiAccuracy(y, tr.Predict(X)); acc < 0.98 {
		t.Errorf("multiclass tree accuracy = %.3f", acc)
	}
}

func TestRandomForestMulticlass(t *testing.T) {
	X, y := threeBlobs(300, 203)
	f := &RandomForest{NTrees: 15, Seed: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := multiAccuracy(y, f.Predict(X)); acc < 0.98 {
		t.Errorf("multiclass forest accuracy = %.3f", acc)
	}
}

func TestGaussianNBMulticlass(t *testing.T) {
	X, y := threeBlobs(300, 207)
	g := &GaussianNB{}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := multiAccuracy(y, g.Predict(X)); acc < 0.98 {
		t.Errorf("multiclass NB accuracy = %.3f", acc)
	}
}

func TestKNNMulticlass(t *testing.T) {
	X, y := threeBlobs(300, 209)
	k := &KNN{K: 3}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := multiAccuracy(y, k.Predict(X)); acc < 0.98 {
		t.Errorf("multiclass KNN accuracy = %.3f", acc)
	}
}

func TestMissingClassNeverPredicted(t *testing.T) {
	// Train with labels {0, 2} only: class 1 absent. NB must never
	// predict the unseen class.
	rng := NewRNG(211)
	X := make([][]float64, 100)
	y := make([]int, 100)
	for i := range X {
		c := (i % 2) * 2 // 0 or 2
		X[i] = []float64{float64(c)*3 + rng.NormFloat64()*0.2}
		y[i] = c
	}
	g := &GaussianNB{}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Predict(X) {
		if p == 1 {
			t.Fatal("predicted a class absent from training")
		}
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	X, y := blobs(200, 4, 2, 213)
	a := &RandomForest{NTrees: 10, Seed: 9}
	b := &RandomForest{NTrees: 10, Seed: 9}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Proba(X), b.Proba(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestVotingEnsembleSoftMode(t *testing.T) {
	X, y := blobs(200, 3, 3, 217)
	v := &VotingEnsemble{
		Soft: true,
		Members: []Classifier{
			&DecisionTree{Seed: 1},
			&GaussianNB{},
			&RandomForest{NTrees: 5, Seed: 1},
		},
	}
	if err := v.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := v.Proba(X)
	for _, s := range p {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("soft proba out of range: %v", s)
		}
	}
	if acc := Accuracy(y, v.Predict(X)); acc < 0.95 {
		t.Errorf("soft ensemble accuracy = %.3f", acc)
	}
}

func TestThresholdedProbaMonotoneInScore(t *testing.T) {
	th := &Thresholded{Detector: &GMM{K: 1, Seed: 1}, Quantile: 0.9}
	rng := NewRNG(219)
	X := make([][]float64, 150)
	y := make([]int, 150)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
	}
	if err := th.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Points farther from the mean must get monotonically higher proba.
	test := [][]float64{{0}, {1}, {2}, {4}, {8}}
	p := th.Proba(test)
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Fatalf("proba not monotone in anomaly score: %v", p)
		}
		if p[i] < 0 || p[i] > 1 {
			t.Fatalf("proba out of range: %v", p)
		}
	}
}

func TestLinearSVMProbaRange(t *testing.T) {
	X, y := blobs(200, 3, 3, 223)
	s := &LinearSVM{Seed: 1}
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Proba(X) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("svm proba out of range: %v", p)
		}
	}
}

func TestFitRejectsBadShapes(t *testing.T) {
	models := []Classifier{
		&DecisionTree{}, &RandomForest{NTrees: 2}, &GaussianNB{}, &KNN{},
		&LinearSVM{}, &LogisticRegression{},
	}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%T: empty fit should error", m)
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []int{0, 1}); err == nil {
			t.Errorf("%T: ragged rows should error", m)
		}
		if err := m.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
			t.Errorf("%T: label-count mismatch should error", m)
		}
	}
}
