package mlkit

import (
	"math"
	"sort"

	"lumen/internal/mlkit/linalg"
)

// Thin wrappers keep call sites short inside hot loops.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func log(x float64) float64  { return math.Log(x) }
func exp(x float64) float64  { return math.Exp(x) }

// Dot returns the inner product of two equal-length vectors, delegating
// to the multi-accumulator linalg kernel.
func Dot(a, b []float64) float64 {
	return linalg.Dot(a, b)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SortedCopy returns xs sorted ascending without reordering the input,
// reusing scratch's backing array when it has the capacity. Pass nil to
// allocate; pass a retained buffer to sort many same-length slices (e.g.
// per-column quantiles) with one allocation.
func SortedCopy(xs, scratch []float64) []float64 {
	if cap(scratch) < len(xs) {
		scratch = make([]float64, len(xs))
	}
	scratch = scratch[:len(xs)]
	copy(scratch, xs)
	sort.Float64s(scratch)
	return scratch
}

// QuantileSorted returns the q-th quantile (q in [0,1], linear
// interpolation) of an ascending-sorted slice. Use it with SortedCopy to
// take several quantiles of one column with a single sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantile returns the q-th quantile of xs (q in [0,1]) with linear
// interpolation; it copies xs so the input is not reordered.
func Quantile(xs []float64, q float64) float64 {
	return QuantileSorted(SortedCopy(xs, nil), q)
}

// ArgMax returns the index of the maximum element (first on ties), or -1 for
// an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// PearsonCorr returns the Pearson correlation of a and b, or 0 when either
// has zero variance.
func PearsonCorr(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// logSumExp computes log(sum(exp(xs))) stably.
func logSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}
