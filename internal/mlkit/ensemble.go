package mlkit

// VotingEnsemble combines classifiers by majority vote (soft vote over
// Proba when every member supports it). ML-DDoS (A00) is an ensemble of
// RF, SVM, DT and KNN in exactly this arrangement.
type VotingEnsemble struct {
	Members []Classifier
	// Soft averages Proba instead of counting votes when possible.
	Soft bool
}

// Fit trains every member on the same data.
func (v *VotingEnsemble) Fit(X [][]float64, y []int) error {
	if len(v.Members) == 0 {
		return ErrNoData
	}
	for _, m := range v.Members {
		if err := m.Fit(X, y); err != nil {
			return err
		}
	}
	return nil
}

// Predict returns the majority (or soft-vote) decision per row.
func (v *VotingEnsemble) Predict(X [][]float64) []int {
	p := v.Proba(X)
	out := make([]int, len(p))
	for i, s := range p {
		if s > 0.5 {
			out[i] = 1
		}
	}
	return out
}

// Proba returns the mean member score: soft-vote probability when all
// members implement ProbClassifier, otherwise the vote fraction.
func (v *VotingEnsemble) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if v.Soft {
		allProb := true
		for _, m := range v.Members {
			if _, ok := m.(ProbClassifier); !ok {
				allProb = false
				break
			}
		}
		if allProb {
			for _, m := range v.Members {
				for i, s := range m.(ProbClassifier).Proba(X) {
					out[i] += s
				}
			}
			for i := range out {
				out[i] /= float64(len(v.Members))
			}
			return out
		}
	}
	for _, m := range v.Members {
		for i, p := range m.Predict(X) {
			if p != 0 {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(v.Members))
	}
	return out
}
