package mlkit

import (
	"math"
	"reflect"
	"testing"
)

// sepData builds a linearly separable two-blob problem.
func sepData(n int, seed int64) ([][]float64, []int) {
	rng := NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		y[i] = c
		base := -1.0
		if c == 1 {
			base = 1
		}
		X[i] = []float64{base + rng.NormFloat64()*0.2, base + rng.NormFloat64()*0.2}
	}
	return X, y
}

// chunked feeds rows to a PartialFitter in fixed-size batches.
func chunked(t *testing.T, pf PartialFitter, X [][]float64, y []int, size int) {
	t.Helper()
	for lo := 0; lo < len(X); lo += size {
		hi := lo + size
		if hi > len(X) {
			hi = len(X)
		}
		if err := pf.PartialFit(X[lo:hi], y[lo:hi]); err != nil {
			t.Fatalf("PartialFit: %v", err)
		}
	}
}

// TestPartialFitChunkInvariant pins that for the in-order SGD family,
// feeding the same rows in different batch sizes yields identical
// predictions — the property the streaming engine's chunk-size sweep
// relies on.
func TestPartialFitChunkInvariant(t *testing.T) {
	X, y := sepData(400, 3)
	build := map[string]func() PartialFitter{
		"logistic": func() PartialFitter { return &LogisticRegression{Seed: 1} },
		"svm":      func() PartialFitter { return &LinearSVM{Seed: 1} },
		"mlp":      func() PartialFitter { return &MLPClassifier{Seed: 1} },
	}
	for name, mk := range build {
		whole := mk()
		if err := whole.PartialFit(X, y); err != nil {
			t.Fatalf("%s whole: %v", name, err)
		}
		for _, size := range []int{7, 64} {
			part := mk()
			chunked(t, part, X, y, size)
			if !reflect.DeepEqual(whole.Predict(X), part.Predict(X)) {
				t.Errorf("%s: chunk size %d diverges from whole-batch partial fit", name, size)
			}
		}
		acc := 0
		for i, p := range whole.Predict(X) {
			if p == y[i] {
				acc++
			}
		}
		if float64(acc)/float64(len(y)) < 0.9 {
			t.Errorf("%s: accuracy %d/%d on separable data", name, acc, len(y))
		}
	}
}

func TestStandardScalerPartialFitMatchesFit(t *testing.T) {
	X, _ := sepData(300, 9)
	batch := &StandardScaler{}
	if err := batch.Fit(X); err != nil {
		t.Fatal(err)
	}
	stream := &StandardScaler{}
	for lo := 0; lo < len(X); lo += 50 {
		if err := stream.PartialFit(X[lo : lo+50]); err != nil {
			t.Fatal(err)
		}
	}
	for j := range batch.Mean {
		if math.Abs(batch.Mean[j]-stream.Mean[j]) > 1e-9 || math.Abs(batch.Std[j]-stream.Std[j]) > 1e-9 {
			t.Fatalf("col %d: batch (%v,%v) vs welford (%v,%v)", j, batch.Mean[j], batch.Std[j], stream.Mean[j], stream.Std[j])
		}
	}
	// Fit-then-PartialFit continues the same statistics.
	cont := &StandardScaler{}
	if err := cont.Fit(X[:100]); err != nil {
		t.Fatal(err)
	}
	if err := cont.PartialFit(X[100:]); err != nil {
		t.Fatal(err)
	}
	for j := range batch.Mean {
		if math.Abs(batch.Mean[j]-cont.Mean[j]) > 1e-9 || math.Abs(batch.Std[j]-cont.Std[j]) > 1e-9 {
			t.Fatalf("col %d: fit+partial diverges from batch fit", j)
		}
	}
}

func TestMinMaxScalerPartialFit(t *testing.T) {
	X, _ := sepData(200, 11)
	batch := &MinMaxScaler{}
	if err := batch.Fit(X); err != nil {
		t.Fatal(err)
	}
	stream := &MinMaxScaler{}
	for lo := 0; lo < len(X); lo += 32 {
		hi := lo + 32
		if hi > len(X) {
			hi = len(X)
		}
		if err := stream.PartialFit(X[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(batch.Min, stream.Min) || !reflect.DeepEqual(batch.Max, stream.Max) {
		t.Fatal("streamed min/max diverges from batch fit")
	}
}

func TestThresholdedPartialFitOnlineDetector(t *testing.T) {
	clf := &Thresholded{
		Detector: &DetectorPipeline{
			Steps:    []Transformer{&MinMaxScaler{}},
			Detector: &Autoencoder{Seed: 5},
		},
		Quantile: 0.95,
	}
	if !CanPartialFit(clf) {
		t.Fatal("autoencoder pipeline should be online")
	}
	rng := NewRNG(2)
	mk := func(n int, shift float64) [][]float64 {
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{shift + rng.Float64(), shift + rng.Float64(), shift + rng.Float64()}
		}
		return X
	}
	for i := 0; i < 8; i++ {
		if err := clf.PartialFit(mk(128, 0), nil); err != nil {
			t.Fatal(err)
		}
	}
	if clf.Threshold <= 0 {
		t.Fatalf("threshold not calibrated: %v", clf.Threshold)
	}
	anom := clf.Predict(mk(64, 10))
	hits := 0
	for _, p := range anom {
		hits += p
	}
	if hits < 48 {
		t.Errorf("online AE flagged %d/64 far-out rows", hits)
	}
}

func TestKitNETPartialFit(t *testing.T) {
	k := &KitNET{Seed: 3}
	rng := NewRNG(8)
	mk := func(n int) [][]float64 {
		X := make([][]float64, n)
		for i := range X {
			a := rng.Float64()
			X[i] = []float64{a, a * 2, rng.Float64(), rng.Float64() * 3}
		}
		return X
	}
	for i := 0; i < 4; i++ {
		if err := k.PartialFit(mk(200)); err != nil {
			t.Fatal(err)
		}
	}
	if len(k.Clusters()) == 0 {
		t.Fatal("first batch should learn the feature map")
	}
	scores := k.Score(mk(10))
	if len(scores) != 10 {
		t.Fatalf("got %d scores", len(scores))
	}
}

func TestReservoirRetrainer(t *testing.T) {
	X, y := sepData(600, 17)
	rr := &ReservoirRetrainer{Model: &GaussianNB{}, Cap: 256, RetrainEvery: -1, Seed: 4}
	if got := rr.Predict(X[:3]); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Fatal("unfitted wrapper must predict benign")
	}
	chunked(t, rr, X, y, 100)
	if rr.Fitted() {
		t.Fatal("auto-retrain disabled, should still be unfitted")
	}
	if rr.Rows() != 256 {
		t.Fatalf("reservoir holds %d rows, want cap 256", rr.Rows())
	}
	if err := rr.FinishFit(); err != nil {
		t.Fatal(err)
	}
	if !rr.Fitted() {
		t.Fatal("FinishFit should have retrained")
	}
	acc := 0
	for i, p := range rr.Predict(X) {
		if p == y[i] {
			acc++
		}
	}
	if float64(acc)/float64(len(y)) < 0.9 {
		t.Errorf("reservoir-trained NB accuracy %d/%d", acc, len(y))
	}
	// Auto-retrain path fires inside PartialFit.
	auto := &ReservoirRetrainer{Model: &GaussianNB{}, RetrainEvery: 128, Seed: 4}
	chunked(t, auto, X[:256], y[:256], 64)
	if !auto.Fitted() {
		t.Fatal("RetrainEvery=128 should have retrained within 256 rows")
	}
}

func TestAsPartialFitter(t *testing.T) {
	if !CanPartialFit(&LogisticRegression{}) || !CanPartialFit(&LinearSVM{}) || !CanPartialFit(&MLPClassifier{}) {
		t.Fatal("SGD family must partial-fit natively")
	}
	batchThr := &Thresholded{Detector: &GMM{K: 2}}
	if CanPartialFit(batchThr) {
		t.Fatal("GMM-backed Thresholded is batch-only")
	}
	pf := AsPartialFitter(batchThr, 1)
	if _, ok := pf.(*ReservoirRetrainer); !ok {
		t.Fatalf("batch model should be reservoir-wrapped, got %T", pf)
	}
	online := &Thresholded{Detector: &KitNET{}}
	if got := AsPartialFitter(online, 1); got != PartialFitter(online) {
		t.Fatal("online Thresholded should pass through unwrapped")
	}
}
