package mlkit

import "sort"

// DecisionTree is a CART classifier using Gini impurity with axis-aligned
// numeric splits. The zero value trains with sensible defaults.
type DecisionTree struct {
	// MaxDepth limits tree depth; 0 means 24.
	MaxDepth int
	// MinSamplesLeaf is the minimum rows per leaf; 0 means 1.
	MinSamplesLeaf int
	// MaxFeatures is the number of candidate features per split; 0 means
	// all features (set by RandomForest to sqrt(d)).
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures < d.
	Seed int64

	nodes   []treeNode
	classes int
	rng     *RNG
}

type treeNode struct {
	feature   int // -1 for leaf
	threshold float64
	left      int32
	right     int32
	// proba holds the class distribution at a leaf.
	proba []float64
}

// Fit grows the tree on X, y.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	t.classes = 0
	for _, label := range y {
		if label+1 > t.classes {
			t.classes = label + 1
		}
	}
	if t.classes < 2 {
		t.classes = 2
	}
	t.rng = NewRNG(t.Seed)
	t.nodes = t.nodes[:0]
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.grow(X, y, idx, 0, d)
	return nil
}

func (t *DecisionTree) maxDepth() int {
	if t.MaxDepth == 0 {
		return 24
	}
	return t.MaxDepth
}

func (t *DecisionTree) minLeaf() int {
	if t.MinSamplesLeaf == 0 {
		return 1
	}
	return t.MinSamplesLeaf
}

// grow recursively builds the subtree over rows idx and returns its node id.
func (t *DecisionTree) grow(X [][]float64, y []int, idx []int, depth, d int) int32 {
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1})

	pure := false
	for _, c := range counts {
		if c == float64(len(idx)) {
			pure = true
			break
		}
	}
	if pure || depth >= t.maxDepth() || len(idx) < 2*t.minLeaf() {
		t.makeLeaf(id, counts, len(idx))
		return id
	}

	feat, thr, ok := t.bestSplit(X, y, idx, d)
	if !ok {
		t.makeLeaf(id, counts, len(idx))
		return id
	}

	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf() || len(right) < t.minLeaf() {
		t.makeLeaf(id, counts, len(idx))
		return id
	}
	l := t.grow(X, y, left, depth+1, d)
	r := t.grow(X, y, right, depth+1, d)
	t.nodes[id].feature = feat
	t.nodes[id].threshold = thr
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

func (t *DecisionTree) makeLeaf(id int32, counts []float64, n int) {
	proba := make([]float64, len(counts))
	if n > 0 {
		for j, c := range counts {
			proba[j] = c / float64(n)
		}
	}
	t.nodes[id].proba = proba
}

// bestSplit scans candidate features for the Gini-optimal threshold.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int, d int) (feat int, thr float64, ok bool) {
	feats := t.candidateFeatures(d)
	bestGain := 0.0
	n := float64(len(idx))

	parentCounts := make([]float64, t.classes)
	for _, i := range idx {
		parentCounts[y[i]]++
	}
	parentGini := giniFromCounts(parentCounts, n)

	type sv struct {
		v float64
		y int
	}
	vals := make([]sv, len(idx))
	leftCounts := make([]float64, t.classes)
	rightCounts := make([]float64, t.classes)

	for _, f := range feats {
		for k, i := range idx {
			vals[k] = sv{X[i][f], y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for j := range leftCounts {
			leftCounts[j] = 0
		}
		copy(rightCounts, parentCounts)
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl, nr := float64(k+1), n-float64(k+1)
			g := parentGini - (nl/n)*giniFromCounts(leftCounts, nl) - (nr/n)*giniFromCounts(rightCounts, nr)
			if g > bestGain+1e-12 {
				bestGain = g
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func (t *DecisionTree) candidateFeatures(d int) []int {
	if t.MaxFeatures <= 0 || t.MaxFeatures >= d {
		all := make([]int, d)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := t.rng.Perm(d)
	return perm[:t.MaxFeatures]
}

func giniFromCounts(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// Predict returns the majority class at each row's leaf.
func (t *DecisionTree) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		p := t.leafProba(row)
		out[i] = ArgMax(p)
	}
	return out
}

// Proba returns the positive-class (label 1) leaf fraction per row.
func (t *DecisionTree) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		p := t.leafProba(row)
		if len(p) > 1 {
			out[i] = p[1]
		}
	}
	return out
}

// ClassProba returns the full class distribution at each row's leaf.
func (t *DecisionTree) ClassProba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = t.leafProba(row)
	}
	return out
}

func (t *DecisionTree) leafProba(row []float64) []float64 {
	if len(t.nodes) == 0 {
		return []float64{1, 0}
	}
	id := int32(0)
	for {
		n := &t.nodes[id]
		if n.feature < 0 {
			return n.proba
		}
		if row[n.feature] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// Depth reports the maximum depth of the fitted tree (root = 0).
func (t *DecisionTree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(id int32) int
	walk = func(id int32) int {
		n := &t.nodes[id]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// NodeCount reports the number of nodes in the fitted tree.
func (t *DecisionTree) NodeCount() int { return len(t.nodes) }
