package mlkit

import (
	"path/filepath"
	"testing"
)

func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	data, err := MarshalModel(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSamePredictions(t *testing.T, a, b Classifier, X [][]float64) {
	t.Helper()
	pa, pb := a.Predict(X), b.Predict(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after round trip: %d vs %d", i, pa[i], pb[i])
		}
	}
}

func TestPersistDecisionTree(t *testing.T) {
	X, y := xorData(400, 401)
	tr := &DecisionTree{Seed: 1}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, tr, roundTrip(t, tr), X)
}

func TestPersistRandomForest(t *testing.T) {
	X, y := blobs(300, 4, 2, 403)
	f := &RandomForest{NTrees: 10, Seed: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, f)
	assertSamePredictions(t, f, loaded, X)
	// Probabilities must survive too (they drive AUC).
	pa := f.Proba(X)
	pb := loaded.(*RandomForest).Proba(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("proba %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestPersistGaussianNB(t *testing.T) {
	X, y := blobs(300, 3, 3, 407)
	g := &GaussianNB{}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, g, roundTrip(t, g), X)
}

func TestPersistGaussianNBWithMissingClass(t *testing.T) {
	// Labels 0 and 2 only: class 1's prior is -Inf, which JSON cannot
	// carry directly — the sentinel path must restore it.
	X := [][]float64{{0}, {0.1}, {6}, {6.1}}
	y := []int{0, 0, 2, 2}
	g := &GaussianNB{}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, g)
	assertSamePredictions(t, g, loaded, X)
	for _, p := range loaded.Predict(X) {
		if p == 1 {
			t.Fatal("restored model predicted the absent class")
		}
	}
}

func TestSaveLoadModelFile(t *testing.T) {
	X, y := blobs(100, 2, 3, 409)
	tr := &DecisionTree{Seed: 1}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, tr, loaded, X)
}

func TestPersistRejectsUnsupported(t *testing.T) {
	if _, err := MarshalModel(&KNN{}); err == nil {
		t.Error("KNN persistence should be unsupported")
	}
	if _, err := UnmarshalModel([]byte(`{"version":1,"type":"alien","data":{}}`)); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := UnmarshalModel([]byte(`{"version":9,"type":"decision_tree","data":{}}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := UnmarshalModel([]byte("not json")); err == nil {
		t.Error("garbage should fail")
	}
}
