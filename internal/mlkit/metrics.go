package mlkit

import "sort"

// Confusion holds binary-classification counts with class 1 as positive.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies a confusion matrix from true and predicted labels.
// Any non-zero label counts as positive.
func NewConfusion(yTrue, yPred []int) Confusion {
	var c Confusion
	for i := range yTrue {
		t := yTrue[i] != 0
		p := i < len(yPred) && yPred[i] != 0
		switch {
		case t && p:
			c.TP++
		case !t && p:
			c.FP++
		case t && !p:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no true positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Precision is a convenience wrapper over NewConfusion.
func Precision(yTrue, yPred []int) float64 { return NewConfusion(yTrue, yPred).Precision() }

// Recall is a convenience wrapper over NewConfusion.
func Recall(yTrue, yPred []int) float64 { return NewConfusion(yTrue, yPred).Recall() }

// Accuracy is a convenience wrapper over NewConfusion.
func Accuracy(yTrue, yPred []int) float64 { return NewConfusion(yTrue, yPred).Accuracy() }

// F1Score is a convenience wrapper over NewConfusion.
func F1Score(yTrue, yPred []int) float64 { return NewConfusion(yTrue, yPred).F1() }

// AUC computes the area under the ROC curve from positive-class scores.
// Ties are handled by the rank-sum (Mann–Whitney) formulation. It returns
// 0.5 when either class is absent.
func AUC(yTrue []int, scores []float64) float64 {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, 0, len(yTrue))
	var nPos, nNeg int
	for i := range yTrue {
		y := 0
		if yTrue[i] != 0 {
			y = 1
			nPos++
		} else {
			nNeg++
		}
		ps = append(ps, pair{scores[i], y})
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Assign average ranks across tied scores.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSumPos float64
	for i, p := range ps {
		if p.y == 1 {
			rankSumPos += ranks[i]
		}
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// BalancedAccuracy returns the mean of recall on each class; robust to class
// imbalance (nPrint papers report "balanced" scores).
func BalancedAccuracy(yTrue, yPred []int) float64 {
	c := NewConfusion(yTrue, yPred)
	var tpr, tnr float64
	if c.TP+c.FN > 0 {
		tpr = float64(c.TP) / float64(c.TP+c.FN)
	}
	if c.TN+c.FP > 0 {
		tnr = float64(c.TN) / float64(c.TN+c.FP)
	}
	return (tpr + tnr) / 2
}
