package mlkit

import "lumen/internal/mlkit/linalg"

// OneClassSVM implements Schölkopf's ν-one-class SVM trained by stochastic
// sub-gradient descent on the primal:
//
//	min_w,ρ  λ/2 ||w||² + (1/n) Σ max(0, ρ − ⟨w,x⟩) − νρ
//
// On raw inputs this is a linear one-class boundary; composed with
// NystromMap it approximates the RBF-kernel OCSVM of Yang et al. ("An
// Efficient One-Class SVM for Anomaly Detection in the Internet of Things"),
// which Lumen ports as algorithms A07–A09.
type OneClassSVM struct {
	// Nu in (0,1] bounds the training outlier fraction; 0 means 0.1.
	Nu float64
	// Lambda is the regularizer; 0 means 1e-4.
	Lambda float64
	// Epochs over the data; 0 means 20.
	Epochs int
	// Seed drives sampling order.
	Seed int64

	w   []float64
	rho float64
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; the reported
// loss is the epoch's mean hinge term max(0, ρ − ⟨w,x⟩).
func (o *OneClassSVM) SetFitObserver(obs FitObserver) { o.obs = obs }

// Fit learns the normality boundary from (assumed mostly benign) X.
func (o *OneClassSVM) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	nu := o.Nu
	if nu == 0 {
		nu = 0.1
	}
	lambda := o.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	epochs := o.Epochs
	if epochs == 0 {
		epochs = 20
	}
	o.w = make([]float64, d)
	o.rho = 0
	rng := NewRNG(o.Seed)
	n := len(X)
	t := 0
	for e := 0; e < epochs; e++ {
		var hinge float64
		for k := 0; k < n; k++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (lambda * float64(t))
			score := Dot(o.w, X[i])
			decay := 1 - eta*lambda
			for j := range o.w {
				o.w[j] *= decay
			}
			if score < o.rho { // hinge active: push w toward x, rho down
				hinge += o.rho - score
				for j, v := range X[i] {
					o.w[j] += eta * v
				}
				o.rho -= eta * (1 - nu)
			} else {
				o.rho += eta * nu
			}
		}
		if o.obs != nil {
			o.obs.FitEpoch("ocsvm", e, hinge/float64(n))
		}
	}
	return nil
}

// Score returns ρ − ⟨w,x⟩ per row: positive means outside the learned
// region (anomalous), higher is more anomalous. Rows split across the
// worker pool; each element is written by exactly one goroutine, so
// results are bit-identical for any worker count.
func (o *OneClassSVM) Score(X [][]float64) []float64 {
	out := make([]float64, len(X))
	linalg.ParallelRows(len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = o.rho - linalg.Dot(o.w, X[i])
		}
	})
	return out
}
