package mlkit

import (
	"fmt"
	"math"
)

// PartialFitter is a Classifier that can also absorb labelled rows
// incrementally, in stream order, without revisiting earlier data. The
// SGD family (logistic regression, linear SVM, MLP) implements it
// natively; Thresholded detectors implement it when their wrapped
// detector is an OnlineDetector; everything else goes through
// ReservoirRetrainer. Incremental updates are order-dependent: callers
// must feed rows in stream order for reproducible models.
type PartialFitter interface {
	Classifier
	// PartialFit updates the model with one batch of rows. A nil y is
	// treated as all-benign (label 0) — the unlabelled streaming case.
	PartialFit(X [][]float64, y []int) error
}

// OnlineTransformer is a Transformer whose parameters can be updated
// incrementally (streaming scalers).
type OnlineTransformer interface {
	Transformer
	PartialFit(X [][]float64) error
}

// OnlineDetector is a Detector that can absorb unlabelled rows
// incrementally (autoencoders, KitNET, detector pipelines of online
// parts).
type OnlineDetector interface {
	Detector
	PartialFit(X [][]float64) error
}

// FinishFitter is an optional hook a PartialFitter may implement to run
// once after the final partial-fit batch (e.g. ReservoirRetrainer's
// closing retrain). The streaming engine calls it at end of a train run.
type FinishFitter interface {
	FinishFit() error
}

// --- SGD family -----------------------------------------------------------

// PartialFit performs one in-order SGD pass over the batch with a
// constant learning rate (no epoch decay — the stream is the epoch).
// The weight vector initializes lazily from the first batch's dimension.
func (l *LogisticRegression) PartialFit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if l.w == nil {
		l.w = make([]float64, d)
	} else if len(l.w) != d {
		return fmt.Errorf("%w: partial_fit got %d features, model has %d", ErrDimMismatch, d, len(l.w))
	}
	lr := l.LR
	if lr == 0 {
		lr = 0.1
	}
	lambda := l.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	for i, row := range X {
		p := sigmoid(Dot(l.w, row) + l.b)
		t := 0.0
		if y != nil && y[i] != 0 {
			t = 1
		}
		g := p - t
		for j, v := range row {
			l.w[j] -= lr * (g*v + lambda*l.w[j])
		}
		l.b -= lr * g
	}
	return nil
}

// PartialFit continues the Pegasos sub-gradient walk over the batch in
// stream order, persisting the global step count so the 1/(λt) step
// size keeps decaying across batches. The Proba calibration scale is
// refreshed from the running mean absolute margin.
func (s *LinearSVM) PartialFit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if s.w == nil {
		s.w = make([]float64, d)
	} else if len(s.w) != d {
		return fmt.Errorf("%w: partial_fit got %d features, model has %d", ErrDimMismatch, d, len(s.w))
	}
	lambda := s.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	for i, row := range X {
		s.steps++
		yi := -1.0
		if y != nil && y[i] != 0 {
			yi = 1
		}
		eta := 1 / (lambda * float64(s.steps))
		margin := yi * (Dot(s.w, row) + s.b)
		decay := 1 - eta*lambda
		for j := range s.w {
			s.w[j] *= decay
		}
		if margin < 1 {
			for j, v := range row {
				s.w[j] += eta * yi * v
			}
			s.b += eta * yi
		}
		s.absSum += math.Abs(Dot(s.w, row) + s.b)
		s.absN++
	}
	s.scale = 1
	if m := s.absSum / float64(s.absN); m > 0 {
		s.scale = 1 / m
	}
	return nil
}

// PartialFit backpropagates each row once, in stream order. The network
// initializes lazily from the first batch's dimension; Predict/Proba on
// a never-fitted classifier return zeros.
func (c *MLPClassifier) PartialFit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if c.net == nil {
		hidden := c.Hidden
		if len(hidden) == 0 {
			hidden = []int{16}
		}
		sizes := append([]int{d}, hidden...)
		sizes = append(sizes, 1)
		c.net = &MLP{Sizes: sizes, Act: ActReLU, Epochs: c.Epochs, LR: c.LR, Seed: c.Seed}
		c.net.Init()
	}
	target := make([]float64, 1)
	for i, row := range X {
		target[0] = 0
		if y != nil && y[i] != 0 {
			target[0] = 1
		}
		c.net.TrainStep(row, target)
	}
	return nil
}

// PartialFit trains the autoencoder one online step per row, in stream
// order — the same per-sample walk Kitsune uses, so streamed training
// converges the same way batch epochs do.
func (a *Autoencoder) PartialFit(X [][]float64) error {
	if _, err := checkXY(X, nil); err != nil {
		return err
	}
	for _, row := range X {
		a.TrainOne(row)
	}
	return nil
}

// PartialFit makes KitNET's native online training reachable batch by
// batch: the first batch doubles as the grace period (feature map +
// normalization are learned from it), after which every row trains the
// ensemble and output autoencoders exactly once, in stream order. Later
// batches widen the min-max normalization before transforming.
func (k *KitNET) PartialFit(X [][]float64) error {
	if _, err := checkXY(X, nil); err != nil {
		return err
	}
	if k.clusters == nil {
		k.clusters = clusterFeatures(X, k.maxAE())
		k.norm = &MinMaxScaler{}
		if err := k.norm.Fit(X); err != nil {
			return err
		}
		lr := k.LR
		if lr == 0 {
			lr = 0.1
		}
		k.ensemble = make([]*Autoencoder, len(k.clusters))
		for c, feats := range k.clusters {
			b := len(feats) * 3 / 4
			if b < 1 {
				b = 1
			}
			k.ensemble[c] = &Autoencoder{Hidden: []int{b}, LR: lr, Seed: k.Seed + int64(c)}
		}
		ob := len(k.clusters) * 3 / 4
		if ob < 1 {
			ob = 1
		}
		k.output = &Autoencoder{Hidden: []int{ob}, LR: lr, Seed: k.Seed + 7919}
	} else if err := k.norm.PartialFit(X); err != nil {
		return err
	}
	Xs := k.norm.Transform(X)
	sub := make([]float64, 0, k.maxAE())
	tail := make([]float64, len(k.clusters))
	for _, row := range Xs {
		for c, feats := range k.clusters {
			sub = sub[:0]
			for _, f := range feats {
				sub = append(sub, row[f])
			}
			tail[c] = clamp01(k.ensemble[c].TrainOne(sub))
		}
		k.output.TrainOne(tail)
	}
	return nil
}

// PartialFit threads the batch through the steps (each updated before
// transforming, so scalers adapt first) and into the detector. Every
// stage must be online.
func (p *DetectorPipeline) PartialFit(X [][]float64) error {
	cur := X
	for _, s := range p.Steps {
		ot, ok := s.(OnlineTransformer)
		if !ok {
			return fmt.Errorf("mlkit: pipeline step %T cannot partial-fit", s)
		}
		if err := ot.PartialFit(cur); err != nil {
			return err
		}
		cur = ot.Transform(cur)
	}
	od, ok := p.Detector.(OnlineDetector)
	if !ok {
		return fmt.Errorf("mlkit: detector %T cannot partial-fit", p.Detector)
	}
	return od.PartialFit(cur)
}

// PartialFit feeds the benign rows of the batch to the wrapped online
// detector, then refreshes the threshold from a streaming P² estimate of
// the training-score quantile (matching Fit's calibration without
// retaining scores).
func (t *Thresholded) PartialFit(X [][]float64, y []int) error {
	od, ok := t.Detector.(OnlineDetector)
	if !ok {
		return fmt.Errorf("mlkit: detector %T cannot partial-fit", t.Detector)
	}
	benign := X
	if y != nil {
		benign = make([][]float64, 0, len(X))
		for i, row := range X {
			if y[i] == 0 {
				benign = append(benign, row)
			}
		}
	}
	if len(benign) == 0 {
		return nil
	}
	if err := od.PartialFit(benign); err != nil {
		return err
	}
	if t.Quantile > 0 {
		if t.q2 == nil {
			t.q2 = NewP2Quantile(t.Quantile)
		}
		for _, s := range t.Detector.Score(benign) {
			t.q2.Add(s)
		}
		t.Threshold = t.q2.Value()
	}
	return nil
}

// --- streaming scalers ----------------------------------------------------

// PartialFit folds the batch into Welford running moments; Mean/Std stay
// valid after every call, so transform-after-update matches a batch Fit
// over everything seen so far (up to floating-point association).
func (s *StandardScaler) PartialFit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	if s.Mean == nil {
		s.Mean = make([]float64, d)
		s.Std = make([]float64, d)
		s.m2 = make([]float64, d)
	} else if len(s.Mean) != d {
		return fmt.Errorf("%w: partial_fit got %d features, scaler has %d", ErrDimMismatch, d, len(s.Mean))
	}
	for _, row := range X {
		s.count++
		for j, v := range row {
			delta := v - s.Mean[j]
			s.Mean[j] += delta / s.count
			s.m2[j] += delta * (v - s.Mean[j])
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.m2[j] / s.count)
	}
	return nil
}

// PartialFit widens the per-feature range to cover the batch.
func (s *MinMaxScaler) PartialFit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	if s.Min == nil {
		return s.Fit(X)
	}
	if len(s.Min) != d {
		return fmt.Errorf("%w: partial_fit got %d features, scaler has %d", ErrDimMismatch, d, len(s.Min))
	}
	for _, row := range X {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return nil
}

// --- reservoir wrapper for batch-only models ------------------------------

// ReservoirRetrainer adapts a batch-only Classifier (KNN, GMM, forest,
// any Thresholded over a batch detector) to the PartialFitter contract:
// PartialFit maintains a uniform Algorithm-R reservoir of labelled rows
// and periodically refits the wrapped model on a copy of it. Until the
// first retrain, Predict returns all-benign.
type ReservoirRetrainer struct {
	// Model is the wrapped batch classifier, refit on each Retrain.
	Model Classifier
	// Cap bounds the reservoir; 0 means 4096.
	Cap int
	// RetrainEvery refits after this many absorbed rows; 0 means 2048,
	// negative disables automatic retrains (call Retrain explicitly).
	RetrainEvery int
	// Seed drives reservoir sampling.
	Seed int64

	rng      *RNG
	resX     [][]float64
	resY     []int
	seen     int
	sinceFit int
	fitted   bool
}

func (r *ReservoirRetrainer) cap() int {
	if r.Cap == 0 {
		return 4096
	}
	return r.Cap
}

func (r *ReservoirRetrainer) retrainEvery() int {
	if r.RetrainEvery == 0 {
		return 2048
	}
	return r.RetrainEvery
}

// PartialFit absorbs the batch into the reservoir (uniform over all rows
// seen, Algorithm R) and retrains when RetrainEvery rows have
// accumulated since the last fit.
func (r *ReservoirRetrainer) PartialFit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if r.rng == nil {
		r.rng = NewRNG(r.Seed)
	}
	capN := r.cap()
	for i, row := range X {
		label := 0
		if y != nil && y[i] != 0 {
			label = 1
		}
		r.seen++
		if len(r.resX) < capN {
			r.resX = append(r.resX, row)
			r.resY = append(r.resY, label)
		} else if j := r.rng.Intn(r.seen); j < capN {
			r.resX[j] = row
			r.resY[j] = label
		}
		r.sinceFit++
	}
	if every := r.retrainEvery(); every > 0 && r.sinceFit >= every {
		return r.Retrain()
	}
	return nil
}

// Retrain refits the wrapped model on a snapshot of the reservoir. The
// outer slices are copied so later reservoir replacement cannot mutate
// training data a fitted model retains by reference.
func (r *ReservoirRetrainer) Retrain() error {
	if len(r.resX) == 0 {
		return ErrNoData
	}
	X, y := r.Snapshot()
	if err := r.Model.Fit(X, y); err != nil {
		return err
	}
	r.fitted = true
	r.sinceFit = 0
	return nil
}

// FinishFit runs a closing retrain if rows arrived since the last one
// (or none ever ran), so an end-of-stream model reflects the full
// reservoir.
func (r *ReservoirRetrainer) FinishFit() error {
	if !r.fitted || r.sinceFit > 0 {
		return r.Retrain()
	}
	return nil
}

// Snapshot returns a copy of the current reservoir (rows shared, outer
// slices fresh) for out-of-band retraining (the daemon's background
// retrain path).
func (r *ReservoirRetrainer) Snapshot() ([][]float64, []int) {
	return append([][]float64(nil), r.resX...), append([]int(nil), r.resY...)
}

// Rows reports how many labelled rows the reservoir currently holds.
func (r *ReservoirRetrainer) Rows() int { return len(r.resX) }

// Fitted reports whether the wrapped model has been trained at least once.
func (r *ReservoirRetrainer) Fitted() bool { return r.fitted }

// Fit seeds the reservoir from the batch and retrains immediately,
// making the wrapper a drop-in Classifier.
func (r *ReservoirRetrainer) Fit(X [][]float64, y []int) error {
	if err := r.PartialFit(X, y); err != nil {
		return err
	}
	if r.sinceFit > 0 {
		return r.Retrain()
	}
	return nil
}

// Predict delegates to the wrapped model, or returns all-benign before
// the first retrain.
func (r *ReservoirRetrainer) Predict(X [][]float64) []int {
	if !r.fitted {
		return make([]int, len(X))
	}
	return r.Model.Predict(X)
}

// Proba delegates when the wrapped model reports probabilities, falling
// back to 0/1 from Predict; all-zero before the first retrain.
func (r *ReservoirRetrainer) Proba(X [][]float64) []float64 {
	if !r.fitted {
		return make([]float64, len(X))
	}
	if pc, ok := r.Model.(ProbClassifier); ok {
		return pc.Proba(X)
	}
	pred := r.Model.Predict(X)
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = float64(v)
	}
	return out
}

// --- capability probes ----------------------------------------------------

// detectorOnline reports whether a detector (recursing through pipeline
// composition) supports incremental training.
func detectorOnline(d Detector) bool {
	if dp, ok := d.(*DetectorPipeline); ok {
		for _, s := range dp.Steps {
			if _, ok := s.(OnlineTransformer); !ok {
				return false
			}
		}
		return detectorOnline(dp.Detector)
	}
	_, ok := d.(OnlineDetector)
	return ok
}

// CanPartialFit reports whether a classifier supports true incremental
// training (as opposed to reservoir replay). Thresholded wrappers are
// online exactly when their detector stack is.
func CanPartialFit(c Classifier) bool {
	switch m := c.(type) {
	case *Thresholded:
		return detectorOnline(m.Detector)
	case *ReservoirRetrainer:
		return true
	case PartialFitter:
		return true
	}
	return false
}

// AsPartialFitter returns c itself when it can partial-fit, otherwise a
// ReservoirRetrainer wrapping it (seeded for reproducible sampling).
func AsPartialFitter(c Classifier, seed int64) PartialFitter {
	if CanPartialFit(c) {
		return c.(PartialFitter)
	}
	return &ReservoirRetrainer{Model: c, Seed: seed}
}
