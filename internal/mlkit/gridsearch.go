package mlkit

import (
	"fmt"
	"sort"
)

// GridSearch implements the automatic hyperparameter tuning the paper
// lists as future work (§6, "techniques from grid-search ... could be
// used to automatically find the best hyper-parameters"): exhaustive
// search over a parameter grid with an internal stratified validation
// split, refitting the winner on all data.
type GridSearch struct {
	// New builds a candidate classifier from one parameter assignment.
	New func(params map[string]float64) Classifier
	// Grid maps parameter names to candidate values.
	Grid map[string][]float64
	// Metric scores a candidate (higher is better); nil means F1.
	Metric func(yTrue, yPred []int) float64
	// ValFrac is the internal validation fraction; 0 means 0.25.
	ValFrac float64
	// Seed drives the split.
	Seed int64

	best       Classifier
	bestParams map[string]float64
	bestScore  float64
}

// Fit evaluates the full cartesian grid and keeps the best assignment.
func (g *GridSearch) Fit(X [][]float64, y []int) error {
	if g.New == nil {
		return fmt.Errorf("mlkit: gridsearch: New is nil")
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	metric := g.Metric
	if metric == nil {
		metric = F1Score
	}
	valFrac := g.ValFrac
	if valFrac == 0 {
		valFrac = 0.25
	}
	Xtr, ytr, Xval, yval := StratifiedSplit(X, y, valFrac, g.Seed)
	if len(Xtr) == 0 || len(Xval) == 0 {
		Xtr, ytr, Xval, yval = X, y, X, y
	}

	g.best = nil
	g.bestScore = -1
	assignments := expandGrid(g.Grid)
	for _, params := range assignments {
		m := g.New(params)
		if err := m.Fit(Xtr, ytr); err != nil {
			continue
		}
		score := metric(yval, m.Predict(Xval))
		if score > g.bestScore {
			g.bestScore = score
			g.bestParams = params
			g.best = m
		}
	}
	if g.best == nil {
		return fmt.Errorf("mlkit: gridsearch: no trainable candidate in grid of %d", len(assignments))
	}
	g.best = g.New(g.bestParams)
	return g.best.Fit(X, y)
}

// expandGrid enumerates the cartesian product of the grid, in a
// deterministic key order. An empty grid yields one empty assignment.
func expandGrid(grid map[string][]float64) []map[string]float64 {
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := []map[string]float64{{}}
	for _, k := range keys {
		var next []map[string]float64
		for _, base := range out {
			for _, v := range grid[k] {
				a := make(map[string]float64, len(base)+1)
				for bk, bv := range base {
					a[bk] = bv
				}
				a[k] = v
				next = append(next, a)
			}
		}
		out = next
	}
	return out
}

// Predict delegates to the winning model.
func (g *GridSearch) Predict(X [][]float64) []int { return g.best.Predict(X) }

// Proba delegates when supported.
func (g *GridSearch) Proba(X [][]float64) []float64 {
	if p, ok := g.best.(ProbClassifier); ok {
		return p.Proba(X)
	}
	pred := g.best.Predict(X)
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = float64(v)
	}
	return out
}

// BestParams returns the winning assignment after Fit.
func (g *GridSearch) BestParams() map[string]float64 { return g.bestParams }

// BestScore returns the winning validation score after Fit.
func (g *GridSearch) BestScore() float64 { return g.bestScore }
