package mlkit

import (
	"math"
	"runtime"
	"sync"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling (sqrt(d) by default), trained in parallel.
type RandomForest struct {
	// NTrees is the ensemble size; 0 means 50.
	NTrees int
	// MaxDepth per tree; 0 means 24.
	MaxDepth int
	// MinSamplesLeaf per tree; 0 means 1.
	MinSamplesLeaf int
	// MaxFeatures per split; 0 means round(sqrt(d)).
	MaxFeatures int
	// Seed drives bootstrap sampling and per-tree seeds.
	Seed int64

	trees   []*DecisionTree
	classes int
}

func (f *RandomForest) nTrees() int {
	if f.NTrees == 0 {
		return 50
	}
	return f.NTrees
}

// Fit trains the forest; trees are grown concurrently across CPUs.
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	f.classes = 0
	for _, label := range y {
		if label+1 > f.classes {
			f.classes = label + 1
		}
	}
	if f.classes < 2 {
		f.classes = 2
	}
	maxFeat := f.MaxFeatures
	if maxFeat == 0 {
		maxFeat = int(math.Round(math.Sqrt(float64(d))))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	n := len(X)
	f.trees = make([]*DecisionTree, f.nTrees())

	workers := runtime.GOMAXPROCS(0)
	if workers > len(f.trees) {
		workers = len(f.trees)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	errCh := make(chan error, len(f.trees))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				rng := NewRNG(f.Seed + int64(ti)*7919)
				bx := make([][]float64, n)
				by := make([]int, n)
				for i := 0; i < n; i++ {
					j := rng.Intn(n)
					bx[i] = X[j]
					by[i] = y[j]
				}
				tree := &DecisionTree{
					MaxDepth:       f.MaxDepth,
					MinSamplesLeaf: f.MinSamplesLeaf,
					MaxFeatures:    maxFeat,
					Seed:           f.Seed + int64(ti)*104729,
				}
				if err := tree.Fit(bx, by); err != nil {
					errCh <- err
					return
				}
				f.trees[ti] = tree
			}
		}()
	}
	for ti := range f.trees {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// Predict returns the class with the highest mean leaf probability.
func (f *RandomForest) Predict(X [][]float64) []int {
	probs := f.classProba(X)
	out := make([]int, len(X))
	for i, p := range probs {
		out[i] = ArgMax(p)
	}
	return out
}

// Proba returns the positive-class mean probability per row.
func (f *RandomForest) Proba(X [][]float64) []float64 {
	probs := f.classProba(X)
	out := make([]float64, len(X))
	for i, p := range probs {
		if len(p) > 1 {
			out[i] = p[1]
		}
	}
	return out
}

func (f *RandomForest) classProba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	if len(f.trees) == 0 {
		return out
	}
	for _, tree := range f.trees {
		tp := tree.ClassProba(X)
		for i, p := range tp {
			for j := range p {
				if j < f.classes {
					out[i][j] += p[j]
				}
			}
		}
	}
	inv := 1 / float64(len(f.trees))
	for i := range out {
		for j := range out[i] {
			out[i][j] *= inv
		}
	}
	return out
}
