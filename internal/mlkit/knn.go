package mlkit

import (
	"math"
	"sort"

	"lumen/internal/mlkit/linalg"
)

// KNN is a k-nearest-neighbours classifier over Euclidean distance with
// optional training-set subsampling to bound inference cost. The stored
// training set is flattened into one row-major matrix at Fit time and
// queries fan out across the worker pool. The scan kernel processes four
// query rows per pass over the training matrix (each training element is
// loaded once for four distance accumulations, and the four independent
// accumulator chains hide FP-add latency); for wider feature vectors it
// additionally abandons a training row part-way once every partial
// distance already exceeds the current K-th best (partial-distance
// search), which prunes most of the scan on clustered data.
type KNN struct {
	// K is the neighbourhood size; 0 means 5.
	K int
	// MaxTrain caps the stored training set (uniform subsample); 0 means
	// 4096. Set negative to keep everything.
	MaxTrain int
	// Seed drives the subsample.
	Seed int64

	x       [][]float64
	y       []int
	classes int
	flat    *linalg.Dense // stored rows, flattened
}

func (k *KNN) kval() int {
	if k.K == 0 {
		return 5
	}
	return k.K
}

// Fit stores (a subsample of) the training data.
func (k *KNN) Fit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	maxTrain := k.MaxTrain
	if maxTrain == 0 {
		maxTrain = 4096
	}
	if maxTrain > 0 && len(X) > maxTrain {
		X, y = Subsample(X, y, maxTrain, k.Seed)
	}
	k.x = X
	k.y = y
	k.flat = linalg.FromRows(X)
	k.classes = 0
	for _, label := range y {
		if label+1 > k.classes {
			k.classes = label + 1
		}
	}
	if k.classes < 2 {
		k.classes = 2
	}
	return nil
}

// knnEarlyExitDim is the minimum feature count at which the scan kernel
// re-checks partial distances against the per-query thresholds every
// knnChunk features. Below it a row is at most one chunk anyway and the
// extra branches only cost.
const (
	knnEarlyExitDim = 8
	knnChunk        = 4
)

// knnInsert places (s, label) into the sorted bounded top-K arrays.
// Ties keep the earlier-seen element (strict > comparison while
// shifting), matching a serial first-wins scan.
func knnInsert(bd []float64, by []int, s float64, label, nf, kk int) int {
	pos := nf
	if nf == kk {
		pos = kk - 1
	}
	for pos > 0 && bd[pos-1] > s {
		bd[pos] = bd[pos-1]
		by[pos] = by[pos-1]
		pos--
	}
	bd[pos] = s
	by[pos] = label
	if nf == kk {
		return kk
	}
	return nf + 1
}

// scan4 runs the bounded top-K scan for the query rows i0..i3, filling
// bestD/bestY (4*kk each) and filled (4). Each query's
// distances accumulate in fixed feature order regardless of grouping or
// worker count, and the early-exit gates only skip rows whose full
// distance provably cannot enter that query's top-K, so results are
// bit-identical to four independent serial scans.
func (k *KNN) scan4(q *linalg.Dense, i0, i1, i2, i3, kk int, bestD []float64, bestY []int, filled []int) {
	d := q.Cols
	// The [:d] re-slices pin the row lengths to d for the prover, so the
	// accumulation loops below run without bounds checks.
	a0, a1, a2, a3 := q.Row(i0)[:d], q.Row(i1)[:d], q.Row(i2)[:d], q.Row(i3)[:d]
	bd0, by0 := bestD[:kk], bestY[:kk]
	bd1, by1 := bestD[kk:2*kk], bestY[kk:2*kk]
	bd2, by2 := bestD[2*kk:3*kk], bestY[2*kk:3*kk]
	bd3, by3 := bestD[3*kk:4*kk], bestY[3*kk:4*kk]
	inf := math.Inf(1)
	t0, t1, t2, t3 := inf, inf, inf, inf
	nf0, nf1, nf2, nf3 := 0, 0, 0, 0
	early := d >= knnEarlyExitDim
	data := k.flat.Data
	off := 0
	for j := 0; j < k.flat.Rows; j, off = j+1, off+d {
		tr := data[off : off+d]
		var s0, s1, s2, s3 float64
		x := 0
		if early {
			alive := true
			for ; x+knnChunk <= len(tr); x += knnChunk {
				e0 := a0[x] - tr[x]
				s0 += e0 * e0
				e1 := a1[x] - tr[x]
				s1 += e1 * e1
				e2 := a2[x] - tr[x]
				s2 += e2 * e2
				e3 := a3[x] - tr[x]
				s3 += e3 * e3
				e0 = a0[x+1] - tr[x+1]
				s0 += e0 * e0
				e1 = a1[x+1] - tr[x+1]
				s1 += e1 * e1
				e2 = a2[x+1] - tr[x+1]
				s2 += e2 * e2
				e3 = a3[x+1] - tr[x+1]
				s3 += e3 * e3
				e0 = a0[x+2] - tr[x+2]
				s0 += e0 * e0
				e1 = a1[x+2] - tr[x+2]
				s1 += e1 * e1
				e2 = a2[x+2] - tr[x+2]
				s2 += e2 * e2
				e3 = a3[x+2] - tr[x+2]
				s3 += e3 * e3
				e0 = a0[x+3] - tr[x+3]
				s0 += e0 * e0
				e1 = a1[x+3] - tr[x+3]
				s1 += e1 * e1
				e2 = a2[x+3] - tr[x+3]
				s2 += e2 * e2
				e3 = a3[x+3] - tr[x+3]
				s3 += e3 * e3
				if s0 >= t0 && s1 >= t1 && s2 >= t2 && s3 >= t3 {
					alive = false
					break
				}
			}
			if !alive {
				continue
			}
		}
		if x == 0 {
			for xx, t := range tr {
				e0 := a0[xx] - t
				s0 += e0 * e0
				e1 := a1[xx] - t
				s1 += e1 * e1
				e2 := a2[xx] - t
				s2 += e2 * e2
				e3 := a3[xx] - t
				s3 += e3 * e3
			}
		} else {
			for ; x < len(tr); x++ {
				t := tr[x]
				e0 := a0[x] - t
				s0 += e0 * e0
				e1 := a1[x] - t
				s1 += e1 * e1
				e2 := a2[x] - t
				s2 += e2 * e2
				e3 := a3[x] - t
				s3 += e3 * e3
			}
		}
		if s0 < t0 {
			nf0 = knnInsert(bd0, by0, s0, k.y[j], nf0, kk)
			if nf0 == kk {
				t0 = bd0[kk-1]
			}
		}
		if s1 < t1 {
			nf1 = knnInsert(bd1, by1, s1, k.y[j], nf1, kk)
			if nf1 == kk {
				t1 = bd1[kk-1]
			}
		}
		if s2 < t2 {
			nf2 = knnInsert(bd2, by2, s2, k.y[j], nf2, kk)
			if nf2 == kk {
				t2 = bd2[kk-1]
			}
		}
		if s3 < t3 {
			nf3 = knnInsert(bd3, by3, s3, k.y[j], nf3, kk)
			if nf3 == kk {
				t3 = bd3[kk-1]
			}
		}
	}
	filled[0], filled[1], filled[2], filled[3] = nf0, nf1, nf2, nf3
}

// scan1 is the single-query tail of scan4, with the same accumulation
// order and pruning rule.
func (k *KNN) scan1(q *linalg.Dense, i, kk int, bd []float64, by []int) int {
	d := q.Cols
	a := q.Row(i)[:d]
	thresh := math.Inf(1)
	nf := 0
	early := d >= knnEarlyExitDim
	data := k.flat.Data
	off := 0
	for j := 0; j < k.flat.Rows; j, off = j+1, off+d {
		tr := data[off : off+d]
		var s float64
		x := 0
		if early {
			alive := true
			for ; x+knnChunk <= len(tr); x += knnChunk {
				e := a[x] - tr[x]
				s += e * e
				e = a[x+1] - tr[x+1]
				s += e * e
				e = a[x+2] - tr[x+2]
				s += e * e
				e = a[x+3] - tr[x+3]
				s += e * e
				if s >= thresh {
					alive = false
					break
				}
			}
			if !alive {
				continue
			}
		}
		if x == 0 {
			for xx, t := range tr {
				e := a[xx] - t
				s += e * e
			}
		} else {
			for ; x < len(tr); x++ {
				e := a[x] - tr[x]
				s += e * e
			}
		}
		if s < thresh {
			nf = knnInsert(bd, by, s, k.y[j], nf, kk)
			if nf == kk {
				thresh = bd[kk-1]
			}
		}
	}
	return nf
}

// votes returns the class-frequency distribution among the K nearest
// stored points for every row of X. Query rows are split across the
// worker pool; each row's result depends only on its own accumulation
// over the training set in index order, so votes are bit-identical for
// any worker count or grouping. Queries are processed in order of
// squared norm so that the four rows sharing a scan4 pass tend to come
// from the same data cluster — then the all-four early-exit gate fires
// on almost every far-away training row. The processing order changes
// neither any query's result nor where it lands in the output.
func (k *KNN) votes(X [][]float64) *linalg.Dense {
	out := linalg.NewDense(len(X), k.classes)
	if len(X) == 0 || len(k.x) == 0 {
		return out
	}
	kk := k.kval()
	if kk > len(k.x) {
		kk = len(k.x)
	}
	q := linalg.FromRows(X)
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	qn := q.SqNorms(nil)
	sort.SliceStable(order, func(a, b int) bool { return qn[order[a]] < qn[order[b]] })
	linalg.ParallelRows(len(X), func(lo, hi int) {
		bestD := make([]float64, 4*kk)
		bestY := make([]int, 4*kk)
		filled := make([]int, 4)
		emit := func(row int, bd []float64, by []int, nf int) {
			counts := out.Row(row)
			for _, label := range by[:nf] {
				counts[label]++
			}
			if nf > 0 {
				inv := 1 / float64(nf)
				for c := range counts {
					counts[c] *= inv
				}
			}
		}
		p := lo
		for ; p+3 < hi; p += 4 {
			i0, i1, i2, i3 := order[p], order[p+1], order[p+2], order[p+3]
			k.scan4(q, i0, i1, i2, i3, kk, bestD, bestY, filled)
			emit(i0, bestD[:kk], bestY[:kk], filled[0])
			emit(i1, bestD[kk:2*kk], bestY[kk:2*kk], filled[1])
			emit(i2, bestD[2*kk:3*kk], bestY[2*kk:3*kk], filled[2])
			emit(i3, bestD[3*kk:4*kk], bestY[3*kk:4*kk], filled[3])
		}
		for ; p < hi; p++ {
			nf := k.scan1(q, order[p], kk, bestD[:kk], bestY[:kk])
			emit(order[p], bestD[:kk], bestY[:kk], nf)
		}
	})
	return out
}

// Predict returns the majority class among neighbours per row.
func (k *KNN) Predict(X [][]float64) []int {
	v := k.votes(X)
	out := make([]int, len(X))
	for i := range out {
		out[i] = ArgMax(v.Row(i))
	}
	return out
}

// Proba returns the neighbour fraction of class 1 per row.
func (k *KNN) Proba(X [][]float64) []float64 {
	v := k.votes(X)
	out := make([]float64, len(X))
	if v.Cols > 1 {
		for i := range out {
			out[i] = v.At(i, 1)
		}
	}
	return out
}
