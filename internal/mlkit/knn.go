package mlkit

import "sort"

// KNN is a k-nearest-neighbours classifier over Euclidean distance with
// optional training-set subsampling to bound inference cost.
type KNN struct {
	// K is the neighbourhood size; 0 means 5.
	K int
	// MaxTrain caps the stored training set (uniform subsample); 0 means
	// 4096. Set negative to keep everything.
	MaxTrain int
	// Seed drives the subsample.
	Seed int64

	x       [][]float64
	y       []int
	classes int
}

func (k *KNN) kval() int {
	if k.K == 0 {
		return 5
	}
	return k.K
}

// Fit stores (a subsample of) the training data.
func (k *KNN) Fit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	maxTrain := k.MaxTrain
	if maxTrain == 0 {
		maxTrain = 4096
	}
	if maxTrain > 0 && len(X) > maxTrain {
		X, y = Subsample(X, y, maxTrain, k.Seed)
	}
	k.x = X
	k.y = y
	k.classes = 0
	for _, label := range y {
		if label+1 > k.classes {
			k.classes = label + 1
		}
	}
	if k.classes < 2 {
		k.classes = 2
	}
	return nil
}

// vote returns the class-frequency distribution among the K nearest stored
// points.
func (k *KNN) vote(row []float64) []float64 {
	type nd struct {
		d float64
		y int
	}
	kk := k.kval()
	if kk > len(k.x) {
		kk = len(k.x)
	}
	// Keep the kk smallest distances with a simple bounded insertion;
	// training sets are capped so this is fast enough.
	best := make([]nd, 0, kk)
	for i, tr := range k.x {
		d := SqDist(row, tr)
		if len(best) < kk {
			best = append(best, nd{d, k.y[i]})
			if len(best) == kk {
				sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
			}
			continue
		}
		if d >= best[kk-1].d {
			continue
		}
		pos := sort.Search(kk, func(j int) bool { return best[j].d > d })
		copy(best[pos+1:], best[pos:kk-1])
		best[pos] = nd{d, k.y[i]}
	}
	counts := make([]float64, k.classes)
	for _, b := range best {
		counts[b.y]++
	}
	if len(best) > 0 {
		for j := range counts {
			counts[j] /= float64(len(best))
		}
	}
	return counts
}

// Predict returns the majority class among neighbours per row.
func (k *KNN) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		out[i] = ArgMax(k.vote(row))
	}
	return out
}

// Proba returns the neighbour fraction of class 1 per row.
func (k *KNN) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		v := k.vote(row)
		if len(v) > 1 {
			out[i] = v[1]
		}
	}
	return out
}
