package mlkit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	s := &StandardScaler{}
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := s.Transform(X)
	for j := 0; j < 2; j++ {
		var mean, va float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			va += d * d
		}
		va /= 3
		if math.Abs(mean) > 1e-9 || math.Abs(va-1) > 1e-9 {
			t.Errorf("col %d: mean=%v var=%v, want 0/1", j, mean, va)
		}
	}
	// Input untouched.
	if X[0][0] != 1 {
		t.Error("Transform mutated its input")
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := &StandardScaler{}
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := s.Transform(X)
	for i := range out {
		if out[i][0] != 0 {
			t.Errorf("constant column should map to 0, got %v", out[i][0])
		}
	}
}

func TestMinMaxScalerRangeAndClamp(t *testing.T) {
	X := [][]float64{{0}, {5}, {10}}
	s := &MinMaxScaler{}
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := s.Transform([][]float64{{-5}, {5}, {20}})
	want := []float64{0, 0.5, 1}
	for i := range out {
		if math.Abs(out[i][0]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i][0], want[i])
		}
	}
}

func TestMinMaxScalerPropertyInUnit(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		X := make([][]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			X = append(X, []float64{v})
		}
		s := &MinMaxScaler{}
		if err := s.Fit(X); err != nil {
			return false
		}
		for _, row := range s.Transform(X) {
			if row[0] < 0 || row[0] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationFilterDropsDuplicates(t *testing.T) {
	rng := NewRNG(1)
	X := make([][]float64, 100)
	for i := range X {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		X[i] = []float64{a, 2 * a, b, a + 0.001*b} // cols 1 and 3 ~ col 0
	}
	f := &CorrelationFilter{Threshold: 0.95}
	if err := f.Fit(X); err != nil {
		t.Fatal(err)
	}
	if len(f.Keep) != 2 {
		t.Fatalf("kept %v, want exactly 2 columns (0 and 2)", f.Keep)
	}
	if f.Keep[0] != 0 || f.Keep[1] != 2 {
		t.Errorf("kept %v, want [0 2]", f.Keep)
	}
	out := f.Transform(X[:1])
	if len(out[0]) != 2 {
		t.Errorf("transform width = %d, want 2", len(out[0]))
	}
}

func TestTrainTestSplitSizesAndDisjoint(t *testing.T) {
	X, y := blobs(100, 2, 1, 3)
	Xtr, ytr, Xte, yte := TrainTestSplit(X, y, 0.3, 7)
	if len(Xte) != 30 || len(Xtr) != 70 {
		t.Fatalf("sizes %d/%d, want 70/30", len(Xtr), len(Xte))
	}
	if len(ytr) != 70 || len(yte) != 30 {
		t.Fatalf("label sizes mismatch")
	}
}

func TestStratifiedSplitPreservesRatio(t *testing.T) {
	X := make([][]float64, 100)
	y := make([]int, 100)
	for i := range X {
		X[i] = []float64{float64(i)}
		if i < 20 {
			y[i] = 1
		}
	}
	_, ytr, _, yte := StratifiedSplit(X, y, 0.5, 1)
	pos := func(ys []int) int {
		n := 0
		for _, v := range ys {
			n += v
		}
		return n
	}
	if pos(ytr) != 10 || pos(yte) != 10 {
		t.Errorf("positives train=%d test=%d, want 10/10", pos(ytr), pos(yte))
	}
}

func TestSplitDeterminism(t *testing.T) {
	X, y := blobs(50, 2, 1, 5)
	_, y1, _, _ := TrainTestSplit(X, y, 0.4, 42)
	_, y2, _, _ := TrainTestSplit(X, y, 0.4, 42)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("same seed produced different splits")
		}
	}
}

func TestSubsample(t *testing.T) {
	X, y := blobs(100, 2, 1, 9)
	Xs, ys := Subsample(X, y, 10, 1)
	if len(Xs) != 10 || len(ys) != 10 {
		t.Fatalf("sizes %d/%d, want 10/10", len(Xs), len(ys))
	}
	Xs2, _ := Subsample(X, y, 1000, 1)
	if len(Xs2) != 100 {
		t.Errorf("oversized subsample should return input unchanged")
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	p := NewRNG(3).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(4)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}
