package mlkit

import "math"

// Autoencoder is an MLP trained to reconstruct its input; Score reports
// per-row reconstruction RMSE, the classical anomaly criterion used by the
// Nokia detector (A11) and early-detection model (A12). Inputs should be
// scaled into [0,1] (the sigmoid output range).
type Autoencoder struct {
	// Hidden lists the encoder widths down to the bottleneck; the decoder
	// mirrors them. Empty means a single bottleneck of max(1, d*3/4).
	Hidden []int
	// Epochs, LR, Seed configure the underlying MLP.
	Epochs int
	LR     float64
	Seed   int64

	net *MLP
	d   int
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; epochs are
// reported under the model name "autoencoder".
func (a *Autoencoder) SetFitObserver(o FitObserver) { a.obs = o }

// sizes builds the mirrored encoder/decoder layer widths for input
// dimension d.
func (a *Autoencoder) sizes(d int) []int {
	hidden := a.Hidden
	if len(hidden) == 0 {
		b := d * 3 / 4
		if b < 1 {
			b = 1
		}
		hidden = []int{b}
	}
	sizes := []int{d}
	sizes = append(sizes, hidden...)
	for i := len(hidden) - 2; i >= 0; i-- {
		sizes = append(sizes, hidden[i])
	}
	return append(sizes, d)
}

// Fit trains the autoencoder to reproduce X.
func (a *Autoencoder) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	a.d = d
	a.net = &MLP{Sizes: a.sizes(d), Act: ActSigmoid, Epochs: a.Epochs, LR: a.LR, Seed: a.Seed}
	if a.obs != nil {
		a.net.obs = named{o: a.obs, name: "autoencoder"}
	}
	return a.net.FitTargets(X, X)
}

// Score returns per-row reconstruction RMSE, streaming X through the
// network in minibatch GEMM passes.
func (a *Autoencoder) Score(X [][]float64) []float64 {
	out := make([]float64, len(X))
	a.net.VisitOutputs(X, func(i int, rec []float64) {
		row := X[i]
		var s float64
		for j := range row {
			e := row[j] - rec[j]
			s += e * e
		}
		out[i] = math.Sqrt(s / float64(len(row)))
	})
	return out
}

// ScoreOne returns the reconstruction RMSE of a single row.
func (a *Autoencoder) ScoreOne(row []float64) float64 {
	acts := a.net.Forward(row)
	rec := acts[len(acts)-1]
	var s float64
	for j := range row {
		e := row[j] - rec[j]
		s += e * e
	}
	return math.Sqrt(s / float64(len(row)))
}

// ensureNet lazily builds the network for streaming training entry
// points that may run before Fit.
func (a *Autoencoder) ensureNet(d int) {
	if a.net != nil {
		return
	}
	a.d = d
	a.net = &MLP{Sizes: a.sizes(d), Act: ActSigmoid, Epochs: a.Epochs, LR: a.LR, Seed: a.Seed}
	a.net.Init()
}

// TrainOne performs one online training step on a single row and returns
// its pre-update RMSE — Kitsune trains this way, packet by packet.
func (a *Autoencoder) TrainOne(row []float64) float64 {
	a.ensureNet(len(row))
	sq := a.net.TrainStep(row, row)
	return math.Sqrt(sq / float64(len(row)))
}

// TrainBatchRows performs one minibatch training step on X[idx] (a
// single forward/backward GEMM pass and weight update) and fills rmse —
// len(idx) long — with each row's pre-update reconstruction RMSE.
// KitNET's ensemble trains through this instead of per-row TrainOne.
func (a *Autoencoder) TrainBatchRows(X [][]float64, idx []int, rmse []float64) {
	if len(idx) == 0 {
		return
	}
	a.ensureNet(len(X[idx[0]]))
	a.net.TrainBatchRows(X, X, idx, rmse)
	inv := 1 / float64(a.net.Sizes[0])
	for i := range rmse[:len(idx)] {
		rmse[i] = math.Sqrt(rmse[i] * inv)
	}
}
