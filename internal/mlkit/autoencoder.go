package mlkit

import "math"

// Autoencoder is an MLP trained to reconstruct its input; Score reports
// per-row reconstruction RMSE, the classical anomaly criterion used by the
// Nokia detector (A11) and early-detection model (A12). Inputs should be
// scaled into [0,1] (the sigmoid output range).
type Autoencoder struct {
	// Hidden lists the encoder widths down to the bottleneck; the decoder
	// mirrors them. Empty means a single bottleneck of max(1, d*3/4).
	Hidden []int
	// Epochs, LR, Seed configure the underlying MLP.
	Epochs int
	LR     float64
	Seed   int64

	net *MLP
	d   int
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; epochs are
// reported under the model name "autoencoder".
func (a *Autoencoder) SetFitObserver(o FitObserver) { a.obs = o }

// Fit trains the autoencoder to reproduce X.
func (a *Autoencoder) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	a.d = d
	hidden := a.Hidden
	if len(hidden) == 0 {
		b := d * 3 / 4
		if b < 1 {
			b = 1
		}
		hidden = []int{b}
	}
	sizes := []int{d}
	sizes = append(sizes, hidden...)
	for i := len(hidden) - 2; i >= 0; i-- {
		sizes = append(sizes, hidden[i])
	}
	sizes = append(sizes, d)
	a.net = &MLP{Sizes: sizes, Act: ActSigmoid, Epochs: a.Epochs, LR: a.LR, Seed: a.Seed}
	if a.obs != nil {
		a.net.obs = named{o: a.obs, name: "autoencoder"}
	}
	return a.net.FitTargets(X, X)
}

// Score returns per-row reconstruction RMSE.
func (a *Autoencoder) Score(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = a.ScoreOne(row)
	}
	return out
}

// ScoreOne returns the reconstruction RMSE of a single row.
func (a *Autoencoder) ScoreOne(row []float64) float64 {
	acts := a.net.Forward(row)
	rec := acts[len(acts)-1]
	var s float64
	for j := range row {
		e := row[j] - rec[j]
		s += e * e
	}
	return math.Sqrt(s / float64(len(row)))
}

// TrainOne performs one online training step on a single row and returns
// its pre-update RMSE — Kitsune trains this way, packet by packet.
func (a *Autoencoder) TrainOne(row []float64) float64 {
	if a.net == nil {
		a.d = len(row)
		hidden := a.Hidden
		if len(hidden) == 0 {
			b := a.d * 3 / 4
			if b < 1 {
				b = 1
			}
			hidden = []int{b}
		}
		sizes := []int{a.d}
		sizes = append(sizes, hidden...)
		for i := len(hidden) - 2; i >= 0; i-- {
			sizes = append(sizes, hidden[i])
		}
		sizes = append(sizes, a.d)
		a.net = &MLP{Sizes: sizes, Act: ActSigmoid, Epochs: a.Epochs, LR: a.LR, Seed: a.Seed}
		a.net.Init()
	}
	sq := a.net.TrainStep(row, row)
	return math.Sqrt(sq / float64(len(row)))
}
