package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// NystromMap approximates an RBF-kernel feature space by projecting each
// input onto kernel evaluations against M landmark points, whitened by the
// landmark kernel matrix's inverse square root (computed via Jacobi
// eigendecomposition). Composing this with a linear model reproduces the
// "Nyström + OCSVM / Nyström + GMM" constructions of A08/A09.
type NystromMap struct {
	// M landmarks; 0 means 64.
	M int
	// Gamma is the RBF width exp(-gamma*||x-z||²); 0 means 1/d at Fit.
	Gamma float64
	// Seed drives landmark selection (k-means centers).
	Seed int64

	landmarks [][]float64
	proj      [][]float64   // K_mm^{-1/2}, M×M
	projFlat  *linalg.Dense // proj in flat row-major form for the GEMM path
	gamma     float64
}

// Fit picks landmarks via k-means and computes the whitening projection.
func (ny *NystromMap) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	m := ny.M
	if m == 0 {
		m = 64
	}
	if m > len(X) {
		m = len(X)
	}
	ny.gamma = ny.Gamma
	if ny.gamma == 0 {
		ny.gamma = 1 / float64(d)
	}
	km := &KMeans{K: m, Seed: ny.Seed, MaxIter: 20}
	if err := km.Fit(X); err != nil {
		return err
	}
	ny.landmarks = km.Centers
	m = len(ny.landmarks)

	// Kmm[i][j] = rbf(z_i, z_j)
	kmm := make([][]float64, m)
	for i := range kmm {
		kmm[i] = make([]float64, m)
		for j := range kmm[i] {
			kmm[i][j] = math.Exp(-ny.gamma * SqDist(ny.landmarks[i], ny.landmarks[j]))
		}
	}
	vals, vecs := jacobiEigen(kmm, 100)
	// proj = V * diag(1/sqrt(max(val,eps))) * V^T
	ny.proj = make([][]float64, m)
	for i := range ny.proj {
		ny.proj[i] = make([]float64, m)
	}
	for k := 0; k < m; k++ {
		lam := vals[k]
		if lam < 1e-8 {
			continue // drop near-null directions
		}
		inv := 1 / math.Sqrt(lam)
		for i := 0; i < m; i++ {
			vik := vecs[i][k] * inv
			for j := 0; j < m; j++ {
				ny.proj[i][j] += vik * vecs[j][k]
			}
		}
	}
	ny.projFlat = linalg.FromRows(ny.proj)
	return nil
}

// Transform maps rows into the M-dimensional Nyström feature space. The
// landmark kernel evaluations fill an n×M matrix with rows split across
// the worker pool (disjoint writes, deterministic for any worker count);
// the whitening projection is then one cache-blocked GEMM, exploiting
// that proj is symmetric so K·proj = K·projᵀ.
func (ny *NystromMap) Transform(X [][]float64) [][]float64 {
	m := len(ny.landmarks)
	if m == 0 {
		return linalg.NewDense(len(X), 0).RowViews()
	}
	kx := linalg.NewDense(len(X), m)
	linalg.ParallelRows(len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := X[i]
			kr := kx.Row(i)
			for j, z := range ny.landmarks {
				kr[j] = math.Exp(-ny.gamma * SqDist(row, z))
			}
		}
	})
	out := linalg.NewDense(len(X), m)
	linalg.MatMulT(kx, ny.projFlat, out)
	return out.RowViews()
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues and the column-eigenvector matrix.
func jacobiEigen(a [][]float64, sweeps int) (vals []float64, vecs [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k][p], vecs[k][q]
					vecs[k][p] = c*vkp - s*vkq
					vecs[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}
