package mlkit

import (
	"math"
	"testing"
)

// blobs generates two well-separated Gaussian clusters labelled 0 and 1.
func blobs(n, d int, sep float64, seed int64) ([][]float64, []int) {
	rng := NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		label := i % 2
		for j := range row {
			row[j] = rng.NormFloat64()
			if label == 1 {
				row[j] += sep
			}
		}
		X[i] = row
		y[i] = label
	}
	return X, y
}

// xorData generates the classic non-linearly-separable XOR pattern.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a := rng.Float64()
		b := rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func fitPredictAccuracy(t *testing.T, c Classifier, X [][]float64, y []int) float64 {
	t.Helper()
	Xtr, ytr, Xte, yte := StratifiedSplit(X, y, 0.3, 1)
	if err := c.Fit(Xtr, ytr); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return Accuracy(yte, c.Predict(Xte))
}

func TestDecisionTreeSeparable(t *testing.T) {
	X, y := blobs(400, 4, 3, 1)
	acc := fitPredictAccuracy(t, &DecisionTree{}, X, y)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	X, y := xorData(600, 2)
	acc := fitPredictAccuracy(t, &DecisionTree{}, X, y)
	if acc < 0.9 {
		t.Errorf("XOR accuracy = %.3f, want >= 0.9 (trees handle XOR)", acc)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	X, y := xorData(400, 3)
	tr := &DecisionTree{MaxDepth: 3}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("Depth = %d, want <= 3", d)
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.2}, {5}, {5.1}}
	y := []int{0, 0, 0, 1, 1}
	tr := &DecisionTree{}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := tr.Predict(X)
	for i := range y {
		if pred[i] != y[i] {
			t.Errorf("pred[%d] = %d, want %d", i, pred[i], y[i])
		}
	}
}

func TestRandomForestBeatsOnXOR(t *testing.T) {
	X, y := xorData(600, 5)
	acc := fitPredictAccuracy(t, &RandomForest{NTrees: 20, Seed: 1}, X, y)
	if acc < 0.9 {
		t.Errorf("forest XOR accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestRandomForestProbaRange(t *testing.T) {
	X, y := blobs(200, 3, 2, 7)
	f := &RandomForest{NTrees: 10, Seed: 2}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, p := range f.Proba(X) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba[%d] = %v out of [0,1]", i, p)
		}
	}
}

func TestGaussianNBSeparable(t *testing.T) {
	X, y := blobs(400, 4, 3, 11)
	acc := fitPredictAccuracy(t, &GaussianNB{}, X, y)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestGaussianNBProbaSumsToOneBinary(t *testing.T) {
	X, y := blobs(100, 2, 2, 13)
	g := &GaussianNB{}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := g.Proba(X)
	for i := range p {
		if p[i] < 0 || p[i] > 1 {
			t.Fatalf("proba out of range: %v", p[i])
		}
	}
}

func TestKNNSeparable(t *testing.T) {
	X, y := blobs(300, 3, 3, 17)
	acc := fitPredictAccuracy(t, &KNN{K: 3}, X, y)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestKNNSubsampleCap(t *testing.T) {
	X, y := blobs(500, 2, 3, 19)
	k := &KNN{K: 1, MaxTrain: 50}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(k.x) != 50 {
		t.Errorf("stored %d rows, want 50", len(k.x))
	}
}

func TestLinearSVMSeparable(t *testing.T) {
	X, y := blobs(400, 4, 3, 23)
	acc := fitPredictAccuracy(t, &LinearSVM{Seed: 1}, X, y)
	if acc < 0.9 {
		t.Errorf("accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestMLPClassifierSeparable(t *testing.T) {
	X, y := blobs(300, 3, 3, 29)
	sc := &StandardScaler{}
	if err := sc.Fit(X); err != nil {
		t.Fatal(err)
	}
	acc := fitPredictAccuracy(t, &MLPClassifier{Hidden: []int{8}, Epochs: 40, Seed: 1}, sc.Transform(X), y)
	if acc < 0.9 {
		t.Errorf("accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestVotingEnsemble(t *testing.T) {
	X, y := blobs(300, 3, 3, 31)
	v := &VotingEnsemble{Members: []Classifier{
		&DecisionTree{},
		&GaussianNB{},
		&KNN{K: 3},
	}}
	acc := fitPredictAccuracy(t, v, X, y)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestOneClassSVMSeparatesOutliers(t *testing.T) {
	// The linear ν-OCSVM learns a halfspace {x : ⟨w,x⟩ ≥ ρ}; test it on a
	// one-sided layout it can express (kernelized layouts are covered by
	// TestNystromOCSVM).
	rng := NewRNG(37)
	var X [][]float64
	for i := 0; i < 300; i++ {
		X = append(X, []float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3})
	}
	o := &OneClassSVM{Nu: 0.1, Seed: 1}
	th := &Thresholded{Detector: o, Quantile: 0.95}
	y := make([]int, len(X))
	if err := th.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	inlier := [][]float64{{2, 2}, {2.1, 1.9}}
	outlier := [][]float64{{-8, -8}, {-9, -7}}
	si := o.Score(inlier)
	so := o.Score(outlier)
	for i := range si {
		if si[i] >= so[0] || si[i] >= so[1] {
			t.Errorf("inlier score %v not below outlier scores %v", si[i], so)
		}
	}
}

func TestGMMDensity(t *testing.T) {
	rng := NewRNG(41)
	var X [][]float64
	for i := 0; i < 200; i++ {
		X = append(X, []float64{rng.NormFloat64()*0.2 + 1, rng.NormFloat64()*0.2 + 1})
	}
	for i := 0; i < 200; i++ {
		X = append(X, []float64{rng.NormFloat64()*0.2 - 1, rng.NormFloat64()*0.2 - 1})
	}
	g := &GMM{K: 2, Seed: 1}
	if err := g.Fit(X); err != nil {
		t.Fatal(err)
	}
	in := g.Score([][]float64{{1, 1}})[0]
	out := g.Score([][]float64{{10, -10}})[0]
	if in >= out {
		t.Errorf("in-distribution score %v should be below outlier score %v", in, out)
	}
}

func TestKMeansTwoClusters(t *testing.T) {
	rng := NewRNG(43)
	var X [][]float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.NormFloat64()*0.1 + 5, rng.NormFloat64() * 0.1})
		X = append(X, []float64{rng.NormFloat64()*0.1 - 5, rng.NormFloat64() * 0.1})
	}
	km := &KMeans{K: 2, Seed: 1}
	if err := km.Fit(X); err != nil {
		t.Fatal(err)
	}
	c0, c1 := km.Centers[0][0], km.Centers[1][0]
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	if math.Abs(c0+5) > 0.5 || math.Abs(c1-5) > 0.5 {
		t.Errorf("centers %v, %v; want near ±5", c0, c1)
	}
}

func TestNystromOCSVM(t *testing.T) {
	// A ring of normal points: linear OCSVM cannot model it; Nyström can.
	rng := NewRNG(47)
	var X [][]float64
	for i := 0; i < 300; i++ {
		theta := rng.Float64() * 2 * math.Pi
		r := 1 + rng.NormFloat64()*0.05
		X = append(X, []float64{r * math.Cos(theta), r * math.Sin(theta)})
	}
	p := &DetectorPipeline{
		Steps:    []Transformer{&NystromMap{M: 32, Gamma: 2, Seed: 1}},
		Detector: &OneClassSVM{Nu: 0.1, Seed: 1},
	}
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	onRing := p.Score([][]float64{{1, 0}, {0, -1}})
	center := p.Score([][]float64{{0, 0}})
	far := p.Score([][]float64{{4, 4}})
	for _, s := range onRing {
		if s >= far[0] {
			t.Errorf("ring score %v should be below far-outlier score %v", s, far[0])
		}
		if s >= center[0] {
			t.Errorf("ring score %v should be below center score %v (non-linear boundary)", s, center[0])
		}
	}
}

func TestAutoencoderReconstruction(t *testing.T) {
	rng := NewRNG(53)
	var X [][]float64
	for i := 0; i < 300; i++ {
		a := rng.Float64()
		X = append(X, []float64{a, a, 1 - a, a * 0.5}) // rank-1 structure
	}
	ae := &Autoencoder{Hidden: []int{2}, Epochs: 60, Seed: 1}
	if err := ae.Fit(X); err != nil {
		t.Fatal(err)
	}
	normal := ae.Score(X[:10])
	anomaly := ae.Score([][]float64{{1, 0, 1, 1}}) // breaks the structure
	for _, s := range normal {
		if s >= anomaly[0] {
			t.Errorf("normal RMSE %v should be below anomaly RMSE %v", s, anomaly[0])
		}
	}
}

func TestKitNETClustersRespectCap(t *testing.T) {
	rng := NewRNG(59)
	X := make([][]float64, 200)
	for i := range X {
		base := rng.Float64()
		row := make([]float64, 25)
		for j := range row {
			if j < 12 {
				row[j] = base + rng.NormFloat64()*0.01
			} else {
				row[j] = rng.Float64()
			}
		}
		X[i] = row
	}
	k := &KitNET{MaxAESize: 5, Epochs: 1, Seed: 1}
	if err := k.Fit(X); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range k.Clusters() {
		if len(c) > 5 {
			t.Errorf("cluster size %d exceeds cap 5", len(c))
		}
		total += len(c)
	}
	if total != 25 {
		t.Errorf("clusters cover %d features, want 25", total)
	}
}

func TestKitNETDetectsAnomaly(t *testing.T) {
	rng := NewRNG(61)
	X := make([][]float64, 400)
	for i := range X {
		a := rng.Float64()
		X[i] = []float64{a, a * 2, 1 - a, 0.5, a * a}
	}
	k := &KitNET{Epochs: 5, Seed: 1}
	if err := k.Fit(X); err != nil {
		t.Fatal(err)
	}
	normal := k.Score(X[:20])
	anomalous := k.Score([][]float64{{1, 0, 1, 5, -3}})
	maxNormal := 0.0
	for _, s := range normal {
		if s > maxNormal {
			maxNormal = s
		}
	}
	if anomalous[0] <= maxNormal {
		t.Errorf("anomaly score %v not above max normal %v", anomalous[0], maxNormal)
	}
}

func TestAutoMLPicksWinner(t *testing.T) {
	X, y := xorData(500, 67)
	a := &AutoML{Seed: 1}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.BestName() == "" {
		t.Error("BestName empty after Fit")
	}
	acc := Accuracy(y, a.Predict(X))
	if acc < 0.9 {
		t.Errorf("train accuracy = %.3f, want >= 0.9 on XOR", acc)
	}
	// NB is axis-Gaussian and cannot model XOR; the winner must not be it.
	if a.BestName() == "gnb" {
		t.Errorf("automl picked gnb on XOR data")
	}
}

func TestThresholdedQuantileCalibration(t *testing.T) {
	rng := NewRNG(71)
	X := make([][]float64, 200)
	y := make([]int, 200)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
	}
	th := &Thresholded{Detector: &GMM{K: 1, Seed: 1}, Quantile: 0.9}
	if err := th.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := th.Predict(X)
	flagged := 0
	for _, p := range pred {
		flagged += p
	}
	// Roughly 10% of training data should exceed the 0.9 quantile.
	if flagged < 5 || flagged > 40 {
		t.Errorf("flagged %d/200, want near 20", flagged)
	}
}
