package mlkit

// ScoringReplica returns a classifier that can run Predict/Proba
// concurrently with other replicas of the same fitted model. Replicas
// share every fitted, read-only parameter (weights, trees, support
// vectors, scaler statistics) but own any mutable inference scratch —
// today that is only the MLP's batched activation buffers, reused by
// Predict01/VisitOutputs and therefore unsafe to share across
// goroutines. Models whose inference path allocates locally (trees,
// KNN, NB, SVM, GMM, OCSVM) are returned unchanged.
//
// Replica outputs are bit-identical to the original's: inference reads
// only the shared parameters, and the replicated scratch never feeds
// back into results. Replicas are for scoring only; fitting a replica
// is unsupported (it would mutate state other replicas share).
func ScoringReplica(c Classifier) Classifier {
	switch m := c.(type) {
	case *MLPClassifier:
		if m.net == nil {
			return m
		}
		cp := *m
		cp.net = m.net.scoreReplica()
		return &cp
	case *Thresholded:
		cp := *m
		cp.Detector = scoringReplicaDetector(m.Detector)
		return &cp
	case *Pipeline:
		cp := *m
		cp.Model = ScoringReplica(m.Model)
		return &cp
	case *VotingEnsemble:
		cp := *m
		cp.Members = make([]Classifier, len(m.Members))
		for i, member := range m.Members {
			cp.Members[i] = ScoringReplica(member)
		}
		return &cp
	case *GridSearch:
		if m.best == nil {
			return m
		}
		cp := *m
		cp.best = ScoringReplica(m.best)
		return &cp
	case *AutoML:
		if m.best == nil {
			return m
		}
		cp := *m
		cp.best = ScoringReplica(m.best)
		return &cp
	default:
		return c
	}
}

// scoringReplicaDetector is ScoringReplica for the Detector interface:
// it replicates the MLP-backed detectors (autoencoders, KitNET) and the
// wrappers that contain them, and returns scratch-free detectors as-is.
func scoringReplicaDetector(d Detector) Detector {
	switch m := d.(type) {
	case *Autoencoder:
		if m.net == nil {
			return m
		}
		cp := *m
		cp.net = m.net.scoreReplica()
		return &cp
	case *KitNET:
		cp := *m
		cp.ensemble = make([]*Autoencoder, len(m.ensemble))
		for i, ae := range m.ensemble {
			cp.ensemble[i] = scoringReplicaDetector(ae).(*Autoencoder)
		}
		if m.output != nil {
			cp.output = scoringReplicaDetector(m.output).(*Autoencoder)
		}
		return &cp
	case *DetectorPipeline:
		cp := *m
		cp.Detector = scoringReplicaDetector(m.Detector)
		return &cp
	default:
		return d
	}
}
