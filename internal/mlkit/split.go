package mlkit

// TrainTestSplit shuffles rows deterministically (by seed) and splits them,
// with testFrac of rows going to the test side.
func TrainTestSplit(X [][]float64, y []int, testFrac float64, seed int64) (Xtr [][]float64, ytr []int, Xte [][]float64, yte []int) {
	n := len(X)
	perm := NewRNG(seed).Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest < 0 {
		nTest = 0
	}
	if nTest > n {
		nTest = n
	}
	for i, idx := range perm {
		if i < nTest {
			Xte = append(Xte, X[idx])
			yte = append(yte, y[idx])
		} else {
			Xtr = append(Xtr, X[idx])
			ytr = append(ytr, y[idx])
		}
	}
	return Xtr, ytr, Xte, yte
}

// StratifiedSplit splits while preserving the class ratio in both halves.
func StratifiedSplit(X [][]float64, y []int, testFrac float64, seed int64) (Xtr [][]float64, ytr []int, Xte [][]float64, yte []int) {
	byClass := map[int][]int{}
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	rng := NewRNG(seed)
	// Iterate classes in a stable order for determinism.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	for i := 0; i < len(classes); i++ { // insertion sort: class count is tiny
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(idx)
		nTest := int(float64(len(idx)) * testFrac)
		for i, id := range idx {
			if i < nTest {
				Xte = append(Xte, X[id])
				yte = append(yte, y[id])
			} else {
				Xtr = append(Xtr, X[id])
				ytr = append(ytr, y[id])
			}
		}
	}
	return Xtr, ytr, Xte, yte
}

// Subsample returns up to n rows sampled without replacement (deterministic
// by seed). When len(X) <= n it returns the inputs unchanged.
func Subsample(X [][]float64, y []int, n int, seed int64) ([][]float64, []int) {
	if len(X) <= n {
		return X, y
	}
	perm := NewRNG(seed).Perm(len(X))
	Xs := make([][]float64, n)
	var ys []int
	if y != nil {
		ys = make([]int, n)
	}
	for i := 0; i < n; i++ {
		Xs[i] = X[perm[i]]
		if y != nil {
			ys[i] = y[perm[i]]
		}
	}
	return Xs, ys
}
