package mlkit

// PermutationImportance measures how much each feature contributes to a
// fitted classifier: the drop in a metric when that feature's column is
// shuffled. This implements the paper's §6 direction "understanding
// relevant features for each attack type" in a model-agnostic way.
//
// clf must already be fitted. The returned slice has one importance per
// feature (metric_baseline - metric_shuffled, averaged over repeats);
// larger is more important, values near zero mean the model ignores the
// feature.
func PermutationImportance(clf Classifier, X [][]float64, y []int, repeats int, seed int64) ([]float64, error) {
	d, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	if repeats <= 0 {
		repeats = 3
	}
	base := F1Score(y, clf.Predict(X))
	imp := make([]float64, d)
	rng := NewRNG(seed)
	// Shuffle one column at a time on a working copy.
	work := make([][]float64, len(X))
	for i, row := range X {
		work[i] = append([]float64(nil), row...)
	}
	col := make([]float64, len(X))
	for j := 0; j < d; j++ {
		var drop float64
		for r := 0; r < repeats; r++ {
			for i := range work {
				col[i] = work[i][j]
			}
			perm := rng.Perm(len(work))
			for i := range work {
				work[i][j] = col[perm[i]]
			}
			drop += base - F1Score(y, clf.Predict(work))
			// Restore the column.
			for i := range work {
				work[i][j] = col[i]
			}
		}
		imp[j] = drop / float64(repeats)
	}
	return imp, nil
}

// TopFeatures pairs importances with names and returns the k largest.
func TopFeatures(names []string, imp []float64, k int) []FeatureImportance {
	out := make([]FeatureImportance, 0, len(imp))
	for i, v := range imp {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		out = append(out, FeatureImportance{Name: name, Importance: v})
	}
	for i := 1; i < len(out); i++ { // insertion sort by importance desc
		for j := i; j > 0 && out[j].Importance > out[j-1].Importance; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// FeatureImportance names one feature's permutation importance.
type FeatureImportance struct {
	Name       string
	Importance float64
}
