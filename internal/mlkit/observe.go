package mlkit

// FitObserver receives per-epoch progress from iterative trainers: the
// model family name ("mlp", "autoencoder", "kitnet", "gmm", "logistic",
// "linear_svm", "ocsvm"), the zero-based epoch (or EM iteration) index,
// and that epoch's training loss. The loss semantics are per-family —
// mean squared reconstruction error for the neural models, mean log-loss
// for logistic regression, mean hinge objective for the SVMs, negative
// mean log-likelihood for the GMM — but within one fit the sequence is
// comparable across epochs, which is what a loss curve needs.
//
// Observers are called synchronously from Fit, at most once per epoch;
// an observer that blocks slows training down. Models never call a nil
// observer, so the disabled path costs one nil check per epoch.
type FitObserver interface {
	FitEpoch(model string, epoch int, loss float64)
}

// ObservableFitter is implemented by every iterative model — and by the
// wrappers that contain one (Thresholded, DetectorPipeline, Pipeline,
// VotingEnsemble) — to accept a FitObserver before Fit runs. Wrappers
// forward the observer to their inner models, so attaching one to the
// outermost classifier is enough.
type ObservableFitter interface {
	SetFitObserver(FitObserver)
}

// named wraps an observer, overriding the model name the inner trainer
// reports — the Autoencoder reuses the MLP training loop but should show
// up as "autoencoder" in a loss curve.
type named struct {
	o    FitObserver
	name string
}

// FitEpoch forwards with the fixed model name.
func (n named) FitEpoch(_ string, epoch int, loss float64) {
	n.o.FitEpoch(n.name, epoch, loss)
}

// forwardObserver attaches o to any value that accepts one.
func forwardObserver(v any, o FitObserver) {
	if of, ok := v.(ObservableFitter); ok {
		of.SetFitObserver(o)
	}
}

// SetFitObserver forwards the observer to the wrapped detector.
func (t *Thresholded) SetFitObserver(o FitObserver) { forwardObserver(t.Detector, o) }

// SetFitObserver forwards the observer to the inner detector.
func (p *DetectorPipeline) SetFitObserver(o FitObserver) { forwardObserver(p.Detector, o) }

// SetFitObserver forwards the observer to the inner model.
func (p *Pipeline) SetFitObserver(o FitObserver) { forwardObserver(p.Model, o) }

// SetFitObserver forwards the observer to every member.
func (v *VotingEnsemble) SetFitObserver(o FitObserver) {
	for _, m := range v.Members {
		forwardObserver(m, o)
	}
}
