package mlkit

import "testing"

// recordingObserver collects every FitEpoch call.
type recordingObserver struct {
	models []string
	epochs []int
	losses []float64
}

func (r *recordingObserver) FitEpoch(model string, epoch int, loss float64) {
	r.models = append(r.models, model)
	r.epochs = append(r.epochs, epoch)
	r.losses = append(r.losses, loss)
}

// byModel groups recorded losses per model name.
func (r *recordingObserver) byModel() map[string][]float64 {
	out := map[string][]float64{}
	for i, m := range r.models {
		out[m] = append(out[m], r.losses[i])
	}
	return out
}

func TestMLPObserverEpochsAndLoss(t *testing.T) {
	X, y := xorData(40, 1)
	rec := &recordingObserver{}
	m := &MLPClassifier{Hidden: []int{6}, Epochs: 30, Seed: 1}
	m.SetFitObserver(rec)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(rec.epochs) != 30 {
		t.Fatalf("got %d epoch callbacks, want 30", len(rec.epochs))
	}
	for i, e := range rec.epochs {
		if e != i {
			t.Fatalf("epoch %d reported as %d", i, e)
		}
		if rec.models[i] != "mlp" {
			t.Fatalf("model name %q, want mlp", rec.models[i])
		}
	}
	first, last := rec.losses[0], rec.losses[len(rec.losses)-1]
	if !(last < first) {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
}

func TestAutoencoderObserverRenames(t *testing.T) {
	X := [][]float64{{0.1, 0.2, 0.3}, {0.2, 0.3, 0.4}, {0.9, 0.8, 0.7}, {0.8, 0.7, 0.6}}
	rec := &recordingObserver{}
	a := &Autoencoder{Hidden: []int{2}, Epochs: 5, Seed: 1}
	a.SetFitObserver(rec)
	if err := a.Fit(X); err != nil {
		t.Fatal(err)
	}
	if len(rec.models) != 5 {
		t.Fatalf("got %d callbacks, want 5", len(rec.models))
	}
	for _, m := range rec.models {
		if m != "autoencoder" {
			t.Fatalf("model name %q, want autoencoder", m)
		}
	}
}

func TestKitNETObserver(t *testing.T) {
	X := make([][]float64, 40)
	rng := NewRNG(3)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	rec := &recordingObserver{}
	k := &KitNET{MaxAESize: 2, Epochs: 4, Seed: 1}
	k.SetFitObserver(rec)
	if err := k.Fit(X); err != nil {
		t.Fatal(err)
	}
	if got := rec.byModel()["kitnet"]; len(got) != 4 {
		t.Fatalf("kitnet reported %d epochs, want 4", len(got))
	}
}

func TestGMMObserver(t *testing.T) {
	rng := NewRNG(5)
	X := make([][]float64, 60)
	for i := range X {
		base := 0.0
		if i%2 == 0 {
			base = 5
		}
		X[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	rec := &recordingObserver{}
	g := &GMM{K: 2, Seed: 1}
	g.SetFitObserver(rec)
	if err := g.Fit(X); err != nil {
		t.Fatal(err)
	}
	losses := rec.byModel()["gmm"]
	if len(losses) == 0 {
		t.Fatal("gmm reported no EM iterations")
	}
	if !(losses[len(losses)-1] <= losses[0]) {
		t.Errorf("negative log-likelihood increased: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestSGDObservers(t *testing.T) {
	X, y := xorData(40, 2) // not linearly separable, but losses must still be reported
	for _, tc := range []struct {
		name string
		clf  Classifier
		want int
	}{
		{"logistic", &LogisticRegression{Epochs: 7, Seed: 1}, 7},
		{"linear_svm", &LinearSVM{Epochs: 6, Seed: 1}, 6},
	} {
		rec := &recordingObserver{}
		tc.clf.(ObservableFitter).SetFitObserver(rec)
		if err := tc.clf.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := rec.byModel()[tc.name]; len(got) != tc.want {
			t.Errorf("%s reported %d epochs, want %d", tc.name, len(got), tc.want)
		}
	}

	rec := &recordingObserver{}
	oc := &OneClassSVM{Epochs: 5, Seed: 1}
	oc.SetFitObserver(rec)
	if err := oc.Fit(X); err != nil {
		t.Fatal(err)
	}
	if got := rec.byModel()["ocsvm"]; len(got) != 5 {
		t.Errorf("ocsvm reported %d epochs, want 5", len(got))
	}
}

func TestWrappersForwardObserver(t *testing.T) {
	X := [][]float64{{0.1, 0.1}, {0.2, 0.1}, {0.15, 0.2}, {0.9, 0.9}, {0.1, 0.15}, {0.2, 0.2}}
	y := []int{0, 0, 0, 1, 0, 0}

	// Thresholded → DetectorPipeline → OneClassSVM.
	rec := &recordingObserver{}
	var clf Classifier = &Thresholded{
		Detector: &DetectorPipeline{
			Steps:    []Transformer{&StandardScaler{}},
			Detector: &OneClassSVM{Epochs: 3, Seed: 1},
		},
		Quantile: 0.9,
	}
	clf.(ObservableFitter).SetFitObserver(rec)
	if err := clf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := rec.byModel()["ocsvm"]; len(got) != 3 {
		t.Fatalf("observer not forwarded through Thresholded/DetectorPipeline: %v", rec.byModel())
	}

	// VotingEnsemble forwards to observable members and skips the rest.
	rec = &recordingObserver{}
	ens := &VotingEnsemble{Members: []Classifier{
		&LogisticRegression{Epochs: 2, Seed: 1},
		&DecisionTree{Seed: 1}, // not iterative: must be skipped, not crash
	}}
	ens.SetFitObserver(rec)
	if err := ens.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := rec.byModel()["logistic"]; len(got) != 2 {
		t.Fatalf("observer not forwarded through VotingEnsemble: %v", rec.byModel())
	}
}

// TestNoObserverNoOverheadPath just exercises the nil-observer branch —
// the guard that keeps the training hot loops free of callback work.
func TestNoObserverNoOverheadPath(t *testing.T) {
	X, y := xorData(20, 3)
	if err := (&LogisticRegression{Epochs: 2, Seed: 1}).Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := (&MLPClassifier{Hidden: []int{4}, Epochs: 2, Seed: 1}).Fit(X, y); err != nil {
		t.Fatal(err)
	}
}
