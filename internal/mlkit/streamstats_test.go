package mlkit

import (
	"math"
	"testing"
)

func TestP2QuantileTracksExact(t *testing.T) {
	rng := NewRNG(42)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		est := NewP2Quantile(q)
		xs := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			x := rng.NormFloat64()*3 + 10
			est.Add(x)
			xs = append(xs, x)
		}
		exact := Quantile(xs, q)
		got := est.Value()
		if math.Abs(got-exact) > 0.25 {
			t.Errorf("q=%v: P2 estimate %v vs exact %v", q, got, exact)
		}
		if est.Count() != 5000 {
			t.Errorf("count = %d, want 5000", est.Count())
		}
	}
}

func TestP2QuantileSmallN(t *testing.T) {
	est := NewP2Quantile(0.5)
	for _, x := range []float64{3, 1, 2} {
		est.Add(x)
	}
	if got := est.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if est := NewP2Quantile(0.9); est.Value() != 0 {
		t.Errorf("empty estimator should return 0")
	}
}

func TestPageHinkleyDetectsShift(t *testing.T) {
	ph := &PageHinkley{Delta: 0.05, Lambda: 10, MinSamples: 30}
	rng := NewRNG(7)
	for i := 0; i < 500; i++ {
		if ph.Add(rng.Float64() * 0.1) {
			t.Fatalf("false positive on flat stream at i=%d", i)
		}
	}
	fired := false
	for i := 0; i < 500; i++ {
		if ph.Add(1 + rng.Float64()*0.1) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no detection after mean shift 0.05 -> 1")
	}
	// Reset-on-detect re-arms the detector.
	if ph.Count() != 0 {
		t.Errorf("count after detection = %d, want 0", ph.Count())
	}
}
