package mlkit

import (
	"math"
	"testing"
)

func TestKitNETScoresNonNegative(t *testing.T) {
	rng := NewRNG(301)
	X := make([][]float64, 150)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64() * 2}
	}
	k := &KitNET{Epochs: 2, Seed: 1}
	if err := k.Fit(X); err != nil {
		t.Fatal(err)
	}
	for i, s := range k.Score(X) {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestKitNETSingleFeature(t *testing.T) {
	rng := NewRNG(303)
	X := make([][]float64, 60)
	for i := range X {
		X[i] = []float64{rng.Float64()}
	}
	k := &KitNET{Epochs: 1, Seed: 1}
	if err := k.Fit(X); err != nil {
		t.Fatalf("single-feature fit: %v", err)
	}
	if len(k.Clusters()) != 1 {
		t.Errorf("clusters = %v, want one singleton", k.Clusters())
	}
}

func TestNystromTransformDimension(t *testing.T) {
	rng := NewRNG(307)
	X := make([][]float64, 100)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	ny := &NystromMap{M: 16, Seed: 1}
	if err := ny.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := ny.Transform(X[:3])
	if len(out) != 3 || len(out[0]) != 16 {
		t.Fatalf("transform shape %dx%d, want 3x16", len(out), len(out[0]))
	}
	for _, row := range out {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite Nystrom feature")
			}
		}
	}
}

func TestNystromMoreLandmarksThanPoints(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	ny := &NystromMap{M: 64, Seed: 1}
	if err := ny.Fit(X); err != nil {
		t.Fatalf("M > n should clamp, got %v", err)
	}
}

func TestAutoMLCustomCandidates(t *testing.T) {
	X, y := blobs(200, 3, 3, 311)
	a := &AutoML{
		Candidates: []NamedClassifier{
			{"only-nb", func() Classifier { return &GaussianNB{} }},
		},
		Seed: 1,
	}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.BestName() != "only-nb" {
		t.Errorf("best = %q, want only-nb", a.BestName())
	}
}

func TestMLPForwardShapes(t *testing.T) {
	m := &MLP{Sizes: []int{3, 5, 2}, Seed: 1}
	m.Init()
	acts := m.Forward([]float64{1, 2, 3})
	if len(acts) != 3 || len(acts[0]) != 3 || len(acts[1]) != 5 || len(acts[2]) != 2 {
		t.Fatalf("activation shapes wrong: %d layers", len(acts))
	}
	for _, v := range acts[2] {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output out of range: %v", v)
		}
	}
}

func TestMLPLearnsAND(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	T := [][]float64{{0}, {0}, {0}, {1}}
	m := &MLP{Sizes: []int{2, 4, 1}, Act: ActTanh, Epochs: 400, LR: 0.2, Seed: 1}
	if err := m.FitTargets(X, T); err != nil {
		t.Fatal(err)
	}
	p := m.Predict01(X)
	if p[3] < 0.7 || p[0] > 0.3 {
		t.Errorf("AND not learned: %v", p)
	}
}

func TestActivationDerivatives(t *testing.T) {
	// deriv is expressed in terms of the activation output.
	if d := ActReLU.deriv(2); d != 1 {
		t.Errorf("relu'(pos) = %v", d)
	}
	if d := ActReLU.deriv(0); d != 0 {
		t.Errorf("relu'(0) = %v", d)
	}
	y := ActSigmoid.apply(0.3)
	if d := ActSigmoid.deriv(y); math.Abs(d-y*(1-y)) > 1e-12 {
		t.Errorf("sigmoid' = %v", d)
	}
	yt := ActTanh.apply(0.3)
	if d := ActTanh.deriv(yt); math.Abs(d-(1-yt*yt)) > 1e-12 {
		t.Errorf("tanh' = %v", d)
	}
}

func TestDotAndSqDist(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("dot product wrong")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Error("squared distance wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Error("argmax wrong")
	}
	if ArgMax([]float64{7, 7}) != 0 {
		t.Error("argmax tie should pick first")
	}
	if ArgMax(nil) != -1 {
		t.Error("empty argmax should be -1")
	}
}

func TestGMMMoreComponentsThanPoints(t *testing.T) {
	X := [][]float64{{1}, {2}}
	g := &GMM{K: 10, Seed: 1}
	if err := g.Fit(X); err != nil {
		t.Fatalf("K > n should clamp: %v", err)
	}
	if s := g.Score(X); len(s) != 2 {
		t.Fatal("score length wrong")
	}
}
