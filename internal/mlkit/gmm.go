package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// GMM is a diagonal-covariance Gaussian mixture fitted by EM. As a
// Detector it scores rows by negative log-likelihood, the density-based
// anomaly criterion used by the "Nyström + GMM" algorithm (A08).
type GMM struct {
	// K mixture components; 0 means 4.
	K int
	// MaxIter EM iterations; 0 means 50.
	MaxIter int
	// Tol stops EM when the mean log-likelihood improves by less; 0 means 1e-4.
	Tol float64
	// Seed drives k-means initialization.
	Seed int64

	weights []float64
	means   [][]float64
	vars    [][]float64
	obs     FitObserver

	// Derived per-component constants, rebuilt by refresh() whenever the
	// parameters change: logW[c] = log weight, logNorm[c] = Σ_j
	// -½log(2πσ²), inv2v[c][j] = 1/(2σ²). They turn logGauss into one
	// fused multiply-accumulate loop with no log or division per element.
	logW    []float64
	logNorm []float64
	inv2v   [][]float64
}

// SetFitObserver attaches a progress observer; each EM iteration reports
// the negative mean log-likelihood as its loss.
func (g *GMM) SetFitObserver(o FitObserver) { g.obs = o }

func (g *GMM) kval() int {
	if g.K == 0 {
		return 4
	}
	return g.K
}

// refresh rebuilds the derived constants from weights/means/vars.
func (g *GMM) refresh() {
	k := len(g.weights)
	if cap(g.logW) < k {
		g.logW = make([]float64, k)
		g.logNorm = make([]float64, k)
		g.inv2v = make([][]float64, k)
	}
	g.logW = g.logW[:k]
	g.logNorm = g.logNorm[:k]
	g.inv2v = g.inv2v[:k]
	for c := 0; c < k; c++ {
		g.logW[c] = math.Log(g.weights[c])
		va := g.vars[c]
		if cap(g.inv2v[c]) < len(va) {
			g.inv2v[c] = make([]float64, len(va))
		}
		iv := g.inv2v[c][:len(va)]
		var ln float64
		for j, v := range va {
			ln += -0.5 * math.Log(2*math.Pi*v)
			iv[j] = 1 / (2 * v)
		}
		g.logNorm[c] = ln
		g.inv2v[c] = iv
	}
}

// Fit runs EM from a k-means initialization.
func (g *GMM) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	k := g.kval()
	if k > len(X) {
		k = len(X)
	}
	km := &KMeans{K: k, Seed: g.Seed}
	if err := km.Fit(X); err != nil {
		return err
	}
	assign := km.Assign(X)
	g.weights = make([]float64, k)
	g.means = make([][]float64, k)
	g.vars = make([][]float64, k)
	for c := 0; c < k; c++ {
		g.means[c] = append([]float64(nil), km.Centers[c]...)
		g.vars[c] = make([]float64, d)
	}
	counts := make([]float64, k)
	for i, row := range X {
		c := assign[i]
		counts[c]++
		for j, v := range row {
			dv := v - g.means[c][j]
			g.vars[c][j] += dv * dv
		}
	}
	n := float64(len(X))
	for c := 0; c < k; c++ {
		g.weights[c] = math.Max(counts[c]/n, 1e-6)
		for j := range g.vars[c] {
			if counts[c] > 0 {
				g.vars[c][j] /= counts[c]
			}
			if g.vars[c][j] < 1e-6 {
				g.vars[c][j] = 1e-6
			}
		}
	}

	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	tol := g.Tol
	if tol == 0 {
		tol = 1e-4
	}
	resp := make([][]float64, len(X))
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	llRow := make([]float64, len(X))
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// E-step: rows are independent (disjoint writes into resp and
		// llRow), so they split across the worker pool; the
		// log-likelihood reduction runs serially over llRow in row order
		// afterwards — bit-identical for any worker count.
		g.refresh()
		linalg.ParallelRows(len(X), func(lo, hi int) {
			lp := make([]float64, k)
			for i := lo; i < hi; i++ {
				row := X[i]
				for c := 0; c < k; c++ {
					lp[c] = g.logW[c] + g.logGauss(row, c)
				}
				z := logSumExp(lp)
				llRow[i] = z
				ri := resp[i]
				for c := 0; c < k; c++ {
					ri[c] = math.Exp(lp[c] - z)
				}
			}
		})
		var ll float64
		for _, z := range llRow {
			ll += z
		}
		ll /= n
		if g.obs != nil {
			g.obs.FitEpoch("gmm", iter, -ll)
		}
		if ll-prevLL < tol && iter > 0 {
			break
		}
		prevLL = ll
		// M-step: components are independent, so they split across the
		// pool; each accumulates over rows in index order.
		linalg.ParallelRows(k, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				var rc float64
				mean := make([]float64, d)
				for i, row := range X {
					r := resp[i][c]
					rc += r
					for j, v := range row {
						mean[j] += r * v
					}
				}
				if rc < 1e-9 {
					continue
				}
				for j := range mean {
					mean[j] /= rc
				}
				va := make([]float64, d)
				for i, row := range X {
					r := resp[i][c]
					for j, v := range row {
						dv := v - mean[j]
						va[j] += r * dv * dv
					}
				}
				for j := range va {
					va[j] /= rc
					if va[j] < 1e-6 {
						va[j] = 1e-6
					}
				}
				g.weights[c] = rc / n
				g.means[c] = mean
				g.vars[c] = va
			}
		})
	}
	g.refresh()
	return nil
}

func (g *GMM) logGauss(row []float64, c int) float64 {
	m := g.means[c][:len(row)]
	iv := g.inv2v[c][:len(row)]
	var s float64
	for j, v := range row {
		dv := v - m[j]
		s += dv * dv * iv[j]
	}
	return g.logNorm[c] - s
}

// LogLikelihood returns the per-row mixture log density. Rows split
// across the worker pool; each output element is written by exactly one
// goroutine, so results are bit-identical for any worker count.
func (g *GMM) LogLikelihood(X [][]float64) []float64 {
	out := make([]float64, len(X))
	k := len(g.weights)
	linalg.ParallelRows(len(X), func(lo, hi int) {
		lp := make([]float64, k)
		for i := lo; i < hi; i++ {
			row := X[i]
			for c := 0; c < k; c++ {
				lp[c] = g.logW[c] + g.logGauss(row, c)
			}
			out[i] = logSumExp(lp)
		}
	})
	return out
}

// Score returns negative log-likelihood (higher = more anomalous).
func (g *GMM) Score(X [][]float64) []float64 {
	ll := g.LogLikelihood(X)
	for i := range ll {
		ll[i] = -ll[i]
	}
	return ll
}
