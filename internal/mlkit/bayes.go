package mlkit

import "math"

// GaussianNB is a Gaussian naive Bayes classifier (the "248 per-flow
// discriminators + naive Bayes" design of Moore & Zuev uses this family).
type GaussianNB struct {
	// VarSmoothing is added to every per-feature variance for stability;
	// 0 means 1e-9 times the largest feature variance.
	VarSmoothing float64

	classes  int
	priors   []float64   // log prior per class
	means    [][]float64 // [class][feature]
	vars     [][]float64 // [class][feature]
	presence []bool      // classes actually seen in training
}

// Fit estimates per-class feature means/variances and log priors.
func (g *GaussianNB) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	g.classes = 0
	for _, label := range y {
		if label+1 > g.classes {
			g.classes = label + 1
		}
	}
	if g.classes < 2 {
		g.classes = 2
	}
	counts := make([]float64, g.classes)
	g.means = make([][]float64, g.classes)
	g.vars = make([][]float64, g.classes)
	g.presence = make([]bool, g.classes)
	for c := 0; c < g.classes; c++ {
		g.means[c] = make([]float64, d)
		g.vars[c] = make([]float64, d)
	}
	for i, row := range X {
		c := y[i]
		counts[c]++
		g.presence[c] = true
		for j, v := range row {
			g.means[c][j] += v
		}
	}
	for c := 0; c < g.classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.means[c] {
			g.means[c][j] /= counts[c]
		}
	}
	var maxVar float64
	for i, row := range X {
		c := y[i]
		for j, v := range row {
			dv := v - g.means[c][j]
			g.vars[c][j] += dv * dv
		}
	}
	for c := 0; c < g.classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.vars[c] {
			g.vars[c][j] /= counts[c]
			if g.vars[c][j] > maxVar {
				maxVar = g.vars[c][j]
			}
		}
	}
	smooth := g.VarSmoothing
	if smooth == 0 {
		smooth = 1e-9 * maxVar
		if smooth == 0 {
			smooth = 1e-9
		}
	}
	for c := 0; c < g.classes; c++ {
		for j := range g.vars[c] {
			g.vars[c][j] += smooth
		}
	}
	g.priors = make([]float64, g.classes)
	n := float64(len(X))
	for c := range g.priors {
		if counts[c] == 0 {
			g.priors[c] = math.Inf(-1)
		} else {
			g.priors[c] = math.Log(counts[c] / n)
		}
	}
	return nil
}

// logJoint returns the unnormalized class log-posteriors for one row.
func (g *GaussianNB) logJoint(row []float64) []float64 {
	lj := make([]float64, g.classes)
	for c := 0; c < g.classes; c++ {
		if !g.presence[c] {
			lj[c] = math.Inf(-1)
			continue
		}
		s := g.priors[c]
		for j, v := range row {
			va := g.vars[c][j]
			dv := v - g.means[c][j]
			s += -0.5*math.Log(2*math.Pi*va) - dv*dv/(2*va)
		}
		lj[c] = s
	}
	return lj
}

// Predict returns the maximum-posterior class per row.
func (g *GaussianNB) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		out[i] = ArgMax(g.logJoint(row))
	}
	return out
}

// Proba returns the posterior probability of class 1 per row.
func (g *GaussianNB) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		lj := g.logJoint(row)
		z := logSumExp(lj)
		if len(lj) > 1 && !math.IsInf(z, -1) {
			out[i] = math.Exp(lj[1] - z)
		}
	}
	return out
}
