package mlkit

import (
	"math"
	"testing"
)

func TestLogisticRegressionSeparable(t *testing.T) {
	X, y := blobs(400, 4, 3, 101)
	sc := &StandardScaler{}
	if err := sc.Fit(X); err != nil {
		t.Fatal(err)
	}
	acc := fitPredictAccuracy(t, &LogisticRegression{Seed: 1}, sc.Transform(X), y)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestLogisticRegressionProbaMonotone(t *testing.T) {
	// 1-D data: probability must increase along the positive direction.
	X := [][]float64{{-2}, {-1}, {0}, {1}, {2}}
	y := []int{0, 0, 0, 1, 1}
	lr := &LogisticRegression{Seed: 1, Epochs: 200}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := lr.Proba(X)
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Fatalf("proba not monotone: %v", p)
		}
	}
}

func TestPCARecoversSubspace(t *testing.T) {
	// Data on a 1-D line in 3-D space plus tiny noise.
	rng := NewRNG(103)
	var X [][]float64
	for i := 0; i < 300; i++ {
		s := rng.NormFloat64()
		X = append(X, []float64{
			s + rng.NormFloat64()*0.01,
			2*s + rng.NormFloat64()*0.01,
			-s + rng.NormFloat64()*0.01,
		})
	}
	p := &PCA{}
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	if p.Components() != 1 {
		t.Fatalf("components = %d, want 1 (95%% variance on a line)", p.Components())
	}
	// On-line points score low; off-line points high.
	on := p.Score([][]float64{{1, 2, -1}})
	off := p.Score([][]float64{{1, -2, 1}})
	if on[0] >= off[0] {
		t.Errorf("on-subspace score %v should be below off-subspace %v", on[0], off[0])
	}
}

func TestPCATransformShape(t *testing.T) {
	rng := NewRNG(107)
	X := make([][]float64, 50)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	p := &PCA{K: 2}
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := p.Transform(X[:5])
	if len(out) != 5 || len(out[0]) != 2 {
		t.Fatalf("transform shape %dx%d, want 5x2", len(out), len(out[0]))
	}
}

func TestGridSearchFindsDepth(t *testing.T) {
	X, y := xorData(600, 109)
	gs := &GridSearch{
		New: func(p map[string]float64) Classifier {
			return &DecisionTree{MaxDepth: int(p["depth"]), Seed: 1}
		},
		Grid: map[string][]float64{"depth": {1, 8}},
		Seed: 1,
	}
	if err := gs.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Depth 1 cannot express XOR; the search must pick depth 8.
	if got := gs.BestParams()["depth"]; got != 8 {
		t.Errorf("best depth = %v, want 8", got)
	}
	if acc := Accuracy(y, gs.Predict(X)); acc < 0.9 {
		t.Errorf("refit accuracy = %.3f, want >= 0.9", acc)
	}
	if gs.BestScore() <= 0 {
		t.Errorf("best score = %v, want > 0", gs.BestScore())
	}
}

func TestGridSearchCartesianProduct(t *testing.T) {
	grid := map[string][]float64{"a": {1, 2, 3}, "b": {10, 20}}
	got := expandGrid(grid)
	if len(got) != 6 {
		t.Fatalf("expanded %d assignments, want 6", len(got))
	}
	seen := map[[2]float64]bool{}
	for _, a := range got {
		seen[[2]float64{a["a"], a["b"]}] = true
	}
	if len(seen) != 6 {
		t.Errorf("assignments not distinct: %v", got)
	}
	if n := len(expandGrid(nil)); n != 1 {
		t.Errorf("empty grid should expand to one empty assignment, got %d", n)
	}
}

func TestGridSearchErrors(t *testing.T) {
	gs := &GridSearch{}
	if err := gs.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Error("nil New should error")
	}
}

func TestPermutationImportanceIdentifiesSignal(t *testing.T) {
	// Feature 0 fully determines the label; feature 1 is pure noise.
	rng := NewRNG(113)
	X := make([][]float64, 400)
	y := make([]int, 400)
	for i := range X {
		sig := rng.NormFloat64()
		X[i] = []float64{sig, rng.NormFloat64()}
		if sig > 0 {
			y[i] = 1
		}
	}
	tr := &DecisionTree{Seed: 1}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(tr, X, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] < 0.3 {
		t.Errorf("signal feature importance %v, want >= 0.3", imp[0])
	}
	if math.Abs(imp[1]) > 0.1 {
		t.Errorf("noise feature importance %v, want ~0", imp[1])
	}
	top := TopFeatures([]string{"signal", "noise"}, imp, 1)
	if len(top) != 1 || top[0].Name != "signal" {
		t.Errorf("top feature = %+v, want signal", top)
	}
}

func TestPermutationImportanceRestoresInput(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []int{0, 0, 1, 1}
	tr := &DecisionTree{}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	orig := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	if _, err := PermutationImportance(tr, X, y, 2, 1); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		for j := range X[i] {
			if X[i][j] != orig[i][j] {
				t.Fatal("PermutationImportance mutated its input")
			}
		}
	}
}

func TestPCADetectorInPipeline(t *testing.T) {
	// PCA as the detector of a DetectorPipeline (the A12 baseline).
	rng := NewRNG(127)
	var X [][]float64
	for i := 0; i < 200; i++ {
		s := rng.Float64()
		X = append(X, []float64{s, 2 * s, 3 * s})
	}
	dp := &DetectorPipeline{
		Steps:    []Transformer{&StandardScaler{}},
		Detector: &PCA{K: 1},
	}
	if err := dp.Fit(X); err != nil {
		t.Fatal(err)
	}
	normal := dp.Score(X[:5])
	anom := dp.Score([][]float64{{1, 0, 0}})
	for _, s := range normal {
		if s >= anom[0] {
			t.Errorf("normal score %v not below anomaly %v", s, anom[0])
		}
	}
}
