package mlkit

import (
	"reflect"
	"sync"
	"testing"
)

// replicaData builds a small two-cluster dataset.
func replicaData() ([][]float64, []int) {
	var X [][]float64
	var y []int
	rng := NewRNG(7)
	for i := 0; i < 120; i++ {
		base := 0.2
		label := 0
		if i%3 == 0 {
			base = 0.8
			label = 1
		}
		X = append(X, []float64{base + rng.Float64()*0.1, base - rng.Float64()*0.1, rng.Float64() * 0.05})
		y = append(y, label)
	}
	return X, y
}

// TestScoringReplicaConcurrentBitIdentical fits every MLP-backed model
// shape, then scores the same matrix from several replicas concurrently
// (run under -race to prove scratch isolation) and asserts each replica
// reproduces the original's serial output exactly.
func TestScoringReplicaConcurrentBitIdentical(t *testing.T) {
	X, y := replicaData()
	models := map[string]Classifier{
		"mlp": &MLPClassifier{Hidden: []int{8}, Epochs: 5, Seed: 3},
		"autoencoder": &Thresholded{
			Detector: &DetectorPipeline{
				Steps:    []Transformer{&MinMaxScaler{}},
				Detector: &Autoencoder{Hidden: []int{4}, Epochs: 3, Seed: 3},
			},
			Quantile: 0.98,
		},
		"kitnet": &Thresholded{
			Detector: &KitNET{MaxAESize: 3, Epochs: 2, Seed: 3},
			Quantile: 0.98,
		},
		"ensemble": &VotingEnsemble{Members: []Classifier{
			&DecisionTree{Seed: 3},
			&MLPClassifier{Hidden: []int{4}, Epochs: 3, Seed: 3},
		}},
	}
	for name, clf := range models {
		t.Run(name, func(t *testing.T) {
			if err := clf.Fit(X, y); err != nil {
				t.Fatalf("fit: %v", err)
			}
			wantPred := clf.Predict(X)
			var wantProba []float64
			if pc, ok := clf.(ProbClassifier); ok {
				wantProba = pc.Proba(X)
			}
			const lanes = 4
			var wg sync.WaitGroup
			preds := make([][]int, lanes)
			probas := make([][]float64, lanes)
			for k := 0; k < lanes; k++ {
				rep := ScoringReplica(clf)
				if rep == clf {
					t.Fatalf("MLP-backed model %q was not replicated", name)
				}
				wg.Add(1)
				go func(k int, rep Classifier) {
					defer wg.Done()
					preds[k] = rep.Predict(X)
					if pc, ok := rep.(ProbClassifier); ok {
						probas[k] = pc.Proba(X)
					}
				}(k, rep)
			}
			wg.Wait()
			for k := 0; k < lanes; k++ {
				if !reflect.DeepEqual(preds[k], wantPred) {
					t.Errorf("replica %d Predict diverges from original", k)
				}
				if wantProba != nil && !reflect.DeepEqual(probas[k], wantProba) {
					t.Errorf("replica %d Proba diverges from original", k)
				}
			}
			// The original must still score identically after replicas ran.
			if !reflect.DeepEqual(clf.Predict(X), wantPred) {
				t.Error("original model's output changed after replica scoring")
			}
		})
	}
}

// TestScoringReplicaPureModelsShared: models without inference scratch
// are safe to share and come back unchanged.
func TestScoringReplicaPureModelsShared(t *testing.T) {
	X, y := replicaData()
	for name, clf := range map[string]Classifier{
		"decision_tree": &DecisionTree{Seed: 3},
		"knn":           &KNN{K: 3, Seed: 3},
		"gaussian_nb":   &GaussianNB{},
		"linear_svm":    &LinearSVM{Seed: 3},
	} {
		if err := clf.Fit(X, y); err != nil {
			t.Fatalf("%s fit: %v", name, err)
		}
		if rep := ScoringReplica(clf); rep != clf {
			t.Errorf("%s: scratch-free model was needlessly replicated", name)
		}
	}
}
