package mlkit

import (
	"math"
	"sync"
	"testing"
)

// constClf predicts a fixed class with a fixed class-1 score.
type constClf struct {
	class int
	score float64
}

func (c constClf) Fit(X [][]float64, y []int) error { return nil }

func (c constClf) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i := range out {
		out[i] = c.class
	}
	return out
}

func (c constClf) Proba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i := range out {
		out[i] = c.score
	}
	return out
}

// scorelessClf predicts a fixed class and exposes no scores.
type scorelessClf struct{ class int }

func (c scorelessClf) Fit(X [][]float64, y []int) error { return nil }

func (c scorelessClf) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i := range out {
		out[i] = c.class
	}
	return out
}

func rows(n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i)}
	}
	return X
}

func TestSwapHandleLifecycle(t *testing.T) {
	h := NewSwapHandle(constClf{class: 0, score: 0.2})
	if g := h.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}
	if h.Shadowing() {
		t.Fatal("fresh handle should not be shadowing")
	}
	if _, err := h.Promote(); err == nil {
		t.Fatal("Promote without shadow should fail")
	}
	if _, err := h.Rollback(); err == nil {
		t.Fatal("Rollback without shadow should fail")
	}

	// Verdicts come from the active model before, during, and after the
	// shadow phase (until promotion).
	X := rows(10)
	if p := h.Predict(X); p[0] != 0 {
		t.Fatalf("active verdict = %d, want 0", p[0])
	}
	if err := h.StartShadow(constClf{class: 1, score: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := h.StartShadow(constClf{class: 1, score: 0.9}); err == nil {
		t.Fatal("double StartShadow should fail")
	}
	if p := h.Predict(X); p[0] != 0 {
		t.Fatalf("shadow phase verdict = %d, want active model's 0", p[0])
	}
	st := h.Stats()
	if st.Chunks != 1 || st.Rows != 10 || st.Disagree != 10 {
		t.Fatalf("stats = %+v, want 1 chunk, 10 rows, 10 disagreements", st)
	}
	if mad := st.ScoreMAD(); math.Abs(mad-0.7) > 1e-12 {
		t.Fatalf("ScoreMAD = %v, want 0.7", mad)
	}
	if f := st.DisagreeFrac(); f != 1.0 {
		t.Fatalf("DisagreeFrac = %v, want 1.0", f)
	}

	final, err := h.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if final.Rows != 10 {
		t.Fatalf("Promote returned %+v, want the shadow tally", final)
	}
	if g := h.Generation(); g != 2 {
		t.Fatalf("generation after promote = %d, want 2", g)
	}
	if h.Shadowing() {
		t.Fatal("promote should detach the shadow")
	}
	if st := h.Stats(); st.Rows != 0 {
		t.Fatalf("stats after promote = %+v, want reset", st)
	}
	if p := h.Predict(X); p[0] != 1 {
		t.Fatalf("verdict after promote = %d, want candidate's 1", p[0])
	}
}

func TestSwapHandleRollback(t *testing.T) {
	h := NewSwapHandle(constClf{class: 0, score: 0.2})
	if err := h.StartShadow(constClf{class: 0, score: 0.25}); err != nil {
		t.Fatal(err)
	}
	h.Predict(rows(4))
	st, err := h.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 4 || st.Disagree != 0 {
		t.Fatalf("rollback tally = %+v, want 4 agreeing rows", st)
	}
	if g := h.Generation(); g != 1 {
		t.Fatalf("generation after rollback = %d, want 1", g)
	}
	if p := h.Predict(rows(1)); p[0] != 0 {
		t.Fatalf("verdict after rollback = %d, want original model's 0", p[0])
	}
}

func TestSwapHandleScoreless(t *testing.T) {
	h := NewSwapHandle(scorelessClf{class: 0})
	if s := h.Proba(rows(3)); s != nil {
		t.Fatalf("Proba of a scoreless model = %v, want nil", s)
	}
	if err := h.StartShadow(constClf{class: 1, score: 0.9}); err != nil {
		t.Fatal(err)
	}
	h.Predict(rows(5))
	st := h.Stats()
	if st.Disagree != 5 {
		t.Fatalf("disagreements = %d, want 5", st.Disagree)
	}
	if st.ScoreRows != 0 || st.ScoreMAD() != 0 {
		t.Fatalf("score divergence without comparable scores = %+v, want none", st)
	}
}

// TestSwapHandleConcurrentControl races control-plane calls against the
// scoring path; run under -race this pins the handle's thread safety.
func TestSwapHandleConcurrentControl(t *testing.T) {
	h := NewSwapHandle(constClf{class: 0, score: 0.2})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			h.Predict(rows(8))
			h.Proba(rows(8))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := h.StartShadow(constClf{class: 1, score: 0.8}); err != nil {
				continue
			}
			h.Stats()
			if i%2 == 0 {
				h.Promote()
			} else {
				h.Rollback()
			}
		}
	}()
	wg.Wait()
	if h.Generation() < 1 {
		t.Fatal("generation went backwards")
	}
}
